// A long-running engine session with deterministic snapshot/restore.
//
// ServeSession wraps an engine::Rtdbs built from a SessionSpec genesis
// and records every state-mutating control command (policy/scenario
// swaps) in a journal keyed by the event count it was applied at.
// Because the engine is deterministic, {genesis, journal, position} is a
// complete serialization of the session: Restore rebuilds the system
// from genesis, replays the journal at the exact event boundaries,
// steps to the snapshot position, and verifies the recomputed state
// digest line-by-line against the snapshot's. A restored session's
// future trajectory is bit-identical to the uninterrupted original —
// the invariant tests/test_serve_snapshot.cc pins for every registered
// policy.
//
// Failure discipline: malformed specs, corrupt snapshots, and
// unreachable positions all surface as Status errors that leave the
// running session untouched (Restore builds the replacement session on
// the side; the caller swaps only on success).

#ifndef RTQ_SERVE_SERVE_SESSION_H_
#define RTQ_SERVE_SERVE_SESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "engine/rtdbs.h"
#include "engine/sharded_rtdbs.h"
#include "serve/snapshot.h"

namespace rtq::serve {

class ServeSession {
 public:
  /// Builds a fresh session from its genesis. Fails (without crashing)
  /// on an unknown workload grammar, a policy spec the PolicyRegistry
  /// rejects, or a scenario spec the ScenarioRegistry rejects.
  static StatusOr<std::unique_ptr<ServeSession>> Create(
      const SessionSpec& spec);

  /// Rebuilds the snapshotted session: genesis, journal replay at the
  /// recorded event counts, step to the snapshot position, then verify
  /// the recomputed digest line-by-line. Any deviation — a journal spec
  /// that no longer applies, a calendar that drains before the position,
  /// a differing digest line — fails with a Status naming it.
  static StatusOr<std::unique_ptr<ServeSession>> Restore(
      const Snapshot& snapshot);

  /// Steps up to `n` events; returns how many actually dispatched
  /// (fewer only when the event calendar drains).
  uint64_t RunEvents(uint64_t n);

  /// Hot-swaps the memory policy, journaling the canonical spec whenever
  /// a fresh policy instance was attached (including a rebuild-rollback
  /// after an attach failure — replay must reproduce the state reset).
  engine::PolicySwapOutcome ApplyPolicy(const std::string& spec);

  /// Swaps the arrival stream to `spec`; journals and returns the
  /// canonical scenario spec on success, leaves state untouched on error.
  StatusOr<std::string> ApplyScenario(const std::string& spec);

  /// Captures {genesis, journal, position, state digest} at this instant.
  /// Sharded sessions return Unimplemented: the `.rtqs` grammar has no
  /// shard fields yet, so there is nothing a restore could verify.
  StatusOr<Snapshot> TakeSnapshot();

  uint64_t events() {
    return sharded() ? cluster_->events_dispatched()
                     : sys_->simulator().events_dispatched();
  }
  /// True when the genesis asked for shards > 1; `system()` is then
  /// invalid and `cluster()` is the engine.
  bool sharded() const { return cluster_ != nullptr; }
  engine::Rtdbs& system() {
    RTQ_CHECK_MSG(!sharded(), "system(): session is sharded, use cluster()");
    return *sys_;
  }
  engine::ShardedRtdbs& cluster() {
    RTQ_CHECK_MSG(sharded(), "cluster(): session is unsharded, use system()");
    return *cluster_;
  }
  const SessionSpec& session_spec() const { return spec_; }
  const std::vector<JournalEntry>& journal() const { return journal_; }

  /// Translates a serve workload spec — "baseline:rate=R",
  /// "multiclass:rate=R", or "scenario:SPEC" — into a full SystemConfig.
  /// Exposed for the driver's flag validation; returns InvalidArgument
  /// (not CHECK) on malformed input.
  static StatusOr<engine::SystemConfig> BuildConfig(const SessionSpec& spec);

 private:
  ServeSession(SessionSpec spec, std::unique_ptr<engine::Rtdbs> sys)
      : spec_(std::move(spec)), sys_(std::move(sys)) {}
  ServeSession(SessionSpec spec, std::unique_ptr<engine::ShardedRtdbs> cluster)
      : spec_(std::move(spec)), cluster_(std::move(cluster)) {}

  /// Steps until `target` events have dispatched; Internal error if the
  /// calendar drains first (the snapshot position is unreachable).
  Status StepTo(uint64_t target);

  SessionSpec spec_;
  /// Exactly one of the two engines is set (sys_ unless spec_.shards > 1).
  std::unique_ptr<engine::Rtdbs> sys_;
  std::unique_ptr<engine::ShardedRtdbs> cluster_;
  std::vector<JournalEntry> journal_;
};

}  // namespace rtq::serve

#endif  // RTQ_SERVE_SERVE_SESSION_H_
