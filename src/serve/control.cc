#include "serve/control.h"

#include <cstdlib>

namespace rtq::serve {

namespace {

/// First whitespace-separated token of `line` starting at `*pos`;
/// advances `*pos` past it. Empty when the line is exhausted.
std::string NextToken(const std::string& line, size_t* pos) {
  size_t start = line.find_first_not_of(" \t", *pos);
  if (start == std::string::npos) {
    *pos = line.size();
    return "";
  }
  size_t end = line.find_first_of(" \t", start);
  if (end == std::string::npos) end = line.size();
  *pos = end;
  return line.substr(start, end - start);
}

/// Rest of `line` from `pos`, trimmed of surrounding whitespace.
std::string Rest(const std::string& line, size_t pos) {
  size_t start = line.find_first_not_of(" \t", pos);
  if (start == std::string::npos) return "";
  size_t end = line.find_last_not_of(" \t\r");
  return line.substr(start, end - start + 1);
}

bool ParseUint64(const std::string& token, uint64_t* out) {
  if (token.empty() || token[0] == '-' || token[0] == '+') return false;
  char* end = nullptr;
  unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) return false;
  *out = v;
  return true;
}

Status CommandError(const std::string& what) {
  return Status::InvalidArgument("control: " + what);
}

}  // namespace

StatusOr<Command> ParseCommand(const std::string& line) {
  Command cmd;
  size_t pos = 0;
  std::string keyword = NextToken(line, &pos);
  if (keyword.empty() || keyword[0] == '#') return cmd;  // kNop

  if (keyword == "run") {
    cmd.kind = Command::Kind::kRun;
    std::string count = NextToken(line, &pos);
    if (!ParseUint64(count, &cmd.count) || cmd.count == 0)
      return CommandError("'run' needs a positive event count, got '" + count +
                          "'");
    if (!Rest(line, pos).empty())
      return CommandError("trailing input after 'run " + count + "'");
    return cmd;
  }
  if (keyword == "policy" || keyword == "scenario" || keyword == "snapshot" ||
      keyword == "restore") {
    cmd.kind = keyword == "policy"     ? Command::Kind::kPolicy
               : keyword == "scenario" ? Command::Kind::kScenario
               : keyword == "snapshot" ? Command::Kind::kSnapshot
                                       : Command::Kind::kRestore;
    cmd.arg = Rest(line, pos);
    if (cmd.arg.empty())
      return CommandError("'" + keyword + "' needs an argument");
    return cmd;
  }
  if (keyword == "stats" || keyword == "metrics" || keyword == "quit") {
    cmd.kind = keyword == "stats"     ? Command::Kind::kStats
               : keyword == "metrics" ? Command::Kind::kMetrics
                                      : Command::Kind::kQuit;
    if (!Rest(line, pos).empty())
      return CommandError("trailing input after '" + keyword + "'");
    return cmd;
  }
  return CommandError("unknown command '" + keyword +
                      "' (run|policy|scenario|stats|metrics|snapshot|"
                      "restore|quit)");
}

}  // namespace rtq::serve
