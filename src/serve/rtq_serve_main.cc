// rtq_serve: the long-running serve-mode driver (docs/SERVE.md).
//
// Steps an engine indefinitely — at max speed or wall-clock paced — while
// accepting live control commands (see serve/control.h) from stdin or a
// --cmds script, streaming metrics JSON lines to stdout, and supporting
// deterministic snapshot/restore mid-flight.
//
//   rtq_serve [--workload=SPEC] [--policy=SPEC] [--seed=N]
//             [--shards=N]                serve a sharded cluster
//                                         (engine::ShardedRtdbs); metrics
//                                         stream one line per shard and
//                                         `snapshot` is rejected as
//                                         Unimplemented
//             [--placement=SPEC]          hash | range | skew:hot=F
//             [--admission=SPEC]          local | global:mpl=N
//             [--restore=PATH]            start from a `.rtqs` snapshot
//             [--cmds=PATH]               scripted mode: execute commands,
//                                         then exit (errors exit 2)
//             [--pace=R]                  R simulated seconds per wall
//                                         second; 0 = max speed (default)
//             [--metrics-every=N]         metrics line every N events
//                                         (default 20000; 0 = off)
//             [--max-events=N]            stop after N events (0 = no cap)
//             [--bench-json=DRIVER]       write results/BENCH_<DRIVER>.json
//                                         on exit (zero-drift CI gate)
//
// Streams: metrics JSON lines -> stdout; human-readable acks, stats and
// errors -> stderr. Exit 0 on a clean quit/EOF/cap, 2 on a fatal error
// (bad flags, unreadable snapshot, scripted-mode command failure).

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "harness/args.h"
#include "harness/bench_json.h"
#include "harness/metrics_streamer.h"
#include "harness/runner.h"
#include "serve/control.h"
#include "serve/serve_session.h"

namespace {

using rtq::Status;
using rtq::serve::Command;
using rtq::serve::ServeSession;
using rtq::serve::SessionSpec;
using rtq::serve::Snapshot;

/// Events stepped between control-channel polls; small enough that a
/// live command takes effect within milliseconds at max speed.
constexpr uint64_t kBatchEvents = 4096;

double WallNow() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

struct ServeState {
  std::unique_ptr<ServeSession> session;
  /// One streamer per shard (a single entry for unsharded sessions), so
  /// each shard's incremental record cursor advances independently.
  std::vector<std::unique_ptr<rtq::harness::MetricsStreamer>> streamers;
  int64_t metrics_every = 20000;
  uint64_t next_metrics = 0;
  uint64_t max_events = 0;  ///< 0 = uncapped
  bool quit = false;

  void ResetStreamer() {
    // A restored session replays history from event zero, so the
    // incremental record cursors must restart too.
    streamers.clear();
    if (session->sharded()) {
      for (int32_t s = 0; s < session->cluster().num_shards(); ++s) {
        streamers.push_back(
            std::make_unique<rtq::harness::MetricsStreamer>(stdout, s));
      }
    } else {
      streamers.push_back(
          std::make_unique<rtq::harness::MetricsStreamer>(stdout));
    }
    next_metrics =
        metrics_every > 0
            ? (session->events() / metrics_every + 1) *
                  static_cast<uint64_t>(metrics_every)
            : 0;
  }

  void EmitMetrics() {
    if (session->sharded()) {
      for (int32_t s = 0; s < session->cluster().num_shards(); ++s) {
        streamers[static_cast<size_t>(s)]->Emit(session->cluster().shard(s),
                                                WallNow());
      }
    } else {
      streamers[0]->Emit(session->system(), WallNow());
    }
  }

  bool AtCap() { return max_events > 0 && session->events() >= max_events; }

  /// Steps up to `n` events (respecting the --max-events cap), emitting
  /// metrics lines as event thresholds are crossed. Returns the number
  /// of events actually dispatched.
  uint64_t Step(uint64_t n) {
    uint64_t total = 0;
    while (total < n && !AtCap()) {
      uint64_t want = std::min(n - total, kBatchEvents);
      if (max_events > 0)
        want = std::min(want, max_events - session->events());
      uint64_t got = session->RunEvents(want);
      total += got;
      while (metrics_every > 0 && session->events() >= next_metrics) {
        EmitMetrics();
        next_metrics += static_cast<uint64_t>(metrics_every);
      }
      if (got < want) break;  // calendar drained
    }
    return total;
  }
};

void PrintStats(ServeState& state) {
  if (state.session->sharded()) {
    rtq::engine::ShardedRtdbs& cluster = state.session->cluster();
    rtq::engine::SystemSummary s = cluster.Summarize();
    std::fprintf(stderr,
                 "stats: t=%.3f events=%" PRIu64
                 " shards=%d completed=%lld missed=%lld miss_ratio=%.4f "
                 "cluster_mpl=%.2f policy=%s\n",
                 cluster.Now(), state.session->events(),
                 cluster.num_shards(),
                 static_cast<long long>(s.overall.completions),
                 static_cast<long long>(s.overall.misses),
                 s.overall.miss_ratio, s.avg_mpl,
                 cluster.shard(0).policy().Describe().c_str());
    for (int32_t sh = 0; sh < cluster.num_shards(); ++sh) {
      rtq::engine::SystemSummary ss = cluster.SummarizeShard(sh);
      std::fprintf(stderr,
                   "stats: shard=%d live=%lld completed=%lld missed=%lld "
                   "miss_ratio=%.4f routed_elsewhere=%lld\n",
                   sh, static_cast<long long>(cluster.shard(sh).live_queries()),
                   static_cast<long long>(ss.overall.completions),
                   static_cast<long long>(ss.overall.misses),
                   ss.overall.miss_ratio,
                   static_cast<long long>(cluster.shard(sh).routed_elsewhere()));
    }
    return;
  }
  rtq::engine::Rtdbs& sys = state.session->system();
  rtq::engine::SystemSummary s = sys.Summarize();
  std::fprintf(stderr,
               "stats: t=%.3f events=%" PRIu64
               " live=%lld completed=%lld missed=%lld miss_ratio=%.4f "
               "avg_mpl=%.2f policy=%s\n",
               sys.simulator().Now(), state.session->events(),
               static_cast<long long>(sys.live_queries()),
               static_cast<long long>(s.overall.completions),
               static_cast<long long>(s.overall.misses),
               s.overall.miss_ratio, s.avg_mpl,
               sys.policy().Describe().c_str());
}

/// Executes one parsed command. Returns Ok, or the failure for the
/// caller to report (scripted mode treats any failure as fatal).
Status Execute(ServeState& state, const Command& cmd) {
  switch (cmd.kind) {
    case Command::Kind::kNop:
      return Status::Ok();
    case Command::Kind::kRun: {
      uint64_t got = state.Step(cmd.count);
      if (got < cmd.count)
        return Status::Internal("run: event calendar drained after " +
                                std::to_string(got) + " events");
      return Status::Ok();
    }
    case Command::Kind::kPolicy: {
      rtq::engine::PolicySwapOutcome out =
          state.session->ApplyPolicy(cmd.arg);
      if (!out.status.ok()) return out.status;
      std::fprintf(stderr, "policy: active %s\n", out.active_spec.c_str());
      return Status::Ok();
    }
    case Command::Kind::kScenario: {
      auto canonical = state.session->ApplyScenario(cmd.arg);
      if (!canonical.ok()) return canonical.status();
      std::fprintf(stderr, "scenario: active %s\n",
                   canonical.value().c_str());
      return Status::Ok();
    }
    case Command::Kind::kStats:
      PrintStats(state);
      return Status::Ok();
    case Command::Kind::kMetrics:
      state.EmitMetrics();
      return Status::Ok();
    case Command::Kind::kSnapshot: {
      auto snap = state.session->TakeSnapshot();
      if (!snap.ok()) return snap.status();
      Status st = rtq::serve::WriteSnapshotFile(snap.value(), cmd.arg);
      if (!st.ok()) return st;
      std::fprintf(stderr, "snapshot: wrote %s at event %" PRIu64 "\n",
                   cmd.arg.c_str(), snap.value().position_events);
      return Status::Ok();
    }
    case Command::Kind::kRestore: {
      auto snap = rtq::serve::ReadSnapshotFile(cmd.arg);
      if (!snap.ok()) return snap.status();
      auto restored = ServeSession::Restore(snap.value());
      if (!restored.ok()) return restored.status();
      state.session = std::move(restored).value();
      state.ResetStreamer();
      std::fprintf(stderr, "restore: %s verified at event %" PRIu64 "\n",
                   cmd.arg.c_str(), state.session->events());
      return Status::Ok();
    }
    case Command::Kind::kQuit:
      state.quit = true;
      return Status::Ok();
  }
  return Status::Internal("unreachable command kind");
}

/// Scripted mode: execute the command file top to bottom. Any parse or
/// execution failure is fatal (deterministic CI behavior).
int RunScript(ServeState& state, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) {
    std::fprintf(stderr, "rtq_serve: cannot open --cmds file %s\n",
                 path.c_str());
    return 2;
  }
  std::string data;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);

  size_t pos = 0;
  int line_no = 0;
  while (pos <= data.size() && !state.quit) {
    size_t nl = data.find('\n', pos);
    std::string line = data.substr(
        pos, nl == std::string::npos ? std::string::npos : nl - pos);
    pos = nl == std::string::npos ? data.size() + 1 : nl + 1;
    ++line_no;
    if (line.empty() && pos > data.size()) break;

    auto cmd = rtq::serve::ParseCommand(line);
    Status st = cmd.ok() ? Execute(state, cmd.value()) : cmd.status();
    if (!st.ok()) {
      std::fprintf(stderr, "rtq_serve: %s:%d: %s\n", path.c_str(), line_no,
                   st.ToString().c_str());
      return 2;
    }
  }
  return 0;
}

/// Interactive mode: free-run (max speed or paced) while polling stdin
/// for control lines. Command failures are reported and survived — a
/// typo must not take down a long-running server. Exits on `quit`,
/// stdin EOF, the --max-events cap, or a drained calendar.
double SimNow(ServeState& state) {
  return state.session->sharded() ? state.session->cluster().Now()
                                  : state.session->system().simulator().Now();
}

int RunInteractive(ServeState& state, double pace) {
  std::string pending;
  bool eof = false;
  const double sim_start = SimNow(state);
  const double wall_start = WallNow();

  while (!state.quit) {
    // 1) Step the engine.
    uint64_t stepped = 0;
    if (!state.AtCap()) {
      uint64_t want = kBatchEvents;
      if (pace > 0.0) {
        // Paced: never let the simulated clock outrun
        // sim_start + pace * elapsed wall seconds.
        double target = sim_start + pace * (WallNow() - wall_start);
        if (SimNow(state) >= target) want = 0;
      }
      if (want > 0) stepped = state.Step(want);
      if (want > 0 && stepped == 0) {
        std::fprintf(stderr, "rtq_serve: event calendar drained\n");
        break;
      }
    }
    if (state.AtCap() && eof) break;

    // 2) Poll the control channel. Block only when there is nothing to
    // step (paced and ahead of schedule, or at the event cap).
    if (!eof) {
      struct pollfd pfd;
      pfd.fd = STDIN_FILENO;
      pfd.events = POLLIN;
      int timeout_ms = (stepped == 0 || state.AtCap()) ? 50 : 0;
      int rc = poll(&pfd, 1, timeout_ms);
      if (rc > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0) {
        char buf[4096];
        ssize_t got = read(STDIN_FILENO, buf, sizeof(buf));
        if (got <= 0) {
          eof = true;
          if (state.max_events == 0) break;
        } else {
          pending.append(buf, static_cast<size_t>(got));
        }
      }
      size_t nl;
      while (!state.quit && (nl = pending.find('\n')) != std::string::npos) {
        std::string line = pending.substr(0, nl);
        pending.erase(0, nl + 1);
        auto cmd = rtq::serve::ParseCommand(line);
        Status st = cmd.ok() ? Execute(state, cmd.value()) : cmd.status();
        if (!st.ok())
          std::fprintf(stderr, "rtq_serve: %s\n", st.ToString().c_str());
      }
    } else if (state.AtCap()) {
      break;
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  WallNow();  // pin the wall-clock epoch to process start
  rtq::harness::ArgParser args(argc, argv);
  SessionSpec spec;
  spec.workload = args.String("workload", spec.workload);
  spec.policy = args.String("policy", spec.policy);
  spec.seed = static_cast<uint64_t>(args.Int("seed", 42));
  spec.shards = static_cast<int32_t>(args.Int("shards", 1));
  spec.placement = args.String("placement", spec.placement);
  spec.admission = args.String("admission", spec.admission);
  std::string restore_path = args.String("restore", "");
  std::string cmds_path = args.String("cmds", "");
  double pace = args.Double("pace", 0.0);
  ServeState state;
  state.metrics_every = args.Int("metrics-every", 20000);
  state.max_events = static_cast<uint64_t>(args.Int("max-events", 0));
  std::string bench_json = args.String("bench-json", "");
  Status flag_status = args.Finish();
  if (!flag_status.ok()) {
    std::fprintf(stderr, "rtq_serve: %s\n", flag_status.ToString().c_str());
    return 2;
  }

  if (!restore_path.empty()) {
    // A snapshot's recorded genesis governs the restored session, and the
    // .rtqs grammar has no shard fields — refuse the contradictory flag
    // rather than silently restoring an unsharded session.
    if (spec.shards != 1) {
      std::fprintf(stderr,
                   "rtq_serve: --restore and --shards=%d conflict: snapshots "
                   "are unsharded (their genesis has no shard fields)\n",
                   spec.shards);
      return 2;
    }
    auto snap = rtq::serve::ReadSnapshotFile(restore_path);
    if (!snap.ok()) {
      std::fprintf(stderr, "rtq_serve: %s\n", snap.status().ToString().c_str());
      return 2;
    }
    auto restored = ServeSession::Restore(snap.value());
    if (!restored.ok()) {
      std::fprintf(stderr, "rtq_serve: %s\n",
                   restored.status().ToString().c_str());
      return 2;
    }
    state.session = std::move(restored).value();
    std::fprintf(stderr, "rtq_serve: restored %s at event %" PRIu64 "\n",
                 restore_path.c_str(), state.session->events());
  } else {
    auto created = ServeSession::Create(spec);
    if (!created.ok()) {
      std::fprintf(stderr, "rtq_serve: %s\n",
                   created.status().ToString().c_str());
      return 2;
    }
    state.session = std::move(created).value();
  }
  state.ResetStreamer();

  int rc = cmds_path.empty() ? RunInteractive(state, pace)
                             : RunScript(state, cmds_path);

  // Final metrics line so the stream always ends with the exit state.
  if (state.metrics_every > 0) state.EmitMetrics();

  if (rc == 0 && !bench_json.empty()) {
    rtq::harness::BenchJsonEmitter emitter(bench_json);
    rtq::harness::RunResult result;
    result.label = state.session->session_spec().workload;
    const bool sharded = state.session->sharded();
    rtq::engine::Rtdbs& front = sharded ? state.session->cluster().shard(0)
                                        : state.session->system();
    result.config = front.config();
    result.summary = sharded ? state.session->cluster().Summarize()
                             : front.Summarize();
    result.wall_seconds = WallNow();
    emitter.AddResult(result, front.policy().Describe(), /*lambda=*/0.0);
    Status st = emitter.WriteFile(WallNow());
    if (!st.ok()) {
      std::fprintf(stderr, "rtq_serve: %s\n", st.ToString().c_str());
      return 2;
    }
    std::fprintf(stderr, "rtq_serve: wrote %s\n", emitter.path().c_str());
  }
  return rc;
}
