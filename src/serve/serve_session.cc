#include "serve/serve_session.h"

#include <cmath>
#include <cstdlib>

#include "core/policy_registry.h"
#include "harness/paper_experiments.h"
#include "workload/scenario_registry.h"

namespace rtq::serve {

namespace {

bool ParsePositiveDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  if (!std::isfinite(v) || v <= 0.0) return false;
  *out = v;
  return true;
}

}  // namespace

StatusOr<engine::SystemConfig> ServeSession::BuildConfig(
    const SessionSpec& spec) {
  // Validate the policy spec up front: the registry is the authority on
  // the grammar, and a bad spec must fail here, not CHECK inside Rtdbs.
  auto policy = core::PolicyRegistry::Global().Create(spec.policy);
  if (!policy.ok()) return policy.status();
  engine::PolicyConfig pc(spec.policy);

  const std::string& w = spec.workload;
  size_t colon = w.find(':');
  std::string kind = colon == std::string::npos ? w : w.substr(0, colon);
  std::string rest = colon == std::string::npos ? "" : w.substr(colon + 1);

  if (kind == "baseline" || kind == "multiclass") {
    if (rest.rfind("rate=", 0) != 0)
      return Status::InvalidArgument("workload '" + w + "': expected '" +
                                     kind + ":rate=<queries/sec>'");
    double rate = 0.0;
    if (!ParsePositiveDouble(rest.substr(5), &rate))
      return Status::InvalidArgument("workload '" + w +
                                     "': rate must be a positive number");
    return kind == "baseline" ? harness::BaselineConfig(rate, pc, spec.seed)
                              : harness::MulticlassConfig(rate, pc, spec.seed);
  }
  if (kind == "scenario") {
    if (rest.empty())
      return Status::InvalidArgument(
          "workload 'scenario:' needs a scenario spec");
    auto scenario = workload::ScenarioRegistry::Global().Create(rest);
    if (!scenario.ok()) return scenario.status();
    // The serve twin of harness::ScenarioConfig, minus its CHECK on the
    // spec (live input must degrade to a Status, never abort).
    engine::SystemConfig config = harness::WorkloadChangeConfig(
        pc, /*medium_active=*/true, /*small_active=*/true, spec.seed);
    config.scenario = std::move(scenario).value();
    return config;
  }
  return Status::InvalidArgument(
      "unknown workload '" + w +
      "' (baseline:rate=R | multiclass:rate=R | scenario:SPEC)");
}

StatusOr<std::unique_ptr<ServeSession>> ServeSession::Create(
    const SessionSpec& spec) {
  auto config = BuildConfig(spec);
  if (!config.ok()) return config.status();
  if (spec.shards > 1) {
    engine::ShardConfig shard_config;
    shard_config.num_shards = spec.shards;
    shard_config.placement = spec.placement;
    shard_config.admission = spec.admission;
    auto cluster = engine::ShardedRtdbs::Create(config.value(), shard_config);
    if (!cluster.ok()) return cluster.status();
    return std::unique_ptr<ServeSession>(
        new ServeSession(spec, std::move(cluster).value()));
  }
  auto sys = engine::Rtdbs::Create(config.value());
  if (!sys.ok()) return sys.status();
  return std::unique_ptr<ServeSession>(
      new ServeSession(spec, std::move(sys).value()));
}

StatusOr<std::unique_ptr<ServeSession>> ServeSession::Restore(
    const Snapshot& snapshot) {
  auto created = Create(snapshot.session);
  if (!created.ok()) return created.status();
  std::unique_ptr<ServeSession> s = std::move(created).value();

  // Replay every journaled command at the event count it was originally
  // applied at. Re-applying re-journals, so a faithful replay rebuilds
  // the journal too — any divergence means the snapshot lied.
  for (const JournalEntry& e : snapshot.journal) {
    Status at = s->StepTo(e.events);
    if (!at.ok()) return at;
    if (e.command == "policy") {
      engine::PolicySwapOutcome out = s->ApplyPolicy(e.arg);
      if (!out.status.ok())
        return Status::Internal("journal replay: policy '" + e.arg +
                                "' rejected: " + out.status.message());
    } else {  // "scenario" — ParseSnapshot admits no other command
      auto canonical = s->ApplyScenario(e.arg);
      if (!canonical.ok())
        return Status::Internal("journal replay: scenario '" + e.arg +
                                "' rejected: " + canonical.status().message());
    }
    if (s->journal_.empty() || s->journal_.back() != e)
      return Status::Internal("journal replay diverged at '" + e.command +
                              " " + e.arg + "'");
  }

  Status at = s->StepTo(snapshot.position_events);
  if (!at.ok()) return at;

  // The digest is the proof obligation: every line of the rebuilt
  // session's state must match what the snapshot recorded.
  std::vector<std::string> digest;
  s->sys_->AppendStateDigest(&digest);
  if (digest.size() != snapshot.digest.size())
    return Status::Internal(
        "restore digest mismatch: snapshot has " +
        std::to_string(snapshot.digest.size()) + " lines, rebuilt state has " +
        std::to_string(digest.size()));
  for (size_t i = 0; i < digest.size(); ++i) {
    if (digest[i] != snapshot.digest[i])
      return Status::Internal("restore digest mismatch at line " +
                              std::to_string(i + 1) + ": snapshot '" +
                              snapshot.digest[i] + "' vs rebuilt '" +
                              digest[i] + "'");
  }
  return s;
}

uint64_t ServeSession::RunEvents(uint64_t n) {
  uint64_t stepped = 0;
  for (; stepped < n; ++stepped) {
    bool more = sharded() ? cluster_->StepEvent() : sys_->StepEvent();
    if (!more) break;
  }
  return stepped;
}

engine::PolicySwapOutcome ServeSession::ApplyPolicy(const std::string& spec) {
  engine::PolicySwapOutcome out;
  if (sharded()) {
    // Every shard swaps, or none: shard 0 probes the spec; the remaining
    // shards only swap after it succeeded. A rollback on shard 0 leaves
    // the whole cluster on the incumbent policy.
    out = cluster_->shard(0).SwapPolicy(spec);
    if (out.status.ok()) {
      for (int32_t s = 1; s < cluster_->num_shards(); ++s) {
        engine::PolicySwapOutcome rest = cluster_->shard(s).SwapPolicy(spec);
        RTQ_CHECK_MSG(rest.status.ok(),
                      "policy spec accepted by shard 0 but rejected later");
      }
    }
  } else {
    out = sys_->SwapPolicy(spec);
  }
  // Journal whenever a fresh instance was attached — including the
  // rollback after an attach failure, which resets adaptive state and
  // must therefore be reproduced by a replay.
  if (out.reattached)
    journal_.push_back(JournalEntry{events(), "policy", out.active_spec});
  return out;
}

StatusOr<std::string> ServeSession::ApplyScenario(const std::string& spec) {
  StatusOr<std::string> canonical = Status::Internal("unset");
  if (sharded()) {
    // Same protocol as ApplyPolicy. Every shard forks the new source
    // from its own live rng; those streams are identical across shards
    // (same genesis seed), so filtered replication still sees one global
    // arrival process.
    canonical = cluster_->shard(0).SwapScenario(spec);
    if (canonical.ok()) {
      for (int32_t s = 1; s < cluster_->num_shards(); ++s) {
        auto rest = cluster_->shard(s).SwapScenario(spec);
        RTQ_CHECK_MSG(rest.ok(),
                      "scenario spec accepted by shard 0 but rejected later");
      }
    }
  } else {
    canonical = sys_->SwapScenario(spec);
  }
  if (canonical.ok())
    journal_.push_back(JournalEntry{events(), "scenario", canonical.value()});
  return canonical;
}

StatusOr<Snapshot> ServeSession::TakeSnapshot() {
  if (sharded())
    return Status::Unimplemented(
        "snapshot of a sharded session: the .rtqs format has no shard "
        "fields yet; run with --shards=1 to snapshot");
  Snapshot snap;
  snap.session = spec_;
  snap.journal = journal_;
  snap.position_events = events();
  snap.position_time = sys_->simulator().Now();
  sys_->AppendStateDigest(&snap.digest);
  return snap;
}

Status ServeSession::StepTo(uint64_t target) {
  while (events() < target) {
    if (!sys_->StepEvent())
      return Status::Internal(
          "snapshot position unreachable: event calendar drained at " +
          std::to_string(events()) + " of " + std::to_string(target));
  }
  return Status::Ok();
}

}  // namespace rtq::serve
