// The `.rtqs` deterministic snapshot format (version 1).
//
// A snapshot is NOT a memory dump. The engine's event calendar holds
// arbitrary closures that cannot be serialized, so the format records a
// *recipe* instead: the session genesis (workload/policy/seed — enough
// to rebuild the identical system), the journal of state-mutating
// control commands with the exact event count at which each was applied,
// and the position (event count + simulated clock) the snapshot was
// taken at. Because the simulation is deterministic, rebuilding from
// genesis and replaying the journal at the recorded event boundaries
// reproduces the snapshotted state bit-for-bit — restore-then-continue
// is indistinguishable from an uninterrupted run.
//
// The digest section makes that claim checkable rather than assumed:
// it captures one line per engine state dimension (clock, calendar
// keys, per-query runtime, CPU/disk/cache, memory manager, policy,
// source cursors, rng fingerprints — see Rtdbs::AppendStateDigest).
// Restore recomputes the digest after replay and any differing line
// fails the restore with a Status error naming it.
//
// Grammar (line-oriented text; '#' starts a comment, blank lines are
// ignored; tokens are space-separated; mirrors `.rtqt`):
//
//   snapshot := "rtqs 1" NL
//               "workload" SPEC NL
//               "policy" SPEC NL
//               "seed" UINT NL
//               "journal" INT NL
//               ("j" EVENTS ("policy"|"scenario") SPEC NL)*
//               "position" EVENTS TIME NL
//               "digest" INT NL
//               ("s" TEXT NL)*
//               "end" NL
//
// Journal event counts must be non-decreasing and <= the position's;
// all structural violations surface as Status errors, never crashes —
// a corrupt snapshot must not take down a serving process.

#ifndef RTQ_SERVE_SNAPSHOT_H_
#define RTQ_SERVE_SNAPSHOT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace rtq::serve {

/// The genesis of a serve session: everything needed to rebuild the
/// identical system from scratch. `workload` uses the serve workload
/// grammar ("baseline:rate=R" | "multiclass:rate=R" | "scenario:SPEC");
/// `policy` is a core::PolicyRegistry spec.
struct SessionSpec {
  std::string workload = "baseline:rate=0.06";
  std::string policy = "pmm";
  uint64_t seed = 42;
  /// Sharded serving (engine::ShardedRtdbs) when shards > 1. Sharded
  /// sessions run, stream metrics, and accept live reconfig, but do not
  /// snapshot yet — TakeSnapshot returns Unimplemented, and the `.rtqs`
  /// grammar deliberately has no shard fields until they do.
  int32_t shards = 1;
  std::string placement = "hash";
  std::string admission = "local";
};

/// One state-mutating control command, recorded at the event count it
/// was applied at. `arg` is the canonical (registry round-trippable)
/// spec, so replaying it rebuilds the same object.
struct JournalEntry {
  uint64_t events = 0;
  std::string command;  ///< "policy" | "scenario"
  std::string arg;
};

struct Snapshot {
  /// Format version; only 1 exists.
  int32_t version = 1;
  SessionSpec session;
  std::vector<JournalEntry> journal;
  /// Events dispatched / simulated clock at the snapshot instant.
  uint64_t position_events = 0;
  double position_time = 0.0;
  /// Engine state digest lines (Rtdbs::AppendStateDigest), verified
  /// line-by-line after a restore replay.
  std::vector<std::string> digest;
};

bool operator==(const SessionSpec& a, const SessionSpec& b);
bool operator!=(const SessionSpec& a, const SessionSpec& b);
bool operator==(const JournalEntry& a, const JournalEntry& b);
bool operator!=(const JournalEntry& a, const JournalEntry& b);
bool operator==(const Snapshot& a, const Snapshot& b);
bool operator!=(const Snapshot& a, const Snapshot& b);

/// Parse(Serialize(s)) == s is a fixed point (doubles use the shortest
/// bit-exact rendering).
std::string SerializeSnapshot(const Snapshot& snapshot);

/// Parses `.rtqs` text. Malformed input — bad or missing version header,
/// truncated sections, non-numeric fields, out-of-order journal events,
/// count mismatches, a missing "end" — returns an InvalidArgument Status
/// naming the offending line.
StatusOr<Snapshot> ParseSnapshot(const std::string& text);

Status WriteSnapshotFile(const Snapshot& snapshot, const std::string& path);
StatusOr<Snapshot> ReadSnapshotFile(const std::string& path);

}  // namespace rtq::serve

#endif  // RTQ_SERVE_SNAPSHOT_H_
