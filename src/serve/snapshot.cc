#include "serve/snapshot.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

#include "workload/trace.h"

namespace rtq::serve {

namespace {

Status LineError(size_t line, const std::string& what) {
  return Status::InvalidArgument("snapshot line " + std::to_string(line) +
                                 ": " + what);
}

/// Strict whole-token strtoull; rejects empty, sign and trailing junk.
bool ParseUint64(const std::string& token, uint64_t* out) {
  if (token.empty() || token[0] == '-' || token[0] == '+') return false;
  char* end = nullptr;
  unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) return false;
  *out = v;
  return true;
}

bool ParseFiniteDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

/// Cursor over the text's meaningful lines (comments and blanks
/// skipped), tracking 1-based line numbers for error messages.
class LineReader {
 public:
  explicit LineReader(const std::string& text) : in_(text) {}

  /// Advances to the next meaningful line. False at end of input.
  bool Next() {
    std::string line;
    while (std::getline(in_, line)) {
      ++line_no_;
      size_t i = line.find_first_not_of(" \t\r");
      if (i == std::string::npos || line[i] == '#') continue;
      if (!line.empty() && line.back() == '\r') line.pop_back();
      line_ = line;
      return true;
    }
    return false;
  }

  /// First whitespace-separated token of the current line.
  std::string Head() const {
    size_t start = line_.find_first_not_of(" \t");
    size_t end = line_.find_first_of(" \t", start);
    if (end == std::string::npos) return line_.substr(start);
    return line_.substr(start, end - start);
  }

  /// The current line with its first `n` tokens removed — rest-of-line
  /// values (specs, digest text) survive verbatim.
  std::string Rest(size_t n) const {
    size_t i = line_.find_first_not_of(" \t");
    for (size_t k = 0; k < n; ++k) {
      if (i == std::string::npos) return "";
      i = line_.find_first_of(" \t", i);
      if (i == std::string::npos) return "";
      i = line_.find_first_not_of(" \t", i);
    }
    return i == std::string::npos ? "" : line_.substr(i);
  }

  /// Token at index `k` (0-based) of the current line; "" when absent.
  std::string Token(size_t k) const {
    size_t i = line_.find_first_not_of(" \t");
    for (size_t step = 0; step < k; ++step) {
      if (i == std::string::npos) return "";
      i = line_.find_first_of(" \t", i);
      if (i == std::string::npos) return "";
      i = line_.find_first_not_of(" \t", i);
    }
    if (i == std::string::npos) return "";
    size_t end = line_.find_first_of(" \t", i);
    if (end == std::string::npos) return line_.substr(i);
    return line_.substr(i, end - i);
  }

  size_t line_no() const { return line_no_; }

 private:
  std::istringstream in_;
  std::string line_;
  size_t line_no_ = 0;
};

}  // namespace

bool operator==(const SessionSpec& a, const SessionSpec& b) {
  return a.workload == b.workload && a.policy == b.policy &&
         a.seed == b.seed && a.shards == b.shards &&
         a.placement == b.placement && a.admission == b.admission;
}
bool operator!=(const SessionSpec& a, const SessionSpec& b) {
  return !(a == b);
}
bool operator==(const JournalEntry& a, const JournalEntry& b) {
  return a.events == b.events && a.command == b.command && a.arg == b.arg;
}
bool operator!=(const JournalEntry& a, const JournalEntry& b) {
  return !(a == b);
}
bool operator==(const Snapshot& a, const Snapshot& b) {
  return a.version == b.version && a.session == b.session &&
         a.journal == b.journal && a.position_events == b.position_events &&
         a.position_time == b.position_time && a.digest == b.digest;
}
bool operator!=(const Snapshot& a, const Snapshot& b) { return !(a == b); }

std::string SerializeSnapshot(const Snapshot& snapshot) {
  std::string out;
  out += "rtqs " + std::to_string(snapshot.version) + "\n";
  out += "workload " + snapshot.session.workload + "\n";
  out += "policy " + snapshot.session.policy + "\n";
  out += "seed " + std::to_string(snapshot.session.seed) + "\n";
  out += "journal " + std::to_string(snapshot.journal.size()) + "\n";
  for (const JournalEntry& e : snapshot.journal) {
    out += "j " + std::to_string(e.events) + " " + e.command + " " + e.arg +
           "\n";
  }
  out += "position " + std::to_string(snapshot.position_events) + " " +
         workload::FormatDouble(snapshot.position_time) + "\n";
  out += "digest " + std::to_string(snapshot.digest.size()) + "\n";
  for (const std::string& line : snapshot.digest) {
    out += "s " + line + "\n";
  }
  out += "end\n";
  return out;
}

StatusOr<Snapshot> ParseSnapshot(const std::string& text) {
  Snapshot snap;
  LineReader in(text);

  if (!in.Next()) return LineError(in.line_no(), "empty snapshot");
  if (in.Head() != "rtqs")
    return LineError(in.line_no(), "not a snapshot (expected 'rtqs 1')");
  uint64_t version = 0;
  if (!ParseUint64(in.Token(1), &version) || version != 1)
    return LineError(in.line_no(),
                     "unsupported snapshot version '" + in.Token(1) + "'");
  snap.version = static_cast<int32_t>(version);

  if (!in.Next() || in.Head() != "workload")
    return LineError(in.line_no(), "expected 'workload <spec>'");
  snap.session.workload = in.Rest(1);
  if (snap.session.workload.empty())
    return LineError(in.line_no(), "empty workload spec");

  if (!in.Next() || in.Head() != "policy")
    return LineError(in.line_no(), "expected 'policy <spec>'");
  snap.session.policy = in.Rest(1);
  if (snap.session.policy.empty())
    return LineError(in.line_no(), "empty policy spec");

  if (!in.Next() || in.Head() != "seed")
    return LineError(in.line_no(), "expected 'seed <uint>'");
  if (!ParseUint64(in.Token(1), &snap.session.seed) ||
      !in.Rest(2).empty())
    return LineError(in.line_no(), "bad seed '" + in.Rest(1) + "'");

  if (!in.Next() || in.Head() != "journal")
    return LineError(in.line_no(), "expected 'journal <count>'");
  uint64_t journal_count = 0;
  if (!ParseUint64(in.Token(1), &journal_count) || !in.Rest(2).empty())
    return LineError(in.line_no(), "bad journal count '" + in.Rest(1) + "'");

  uint64_t prev_events = 0;
  for (uint64_t i = 0; i < journal_count; ++i) {
    if (!in.Next() || in.Head() != "j")
      return LineError(in.line_no(),
                       "expected " + std::to_string(journal_count) +
                           " journal entries, got " + std::to_string(i));
    JournalEntry entry;
    if (!ParseUint64(in.Token(1), &entry.events))
      return LineError(in.line_no(),
                       "bad journal event count '" + in.Token(1) + "'");
    entry.command = in.Token(2);
    if (entry.command != "policy" && entry.command != "scenario")
      return LineError(in.line_no(),
                       "unknown journal command '" + entry.command + "'");
    entry.arg = in.Rest(3);
    if (entry.arg.empty())
      return LineError(in.line_no(), "journal entry with empty spec");
    if (entry.events < prev_events)
      return LineError(in.line_no(), "journal event counts must not decrease");
    prev_events = entry.events;
    snap.journal.push_back(std::move(entry));
  }

  if (!in.Next() || in.Head() != "position")
    return LineError(in.line_no(), "expected 'position <events> <time>'");
  if (!ParseUint64(in.Token(1), &snap.position_events))
    return LineError(in.line_no(), "bad position events '" + in.Token(1) + "'");
  if (!ParseFiniteDouble(in.Token(2), &snap.position_time) ||
      snap.position_time < 0.0 || !in.Rest(3).empty())
    return LineError(in.line_no(), "bad position time '" + in.Rest(2) + "'");
  if (!snap.journal.empty() &&
      snap.journal.back().events > snap.position_events)
    return LineError(in.line_no(),
                     "journal extends past the snapshot position");

  if (!in.Next() || in.Head() != "digest")
    return LineError(in.line_no(), "expected 'digest <count>'");
  uint64_t digest_count = 0;
  if (!ParseUint64(in.Token(1), &digest_count) || !in.Rest(2).empty())
    return LineError(in.line_no(), "bad digest count '" + in.Rest(1) + "'");
  for (uint64_t i = 0; i < digest_count; ++i) {
    if (!in.Next() || in.Head() != "s")
      return LineError(in.line_no(),
                       "expected " + std::to_string(digest_count) +
                           " digest lines, got " + std::to_string(i));
    std::string line = in.Rest(1);
    if (line.empty())
      return LineError(in.line_no(), "empty digest line");
    snap.digest.push_back(std::move(line));
  }

  if (!in.Next() || in.Head() != "end" || !in.Rest(1).empty())
    return LineError(in.line_no(), "missing 'end' terminator (truncated?)");
  if (in.Next())
    return LineError(in.line_no(), "trailing content after 'end'");
  return snap;
}

Status WriteSnapshotFile(const Snapshot& snapshot, const std::string& path) {
  std::error_code ec;
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) return Status::Internal("mkdir failed: " + ec.message());
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  std::string data = SerializeSnapshot(snapshot);
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size()) return Status::Internal("short write to " + path);
  return Status::Ok();
}

StatusOr<Snapshot> ReadSnapshotFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string data;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);
  return ParseSnapshot(data);
}

}  // namespace rtq::serve
