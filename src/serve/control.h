// The serve-mode control grammar: one command per line.
//
// The control channel (stdin or a --cmds script) is untrusted input to a
// long-running process, so parsing never crashes: every malformed line
// becomes an InvalidArgument Status the driver reports and survives.
//
//   run <events>       step the engine by <events> events (scripts only;
//                      interactive mode free-runs between commands)
//   policy <spec>      hot-swap the memory policy (PolicyRegistry spec)
//   scenario <spec>    swap the arrival stream (ScenarioRegistry spec)
//   stats              print a human-readable summary to stderr
//   metrics            emit one metrics JSON line now
//   snapshot <path>    write a `.rtqs` snapshot of the current state
//   restore <path>     replace the running session from a snapshot
//   quit               exit the serve loop
//
// Blank lines and lines starting with '#' are no-ops.

#ifndef RTQ_SERVE_CONTROL_H_
#define RTQ_SERVE_CONTROL_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace rtq::serve {

struct Command {
  enum class Kind {
    kNop,  ///< blank line or comment
    kRun,
    kPolicy,
    kScenario,
    kStats,
    kMetrics,
    kSnapshot,
    kRestore,
    kQuit,
  };

  Kind kind = Kind::kNop;
  uint64_t count = 0;  ///< kRun: number of events to step
  std::string arg;     ///< kPolicy/kScenario: spec; kSnapshot/kRestore: path
};

/// Parses one control line. Unknown keywords, missing or malformed
/// arguments, and trailing junk after argument-less commands all return
/// InvalidArgument (quoting the offending input), never crash.
StatusOr<Command> ParseCommand(const std::string& line);

}  // namespace rtq::serve

#endif  // RTQ_SERVE_CONTROL_H_
