#include "sim/simulator.h"

namespace rtq::sim {

uint64_t Simulator::RunUntil(SimTime until) {
  uint64_t count = 0;
  stop_requested_ = false;
  EventQueue::Callback cb;
  while (!events_.Empty() && !stop_requested_) {
    if (events_.PeekTime() > until) break;
    SimTime when = events_.PopInto(&cb);
    RTQ_DCHECK(when >= now_);
    now_ = when;
    cb();
    ++dispatched_;
    ++count;
  }
  // Advance the clock to the horizon so repeated bounded runs compose.
  if (now_ < until) now_ = until;
  return count;
}

uint64_t Simulator::RunToCompletion() {
  uint64_t count = 0;
  stop_requested_ = false;
  EventQueue::Callback cb;
  while (!events_.Empty() && !stop_requested_) {
    SimTime when = events_.PopInto(&cb);
    RTQ_DCHECK(when >= now_);
    now_ = when;
    cb();
    ++dispatched_;
    ++count;
  }
  return count;
}

bool Simulator::Step() {
  if (events_.Empty()) return false;
  EventQueue::Callback cb;
  SimTime when = events_.PopInto(&cb);
  RTQ_DCHECK(when >= now_);
  now_ = when;
  cb();
  ++dispatched_;
  return true;
}

}  // namespace rtq::sim
