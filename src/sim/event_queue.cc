#include "sim/event_queue.h"

#include <utility>

#include "common/check.h"

namespace rtq::sim {

EventId EventQueue::Schedule(SimTime when, Callback cb) {
  RTQ_CHECK_MSG(when == when, "event time must not be NaN");  // NaN check
  EventId id = next_id_++;
  heap_.push(Entry{when, id});
  callbacks_.emplace(id, std::move(cb));
  ++live_count_;
  return id;
}

bool EventQueue::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_count_;
  return true;
}

void EventQueue::SkimCancelled() {
  while (!heap_.empty() &&
         callbacks_.find(heap_.top().id) == callbacks_.end()) {
    heap_.pop();
  }
}

SimTime EventQueue::PeekTime() {
  SkimCancelled();
  RTQ_CHECK_MSG(!heap_.empty(), "PeekTime on empty queue");
  return heap_.top().time;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::Pop() {
  SkimCancelled();
  RTQ_CHECK_MSG(!heap_.empty(), "Pop on empty queue");
  Entry top = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(top.id);
  RTQ_DCHECK(it != callbacks_.end());
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  --live_count_;
  return {top.time, std::move(cb)};
}

}  // namespace rtq::sim
