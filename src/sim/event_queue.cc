#include "sim/event_queue.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace rtq::sim {

bool EventQueue::Cancel(EventId id) {
  uint64_t slot_plus_one = id >> 32;
  if (slot_plus_one == 0 || slot_plus_one > slots_.size()) return false;
  uint32_t slot = static_cast<uint32_t>(slot_plus_one - 1);
  uint32_t gen = static_cast<uint32_t>(id);
  Slot& s = slots_[slot];
  if (s.gen != gen) return false;  // already fired, cancelled, or recycled
  s.cb = nullptr;
  ++s.gen;  // odd -> even: slot is free; the heap entry is now stale
  free_slots_.push_back(slot);
  --live_count_;
  return true;
}

void EventQueue::SiftUp(size_t i) const {
  HeapEntry e = heap_[i];
  while (i > 0) {
    size_t parent = (i - 1) / kArity;
    if (!Before(e, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = e;
}

void EventQueue::SiftDown(size_t i) const {
  HeapEntry e = heap_[i];
  const size_t n = heap_size_;
  for (;;) {
    size_t first_child = i * kArity + 1;
    if (first_child >= n) break;
    size_t last_child = first_child + kArity;
    if (last_child > n) last_child = n;
    size_t best = first_child;
    for (size_t c = first_child + 1; c < last_child; ++c) {
      if (Before(heap_[c], heap_[best])) best = c;
    }
    if (!Before(heap_[best], e)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = e;
}

void EventQueue::PopRoot() const {
  heap_[0] = heap_[--heap_size_];
  if (heap_size_ != 0) SiftDown(0);
}

void EventQueue::SkimCancelled() const {
  while (heap_size_ != 0 && Stale(heap_[0])) PopRoot();
}

std::vector<std::pair<SimTime, uint64_t>> EventQueue::ExportPending() const {
  std::vector<std::pair<SimTime, uint64_t>> pending;
  pending.reserve(live_count_);
  for (size_t i = 0; i < heap_size_; ++i) {
    if (!Stale(heap_[i])) pending.emplace_back(heap_[i].time, heap_[i].seq);
  }
  std::sort(pending.begin(), pending.end());
  return pending;
}

SimTime EventQueue::PeekTime() const {
  SkimCancelled();
  RTQ_CHECK_MSG(heap_size_ != 0, "PeekTime on empty queue");
  return heap_[0].time;
}

std::pair<SimTime, EventQueue::Callback> EventQueue::Pop() {
  Callback cb;
  SimTime when = PopInto(&cb);
  return {when, std::move(cb)};
}

SimTime EventQueue::PopInto(Callback* cb) {
  SkimCancelled();
  RTQ_CHECK_MSG(heap_size_ != 0, "Pop on empty queue");
  const HeapEntry top = heap_[0];
  Slot& s = slots_[top.slot];
  RTQ_DCHECK(s.gen == top.gen);
  *cb = std::move(s.cb);  // leaves the slot's callback empty
  ++s.gen;  // odd -> even: recycle the slot
  free_slots_.push_back(top.slot);
  --live_count_;
  PopRoot();
  return top.time;
}

}  // namespace rtq::sim
