// The discrete-event simulation driver.
//
// This is the reproduction's substitute for DeNet [Livn90], the simulation
// language the paper's simulator was written in: a clock plus an event
// calendar, with helpers for relative scheduling and bounded runs. All
// model components (CPU, disks, source, PMM) hang off one Simulator and
// interact purely by scheduling callbacks.

#ifndef RTQ_SIM_SIMULATOR_H_
#define RTQ_SIM_SIMULATOR_H_

#include <cstdint>

#include "common/check.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace rtq::sim {

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  /// Current simulated time in seconds.
  SimTime Now() const { return now_; }

  /// Schedules `f` after `delay` seconds of simulated time. The callable
  /// is forwarded through to the calendar slot (see EventQueue::Schedule).
  template <typename F>
  EventId ScheduleAfter(SimTime delay, F&& f) {
    RTQ_CHECK_MSG(delay >= 0.0, "negative event delay");
    return events_.Schedule(now_ + delay, std::forward<F>(f));
  }

  /// Schedules `f` at absolute simulated time `when` (>= Now()).
  template <typename F>
  EventId ScheduleAt(SimTime when, F&& f) {
    RTQ_CHECK_MSG(when >= now_, "event scheduled in the past");
    return events_.Schedule(when, std::forward<F>(f));
  }

  /// Cancels a pending event; see EventQueue::Cancel.
  bool Cancel(EventId id) { return events_.Cancel(id); }

  /// Runs until the calendar is empty or the clock passes `until`.
  /// Events at exactly `until` still fire. Returns the number of events
  /// dispatched by this call.
  uint64_t RunUntil(SimTime until);

  /// Runs until the calendar drains completely.
  uint64_t RunToCompletion();

  /// Dispatches a single event if one exists. Returns false when empty.
  bool Step();

  /// Requests that the current Run* call return after the in-flight event.
  void RequestStop() { stop_requested_ = true; }

  /// Total events dispatched over the simulator's lifetime.
  uint64_t events_dispatched() const { return dispatched_; }

  /// Live events awaiting dispatch.
  size_t pending_events() const { return events_.Size(); }

  /// Read-only view of the event calendar; snapshot digests export its
  /// pending (time, seq) keys through this.
  const EventQueue& queue() const { return events_; }

 private:
  EventQueue events_;
  SimTime now_ = 0.0;
  uint64_t dispatched_ = 0;
  bool stop_requested_ = false;
};

}  // namespace rtq::sim

#endif  // RTQ_SIM_SIMULATOR_H_
