// Calendar of pending simulation events.
//
// A binary min-heap keyed on (time, sequence-number): events at equal
// simulated times fire in scheduling order, which makes runs fully
// deterministic. Cancellation is lazy — cancelled entries are tombstoned
// and skipped at pop time — so Cancel() is O(1) and the heap never needs
// random-access deletion.

#ifndef RTQ_SIM_EVENT_QUEUE_H_
#define RTQ_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace rtq::sim {

/// Opaque token identifying a scheduled event; used to cancel it.
using EventId = uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `cb` to fire at absolute simulated time `when`.
  EventId Schedule(SimTime when, Callback cb);

  /// Cancels a pending event. Returns false if the event already fired,
  /// was already cancelled, or never existed.
  bool Cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  bool Empty() const { return live_count_ == 0; }

  /// Number of live events.
  size_t Size() const { return live_count_; }

  /// Time of the earliest live event. Requires !Empty().
  SimTime PeekTime();

  /// Removes and returns the earliest live event. Requires !Empty().
  /// The returned pair is (time, callback).
  std::pair<SimTime, Callback> Pop();

  /// Total events ever scheduled (live + fired + cancelled); for stats.
  uint64_t total_scheduled() const { return next_id_ - 1; }

 private:
  struct Entry {
    SimTime time;
    EventId id;
    bool operator>(const Entry& other) const {
      if (time != other.time) return time > other.time;
      return id > other.id;
    }
  };

  /// Drops cancelled entries from the heap top.
  void SkimCancelled();

  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_map<EventId, Callback> callbacks_;
  EventId next_id_ = 1;
  size_t live_count_ = 0;
};

}  // namespace rtq::sim

#endif  // RTQ_SIM_EVENT_QUEUE_H_
