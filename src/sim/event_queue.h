// Calendar of pending simulation events.
//
// A slab-allocated, indexed 4-ary min-heap keyed on (time, sequence
// number): events at equal simulated times fire in scheduling order,
// which makes runs fully deterministic. Callbacks live in recycled slab
// slots addressed by index, so scheduling does no hash-map insert and
// popping does no hash-map lookup; slots carry a generation counter so
// Cancel() is O(1) — it retires the slot immediately and the stale heap
// entry, recognized by its outdated generation, is dropped for free the
// next time it surfaces at the heap root. The 4-ary layout halves the
// sift-down depth of a binary heap and keeps siblings on one cache line.

#ifndef RTQ_SIM_EVENT_QUEUE_H_
#define RTQ_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/check.h"
#include "common/inline_callback.h"
#include "common/types.h"

namespace rtq::sim {

/// Opaque token identifying a scheduled event; used to cancel it.
using EventId = uint64_t;

inline constexpr EventId kInvalidEventId = 0;

class EventQueue {
 public:
  // Inline small-buffer callback: scheduling never heap-allocates, and
  // capture sizes are bounded at compile time (see
  // common/inline_callback.h). 48 bytes covers the widest simulator
  // capture with headroom.
  using Callback = InlineCallback<48>;

  EventQueue() = default;
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  /// Schedules `f` to fire at absolute simulated time `when`. The
  /// callable is constructed directly in its slab slot: no intermediate
  /// Callback holder, no relocation on the way in.
  template <typename F>
  EventId Schedule(SimTime when, F&& f) {
    RTQ_CHECK_MSG(when == when, "event time must not be NaN");  // NaN check
    uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      slot = static_cast<uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    Slot& s = slots_[slot];
    s.cb = std::forward<F>(f);
    ++s.gen;  // even -> odd: slot is live
    uint64_t seq = ++scheduled_;
    // heap_ is used as plain storage with heap_size_ as the logical
    // size, so the hot push is a bounds check plus one store instead of
    // a push_back carrying its reallocation slow path.
    if (heap_size_ == heap_.size()) {
      heap_.resize(heap_.empty() ? 64 : heap_.size() * 2);
    }
    heap_[heap_size_] = HeapEntry{when, seq, slot, s.gen};
    SiftUp(heap_size_);
    ++heap_size_;
    ++live_count_;
    return MakeId(slot, s.gen);
  }

  /// Cancels a pending event in O(1). Returns false if the event already
  /// fired, was already cancelled, or never existed.
  bool Cancel(EventId id);

  /// True if no live (non-cancelled) events remain.
  bool Empty() const { return live_count_ == 0; }

  /// Number of live events.
  size_t Size() const { return live_count_; }

  /// Time of the earliest live event. Requires !Empty().
  SimTime PeekTime() const;

  /// Removes and returns the earliest live event. Requires !Empty().
  /// The returned pair is (time, callback).
  std::pair<SimTime, Callback> Pop();

  /// Like Pop(), but moves the callback into `*cb` (overwriting it) and
  /// returns only the event time — the simulator loop reuses one local
  /// holder instead of materializing a pair per event.
  SimTime PopInto(Callback* cb);

  /// Total events ever scheduled (live + fired + cancelled); for stats.
  uint64_t total_scheduled() const { return scheduled_; }

  /// The live calendar contents as (time, seq) keys in firing order —
  /// the snapshot digest's view of pending events. Callbacks are not
  /// exported; deterministic restore reconstructs them by replaying the
  /// run up to the snapshot position.
  std::vector<std::pair<SimTime, uint64_t>> ExportPending() const;

 private:
  /// A recycled callback slot. `gen` is odd while the slot holds a live
  /// event and even while it is free; every hand-over bumps it, so an
  /// EventId or heap entry minted for an earlier occupant can never
  /// match a recycled slot.
  struct Slot {
    Callback cb;
    uint32_t gen = 0;
  };

  /// One heap element. The ordering key (time, seq) is stored inline so
  /// sifting never dereferences the slab; (slot, gen) identifies the
  /// event and exposes stale (cancelled) entries by generation mismatch.
  struct HeapEntry {
    SimTime time;
    uint64_t seq;
    uint32_t slot;
    uint32_t gen;
  };

  static constexpr size_t kArity = 4;

  static bool Before(const HeapEntry& a, const HeapEntry& b) {
    if (a.time != b.time) return a.time < b.time;
    return a.seq < b.seq;
  }

  /// True when the heap entry refers to a cancelled (or recycled) slot.
  bool Stale(const HeapEntry& e) const { return slots_[e.slot].gen != e.gen; }

  // The heap helpers are const so the lazy skim can run from const
  // accessors; they only touch the mutable heap_.
  void SiftUp(size_t i) const;
  void SiftDown(size_t i) const;
  void PopRoot() const;
  /// Drops stale entries from the heap top. Observationally const: it
  /// only discards entries whose events no longer exist.
  void SkimCancelled() const;

  static EventId MakeId(uint32_t slot, uint32_t gen) {
    return (static_cast<EventId>(slot) + 1) << 32 | gen;
  }

  /// Heap storage; heap_[0 .. heap_size_) is the live heap, the rest is
  /// pre-grown capacity (see Schedule).
  mutable std::vector<HeapEntry> heap_;
  mutable size_t heap_size_ = 0;
  std::vector<Slot> slots_;
  std::vector<uint32_t> free_slots_;
  uint64_t scheduled_ = 0;
  size_t live_count_ = 0;
};

}  // namespace rtq::sim

#endif  // RTQ_SIM_EVENT_QUEUE_H_
