#include "storage/database.h"

#include <algorithm>
#include <numeric>
#include <string>

#include "common/check.h"

namespace rtq::storage {

Status DatabaseSpec::Validate(const model::DiskParams& disk) const {
  if (groups.empty())
    return Status::InvalidArgument("database needs at least one group");
  if (num_disks <= 0)
    return Status::InvalidArgument("num_disks must be > 0");
  PageCount per_disk_total = 0;
  for (const RelationGroupSpec& g : groups) {
    if (g.rel_per_disk <= 0)
      return Status::InvalidArgument("rel_per_disk must be > 0");
    if (g.min_pages <= 0 || g.max_pages < g.min_pages)
      return Status::InvalidArgument("invalid relation size range");
    // Upper bound on the group's footprint per disk.
    per_disk_total += static_cast<PageCount>(g.rel_per_disk) * g.max_pages;
  }
  if (per_disk_total > disk.capacity())
    return Status::OutOfRange(
        "relations exceed disk capacity (" +
        std::to_string(per_disk_total) + " > " +
        std::to_string(disk.capacity()) + " pages)");
  return Status::Ok();
}

StatusOr<Database> Database::Create(const DatabaseSpec& spec,
                                    const model::DiskParams& disk_params,
                                    Rng* rng) {
  RTQ_CHECK(rng != nullptr);
  RTQ_RETURN_IF_ERROR(spec.Validate(disk_params));

  Database db;
  db.num_disks_ = spec.num_disks;
  db.by_group_.resize(spec.groups.size());
  db.area_begin_.resize(spec.num_disks);
  db.area_end_.resize(spec.num_disks);

  // Sizes per group, spaced at equal intervals across the range (the
  // paper's example: range [100, 200] with 5 relations gives sizes
  // 100, 125, 150, 175, 200).
  std::vector<std::vector<PageCount>> group_sizes(spec.groups.size());
  for (size_t g = 0; g < spec.groups.size(); ++g) {
    const RelationGroupSpec& gs = spec.groups[g];
    int32_t n = gs.rel_per_disk;
    for (int32_t j = 0; j < n; ++j) {
      PageCount size =
          n == 1 ? (gs.min_pages + gs.max_pages) / 2
                 : gs.min_pages + (gs.max_pages - gs.min_pages) * j / (n - 1);
      group_sizes[g].push_back(size);
    }
  }

  for (DiskId d = 0; d < spec.num_disks; ++d) {
    // Gather this disk's relations (one entry per group x rel_per_disk),
    // then shuffle them so placement order within the middle band is
    // random, as the paper prescribes.
    struct Pending {
      int32_t group;
      PageCount pages;
    };
    std::vector<Pending> pending;
    for (size_t g = 0; g < spec.groups.size(); ++g) {
      for (PageCount size : group_sizes[g]) {
        pending.push_back(Pending{static_cast<int32_t>(g), size});
      }
    }
    for (size_t i = pending.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(rng->UniformInt(0, i - 1));
      std::swap(pending[i - 1], pending[j]);
    }

    PageCount total = 0;
    for (const Pending& p : pending) total += p.pages;

    // Centre the relation band on the middle cylinder.
    PageCount capacity = disk_params.capacity();
    PageCount begin = (capacity - total) / 2;
    db.area_begin_[d] = begin;
    db.area_end_[d] = begin + total;

    PageCount cursor = begin;
    for (const Pending& p : pending) {
      Relation rel;
      rel.id = static_cast<RelationId>(db.relations_.size());
      rel.group = p.group;
      rel.disk = d;
      rel.start_page = cursor;
      rel.pages = p.pages;
      cursor += p.pages;
      db.by_group_[p.group].push_back(rel.id);
      db.relations_.push_back(rel);
    }
  }
  return db;
}

const std::vector<RelationId>& Database::RelationsInGroup(
    int32_t group) const {
  RTQ_CHECK_MSG(group >= 0 && group < num_groups(), "bad group index");
  return by_group_[group];
}

const Relation& Database::relation(RelationId id) const {
  RTQ_CHECK_MSG(id >= 0 && id < static_cast<RelationId>(relations_.size()),
                "bad relation id");
  return relations_[static_cast<size_t>(id)];
}

PageCount Database::relation_area_begin(DiskId disk) const {
  RTQ_CHECK_MSG(disk >= 0 && disk < num_disks_, "bad disk id");
  return area_begin_[disk];
}

PageCount Database::relation_area_end(DiskId disk) const {
  RTQ_CHECK_MSG(disk >= 0 && disk < num_disks_, "bad disk id");
  return area_end_[disk];
}

}  // namespace rtq::storage
