// Database layout (paper Section 4.1, Table 2).
//
// The database consists of NumGroups groups of relations; group i has
// RelPerDisk_i clustered relations *per disk*, with sizes chosen at equal
// intervals from SizeRange_i. "To minimize disk head movement, all
// relations assigned to the same disk are randomly placed on its middle
// cylinders; temporary files are allotted either the inner or the outer
// cylinders." The Database computes that placement and exposes lookup by
// group for the workload source.

#ifndef RTQ_STORAGE_DATABASE_H_
#define RTQ_STORAGE_DATABASE_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "model/disk_geometry.h"
#include "storage/relation.h"

namespace rtq::storage {

struct RelationGroupSpec {
  /// Number of relations from this group placed on every disk.
  int32_t rel_per_disk = 1;
  /// Relation sizes are spaced at equal intervals across this range
  /// (inclusive), in pages.
  PageCount min_pages = 100;
  PageCount max_pages = 100;
};

struct DatabaseSpec {
  std::vector<RelationGroupSpec> groups;
  /// Disks the layout spans. 0 (the default) means "derive from the
  /// embedding SystemConfig::num_disks" — see
  /// engine::SystemConfig::EffectiveDatabase(). Standalone
  /// Database::Create callers must set an explicit positive count;
  /// Validate rejects 0.
  int32_t num_disks = 0;

  Status Validate(const model::DiskParams& disk) const;
};

class Database {
 public:
  /// Lays out the database on `num_disks` disks with the given geometry.
  /// `rng` drives the random middle-cylinder placement order.
  static StatusOr<Database> Create(const DatabaseSpec& spec,
                                   const model::DiskParams& disk_params,
                                   Rng* rng);

  const std::vector<Relation>& relations() const { return relations_; }

  /// All relations belonging to `group`, across every disk.
  const std::vector<RelationId>& RelationsInGroup(int32_t group) const;

  const Relation& relation(RelationId id) const;

  int32_t num_groups() const { return static_cast<int32_t>(by_group_.size()); }
  int32_t num_disks() const { return num_disks_; }

  /// First page past the relation area on `disk`; the temp allocator uses
  /// [relation_end, capacity) and [0, relation_begin) as its arenas.
  PageCount relation_area_begin(DiskId disk) const;
  PageCount relation_area_end(DiskId disk) const;

 private:
  Database() = default;

  int32_t num_disks_ = 0;
  std::vector<Relation> relations_;
  std::vector<std::vector<RelationId>> by_group_;
  std::vector<PageCount> area_begin_;  // per disk
  std::vector<PageCount> area_end_;    // per disk
};

}  // namespace rtq::storage

#endif  // RTQ_STORAGE_DATABASE_H_
