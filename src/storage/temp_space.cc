#include "storage/temp_space.h"

#include <algorithm>

#include <string>

#include "common/check.h"

namespace rtq::storage {

TempSpace::TempSpace(const Database& db,
                     const model::DiskParams& disk_params) {
  arenas_.reserve(db.num_disks());
  for (DiskId d = 0; d < db.num_disks(); ++d) arenas_.emplace_back(&pool_);
  band_center_.resize(db.num_disks());
  for (DiskId d = 0; d < db.num_disks(); ++d) {
    band_center_[d] =
        (db.relation_area_begin(d) + db.relation_area_end(d)) / 2;
    DiskArena& arena = arenas_[d];
    PageCount outer_len = db.relation_area_begin(d);
    if (outer_len > 0) {
      arena.holes.emplace(0, outer_len);
      arena.free_pages += outer_len;
    }
    PageCount inner_start = db.relation_area_end(d);
    PageCount inner_len = disk_params.capacity() - inner_start;
    if (inner_len > 0) {
      arena.holes.emplace(inner_start, inner_len);
      arena.free_pages += inner_len;
    }
  }
}

StatusOr<TempFile> TempSpace::AllocateOn(DiskId disk, PageCount pages) {
  DiskArena& arena = arenas_[disk];
  if (arena.free_pages < pages)
    return Status::OutOfRange("disk temp arena full");
  // Best-fit by proximity: among holes large enough, carve the extent at
  // the position nearest the relation band so temp seeks stay short.
  PageCount center = band_center_[disk];
  auto best = arena.holes.end();
  PageCount best_start = 0;
  PageCount best_dist = 0;
  for (auto it = arena.holes.begin(); it != arena.holes.end(); ++it) {
    if (it->second < pages) continue;
    PageCount hole_begin = it->first;
    PageCount hole_end = it->first + it->second;
    // Candidate position inside this hole closest to the band center.
    PageCount start;
    if (hole_end <= center) {
      start = hole_end - pages;  // hole below the band: carve from its top
    } else if (hole_begin >= center) {
      start = hole_begin;  // hole above the band: carve from its bottom
    } else {
      start = std::min(std::max(center - pages / 2, hole_begin),
                       hole_end - pages);
    }
    PageCount mid = start + pages / 2;
    PageCount dist = mid > center ? mid - center : center - mid;
    if (best == arena.holes.end() || dist < best_dist) {
      best = it;
      best_start = start;
      best_dist = dist;
    }
  }
  if (best == arena.holes.end())
    return Status::OutOfRange("fragmented: no hole large enough");

  TempFile file;
  file.disk = disk;
  file.start_page = best_start;
  file.pages = pages;
  file.handle = next_handle_++;

  PageCount hole_begin = best->first;
  PageCount hole_len = best->second;
  arena.holes.erase(best);
  if (best_start > hole_begin) {
    arena.holes.emplace(hole_begin, best_start - hole_begin);
  }
  PageCount tail_start = best_start + pages;
  PageCount tail_len = hole_begin + hole_len - tail_start;
  if (tail_len > 0) arena.holes.emplace(tail_start, tail_len);
  arena.free_pages -= pages;
  ++live_allocations_;
  return file;
}

StatusOr<TempFile> TempSpace::Allocate(PageCount pages, DiskId preferred) {
  RTQ_CHECK_MSG(pages > 0, "temp allocation must be > 0 pages");
  int32_t n = static_cast<int32_t>(arenas_.size());
  if (preferred >= 0 && preferred < n) {
    auto result = AllocateOn(preferred, pages);
    if (result.ok()) return result;
  }
  for (int32_t i = 0; i < n; ++i) {
    DiskId d = next_disk_;
    next_disk_ = (next_disk_ + 1) % n;
    if (d == preferred) continue;
    auto result = AllocateOn(d, pages);
    if (result.ok()) return result;
  }
  return Status::OutOfRange("no temp space for " + std::to_string(pages) +
                            " pages on any disk");
}

void TempSpace::Free(const TempFile& file) {
  RTQ_CHECK_MSG(file.disk >= 0 &&
                    file.disk < static_cast<DiskId>(arenas_.size()),
                "bad temp file disk");
  RTQ_CHECK_MSG(file.pages > 0, "freeing empty temp file");
  DiskArena& arena = arenas_[file.disk];

  auto [it, inserted] = arena.holes.emplace(file.start_page, file.pages);
  RTQ_CHECK_MSG(inserted, "double free of temp extent");
  arena.free_pages += file.pages;
  --live_allocations_;

  // Coalesce with successor.
  auto next = std::next(it);
  if (next != arena.holes.end() &&
      it->first + it->second == next->first) {
    it->second += next->second;
    arena.holes.erase(next);
  }
  // Coalesce with predecessor.
  if (it != arena.holes.begin()) {
    auto prev = std::prev(it);
    if (prev->first + prev->second == it->first) {
      prev->second += it->second;
      arena.holes.erase(it);
    }
  }
}

PageCount TempSpace::free_pages(DiskId disk) const {
  RTQ_CHECK_MSG(disk >= 0 && disk < static_cast<DiskId>(arenas_.size()),
                "bad disk id");
  return arenas_[disk].free_pages;
}

PageCount TempSpace::total_free_pages() const {
  PageCount total = 0;
  for (const DiskArena& a : arenas_) total += a.free_pages;
  return total;
}

}  // namespace rtq::storage
