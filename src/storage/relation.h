// A clustered relation: a contiguous page extent on one disk.
//
// Matches the paper's database model (Section 4.1): relations are
// clustered, assigned whole to a single disk, and grouped into relation
// groups from which query classes draw their operands.

#ifndef RTQ_STORAGE_RELATION_H_
#define RTQ_STORAGE_RELATION_H_

#include <cstdint>

#include "common/types.h"

namespace rtq::storage {

using RelationId = int64_t;

struct Relation {
  RelationId id = -1;
  /// Relation group this relation belongs to (0-based).
  int32_t group = -1;
  /// Disk holding the (clustered) relation.
  DiskId disk = -1;
  /// Absolute page address of the first page on that disk.
  PageCount start_page = 0;
  /// Size in pages.
  PageCount pages = 0;
};

}  // namespace rtq::storage

#endif  // RTQ_STORAGE_RELATION_H_
