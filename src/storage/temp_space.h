// Temporary-file space allocator.
//
// The paper places temporary files on the inner or outer cylinders of each
// disk (relations occupy the middle band). TempSpace manages those two
// arenas per disk with a coalescing first-fit free list, and spreads
// allocations across disks round-robin so spill traffic does not pile
// onto one spindle.

#ifndef RTQ_STORAGE_TEMP_SPACE_H_
#define RTQ_STORAGE_TEMP_SPACE_H_

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/pool.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/database.h"

namespace rtq::storage {

/// A granted temp extent. Valid until Free()d.
struct TempFile {
  DiskId disk = -1;
  PageCount start_page = 0;
  PageCount pages = 0;
  /// Internal handle used by Free(); opaque to callers.
  uint64_t handle = 0;
};

class TempSpace {
 public:
  /// Builds per-disk arenas from the database layout: [0, relation_begin)
  /// is the outer arena, [relation_end, capacity) the inner arena.
  TempSpace(const Database& db, const model::DiskParams& disk_params);

  /// Allocates `pages` contiguous pages. Tries the preferred disk first
  /// (pass -1 for "no preference"), then the other disks round-robin.
  /// Fails with OutOfRange when no disk has a large-enough hole.
  StatusOr<TempFile> Allocate(PageCount pages, DiskId preferred = -1);

  /// Returns an extent to the free pool, coalescing with neighbours.
  void Free(const TempFile& file);

  PageCount free_pages(DiskId disk) const;
  PageCount total_free_pages() const;
  int64_t live_allocations() const { return live_allocations_; }

 private:
  struct DiskArena {
    using HoleMap =
        std::map<PageCount, PageCount, std::less<PageCount>,
                 PoolAllocator<std::pair<const PageCount, PageCount>>>;
    explicit DiskArena(NodePool* pool)
        : holes(std::less<PageCount>(),
                PoolAllocator<std::pair<const PageCount, PageCount>>(pool)) {}
    // start_page -> length, non-overlapping, coalesced.
    HoleMap holes;
    PageCount free_pages = 0;
  };

  StatusOr<TempFile> AllocateOn(DiskId disk, PageCount pages);

  /// Middle of the relation band per disk; allocations are placed in the
  /// hole position closest to it, so temp traffic seeks as little as
  /// possible from the clustered relations.
  std::vector<PageCount> band_center_;
  // Hole-map nodes from every arena recycle through one pool (declared
  // first so it outlives the maps): alloc/free churn in steady state
  // touches no heap.
  NodePool pool_;
  std::vector<DiskArena> arenas_;
  int32_t next_disk_ = 0;  // round-robin cursor
  uint64_t next_handle_ = 1;
  int64_t live_allocations_ = 0;
};

}  // namespace rtq::storage

#endif  // RTQ_STORAGE_TEMP_SPACE_H_
