// Metrics collection: everything Section 5's tables and figures need.
//
// The collector stores one record per finished query (completed or
// missed), a time-weighted MPL signal, periodic realized-MPL samples, and
// a batch-means accumulator for the miss-ratio confidence interval
// [Sarg76]. Aggregation into the paper's reported quantities (per-class
// miss ratios, Table 7's timing breakdown, windowed miss-ratio series for
// Figures 12-14) happens on demand.

#ifndef RTQ_ENGINE_METRICS_H_
#define RTQ_ENGINE_METRICS_H_

#include <vector>

#include "common/types.h"
#include "core/pmm.h"
#include "exec/query.h"
#include "stats/batch_means.h"
#include "stats/running_stats.h"
#include "stats/time_weighted.h"

namespace rtq::engine {

struct CompletionRecord {
  core::CompletionInfo info;
  exec::QueryType type = exec::QueryType::kHashJoin;
  int64_t mem_fluctuations = 0;
  PageCount pages_read = 0;
  PageCount pages_written = 0;
};

/// Aggregates over a set of completion records.
struct ClassSummary {
  int64_t completions = 0;
  int64_t misses = 0;
  double miss_ratio = 0.0;
  double avg_wait = 0.0;      ///< admission waiting time, seconds
  double avg_exec = 0.0;      ///< execution time, seconds
  double avg_response = 0.0;  ///< wait + exec, seconds
  double avg_fluctuations = 0.0;
};

struct SystemSummary {
  ClassSummary overall;
  std::vector<ClassSummary> per_class;
  double avg_mpl = 0.0;
  double cpu_utilization = 0.0;
  double avg_disk_utilization = 0.0;
  double max_disk_utilization = 0.0;
  stats::ConfidenceInterval miss_ratio_ci;  ///< 90%, batch means
  uint64_t events_dispatched = 0;
  SimTime simulated_time = 0.0;
};

/// (time, value) series sample.
struct TimeSample {
  SimTime time = 0.0;
  double value = 0.0;
};

/// Per-disk busy-integral windowing behind the engine's SystemProbe:
/// turns cumulative busy_seconds readings into per-window utilizations.
/// The baseline re-seed discipline is explicit: Rebind re-seeds every
/// baseline whenever the stream count changes — the engine seeds zeros at
/// boot (so the first window spans [0, t) and reports the true boot-time
/// utilization) and seeds live cumulative integrals after a disk-farm
/// rebuild (so the rebuild window reports only in-window busy time
/// instead of spiking to the lifetime integral divided by one window).
class DiskUtilWindows {
 public:
  /// Prepares the window for `n` streams; `seed(i)` supplies stream i's
  /// baseline when (and only when) n differs from the current stream
  /// count. Returns true when it re-seeded.
  template <typename SeedFn>
  bool Rebind(size_t n, SeedFn seed) {
    if (last_.size() == n) return false;
    last_.resize(n);
    for (size_t i = 0; i < n; ++i) last_[i] = seed(i);
    return true;
  }

  /// Advances stream i to cumulative integral `busy` over a window of
  /// `dt` seconds, returning its utilization in that window.
  double Advance(size_t i, double busy, double dt) {
    double util = (busy - last_[i]) / dt;
    last_[i] = busy;
    return util;
  }

  size_t size() const { return last_.size(); }

 private:
  std::vector<double> last_;
};

class MetricsCollector {
 public:
  explicit MetricsCollector(int64_t miss_ci_batch);

  void Record(const CompletionRecord& record);
  void UpdateMpl(SimTime now, int64_t mpl);
  void SampleMpl(SimTime now, int64_t mpl);

  /// Pre-grows the record and MPL-sample buffers so that recording up to
  /// `completions` / `samples` entries performs no reallocation (the
  /// steady-state zero-allocation gate measures across Record calls).
  void Reserve(size_t completions, size_t samples) {
    records_.reserve(completions);
    mpl_samples_.reserve(samples);
  }

  const std::vector<CompletionRecord>& records() const { return records_; }
  const std::vector<TimeSample>& mpl_samples() const { return mpl_samples_; }

  /// Time-averaged MPL over [window_start, now].
  double AverageMpl(SimTime now) const;
  double MplIntegral(SimTime now) const;

  /// 90% batch-means CI over the miss indicator stream.
  stats::ConfidenceInterval MissRatioCi() const;

  /// Aggregates per-class + overall summaries from the stored records.
  /// `num_classes` sizes the per-class vector (records with classes
  /// beyond it are folded into overall only).
  void Summarize(int32_t num_classes, ClassSummary* overall,
                 std::vector<ClassSummary>* per_class) const;

  /// Miss ratio over records finishing in [from, to) — Figures 12-14.
  static ClassSummary WindowSummary(
      const std::vector<CompletionRecord>& records, SimTime from, SimTime to,
      int32_t query_class /* -1 = all */);

 private:
  static void Fold(const CompletionRecord& r, ClassSummary* s,
                   stats::RunningStats* wait, stats::RunningStats* exec,
                   stats::RunningStats* resp, stats::RunningStats* fluct);

  std::vector<CompletionRecord> records_;
  std::vector<TimeSample> mpl_samples_;
  stats::TimeWeightedAverage mpl_;
  stats::BatchMeans miss_batches_;
  bool mpl_started_ = false;
};

}  // namespace rtq::engine

#endif  // RTQ_ENGINE_METRICS_H_
