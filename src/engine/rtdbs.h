// The assembled firm real-time database system (paper Figure 2).
//
// Wires together the Source, the operators ("Query Manager"), the buffer
// pool + memory-management policy ("Buffer Manager"), and the CPU and
// disk managers, and owns the lifecycle of every query:
//
//   arrival -> [waiting] -> admission (first allocation) -> execution
//           -> completion | deadline abort (firm: work is discarded)
//
// Memory allocations can be revised at any moment by the policy; the
// engine pushes the deltas into the buffer pool and the operators and
// counts the per-query fluctuations (Figure 7's metric).

#ifndef RTQ_ENGINE_RTDBS_H_
#define RTQ_ENGINE_RTDBS_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/arena.h"
#include "common/check.h"
#include "common/pool.h"
#include "common/rng.h"
#include "common/status.h"
#include "core/memory_manager.h"
#include "core/memory_policy.h"
#include "core/pmm.h"
#include "engine/metrics.h"
#include "engine/system_config.h"
#include "exec/exec_context.h"
#include "exec/operator.h"
#include "model/cpu.h"
#include "model/disk.h"
#include "sim/simulator.h"
#include "storage/database.h"
#include "storage/temp_space.h"
#include "workload/source.h"

namespace rtq::engine {

/// Outcome of a live policy swap (serve-mode `policy <spec>` command).
/// When `status` is not OK the requested spec was rejected; `reattached`
/// then says whether the rollback had to rebuild the incumbent policy
/// from its Describe() spec — which resets its adaptive state, so a
/// deterministic replay journal must record the re-application even
/// though the user-visible swap failed.
struct PolicySwapOutcome {
  Status status = Status::Ok();
  /// Describe() of the policy active after the call (new on success,
  /// incumbent on failure).
  std::string active_spec;
  /// True whenever a fresh policy instance was attached (successful swap
  /// or rollback) — i.e. whenever adaptive policy state was reset.
  bool reattached = false;
};

class Rtdbs {
 public:
  /// Builds the full system; fails on invalid configuration.
  static StatusOr<std::unique_ptr<Rtdbs>> Create(const SystemConfig& config);

  ~Rtdbs();
  Rtdbs(const Rtdbs&) = delete;
  Rtdbs& operator=(const Rtdbs&) = delete;

  /// Advances the simulation to absolute time `until` (seconds). May be
  /// called repeatedly with increasing horizons (the workload-alternation
  /// experiment interleaves Run with Source activation changes).
  void RunUntil(SimTime until);

  /// Starts the arrival stream and periodic samplers without advancing
  /// the clock. Idempotent; RunUntil and StepEvent call it implicitly.
  void Start();

  /// Dispatches exactly one pending event (the serve loop's unit of
  /// progress — snapshot positions count these). Returns false when the
  /// calendar is empty. Unlike RunUntil, the clock only ever advances to
  /// event times, never to an arbitrary horizon.
  bool StepEvent();

  /// Hot-swaps the memory policy to `spec` (resolved through the
  /// PolicyRegistry) between events. Never CHECK-fails on bad input: a
  /// spec the registry rejects leaves the system bit-identical to before
  /// the call (outcome.reattached == false).
  PolicySwapOutcome SwapPolicy(const std::string& spec);

  /// Swaps the arrival stream to a freshly created scenario source
  /// (resolved through the ScenarioRegistry) between events. The old
  /// source is silenced, not cancelled: its pending events fire as
  /// no-ops, so event counts match a replay exactly. The new source
  /// forks its rng from the engine's live stream, continues the old
  /// source's query-id space, and starts its shapes at the swap instant.
  /// Returns the canonical scenario spec; errors leave state untouched.
  StatusOr<std::string> SwapScenario(const std::string& spec);

  /// Appends one deterministic line per state dimension (clock, event
  /// calendar, per-query runtime, CPU/disk/cache, memory manager, policy,
  /// arrival source, metrics, live rng). Two Rtdbs instances with equal
  /// digests have bit-identical future trajectories — the invariant the
  /// snapshot/restore machinery verifies line-by-line.
  void AppendStateDigest(std::vector<std::string>* out) const;

  /// Summary of everything recorded so far.
  SystemSummary Summarize() const;

  // --- component access (experiments, tests) ----------------------------
  sim::Simulator& simulator() { return sim_; }
  const sim::Simulator& simulator() const { return sim_; }
  /// The arrival source, whichever kind the config selected (Poisson
  /// Source, ScenarioSource, or TraceSource).
  workload::ArrivalSource& arrivals() { return *source_; }
  /// The plain Poisson Source; CHECK-fails when the config selected a
  /// scenario or trace source (those have no Activate/Deactivate).
  workload::Source& source() {
    auto* s = dynamic_cast<workload::Source*>(source_.get());
    RTQ_CHECK_MSG(s != nullptr,
                  "source() requires the Poisson Source (config has a "
                  "scenario or trace)");
    return *s;
  }
  core::MemoryManager& memory_manager() { return *mm_; }
  const storage::Database& database() const { return *db_; }
  const MetricsCollector& metrics() const { return metrics_; }
  /// Mutable access for hosts that pre-size the metrics buffers (e.g.
  /// the zero-allocation gate calls Reserve before measuring).
  MetricsCollector& mutable_metrics() { return metrics_; }
  buffer::BufferPool& buffer_pool() { return *pool_; }
  /// The active memory policy (resolved from the config's spec string).
  const core::MemoryPolicy& policy() const { return *policy_; }
  /// The policy's adaptation controller; null unless the policy is
  /// PMM-driven (PMM, PMM-Fair, or a plugin built on PmmController).
  const core::PmmController* pmm() const {
    return policy_ ? policy_->pmm_controller() : nullptr;
  }
  const SystemConfig& config() const { return config_; }

  /// Live queries currently registered (waiting + admitted).
  int64_t live_queries() const {
    return static_cast<int64_t>(runtimes_.size());
  }
  /// Finished runtimes parked awaiting recycling (bounded: drained at the
  /// next arrival/completion once their dispatch event has unwound).
  int64_t retired_runtimes() const {
    return static_cast<int64_t>(retired_.size());
  }
  /// Lifetime count of runtime recycles (arena reset + reuse).
  int64_t runtimes_recycled() const { return runtimes_recycled_; }
  /// Arrivals this engine dropped because the shard placement assigned
  /// them to another shard (always 0 on a standalone engine).
  int64_t routed_elsewhere() const { return routed_elsewhere_; }

 private:
  class QueryContext;
  class ProbeImpl;

  /// Per-query runtime state. Everything with query lifetime — the
  /// operator tree, the QueryContext, operator scratch — lives in the
  /// runtime's own arena and is reclaimed as a unit (Arena::Reset) when
  /// the runtime is recycled, so steady-state query turnover performs no
  /// heap allocation.
  struct QueryRuntime {
    Arena arena;
    exec::QueryDescriptor desc;
    exec::Operator* op = nullptr;  // arena-owned
    QueryContext* ctx = nullptr;   // arena-owned
    sim::EventId deadline_event = sim::kInvalidEventId;
    PageCount allocation = 0;
    bool admitted_once = false;
    SimTime first_admit = 0.0;
    int64_t fluctuations = 0;
    bool finished = false;
    /// events_dispatched() at retire time; recyclable once a later event
    /// is dispatching (the retiring event's stack has fully unwound).
    uint64_t parked_at = 0;
  };

  explicit Rtdbs(const SystemConfig& config);
  Status Init();

  /// The host handed to every MemoryPolicy::Attach — Init and SwapPolicy
  /// must build it identically or swapped-in policies would see a
  /// different engine than boot-time ones.
  core::PolicyHost MakePolicyHost();
  workload::ArrivalSource::Sink MakeSink();

  /// Pops a recycled runtime (or heap-allocates the pool's first copy).
  QueryRuntime* AcquireRuntime();
  /// Drains retired_ entries whose dispatch event has unwound: runs the
  /// arena finalizers (operator destructors), resets the arena, and
  /// returns the runtime to the free list.
  void PurgeRetired();

  void OnArrival(const workload::QueryBlueprint& bp, QueryId id);
  void ApplyAllocation(QueryId id, PageCount pages);
  void OnOperatorFinished(QueryId id);
  void OnDeadline(QueryId id);
  /// Shared tail of completion/abort: cancel resources, record, notify.
  void FinishQuery(QueryId id, bool missed);
  void UpdateMplSignal();
  void ScheduleMplSampler();

  // Page-cache helpers (LRU over unreserved pool pages).
  bool CacheCovers(DiskId disk, PageCount start, PageCount pages);
  void CacheInsert(DiskId disk, PageCount start, PageCount pages);
  void CacheInvalidate(DiskId disk, PageCount start, PageCount pages);

  SystemConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<model::Cpu> cpu_;
  std::vector<std::unique_ptr<model::Disk>> disks_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<storage::TempSpace> temp_;
  std::unique_ptr<buffer::BufferPool> pool_;
  std::unique_ptr<core::MemoryManager> mm_;
  std::unique_ptr<core::MemoryPolicy> policy_;
  std::unique_ptr<ProbeImpl> probe_;
  std::unique_ptr<workload::ArrivalSource> source_;
  MetricsCollector metrics_;

  /// Node pool for the engine's hot containers; declared before them so
  /// they are destroyed first.
  NodePool node_pool_;
  /// Owns every QueryRuntime ever created; grows to the live+retired
  /// high-water mark, then every query reuses a recycled runtime.
  std::vector<std::unique_ptr<QueryRuntime>> runtime_storage_;
  std::vector<QueryRuntime*> free_runtimes_;
  int64_t runtimes_recycled_ = 0;
  int64_t routed_elsewhere_ = 0;

  using RuntimePair = std::pair<const QueryId, QueryRuntime*>;
  using RuntimeMap =
      std::unordered_map<QueryId, QueryRuntime*, std::hash<QueryId>,
                         std::equal_to<QueryId>, PoolAllocator<RuntimePair>>;
  RuntimeMap runtimes_{
      8, std::hash<QueryId>(), std::equal_to<QueryId>(),
      PoolAllocator<std::pair<const QueryId, QueryRuntime*>>(&node_pool_)};
  /// Finished runtimes are parked here (not destroyed mid-callback) and
  /// recycled by PurgeRetired() once their event has unwound.
  std::vector<QueryRuntime*> retired_;
  /// Scratch for CacheCovers' one-hash-per-page hit path.
  std::vector<buffer::LruCache::Handle> cache_scratch_;
  /// Swapped-out sources and policies are parked, not destroyed: their
  /// already-scheduled events still hold `this` captures and must fire
  /// (as no-ops) to keep event counts replay-identical.
  std::vector<std::unique_ptr<workload::ArrivalSource>> retired_sources_;
  std::vector<std::unique_ptr<core::MemoryPolicy>> retired_policies_;
  /// Rng stream for state created after boot (swapped-in sources). The
  /// third fork off the master seed, taken in Init so that taking it
  /// does not perturb the placement or source streams.
  Rng live_rng_{0};
  bool started_ = false;
};

/// Renders config.scenario to a `.rtqt` trace with the exact Rng fork
/// order Rtdbs::Init uses (master -> placement -> source), so replaying
/// the result via config.trace reproduces the live scenario run
/// bit-identically — the determinism gate the replay tests pin.
StatusOr<workload::Trace> RenderScenarioTrace(const SystemConfig& config,
                                              SimTime horizon);

}  // namespace rtq::engine

#endif  // RTQ_ENGINE_RTDBS_H_
