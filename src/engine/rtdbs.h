// The assembled firm real-time database system (paper Figure 2).
//
// Wires together the Source, the operators ("Query Manager"), the buffer
// pool + memory-management policy ("Buffer Manager"), and the CPU and
// disk managers, and owns the lifecycle of every query:
//
//   arrival -> [waiting] -> admission (first allocation) -> execution
//           -> completion | deadline abort (firm: work is discarded)
//
// Memory allocations can be revised at any moment by the policy; the
// engine pushes the deltas into the buffer pool and the operators and
// counts the per-query fluctuations (Figure 7's metric).

#ifndef RTQ_ENGINE_RTDBS_H_
#define RTQ_ENGINE_RTDBS_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "buffer/buffer_pool.h"
#include "common/check.h"
#include "common/status.h"
#include "core/memory_manager.h"
#include "core/memory_policy.h"
#include "core/pmm.h"
#include "engine/metrics.h"
#include "engine/system_config.h"
#include "exec/exec_context.h"
#include "exec/operator.h"
#include "model/cpu.h"
#include "model/disk.h"
#include "sim/simulator.h"
#include "storage/database.h"
#include "storage/temp_space.h"
#include "workload/source.h"

namespace rtq::engine {

class Rtdbs {
 public:
  /// Builds the full system; fails on invalid configuration.
  static StatusOr<std::unique_ptr<Rtdbs>> Create(const SystemConfig& config);

  ~Rtdbs();
  Rtdbs(const Rtdbs&) = delete;
  Rtdbs& operator=(const Rtdbs&) = delete;

  /// Advances the simulation to absolute time `until` (seconds). May be
  /// called repeatedly with increasing horizons (the workload-alternation
  /// experiment interleaves Run with Source activation changes).
  void RunUntil(SimTime until);

  /// Summary of everything recorded so far.
  SystemSummary Summarize() const;

  // --- component access (experiments, tests) ----------------------------
  sim::Simulator& simulator() { return sim_; }
  /// The arrival source, whichever kind the config selected (Poisson
  /// Source, ScenarioSource, or TraceSource).
  workload::ArrivalSource& arrivals() { return *source_; }
  /// The plain Poisson Source; CHECK-fails when the config selected a
  /// scenario or trace source (those have no Activate/Deactivate).
  workload::Source& source() {
    auto* s = dynamic_cast<workload::Source*>(source_.get());
    RTQ_CHECK_MSG(s != nullptr,
                  "source() requires the Poisson Source (config has a "
                  "scenario or trace)");
    return *s;
  }
  core::MemoryManager& memory_manager() { return *mm_; }
  const storage::Database& database() const { return *db_; }
  const MetricsCollector& metrics() const { return metrics_; }
  buffer::BufferPool& buffer_pool() { return *pool_; }
  /// The active memory policy (resolved from the config's spec string).
  const core::MemoryPolicy& policy() const { return *policy_; }
  /// The policy's adaptation controller; null unless the policy is
  /// PMM-driven (PMM, PMM-Fair, or a plugin built on PmmController).
  const core::PmmController* pmm() const {
    return policy_ ? policy_->pmm_controller() : nullptr;
  }
  const SystemConfig& config() const { return config_; }

  /// Live queries currently registered (waiting + admitted).
  int64_t live_queries() const {
    return static_cast<int64_t>(runtimes_.size());
  }

 private:
  class QueryContext;
  class ProbeImpl;

  struct QueryRuntime {
    exec::QueryDescriptor desc;
    std::unique_ptr<exec::Operator> op;
    std::unique_ptr<QueryContext> ctx;
    sim::EventId deadline_event = sim::kInvalidEventId;
    PageCount allocation = 0;
    bool admitted_once = false;
    SimTime first_admit = 0.0;
    int64_t fluctuations = 0;
    bool finished = false;
  };

  explicit Rtdbs(const SystemConfig& config);
  Status Init();

  void OnArrival(exec::QueryDescriptor desc,
                 std::unique_ptr<exec::Operator> op);
  void ApplyAllocation(QueryId id, PageCount pages);
  void OnOperatorFinished(QueryId id);
  void OnDeadline(QueryId id);
  /// Shared tail of completion/abort: cancel resources, record, notify.
  void FinishQuery(QueryId id, bool missed);
  void UpdateMplSignal();
  void ScheduleMplSampler();

  // Page-cache helpers (LRU over unreserved pool pages).
  bool CacheCovers(DiskId disk, PageCount start, PageCount pages);
  void CacheInsert(DiskId disk, PageCount start, PageCount pages);
  void CacheInvalidate(DiskId disk, PageCount start, PageCount pages);

  SystemConfig config_;
  sim::Simulator sim_;
  std::unique_ptr<model::Cpu> cpu_;
  std::vector<std::unique_ptr<model::Disk>> disks_;
  std::unique_ptr<storage::Database> db_;
  std::unique_ptr<storage::TempSpace> temp_;
  std::unique_ptr<buffer::BufferPool> pool_;
  std::unique_ptr<core::MemoryManager> mm_;
  std::unique_ptr<core::MemoryPolicy> policy_;
  std::unique_ptr<ProbeImpl> probe_;
  std::unique_ptr<workload::ArrivalSource> source_;
  MetricsCollector metrics_;

  std::unordered_map<QueryId, std::unique_ptr<QueryRuntime>> runtimes_;
  /// Finished runtimes are parked here (not destroyed mid-callback).
  std::vector<std::unique_ptr<QueryRuntime>> retired_;
  bool started_ = false;
};

/// Renders config.scenario to a `.rtqt` trace with the exact Rng fork
/// order Rtdbs::Init uses (master -> placement -> source), so replaying
/// the result via config.trace reproduces the live scenario run
/// bit-identically — the determinism gate the replay tests pin.
StatusOr<workload::Trace> RenderScenarioTrace(const SystemConfig& config,
                                              SimTime horizon);

}  // namespace rtq::engine

#endif  // RTQ_ENGINE_RTDBS_H_
