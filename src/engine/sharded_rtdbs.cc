#include "engine/sharded_rtdbs.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace rtq::engine {

namespace {

/// Completion-weighted merge of one shard's class summary into the
/// cluster aggregate.
void MergeClass(const ClassSummary& in, ClassSummary* out) {
  const double n0 = static_cast<double>(out->completions);
  const double n1 = static_cast<double>(in.completions);
  if (n0 + n1 > 0.0) {
    out->avg_wait = (out->avg_wait * n0 + in.avg_wait * n1) / (n0 + n1);
    out->avg_exec = (out->avg_exec * n0 + in.avg_exec * n1) / (n0 + n1);
    out->avg_response =
        (out->avg_response * n0 + in.avg_response * n1) / (n0 + n1);
    out->avg_fluctuations =
        (out->avg_fluctuations * n0 + in.avg_fluctuations * n1) / (n0 + n1);
  }
  out->completions += in.completions;
  out->misses += in.misses;
  out->miss_ratio = out->completions > 0
                        ? static_cast<double>(out->misses) /
                              static_cast<double>(out->completions)
                        : 0.0;
}

}  // namespace

StatusOr<std::unique_ptr<ShardedRtdbs>> ShardedRtdbs::Create(
    const SystemConfig& base, const ShardConfig& shards) {
  RTQ_RETURN_IF_ERROR(shards.Validate());
  auto placement =
      workload::ShardPlacement::Make(shards.placement, shards.num_shards);
  if (!placement.ok()) return placement.status();
  auto cap = core::ParseAdmissionSpec(shards.admission);
  if (!cap.ok()) return cap.status();

  std::unique_ptr<ShardedRtdbs> sys(new ShardedRtdbs());
  sys->shard_config_ = shards;
  sys->shard_config_.placement = placement.value().spec();
  sys->placement_ = std::make_unique<workload::ShardPlacement>(
      std::move(placement).value());
  if (cap.value() > 0) {
    sys->coordinator_ = std::make_unique<core::ShardCoordinator>(
        shards.num_shards, cap.value());
  }
  sys->shards_.reserve(static_cast<size_t>(shards.num_shards));
  for (int32_t s = 0; s < shards.num_shards; ++s) {
    SystemConfig cfg = base;
    cfg.shard.index = s;
    cfg.shard.count = shards.num_shards;
    cfg.shard.placement = sys->placement_.get();
    cfg.shard.coordinator = sys->coordinator_.get();
    auto shard = Rtdbs::Create(cfg);
    if (!shard.ok()) return shard.status();
    sys->shards_.push_back(std::move(shard).value());
  }
  return sys;
}

void ShardedRtdbs::Start() {
  if (started_) return;
  started_ = true;
  for (auto& shard : shards_) shard->Start();
}

int32_t ShardedRtdbs::NextShard(SimTime horizon) const {
  int32_t best = -1;
  SimTime best_time = 0.0;
  for (int32_t s = 0; s < num_shards(); ++s) {
    const sim::EventQueue& q =
        shards_[static_cast<size_t>(s)]->simulator().queue();
    if (q.Empty()) continue;
    SimTime t = q.PeekTime();
    if (t > horizon) continue;
    if (best < 0 || t < best_time) {
      best = s;
      best_time = t;
    }
  }
  return best;
}

void ShardedRtdbs::RunUntil(SimTime until) {
  Start();
  for (;;) {
    int32_t s = NextShard(until);
    if (s < 0) break;
    shards_[static_cast<size_t>(s)]->StepEvent();
  }
  // Every pending event now lies beyond the horizon; align each shard's
  // clock to it, exactly as Rtdbs::RunUntil does for a lone engine.
  for (auto& shard : shards_) shard->RunUntil(until);
}

bool ShardedRtdbs::StepEvent() {
  Start();
  int32_t s = NextShard(std::numeric_limits<SimTime>::infinity());
  if (s < 0) return false;
  return shards_[static_cast<size_t>(s)]->StepEvent();
}

SimTime ShardedRtdbs::Now() const {
  SimTime now = 0.0;
  for (const auto& shard : shards_) {
    now = std::max(now, shard->simulator().Now());
  }
  return now;
}

uint64_t ShardedRtdbs::events_dispatched() const {
  uint64_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->simulator().events_dispatched();
  }
  return total;
}

SystemSummary ShardedRtdbs::Summarize() const {
  SystemSummary agg;
  size_t classes = 0;
  double cpu_sum = 0.0;
  double disk_sum = 0.0;
  for (const auto& shard : shards_) {
    SystemSummary s = shard->Summarize();
    classes = std::max(classes, s.per_class.size());
    agg.per_class.resize(classes);
    MergeClass(s.overall, &agg.overall);
    for (size_t c = 0; c < s.per_class.size(); ++c) {
      MergeClass(s.per_class[c], &agg.per_class[c]);
    }
    // Summed, not averaged: the cluster's multiprogramming level is the
    // total number of queries in flight across all shards.
    agg.avg_mpl += s.avg_mpl;
    cpu_sum += s.cpu_utilization;
    disk_sum += s.avg_disk_utilization;
    agg.max_disk_utilization =
        std::max(agg.max_disk_utilization, s.max_disk_utilization);
    agg.events_dispatched += s.events_dispatched;
    agg.simulated_time = std::max(agg.simulated_time, s.simulated_time);
  }
  const double n = static_cast<double>(num_shards());
  agg.cpu_utilization = cpu_sum / n;
  agg.avg_disk_utilization = disk_sum / n;
  return agg;
}

SystemSummary ShardedRtdbs::SummarizeShard(int32_t s) const {
  RTQ_CHECK_MSG(s >= 0 && s < num_shards(), "bad shard index");
  return shards_[static_cast<size_t>(s)]->Summarize();
}

void ShardedRtdbs::AppendStateDigest(std::vector<std::string>* out) const {
  for (int32_t s = 0; s < num_shards(); ++s) {
    out->push_back("shard " + std::to_string(s));
    shards_[static_cast<size_t>(s)]->AppendStateDigest(out);
  }
}

}  // namespace rtq::engine
