#include "engine/system_config.h"

#include "core/policy_registry.h"

namespace rtq::engine {

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kMax:
      return "Max";
    case PolicyKind::kMinMax:
      return "MinMax";
    case PolicyKind::kMinMaxN:
      return "MinMax-N";
    case PolicyKind::kProportional:
      return "Proportional";
    case PolicyKind::kProportionalN:
      return "Proportional-N";
    case PolicyKind::kPmm:
      return "PMM";
    case PolicyKind::kPmmFair:
      return "PMM-Fair";
  }
  return "?";
}

std::string PolicyConfig::ResolvedSpec() const {
  if (!spec.empty()) return spec;
  switch (kind) {
    case PolicyKind::kMax:
      return max_bypass ? "max" : "max:strict";
    case PolicyKind::kMinMax:
      return "minmax";
    case PolicyKind::kMinMaxN:
      return "minmax:" + std::to_string(mpl_limit);
    case PolicyKind::kProportional:
      return "prop";
    case PolicyKind::kProportionalN:
      return "prop:" + std::to_string(mpl_limit);
    case PolicyKind::kPmm:
      return "pmm";
    case PolicyKind::kPmmFair:
      return "pmm-fair:w=" + core::FormatSpecDoubleList(fair_weights);
  }
  return "pmm";
}

Status SystemConfig::Validate() const {
  if (mips <= 0.0) return Status::InvalidArgument("mips must be > 0");
  if (num_disks <= 0)
    return Status::InvalidArgument("num_disks must be > 0");
  if (memory_pages <= 0)
    return Status::InvalidArgument("memory_pages must be > 0");
  RTQ_RETURN_IF_ERROR(disk.Validate());
  RTQ_RETURN_IF_ERROR(exec.Validate());
  RTQ_RETURN_IF_ERROR(pmm.Validate());
  {
    // Database/workload validation needs the spec cross-checks.
    Status s = database.Validate(disk);
    if (!s.ok()) return s;
  }
  if (trace != nullptr && scenario.enabled())
    return Status::InvalidArgument(
        "config sets both a trace and a scenario; pick one arrival source");
  if (scenario.enabled()) {
    Status s = scenario.Validate(workload);
    if (!s.ok()) return s;
  }
  {
    // The policy spec must parse and name a registered factory; class- or
    // probe-dependent checks run later, in MemoryPolicy::Attach.
    auto p = core::PolicyRegistry::Global().Create(policy.ResolvedSpec());
    if (!p.ok()) return p.status();
  }
  if (miss_ci_batch < 1)
    return Status::InvalidArgument("miss_ci_batch must be >= 1");
  return Status::Ok();
}

}  // namespace rtq::engine
