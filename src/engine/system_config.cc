#include "engine/system_config.h"

#include "core/policy_registry.h"
#include "core/shard_coordinator.h"
#include "workload/placement.h"

namespace rtq::engine {

Status ShardConfig::Validate() const {
  if (num_shards < 1)
    return Status::InvalidArgument("num_shards must be >= 1");
  {
    auto p = workload::ShardPlacement::Make(placement, num_shards);
    if (!p.ok()) return p.status();
  }
  {
    auto a = core::ParseAdmissionSpec(admission);
    if (!a.ok()) return a.status();
  }
  return Status::Ok();
}

storage::DatabaseSpec SystemConfig::EffectiveDatabase() const {
  storage::DatabaseSpec spec = database;
  if (spec.num_disks == 0) spec.num_disks = num_disks;
  return spec;
}

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kMax:
      return "Max";
    case PolicyKind::kMinMax:
      return "MinMax";
    case PolicyKind::kMinMaxN:
      return "MinMax-N";
    case PolicyKind::kProportional:
      return "Proportional";
    case PolicyKind::kProportionalN:
      return "Proportional-N";
    case PolicyKind::kPmm:
      return "PMM";
    case PolicyKind::kPmmFair:
      return "PMM-Fair";
  }
  return "?";
}

std::string PolicyConfig::ResolvedSpec() const {
  if (!spec.empty()) return spec;
  switch (kind) {
    case PolicyKind::kMax:
      return max_bypass ? "max" : "max:strict";
    case PolicyKind::kMinMax:
      return "minmax";
    case PolicyKind::kMinMaxN:
      return "minmax:" + std::to_string(mpl_limit);
    case PolicyKind::kProportional:
      return "prop";
    case PolicyKind::kProportionalN:
      return "prop:" + std::to_string(mpl_limit);
    case PolicyKind::kPmm:
      return "pmm";
    case PolicyKind::kPmmFair:
      return "pmm-fair:w=" + core::FormatSpecDoubleList(fair_weights);
  }
  return "pmm";
}

Status SystemConfig::Validate() const {
  if (mips <= 0.0) return Status::InvalidArgument("mips must be > 0");
  if (num_disks <= 0)
    return Status::InvalidArgument("num_disks must be > 0");
  if (memory_pages <= 0)
    return Status::InvalidArgument("memory_pages must be > 0");
  RTQ_RETURN_IF_ERROR(disk.Validate());
  RTQ_RETURN_IF_ERROR(exec.Validate());
  RTQ_RETURN_IF_ERROR(pmm.Validate());
  if (database.num_disks != 0 && database.num_disks != num_disks) {
    // Caught here instead of by the disk-submit hot-path assert (which a
    // release build skips): the engine builds `num_disks` elevators while
    // the layout spans `database.num_disks`.
    return Status::InvalidArgument(
        "database.num_disks (" + std::to_string(database.num_disks) +
        ") does not match num_disks (" + std::to_string(num_disks) +
        "); leave database.num_disks at 0 to derive it from num_disks");
  }
  {
    // Database/workload validation needs the spec cross-checks, run
    // against the resolved layout (0 = inherit num_disks).
    Status s = EffectiveDatabase().Validate(disk);
    if (!s.ok()) return s;
  }
  if (trace != nullptr && scenario.enabled())
    return Status::InvalidArgument(
        "config sets both a trace and a scenario; pick one arrival source");
  if (scenario.enabled()) {
    Status s = scenario.Validate(workload);
    if (!s.ok()) return s;
  }
  {
    // The policy spec must parse and name a registered factory; class- or
    // probe-dependent checks run later, in MemoryPolicy::Attach.
    auto p = core::PolicyRegistry::Global().Create(policy.ResolvedSpec());
    if (!p.ok()) return p.status();
  }
  if (miss_ci_batch < 1)
    return Status::InvalidArgument("miss_ci_batch must be >= 1");
  return Status::Ok();
}

}  // namespace rtq::engine
