#include "engine/system_config.h"

namespace rtq::engine {

const char* PolicyKindName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kMax:
      return "Max";
    case PolicyKind::kMinMax:
      return "MinMax";
    case PolicyKind::kMinMaxN:
      return "MinMax-N";
    case PolicyKind::kProportional:
      return "Proportional";
    case PolicyKind::kProportionalN:
      return "Proportional-N";
    case PolicyKind::kPmm:
      return "PMM";
    case PolicyKind::kPmmFair:
      return "PMM-Fair";
  }
  return "?";
}

Status SystemConfig::Validate() const {
  if (mips <= 0.0) return Status::InvalidArgument("mips must be > 0");
  if (num_disks <= 0)
    return Status::InvalidArgument("num_disks must be > 0");
  if (memory_pages <= 0)
    return Status::InvalidArgument("memory_pages must be > 0");
  RTQ_RETURN_IF_ERROR(disk.Validate());
  RTQ_RETURN_IF_ERROR(exec.Validate());
  RTQ_RETURN_IF_ERROR(pmm.Validate());
  {
    // Database/workload validation needs the spec cross-checks.
    Status s = database.Validate(disk);
    if (!s.ok()) return s;
  }
  if ((policy.kind == PolicyKind::kMinMaxN ||
       policy.kind == PolicyKind::kProportionalN) &&
      policy.mpl_limit < 1) {
    return Status::InvalidArgument("-N policies need mpl_limit >= 1");
  }
  if (policy.kind == PolicyKind::kPmmFair &&
      policy.fair_weights.size() != workload.classes.size()) {
    return Status::InvalidArgument(
        "PMM-Fair needs one weight per workload class");
  }
  if (miss_ci_batch < 1)
    return Status::InvalidArgument("miss_ci_batch must be >= 1");
  return Status::Ok();
}

}  // namespace rtq::engine
