#include "engine/metrics.h"

#include "common/check.h"

namespace rtq::engine {

MetricsCollector::MetricsCollector(int64_t miss_ci_batch)
    : miss_batches_(miss_ci_batch) {}

void MetricsCollector::Record(const CompletionRecord& record) {
  records_.push_back(record);
  miss_batches_.Add(record.info.missed ? 1.0 : 0.0);
}

void MetricsCollector::UpdateMpl(SimTime now, int64_t mpl) {
  if (!mpl_started_) {
    mpl_.Start(now, static_cast<double>(mpl));
    mpl_started_ = true;
    return;
  }
  mpl_.Update(now, static_cast<double>(mpl));
}

void MetricsCollector::SampleMpl(SimTime now, int64_t mpl) {
  mpl_samples_.push_back(TimeSample{now, static_cast<double>(mpl)});
}

double MetricsCollector::AverageMpl(SimTime now) const {
  if (!mpl_started_) return 0.0;
  return mpl_.Average(now);
}

double MetricsCollector::MplIntegral(SimTime now) const {
  if (!mpl_started_) return 0.0;
  return mpl_.Integral(now);
}

stats::ConfidenceInterval MetricsCollector::MissRatioCi() const {
  return miss_batches_.Interval(0.90);
}

void MetricsCollector::Fold(const CompletionRecord& r, ClassSummary* s,
                            stats::RunningStats* wait,
                            stats::RunningStats* exec,
                            stats::RunningStats* resp,
                            stats::RunningStats* fluct) {
  ++s->completions;
  if (r.info.missed) ++s->misses;
  wait->Add(r.info.admission_wait);
  exec->Add(r.info.execution_time);
  resp->Add(r.info.admission_wait + r.info.execution_time);
  fluct->Add(static_cast<double>(r.mem_fluctuations));
}

void MetricsCollector::Summarize(int32_t num_classes, ClassSummary* overall,
                                 std::vector<ClassSummary>* per_class) const {
  RTQ_CHECK(overall != nullptr && per_class != nullptr);
  *overall = ClassSummary{};
  per_class->assign(static_cast<size_t>(num_classes), ClassSummary{});

  stats::RunningStats o_wait, o_exec, o_resp, o_fluct;
  std::vector<stats::RunningStats> c_wait(num_classes), c_exec(num_classes),
      c_resp(num_classes), c_fluct(num_classes);

  for (const CompletionRecord& r : records_) {
    Fold(r, overall, &o_wait, &o_exec, &o_resp, &o_fluct);
    int32_t c = r.info.query_class;
    if (c >= 0 && c < num_classes) {
      Fold(r, &(*per_class)[c], &c_wait[c], &c_exec[c], &c_resp[c],
           &c_fluct[c]);
    }
  }

  auto finish = [](ClassSummary* s, const stats::RunningStats& wait,
                   const stats::RunningStats& exec,
                   const stats::RunningStats& resp,
                   const stats::RunningStats& fluct) {
    if (s->completions > 0) {
      s->miss_ratio = static_cast<double>(s->misses) /
                      static_cast<double>(s->completions);
    }
    s->avg_wait = wait.mean();
    s->avg_exec = exec.mean();
    s->avg_response = resp.mean();
    s->avg_fluctuations = fluct.mean();
  };
  finish(overall, o_wait, o_exec, o_resp, o_fluct);
  for (int32_t c = 0; c < num_classes; ++c) {
    finish(&(*per_class)[c], c_wait[c], c_exec[c], c_resp[c], c_fluct[c]);
  }
}

ClassSummary MetricsCollector::WindowSummary(
    const std::vector<CompletionRecord>& records, SimTime from, SimTime to,
    int32_t query_class) {
  ClassSummary s;
  stats::RunningStats wait, exec, resp, fluct;
  for (const CompletionRecord& r : records) {
    if (r.info.finish < from || r.info.finish >= to) continue;
    if (query_class >= 0 && r.info.query_class != query_class) continue;
    Fold(r, &s, &wait, &exec, &resp, &fluct);
  }
  if (s.completions > 0) {
    s.miss_ratio =
        static_cast<double>(s.misses) / static_cast<double>(s.completions);
  }
  s.avg_wait = wait.mean();
  s.avg_exec = exec.mean();
  s.avg_response = resp.mean();
  s.avg_fluctuations = fluct.mean();
  return s;
}

}  // namespace rtq::engine
