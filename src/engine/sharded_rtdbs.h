// A sharded RTDBS: N independent engines behind a deterministic router
// (ROADMAP item 1 — the "millions of users" scale-out).
//
// Each shard is a complete Rtdbs — its own buffer pool, CPU, disk farm,
// memory manager, and policy instance — built from the same base
// SystemConfig. Routing works by *filtered replication* of the arrival
// process: every shard generates the identical arrival stream (same
// seed, same RNG draw order, same timestamps), and the pluggable
// placement function (workload/placement.h) assigns each arrival to
// exactly one shard; the others drop it at their sink. That keeps the
// per-shard draw order pinned — the stream a shard sees is a pure
// function of (seed, placement, shard index) — and it models one global
// arrival process declustered across shards, for Poisson, scenario, and
// trace sources alike.
//
// The cluster advances on one merged clock: each step dispatches the
// earliest pending event across all shards (ties break toward the lowest
// shard index), so the interleaving is deterministic and a global-MPL
// coordinator observes shard transitions in a reproducible order. With
// num_shards=1 the merged loop degenerates to stepping the single shard,
// which makes a 1-shard cluster bit-identical to a plain Rtdbs — the
// invariant the sharded golden-trajectory tests pin.
//
// Admission is per-shard by default ("local": each policy runs its own
// MPL against its own pool). Under "global:mpl=N" a core::ShardCoordinator
// caps the cluster-wide admitted count; enforcement lives in the
// MemoryManager's admission gate, so every registered policy works
// unmodified (policies may additionally introspect the coordinator via
// PolicyHost::coordinator).

#ifndef RTQ_ENGINE_SHARDED_RTDBS_H_
#define RTQ_ENGINE_SHARDED_RTDBS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/shard_coordinator.h"
#include "engine/rtdbs.h"
#include "engine/system_config.h"
#include "workload/placement.h"

namespace rtq::engine {

class ShardedRtdbs {
 public:
  /// Builds `shards.num_shards` engines from `base` (whose shard identity
  /// is overwritten per shard). Fails on invalid base or shard configs.
  static StatusOr<std::unique_ptr<ShardedRtdbs>> Create(
      const SystemConfig& base, const ShardConfig& shards);

  ShardedRtdbs(const ShardedRtdbs&) = delete;
  ShardedRtdbs& operator=(const ShardedRtdbs&) = delete;

  /// Advances the whole cluster to absolute time `until` on the merged
  /// clock, then aligns every shard's clock to the horizon (mirroring
  /// Rtdbs::RunUntil).
  void RunUntil(SimTime until);

  /// Starts every shard's arrival stream and samplers. Idempotent.
  void Start();

  /// Dispatches exactly one event — the earliest pending across all
  /// shards, lowest shard index on ties. Returns false when every shard's
  /// calendar is empty.
  bool StepEvent();

  /// Latest shard clock (== the RunUntil horizon after a run).
  SimTime Now() const;

  int32_t num_shards() const { return static_cast<int32_t>(shards_.size()); }
  Rtdbs& shard(int32_t s) { return *shards_[static_cast<size_t>(s)]; }
  const Rtdbs& shard(int32_t s) const { return *shards_[static_cast<size_t>(s)]; }
  const ShardConfig& shard_config() const { return shard_config_; }
  const workload::ShardPlacement& placement() const { return *placement_; }
  /// Null under local admission.
  const core::ShardCoordinator* coordinator() const {
    return coordinator_.get();
  }

  /// Sum of per-shard dispatched events.
  uint64_t events_dispatched() const;

  /// Cluster-wide aggregate: completions/misses summed, time averages
  /// completion-weighted, avg_mpl summed (total in-flight across shards),
  /// utilizations averaged per shard (max = cluster max). The batch-means
  /// miss CI does not merge across independent streams and is left empty;
  /// use SummarizeShard for per-shard CIs.
  SystemSummary Summarize() const;
  SystemSummary SummarizeShard(int32_t s) const;

  /// Per-shard digests, each prefixed by a "shard <i>" line.
  void AppendStateDigest(std::vector<std::string>* out) const;

 private:
  ShardedRtdbs() = default;

  /// Shard owning the earliest pending event at or before `horizon`
  /// (ties -> lowest index); -1 when none qualifies.
  int32_t NextShard(SimTime horizon) const;

  ShardConfig shard_config_;
  std::unique_ptr<workload::ShardPlacement> placement_;
  std::unique_ptr<core::ShardCoordinator> coordinator_;
  /// Declared after placement_/coordinator_: shards hold raw pointers to
  /// both and must be destroyed first.
  std::vector<std::unique_ptr<Rtdbs>> shards_;
  bool started_ = false;
};

}  // namespace rtq::engine

#endif  // RTQ_ENGINE_SHARDED_RTDBS_H_
