// Full configuration of a simulated RTDBS (paper Tables 1-4).
//
// Defaults reproduce Table 3's resource settings. Experiment-specific
// database and workload settings (Tables 6 and 8) are built by the bench
// harness (src/harness/paper_experiments.h).

#ifndef RTQ_ENGINE_SYSTEM_CONFIG_H_
#define RTQ_ENGINE_SYSTEM_CONFIG_H_

#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/pmm.h"
#include "exec/cost_model.h"
#include "model/disk_geometry.h"
#include "storage/database.h"
#include "workload/workload_spec.h"

namespace rtq::engine {

enum class PolicyKind {
  kMax,           ///< static Max strategy
  kMinMax,        ///< static MinMax-infinity
  kMinMaxN,       ///< static MinMax-N (mpl_limit)
  kProportional,  ///< static Proportional-infinity
  kProportionalN, ///< static Proportional-N (mpl_limit)
  kPmm,           ///< adaptive PMM controller
  kPmmFair,       ///< PMM with the Section 5.6 fairness extension
};

const char* PolicyKindName(PolicyKind kind);

struct PolicyConfig {
  PolicyKind kind = PolicyKind::kPmm;
  /// N for the -N variants.
  int64_t mpl_limit = -1;
  /// Max admission bypass (see MaxStrategy); ablation A1 turns it off.
  bool max_bypass = true;
  /// Per-class desired relative miss ratios for kPmmFair.
  std::vector<double> fair_weights;
};

struct SystemConfig {
  /// CPU MIPS rating (Table 3: 40 MIPS).
  double mips = 40.0;
  /// Number of disks (Table 3 default; experiments use 6, 10 or 12).
  int32_t num_disks = 10;
  model::DiskParams disk;
  /// Total buffer pool M in pages (Table 3: 2560 pages = 20 MB).
  PageCount memory_pages = 2560;
  exec::ExecParams exec;
  storage::DatabaseSpec database;
  workload::WorkloadSpec workload;
  core::PmmParams pmm;
  PolicyConfig policy;
  uint64_t seed = 42;
  /// Interval of the realized-MPL trace sampler; <= 0 disables it.
  SimTime mpl_sample_interval = 60.0;
  /// Batch size for the miss-ratio batch-means confidence interval.
  int64_t miss_ci_batch = 200;

  Status Validate() const;
};

}  // namespace rtq::engine

#endif  // RTQ_ENGINE_SYSTEM_CONFIG_H_
