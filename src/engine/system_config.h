// Full configuration of a simulated RTDBS (paper Tables 1-4).
//
// Defaults reproduce Table 3's resource settings. Experiment-specific
// database and workload settings (Tables 6 and 8) are built by the bench
// harness (src/harness/paper_experiments.h).

#ifndef RTQ_ENGINE_SYSTEM_CONFIG_H_
#define RTQ_ENGINE_SYSTEM_CONFIG_H_

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/pmm.h"
#include "exec/cost_model.h"
#include "model/disk_geometry.h"
#include "storage/database.h"
#include "workload/scenario.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace rtq::core {
class ShardCoordinator;
}  // namespace rtq::core
namespace rtq::workload {
class ShardPlacement;
}  // namespace rtq::workload

namespace rtq::engine {

/// DEPRECATED closed policy enumeration. The policy surface is open now:
/// policies are named by core::PolicyRegistry spec strings (see
/// PolicyConfig::spec). The enum remains as a source-compatibility shim
/// that forwards to the equivalent spec string; new code and new
/// policies should use specs directly.
enum class PolicyKind {
  kMax,           ///< "max" (or "max:strict" when max_bypass is off)
  kMinMax,        ///< "minmax"
  kMinMaxN,       ///< "minmax:N" (mpl_limit)
  kProportional,  ///< "prop"
  kProportionalN, ///< "prop:N" (mpl_limit)
  kPmm,           ///< "pmm"
  kPmmFair,       ///< "pmm-fair:w=..." (fair_weights)
};

/// DEPRECATED: display name of a legacy enum value.
const char* PolicyKindName(PolicyKind kind);

/// Which memory policy manages the buffer pool. The one live field is
/// `spec`; the enum fields below it are a deprecated shim kept so
/// pre-registry call sites keep compiling (and behaving identically).
struct PolicyConfig {
  PolicyConfig() = default;
  /// Implicit from a spec string: `config.policy = {"minmax:5"};`
  PolicyConfig(std::string spec_string)  // NOLINT(google-explicit-constructor)
      : spec(std::move(spec_string)) {}
  PolicyConfig(const char* spec_string) : spec(spec_string) {}  // NOLINT

  /// core::PolicyRegistry spec string ("pmm", "minmax:5", "none", ...).
  /// Empty means "derive from the deprecated enum fields below".
  std::string spec;

  /// The spec this config resolves to: `spec` when set, else the
  /// deprecated enum fields rendered as a spec string.
  std::string ResolvedSpec() const;

  // --- deprecated compat shim (pre-PolicyRegistry API) ---------------------
  /// DEPRECATED: use `spec`. Ignored when `spec` is non-empty.
  PolicyKind kind = PolicyKind::kPmm;
  /// DEPRECATED: N for the -N variants ("minmax:N" / "prop:N").
  int64_t mpl_limit = -1;
  /// DEPRECATED: Max admission bypass; false maps to "max:strict".
  bool max_bypass = true;
  /// DEPRECATED: per-class weights ("pmm-fair:w=...").
  std::vector<double> fair_weights;
};

/// Sharded-deployment shape consumed by engine::ShardedRtdbs: how many
/// independent Rtdbs shards to build, how arrivals decluster across them,
/// and whether admission is coordinated globally. Plain Rtdbs ignores it.
struct ShardConfig {
  int32_t num_shards = 1;
  /// Placement spec routing each arrival to exactly one shard:
  ///   "hash"         query-id hash, uniform load balancing
  ///   "range"        contiguous relation-id ranges (data declustering)
  ///   "skew[:hot=F]" fraction F of arrivals pinned to shard 0 (default 0.5)
  std::string placement = "hash";
  /// Admission spec: "local" (each shard runs its policy's own MPL) or
  /// "global:mpl=N" (a cross-shard coordinator caps total admitted
  /// queries at N; see core::ShardCoordinator).
  std::string admission = "local";

  Status Validate() const;
  bool sharded() const { return num_shards > 1; }
};

/// Identity stamped on a shard's SystemConfig by engine::ShardedRtdbs so
/// the embedded engine knows which slice of the arrival stream is its own
/// and (under global admission) which coordinator to consult. Plain
/// single-engine systems leave this at its defaults: index 0 of 1,
/// accept-everything, no coordinator.
struct ShardIdentity {
  int32_t index = 0;
  int32_t count = 1;
  /// Non-null on shards of a sharded system: arrivals whose placement
  /// shard differs from `index` are counted and dropped at the sink (the
  /// stream itself is generated identically on every shard). Not owned.
  const workload::ShardPlacement* placement = nullptr;
  /// Non-null only under admission="global:mpl=N". Not owned.
  core::ShardCoordinator* coordinator = nullptr;
};

struct SystemConfig {
  /// CPU MIPS rating (Table 3: 40 MIPS).
  double mips = 40.0;
  /// Number of disks (Table 3 default; experiments use 6, 10 or 12).
  int32_t num_disks = 10;
  model::DiskParams disk;
  /// Total buffer pool M in pages (Table 3: 2560 pages = 20 MB).
  PageCount memory_pages = 2560;
  exec::ExecParams exec;
  storage::DatabaseSpec database;
  workload::WorkloadSpec workload;
  /// Optional scenario: when enabled(), arrivals come from a
  /// ScenarioSource driving `scenario`'s per-class arrival shapes instead
  /// of the plain Poisson Source. Mutually exclusive with `trace`.
  workload::ScenarioSpec scenario;
  /// Optional trace replay: when set, arrivals replay this `.rtqt` trace
  /// through a TraceSource (no randomness consumed). Mutually exclusive
  /// with `scenario`.
  std::shared_ptr<const workload::Trace> trace;
  core::PmmParams pmm;
  PolicyConfig policy;
  uint64_t seed = 42;
  /// Interval of the realized-MPL trace sampler; <= 0 disables it.
  SimTime mpl_sample_interval = 60.0;
  /// Batch size for the miss-ratio batch-means confidence interval.
  int64_t miss_ci_batch = 200;
  /// Shard identity within a ShardedRtdbs (defaults = standalone engine).
  ShardIdentity shard;

  /// The database layout spec with `num_disks` resolved: a spec left at
  /// the 0 sentinel inherits this config's `num_disks`, so the layout and
  /// the engine's disk farm cannot drift apart. Validate() rejects an
  /// explicit non-zero mismatch.
  storage::DatabaseSpec EffectiveDatabase() const;

  Status Validate() const;
};

}  // namespace rtq::engine

#endif  // RTQ_ENGINE_SYSTEM_CONFIG_H_
