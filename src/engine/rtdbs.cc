#include "engine/rtdbs.h"

#include <algorithm>
#include <cstdlib>
#include <map>
#include <utility>

#include "common/check.h"
#include "common/fnv.h"
#include "common/rng.h"
#include "core/policy_registry.h"
#include "core/shard_coordinator.h"
#include "core/strategy.h"
#include "workload/placement.h"
#include "workload/scenario.h"
#include "workload/scenario_registry.h"
#include "workload/trace.h"
#include "workload/trace_source.h"

namespace rtq::engine {

// ---------------------------------------------------------------------------
// Per-query execution context: binds the query's identity and ED priority
// into every CPU job and disk request, charges the start-I/O CPU cost, and
// consults the buffer pool's LRU page cache before touching a disk.
// ---------------------------------------------------------------------------
class Rtdbs::QueryContext : public exec::ExecContext {
 public:
  QueryContext(Rtdbs* sys, QueryId id, SimTime deadline)
      : sys_(sys), id_(id), deadline_(deadline) {}

  SimTime Now() const override { return sys_->sim_.Now(); }

  void RunCpu(Instructions instructions, exec::DoneCallback done) override {
    sys_->cpu_->Submit(
        model::CpuJob{id_, deadline_, instructions, std::move(done)});
  }

  void Read(DiskId disk, PageCount start, PageCount pages,
            exec::DoneCallback done) override {
    RTQ_DCHECK(disk >= 0 &&
               disk < static_cast<DiskId>(sys_->disks_.size()));
    if (sys_->CacheCovers(disk, start, pages)) {
      // Buffer-pool hit: no disk access; the lookup cost is folded into
      // the start-I/O charge.
      sys_->cpu_->Submit(model::CpuJob{
          id_, deadline_, sys_->config_.exec.costs.start_io,
          std::move(done)});
      return;
    }
    Rtdbs* sys = sys_;
    QueryId id = id_;
    SimTime deadline = deadline_;
    sys_->cpu_->Submit(model::CpuJob{
        id_, deadline_, sys_->config_.exec.costs.start_io,
        [sys, id, deadline, disk, start, pages,
         done = std::move(done)]() mutable {
          model::DiskRequest req;
          req.query = id;
          req.deadline = deadline;
          req.start_page = start;
          req.pages = pages;
          req.is_write = false;
          req.on_complete = [sys, disk, start, pages,
                             done = std::move(done)]() mutable {
            sys->CacheInsert(disk, start, pages);
            done();
          };
          sys->disks_[static_cast<size_t>(disk)]->Submit(std::move(req));
        }});
  }

  void Write(DiskId disk, PageCount start, PageCount pages,
             exec::DoneCallback done, bool background) override {
    RTQ_DCHECK(disk >= 0 &&
               disk < static_cast<DiskId>(sys_->disks_.size()));
    Rtdbs* sys = sys_;
    QueryId id = id_;
    // Background spool writes sort after every deadline-bearing request
    // in the ED disk queues.
    SimTime deadline = background ? kNoDeadline : deadline_;
    sys_->CacheInvalidate(disk, start, pages);
    sys_->cpu_->Submit(model::CpuJob{
        id_, deadline_, sys_->config_.exec.costs.start_io,
        [sys, id, deadline, disk, start, pages,
         done = std::move(done)]() mutable {
          model::DiskRequest req;
          req.query = id;
          req.deadline = deadline;
          req.start_page = start;
          req.pages = pages;
          req.is_write = true;
          req.on_complete = std::move(done);
          sys->disks_[static_cast<size_t>(disk)]->Submit(std::move(req));
        }});
  }

  StatusOr<storage::TempFile> AllocateTemp(PageCount pages,
                                           DiskId preferred) override {
    return sys_->temp_->Allocate(pages, preferred);
  }

  void FreeTemp(const storage::TempFile& file) override {
    sys_->temp_->Free(file);
  }

 private:
  Rtdbs* sys_;
  QueryId id_;
  SimTime deadline_;
};

// ---------------------------------------------------------------------------
// SystemProbe: per-batch utilization and realized-MPL readings for PMM,
// computed as integral deltas so the lifetime metrics stay intact.
// ---------------------------------------------------------------------------
class Rtdbs::ProbeImpl : public core::SystemProbe {
 public:
  explicit ProbeImpl(Rtdbs* sys) : sys_(sys) {
    // Explicit boot-time baselines: the disk farm exists before the probe
    // (Init builds disks_ first), and seeding zeros makes the first
    // window span [0, first reading) with the true boot utilization.
    disk_windows_.Rebind(sys_->disks_.size(), [](size_t) { return 0.0; });
  }

  Readings TakeReadings() override {
    SimTime now = sys_->sim_.Now();
    Readings r;
    r.now = now;
    double dt = now - last_time_;
    if (dt <= 0.0) {
      // Degenerate window; report instantaneous state.
      r.realized_mpl =
          static_cast<double>(sys_->mm_->admitted_count());
      return r;
    }
    double cpu_busy = sys_->cpu_->busy_seconds(now);
    r.cpu_utilization = (cpu_busy - last_cpu_busy_) / dt;
    last_cpu_busy_ = cpu_busy;

    double max_disk = 0.0;
    double sum_disk = 0.0;
    // A changed disk count means the farm was rebuilt mid-run; re-seed
    // the baselines from the new disks' *current* integrals so this
    // window reports only in-window busy time (a zero baseline would
    // spike utilization by the disks' entire lifetime integral).
    disk_windows_.Rebind(sys_->disks_.size(), [&](size_t d) {
      return sys_->disks_[d]->busy_seconds(now);
    });
    for (size_t d = 0; d < sys_->disks_.size(); ++d) {
      double util =
          disk_windows_.Advance(d, sys_->disks_[d]->busy_seconds(now), dt);
      max_disk = std::max(max_disk, util);
      sum_disk += util;
    }
    r.max_disk_utilization = max_disk;
    r.avg_disk_utilization =
        sys_->disks_.empty()
            ? 0.0
            : sum_disk / static_cast<double>(sys_->disks_.size());

    double mpl_integral = sys_->metrics_.MplIntegral(now);
    r.realized_mpl = (mpl_integral - last_mpl_integral_) / dt;
    last_mpl_integral_ = mpl_integral;

    last_time_ = now;
    return r;
  }

 private:
  Rtdbs* sys_;
  SimTime last_time_ = 0.0;
  double last_cpu_busy_ = 0.0;
  DiskUtilWindows disk_windows_;
  double last_mpl_integral_ = 0.0;
};

// ---------------------------------------------------------------------------
// Rtdbs
// ---------------------------------------------------------------------------

Rtdbs::Rtdbs(const SystemConfig& config)
    : config_(config), metrics_(config.miss_ci_batch) {}

Rtdbs::~Rtdbs() = default;

StatusOr<std::unique_ptr<Rtdbs>> Rtdbs::Create(const SystemConfig& config) {
  RTQ_RETURN_IF_ERROR(config.Validate());
  std::unique_ptr<Rtdbs> sys(new Rtdbs(config));
  RTQ_RETURN_IF_ERROR(sys->Init());
  return sys;
}

Status Rtdbs::Init() {
  Rng master(config_.seed);
  Rng placement_rng = master.Fork();
  Rng source_rng = master.Fork();
  // The live stream is a third fork: taking it consumes only the master
  // (discarded below), so placement and source trajectories are
  // bit-identical to builds that never fork it.
  live_rng_ = master.Fork();

  cpu_ = std::make_unique<model::Cpu>(&sim_, config_.mips);
  disks_.reserve(config_.num_disks);
  for (DiskId d = 0; d < config_.num_disks; ++d) {
    disks_.push_back(
        std::make_unique<model::Disk>(&sim_, config_.disk, d));
  }

  auto db = storage::Database::Create(config_.EffectiveDatabase(),
                                      config_.disk, &placement_rng);
  RTQ_RETURN_IF_ERROR(db.status().ok() ? Status::Ok() : db.status());
  db_ = std::make_unique<storage::Database>(std::move(db).value());
  {
    Status s = config_.workload.Validate(*db_);
    if (!s.ok()) return s;
  }
  temp_ = std::make_unique<storage::TempSpace>(*db_, config_.disk);
  pool_ = std::make_unique<buffer::BufferPool>(config_.memory_pages);

  // Memory-management policy: resolve the spec string through the
  // registry. The manager starts on a placeholder strategy; Attach
  // installs the policy's real one before any query exists.
  mm_ = std::make_unique<core::MemoryManager>(
      config_.memory_pages, std::make_unique<core::MaxStrategy>(),
      [this](QueryId id, PageCount pages) { ApplyAllocation(id, pages); });
  if (config_.shard.coordinator != nullptr) {
    // Global admission: this shard's would-be admissions claim slots from
    // the cluster-wide coordinator before any query exists.
    mm_->SetAdmissionGate(
        config_.shard.coordinator->GateFor(config_.shard.index));
  }

  probe_ = std::make_unique<ProbeImpl>(this);
  auto policy =
      core::PolicyRegistry::Global().Create(config_.policy.ResolvedSpec());
  if (!policy.ok()) return policy.status();
  policy_ = std::move(policy).value();

  RTQ_RETURN_IF_ERROR(policy_->Attach(MakePolicyHost()));

  // Arrival source: trace replay > scenario > plain Poisson. All three
  // feed the same sink; the source_rng fork happens above regardless, so
  // swapping sources never perturbs the placement stream.
  workload::ArrivalSource::Sink sink = MakeSink();
  if (config_.trace != nullptr) {
    auto src = workload::TraceSource::Create(
        &sim_, db_.get(), config_.workload, config_.exec, config_.disk,
        config_.mips, config_.trace, std::move(sink));
    if (!src.ok()) return src.status();
    source_ = std::move(src).value();
  } else if (config_.scenario.enabled()) {
    source_ = std::make_unique<workload::ScenarioSource>(
        &sim_, db_.get(), config_.workload, config_.scenario, config_.exec,
        config_.disk, config_.mips, std::move(source_rng), std::move(sink));
  } else {
    source_ = std::make_unique<workload::Source>(
        &sim_, db_.get(), config_.workload, config_.exec, config_.disk,
        config_.mips, std::move(source_rng), std::move(sink));
  }

  metrics_.UpdateMpl(0.0, 0);
  return Status::Ok();
}

StatusOr<workload::Trace> RenderScenarioTrace(const SystemConfig& config,
                                              SimTime horizon) {
  RTQ_RETURN_IF_ERROR(config.Validate());
  if (!config.scenario.enabled())
    return Status::InvalidArgument(
        "RenderScenarioTrace: config has no scenario");
  // Mirror Init's fork order exactly: master -> placement -> source.
  Rng master(config.seed);
  Rng placement_rng = master.Fork();
  Rng source_rng = master.Fork();
  auto db = storage::Database::Create(config.EffectiveDatabase(),
                                      config.disk, &placement_rng);
  if (!db.ok()) return db.status();
  Status st = config.workload.Validate(db.value());
  if (!st.ok()) return st;
  workload::Trace trace = workload::RenderTrace(
      config.scenario, config.workload, db.value(), config.exec, config.disk,
      config.mips, std::move(source_rng), horizon);
  trace.seed = config.seed;
  return trace;
}

core::PolicyHost Rtdbs::MakePolicyHost() {
  core::PolicyHost host;
  host.mm = mm_.get();
  host.probe = probe_.get();
  host.now = [this] { return sim_.Now(); };
  host.pmm = config_.pmm;
  host.num_classes = static_cast<int32_t>(config_.workload.classes.size());
  host.tick_interval = config_.mpl_sample_interval;
  host.shard_index = config_.shard.index;
  host.num_shards = config_.shard.count;
  host.coordinator = config_.shard.coordinator;
  return host;
}

workload::ArrivalSource::Sink Rtdbs::MakeSink() {
  return [this](const workload::QueryBlueprint& bp, QueryId id) {
    OnArrival(bp, id);
  };
}

void Rtdbs::RunUntil(SimTime until) {
  Start();
  sim_.RunUntil(until);
}

void Rtdbs::Start() {
  if (started_) return;
  started_ = true;
  source_->Start();
  ScheduleMplSampler();
}

bool Rtdbs::StepEvent() {
  Start();
  return sim_.Step();
}

PolicySwapOutcome Rtdbs::SwapPolicy(const std::string& spec) {
  PolicySwapOutcome out;
  auto created = core::PolicyRegistry::Global().Create(spec);
  if (!created.ok()) {
    // Stage-1 failure: nothing was touched, the system is bit-identical
    // to before the call.
    out.status = created.status();
    out.active_spec = policy_->Describe();
    return out;
  }
  std::unique_ptr<core::MemoryPolicy> incoming = std::move(created).value();
  const std::string incumbent_spec = policy_->Describe();
  Status attach = incoming->Attach(MakePolicyHost());
  if (!attach.ok()) {
    // Attach may have steered mm_ before failing, so "keep the incumbent
    // object" is not safe; rebuild it from its canonical spec and
    // re-attach, leaving a well-defined (but state-reset) policy. The
    // incumbent's spec attached once already, so the rebuild cannot fail.
    auto rebuilt = core::PolicyRegistry::Global().Create(incumbent_spec);
    RTQ_CHECK_MSG(rebuilt.ok(), "incumbent policy spec no longer parses");
    retired_policies_.push_back(std::move(policy_));
    policy_ = std::move(rebuilt).value();
    Status reattach = policy_->Attach(MakePolicyHost());
    RTQ_CHECK_MSG(reattach.ok(), "incumbent policy re-attach failed");
    out.status = attach;
    out.active_spec = incumbent_spec;
    out.reattached = true;
    return out;
  }
  retired_policies_.push_back(std::move(policy_));
  policy_ = std::move(incoming);
  out.active_spec = policy_->Describe();
  out.reattached = true;
  config_.policy.spec = out.active_spec;
  return out;
}

StatusOr<std::string> Rtdbs::SwapScenario(const std::string& spec) {
  auto created = workload::ScenarioRegistry::Global().Create(spec);
  if (!created.ok()) return created.status();
  workload::ScenarioSpec scenario = std::move(created).value();
  RTQ_RETURN_IF_ERROR(scenario.Validate(config_.workload));
  // All validation passed: from here construction cannot fail. Silence
  // the old source (its pending events fire as no-ops) and park it so
  // those events' `this` captures stay valid.
  source_->Stop();
  auto first_id = static_cast<QueryId>(source_->generated());
  retired_sources_.push_back(std::move(source_));
  auto incoming = std::make_unique<workload::ScenarioSource>(
      &sim_, db_.get(), config_.workload, scenario, config_.exec,
      config_.disk, config_.mips, live_rng_.Fork(), MakeSink());
  incoming->set_first_query_id(first_id);
  if (started_) incoming->Start();
  source_ = std::move(incoming);
  config_.scenario = scenario;
  config_.trace = nullptr;
  return scenario.name;
}

void Rtdbs::ScheduleMplSampler() {
  if (config_.mpl_sample_interval <= 0.0) return;
  sim_.ScheduleAfter(config_.mpl_sample_interval, [this] {
    metrics_.SampleMpl(sim_.Now(),
                       static_cast<int64_t>(mm_->admitted_count()));
    policy_->OnTick(sim_.Now());
    ScheduleMplSampler();
  });
}

Rtdbs::QueryRuntime* Rtdbs::AcquireRuntime() {
  if (!free_runtimes_.empty()) {
    QueryRuntime* rt = free_runtimes_.back();
    free_runtimes_.pop_back();
    ++runtimes_recycled_;
    return rt;
  }
  runtime_storage_.push_back(std::make_unique<QueryRuntime>());
  return runtime_storage_.back().get();
}

void Rtdbs::PurgeRetired() {
  if (retired_.empty()) return;
  // events_dispatched() only advances AFTER an event's callback returns,
  // so any runtime parked at an earlier count has fully unwound its
  // retiring event's stack and nothing can still reference it.
  const uint64_t fence = sim_.events_dispatched();
  size_t i = 0;
  while (i < retired_.size()) {
    QueryRuntime* rt = retired_[i];
    if (rt->parked_at < fence) {
      rt->arena.Reset();  // runs operator/context destructors
      rt->op = nullptr;
      rt->ctx = nullptr;
      rt->deadline_event = sim::kInvalidEventId;
      rt->allocation = 0;
      rt->admitted_once = false;
      rt->first_admit = 0.0;
      rt->fluctuations = 0;
      rt->finished = false;
      rt->parked_at = 0;
      free_runtimes_.push_back(rt);
      retired_[i] = retired_.back();
      retired_.pop_back();
    } else {
      ++i;
    }
  }
}

void Rtdbs::OnArrival(const workload::QueryBlueprint& bp, QueryId id) {
  if (config_.shard.placement != nullptr &&
      config_.shard.placement->ShardOf(
          id, bp.r, static_cast<int64_t>(db_->relations().size())) !=
          config_.shard.index) {
    // Another shard of the cluster owns this arrival. Every shard
    // generates the identical stream (same seed, same draws), so dropping
    // a foreign arrival at the sink *is* the routing step — no query
    // state, metrics, or policy event is created for it.
    ++routed_elsewhere_;
    return;
  }
  PurgeRetired();
  QueryRuntime* rt = AcquireRuntime();
  workload::BuiltQueryRefs built = workload::BuildQueryInArena(
      bp, id, *db_, config_.exec, config_.disk, config_.mips, &rt->arena);
  const exec::QueryDescriptor& desc = built.desc;
  rt->desc = desc;
  rt->op = built.op;
  rt->ctx = rt->arena.New<QueryContext>(this, id, desc.deadline);
  rt->op->on_finished = [this, id] { OnOperatorFinished(id); };
  rt->deadline_event =
      sim_.ScheduleAt(desc.deadline, [this, id] { OnDeadline(id); });

  auto [it, inserted] = runtimes_.emplace(id, rt);
  RTQ_CHECK_MSG(inserted, "duplicate query id at arrival");
  (void)it;

  core::MemRequest req;
  req.id = id;
  req.deadline = desc.deadline;
  req.arrival = desc.arrival;
  req.query_class = desc.query_class;
  req.min_memory = desc.min_memory;
  // A query whose maximum demand exceeds the machine is capped: it runs
  // at whatever the pool can give (its operator adapts), never at "max".
  req.max_memory = std::min(desc.max_memory, config_.memory_pages);
  req.standalone_estimate = desc.standalone_time;
  req.operand_pages = desc.operand_pages;
  // Live progress signal for feasibility policies. The counters live in
  // the operator, whose QueryRuntime outlives the mm_ registration:
  // FinishQuery parks the runtime in retired_ before RemoveQuery runs,
  // and retired runtimes are only recycled at a later event.
  req.pages_read = &rt->op->counters().pages_read;
  mm_->AddQuery(req);
  UpdateMplSignal();

  core::QueryEvent event;
  event.kind = core::QueryEvent::Kind::kArrival;
  event.info.id = id;
  event.info.query_class = desc.query_class;
  event.info.arrival = desc.arrival;
  event.info.deadline = desc.deadline;
  event.info.time_constraint = desc.deadline - desc.arrival;
  event.info.max_memory = desc.max_memory;
  event.info.operand_io_requests = desc.operand_io_requests;
  policy_->OnQueryEvent(event);
}

void Rtdbs::ApplyAllocation(QueryId id, PageCount pages) {
  auto it = runtimes_.find(id);
  if (it == runtimes_.end()) return;  // already finished
  QueryRuntime& rt = *it->second;
  if (rt.finished) return;
  if (pages == rt.allocation) return;
  if (const char* tq = std::getenv("RTQ_TRACE_QUERY")) {
    if (static_cast<QueryId>(std::atoll(tq)) == id) {
      std::fprintf(stderr,
                   "[trace] t=%.1f q%llu alloc %lld -> %lld (max=%lld)\n",
                   sim_.Now(), (unsigned long long)id,
                   (long long)rt.allocation, (long long)pages,
                   (long long)rt.desc.max_memory);
    }
  }

  Status st = pool_->SetReservation(id, pages);
  RTQ_CHECK_MSG(st.ok(), st.ToString().c_str());

  if (rt.op->started()) ++rt.fluctuations;
  rt.allocation = pages;

  if (!rt.op->started()) {
    if (pages > 0) {
      RTQ_CHECK_MSG(pages >= rt.desc.min_memory || pages >= rt.op->min_memory(),
                    "admission below operator minimum");
      rt.admitted_once = true;
      rt.first_admit = sim_.Now();
      rt.op->SetAllocation(pages);
      rt.op->Start(rt.ctx);
    }
  } else {
    rt.op->SetAllocation(pages);
  }
  UpdateMplSignal();
}

void Rtdbs::OnOperatorFinished(QueryId id) { FinishQuery(id, false); }

void Rtdbs::OnDeadline(QueryId id) {
  auto it = runtimes_.find(id);
  if (it == runtimes_.end()) return;
  QueryRuntime& rt = *it->second;
  if (rt.finished) return;
  // Firm deadline: cancel all outstanding demands and discard the work.
  cpu_->CancelQuery(id);
  for (auto& disk : disks_) disk->CancelQuery(id);
  rt.op->Abort();
  FinishQuery(id, true);
}

void Rtdbs::FinishQuery(QueryId id, bool missed) {
  PurgeRetired();
  auto it = runtimes_.find(id);
  RTQ_CHECK_MSG(it != runtimes_.end(), "finishing unknown query");
  QueryRuntime* rt = it->second;
  runtimes_.erase(it);
  rt->finished = true;

  if (!missed) sim_.Cancel(rt->deadline_event);
  pool_->ReleaseAll(id);

  SimTime now = sim_.Now();
  CompletionRecord rec;
  rec.info.id = id;
  rec.info.query_class = rt->desc.query_class;
  rec.info.missed = missed;
  rec.info.arrival = rt->desc.arrival;
  rec.info.finish = now;
  rec.info.deadline = rt->desc.deadline;
  rec.info.admission_wait =
      rt->admitted_once ? rt->first_admit - rt->desc.arrival
                        : now - rt->desc.arrival;
  rec.info.execution_time = rt->admitted_once ? now - rt->first_admit : 0.0;
  rec.info.time_constraint = rt->desc.deadline - rt->desc.arrival;
  rec.info.max_memory = rt->desc.max_memory;
  rec.info.operand_io_requests = rt->desc.operand_io_requests;
  rec.type = rt->desc.type;
  rec.mem_fluctuations = rt->fluctuations;
  rec.pages_read = rt->op->counters().pages_read;
  rec.pages_written = rt->op->counters().pages_written;
  metrics_.Record(rec);

  // Park the runtime: the operator may still be on the call stack. It is
  // recycled (arena reset, returned to the free list) by PurgeRetired()
  // once a later event is dispatching.
  rt->parked_at = sim_.events_dispatched();
  retired_.push_back(rt);

  mm_->RemoveQuery(id);
  UpdateMplSignal();

  core::QueryEvent event;
  event.kind = core::QueryEvent::Kind::kCompletion;
  event.info = rec.info;
  policy_->OnQueryEvent(event);
}

void Rtdbs::UpdateMplSignal() {
  metrics_.UpdateMpl(sim_.Now(),
                     static_cast<int64_t>(mm_->admitted_count()));
}

bool Rtdbs::CacheCovers(DiskId disk, PageCount start, PageCount pages) {
  buffer::LruCache& cache = pool_->page_cache();
  if (cache.capacity() == 0) return false;
  // One hash per page: collect handles, then promote them only on full
  // coverage. Counter semantics match the historical Contains-then-Lookup
  // double scan exactly (no miss recorded on partial coverage, one hit
  // per page on full coverage, promotion in ascending page order).
  cache_scratch_.clear();
  for (PageCount p = start; p < start + pages; ++p) {
    buffer::LruCache::Handle h =
        cache.Find(buffer::BufferPool::PageKey(disk, p));
    if (h == buffer::LruCache::kNullHandle) return false;
    cache_scratch_.push_back(h);
  }
  for (buffer::LruCache::Handle h : cache_scratch_) cache.Touch(h);
  return true;
}

void Rtdbs::CacheInsert(DiskId disk, PageCount start, PageCount pages) {
  buffer::LruCache& cache = pool_->page_cache();
  if (cache.capacity() == 0) return;
  for (PageCount p = start; p < start + pages; ++p) {
    cache.Insert(buffer::BufferPool::PageKey(disk, p));
  }
}

void Rtdbs::CacheInvalidate(DiskId disk, PageCount start, PageCount pages) {
  buffer::LruCache& cache = pool_->page_cache();
  for (PageCount p = start; p < start + pages; ++p) {
    cache.Erase(buffer::BufferPool::PageKey(disk, p));
  }
}

void Rtdbs::AppendStateDigest(std::vector<std::string>* out) const {
  const SimTime now = sim_.Now();
  out->push_back("clock " + workload::FormatDouble(now));
  out->push_back("dispatched " + std::to_string(sim_.events_dispatched()));
  out->push_back("routed " + std::to_string(routed_elsewhere_));

  {
    auto pending = sim_.queue().ExportPending();
    Fnv1a64 h;
    for (const auto& [time, seq] : pending) {
      h.UpdateDouble(time);
      h.Update64(seq);
    }
    out->push_back("pending " + std::to_string(pending.size()) + " " +
                   std::to_string(h.digest()));
  }

  // runtimes_ is an unordered map; digest lines must not depend on its
  // iteration order.
  std::map<QueryId, const QueryRuntime*> live;
  for (const auto& [id, rt] : runtimes_) live.emplace(id, rt);
  out->push_back("queries " + std::to_string(live.size()));
  for (const auto& [id, rt] : live) {
    out->push_back("query " + std::to_string(id) + " " +
                   std::to_string(rt->desc.query_class) + " " +
                   std::to_string(rt->allocation) + " " +
                   std::to_string(rt->admitted_once ? 1 : 0) + " " +
                   workload::FormatDouble(rt->first_admit) + " " +
                   std::to_string(rt->fluctuations) + " " +
                   std::to_string(rt->op->started() ? 1 : 0) + " " +
                   std::to_string(rt->op->counters().pages_read) + " " +
                   std::to_string(rt->op->counters().pages_written));
  }

  out->push_back("cpu " + std::to_string(cpu_->pending_jobs()) + " " +
                 std::to_string(cpu_->completed_jobs()) + " " +
                 std::to_string(cpu_->preemptions()) + " " +
                 workload::FormatDouble(cpu_->busy_seconds(now)));
  for (size_t d = 0; d < disks_.size(); ++d) {
    const model::Disk& disk = *disks_[d];
    out->push_back("disk " + std::to_string(d) + " " +
                   std::to_string(disk.head()) + " " +
                   std::to_string(disk.busy() ? 1 : 0) + " " +
                   std::to_string(disk.queue_length()) + " " +
                   workload::FormatDouble(disk.busy_seconds(now)) + " " +
                   std::to_string(disk.completed_requests()) + " " +
                   std::to_string(disk.completed_pages()) + " " +
                   std::to_string(disk.cache_hits()));
  }

  {
    const buffer::LruCache& cache = pool_->page_cache();
    Fnv1a64 h;
    for (uint64_t key : cache.Keys()) h.Update64(key);
    out->push_back("cache " + std::to_string(cache.size()) + " " +
                   std::to_string(h.digest()) + " " +
                   std::to_string(cache.hits()) + " " +
                   std::to_string(cache.misses()));
  }

  out->push_back("mm " + std::to_string(mm_->total_pages()) + " " +
                 std::to_string(mm_->allocated_pages()) + " " +
                 std::to_string(mm_->admitted_count()) + " " +
                 std::to_string(mm_->waiting_count()) + " " +
                 std::to_string(mm_->recomputes()));

  out->push_back("policy " + policy_->Describe());
  if (const core::PmmController* p = pmm()) {
    out->push_back("pmm " + std::to_string(static_cast<int>(p->mode())) +
                   " " + std::to_string(p->target_mpl()) + " " +
                   std::to_string(p->adaptations()) + " " +
                   std::to_string(p->workload_changes_detected()));
  }

  source_->AppendStateDigest(out);

  {
    const auto& records = metrics_.records();
    int64_t misses = 0;
    Fnv1a64 h;
    for (const CompletionRecord& r : records) {
      if (r.info.missed) ++misses;
      h.Update64(static_cast<uint64_t>(r.info.id));
      h.Update64(r.info.missed ? 1 : 0);
      h.UpdateDouble(r.info.finish);
      h.Update64(static_cast<uint64_t>(r.mem_fluctuations));
    }
    out->push_back("metrics " + std::to_string(records.size()) + " " +
                   std::to_string(misses) + " " +
                   std::to_string(h.digest()) + " " +
                   std::to_string(metrics_.mpl_samples().size()) + " " +
                   workload::FormatDouble(metrics_.MplIntegral(now)));
  }

  out->push_back("livestream " +
                 std::to_string(Fnv1a64Hash(live_rng_.StateString())));
}

SystemSummary Rtdbs::Summarize() const {
  SimTime now = sim_.Now();
  SystemSummary s;
  metrics_.Summarize(static_cast<int32_t>(config_.workload.classes.size()),
                     &s.overall, &s.per_class);
  s.avg_mpl = metrics_.AverageMpl(now);
  s.cpu_utilization = now > 0.0 ? cpu_->busy_seconds(now) / now : 0.0;
  double sum = 0.0, mx = 0.0;
  for (const auto& disk : disks_) {
    double u = now > 0.0 ? disk->busy_seconds(now) / now : 0.0;
    sum += u;
    mx = std::max(mx, u);
  }
  s.avg_disk_utilization =
      disks_.empty() ? 0.0 : sum / static_cast<double>(disks_.size());
  s.max_disk_utilization = mx;
  s.miss_ratio_ci = metrics_.MissRatioCi();
  s.events_dispatched = sim_.events_dispatched();
  s.simulated_time = now;
  return s;
}

}  // namespace rtq::engine
