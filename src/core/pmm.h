// Priority Memory Management (PMM) — the paper's core contribution.
//
// PMM wraps the MemoryManager with two adaptive decisions, both revised
// after every SampleSize query completions (Table 1):
//
//  * Admission control (Section 3.1): in MinMax mode PMM picks a target
//    MPL. It fits miss_ratio = a*MPL^2 + b*MPL + c by least squares over
//    the observed <MPL, miss ratio> history and steers to the curve's
//    minimum (Type 1), probes one step beyond the tried range (Types 2-3),
//    or falls back to the resource-utilization heuristic (Type 4 / too
//    little data):
//
//        MPL_new = (UtilLow + UtilHigh) / (2 * Util_current) * MPL_current
//
//    with Util_current read off a least-squares line of utilization vs
//    MPL (Section 3.1.2).
//
//  * Allocation strategy (Section 3.2): starts in Max mode; switches to
//    MinMax when a batch shows (1) missed deadlines, (2) all CPU/disk
//    utilizations below UtilLow, (3) statistically positive admission
//    waiting times, and (4) statistically positive slack between time
//    constraints and execution times — the last two via large-sample
//    tests at AdaptConfLevel. Reverts to Max when the target MPL sinks to
//    the average MPL that Max mode realized.
//
//  * Workload-change detection (Section 3.3): large-sample tests at
//    ChangeConfLevel on three per-batch workload characteristics (average
//    maximum memory demand, average operand I/Os, average normalized time
//    constraint). A significant change restarts PMM from scratch.

#ifndef RTQ_CORE_PMM_H_
#define RTQ_CORE_PMM_H_

#include <memory>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "core/memory_manager.h"
#include "stats/linear_fit.h"
#include "stats/quadratic_fit.h"
#include "stats/running_stats.h"

namespace rtq::core {

/// Table 1 parameters plus safety clamps.
struct PmmParams {
  /// Re-evaluation frequency, in query completions.
  int64_t sample_size = 30;
  /// Desirable utilization band for the bottleneck resource.
  double util_low = 0.70;
  double util_high = 0.85;
  /// Confidence of the adaptation tests (admission wait, slack).
  double adapt_conf_level = 0.95;
  /// Confidence of the workload-change tests.
  double change_conf_level = 0.99;
  /// Clamp for the target MPL chosen by projection / heuristic.
  int64_t max_mpl = 500;
  /// Record the batch's realized (time-averaged) MPL instead of the
  /// target setting as the x-coordinate of the projection fit. Off by
  /// default (the paper projects over its MPL settings); the A2 ablation
  /// flips it.
  bool fit_realized_mpl = false;
  /// Disable the miss-ratio projection (RU heuristic only) — ablation.
  bool disable_projection = false;
  /// Disable the RU heuristic (projection only; falls back to keeping the
  /// current MPL when projection fails) — ablation.
  bool disable_ru_heuristic = false;

  Status Validate() const;
};

/// What the controller learns about each finished (or missed) query.
struct CompletionInfo {
  QueryId id = kInvalidQueryId;
  int32_t query_class = -1;
  bool missed = false;
  SimTime arrival = 0.0;
  SimTime finish = 0.0;
  SimTime deadline = kNoDeadline;
  /// Arrival to first non-zero allocation (whole lifetime if never
  /// admitted).
  SimTime admission_wait = 0.0;
  /// First admission to completion/abort.
  SimTime execution_time = 0.0;
  /// Deadline - arrival.
  SimTime time_constraint = 0.0;
  // Workload characteristics (Section 3.3).
  PageCount max_memory = 0;
  int64_t operand_io_requests = 0;
};

/// Per-batch system readings the controller needs from the engine:
/// utilizations and the realized MPL over the window since the last call.
class SystemProbe {
 public:
  virtual ~SystemProbe() = default;
  struct Readings {
    SimTime now = 0.0;
    double realized_mpl = 0.0;
    double cpu_utilization = 0.0;
    /// Mean utilization across the disk array. PMM's decisions use this
    /// as the disk-side load signal: over a 30-completion window the max
    /// across disks is a heavily biased order statistic (whichever disk
    /// hosts the momentarily popular relation saturates), while the
    /// array-wide mean tracks the long-run "most heavily loaded
    /// resource" the paper's heuristic intends.
    double avg_disk_utilization = 0.0;
    double max_disk_utilization = 0.0;
  };
  /// Returns readings for the window since the previous TakeReadings()
  /// call and starts a new window.
  virtual Readings TakeReadings() = 0;
};

class PmmController {
 public:
  enum class Mode { kMax, kMinMax };

  /// One row of the adaptation trace (Figures 6 and 15).
  struct TracePoint {
    SimTime time = 0.0;
    Mode mode = Mode::kMax;
    /// Target MPL; meaningful in MinMax mode (-1 in Max mode: unlimited).
    int64_t target_mpl = -1;
    double batch_miss_ratio = 0.0;
    double realized_mpl = 0.0;
    double bottleneck_utilization = 0.0;
    stats::CurveType curve = stats::CurveType::kUndetermined;
    bool workload_change = false;
  };

  PmmController(const PmmParams& params, MemoryManager* mm,
                SystemProbe* probe);

  virtual ~PmmController() = default;

  /// Feed every completion (including misses) to the controller.
  virtual void OnQueryFinished(const CompletionInfo& info);

  Mode mode() const { return mode_; }
  int64_t target_mpl() const { return target_mpl_; }
  const std::vector<TracePoint>& trace() const { return trace_; }
  int64_t adaptations() const { return static_cast<int64_t>(trace_.size()); }
  int64_t workload_changes_detected() const { return workload_changes_; }

 protected:
  /// Strategy factories; PMM-Fair overrides these to install class-aware
  /// variants.
  virtual std::unique_ptr<AllocationStrategy> MakeMaxStrategy();
  virtual std::unique_ptr<AllocationStrategy> MakeMinMaxStrategy(
      int64_t target_mpl);

  /// Hook for subclasses, called at the end of every batch adaptation.
  virtual void OnBatchAdapted(const TracePoint& point) { (void)point; }

  /// Consulted before the Section 3.2 revert-to-Max test fires; a
  /// subclass returning false keeps the controller in MinMax mode even
  /// when the target sinks to Max mode's realized average. Predictive
  /// controllers use this to hold a proactive clamp through the batch
  /// adaptations that would otherwise undo it.
  virtual bool AllowRevertToMax(SimTime now) {
    (void)now;
    return true;
  }

  /// Out-of-band override for subclasses: switches to MinMax mode at
  /// `target` (clamped to [1, max_mpl]) immediately, without waiting for
  /// a batch boundary, and records a TracePoint so adaptation traces
  /// show the intervention. The regular batch machinery keeps running
  /// and will re-fit from the new operating point.
  void ForceTarget(SimTime now, int64_t target);

  /// Out-of-band counterpart of ForceTarget: reverts to Max mode
  /// immediately (no-op when already there), mirroring the Section 3.2
  /// revert branch, and records a TracePoint. Max-mode statistics keep
  /// accumulating from the next batch as after a regular revert.
  void ForceMax(SimTime now);

  const PmmParams& params() const { return params_; }
  MemoryManager* memory_manager() { return mm_; }

 private:
  struct Batch {
    int64_t completions = 0;
    int64_t misses = 0;
    stats::RunningStats waits;
    stats::RunningStats slack_minus_exec;
    stats::RunningStats max_memory;
    stats::RunningStats operand_ios;
    stats::RunningStats normalized_tc;
    void Reset() { *this = Batch{}; }
  };

  void Adapt();
  /// True when the three monitored characteristics show a significant
  /// change relative to their last observed values.
  bool DetectWorkloadChange();
  /// Discards all adaptation state and restarts in Max mode.
  void Restart();
  /// The resource-utilization heuristic's MPL suggestion.
  int64_t RuHeuristicMpl(double current_mpl, double current_util) const;

  PmmParams params_;
  MemoryManager* mm_;
  SystemProbe* probe_;

  Mode mode_ = Mode::kMax;
  int64_t target_mpl_ = -1;

  Batch batch_;
  stats::QuadraticFit miss_fit_;
  stats::LinearFit util_fit_;
  stats::RunningStats max_mode_realized_mpl_;

  bool have_prev_characteristics_ = false;
  stats::RunningStats prev_max_memory_;
  stats::RunningStats prev_operand_ios_;
  stats::RunningStats prev_normalized_tc_;

  std::vector<TracePoint> trace_;
  int64_t workload_changes_ = 0;
};

}  // namespace rtq::core

#endif  // RTQ_CORE_PMM_H_
