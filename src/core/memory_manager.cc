#include "core/memory_manager.h"

#include <utility>

#include "common/check.h"

namespace rtq::core {

MemoryManager::MemoryManager(PageCount total_pages,
                             std::unique_ptr<AllocationStrategy> strategy,
                             ApplyFn apply)
    : total_(total_pages),
      strategy_(std::move(strategy)),
      apply_(std::move(apply)) {
  RTQ_CHECK_MSG(total_pages > 0, "pool must be positive");
  RTQ_CHECK(strategy_ != nullptr);
  RTQ_CHECK(apply_ != nullptr);
}

void MemoryManager::SetStrategy(
    std::unique_ptr<AllocationStrategy> strategy) {
  RTQ_CHECK(strategy != nullptr);
  strategy_ = std::move(strategy);
  cache_valid_ = false;
  Reallocate();
}

void MemoryManager::SetAdmissionGate(AdmissionGate* gate) {
  RTQ_CHECK_MSG(queries_.empty(),
                "admission gate must be installed on an empty manager");
  gate_ = gate;
  cache_valid_ = false;
}

void MemoryManager::SetAllocation(Entry& entry, PageCount pages) {
  allocated_sum_ += pages - entry.allocation;
  admitted_count_ += (pages > 0) - (entry.allocation > 0);
  entry.allocation = pages;
  apply_(entry.request.id, pages);
}

bool MemoryManager::InsertIsStable(const EdKey& key,
                                   const MemRequest& request) const {
  if (reallocating_ || !cache_valid_) return false;
  if (request.min_memory <= hint_.spare_min ||
      request.max_memory <= hint_.spare_max) {
    return false;  // the strategy might grant it something
  }
  if (frontier_is_end_) {
    return !queries_.empty() && queries_.rbegin()->first < key;
  }
  return frontier_key_ < key;
}

void MemoryManager::AddQuery(const MemRequest& request) {
  RTQ_CHECK_MSG(request.min_memory >= 0 &&
                    request.max_memory >= request.min_memory,
                "invalid memory demands");
  RTQ_CHECK_MSG(request.max_memory <= total_,
                "query demands more memory than the machine has");
  EdKey key{request.deadline, request.id};
  // Decide the fast path before the insert mutates the ED order.
  bool stable = InsertIsStable(key, request);
  auto [id_it, id_inserted] = by_id_.emplace(request.id, key);
  RTQ_CHECK_MSG(id_inserted, "duplicate query id");
  (void)id_it;
  auto [it, inserted] = queries_.emplace(key, Entry{request, 0});
  RTQ_CHECK(inserted);
  (void)it;
  // Fast path: the request parks in the denied tail with no allocation
  // and nobody else moves; the cached hint stays valid (the admission
  // frontier is untouched). No apply callbacks would have fired.
  if (stable) return;
  Reallocate();
}

void MemoryManager::RemoveQuery(QueryId id) {
  auto id_it = by_id_.find(id);
  RTQ_CHECK_MSG(id_it != by_id_.end(), "RemoveQuery: unknown query");
  auto it = queries_.find(id_it->second);
  RTQ_DCHECK(it != queries_.end());
  PageCount held = it->second.allocation;
  // Fast path: dropping a zero-allocation query from strictly behind the
  // admission frontier cannot move the frontier or free memory, so every
  // other allocation is provably unchanged.
  bool stable = !reallocating_ && cache_valid_ && held == 0 &&
                !frontier_is_end_ && frontier_key_ < it->first;
  if (gate_ != nullptr && held > 0) gate_->Release();
  allocated_sum_ -= held;
  admitted_count_ -= held > 0;
  queries_.erase(it);
  by_id_.erase(id_it);
  // Tell the receiver the query's pages are gone before anyone else
  // is granted them (keeps external accounting conservative).
  if (held > 0) apply_(id, 0);
  if (stable) return;
  Reallocate();
}

void MemoryManager::Reallocate() {
  // An apply callback may complete a query synchronously in principle;
  // defer nested reallocation requests to the outermost call.
  if (reallocating_) {
    realloc_again_ = true;
    return;
  }
  reallocating_ = true;
  do {
    realloc_again_ = false;
    cache_valid_ = false;
    ++recomputes_;

    ed_scratch_.clear();
    key_scratch_.clear();
    ed_scratch_.reserve(queries_.size());
    key_scratch_.reserve(queries_.size());
    for (const auto& [key, entry] : queries_) {
      ed_scratch_.push_back(entry.request);
      key_scratch_.push_back(key);
    }

    StableTailHint hint;
    strategy_->AllocateInto(ed_scratch_, total_, &alloc_scratch_, &hint);
    const AllocationVector& alloc = alloc_scratch_;
    RTQ_CHECK(alloc.size() == ed_scratch_.size());

    size_t i = 0;
    PageCount sum = 0;
    for (auto& [key, entry] : queries_) {
      RTQ_CHECK_MSG(alloc[i] >= 0, "negative allocation from strategy");
      RTQ_CHECK_MSG(alloc[i] <= entry.request.max_memory,
                    "strategy exceeded a query's maximum");
      sum += alloc[i];
      ++i;
    }
    RTQ_CHECK_MSG(sum <= total_, "strategy oversubscribed the pool");

    // Gate pass: release the slots of queries this recompute demotes to
    // zero, then claim one slot per would-be admission in ED order —
    // refused queries are vetoed back to zero (the strategy's pages for
    // them simply go unused this round; they retry on every recompute).
    if (gate_ != nullptr) {
      size_t i = 0;
      for (auto& [key, entry] : queries_) {
        if (alloc[i] == 0 && entry.allocation > 0) gate_->Release();
        ++i;
      }
      i = 0;
      for (auto& [key, entry] : queries_) {
        if (alloc[i] > 0 && entry.allocation == 0 && !gate_->TryAcquire()) {
          alloc_scratch_[i] = 0;
        }
        ++i;
      }
    }

    // Apply shrinks before grows so the pool never oversubscribes.
    i = 0;
    for (auto& [key, entry] : queries_) {
      if (alloc[i] < entry.allocation) SetAllocation(entry, alloc[i]);
      ++i;
    }
    i = 0;
    for (auto& [key, entry] : queries_) {
      if (alloc[i] > entry.allocation) SetAllocation(entry, alloc[i]);
      ++i;
    }

    // Cache the strategy's stable-tail proof for the fast paths; only
    // when this pass is final (a deferred nested request means the state
    // already moved under us).
    if (!realloc_again_ && hint.valid && gate_ == nullptr) {
      hint_ = hint;
      frontier_is_end_ = hint.from >= key_scratch_.size();
      if (!frontier_is_end_) frontier_key_ = key_scratch_[hint.from];
      cache_valid_ = true;
    }
  } while (realloc_again_);
  reallocating_ = false;
}

PageCount MemoryManager::allocation_of(QueryId id) const {
  auto id_it = by_id_.find(id);
  if (id_it == by_id_.end()) return 0;
  auto it = queries_.find(id_it->second);
  RTQ_DCHECK(it != queries_.end());
  return it->second.allocation;
}

}  // namespace rtq::core
