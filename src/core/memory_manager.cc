#include "core/memory_manager.h"

#include <utility>

#include "common/check.h"

namespace rtq::core {

MemoryManager::MemoryManager(PageCount total_pages,
                             std::unique_ptr<AllocationStrategy> strategy,
                             ApplyFn apply)
    : total_(total_pages),
      strategy_(std::move(strategy)),
      apply_(std::move(apply)) {
  RTQ_CHECK_MSG(total_pages > 0, "pool must be positive");
  RTQ_CHECK(strategy_ != nullptr);
  RTQ_CHECK(apply_ != nullptr);
}

void MemoryManager::SetStrategy(
    std::unique_ptr<AllocationStrategy> strategy) {
  RTQ_CHECK(strategy != nullptr);
  strategy_ = std::move(strategy);
  Reallocate();
}

void MemoryManager::AddQuery(const MemRequest& request) {
  RTQ_CHECK_MSG(request.min_memory >= 0 &&
                    request.max_memory >= request.min_memory,
                "invalid memory demands");
  RTQ_CHECK_MSG(request.max_memory <= total_,
                "query demands more memory than the machine has");
  auto [id_it, id_inserted] = ids_.insert(request.id);
  RTQ_CHECK_MSG(id_inserted, "duplicate query id");
  (void)id_it;
  auto [it, inserted] = queries_.emplace(
      EdKey{request.deadline, request.id}, Entry{request, 0});
  RTQ_CHECK(inserted);
  (void)it;
  Reallocate();
}

void MemoryManager::RemoveQuery(QueryId id) {
  for (auto it = queries_.begin(); it != queries_.end(); ++it) {
    if (it->second.request.id == id) {
      PageCount held = it->second.allocation;
      queries_.erase(it);
      ids_.erase(id);
      // Tell the receiver the query's pages are gone before anyone else
      // is granted them (keeps external accounting conservative).
      if (held > 0) apply_(id, 0);
      Reallocate();
      return;
    }
  }
  RTQ_CHECK_MSG(false, "RemoveQuery: unknown query");
}

void MemoryManager::Reallocate() {
  // An apply callback may complete a query synchronously in principle;
  // defer nested reallocation requests to the outermost call.
  if (reallocating_) {
    realloc_again_ = true;
    return;
  }
  reallocating_ = true;
  do {
    realloc_again_ = false;

    std::vector<MemRequest> ed;
    ed.reserve(queries_.size());
    for (const auto& [key, entry] : queries_) ed.push_back(entry.request);

    AllocationVector alloc = strategy_->Allocate(ed, total_);
    RTQ_CHECK(alloc.size() == ed.size());

    // Apply shrinks before grows so the pool never oversubscribes.
    size_t i = 0;
    PageCount sum = 0;
    for (auto& [key, entry] : queries_) {
      RTQ_CHECK_MSG(alloc[i] >= 0, "negative allocation from strategy");
      RTQ_CHECK_MSG(alloc[i] <= entry.request.max_memory,
                    "strategy exceeded a query's maximum");
      sum += alloc[i];
      ++i;
    }
    RTQ_CHECK_MSG(sum <= total_, "strategy oversubscribed the pool");

    i = 0;
    for (auto& [key, entry] : queries_) {
      if (alloc[i] < entry.allocation) {
        entry.allocation = alloc[i];
        apply_(entry.request.id, alloc[i]);
      }
      ++i;
    }
    i = 0;
    for (auto& [key, entry] : queries_) {
      if (alloc[i] > entry.allocation) {
        entry.allocation = alloc[i];
        apply_(entry.request.id, alloc[i]);
      }
      ++i;
    }
  } while (realloc_again_);
  reallocating_ = false;
}

PageCount MemoryManager::allocated_pages() const {
  PageCount sum = 0;
  for (const auto& [key, entry] : queries_) sum += entry.allocation;
  return sum;
}

int64_t MemoryManager::admitted_count() const {
  int64_t n = 0;
  for (const auto& [key, entry] : queries_) n += entry.allocation > 0;
  return n;
}

int64_t MemoryManager::waiting_count() const {
  return live_count() - admitted_count();
}

PageCount MemoryManager::allocation_of(QueryId id) const {
  for (const auto& [key, entry] : queries_) {
    if (entry.request.id == id) return entry.allocation;
  }
  return 0;
}

}  // namespace rtq::core
