// Types shared by the memory-allocation strategies.

#ifndef RTQ_CORE_ALLOCATION_H_
#define RTQ_CORE_ALLOCATION_H_

#include <vector>

#include "common/types.h"

namespace rtq::core {

/// What a strategy needs to know about one live query. Lists handed to
/// strategies are sorted by Earliest Deadline (ascending deadline, ties by
/// arrival order = QueryId).
struct MemRequest {
  QueryId id = kInvalidQueryId;
  SimTime deadline = kNoDeadline;
  SimTime arrival = 0.0;
  /// Workload class (used only by the PMM-Fair extension).
  int32_t query_class = -1;
  PageCount min_memory = 0;
  PageCount max_memory = 0;
  /// Cost-model estimate of the stand-alone execution time at the
  /// maximum allocation (Section 4.1's deadline basis). Lets clairvoyant
  /// policies judge feasibility; 0 when no estimate exists.
  SimTime standalone_estimate = 0.0;
  /// Total operand pages the query must read (cost-model figure); 0 when
  /// unknown. Together with `pages_read` this yields a progress fraction.
  PageCount operand_pages = 0;
  /// Live pointer into the query's operator counters (pages read so
  /// far), owned by the engine and valid for as long as the request is
  /// registered with the MemoryManager. Null when the host tracks no
  /// progress (hand-built requests in tests): policies must then treat
  /// the query as having made no progress.
  const PageCount* pages_read = nullptr;
};

/// Result: out[i] is the allocation for ed_sorted[i]; 0 = not admitted.
using AllocationVector = std::vector<PageCount>;

/// Progress-credited remaining-execution estimate: the stand-alone
/// estimate scaled by the fraction of operand pages not yet read. Work
/// already done is never re-charged, so a nearly-finished query looks
/// nearly free — the signal feasibility policies (edf-shed, oracle-ed)
/// need to avoid revoking memory from queries about to complete. Falls
/// back to the full stand-alone estimate when no progress signal exists.
inline SimTime RemainingEstimate(const MemRequest& q) {
  if (q.pages_read == nullptr || q.operand_pages <= 0) {
    return q.standalone_estimate;
  }
  double done = static_cast<double>(*q.pages_read) /
                static_cast<double>(q.operand_pages);
  if (done <= 0.0) return q.standalone_estimate;
  if (done >= 1.0) return 0.0;
  return (1.0 - done) * q.standalone_estimate;
}

}  // namespace rtq::core

#endif  // RTQ_CORE_ALLOCATION_H_
