// Types shared by the memory-allocation strategies.

#ifndef RTQ_CORE_ALLOCATION_H_
#define RTQ_CORE_ALLOCATION_H_

#include <vector>

#include "common/types.h"

namespace rtq::core {

/// What a strategy needs to know about one live query. Lists handed to
/// strategies are sorted by Earliest Deadline (ascending deadline, ties by
/// arrival order = QueryId).
struct MemRequest {
  QueryId id = kInvalidQueryId;
  SimTime deadline = kNoDeadline;
  SimTime arrival = 0.0;
  /// Workload class (used only by the PMM-Fair extension).
  int32_t query_class = -1;
  PageCount min_memory = 0;
  PageCount max_memory = 0;
  /// Cost-model estimate of the stand-alone execution time at the
  /// maximum allocation (Section 4.1's deadline basis). Lets clairvoyant
  /// policies judge feasibility; 0 when no estimate exists.
  SimTime standalone_estimate = 0.0;
};

/// Result: out[i] is the allocation for ed_sorted[i]; 0 = not admitted.
using AllocationVector = std::vector<PageCount>;

}  // namespace rtq::core

#endif  // RTQ_CORE_ALLOCATION_H_
