// PMM-Fair: the class-fairness extension sketched in Section 5.6.
//
// The multiclass experiment (Figures 17-18) shows that plain PMM, by
// optimizing the system miss ratio, can let the dominant class sway its
// strategy choice and starve a minority class. The paper closes with:
// "we are now working on augmenting PMM with a mechanism to allow an
// RTDBS system administrator to specify the desired relative class miss
// ratios". This is our realization of that sketch.
//
// The administrator supplies one weight per class: the desired relative
// miss ratio (all-equal weights ask for equal miss ratios). After every
// batch, PMM-Fair compares each class's realized miss ratio against its
// fair share and adjusts a per-class *urgency multiplier*. Allocation
// ordering then uses virtual deadlines
//
//     vdeadline = arrival + (deadline - arrival) / urgency
//
// so queries of under-served classes sort as if more urgent, receiving
// memory (and hence CPU/disk priority through their operators' demands)
// earlier. Urgencies adapt multiplicatively and are clamped, so the
// mechanism degenerates to plain PMM when classes already meet their
// targets.

#ifndef RTQ_CORE_PMM_FAIR_H_
#define RTQ_CORE_PMM_FAIR_H_

#include <memory>
#include <vector>

#include "core/pmm.h"

namespace rtq::core {

/// Reorders candidates by urgency-scaled virtual deadlines and delegates
/// allocation to an inner strategy.
class FairOrderingStrategy : public AllocationStrategy {
 public:
  FairOrderingStrategy(std::unique_ptr<AllocationStrategy> inner,
                       std::vector<double> class_urgency);

  AllocationVector Allocate(const std::vector<MemRequest>& ed_sorted,
                            PageCount total) const override;
  std::string name() const override;

 private:
  std::unique_ptr<AllocationStrategy> inner_;
  std::vector<double> class_urgency_;
};

class PmmFairController : public PmmController {
 public:
  /// `class_weights[c]` is the desired relative miss ratio of class c
  /// (larger = more misses tolerated). Must be positive.
  PmmFairController(const PmmParams& params, MemoryManager* mm,
                    SystemProbe* probe, std::vector<double> class_weights);

  void OnQueryFinished(const CompletionInfo& info) override;

  const std::vector<double>& class_urgency() const { return urgency_; }

 protected:
  std::unique_ptr<AllocationStrategy> MakeMaxStrategy() override;
  std::unique_ptr<AllocationStrategy> MakeMinMaxStrategy(
      int64_t target_mpl) override;
  void OnBatchAdapted(const TracePoint& point) override;

 private:
  static constexpr double kUrgencyStep = 1.25;
  static constexpr double kUrgencyMax = 8.0;

  std::vector<double> weights_;
  std::vector<double> urgency_;
  std::vector<int64_t> batch_completions_;
  std::vector<int64_t> batch_misses_;
};

}  // namespace rtq::core

#endif  // RTQ_CORE_PMM_FAIR_H_
