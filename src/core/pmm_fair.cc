#include "core/pmm_fair.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace rtq::core {

FairOrderingStrategy::FairOrderingStrategy(
    std::unique_ptr<AllocationStrategy> inner,
    std::vector<double> class_urgency)
    : inner_(std::move(inner)), class_urgency_(std::move(class_urgency)) {
  RTQ_CHECK(inner_ != nullptr);
}

AllocationVector FairOrderingStrategy::Allocate(
    const std::vector<MemRequest>& ed_sorted, PageCount total) const {
  // Compute virtual deadlines and a permutation sorted by them.
  std::vector<size_t> order(ed_sorted.size());
  std::iota(order.begin(), order.end(), 0);
  auto vdeadline = [&](const MemRequest& q) {
    double urgency = 1.0;
    if (q.query_class >= 0 &&
        q.query_class < static_cast<int32_t>(class_urgency_.size())) {
      urgency = class_urgency_[q.query_class];
    }
    return q.arrival + (q.deadline - q.arrival) / urgency;
  };
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    double va = vdeadline(ed_sorted[a]);
    double vb = vdeadline(ed_sorted[b]);
    if (va != vb) return va < vb;
    return ed_sorted[a].id < ed_sorted[b].id;
  });

  std::vector<MemRequest> reordered;
  reordered.reserve(ed_sorted.size());
  for (size_t idx : order) reordered.push_back(ed_sorted[idx]);

  AllocationVector inner_out = inner_->Allocate(reordered, total);
  AllocationVector out(ed_sorted.size(), 0);
  for (size_t i = 0; i < order.size(); ++i) out[order[i]] = inner_out[i];
  return out;
}

std::string FairOrderingStrategy::name() const {
  return "Fair(" + inner_->name() + ")";
}

PmmFairController::PmmFairController(const PmmParams& params,
                                     MemoryManager* mm, SystemProbe* probe,
                                     std::vector<double> class_weights)
    : PmmController(params, mm, probe), weights_(std::move(class_weights)) {
  RTQ_CHECK_MSG(!weights_.empty(), "PMM-Fair needs class weights");
  for (double w : weights_) RTQ_CHECK_MSG(w > 0.0, "weights must be > 0");
  urgency_.assign(weights_.size(), 1.0);
  batch_completions_.assign(weights_.size(), 0);
  batch_misses_.assign(weights_.size(), 0);
  // Reinstall the initial strategy now that urgencies exist.
  memory_manager()->SetStrategy(MakeMaxStrategy());
}

void PmmFairController::OnQueryFinished(const CompletionInfo& info) {
  if (info.query_class >= 0 &&
      info.query_class < static_cast<int32_t>(weights_.size())) {
    ++batch_completions_[info.query_class];
    if (info.missed) ++batch_misses_[info.query_class];
  }
  PmmController::OnQueryFinished(info);
}

std::unique_ptr<AllocationStrategy> PmmFairController::MakeMaxStrategy() {
  // During construction of the base class the urgency vector does not
  // exist yet; fall back to plain ED until it does.
  if (urgency_.empty()) return std::make_unique<MaxStrategy>();
  return std::make_unique<FairOrderingStrategy>(
      std::make_unique<MaxStrategy>(), urgency_);
}

std::unique_ptr<AllocationStrategy> PmmFairController::MakeMinMaxStrategy(
    int64_t target_mpl) {
  if (urgency_.empty()) return std::make_unique<MinMaxStrategy>(target_mpl);
  return std::make_unique<FairOrderingStrategy>(
      std::make_unique<MinMaxStrategy>(target_mpl), urgency_);
}

void PmmFairController::OnBatchAdapted(const TracePoint& point) {
  (void)point;
  // Per-class miss ratios this batch, normalized by the administrator's
  // weights; classes above the weighted average get an urgency boost.
  double weighted_sum = 0.0;
  int64_t active_classes = 0;
  std::vector<double> normalized(weights_.size(), -1.0);
  for (size_t c = 0; c < weights_.size(); ++c) {
    if (batch_completions_[c] == 0) continue;
    double miss = static_cast<double>(batch_misses_[c]) /
                  static_cast<double>(batch_completions_[c]);
    normalized[c] = miss / weights_[c];
    weighted_sum += normalized[c];
    ++active_classes;
  }
  if (active_classes >= 2) {
    double avg = weighted_sum / static_cast<double>(active_classes);
    for (size_t c = 0; c < weights_.size(); ++c) {
      if (normalized[c] < 0.0) continue;
      if (normalized[c] > avg + 1e-12) {
        urgency_[c] = std::min(urgency_[c] * kUrgencyStep, kUrgencyMax);
      } else if (normalized[c] < avg - 1e-12) {
        urgency_[c] = std::max(urgency_[c] / kUrgencyStep, 1.0);
      }
    }
    // Install strategies with the updated urgencies.
    if (mode() == Mode::kMax) {
      memory_manager()->SetStrategy(MakeMaxStrategy());
    } else {
      memory_manager()->SetStrategy(MakeMinMaxStrategy(target_mpl()));
    }
  }
  std::fill(batch_completions_.begin(), batch_completions_.end(), 0);
  std::fill(batch_misses_.begin(), batch_misses_.end(), 0);
}

}  // namespace rtq::core
