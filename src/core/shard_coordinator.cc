#include "core/shard_coordinator.h"

#include <cstdlib>

#include "common/check.h"

namespace rtq::core {

ShardCoordinator::ShardCoordinator(int32_t num_shards, int64_t global_mpl)
    : global_mpl_(global_mpl) {
  RTQ_CHECK_MSG(num_shards >= 1, "coordinator needs at least one shard");
  RTQ_CHECK_MSG(global_mpl >= 1, "global mpl must be >= 1");
  gates_.resize(static_cast<size_t>(num_shards));
  held_.assign(static_cast<size_t>(num_shards), 0);
  for (int32_t s = 0; s < num_shards; ++s) {
    gates_[static_cast<size_t>(s)].owner = this;
    gates_[static_cast<size_t>(s)].shard = s;
  }
}

AdmissionGate* ShardCoordinator::GateFor(int32_t shard) {
  RTQ_CHECK_MSG(shard >= 0 && shard < num_shards(), "bad shard index");
  return &gates_[static_cast<size_t>(shard)];
}

int64_t ShardCoordinator::held_by(int32_t shard) const {
  RTQ_CHECK_MSG(shard >= 0 && shard < num_shards(), "bad shard index");
  return held_[static_cast<size_t>(shard)];
}

bool ShardCoordinator::Gate::TryAcquire() { return owner->TryAcquire(shard); }
void ShardCoordinator::Gate::Release() { owner->Release(shard); }

bool ShardCoordinator::TryAcquire(int32_t shard) {
  if (in_use_ >= global_mpl_) {
    ++refusals_;
    return false;
  }
  ++in_use_;
  ++held_[static_cast<size_t>(shard)];
  if (in_use_ > high_water_) high_water_ = in_use_;
  return true;
}

void ShardCoordinator::Release(int32_t shard) {
  RTQ_CHECK_MSG(held_[static_cast<size_t>(shard)] > 0,
                "releasing a slot the shard does not hold");
  --in_use_;
  --held_[static_cast<size_t>(shard)];
}

StatusOr<int64_t> ParseAdmissionSpec(const std::string& spec) {
  if (spec == "local") return static_cast<int64_t>(0);
  if (spec.rfind("global", 0) == 0) {
    if (spec == "global")
      return Status::InvalidArgument(
          "admission \"global\" requires a cap: use global:mpl=N");
    if (spec.rfind("global:mpl=", 0) != 0)
      return Status::InvalidArgument("bad admission spec \"" + spec +
                                     "\" (want local or global:mpl=N)");
    const char* value = spec.c_str() + 11;
    char* end = nullptr;
    long long mpl = std::strtoll(value, &end, 10);
    if (end == value || *end != '\0' || mpl < 1)
      return Status::InvalidArgument(
          "admission \"global\": mpl must be a positive integer, got \"" +
          spec.substr(11) + "\"");
    return static_cast<int64_t>(mpl);
  }
  return Status::InvalidArgument("bad admission spec \"" + spec +
                                 "\" (want local or global:mpl=N)");
}

}  // namespace rtq::core
