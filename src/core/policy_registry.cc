#include "core/policy_registry.h"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "common/check.h"

namespace rtq::core {

namespace {

bool IsNameStart(char c) { return c >= 'a' && c <= 'z'; }

bool IsNameChar(char c) {
  return IsNameStart(c) || (c >= '0' && c <= '9') || c == '-';
}

bool IsValidName(const std::string& name) {
  if (name.empty() || !IsNameStart(name[0])) return false;
  for (char c : name) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

}  // namespace

StatusOr<PolicySpec> PolicySpec::Parse(const std::string& spec) {
  PolicySpec out;
  size_t colon = spec.find(':');
  out.name = spec.substr(0, colon);
  if (colon != std::string::npos) out.args = spec.substr(colon + 1);
  if (!IsValidName(out.name)) {
    return Status::InvalidArgument("malformed policy spec '" + spec +
                                   "': expected name[:args] with name "
                                   "matching [a-z][a-z0-9-]*");
  }
  return out;
}

std::string PolicySpec::ToString() const {
  return args.empty() ? name : name + ":" + args;
}

StatusOr<int64_t> ParseSpecInt(const std::string& text) {
  if (text.empty()) {
    return Status::InvalidArgument("expected an integer, got ''");
  }
  errno = 0;
  char* end = nullptr;
  long long value = std::strtoll(text.c_str(), &end, 10);
  if (errno != 0 || end != text.c_str() + text.size()) {
    return Status::InvalidArgument("expected an integer, got '" + text + "'");
  }
  return static_cast<int64_t>(value);
}

StatusOr<std::vector<double>> ParseSpecDoubleList(const std::string& text) {
  std::vector<double> out;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    std::string token = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    errno = 0;
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (token.empty() || errno != 0 || end != token.c_str() + token.size()) {
      return Status::InvalidArgument("expected a number, got '" + token +
                                     "' in '" + text + "'");
    }
    out.push_back(value);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

StatusOr<std::pair<std::string, std::string>> ParseSpecKeyValue(
    const std::string& text) {
  size_t eq = text.find('=');
  if (eq == std::string::npos) {
    return Status::InvalidArgument("expected key=value, got '" + text + "'");
  }
  return std::make_pair(text.substr(0, eq), text.substr(eq + 1));
}

std::string FormatSpecDoubleList(const std::vector<double>& values) {
  std::string out;
  char buf[64];
  for (size_t i = 0; i < values.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%g", values[i]);
    if (i > 0) out += ',';
    out += buf;
  }
  return out;
}

StatusOr<std::vector<std::string>> ParsePolicyList(const std::string& text) {
  std::vector<std::string> specs;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    std::string segment = text.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    // Trim surrounding whitespace.
    size_t b = segment.find_first_not_of(" \t");
    size_t e = segment.find_last_not_of(" \t");
    segment = b == std::string::npos ? "" : segment.substr(b, e - b + 1);

    // A segment continues the previous spec's arguments when it cannot
    // start a new spec: it opens with a non-name character ("2" in
    // "w=1,2") or it is a key=value pair with the '=' before any ':'
    // ("window=10" in "select:candidates=pmm,window=10" — never a valid
    // spec, since '=' cannot appear in a policy name).
    bool key_value_continuation =
        segment.find('=') != std::string::npos &&
        segment.find('=') < segment.find(':');
    if (!segment.empty() &&
        (!IsNameStart(segment[0]) || key_value_continuation) &&
        !specs.empty()) {
      specs.back() += "," + segment;
    } else if (!segment.empty()) {
      specs.push_back(segment);
    } else if (!text.empty()) {
      return Status::InvalidArgument("empty policy spec in list '" + text +
                                     "'");
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  if (specs.empty()) {
    return Status::InvalidArgument("empty policy list");
  }
  // Validate each spec's shape eagerly so errors name the offender.
  for (const std::string& spec : specs) {
    auto parsed = PolicySpec::Parse(spec);
    if (!parsed.ok()) return parsed.status();
  }
  return specs;
}

PolicyRegistry& PolicyRegistry::Global() {
  static PolicyRegistry* registry = new PolicyRegistry();
  return *registry;
}

Status PolicyRegistry::Register(const std::string& name, std::string help,
                                Factory factory) {
  if (!IsValidName(name)) {
    return Status::InvalidArgument("invalid policy name '" + name + "'");
  }
  if (factory == nullptr) {
    return Status::InvalidArgument("null factory for policy '" + name + "'");
  }
  auto [it, inserted] =
      entries_.emplace(name, Entry{std::move(help), std::move(factory)});
  (void)it;
  if (!inserted) {
    return Status::FailedPrecondition("policy '" + name +
                                      "' registered twice");
  }
  return Status::Ok();
}

bool PolicyRegistry::Contains(const std::string& name) const {
  return entries_.count(name) > 0;
}

StatusOr<std::unique_ptr<MemoryPolicy>> PolicyRegistry::Create(
    const std::string& spec) const {
  auto parsed = PolicySpec::Parse(spec);
  if (!parsed.ok()) return parsed.status();
  auto it = entries_.find(parsed.value().name);
  if (it == entries_.end()) {
    return Status::NotFound("unknown policy '" + parsed.value().name +
                            "'; registered: " + Help());
  }
  auto policy = it->second.factory(parsed.value());
  if (!policy.ok()) {
    return Status(policy.status().code(),
                  "policy spec '" + spec + "': " + policy.status().message());
  }
  return policy;
}

std::vector<std::string> PolicyRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

std::string PolicyRegistry::Help() const {
  std::string out;
  for (const auto& [name, entry] : entries_) {
    if (!out.empty()) out += "; ";
    out += entry.help.empty() ? name : entry.help;
  }
  return out;
}

PolicyRegistrar::PolicyRegistrar(const std::string& name, std::string help,
                                 PolicyRegistry::Factory factory) {
  Status status = PolicyRegistry::Global().Register(name, std::move(help),
                                                    std::move(factory));
  RTQ_CHECK_MSG(status.ok(), status.ToString().c_str());
}

}  // namespace rtq::core
