#include "core/strategy.h"

#include <algorithm>

#include "common/check.h"

namespace rtq::core {

AllocationVector AllocateThroughFilter(
    const AllocationStrategy& inner, const std::vector<MemRequest>& ed_sorted,
    PageCount total, const std::function<bool(const MemRequest&)>& keep,
    StableTailHint* hint) {
  // Record rejects only: `keep` may be stateful, so it runs exactly once
  // per request, and the common everything-kept reallocation pays no
  // copy of the request vector.
  std::vector<size_t> rejected;
  for (size_t i = 0; i < ed_sorted.size(); ++i) {
    if (!keep(ed_sorted[i])) rejected.push_back(i);
  }
  if (rejected.empty()) {
    return inner.AllocateWithHint(ed_sorted, total, hint);
  }
  *hint = StableTailHint{};
  std::vector<MemRequest> kept;
  std::vector<size_t> position;  // kept index -> ed_sorted index
  kept.reserve(ed_sorted.size() - rejected.size());
  position.reserve(ed_sorted.size() - rejected.size());
  size_t next_reject = 0;
  for (size_t i = 0; i < ed_sorted.size(); ++i) {
    if (next_reject < rejected.size() && rejected[next_reject] == i) {
      ++next_reject;
      continue;
    }
    kept.push_back(ed_sorted[i]);
    position.push_back(i);
  }
  AllocationVector inner_out = inner.Allocate(kept, total);
  AllocationVector out(ed_sorted.size(), 0);
  for (size_t i = 0; i < position.size(); ++i) {
    out[position[i]] = inner_out[i];
  }
  return out;
}

AllocationVector MaxStrategy::Allocate(
    const std::vector<MemRequest>& ed_sorted, PageCount total) const {
  StableTailHint hint;
  return AllocateWithHint(ed_sorted, total, &hint);
}

AllocationVector MaxStrategy::AllocateWithHint(
    const std::vector<MemRequest>& ed_sorted, PageCount total,
    StableTailHint* hint) const {
  AllocationVector result;
  AllocateInto(ed_sorted, total, &result, hint);
  return result;
}

void MaxStrategy::AllocateInto(const std::vector<MemRequest>& ed_sorted,
                               PageCount total, AllocationVector* out_vec,
                               StableTailHint* hint) const {
  out_vec->assign(ed_sorted.size(), 0);
  AllocationVector& out = *out_vec;
  PageCount remaining = total;
  size_t frontier = ed_sorted.size();
  for (size_t i = 0; i < ed_sorted.size(); ++i) {
    const MemRequest& q = ed_sorted[i];
    RTQ_DCHECK(q.max_memory >= q.min_memory && q.min_memory >= 0);
    if (q.max_memory <= remaining) {
      out[i] = q.max_memory;
      remaining -= q.max_memory;
    } else if (!bypass_blocked_) {
      // Strict ED: nobody may jump over a blocked higher-priority query.
      frontier = i;
      break;
    }
  }
  // Bypass mode considers every request, so only an insert sorting after
  // the whole list is provably ignorable; strict mode stops at the first
  // blocked request, so anything behind that block is. Either way a
  // request whose maximum exceeds the leftover at the stop point gets
  // nothing and changes nothing.
  hint->valid = true;
  hint->from = frontier;
  hint->spare_min = -1;
  hint->spare_max = remaining;
}

std::string MaxStrategy::name() const {
  return bypass_blocked_ ? "Max" : "Max(strict)";
}

AllocationVector MinMaxStrategy::Allocate(
    const std::vector<MemRequest>& ed_sorted, PageCount total) const {
  StableTailHint hint;
  return AllocateWithHint(ed_sorted, total, &hint);
}

AllocationVector MinMaxStrategy::AllocateWithHint(
    const std::vector<MemRequest>& ed_sorted, PageCount total,
    StableTailHint* hint) const {
  AllocationVector result;
  AllocateInto(ed_sorted, total, &result, hint);
  return result;
}

void MinMaxStrategy::AllocateInto(const std::vector<MemRequest>& ed_sorted,
                                  PageCount total, AllocationVector* out_vec,
                                  StableTailHint* hint) const {
  out_vec->assign(ed_sorted.size(), 0);
  AllocationVector& out = *out_vec;
  size_t limit = mpl_limit_ < 0
                     ? ed_sorted.size()
                     : std::min<size_t>(ed_sorted.size(),
                                        static_cast<size_t>(mpl_limit_));
  // Pass 1: minimum allocations in ED order, until memory or the MPL
  // limit runs out. Strict priority: stop at the first query whose
  // minimum does not fit.
  PageCount remaining = total;
  size_t admitted = 0;
  for (size_t i = 0; i < limit; ++i) {
    const MemRequest& q = ed_sorted[i];
    if (q.min_memory > remaining) break;
    out[i] = q.min_memory;
    remaining -= q.min_memory;
    admitted = i + 1;
  }
  // A request behind the admission frontier is never reached when the
  // MPL cap closed admission (spare_min = -1: deny all), and otherwise
  // is denied — becoming the new pass-1 breaker — iff its minimum
  // exceeds the pass-1 leftover.
  hint->valid = true;
  hint->from = admitted;
  hint->spare_min =
      (mpl_limit_ >= 0 && admitted == static_cast<size_t>(mpl_limit_))
          ? -1
          : remaining;
  hint->spare_max = -1;
  // Pass 2: top up to maximum in ED order. The last query topped up may
  // land between its minimum and maximum ("the query that gets the last
  // few memory pages", Section 3.2).
  for (size_t i = 0; i < admitted && remaining > 0; ++i) {
    PageCount want = ed_sorted[i].max_memory - out[i];
    PageCount grant = std::min(want, remaining);
    out[i] += grant;
    remaining -= grant;
  }
}

std::string MinMaxStrategy::name() const {
  if (mpl_limit_ < 0) return "MinMax";
  return "MinMax-" + std::to_string(mpl_limit_);
}

AllocationVector ProportionalStrategy::Allocate(
    const std::vector<MemRequest>& ed_sorted, PageCount total) const {
  StableTailHint hint;
  return AllocateWithHint(ed_sorted, total, &hint);
}

AllocationVector ProportionalStrategy::AllocateWithHint(
    const std::vector<MemRequest>& ed_sorted, PageCount total,
    StableTailHint* hint) const {
  AllocationVector result;
  AllocateInto(ed_sorted, total, &result, hint);
  return result;
}

void ProportionalStrategy::AllocateInto(
    const std::vector<MemRequest>& ed_sorted, PageCount total,
    AllocationVector* out_vec, StableTailHint* hint) const {
  out_vec->assign(ed_sorted.size(), 0);
  AllocationVector& out = *out_vec;
  size_t limit = mpl_limit_ < 0
                     ? ed_sorted.size()
                     : std::min<size_t>(ed_sorted.size(),
                                        static_cast<size_t>(mpl_limit_));
  // Admit the longest ED prefix whose minimum demands fit.
  PageCount min_sum = 0;
  size_t admitted = 0;
  for (size_t i = 0; i < limit; ++i) {
    if (min_sum + ed_sorted[i].min_memory > total) break;
    min_sum += ed_sorted[i].min_memory;
    admitted = i + 1;
  }
  // Same frontier reasoning as MinMax: a denied insert at/behind the
  // frontier leaves the admitted prefix — and hence the fitted fraction
  // below — untouched.
  hint->valid = true;
  hint->from = admitted;
  hint->spare_min =
      (mpl_limit_ >= 0 && admitted == static_cast<size_t>(mpl_limit_))
          ? -1
          : total - min_sum;
  hint->spare_max = -1;
  if (admitted == 0) return;

  // Find the largest fraction f in [0, 1] such that
  //   sum_i max(min_i, f * max_i) <= total.
  // The left side is piecewise-linear and nondecreasing in f; binary
  // search converges well below one page of slack in 50 iterations.
  auto need = [&](double f) {
    double sum = 0.0;
    for (size_t i = 0; i < admitted; ++i) {
      const MemRequest& q = ed_sorted[i];
      sum += std::max(static_cast<double>(q.min_memory),
                      f * static_cast<double>(q.max_memory));
    }
    return sum;
  };
  double lo = 0.0, hi = 1.0;
  if (need(1.0) <= static_cast<double>(total)) {
    lo = 1.0;
  } else {
    for (int iter = 0; iter < 50; ++iter) {
      double mid = (lo + hi) / 2.0;
      if (need(mid) <= static_cast<double>(total)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
  }
  for (size_t i = 0; i < admitted; ++i) {
    const MemRequest& q = ed_sorted[i];
    PageCount alloc = std::max(
        q.min_memory, static_cast<PageCount>(
                          lo * static_cast<double>(q.max_memory)));
    out[i] = std::min(alloc, q.max_memory);
  }
}

std::string ProportionalStrategy::name() const {
  if (mpl_limit_ < 0) return "Proportional";
  return "Proportional-" + std::to_string(mpl_limit_);
}

}  // namespace rtq::core
