#include "core/pmm.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "stats/large_sample_test.h"

namespace rtq::core {

Status PmmParams::Validate() const {
  if (sample_size < 2)
    return Status::InvalidArgument("sample_size must be >= 2");
  if (!(util_low > 0.0 && util_low < util_high && util_high <= 1.0))
    return Status::InvalidArgument("need 0 < util_low < util_high <= 1");
  if (adapt_conf_level <= 0.0 || adapt_conf_level >= 1.0 ||
      change_conf_level <= 0.0 || change_conf_level >= 1.0)
    return Status::InvalidArgument("confidence levels must be in (0,1)");
  if (max_mpl < 1) return Status::InvalidArgument("max_mpl must be >= 1");
  return Status::Ok();
}

PmmController::PmmController(const PmmParams& params, MemoryManager* mm,
                             SystemProbe* probe)
    : params_(params), mm_(mm), probe_(probe) {
  RTQ_CHECK(mm != nullptr && probe != nullptr);
  RTQ_CHECK_MSG(params.Validate().ok(), "invalid PMM parameters");
  // Adaptations are rare (~one per tens of completions); pre-growing the
  // trace keeps its amortized reallocation out of the steady-state path.
  trace_.reserve(1024);
  // The paper: "Initially, the Max mode is selected."
  mm_->SetStrategy(MakeMaxStrategy());
}

std::unique_ptr<AllocationStrategy> PmmController::MakeMaxStrategy() {
  return std::make_unique<MaxStrategy>();
}

std::unique_ptr<AllocationStrategy> PmmController::MakeMinMaxStrategy(
    int64_t target_mpl) {
  return std::make_unique<MinMaxStrategy>(target_mpl);
}

void PmmController::OnQueryFinished(const CompletionInfo& info) {
  ++batch_.completions;
  if (info.missed) ++batch_.misses;
  batch_.waits.Add(info.admission_wait);
  batch_.slack_minus_exec.Add(info.time_constraint - info.execution_time);
  batch_.max_memory.Add(static_cast<double>(info.max_memory));
  batch_.operand_ios.Add(static_cast<double>(info.operand_io_requests));
  if (info.operand_io_requests > 0) {
    batch_.normalized_tc.Add(info.time_constraint /
                             static_cast<double>(info.operand_io_requests));
  }
  if (batch_.completions >= params_.sample_size) Adapt();
}

bool PmmController::DetectWorkloadChange() {
  if (!have_prev_characteristics_) return false;
  // "PMM carries out a large-sample test ... on each monitored workload
  // characteristic to see if its present value differs significantly from
  // its last observed value." The last observed value is itself a batch
  // mean, so a two-sample test is used (see TwoSampleMeansDiffer).
  return stats::TwoSampleMeansDiffer(batch_.max_memory, prev_max_memory_,
                                     params_.change_conf_level) ||
         stats::TwoSampleMeansDiffer(batch_.operand_ios, prev_operand_ios_,
                                     params_.change_conf_level) ||
         stats::TwoSampleMeansDiffer(batch_.normalized_tc,
                                     prev_normalized_tc_,
                                     params_.change_conf_level);
}

void PmmController::Restart() {
  miss_fit_.Reset();
  util_fit_.Reset();
  max_mode_realized_mpl_.Reset();
  mode_ = Mode::kMax;
  target_mpl_ = -1;
  mm_->SetStrategy(MakeMaxStrategy());
}

void PmmController::ForceTarget(SimTime now, int64_t target) {
  target = std::clamp<int64_t>(target, 1, params_.max_mpl);
  if (mode_ == Mode::kMinMax && target == target_mpl_) return;
  mode_ = Mode::kMinMax;
  target_mpl_ = target;
  mm_->SetStrategy(MakeMinMaxStrategy(target_mpl_));
  TracePoint point;
  point.time = now;
  point.mode = mode_;
  point.target_mpl = target_mpl_;
  trace_.push_back(point);
}

void PmmController::ForceMax(SimTime now) {
  if (mode_ == Mode::kMax) return;
  mode_ = Mode::kMax;
  target_mpl_ = -1;
  mm_->SetStrategy(MakeMaxStrategy());
  TracePoint point;
  point.time = now;
  point.mode = mode_;
  point.target_mpl = target_mpl_;
  trace_.push_back(point);
}

int64_t PmmController::RuHeuristicMpl(double current_mpl,
                                      double current_util) const {
  // Average the utilization-vs-MPL history through a fitted line and read
  // it at the current MPL; fall back to the instantaneous reading while
  // the line is degenerate.
  double util = util_fit_.CanFit() ? util_fit_.ValueAt(current_mpl)
                                   : current_util;
  util = std::clamp(util, 0.02, 1.0);
  double mid = (params_.util_low + params_.util_high) / 2.0;
  double mpl = mid / util * std::max(current_mpl, 1.0);
  int64_t rounded = static_cast<int64_t>(std::llround(mpl));
  return std::clamp<int64_t>(rounded, 1, params_.max_mpl);
}

void PmmController::Adapt() {
  SystemProbe::Readings readings = probe_->TakeReadings();
  double bottleneck = std::max(readings.cpu_utilization,
                               readings.avg_disk_utilization);
  double miss_ratio = static_cast<double>(batch_.misses) /
                      static_cast<double>(batch_.completions);

  TracePoint point;
  point.time = readings.now;
  point.mode = mode_;
  point.target_mpl = target_mpl_;
  point.batch_miss_ratio = miss_ratio;
  point.realized_mpl = readings.realized_mpl;
  point.bottleneck_utilization = bottleneck;

  // --- workload-change detection (Section 3.3) -------------------------
  if (DetectWorkloadChange()) {
    ++workload_changes_;
    point.workload_change = true;
    prev_max_memory_ = batch_.max_memory;
    prev_operand_ios_ = batch_.operand_ios;
    prev_normalized_tc_ = batch_.normalized_tc;
    Restart();
    point.mode = mode_;
    point.target_mpl = target_mpl_;
    trace_.push_back(point);
    OnBatchAdapted(point);
    batch_.Reset();
    return;
  }
  prev_max_memory_ = batch_.max_memory;
  prev_operand_ios_ = batch_.operand_ios;
  prev_normalized_tc_ = batch_.normalized_tc;
  have_prev_characteristics_ = true;

  if (mode_ == Mode::kMax) {
    // Track what Max mode actually achieves; the revert test needs it.
    max_mode_realized_mpl_.Add(readings.realized_mpl);
    util_fit_.Add(readings.realized_mpl, bottleneck);

    // Switch to MinMax iff all four conditions of Section 3.2 hold.
    bool missed = batch_.misses > 0;
    bool under_utilized = readings.cpu_utilization < params_.util_low &&
                          readings.avg_disk_utilization < params_.util_low;
    bool waiting = stats::MeanExceeds(batch_.waits, 0.0,
                                      params_.adapt_conf_level);
    bool feasible = stats::MeanExceeds(batch_.slack_minus_exec, 0.0,
                                       params_.adapt_conf_level);
    if (missed && under_utilized && waiting && feasible) {
      mode_ = Mode::kMinMax;
      target_mpl_ =
          params_.disable_ru_heuristic
              ? std::max<int64_t>(
                    static_cast<int64_t>(
                        std::llround(readings.realized_mpl)) + 1,
                    2)
              : RuHeuristicMpl(readings.realized_mpl, bottleneck);
      mm_->SetStrategy(MakeMinMaxStrategy(target_mpl_));
    }
  } else {
    // --- MinMax mode: admission control (Section 3.1) -------------------
    double mpl_x = params_.fit_realized_mpl
                       ? readings.realized_mpl
                       : static_cast<double>(target_mpl_);
    miss_fit_.Add(mpl_x, miss_ratio);
    util_fit_.Add(mpl_x, bottleneck);

    int64_t new_target = target_mpl_;
    bool projected = false;
    if (!params_.disable_projection && miss_fit_.count() >= 3 &&
        miss_fit_.Fit()) {
      stats::CurveType curve = miss_fit_.Classify();
      point.curve = curve;
      int64_t lo = static_cast<int64_t>(std::llround(miss_fit_.min_x()));
      int64_t hi = static_cast<int64_t>(std::llround(miss_fit_.max_x()));
      switch (curve) {
        case stats::CurveType::kBowl: {
          new_target = static_cast<int64_t>(std::llround(
              miss_fit_.Vertex()));
          projected = true;
          break;
        }
        case stats::CurveType::kDecreasing: {
          // Optimum lies above the tried range; step one beyond it, or
          // further if the RU heuristic wants more.
          int64_t step = hi + 1;
          if (!params_.disable_ru_heuristic) {
            int64_t ru = RuHeuristicMpl(static_cast<double>(target_mpl_),
                                        bottleneck);
            if (ru > step) step = ru;
          }
          new_target = step;
          projected = true;
          break;
        }
        case stats::CurveType::kIncreasing: {
          int64_t step = lo - 1;
          if (!params_.disable_ru_heuristic) {
            int64_t ru = RuHeuristicMpl(static_cast<double>(target_mpl_),
                                        bottleneck);
            step = std::min(step, ru);
          }
          new_target = step;
          projected = true;
          break;
        }
        case stats::CurveType::kHill:
        case stats::CurveType::kUndetermined:
          break;  // fall through to the heuristic
      }
    }
    if (!projected) {
      if (!params_.disable_ru_heuristic) {
        new_target = RuHeuristicMpl(static_cast<double>(target_mpl_),
                                    bottleneck);
      }
      // else: keep the current target (projection-only ablation).
    }
    new_target = std::clamp<int64_t>(new_target, 1, params_.max_mpl);

    // --- revert test (Section 3.2) --------------------------------------
    double max_mode_avg = max_mode_realized_mpl_.count() > 0
                              ? max_mode_realized_mpl_.mean()
                              : 0.0;
    if (max_mode_realized_mpl_.count() > 0 &&
        static_cast<double>(new_target) <= max_mode_avg &&
        AllowRevertToMax(readings.now)) {
      mode_ = Mode::kMax;
      target_mpl_ = -1;
      mm_->SetStrategy(MakeMaxStrategy());
    } else if (new_target != target_mpl_) {
      target_mpl_ = new_target;
      mm_->SetStrategy(MakeMinMaxStrategy(target_mpl_));
    }
  }

  point.mode = mode_;
  point.target_mpl = target_mpl_;
  trace_.push_back(point);
  OnBatchAdapted(point);
  batch_.Reset();
}

}  // namespace rtq::core
