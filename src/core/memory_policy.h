// The pluggable memory-policy interface.
//
// The paper's message is that PMM is one point in a *space* of
// admission/allocation policies (Max, MinMax-N, Proportional-N, PMM,
// PMM-Fair, ...). MemoryPolicy is that space's open surface: one
// lifecycle that covers both the static strategies of Section 3.2 and
// the adaptive controllers of Section 3.1-3.3, so new policies plug in
// without touching the engine.
//
// Lifecycle, driven by the hosting engine:
//
//   1. The policy is built from a spec string by the PolicyRegistry
//      (policy_registry.h) before the system exists; constructors only
//      parse arguments.
//   2. Attach(host) is called exactly once, after the MemoryManager is
//      built and before the first query arrives. The policy installs its
//      initial AllocationStrategy here (and may keep the host around for
//      later decisions). Configuration errors surface as Status.
//   3. OnQueryEvent(event) is fed every query lifecycle event (arrivals
//      and completions, including deadline misses). Adaptive policies
//      revise their strategy from here.
//   4. OnTick(now) fires periodically (at the engine's MPL-sampler
//      cadence) for policies that adapt on wall-clock schedules rather
//      than completion counts.
//   5. Describe() returns the canonical, registry-round-trippable spec
//      string ("pmm", "minmax:5", ...); DisplayName() the short human
//      label used in tables ("PMM", "MinMax-5").

#ifndef RTQ_CORE_MEMORY_POLICY_H_
#define RTQ_CORE_MEMORY_POLICY_H_

#include <functional>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "core/pmm.h"

namespace rtq::core {

class ShardCoordinator;

/// Everything a policy may consult from the hosting engine. Handed to
/// Attach(); pointers outlive the policy.
struct PolicyHost {
  /// The reallocation engine the policy steers via SetStrategy().
  MemoryManager* mm = nullptr;
  /// Per-batch utilization / realized-MPL readings (never null).
  SystemProbe* probe = nullptr;
  /// The simulation clock.
  std::function<SimTime()> now;
  /// Table 1 knobs for adaptive policies.
  PmmParams pmm;
  /// Number of workload classes (for per-class policies).
  int32_t num_classes = 0;
  /// Cadence of OnTick (the engine's MPL-sampler interval, simulated
  /// seconds); <= 0 means the engine never ticks. Time-driven policies
  /// should reject hosts that cannot feed them from Attach().
  SimTime tick_interval = 0.0;
  /// Shard identity of the hosting engine within a ShardedRtdbs cluster;
  /// a standalone engine is shard 0 of 1.
  int32_t shard_index = 0;
  int32_t num_shards = 1;
  /// Cross-shard admission coordinator; non-null only when the host is a
  /// shard of a ShardedRtdbs running admission="global:mpl=N". Purely
  /// opt-in introspection (cluster-wide in_use()/global_mpl() for
  /// shard-aware policies): the engine enforces the global cap itself at
  /// the MemoryManager layer, so policies that ignore this field keep
  /// working unmodified.
  ShardCoordinator* coordinator = nullptr;
};

/// One query lifecycle event. `info` always carries the query's identity
/// (id, class, arrival, deadline, workload characteristics); the timing
/// and miss fields are only meaningful for kCompletion.
struct QueryEvent {
  enum class Kind {
    kArrival,     ///< query registered with the memory manager
    kCompletion,  ///< query finished or aborted at its deadline
  };
  Kind kind = Kind::kCompletion;
  CompletionInfo info;
};

class MemoryPolicy {
 public:
  virtual ~MemoryPolicy() = default;

  /// Called once; must install the policy's initial strategy on host.mm.
  virtual Status Attach(const PolicyHost& host) = 0;

  /// Query lifecycle notifications (see QueryEvent). Default: ignore.
  virtual void OnQueryEvent(const QueryEvent& event) { (void)event; }

  /// Periodic hook at the engine's sampler cadence. Default: ignore.
  virtual void OnTick(SimTime now) { (void)now; }

  /// Canonical spec string; PolicyRegistry::Create(Describe()) rebuilds
  /// an equivalent policy.
  virtual std::string Describe() const = 0;

  /// Short human label for tables; defaults to the spec string.
  virtual std::string DisplayName() const { return Describe(); }

  /// Non-null when the policy is driven by a PmmController (PMM and its
  /// derivatives); lets harnesses read the adaptation trace without
  /// knowing the concrete policy type.
  virtual const PmmController* pmm_controller() const { return nullptr; }
};

}  // namespace rtq::core

#endif  // RTQ_CORE_MEMORY_POLICY_H_
