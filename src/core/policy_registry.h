// String-keyed registry of MemoryPolicy factories + the spec grammar.
//
// A policy is named by a *spec string*:
//
//   spec  := name [":" args]
//   name  := [a-z][a-z0-9-]*          (registry key, e.g. "pmm-fair")
//   args  := free-form text the policy's factory parses
//
// Examples: "max", "max:strict", "minmax:5", "prop:10", "pmm",
// "pmm-fair:w=1,2", "none", "oracle-ed". MemoryPolicy::Describe()
// returns the canonical spec, so Create(Describe()) round-trips.
//
// Factories self-register from their own translation units via
// RTQ_REGISTER_POLICY, so adding a policy is one new .cc file — no edits
// under src/engine/ (see src/policies/ for two examples). Malformed
// specs and unknown names surface as Status errors, never CHECK aborts.

#ifndef RTQ_CORE_POLICY_REGISTRY_H_
#define RTQ_CORE_POLICY_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/memory_policy.h"

namespace rtq::core {

/// A parsed spec string: the registry key plus the raw argument text
/// (everything after the first ':', empty when absent).
struct PolicySpec {
  std::string name;
  std::string args;

  static StatusOr<PolicySpec> Parse(const std::string& spec);
  std::string ToString() const;
};

// --- arg-parsing helpers shared by factories -------------------------------

/// Parses a whole string as a base-10 integer.
StatusOr<int64_t> ParseSpecInt(const std::string& text);

/// Parses "v1,v2,..." as doubles.
StatusOr<std::vector<double>> ParseSpecDoubleList(const std::string& text);

/// Splits "key=value" (first '='); fails when no '=' is present.
StatusOr<std::pair<std::string, std::string>> ParseSpecKeyValue(
    const std::string& text);

/// Formats a double list back into canonical "v1,v2" spec form.
std::string FormatSpecDoubleList(const std::vector<double>& values);

/// Splits a policy *list* ("pmm,none" / "minmax:5,pmm-fair:w=1,2,max")
/// into individual specs. Commas separate specs, except that a segment
/// which cannot start a new spec is folded into the previous spec's
/// arguments: one that opens with a digit, '.', '-' or '+' (the "2" of
/// "pmm-fair:w=1,2"), or a key=value segment whose '=' precedes any ':'
/// (the "window=10" of "select:candidates=pmm,window=10" — '=' can
/// never appear in a policy name).
StatusOr<std::vector<std::string>> ParsePolicyList(const std::string& text);

class PolicyRegistry {
 public:
  using Factory =
      std::function<StatusOr<std::unique_ptr<MemoryPolicy>>(const PolicySpec&)>;

  /// The process-wide registry all spec strings resolve against.
  static PolicyRegistry& Global();

  /// Registers `factory` under `name`. `help` is a one-line usage note
  /// ("minmax[:N] — MinMax-N, N omitted = unlimited"). Fails on
  /// duplicate or ill-formed names.
  Status Register(const std::string& name, std::string help, Factory factory);

  bool Contains(const std::string& name) const;

  /// Parses `spec` and invokes the named factory.
  StatusOr<std::unique_ptr<MemoryPolicy>> Create(const std::string& spec) const;

  /// Registered names in deterministic (lexicographic) order.
  std::vector<std::string> Names() const;

  /// One "name — help" line per registered policy, in Names() order.
  std::string Help() const;

 private:
  struct Entry {
    std::string help;
    Factory factory;
  };
  std::map<std::string, Entry> entries_;
};

/// Self-registration hook: construct one at namespace scope in the
/// policy's own translation unit (see RTQ_REGISTER_POLICY).
class PolicyRegistrar {
 public:
  PolicyRegistrar(const std::string& name, std::string help,
                  PolicyRegistry::Factory factory);
};

#define RTQ_POLICY_CONCAT_INNER(a, b) a##b
#define RTQ_POLICY_CONCAT(a, b) RTQ_POLICY_CONCAT_INNER(a, b)

/// Registers `factory` (a PolicyRegistry::Factory expression) under
/// `name` when the enclosing translation unit is linked in.
#define RTQ_REGISTER_POLICY(name, help, factory)          \
  static const ::rtq::core::PolicyRegistrar RTQ_POLICY_CONCAT( \
      rtq_policy_registrar_, __COUNTER__)(name, help, factory)

}  // namespace rtq::core

#endif  // RTQ_CORE_POLICY_REGISTRY_H_
