// The reallocation engine.
//
// Tracks every live query (waiting or admitted), and on every membership
// or policy change recomputes all allocations with the active strategy
// and pushes the deltas out through a callback. This is the mechanism
// Section 3.2 describes: "the memory allocation of a query can vary
// between maximum, minimum, or no allocation as higher-priority queries
// enter and leave the system".

#ifndef RTQ_CORE_MEMORY_MANAGER_H_
#define RTQ_CORE_MEMORY_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/types.h"
#include "core/strategy.h"

namespace rtq::core {

class MemoryManager {
 public:
  /// Invoked with (query, new_allocation) whenever a query's allocation
  /// changes. The receiver is responsible for reserving buffer-pool pages
  /// and informing the operator.
  using ApplyFn = std::function<void(QueryId, PageCount)>;

  MemoryManager(PageCount total_pages,
                std::unique_ptr<AllocationStrategy> strategy, ApplyFn apply);

  /// Replaces the strategy and reallocates.
  void SetStrategy(std::unique_ptr<AllocationStrategy> strategy);

  /// Registers an arriving query and reallocates.
  void AddQuery(const MemRequest& request);

  /// Deregisters a completed/aborted query and reallocates. The apply
  /// callback first sees (id, 0) if the query still held pages.
  void RemoveQuery(QueryId id);

  /// Recomputes allocations with the current strategy (idempotent).
  void Reallocate();

  const AllocationStrategy& strategy() const { return *strategy_; }

  // --- introspection -----------------------------------------------------
  PageCount total_pages() const { return total_; }
  PageCount allocated_pages() const;
  /// Queries with a non-zero allocation.
  int64_t admitted_count() const;
  /// Queries registered but currently at zero allocation.
  int64_t waiting_count() const;
  int64_t live_count() const { return static_cast<int64_t>(queries_.size()); }
  PageCount allocation_of(QueryId id) const;

 private:
  struct Entry {
    MemRequest request;
    PageCount allocation = 0;
  };

  /// Key giving Earliest-Deadline order with deterministic tie-break.
  struct EdKey {
    SimTime deadline;
    QueryId id;
    bool operator<(const EdKey& o) const {
      if (deadline != o.deadline) return deadline < o.deadline;
      return id < o.id;
    }
  };

  PageCount total_;
  std::unique_ptr<AllocationStrategy> strategy_;
  ApplyFn apply_;
  std::map<EdKey, Entry> queries_;  // ED-ordered
  std::unordered_set<QueryId> ids_; // duplicate-arrival guard
  bool reallocating_ = false;       // guards against re-entrant reallocation
  bool realloc_again_ = false;
};

}  // namespace rtq::core

#endif  // RTQ_CORE_MEMORY_MANAGER_H_
