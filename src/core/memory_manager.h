// The reallocation engine.
//
// Tracks every live query (waiting or admitted), and on every membership
// or policy change recomputes all allocations with the active strategy
// and pushes the deltas out through a callback. This is the mechanism
// Section 3.2 describes: "the memory allocation of a query can vary
// between maximum, minimum, or no allocation as higher-priority queries
// enter and leave the system".
//
// Steady-state churn takes an incremental path: strategies publish a
// StableTailHint (strategy.h) proving that requests sorting behind the
// admission frontier neither receive memory nor disturb anyone else, so
// an arrival that lands in that dead zone — or the removal of a waiting
// query parked there — skips the O(live queries) recompute entirely.
// The fast paths are pure early-outs: every allocation and every apply
// callback is bit-identical to what the full recompute would produce.

#ifndef RTQ_CORE_MEMORY_MANAGER_H_
#define RTQ_CORE_MEMORY_MANAGER_H_

#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/pool.h"
#include "common/types.h"
#include "core/strategy.h"

namespace rtq::core {

/// Cross-cutting admission veto consulted during reallocation. The
/// manager calls TryAcquire once for every query about to move from zero
/// to a positive allocation; returning false keeps that query at zero for
/// this recompute (it stays registered and is retried on every later
/// one). Release is the inverse transition: an admitted query left the
/// system or was demoted back to zero. The cross-shard global-MPL
/// coordinator (core::ShardCoordinator) is the canonical implementation.
class AdmissionGate {
 public:
  virtual ~AdmissionGate() = default;
  virtual bool TryAcquire() = 0;
  virtual void Release() = 0;
};

class MemoryManager {
 public:
  /// Invoked with (query, new_allocation) whenever a query's allocation
  /// changes. The receiver is responsible for reserving buffer-pool pages
  /// and informing the operator.
  using ApplyFn = std::function<void(QueryId, PageCount)>;

  MemoryManager(PageCount total_pages,
                std::unique_ptr<AllocationStrategy> strategy, ApplyFn apply);

  /// Replaces the strategy and reallocates.
  void SetStrategy(std::unique_ptr<AllocationStrategy> strategy);

  /// Installs an admission gate (not owned; null clears). Must be set
  /// before the first AddQuery — slot accounting starts from an empty
  /// system. A gated manager never caches stable-tail hints: the gate's
  /// verdict depends on state outside this manager (other shards), so no
  /// incremental proof survives between recomputes.
  void SetAdmissionGate(AdmissionGate* gate);

  /// Registers an arriving query and reallocates (incrementally when the
  /// strategy's stable-tail proof applies).
  void AddQuery(const MemRequest& request);

  /// Deregisters a completed/aborted query and reallocates. The apply
  /// callback first sees (id, 0) if the query still held pages.
  void RemoveQuery(QueryId id);

  /// Recomputes allocations with the current strategy (idempotent).
  void Reallocate();

  const AllocationStrategy& strategy() const { return *strategy_; }

  // --- introspection -----------------------------------------------------
  PageCount total_pages() const { return total_; }
  PageCount allocated_pages() const { return allocated_sum_; }
  /// Queries with a non-zero allocation.
  int64_t admitted_count() const { return admitted_count_; }
  /// Queries registered but currently at zero allocation.
  int64_t waiting_count() const { return live_count() - admitted_count_; }
  int64_t live_count() const { return static_cast<int64_t>(queries_.size()); }
  /// Full strategy recomputations performed so far. Membership changes
  /// absorbed by the StableTailHint fast paths do not count — the gap
  /// between membership changes and recomputes() measures how often a
  /// strategy's incremental proof actually engages.
  int64_t recomputes() const { return recomputes_; }
  PageCount allocation_of(QueryId id) const;

 private:
  struct Entry {
    MemRequest request;
    PageCount allocation = 0;
  };

  /// Key giving Earliest-Deadline order with deterministic tie-break.
  struct EdKey {
    SimTime deadline = kNoDeadline;
    QueryId id = kInvalidQueryId;
    bool operator<(const EdKey& o) const {
      if (deadline != o.deadline) return deadline < o.deadline;
      return id < o.id;
    }
  };

  /// Records an allocation change and forwards it to the apply callback.
  void SetAllocation(Entry& entry, PageCount pages);

  /// True when the cached hint proves that inserting `key`/`request`
  /// changes no existing allocation and grants nothing.
  bool InsertIsStable(const EdKey& key, const MemRequest& request) const;

  PageCount total_;
  std::unique_ptr<AllocationStrategy> strategy_;
  ApplyFn apply_;
  AdmissionGate* gate_ = nullptr;
  // Both membership maps recycle their nodes through a pool, so
  // steady-state arrival/retire churn costs no heap allocation. The pool
  // outlives (is declared before) the containers that use it.
  NodePool node_pool_;
  using QueryMap =
      std::map<EdKey, Entry, std::less<EdKey>,
               PoolAllocator<std::pair<const EdKey, Entry>>>;
  using ByIdMap =
      std::unordered_map<QueryId, EdKey, std::hash<QueryId>,
                         std::equal_to<QueryId>,
                         PoolAllocator<std::pair<const QueryId, EdKey>>>;
  QueryMap queries_{std::less<EdKey>(),
                    PoolAllocator<std::pair<const EdKey, Entry>>(
                        &node_pool_)};  // ED-ordered
  ByIdMap by_id_{8, std::hash<QueryId>(), std::equal_to<QueryId>(),
                 PoolAllocator<std::pair<const QueryId, EdKey>>(
                     &node_pool_)};  // O(1) id -> ED position
  PageCount allocated_sum_ = 0;   // invariant: sum of entry.allocation
  int64_t admitted_count_ = 0;    // invariant: #entries with allocation > 0
  int64_t recomputes_ = 0;
  bool reallocating_ = false;     // guards against re-entrant reallocation
  bool realloc_again_ = false;

  // --- incremental-reallocation cache ------------------------------------
  // Valid between a full recompute and the next change it cannot absorb.
  bool cache_valid_ = false;
  StableTailHint hint_;
  /// Key of the element at ED position hint_.from when the hint was
  /// computed; `frontier_is_end_` means hint_.from == live_count() there
  /// (only inserts sorting after *every* live query qualify).
  EdKey frontier_key_;
  bool frontier_is_end_ = false;
  // Scratch buffers reused across recomputes to avoid allocation churn.
  std::vector<MemRequest> ed_scratch_;
  std::vector<EdKey> key_scratch_;
  AllocationVector alloc_scratch_;
};

}  // namespace rtq::core

#endif  // RTQ_CORE_MEMORY_MANAGER_H_
