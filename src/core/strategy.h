// The memory-allocation strategies of Section 3.2 and Table 5.
//
//   Max            — every admitted query gets its maximum demand; queries
//                    that do not fit get nothing. No explicit MPL limit.
//   MinMax-N       — the N highest-priority (ED) queries are admitted;
//                    pass 1 gives each its minimum, pass 2 tops up to the
//                    maximum in priority order, so urgent queries end at
//                    max and the rest at min (one query may land between).
//                    N < 0 means MinMax-infinity, the paper's "MinMax".
//   Proportional-N — like MinMax-N, but the admitted queries all receive
//                    the same percentage of their maximum demand, floored
//                    at their minimum.
//
// PMM itself is not a strategy here: it is a controller (pmm.h) that
// dynamically switches the memory manager between Max and MinMax-N.

#ifndef RTQ_CORE_STRATEGY_H_
#define RTQ_CORE_STRATEGY_H_

#include <functional>
#include <memory>
#include <string>

#include "core/allocation.h"

namespace rtq::core {

/// A proof emitted alongside an allocation that lets MemoryManager skip
/// recomputation for steady-state membership churn. When `valid`, the
/// strategy certifies that, against the exact input it just allocated:
///
///  * inserting a request at ED position >= `from` whose min_memory >
///    `spare_min` AND max_memory > `spare_max` would receive no
///    allocation and leave every other allocation unchanged, and
///  * removing a zero-allocation request at ED position > `from` would
///    leave every other allocation unchanged.
///
/// Both properties survive any sequence of such inserts/removals (the
/// admitted prefix and its leftover memory are untouched), so one hint
/// can absorb a whole burst of tail churn. Thresholds use strict `>`
/// with -1 meaning "any request qualifies". Strategies without an
/// incremental proof leave `valid` false: MemoryManager then recomputes
/// on every change, which is always correct.
struct StableTailHint {
  bool valid = false;
  /// ED position of the admission frontier (== input size when every
  /// request was considered, e.g. Max-with-bypass).
  size_t from = 0;
  PageCount spare_min = -1;
  PageCount spare_max = -1;
};

class AllocationStrategy {
 public:
  virtual ~AllocationStrategy() = default;

  /// Computes allocations for `ed_sorted` (Earliest-Deadline order) from a
  /// pool of `total` pages. Returns one entry per input, 0 = not admitted.
  virtual AllocationVector Allocate(const std::vector<MemRequest>& ed_sorted,
                                    PageCount total) const = 0;

  /// Like Allocate(), but also fills `hint` (never null) with the
  /// strategy's stable-tail proof. The default emits an invalid hint, so
  /// third-party strategies stay correct without opting in.
  virtual AllocationVector AllocateWithHint(
      const std::vector<MemRequest>& ed_sorted, PageCount total,
      StableTailHint* hint) const {
    *hint = StableTailHint{};
    return Allocate(ed_sorted, total);
  }

  /// Like AllocateWithHint(), but writes the result into `*out` (sized to
  /// the input), letting the caller reuse one scratch vector across
  /// recomputes so steady-state reallocation allocates nothing. The
  /// built-in strategies implement this as their core; the default
  /// delegates, so third-party strategies stay correct without opting in.
  virtual void AllocateInto(const std::vector<MemRequest>& ed_sorted,
                            PageCount total, AllocationVector* out,
                            StableTailHint* hint) const {
    *out = AllocateWithHint(ed_sorted, total, hint);
  }

  virtual std::string name() const = 0;
};

/// Shared machinery for "filter, delegate, scatter" wrapper strategies
/// (per-class quotas, feasibility shedding): requests `keep` rejects
/// (called once per request, in ED order — may be stateful) receive 0;
/// the survivors are allocated by `inner` and the grants scattered back
/// to their original positions. When every request is kept the wrapper
/// is a no-op, so this delegates to `inner.AllocateWithHint` and the
/// inner stable-tail proof lands in `*hint` verbatim — each wrapper
/// decides whether exposing it is sound (quotas: yes; time-dependent
/// filters: no, discard it). When anything is filtered, `*hint` is
/// invalid.
AllocationVector AllocateThroughFilter(
    const AllocationStrategy& inner, const std::vector<MemRequest>& ed_sorted,
    PageCount total, const std::function<bool(const MemRequest&)>& keep,
    StableTailHint* hint);

class MaxStrategy : public AllocationStrategy {
 public:
  /// `bypass_blocked`: when the highest-priority waiting query does not
  /// fit, whether lower-priority queries may still be admitted around it.
  /// The paper's Max "admits as many queries at their maximum allocations
  /// as memory permits" and realizes an average MPL close to 2 on the
  /// baseline workload, which requires bypassing — so bypass is the
  /// default. Strict ED (no bypass, immune to starving an urgent large
  /// query) is kept for the A1 ablation bench.
  explicit MaxStrategy(bool bypass_blocked = true)
      : bypass_blocked_(bypass_blocked) {}

  AllocationVector Allocate(const std::vector<MemRequest>& ed_sorted,
                            PageCount total) const override;
  AllocationVector AllocateWithHint(const std::vector<MemRequest>& ed_sorted,
                                    PageCount total,
                                    StableTailHint* hint) const override;
  void AllocateInto(const std::vector<MemRequest>& ed_sorted, PageCount total,
                    AllocationVector* out,
                    StableTailHint* hint) const override;
  std::string name() const override;

 private:
  bool bypass_blocked_;
};

class MinMaxStrategy : public AllocationStrategy {
 public:
  /// `mpl_limit` = N; negative means unlimited (MinMax-infinity).
  explicit MinMaxStrategy(int64_t mpl_limit = -1) : mpl_limit_(mpl_limit) {}

  AllocationVector Allocate(const std::vector<MemRequest>& ed_sorted,
                            PageCount total) const override;
  AllocationVector AllocateWithHint(const std::vector<MemRequest>& ed_sorted,
                                    PageCount total,
                                    StableTailHint* hint) const override;
  void AllocateInto(const std::vector<MemRequest>& ed_sorted, PageCount total,
                    AllocationVector* out,
                    StableTailHint* hint) const override;
  std::string name() const override;

  int64_t mpl_limit() const { return mpl_limit_; }

 private:
  int64_t mpl_limit_;
};

class ProportionalStrategy : public AllocationStrategy {
 public:
  /// `mpl_limit` = N; negative means unlimited (Proportional-infinity).
  explicit ProportionalStrategy(int64_t mpl_limit = -1)
      : mpl_limit_(mpl_limit) {}

  AllocationVector Allocate(const std::vector<MemRequest>& ed_sorted,
                            PageCount total) const override;
  AllocationVector AllocateWithHint(const std::vector<MemRequest>& ed_sorted,
                                    PageCount total,
                                    StableTailHint* hint) const override;
  void AllocateInto(const std::vector<MemRequest>& ed_sorted, PageCount total,
                    AllocationVector* out,
                    StableTailHint* hint) const override;
  std::string name() const override;

 private:
  int64_t mpl_limit_;
};

}  // namespace rtq::core

#endif  // RTQ_CORE_STRATEGY_H_
