// The paper's five policies (Sections 3.1-3.2, 5.6) as registered
// MemoryPolicy plugins:
//
//   "max[:strict]"    — MaxStrategy; ":strict" disables admission bypass
//   "minmax[:N]"      — MinMax-N; N omitted = MinMax-infinity
//   "prop[:N]"        — Proportional-N; N omitted = unlimited
//   "pmm"             — the adaptive PMM controller
//   "pmm-fair[:w=..]" — PMM + Section 5.6 fairness; w = one desired
//                       relative miss ratio per class, comma-separated
//                       (omitted = equal weights for every class)
//
// This file is also the template for new policies: everything a policy
// needs — factory, lifecycle, registration — lives in one translation
// unit (see src/policies/ for two out-of-tree examples).

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/memory_policy.h"
#include "core/pmm_fair.h"
#include "core/policy_registry.h"
#include "core/strategy.h"

namespace rtq::core {
namespace {

// ---------------------------------------------------------------------------
// Static strategies: one fixed AllocationStrategy for the whole run.
// ---------------------------------------------------------------------------

class StaticStrategyPolicy : public MemoryPolicy {
 public:
  using StrategyFactory =
      std::function<std::unique_ptr<AllocationStrategy>()>;

  StaticStrategyPolicy(std::string spec, std::string display,
                       StrategyFactory make)
      : spec_(std::move(spec)),
        display_(std::move(display)),
        make_(std::move(make)) {}

  Status Attach(const PolicyHost& host) override {
    host.mm->SetStrategy(make_());
    return Status::Ok();
  }

  std::string Describe() const override { return spec_; }
  std::string DisplayName() const override { return display_; }

 private:
  std::string spec_;
  std::string display_;
  StrategyFactory make_;
};

StatusOr<std::unique_ptr<MemoryPolicy>> MakeMaxPolicy(
    const PolicySpec& spec) {
  bool strict = false;
  if (spec.args == "strict") {
    strict = true;
  } else if (!spec.args.empty()) {
    return Status::InvalidArgument("max takes no argument or ':strict', got '" +
                                   spec.args + "'");
  }
  std::string canonical = strict ? "max:strict" : "max";
  std::string display = strict ? "Max(strict)" : "Max";
  return std::unique_ptr<MemoryPolicy>(new StaticStrategyPolicy(
      canonical, display,
      [strict] { return std::make_unique<MaxStrategy>(!strict); }));
}

/// Shared factory body for the two -N families.
template <typename StrategyT>
StatusOr<std::unique_ptr<MemoryPolicy>> MakeLimitPolicy(
    const PolicySpec& spec, const char* family) {
  int64_t n = -1;
  if (!spec.args.empty()) {
    auto parsed = ParseSpecInt(spec.args);
    if (!parsed.ok()) return parsed.status();
    n = parsed.value();
    if (n < 1) {
      return Status::InvalidArgument(std::string(family) +
                                     ": N must be >= 1, got " + spec.args);
    }
  }
  std::string canonical =
      n < 0 ? spec.name : spec.name + ":" + std::to_string(n);
  std::string display =
      n < 0 ? family : std::string(family) + "-" + std::to_string(n);
  return std::unique_ptr<MemoryPolicy>(new StaticStrategyPolicy(
      canonical, display, [n] { return std::make_unique<StrategyT>(n); }));
}

// ---------------------------------------------------------------------------
// PMM and PMM-Fair: controller-driven adaptive policies.
// ---------------------------------------------------------------------------

class PmmPolicy : public MemoryPolicy {
 public:
  Status Attach(const PolicyHost& host) override {
    RTQ_RETURN_IF_ERROR(host.pmm.Validate());
    controller_ =
        std::make_unique<PmmController>(host.pmm, host.mm, host.probe);
    return Status::Ok();
  }

  void OnQueryEvent(const QueryEvent& event) override {
    if (event.kind == QueryEvent::Kind::kCompletion) {
      controller_->OnQueryFinished(event.info);
    }
  }

  std::string Describe() const override { return "pmm"; }
  std::string DisplayName() const override { return "PMM"; }
  const PmmController* pmm_controller() const override {
    return controller_.get();
  }

 private:
  std::unique_ptr<PmmController> controller_;
};

class PmmFairPolicy : public MemoryPolicy {
 public:
  explicit PmmFairPolicy(std::vector<double> weights)
      : weights_(std::move(weights)) {}

  Status Attach(const PolicyHost& host) override {
    RTQ_RETURN_IF_ERROR(host.pmm.Validate());
    std::vector<double> weights = weights_;
    if (weights.empty()) {
      // No w= argument: ask for equal miss ratios across all classes.
      weights.assign(static_cast<size_t>(host.num_classes), 1.0);
    }
    if (static_cast<int32_t>(weights.size()) != host.num_classes) {
      return Status::InvalidArgument(
          "pmm-fair needs one weight per workload class (" +
          std::to_string(weights.size()) + " weights, " +
          std::to_string(host.num_classes) + " classes)");
    }
    if (weights.empty()) {
      return Status::InvalidArgument("pmm-fair needs at least one class");
    }
    controller_ = std::make_unique<PmmFairController>(host.pmm, host.mm,
                                                      host.probe, weights);
    return Status::Ok();
  }

  void OnQueryEvent(const QueryEvent& event) override {
    if (event.kind == QueryEvent::Kind::kCompletion) {
      controller_->OnQueryFinished(event.info);
    }
  }

  std::string Describe() const override {
    return weights_.empty() ? "pmm-fair"
                            : "pmm-fair:w=" + FormatSpecDoubleList(weights_);
  }
  std::string DisplayName() const override { return "PMM-Fair"; }
  const PmmController* pmm_controller() const override {
    return controller_.get();
  }

 private:
  std::vector<double> weights_;
  std::unique_ptr<PmmFairController> controller_;
};

StatusOr<std::unique_ptr<MemoryPolicy>> MakePmmFairPolicy(
    const PolicySpec& spec) {
  std::vector<double> weights;
  if (!spec.args.empty()) {
    auto kv = ParseSpecKeyValue(spec.args);
    if (!kv.ok()) return kv.status();
    if (kv.value().first != "w") {
      return Status::InvalidArgument("pmm-fair: unknown argument '" +
                                     kv.value().first + "' (expected w=...)");
    }
    auto parsed = ParseSpecDoubleList(kv.value().second);
    if (!parsed.ok()) return parsed.status();
    weights = std::move(parsed).value();
    for (double w : weights) {
      if (!std::isfinite(w) || w <= 0.0) {
        return Status::InvalidArgument(
            "pmm-fair: weights must be finite and > 0");
      }
    }
  }
  return std::unique_ptr<MemoryPolicy>(new PmmFairPolicy(std::move(weights)));
}

// ---------------------------------------------------------------------------
// Registrations.
// ---------------------------------------------------------------------------

RTQ_REGISTER_POLICY("max", "max[:strict] — all-or-nothing maximum allocations",
                    MakeMaxPolicy);
RTQ_REGISTER_POLICY(
    "minmax", "minmax[:N] — min-then-max top-up, MPL capped at N",
    [](const PolicySpec& spec) {
      return MakeLimitPolicy<MinMaxStrategy>(spec, "MinMax");
    });
RTQ_REGISTER_POLICY(
    "prop", "prop[:N] — equal fraction of each maximum, MPL capped at N",
    [](const PolicySpec& spec) {
      return MakeLimitPolicy<ProportionalStrategy>(spec, "Proportional");
    });
RTQ_REGISTER_POLICY("pmm", "pmm — adaptive Priority Memory Management",
                    [](const PolicySpec& spec)
                        -> StatusOr<std::unique_ptr<MemoryPolicy>> {
                      if (!spec.args.empty()) {
                        return Status::InvalidArgument(
                            "pmm takes no arguments (tune via "
                            "SystemConfig::pmm), got '" +
                            spec.args + "'");
                      }
                      return std::unique_ptr<MemoryPolicy>(new PmmPolicy());
                    });
RTQ_REGISTER_POLICY("pmm-fair",
                    "pmm-fair[:w=w1,w2,...] — PMM + class fairness",
                    MakePmmFairPolicy);

}  // namespace
}  // namespace rtq::core
