// Cross-shard admission coordination (ShardConfig admission="global:mpl=N").
//
// Under local admission every shard's policy runs its own MPL against its
// own pool, which lets a skewed cluster overshoot the aggregate
// multiprogramming level the paper's Section 4 results say the system can
// sustain. The coordinator caps the *total* number of admitted queries
// across all shards: each shard's MemoryManager consults its per-shard
// AdmissionGate before promoting a query from zero to a positive
// allocation, and releases the slot when an admitted query completes,
// aborts, or is demoted back to zero.
//
// Freed slots are claimed lazily — a refused shard retries at its next
// reallocation event (arrival, completion, deadline abort). No
// cross-shard wakeup machinery is needed for progress: firm deadlines
// bound how long any waiting query can linger, and the paper's workloads
// churn membership constantly. Policies can inspect the coordinator
// through PolicyHost::coordinator (opt-in; enforcement happens in the
// engine layer either way, so existing policies work unmodified).

#ifndef RTQ_CORE_SHARD_COORDINATOR_H_
#define RTQ_CORE_SHARD_COORDINATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/memory_manager.h"

namespace rtq::core {

class ShardCoordinator {
 public:
  /// `global_mpl` > 0 is the cluster-wide cap on admitted queries.
  ShardCoordinator(int32_t num_shards, int64_t global_mpl);

  /// The gate shard `shard` installs on its MemoryManager. Owned by the
  /// coordinator; valid for the coordinator's lifetime.
  AdmissionGate* GateFor(int32_t shard);

  int32_t num_shards() const { return static_cast<int32_t>(gates_.size()); }
  int64_t global_mpl() const { return global_mpl_; }
  /// Admitted queries currently holding a slot, cluster-wide.
  int64_t in_use() const { return in_use_; }
  /// Highest in_use() ever observed (the invariant tests pin: never
  /// exceeds global_mpl).
  int64_t high_water() const { return high_water_; }
  /// Lifetime count of refused admissions.
  int64_t refusals() const { return refusals_; }
  /// Slots currently held by `shard`'s admitted queries.
  int64_t held_by(int32_t shard) const;

 private:
  struct Gate final : AdmissionGate {
    bool TryAcquire() override;
    void Release() override;
    ShardCoordinator* owner = nullptr;
    int32_t shard = 0;
  };

  bool TryAcquire(int32_t shard);
  void Release(int32_t shard);

  int64_t global_mpl_ = 0;
  int64_t in_use_ = 0;
  int64_t high_water_ = 0;
  int64_t refusals_ = 0;
  std::vector<Gate> gates_;
  std::vector<int64_t> held_;
};

/// Parses a ShardConfig::admission spec: "local" returns 0 (no
/// coordinator), "global:mpl=N" returns the positive cap N.
StatusOr<int64_t> ParseAdmissionSpec(const std::string& spec);

}  // namespace rtq::core

#endif  // RTQ_CORE_SHARD_COORDINATOR_H_
