// The abstract arrival stream feeding the engine (paper Figure 2's
// Source box, generalized).
//
// Three implementations exist: the classic Poisson Source
// (workload/source.h), the live scenario generator
// (workload/scenario.h) for non-stationary shapes, and the
// deterministic trace replayer (workload/trace_source.h). The engine
// only sees this interface: Start() begins scheduling arrival events on
// the simulator, and every constructed (descriptor, operator) pair is
// handed over through the Sink callback.

#ifndef RTQ_WORKLOAD_ARRIVAL_SOURCE_H_
#define RTQ_WORKLOAD_ARRIVAL_SOURCE_H_

#include <functional>
#include <memory>

#include "exec/operator.h"
#include "exec/query.h"

namespace rtq::workload {

class ArrivalSource {
 public:
  using Sink = std::function<void(exec::QueryDescriptor,
                                  std::unique_ptr<exec::Operator>)>;

  virtual ~ArrivalSource() = default;

  /// Begins generating arrivals. Must be called at most once, before the
  /// simulation runs.
  virtual void Start() = 0;

  /// Number of queries emitted so far.
  virtual int64_t generated() const = 0;
};

}  // namespace rtq::workload

#endif  // RTQ_WORKLOAD_ARRIVAL_SOURCE_H_
