// The abstract arrival stream feeding the engine (paper Figure 2's
// Source box, generalized).
//
// Three implementations exist: the classic Poisson Source
// (workload/source.h), the live scenario generator
// (workload/scenario.h) for non-stationary shapes, and the
// deterministic trace replayer (workload/trace_source.h). The engine
// only sees this interface: Start() begins scheduling arrival events on
// the simulator, and every constructed (descriptor, operator) pair is
// handed over through the Sink callback.

#ifndef RTQ_WORKLOAD_ARRIVAL_SOURCE_H_
#define RTQ_WORKLOAD_ARRIVAL_SOURCE_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "workload/query_builder.h"

namespace rtq::workload {

class ArrivalSource {
 public:
  /// One arrival: the fully-resolved blueprint plus the engine-wide
  /// sequential query id. The consumer materializes the
  /// (descriptor, operator) pair itself — the engine builds it into the
  /// query's arena (BuildQueryInArena), tests and the trace renderer use
  /// the heap variant (BuildQuery); both are bit-identical.
  using Sink = std::function<void(const QueryBlueprint&, QueryId)>;

  virtual ~ArrivalSource() = default;

  /// Begins generating arrivals. Must be called at most once, before the
  /// simulation runs.
  virtual void Start() = 0;

  /// Permanently silences the stream: already-scheduled arrival events
  /// become no-ops when they fire (they are not cancelled, so the event
  /// calendar and dispatch counts stay identical either way — the
  /// property live scenario swaps rely on for deterministic replay).
  virtual void Stop() = 0;

  /// Number of queries emitted so far. A source swapped in mid-run
  /// continues the predecessor's id space (set_first_query_id), so after
  /// a swap this is the cumulative count across the chain.
  virtual int64_t generated() const = 0;

  /// Appends one line per internal state dimension (cursors, per-class
  /// stream states, rng fingerprints) to `out`. Snapshot digests compare
  /// these lines to prove the arrival stream was restored exactly.
  virtual void AppendStateDigest(std::vector<std::string>* out) const = 0;
};

}  // namespace rtq::workload

#endif  // RTQ_WORKLOAD_ARRIVAL_SOURCE_H_
