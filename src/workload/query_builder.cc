#include "workload/query_builder.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/check.h"
#include "exec/external_sort.h"
#include "exec/hash_join.h"
#include "exec/standalone.h"

namespace rtq::workload {

namespace {

const storage::Relation& PickUniform(const storage::Database& db,
                                     int32_t group, Rng* rng) {
  const std::vector<storage::RelationId>& ids = db.RelationsInGroup(group);
  int64_t idx = rng->UniformInt(0, static_cast<int64_t>(ids.size()) - 1);
  return db.relation(ids[static_cast<size_t>(idx)]);
}

// Bounded Pareto(alpha) over [1, n+1) mapped onto the group's relations
// sorted by size ascending: index 0 (the smallest relation) is the most
// likely, with a heavy tail reaching the largest.
const storage::Relation& PickPareto(const storage::Database& db,
                                    int32_t group, double alpha, Rng* rng) {
  std::vector<storage::RelationId> ids = db.RelationsInGroup(group);
  std::sort(ids.begin(), ids.end(),
            [&db](storage::RelationId a, storage::RelationId b) {
              const storage::Relation& ra = db.relation(a);
              const storage::Relation& rb = db.relation(b);
              return ra.pages != rb.pages ? ra.pages < rb.pages : a < b;
            });
  double n = static_cast<double>(ids.size());
  double u = rng->NextDouble();
  double h_pow = std::pow(1.0 / (n + 1.0), alpha);
  double x = 1.0 / std::pow(1.0 - u * (1.0 - h_pow), 1.0 / alpha);
  auto idx = static_cast<int64_t>(x) - 1;
  idx = std::clamp<int64_t>(idx, 0, static_cast<int64_t>(ids.size()) - 1);
  return db.relation(ids[static_cast<size_t>(idx)]);
}

const storage::Relation& Pick(const storage::Database& db, int32_t group,
                              const SelectionSpec& sel, Rng* rng) {
  return sel.pareto ? PickPareto(db, group, sel.alpha, rng)
                    : PickUniform(db, group, rng);
}

}  // namespace

QueryBlueprint DrawBlueprint(const QueryClassSpec& cls, int32_t query_class,
                             SimTime now, const storage::Database& db,
                             Rng* selection, const SelectionSpec& sel) {
  QueryBlueprint bp;
  bp.time = now;
  bp.query_class = query_class;
  bp.type = cls.type;
  bp.slack = selection->Uniform(cls.slack_min, cls.slack_max);

  if (cls.type == exec::QueryType::kHashJoin) {
    const storage::Relation& a = Pick(db, cls.rel_groups[0], sel, selection);
    const storage::Relation& b = Pick(db, cls.rel_groups[1], sel, selection);
    // The smaller relation is the inner (building) relation R.
    bp.r = a.pages <= b.pages ? a.id : b.id;
    bp.s = a.pages <= b.pages ? b.id : a.id;
  } else {
    bp.r = Pick(db, cls.rel_groups[0], sel, selection).id;
  }
  return bp;
}

namespace {

// Shared construction core; `factory` decides where the operator lives
// (heap for BuildQuery, arena for BuildQueryInArena). Everything else —
// in particular the descriptor computation — is identical, which is what
// keeps live generation, trace replay, and the engine's arena path
// bit-identical to each other.
template <typename Factory>
exec::QueryDescriptor BuildCore(const QueryBlueprint& blueprint, QueryId id,
                                const storage::Database& db,
                                const exec::ExecParams& exec_params,
                                const model::DiskParams& disk_params,
                                double mips, Factory&& factory,
                                exec::Operator** out_op) {
  exec::QueryDescriptor desc;
  desc.id = id;
  desc.query_class = blueprint.query_class;
  desc.type = blueprint.type;
  desc.arrival = blueprint.time;
  desc.slack_ratio = blueprint.slack;

  exec::StandaloneEstimate est;
  if (blueprint.type == exec::QueryType::kHashJoin) {
    const storage::Relation& r = db.relation(blueprint.r);
    const storage::Relation& s = db.relation(blueprint.s);
    RTQ_CHECK_MSG(r.pages <= s.pages, "blueprint inner relation is larger");
    desc.r_relation = r.id;
    desc.s_relation = s.id;
    desc.operand_pages = r.pages + s.pages;

    exec::HashJoin::Inputs inputs;
    inputs.r_disk = r.disk;
    inputs.r_start = r.start_page;
    inputs.r_pages = r.pages;
    inputs.s_disk = s.disk;
    inputs.s_start = s.start_page;
    inputs.s_pages = s.pages;
    *out_op = factory.MakeJoin(exec_params, inputs);
    est = exec::EstimateHashJoin(exec_params, disk_params, mips, r.pages,
                                 s.pages);
  } else {
    const storage::Relation& r = db.relation(blueprint.r);
    desc.r_relation = r.id;
    desc.operand_pages = r.pages;

    exec::ExternalSort::Inputs inputs;
    inputs.disk = r.disk;
    inputs.start = r.start_page;
    inputs.pages = r.pages;
    *out_op = factory.MakeSort(exec_params, inputs);
    est = exec::EstimateExternalSort(exec_params, disk_params, mips, r.pages);
  }

  desc.standalone_time =
      std::isnan(blueprint.standalone) ? est.total() : blueprint.standalone;
  desc.operand_io_requests = est.io_requests;
  desc.deadline = desc.arrival + desc.standalone_time * desc.slack_ratio;
  desc.max_memory = (*out_op)->max_memory();
  desc.min_memory = (*out_op)->min_memory();
  return desc;
}

struct HeapFactory {
  exec::Operator* MakeJoin(const exec::ExecParams& p,
                           const exec::HashJoin::Inputs& in) const {
    return new exec::HashJoin(p, in);
  }
  exec::Operator* MakeSort(const exec::ExecParams& p,
                           const exec::ExternalSort::Inputs& in) const {
    return new exec::ExternalSort(p, in);
  }
};

struct ArenaFactory {
  Arena* arena;
  exec::Operator* MakeJoin(const exec::ExecParams& p,
                           const exec::HashJoin::Inputs& in) const {
    return arena->New<exec::HashJoin>(p, in);
  }
  exec::Operator* MakeSort(const exec::ExecParams& p,
                           const exec::ExternalSort::Inputs& in) const {
    return arena->New<exec::ExternalSort>(p, in, arena);
  }
};

}  // namespace

BuiltQuery BuildQuery(const QueryBlueprint& blueprint, QueryId id,
                      const storage::Database& db,
                      const exec::ExecParams& exec_params,
                      const model::DiskParams& disk_params, double mips) {
  BuiltQuery built;
  exec::Operator* op = nullptr;
  built.desc = BuildCore(blueprint, id, db, exec_params, disk_params, mips,
                         HeapFactory{}, &op);
  built.op.reset(op);
  return built;
}

BuiltQueryRefs BuildQueryInArena(const QueryBlueprint& blueprint, QueryId id,
                                 const storage::Database& db,
                                 const exec::ExecParams& exec_params,
                                 const model::DiskParams& disk_params,
                                 double mips, Arena* arena) {
  BuiltQueryRefs built;
  built.desc = BuildCore(blueprint, id, db, exec_params, disk_params, mips,
                         ArenaFactory{arena}, &built.op);
  return built;
}

}  // namespace rtq::workload
