#include "workload/trace_source.h"

#include <cmath>
#include <utility>

#include "common/check.h"
#include "exec/standalone.h"
#include "workload/query_builder.h"

namespace rtq::workload {

namespace {

Status RecordError(size_t index, const std::string& what) {
  return Status::InvalidArgument("trace record " + std::to_string(index) +
                                 ": " + what);
}

/// Checks one record against the database layout and its class's spec;
/// `index` is only for error messages.
Status ValidateRecord(const TraceRecord& rec, size_t index,
                      const storage::Database& db,
                      const WorkloadSpec& workload,
                      const exec::ExecParams& exec_params,
                      const model::DiskParams& disk_params, double mips) {
  if (!std::isfinite(rec.time) || rec.time < 0.0)
    return RecordError(index, "bad arrival time");
  if (rec.query_class < 0 ||
      rec.query_class >= static_cast<int32_t>(workload.classes.size()))
    return RecordError(index, "class out of range");
  const QueryClassSpec& cls =
      workload.classes[static_cast<size_t>(rec.query_class)];
  if (rec.type != cls.type)
    return RecordError(index, "query type does not match class " +
                                  std::to_string(rec.query_class));
  if (!std::isfinite(rec.slack) || rec.slack <= 0.0)
    return RecordError(index, "bad slack ratio");

  auto num_relations = static_cast<storage::RelationId>(db.relations().size());
  if (rec.r < 0 || rec.r >= num_relations)
    return RecordError(index, "unknown relation id " + std::to_string(rec.r));
  const storage::Relation& r = db.relation(rec.r);

  exec::StandaloneEstimate est;
  if (rec.type == exec::QueryType::kHashJoin) {
    if (rec.s < 0 || rec.s >= num_relations)
      return RecordError(index,
                         "unknown relation id " + std::to_string(rec.s));
    const storage::Relation& s = db.relation(rec.s);
    if (r.pages > s.pages)
      return RecordError(index, "join inner relation larger than outer");
    bool groups_ok = (r.group == cls.rel_groups[0] &&
                      s.group == cls.rel_groups[1]) ||
                     (r.group == cls.rel_groups[1] &&
                      s.group == cls.rel_groups[0]);
    if (!groups_ok)
      return RecordError(index, "operands not drawn from class " +
                                    std::to_string(rec.query_class) +
                                    "'s relation groups");
    est = exec::EstimateHashJoin(exec_params, disk_params, mips, r.pages,
                                 s.pages);
  } else {
    if (rec.s >= 0)
      return RecordError(index, "sort record with outer relation");
    if (r.group != cls.rel_groups[0])
      return RecordError(index, "operand not drawn from class " +
                                    std::to_string(rec.query_class) +
                                    "'s relation group");
    est = exec::EstimateExternalSort(exec_params, disk_params, mips, r.pages);
  }

  // A stored stand-alone time must match the cost model exactly: the
  // field exists for portability, not to override deadline semantics, so
  // any disagreement means the trace and this build disagree and the
  // replay would not be an oracle.
  if (!std::isnan(rec.standalone) && rec.standalone != est.total())
    return RecordError(index, "stand-alone time " +
                                  FormatDouble(rec.standalone) +
                                  " disagrees with cost model " +
                                  FormatDouble(est.total()));
  return Status::Ok();
}

}  // namespace

StatusOr<std::unique_ptr<TraceSource>> TraceSource::Create(
    sim::Simulator* sim, const storage::Database* db,
    const WorkloadSpec& workload, const exec::ExecParams& exec_params,
    const model::DiskParams& disk_params, double mips,
    std::shared_ptr<const Trace> trace, Sink sink) {
  RTQ_CHECK(sim != nullptr && db != nullptr);
  RTQ_CHECK(sink != nullptr);
  if (trace == nullptr) return Status::InvalidArgument("trace: null");
  Status st = workload.Validate(*db);
  if (!st.ok()) return st;
  if (trace->num_classes != static_cast<int32_t>(workload.classes.size()))
    return Status::InvalidArgument(
        "trace: declares " + std::to_string(trace->num_classes) +
        " classes, workload has " +
        std::to_string(workload.classes.size()));

  SimTime last_time = 0.0;
  for (size_t i = 0; i < trace->records.size(); ++i) {
    const TraceRecord& rec = trace->records[i];
    st = ValidateRecord(rec, i, *db, workload, exec_params, disk_params,
                        mips);
    if (!st.ok()) return st;
    if (i > 0 && rec.time < last_time)
      return RecordError(i, "out-of-order arrival time");
    last_time = rec.time;
  }

  return std::unique_ptr<TraceSource>(
      new TraceSource(sim, db, exec_params, disk_params, mips,
                      std::move(trace), std::move(sink)));
}

TraceSource::TraceSource(sim::Simulator* sim, const storage::Database* db,
                         const exec::ExecParams& exec_params,
                         const model::DiskParams& disk_params, double mips,
                         std::shared_ptr<const Trace> trace, Sink sink)
    : sim_(sim),
      db_(db),
      exec_params_(exec_params),
      disk_params_(disk_params),
      mips_(mips),
      trace_(std::move(trace)),
      sink_(std::move(sink)) {}

void TraceSource::Start() {
  RTQ_CHECK_MSG(!started_, "TraceSource started twice");
  started_ = true;
  ScheduleNext();
}

void TraceSource::AppendStateDigest(std::vector<std::string>* out) const {
  out->push_back("source trace " + std::to_string(next_id_) + " " +
                 std::to_string(cursor_) + " " +
                 std::to_string(stopped_ ? 1 : 0));
}

void TraceSource::ScheduleNext() {
  if (cursor_ >= trace_->records.size()) return;
  const TraceRecord& rec = trace_->records[cursor_];
  sim_->ScheduleAt(rec.time, [this] {
    if (stopped_) return;
    const TraceRecord& r = trace_->records[cursor_++];
    QueryBlueprint bp;
    bp.time = r.time;
    bp.query_class = r.query_class;
    bp.type = r.type;
    bp.r = r.r;
    bp.s = r.s;
    bp.slack = r.slack;
    bp.standalone = r.standalone;
    sink_(bp, next_id_++);
    ScheduleNext();
  });
}

}  // namespace rtq::workload
