// The Source module: generates the query stream (paper Figure 2, §4.1).
//
// For each active class, arrivals follow a Poisson process. On each
// arrival the Source picks operand relations from the class's relation
// groups, builds the memory-adaptive operator, estimates the stand-alone
// time, draws a slack ratio, and assigns the firm deadline
//
//   Deadline = Arrival + StandAlone * SlackRatio.
//
// The constructed (descriptor, operator) pair is handed to the engine
// through a sink callback. Classes can be activated/deactivated at run
// time to drive the workload-alternation experiment.

#ifndef RTQ_WORKLOAD_SOURCE_H_
#define RTQ_WORKLOAD_SOURCE_H_

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "exec/cost_model.h"
#include "exec/operator.h"
#include "exec/query.h"
#include "sim/simulator.h"
#include "storage/database.h"
#include "workload/arrival_source.h"
#include "workload/workload_spec.h"

namespace rtq::workload {

class Source : public ArrivalSource {
 public:
  Source(sim::Simulator* sim, const storage::Database* db,
         const WorkloadSpec& spec, const exec::ExecParams& exec_params,
         const model::DiskParams& disk_params, double mips, Rng rng,
         Sink sink);

  /// Begins generating arrivals for all initially-active classes.
  void Start() override;

  /// Deactivates every class; pending arrival events fire as no-ops.
  void Stop() override;

  /// Enables / disables a class's arrival process at run time.
  void Activate(int32_t query_class);
  void Deactivate(int32_t query_class);
  bool active(int32_t query_class) const;

  int64_t generated() const override {
    return static_cast<int64_t>(next_id_);
  }

  void AppendStateDigest(std::vector<std::string>* out) const override;

  /// Sets the id of the first query this source will emit. Only valid
  /// before Start(); a source swapped in mid-run continues the retired
  /// predecessor's id space so the engine never sees a duplicate id.
  void set_first_query_id(QueryId id) {
    RTQ_CHECK_MSG(!started_, "set_first_query_id after Start");
    next_id_ = id;
  }

  const WorkloadSpec& spec() const { return spec_; }

 private:
  void ScheduleNextArrival(int32_t query_class);
  void EmitQuery(int32_t query_class);

  sim::Simulator* sim_;
  const storage::Database* db_;
  WorkloadSpec spec_;
  exec::ExecParams exec_params_;
  model::DiskParams disk_params_;
  double mips_;
  Sink sink_;

  struct ClassState {
    bool active = false;
    /// Generation counter: bumping it orphans any scheduled arrival event
    /// from an earlier activation period.
    uint64_t epoch = 0;
    Rng arrivals;   // inter-arrival stream
    Rng selection;  // relation & slack stream
  };
  std::vector<ClassState> class_state_;
  QueryId next_id_ = 0;
  bool started_ = false;
};

}  // namespace rtq::workload

#endif  // RTQ_WORKLOAD_SOURCE_H_
