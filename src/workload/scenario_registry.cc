#include "workload/scenario_registry.h"

#include <cmath>
#include <cstdlib>
#include <utility>

#include "common/check.h"

namespace rtq::workload {

namespace {

bool IsNameStart(char c) { return c >= 'a' && c <= 'z'; }

bool IsNameChar(char c) {
  return IsNameStart(c) || (c >= '0' && c <= '9') || c == '-';
}

bool IsValidName(const std::string& name) {
  if (name.empty() || !IsNameStart(name[0])) return false;
  for (char c : name) {
    if (!IsNameChar(c)) return false;
  }
  return true;
}

}  // namespace

StatusOr<ScenarioArgs> ScenarioArgs::Parse(const std::string& args) {
  ScenarioArgs out;
  size_t pos = 0;
  while (pos < args.size()) {
    size_t comma = args.find(',', pos);
    std::string pair = args.substr(
        pos, comma == std::string::npos ? std::string::npos : comma - pos);
    size_t eq = pair.find('=');
    if (eq == std::string::npos || eq == 0)
      return Status::InvalidArgument("scenario args: expected k=v, got '" +
                                     pair + "'");
    std::string key = pair.substr(0, eq);
    std::string value = pair.substr(eq + 1);
    char* end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size() ||
        !std::isfinite(v))
      return Status::InvalidArgument("scenario args: bad value for '" + key +
                                     "': '" + value + "'");
    if (!out.values_.emplace(key, v).second)
      return Status::InvalidArgument("scenario args: duplicate key '" + key +
                                     "'");
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

double ScenarioArgs::Take(const std::string& key, double fallback) {
  auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  double v = it->second;
  values_.erase(it);
  return v;
}

Status ScenarioArgs::Finish() const {
  if (values_.empty()) return Status::Ok();
  return Status::InvalidArgument("scenario args: unknown key '" +
                                 values_.begin()->first + "'");
}

ScenarioRegistry& ScenarioRegistry::Global() {
  static auto* registry = new ScenarioRegistry();
  return *registry;
}

Status ScenarioRegistry::Register(const std::string& name, std::string help,
                                  Factory factory) {
  if (!IsValidName(name))
    return Status::InvalidArgument("invalid scenario name '" + name + "'");
  if (factory == nullptr)
    return Status::InvalidArgument("null factory for scenario '" + name + "'");
  auto [it, inserted] =
      entries_.emplace(name, Entry{std::move(help), std::move(factory)});
  (void)it;
  if (!inserted)
    return Status::InvalidArgument("duplicate scenario name '" + name + "'");
  return Status::Ok();
}

bool ScenarioRegistry::Contains(const std::string& name) const {
  return entries_.count(name) != 0;
}

StatusOr<ScenarioSpec> ScenarioRegistry::Create(
    const std::string& spec) const {
  size_t colon = spec.find(':');
  std::string name = spec.substr(0, colon);
  std::string args_text =
      colon == std::string::npos ? std::string() : spec.substr(colon + 1);
  if (!IsValidName(name))
    return Status::InvalidArgument("malformed scenario spec '" + spec +
                                   "': expected name[:k=v,...] with name "
                                   "matching [a-z][a-z0-9-]*");
  auto it = entries_.find(name);
  if (it == entries_.end())
    return Status::NotFound("unknown scenario '" + name +
                            "'; known:\n" + Help());
  StatusOr<ScenarioArgs> args = ScenarioArgs::Parse(args_text);
  if (!args.ok()) {
    return Status::InvalidArgument("scenario '" + name +
                                   "': " + args.status().message());
  }
  return it->second.factory(std::move(args).value());
}

std::vector<std::string> ScenarioRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    (void)entry;
    names.push_back(name);
  }
  return names;
}

std::string ScenarioRegistry::Help() const {
  std::string out;
  for (const auto& [name, entry] : entries_) {
    out += "  " + name + " — " + entry.help + "\n";
  }
  return out;
}

ScenarioRegistrar::ScenarioRegistrar(const std::string& name, std::string help,
                                     ScenarioRegistry::Factory factory) {
  Status st = ScenarioRegistry::Global().Register(name, std::move(help),
                                                  std::move(factory));
  RTQ_CHECK_MSG(st.ok(), "scenario registration failed");
}

}  // namespace rtq::workload
