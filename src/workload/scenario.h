// Scenario engine: composable non-stationary arrival processes.
//
// The paper's drivers sweep memoryless Poisson grids; production
// pressure is diurnal, bursty and trending. A ScenarioSpec assigns each
// workload class an ArrivalShape — a possibly time-varying arrival-rate
// function — plus a relation-selection mode, generalizing
// bench_workload_changes' hand-rolled class alternation into a
// first-class workload citizen.
//
// Shapes:
//   kConstant  rate r (rate 0 = class silent) — plain Poisson.
//   kDiurnal   rate(t) = r * (1 + amp * sin(2*pi*t/period)).
//   kFlash     base rate, stepped to base*mult over [at, at+dur], then
//              exponentially decaying back with time constant `decay`
//              (flash crowd).
//   kMarkov    two-state Markov-modulated Poisson process: rate_lo /
//              rate_hi with exponential sojourns of mean sojourn_lo /
//              sojourn_hi (correlated bursts).
//   kScript    piecewise-constant rate steps (at, rate); the last step's
//              rate holds forever. Scripted class-mix shifts — rate 0
//              segments reproduce Source::Deactivate exactly, including
//              the orphaned inter-arrival draw at each segment end.
//
// Time-varying shapes generate by Lewis-Shedler thinning against the
// shape's maximum rate; piecewise-constant shapes draw directly. All
// randomness flows through forked Rng streams in a fixed order, so the
// same (spec, workload, seed) is bit-reproducible — and RenderTrace and
// ScenarioSource share the per-class ArrivalProcess machinery, so
// rendering a scenario to a `.rtqt` trace and replaying it yields the
// identical engine trajectory as generating live.

#ifndef RTQ_WORKLOAD_SCENARIO_H_
#define RTQ_WORKLOAD_SCENARIO_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "common/types.h"
#include "exec/cost_model.h"
#include "model/disk_geometry.h"
#include "sim/simulator.h"
#include "storage/database.h"
#include "workload/arrival_source.h"
#include "workload/query_builder.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace rtq::workload {

enum class ShapeKind { kConstant, kDiurnal, kFlash, kMarkov, kScript };

struct ScriptStep {
  SimTime at = 0.0;
  double rate = 0.0;
};

struct ArrivalShape {
  ShapeKind kind = ShapeKind::kConstant;
  /// Base rate (queries/second) for kConstant / kDiurnal / kFlash.
  double rate = 0.0;
  // kDiurnal
  double amplitude = 0.6;
  double period = 7200.0;
  // kFlash
  double flash_at = 3600.0;
  double flash_duration = 900.0;
  double flash_multiplier = 8.0;
  double flash_decay = 450.0;
  // kMarkov
  double rate_lo = 0.0;
  double rate_hi = 0.0;
  double sojourn_lo = 900.0;
  double sojourn_hi = 300.0;
  // kScript: steps with non-decreasing `at`, the first at time 0.
  std::vector<ScriptStep> script;

  Status Validate() const;
};

struct ScenarioClassSpec {
  ArrivalShape shape;
  SelectionSpec selection;
};

struct ScenarioSpec {
  /// Canonical generator spec ("diurnal:rate=0.07,..."), used for
  /// display, BENCH_*.json config and the trace header.
  std::string name;
  /// One entry per workload class, aligned by index.
  std::vector<ScenarioClassSpec> classes;

  bool enabled() const { return !classes.empty(); }
  /// Checks shape parameters and that `classes` aligns 1:1 with the
  /// workload's classes.
  Status Validate(const WorkloadSpec& workload) const;
};

/// One class's arrival-time stream: successive calls return the
/// non-decreasing arrival times of the shape, consuming the arrivals /
/// chain Rngs deterministically. Returns nullopt once the shape can
/// never fire again (e.g. a script tail at rate 0).
class ArrivalProcess {
 public:
  ArrivalProcess(const ArrivalShape& shape, Rng arrivals);

  /// Installs the modulating-chain stream (kMarkov only).
  void SetChain(Rng chain);

  std::optional<SimTime> Next();

  /// Appends the full generator state (cursor, Markov chain phase, rng
  /// fingerprints) as space-separated fields to `*out`; two processes
  /// with equal digests produce identical arrival streams forever.
  void AppendDigest(std::string* out) const;

 private:
  double RateAt(SimTime t);
  std::optional<SimTime> NextThinned();
  std::optional<SimTime> NextScripted();

  ArrivalShape shape_;
  Rng arrivals_;
  Rng chain_;
  SimTime now_ = 0.0;
  // kScript cursor.
  size_t step_ = 0;
  // kMarkov chain state.
  bool chain_hi_ = false;
  SimTime chain_switch_ = 0.0;
  bool chain_started_ = false;
};

/// Live scenario generation through the engine's ArrivalSource seam.
/// Rng fork order (one arrivals + one selection stream per class, then
/// one chain stream per Markov class) is shared with RenderTrace, so
/// live generation and trace replay are bit-identical.
class ScenarioSource : public ArrivalSource {
 public:
  ScenarioSource(sim::Simulator* sim, const storage::Database* db,
                 const WorkloadSpec& workload, const ScenarioSpec& scenario,
                 const exec::ExecParams& exec_params,
                 const model::DiskParams& disk_params, double mips, Rng rng,
                 Sink sink);

  void Start() override;
  void Stop() override;
  int64_t generated() const override {
    return static_cast<int64_t>(next_id_);
  }
  void AppendStateDigest(std::vector<std::string>* out) const override;

  /// See ArrivalSource; only valid before Start().
  void set_first_query_id(QueryId id);

 private:
  void ScheduleNext(int32_t query_class);
  void EmitQuery(int32_t query_class);

  sim::Simulator* sim_;
  const storage::Database* db_;
  WorkloadSpec workload_;
  ScenarioSpec scenario_;
  exec::ExecParams exec_params_;
  model::DiskParams disk_params_;
  double mips_;
  Sink sink_;

  struct ClassState {
    std::unique_ptr<ArrivalProcess> process;
    Rng selection;
  };
  std::vector<ClassState> class_state_;
  QueryId next_id_ = 0;
  bool started_ = false;
  bool stopped_ = false;
  /// Shape time is relative to Start(): a source swapped in mid-run
  /// begins its shapes (flash_at, script steps, ...) at the swap instant
  /// rather than scheduling into the simulated past. Zero for sources
  /// started at time 0, so pre-existing runs are unchanged.
  SimTime t0_ = 0.0;
};

/// Renders a scenario to a trace: all arrivals with time <= horizon, in
/// emission order, with resolved relations, slack and stand-alone
/// estimates. Uses the same Rng fork/consumption order as
/// ScenarioSource, so replaying the result reproduces live generation
/// bit-identically.
Trace RenderTrace(const ScenarioSpec& scenario, const WorkloadSpec& workload,
                  const storage::Database& db,
                  const exec::ExecParams& exec_params,
                  const model::DiskParams& disk_params, double mips, Rng rng,
                  SimTime horizon);

}  // namespace rtq::workload

#endif  // RTQ_WORKLOAD_SCENARIO_H_
