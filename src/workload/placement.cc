#include "workload/placement.h"

#include <cstdio>
#include <cstdlib>

#include "common/fnv.h"

namespace rtq::workload {

namespace {

uint64_t HashId(QueryId id, uint64_t salt) {
  Fnv1a64 h;
  h.Update64(static_cast<uint64_t>(id));
  h.Update64(salt);
  return h.digest();
}

}  // namespace

StatusOr<ShardPlacement> ShardPlacement::Make(const std::string& spec,
                                              int32_t num_shards) {
  if (num_shards < 1)
    return Status::InvalidArgument("placement: num_shards must be >= 1");
  ShardPlacement p;
  p.num_shards_ = num_shards;

  std::string name = spec;
  std::string args;
  if (auto colon = spec.find(':'); colon != std::string::npos) {
    name = spec.substr(0, colon);
    args = spec.substr(colon + 1);
  }

  if (name == "hash" || name == "range") {
    if (!args.empty())
      return Status::InvalidArgument("placement \"" + name +
                                     "\" takes no arguments, got \"" + args +
                                     "\"");
    p.kind_ = name == "hash" ? Kind::kHash : Kind::kRange;
    p.spec_ = name;
    return p;
  }
  if (name == "skew") {
    p.kind_ = Kind::kSkew;
    if (!args.empty()) {
      if (args.rfind("hot=", 0) != 0)
        return Status::InvalidArgument("placement \"skew\": unknown argument \"" +
                                       args + "\" (want hot=F)");
      char* end = nullptr;
      const char* value = args.c_str() + 4;
      double hot = std::strtod(value, &end);
      if (end == value || *end != '\0' || !(hot > 0.0) || hot > 1.0)
        return Status::InvalidArgument(
            "placement \"skew\": hot must be in (0, 1], got \"" +
            args.substr(4) + "\"");
      p.hot_ = hot;
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), "skew:hot=%.2f", p.hot_);
    p.spec_ = buf;
    return p;
  }
  return Status::InvalidArgument("unknown placement \"" + name +
                                 "\" (want hash, range, or skew[:hot=F])");
}

int32_t ShardPlacement::ShardOf(QueryId id, int64_t relation,
                                int64_t num_relations) const {
  if (num_shards_ == 1) return 0;
  switch (kind_) {
    case Kind::kHash:
      return static_cast<int32_t>(HashId(id, 0) %
                                  static_cast<uint64_t>(num_shards_));
    case Kind::kRange: {
      if (relation < 0 || num_relations <= 0) return 0;
      if (relation >= num_relations) relation = num_relations - 1;
      return static_cast<int32_t>(relation * num_shards_ / num_relations);
    }
    case Kind::kSkew: {
      // 53 high bits give a uniform double in [0, 1); arrivals under the
      // hot threshold pin to shard 0, the rest rehash over the others.
      double u = static_cast<double>(HashId(id, 1) >> 11) * 0x1.0p-53;
      if (u < hot_) return 0;
      return 1 + static_cast<int32_t>(HashId(id, 2) %
                                      static_cast<uint64_t>(num_shards_ - 1));
    }
  }
  return 0;
}

}  // namespace rtq::workload
