// The shared arrival-construction path.
//
// Every arrival — live Poisson (source.h), live scenario generation
// (scenario.h), or trace replay (trace_source.h) — goes through the same
// two steps so that the three paths are behaviourally interchangeable:
//
//   1. DrawBlueprint consumes the class's selection Rng (slack ratio
//      first, then the operand relation picks — the draw order the
//      original Source used, which the golden-trajectory tests pin) and
//      produces a QueryBlueprint: the fully-resolved, randomness-free
//      description of one arrival.
//   2. BuildQuery turns a blueprint into the (QueryDescriptor, Operator)
//      pair the engine consumes, recomputing the stand-alone estimate
//      from the operand relations unless the blueprint carries one.
//
// A blueprint is exactly what one `.rtqt` trace record stores, so
// generation and replay are bit-identical by construction.

#ifndef RTQ_WORKLOAD_QUERY_BUILDER_H_
#define RTQ_WORKLOAD_QUERY_BUILDER_H_

#include <limits>
#include <memory>

#include "common/arena.h"
#include "common/rng.h"
#include "common/types.h"
#include "exec/cost_model.h"
#include "exec/operator.h"
#include "exec/query.h"
#include "model/disk_geometry.h"
#include "storage/database.h"
#include "workload/workload_spec.h"

namespace rtq::workload {

/// How DrawBlueprint picks operand relations from a relation group.
struct SelectionSpec {
  /// false: uniform over the group (the paper's model). true: a bounded
  /// Pareto(alpha) draw mapped onto the group's relations sorted by size
  /// ascending — mostly the small relations, with a heavy tail of the
  /// large ones ("Pareto-tailed operand sizes").
  bool pareto = false;
  double alpha = 1.5;
};

/// One fully-resolved arrival: no randomness left, ready to build.
struct QueryBlueprint {
  SimTime time = 0.0;
  int32_t query_class = -1;
  exec::QueryType type = exec::QueryType::kHashJoin;
  /// Operand relations: r is the inner/build (or sort) relation, already
  /// resolved to the smaller of the two picks for joins; s is the
  /// outer/probe relation (-1 for sorts).
  storage::RelationId r = -1;
  storage::RelationId s = -1;
  double slack = 1.0;
  /// Stand-alone time; NaN means "recompute from the relations" (the
  /// recomputation is a pure function, so stored and recomputed values
  /// agree for any trace this code generated).
  double standalone = std::numeric_limits<double>::quiet_NaN();
};

struct BuiltQuery {
  exec::QueryDescriptor desc;
  std::unique_ptr<exec::Operator> op;
};

/// Arena-owned variant: the operator lives in (and is finalized by) the
/// caller's arena, so building a query performs no heap allocation.
struct BuiltQueryRefs {
  exec::QueryDescriptor desc;
  exec::Operator* op = nullptr;
};

/// Draws one arrival for `cls` at time `now`, consuming `selection` in
/// the canonical order (slack, then relation picks).
QueryBlueprint DrawBlueprint(const QueryClassSpec& cls, int32_t query_class,
                             SimTime now, const storage::Database& db,
                             Rng* selection,
                             const SelectionSpec& sel = SelectionSpec{});

/// Materializes the (descriptor, operator) pair for a blueprint. `id` is
/// the engine-wide sequential query id.
BuiltQuery BuildQuery(const QueryBlueprint& blueprint, QueryId id,
                      const storage::Database& db,
                      const exec::ExecParams& exec_params,
                      const model::DiskParams& disk_params, double mips);

/// Same construction, but the operator (and its scratch) is placed in
/// `arena`. The descriptor computation is a pure function, so the two
/// variants produce bit-identical descriptors.
BuiltQueryRefs BuildQueryInArena(const QueryBlueprint& blueprint, QueryId id,
                                 const storage::Database& db,
                                 const exec::ExecParams& exec_params,
                                 const model::DiskParams& disk_params,
                                 double mips, Arena* arena);

}  // namespace rtq::workload

#endif  // RTQ_WORKLOAD_QUERY_BUILDER_H_
