// TraceSource: replays a `.rtqt` trace through the ArrivalSource seam.
//
// Replay consumes no randomness at all — every arrival is fully resolved
// in the trace — so a trace rendered from a scenario (RenderTrace) and
// replayed here reproduces the generating run's engine trajectory
// bit-identically. Create() validates the trace against the database
// layout and workload spec up front (class/type/relation consistency,
// stand-alone times matching the cost model), returning Status errors
// for any mismatch rather than failing mid-simulation.

#ifndef RTQ_WORKLOAD_TRACE_SOURCE_H_
#define RTQ_WORKLOAD_TRACE_SOURCE_H_

#include <memory>

#include "common/status.h"
#include "common/types.h"
#include "exec/cost_model.h"
#include "model/disk_geometry.h"
#include "sim/simulator.h"
#include "storage/database.h"
#include "workload/arrival_source.h"
#include "workload/trace.h"
#include "workload/workload_spec.h"

namespace rtq::workload {

class TraceSource : public ArrivalSource {
 public:
  /// Validates `trace` against the database and workload, then builds the
  /// replay source. Errors: class-count mismatch, class out of range,
  /// query type not matching the class, unknown relation ids, operands
  /// from the wrong relation groups, a join inner larger than its outer,
  /// or a stored stand-alone time that disagrees with the cost model.
  static StatusOr<std::unique_ptr<TraceSource>> Create(
      sim::Simulator* sim, const storage::Database* db,
      const WorkloadSpec& workload, const exec::ExecParams& exec_params,
      const model::DiskParams& disk_params, double mips,
      std::shared_ptr<const Trace> trace, Sink sink);

  void Start() override;
  void Stop() override { stopped_ = true; }
  int64_t generated() const override {
    return static_cast<int64_t>(next_id_);
  }
  void AppendStateDigest(std::vector<std::string>* out) const override;
  const Trace& trace() const { return *trace_; }

 private:
  TraceSource(sim::Simulator* sim, const storage::Database* db,
              const exec::ExecParams& exec_params,
              const model::DiskParams& disk_params, double mips,
              std::shared_ptr<const Trace> trace, Sink sink);

  void ScheduleNext();

  sim::Simulator* sim_;
  const storage::Database* db_;
  exec::ExecParams exec_params_;
  model::DiskParams disk_params_;
  double mips_;
  std::shared_ptr<const Trace> trace_;
  Sink sink_;

  size_t cursor_ = 0;
  QueryId next_id_ = 0;
  bool started_ = false;
  bool stopped_ = false;
};

}  // namespace rtq::workload

#endif  // RTQ_WORKLOAD_TRACE_SOURCE_H_
