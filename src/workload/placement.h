// Declustered query placement across shards (ROADMAP item 1).
//
// A sharded system (engine::ShardedRtdbs) generates the *same* arrival
// stream on every shard — same seed, same draws, same timestamps — and
// the placement function assigns each arrival to exactly one shard;
// every other shard drops it at its sink. Because routing is a pure
// function of the arrival's identity and operand data, the split is
// deterministic, independent of event interleaving, and byte-stable
// across replays: the property the sharded golden-trajectory pins test.
//
// Specs (ShardConfig::placement):
//   hash           uniform load balancing: FNV-1a hash of the query id.
//   range          data declustering: contiguous relation-id ranges, so
//                  a query lands on the shard owning its build relation.
//                  Load skew emerges from the workload's operand-size
//                  distribution, not from the router.
//   skew[:hot=F]   hotspot: fraction F of arrivals pin to shard 0, the
//                  rest spread uniformly over shards 1..N-1. F defaults
//                  to 0.5 and must be in (0, 1]; with one shard the spec
//                  degenerates to "everything on shard 0".

#ifndef RTQ_WORKLOAD_PLACEMENT_H_
#define RTQ_WORKLOAD_PLACEMENT_H_

#include <string>

#include "common/status.h"
#include "common/types.h"

namespace rtq::workload {

class ShardPlacement {
 public:
  enum class Kind { kHash, kRange, kSkew };

  /// Parses a placement spec for a cluster of `num_shards` shards.
  static StatusOr<ShardPlacement> Make(const std::string& spec,
                                       int32_t num_shards);

  /// The shard that owns this arrival, in [0, num_shards). `relation` is
  /// the blueprint's resolved build relation and `num_relations` the
  /// database's relation count; only range placement reads them.
  int32_t ShardOf(QueryId id, int64_t relation, int64_t num_relations) const;

  Kind kind() const { return kind_; }
  int32_t num_shards() const { return num_shards_; }
  /// Hot-shard traffic fraction (skew placement only).
  double hot_fraction() const { return hot_; }
  /// Canonical spec string ("hash", "range", "skew:hot=0.60").
  const std::string& spec() const { return spec_; }

 private:
  ShardPlacement() = default;

  Kind kind_ = Kind::kHash;
  int32_t num_shards_ = 1;
  double hot_ = 0.5;
  std::string spec_;
};

}  // namespace rtq::workload

#endif  // RTQ_WORKLOAD_PLACEMENT_H_
