#include "workload/workload_spec.h"

#include <string>

namespace rtq::workload {

Status WorkloadSpec::Validate(const storage::Database& db) const {
  if (classes.empty())
    return Status::InvalidArgument("workload needs at least one class");
  for (size_t i = 0; i < classes.size(); ++i) {
    const QueryClassSpec& cls = classes[i];
    std::string tag = "class " + std::to_string(i) + ": ";
    size_t want = cls.type == exec::QueryType::kHashJoin ? 2 : 1;
    if (cls.rel_groups.size() != want) {
      return Status::InvalidArgument(tag + "expected " +
                                     std::to_string(want) +
                                     " relation group(s)");
    }
    for (int32_t g : cls.rel_groups) {
      if (g < 0 || g >= db.num_groups())
        return Status::InvalidArgument(tag + "bad relation group " +
                                       std::to_string(g));
      if (db.RelationsInGroup(g).empty())
        return Status::InvalidArgument(tag + "empty relation group " +
                                       std::to_string(g));
    }
    if (cls.arrival_rate <= 0.0)
      return Status::InvalidArgument(tag + "arrival_rate must be > 0");
    if (cls.slack_min <= 0.0 || cls.slack_max < cls.slack_min)
      return Status::InvalidArgument(tag + "invalid slack range");
  }
  return Status::Ok();
}

}  // namespace rtq::workload
