// Workload model (paper Section 4.1, Table 2).
//
// A workload is a set of query classes. Each class draws operand
// relations from database relation groups, submits queries as a Poisson
// process, and assigns each query a slack ratio uniform in
// [slack_min, slack_max] that controls deadline tightness.
//
// Classes can start inactive and be (de)activated at run time; the
// workload-alternation experiment (Section 5.3, Figures 12-14) uses this
// to switch between the Small and Medium classes mid-run and watch PMM
// detect the change and re-adapt. Validate() checks a spec against the
// database layout (sorts name one relation group, joins two, groups
// exist, rates positive) before the Source will accept it — a config
// error fails fast at Rtdbs::Create rather than mid-simulation.

#ifndef RTQ_WORKLOAD_WORKLOAD_SPEC_H_
#define RTQ_WORKLOAD_WORKLOAD_SPEC_H_

#include <vector>

#include "common/status.h"
#include "exec/query.h"
#include "storage/database.h"

namespace rtq::workload {

struct QueryClassSpec {
  exec::QueryType type = exec::QueryType::kHashJoin;
  /// Operand relation group(s): one group for sorts, two for joins. A
  /// join picks one relation from each group; the smaller becomes the
  /// inner (building) relation.
  std::vector<int32_t> rel_groups;
  /// Poisson arrival rate in queries/second.
  double arrival_rate = 0.05;
  /// Slack-ratio range (uniform).
  double slack_min = 2.5;
  double slack_max = 7.5;
  /// Inactive classes generate no arrivals until activated (used by the
  /// workload-alternation experiment, Section 5.3).
  bool initially_active = true;
};

struct WorkloadSpec {
  std::vector<QueryClassSpec> classes;

  Status Validate(const storage::Database& db) const;
};

}  // namespace rtq::workload

#endif  // RTQ_WORKLOAD_WORKLOAD_SPEC_H_
