#include "workload/scenario.h"

#include <cmath>
#include <string>
#include <utility>

#include "common/check.h"
#include "common/fnv.h"

namespace rtq::workload {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/// The shape's maximum instantaneous rate — the thinning envelope.
double RateMax(const ArrivalShape& shape) {
  switch (shape.kind) {
    case ShapeKind::kConstant:
      return shape.rate;
    case ShapeKind::kDiurnal:
      return shape.rate * (1.0 + shape.amplitude);
    case ShapeKind::kFlash:
      return shape.rate * shape.flash_multiplier;
    case ShapeKind::kMarkov:
      return std::max(shape.rate_lo, shape.rate_hi);
    case ShapeKind::kScript:
      return 0.0;  // unused; scripts draw directly per segment
  }
  return 0.0;
}

}  // namespace

Status ArrivalShape::Validate() const {
  switch (kind) {
    case ShapeKind::kConstant:
      if (rate < 0.0)
        return Status::InvalidArgument("constant shape: rate must be >= 0");
      return Status::Ok();
    case ShapeKind::kDiurnal:
      if (rate <= 0.0)
        return Status::InvalidArgument("diurnal shape: rate must be > 0");
      if (amplitude < 0.0 || amplitude > 1.0)
        return Status::InvalidArgument(
            "diurnal shape: amplitude must be in [0, 1]");
      if (period <= 0.0)
        return Status::InvalidArgument("diurnal shape: period must be > 0");
      return Status::Ok();
    case ShapeKind::kFlash:
      if (rate <= 0.0)
        return Status::InvalidArgument("flash shape: rate must be > 0");
      if (flash_multiplier < 1.0)
        return Status::InvalidArgument(
            "flash shape: multiplier must be >= 1");
      if (flash_at < 0.0 || flash_duration < 0.0 || flash_decay <= 0.0)
        return Status::InvalidArgument(
            "flash shape: at/dur must be >= 0 and decay > 0");
      return Status::Ok();
    case ShapeKind::kMarkov:
      if (rate_lo < 0.0 || rate_hi < 0.0 ||
          std::max(rate_lo, rate_hi) <= 0.0)
        return Status::InvalidArgument(
            "markov shape: rates must be >= 0 with max > 0");
      if (sojourn_lo <= 0.0 || sojourn_hi <= 0.0)
        return Status::InvalidArgument(
            "markov shape: mean sojourns must be > 0");
      return Status::Ok();
    case ShapeKind::kScript:
      if (script.empty())
        return Status::InvalidArgument("script shape: no steps");
      if (script.front().at != 0.0)
        return Status::InvalidArgument(
            "script shape: first step must be at time 0");
      for (size_t i = 0; i < script.size(); ++i) {
        if (script[i].rate < 0.0)
          return Status::InvalidArgument(
              "script shape: rates must be >= 0");
        if (i > 0 && script[i].at <= script[i - 1].at)
          return Status::InvalidArgument(
              "script shape: step times must be strictly increasing");
      }
      return Status::Ok();
  }
  return Status::InvalidArgument("script shape: unknown kind");
}

Status ScenarioSpec::Validate(const WorkloadSpec& workload) const {
  if (classes.size() != workload.classes.size())
    return Status::InvalidArgument(
        "scenario '" + name + "' addresses " +
        std::to_string(classes.size()) + " classes, workload has " +
        std::to_string(workload.classes.size()));
  for (size_t i = 0; i < classes.size(); ++i) {
    Status st = classes[i].shape.Validate();
    if (!st.ok())
      return Status::InvalidArgument("scenario '" + name + "' class " +
                                     std::to_string(i) + ": " +
                                     st.message());
    if (classes[i].selection.pareto && classes[i].selection.alpha <= 0.0)
      return Status::InvalidArgument("scenario '" + name + "' class " +
                                     std::to_string(i) +
                                     ": pareto alpha must be > 0");
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// ArrivalProcess
// ---------------------------------------------------------------------------

ArrivalProcess::ArrivalProcess(const ArrivalShape& shape, Rng arrivals)
    : shape_(shape), arrivals_(std::move(arrivals)), chain_(0) {}

void ArrivalProcess::SetChain(Rng chain) { chain_ = std::move(chain); }

double ArrivalProcess::RateAt(SimTime t) {
  switch (shape_.kind) {
    case ShapeKind::kDiurnal:
      return shape_.rate *
             (1.0 + shape_.amplitude * std::sin(kTwoPi * t / shape_.period));
    case ShapeKind::kFlash: {
      if (t < shape_.flash_at) return shape_.rate;
      SimTime burst_end = shape_.flash_at + shape_.flash_duration;
      if (t < burst_end) return shape_.rate * shape_.flash_multiplier;
      return shape_.rate * (1.0 + (shape_.flash_multiplier - 1.0) *
                                      std::exp(-(t - burst_end) /
                                               shape_.flash_decay));
    }
    case ShapeKind::kMarkov: {
      if (!chain_started_) {
        chain_started_ = true;
        chain_hi_ = false;
        chain_switch_ = chain_.Exponential(1.0 / shape_.sojourn_lo);
      }
      while (chain_switch_ <= t) {
        chain_hi_ = !chain_hi_;
        chain_switch_ += chain_.Exponential(
            1.0 / (chain_hi_ ? shape_.sojourn_hi : shape_.sojourn_lo));
      }
      return chain_hi_ ? shape_.rate_hi : shape_.rate_lo;
    }
    case ShapeKind::kConstant:
    case ShapeKind::kScript:
      break;  // handled without thinning
  }
  return shape_.rate;
}

std::optional<SimTime> ArrivalProcess::NextThinned() {
  double rate_max = RateMax(shape_);
  if (rate_max <= 0.0) return std::nullopt;
  while (true) {
    now_ += arrivals_.Exponential(rate_max);
    double u = arrivals_.NextDouble();
    if (u * rate_max < RateAt(now_)) return now_;
  }
}

std::optional<SimTime> ArrivalProcess::NextScripted() {
  while (true) {
    // Advance to the segment containing now_.
    while (step_ + 1 < shape_.script.size() &&
           shape_.script[step_ + 1].at <= now_) {
      ++step_;
    }
    double rate = shape_.script[step_].rate;
    bool last = step_ + 1 == shape_.script.size();
    if (rate <= 0.0) {
      if (last) return std::nullopt;  // silent forever
      now_ = shape_.script[step_ + 1].at;
      ++step_;
      continue;
    }
    SimTime candidate = now_ + arrivals_.Exponential(rate);
    SimTime segment_end =
        last ? kNoDeadline : shape_.script[step_ + 1].at;
    if (candidate <= segment_end) {
      now_ = candidate;
      return now_;
    }
    // The draw is consumed but falls past the segment end — exactly the
    // orphaned arrival event a Source::Deactivate at segment_end leaves
    // behind. Resume at the next segment.
    now_ = segment_end;
    ++step_;
  }
}

std::optional<SimTime> ArrivalProcess::Next() {
  switch (shape_.kind) {
    case ShapeKind::kConstant:
      if (shape_.rate <= 0.0) return std::nullopt;
      now_ += arrivals_.Exponential(shape_.rate);
      return now_;
    case ShapeKind::kScript:
      return NextScripted();
    case ShapeKind::kDiurnal:
    case ShapeKind::kFlash:
    case ShapeKind::kMarkov:
      return NextThinned();
  }
  return std::nullopt;
}

void ArrivalProcess::AppendDigest(std::string* out) const {
  *out += FormatDouble(now_);
  *out += " " + std::to_string(step_);
  *out += " " + std::to_string(chain_started_ ? 1 : 0);
  *out += " " + std::to_string(chain_hi_ ? 1 : 0);
  *out += " " + FormatDouble(chain_switch_);
  *out += " " + std::to_string(Fnv1a64Hash(arrivals_.StateString()));
  *out += " " + std::to_string(Fnv1a64Hash(chain_.StateString()));
}

// ---------------------------------------------------------------------------
// Shared per-class stream construction: fork order is the contract that
// makes ScenarioSource (live) and RenderTrace (offline) bit-identical.
// The first loop mirrors Source's ctor (arrivals, then selection, per
// class in index order); Markov chain streams fork afterwards so plain
// shapes keep Source-compatible streams.
// ---------------------------------------------------------------------------

namespace {

struct ClassStreams {
  std::vector<std::unique_ptr<ArrivalProcess>> processes;
  std::vector<Rng> selections;
};

ClassStreams BuildStreams(const ScenarioSpec& scenario, Rng* rng) {
  ClassStreams out;
  for (const ScenarioClassSpec& cls : scenario.classes) {
    out.processes.push_back(
        std::make_unique<ArrivalProcess>(cls.shape, rng->Fork()));
    out.selections.push_back(rng->Fork());
  }
  for (size_t i = 0; i < scenario.classes.size(); ++i) {
    if (scenario.classes[i].shape.kind == ShapeKind::kMarkov)
      out.processes[i]->SetChain(rng->Fork());
  }
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// ScenarioSource
// ---------------------------------------------------------------------------

ScenarioSource::ScenarioSource(sim::Simulator* sim,
                               const storage::Database* db,
                               const WorkloadSpec& workload,
                               const ScenarioSpec& scenario,
                               const exec::ExecParams& exec_params,
                               const model::DiskParams& disk_params,
                               double mips, Rng rng, Sink sink)
    : sim_(sim),
      db_(db),
      workload_(workload),
      scenario_(scenario),
      exec_params_(exec_params),
      disk_params_(disk_params),
      mips_(mips),
      sink_(std::move(sink)) {
  RTQ_CHECK(sim != nullptr && db != nullptr);
  RTQ_CHECK_MSG(workload_.Validate(*db).ok(), "invalid workload spec");
  RTQ_CHECK_MSG(scenario_.Validate(workload_).ok(), "invalid scenario spec");
  RTQ_CHECK(sink_ != nullptr);
  ClassStreams streams = BuildStreams(scenario_, &rng);
  class_state_.reserve(scenario_.classes.size());
  for (size_t i = 0; i < scenario_.classes.size(); ++i) {
    class_state_.push_back(ClassState{std::move(streams.processes[i]),
                                      std::move(streams.selections[i])});
  }
}

void ScenarioSource::Start() {
  RTQ_CHECK_MSG(!started_, "ScenarioSource started twice");
  started_ = true;
  t0_ = sim_->Now();
  for (size_t i = 0; i < class_state_.size(); ++i) {
    ScheduleNext(static_cast<int32_t>(i));
  }
}

void ScenarioSource::Stop() { stopped_ = true; }

void ScenarioSource::set_first_query_id(QueryId id) {
  RTQ_CHECK_MSG(!started_, "set_first_query_id after Start");
  next_id_ = id;
}

void ScenarioSource::AppendStateDigest(std::vector<std::string>* out) const {
  out->push_back("source scenario " + std::to_string(next_id_) + " " +
                 FormatDouble(t0_) + " " +
                 std::to_string(stopped_ ? 1 : 0));
  for (size_t i = 0; i < class_state_.size(); ++i) {
    std::string line = "source.class " + std::to_string(i) + " ";
    class_state_[i].process->AppendDigest(&line);
    line += " " + std::to_string(
                      Fnv1a64Hash(class_state_[i].selection.StateString()));
    out->push_back(std::move(line));
  }
}

void ScenarioSource::ScheduleNext(int32_t query_class) {
  std::optional<SimTime> next =
      class_state_[static_cast<size_t>(query_class)].process->Next();
  if (!next.has_value()) return;
  sim_->ScheduleAt(t0_ + *next, [this, query_class] {
    if (stopped_) return;
    EmitQuery(query_class);
    ScheduleNext(query_class);
  });
}

void ScenarioSource::EmitQuery(int32_t query_class) {
  ClassState& state = class_state_[static_cast<size_t>(query_class)];
  QueryBlueprint bp = DrawBlueprint(
      workload_.classes[static_cast<size_t>(query_class)], query_class,
      sim_->Now(), *db_, &state.selection,
      scenario_.classes[static_cast<size_t>(query_class)].selection);
  sink_(bp, next_id_++);
}

// ---------------------------------------------------------------------------
// RenderTrace
// ---------------------------------------------------------------------------

Trace RenderTrace(const ScenarioSpec& scenario, const WorkloadSpec& workload,
                  const storage::Database& db,
                  const exec::ExecParams& exec_params,
                  const model::DiskParams& disk_params, double mips, Rng rng,
                  SimTime horizon) {
  RTQ_CHECK_MSG(scenario.Validate(workload).ok(), "invalid scenario spec");
  Trace trace;
  trace.num_classes = static_cast<int32_t>(workload.classes.size());
  trace.scenario = scenario.name;

  ClassStreams streams = BuildStreams(scenario, &rng);
  size_t n = scenario.classes.size();
  std::vector<std::optional<SimTime>> next(n);
  for (size_t i = 0; i < n; ++i) next[i] = streams.processes[i]->Next();

  while (true) {
    // Earliest pending arrival within the horizon; ties (measure-zero
    // with continuous inter-arrival draws) break toward the lower class
    // index, matching the event calendar's FIFO order for equal keys.
    int pick = -1;
    for (size_t i = 0; i < n; ++i) {
      if (!next[i].has_value() || *next[i] > horizon) continue;
      if (pick < 0 || *next[i] < *next[static_cast<size_t>(pick)])
        pick = static_cast<int>(i);
    }
    if (pick < 0) break;
    auto c = static_cast<size_t>(pick);
    SimTime t = *next[c];

    QueryBlueprint bp =
        DrawBlueprint(workload.classes[c], pick, t, db,
                      &streams.selections[c], scenario.classes[c].selection);
    BuiltQuery built =
        BuildQuery(bp, static_cast<QueryId>(trace.records.size()), db,
                   exec_params, disk_params, mips);

    TraceRecord record;
    record.time = t;
    record.query_class = pick;
    record.type = bp.type;
    record.r = bp.r;
    record.s = bp.s;
    record.slack = bp.slack;
    record.standalone = built.desc.standalone_time;
    trace.records.push_back(record);

    next[c] = streams.processes[c]->Next();
  }
  return trace;
}

}  // namespace rtq::workload
