// String-keyed registry of scenario generators + the spec grammar.
//
// A scenario generator is named by a spec string, mirroring the policy
// registry's grammar:
//
//   spec  := name [":" args]
//   name  := [a-z][a-z0-9-]*        (registry key, e.g. "diurnal")
//   args  := k=v ["," k=v]*         (double-valued parameters)
//
// Examples: "diurnal", "flash:mult=12,at=600", "mixshift:intervals=6".
// Every factory resolves defaults and writes the fully-parameterized
// canonical spec into ScenarioSpec::name, so Create(Create(s).name)
// round-trips to the identical scenario. Factories self-register from
// their own translation units via RTQ_REGISTER_SCENARIO (the built-in
// catalog lives in scenario_catalog.cc). Malformed specs, unknown names
// and unknown parameter keys surface as Status errors, never crashes.

#ifndef RTQ_WORKLOAD_SCENARIO_REGISTRY_H_
#define RTQ_WORKLOAD_SCENARIO_REGISTRY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "workload/scenario.h"

namespace rtq::workload {

/// The parsed "k=v,k=v" argument list of a scenario spec. Factories
/// Take() the keys they understand (with defaults) and call Finish(),
/// which rejects any key left over — typos fail loudly.
class ScenarioArgs {
 public:
  static StatusOr<ScenarioArgs> Parse(const std::string& args);

  /// Consumes `key`, returning its value or `fallback` when absent.
  double Take(const std::string& key, double fallback);

  /// Ok iff every parsed key was consumed.
  Status Finish() const;

 private:
  std::map<std::string, double> values_;
};

class ScenarioRegistry {
 public:
  /// Builds the scenario for one parsed argument list. The factory sets
  /// ScenarioSpec::name to the canonical fully-parameterized spec.
  using Factory = std::function<StatusOr<ScenarioSpec>(ScenarioArgs)>;

  /// The process-wide registry all spec strings resolve against.
  static ScenarioRegistry& Global();

  /// Registers `factory` under `name` with a one-line usage note. Fails
  /// on duplicate or ill-formed names.
  Status Register(const std::string& name, std::string help, Factory factory);

  bool Contains(const std::string& name) const;

  /// Parses `spec` ("name[:k=v,...]") and invokes the named factory.
  StatusOr<ScenarioSpec> Create(const std::string& spec) const;

  /// Registered names in deterministic (lexicographic) order.
  std::vector<std::string> Names() const;

  /// One "name — help" line per registered generator, in Names() order.
  std::string Help() const;

 private:
  struct Entry {
    std::string help;
    Factory factory;
  };
  std::map<std::string, Entry> entries_;
};

/// Self-registration hook: construct one at namespace scope in the
/// generator's translation unit (see RTQ_REGISTER_SCENARIO).
class ScenarioRegistrar {
 public:
  ScenarioRegistrar(const std::string& name, std::string help,
                    ScenarioRegistry::Factory factory);
};

#define RTQ_SCENARIO_CONCAT_INNER(a, b) a##b
#define RTQ_SCENARIO_CONCAT(a, b) RTQ_SCENARIO_CONCAT_INNER(a, b)

/// Registers `factory` (a ScenarioRegistry::Factory expression) under
/// `name` when the enclosing translation unit is linked in.
#define RTQ_REGISTER_SCENARIO(name, help, factory)                 \
  static const ::rtq::workload::ScenarioRegistrar RTQ_SCENARIO_CONCAT( \
      rtq_scenario_registrar_, __COUNTER__)(name, help, factory)

}  // namespace rtq::workload

#endif  // RTQ_WORKLOAD_SCENARIO_REGISTRY_H_
