// The built-in scenario catalog. Every generator targets the two-class
// Medium/Small multiclass workload (class 0 = Medium joins, class 1 =
// Small joins) and writes its fully-resolved parameters back into the
// canonical spec name, so the same string regenerates the identical
// scenario.

#include "workload/scenario_registry.h"
#include "workload/trace.h"

namespace rtq::workload {

namespace {

std::string Param(const std::string& key, double v) {
  return key + "=" + FormatDouble(v);
}

ArrivalShape Constant(double rate) {
  ArrivalShape shape;
  shape.kind = ShapeKind::kConstant;
  shape.rate = rate;
  return shape;
}

// diurnal: Medium load swells and ebbs sinusoidally while a light
// constant Small stream rides along.
StatusOr<ScenarioSpec> MakeDiurnal(ScenarioArgs args) {
  double rate = args.Take("rate", 0.07);
  double amp = args.Take("amp", 0.6);
  double period = args.Take("period", 7200.0);
  double small = args.Take("small", 0.5);
  Status st = args.Finish();
  if (!st.ok()) return st;

  ScenarioSpec spec;
  spec.name = "diurnal:" + Param("rate", rate) + "," + Param("amp", amp) +
              "," + Param("period", period) + "," + Param("small", small);
  ArrivalShape medium;
  medium.kind = ShapeKind::kDiurnal;
  medium.rate = rate;
  medium.amplitude = amp;
  medium.period = period;
  spec.classes.push_back(ScenarioClassSpec{medium, SelectionSpec{}});
  spec.classes.push_back(ScenarioClassSpec{Constant(small), SelectionSpec{}});
  return spec;
}

// flash: a steady mixed load until the Small stream steps to mult× its
// base rate for `dur` seconds, then decays back exponentially.
StatusOr<ScenarioSpec> MakeFlash(ScenarioArgs args) {
  double rate = args.Take("rate", 0.5);
  double mult = args.Take("mult", 8.0);
  double at = args.Take("at", 3600.0);
  double dur = args.Take("dur", 900.0);
  double decay = args.Take("decay", 450.0);
  double medium = args.Take("medium", 0.05);
  Status st = args.Finish();
  if (!st.ok()) return st;

  ScenarioSpec spec;
  spec.name = "flash:" + Param("rate", rate) + "," + Param("mult", mult) +
              "," + Param("at", at) + "," + Param("dur", dur) + "," +
              Param("decay", decay) + "," + Param("medium", medium);
  ArrivalShape small;
  small.kind = ShapeKind::kFlash;
  small.rate = rate;
  small.flash_at = at;
  small.flash_duration = dur;
  small.flash_multiplier = mult;
  small.flash_decay = decay;
  spec.classes.push_back(ScenarioClassSpec{Constant(medium), SelectionSpec{}});
  spec.classes.push_back(ScenarioClassSpec{small, SelectionSpec{}});
  return spec;
}

// pareto: Medium-only Poisson stream whose operand relations follow a
// bounded Pareto over the group's sizes — mostly small operands with a
// heavy tail of the large ones.
StatusOr<ScenarioSpec> MakePareto(ScenarioArgs args) {
  double rate = args.Take("rate", 0.07);
  double alpha = args.Take("alpha", 1.5);
  Status st = args.Finish();
  if (!st.ok()) return st;

  ScenarioSpec spec;
  spec.name = "pareto:" + Param("rate", rate) + "," + Param("alpha", alpha);
  SelectionSpec sel;
  sel.pareto = true;
  sel.alpha = alpha;
  spec.classes.push_back(ScenarioClassSpec{Constant(rate), sel});
  spec.classes.push_back(ScenarioClassSpec{Constant(0.0), SelectionSpec{}});
  return spec;
}

// burst: Small arrivals come from a two-state Markov-modulated Poisson
// process — long quiet stretches at `lo` punctuated by correlated bursts
// at `hi` — over a constant Medium background.
StatusOr<ScenarioSpec> MakeBurst(ScenarioArgs args) {
  double lo = args.Take("lo", 0.1);
  double hi = args.Take("hi", 2.5);
  double tlo = args.Take("tlo", 900.0);
  double thi = args.Take("thi", 300.0);
  double medium = args.Take("medium", 0.05);
  Status st = args.Finish();
  if (!st.ok()) return st;

  ScenarioSpec spec;
  spec.name = "burst:" + Param("lo", lo) + "," + Param("hi", hi) + "," +
              Param("tlo", tlo) + "," + Param("thi", thi) + "," +
              Param("medium", medium);
  ArrivalShape small;
  small.kind = ShapeKind::kMarkov;
  small.rate_lo = lo;
  small.rate_hi = hi;
  small.sojourn_lo = tlo;
  small.sojourn_hi = thi;
  spec.classes.push_back(ScenarioClassSpec{Constant(medium), SelectionSpec{}});
  spec.classes.push_back(ScenarioClassSpec{small, SelectionSpec{}});
  return spec;
}

// mixshift: the workload-alternation experiment (paper Section 5.3) as a
// scripted scenario — `intervals` equal intervals with Medium active on
// even intervals and Small on odd ones, both silent afterwards. The
// scripted rate-0 segments reproduce Source::Deactivate draw-for-draw,
// so this is trajectory-identical to the hand-rolled alternation it
// replaces (pinned by test_scenario_equivalence).
StatusOr<ScenarioSpec> MakeMixShift(ScenarioArgs args) {
  double interval = args.Take("interval", 3600.0);
  double intervals_arg = args.Take("intervals", 6.0);
  double rate0 = args.Take("rate0", 0.07);
  double rate1 = args.Take("rate1", 2.8);
  Status st = args.Finish();
  if (!st.ok()) return st;
  auto intervals = static_cast<int>(intervals_arg);
  if (interval <= 0.0 || intervals < 1 ||
      intervals_arg != static_cast<double>(intervals))
    return Status::InvalidArgument(
        "mixshift: interval must be > 0 and intervals a positive integer");

  ScenarioSpec spec;
  spec.name = "mixshift:" + Param("interval", interval) + "," +
              Param("intervals", intervals_arg) + "," +
              Param("rate0", rate0) + "," + Param("rate1", rate1);
  ArrivalShape medium;
  medium.kind = ShapeKind::kScript;
  ArrivalShape small;
  small.kind = ShapeKind::kScript;
  for (int k = 0; k < intervals; ++k) {
    SimTime at = k * interval;
    medium.script.push_back(ScriptStep{at, k % 2 == 0 ? rate0 : 0.0});
    small.script.push_back(ScriptStep{at, k % 2 == 0 ? 0.0 : rate1});
  }
  medium.script.push_back(ScriptStep{intervals * interval, 0.0});
  small.script.push_back(ScriptStep{intervals * interval, 0.0});
  spec.classes.push_back(ScenarioClassSpec{medium, SelectionSpec{}});
  spec.classes.push_back(ScenarioClassSpec{small, SelectionSpec{}});
  return spec;
}

RTQ_REGISTER_SCENARIO(
    "diurnal",
    "diurnal[:rate=,amp=,period=,small=] — sinusoidal Medium rate over a "
    "constant Small stream",
    MakeDiurnal);
RTQ_REGISTER_SCENARIO(
    "flash",
    "flash[:rate=,mult=,at=,dur=,decay=,medium=] — Small flash crowd: "
    "step burst then exponential decay",
    MakeFlash);
RTQ_REGISTER_SCENARIO(
    "pareto",
    "pareto[:rate=,alpha=] — Medium-only stream with bounded-Pareto "
    "operand sizes",
    MakePareto);
RTQ_REGISTER_SCENARIO(
    "burst",
    "burst[:lo=,hi=,tlo=,thi=,medium=] — Markov-modulated Small bursts "
    "over a constant Medium stream",
    MakeBurst);
RTQ_REGISTER_SCENARIO(
    "mixshift",
    "mixshift[:interval=,intervals=,rate0=,rate1=] — scripted Medium/"
    "Small class alternation (Section 5.3)",
    MakeMixShift);

}  // namespace

}  // namespace rtq::workload
