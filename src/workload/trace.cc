#include "workload/trace.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <sstream>

namespace rtq::workload {

namespace {

bool DoubleEq(double a, double b) {
  if (std::isnan(a) && std::isnan(b)) return true;
  return a == b;
}

Status LineError(size_t line, const std::string& what) {
  return Status::InvalidArgument("trace line " + std::to_string(line) + ": " +
                                 what);
}

/// Splits a line into whitespace-separated tokens.
std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

/// Strict whole-token strtod; rejects empty, partial, nan and inf.
bool ParseFiniteDouble(const std::string& token, double* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(token.c_str(), &end);
  if (end != token.c_str() + token.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

bool ParseInt64(const std::string& token, int64_t* out) {
  if (token.empty()) return false;
  char* end = nullptr;
  long long v = std::strtoll(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) return false;
  *out = v;
  return true;
}

bool ParseUint64(const std::string& token, uint64_t* out) {
  if (token.empty() || token[0] == '-') return false;
  char* end = nullptr;
  unsigned long long v = std::strtoull(token.c_str(), &end, 10);
  if (end != token.c_str() + token.size()) return false;
  *out = v;
  return true;
}

}  // namespace

bool operator==(const TraceRecord& a, const TraceRecord& b) {
  return DoubleEq(a.time, b.time) && a.query_class == b.query_class &&
         a.type == b.type && a.r == b.r && a.s == b.s &&
         DoubleEq(a.slack, b.slack) && DoubleEq(a.standalone, b.standalone);
}
bool operator!=(const TraceRecord& a, const TraceRecord& b) {
  return !(a == b);
}

bool operator==(const Trace& a, const Trace& b) {
  return a.version == b.version && a.num_classes == b.num_classes &&
         a.scenario == b.scenario && a.seed == b.seed &&
         a.records == b.records;
}
bool operator!=(const Trace& a, const Trace& b) { return !(a == b); }

std::string FormatDouble(double v) {
  char buf[40];
  for (int precision = 1; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

std::string SerializeTrace(const Trace& trace) {
  std::string out;
  out += "rtqt " + std::to_string(trace.version) + "\n";
  out += "classes " + std::to_string(trace.num_classes) + "\n";
  out += "scenario " +
         (trace.scenario.empty() ? std::string("-") : trace.scenario) + "\n";
  out += "seed " + std::to_string(trace.seed) + "\n";
  out += "records " + std::to_string(trace.records.size()) + "\n";
  for (const TraceRecord& r : trace.records) {
    out += "q " + FormatDouble(r.time) + " " +
           std::to_string(r.query_class) + " " +
           (r.type == exec::QueryType::kHashJoin ? "join" : "sort") + " " +
           std::to_string(r.r) + " " +
           (r.s < 0 ? std::string("-") : std::to_string(r.s)) + " " +
           FormatDouble(r.slack) + " " +
           (std::isnan(r.standalone) ? std::string("-")
                                     : FormatDouble(r.standalone)) +
           "\n";
  }
  return out;
}

StatusOr<Trace> ParseTrace(const std::string& text) {
  Trace trace;
  std::istringstream in(text);
  std::string line;
  size_t line_no = 0;

  // Header fields, in order; `records` declares the expected count.
  bool saw_version = false;
  bool saw_classes = false;
  bool saw_scenario = false;
  bool saw_seed = false;
  int64_t declared_records = -1;
  SimTime last_time = 0.0;

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    std::vector<std::string> tokens = Tokenize(line);
    if (tokens.empty() || tokens[0][0] == '#') continue;
    const std::string& tag = tokens[0];

    if (!saw_version) {
      if (tag != "rtqt" || tokens.size() != 2)
        return LineError(line_no, "expected version header 'rtqt 1'");
      int64_t version = 0;
      if (!ParseInt64(tokens[1], &version))
        return LineError(line_no, "bad version number '" + tokens[1] + "'");
      if (version != 1)
        return LineError(line_no, "unsupported trace version " +
                                      std::to_string(version));
      trace.version = static_cast<int32_t>(version);
      saw_version = true;
      continue;
    }

    if (tag == "classes") {
      int64_t n = 0;
      if (saw_classes || tokens.size() != 2 || !ParseInt64(tokens[1], &n) ||
          n <= 0)
        return LineError(line_no, "bad 'classes' header");
      trace.num_classes = static_cast<int32_t>(n);
      saw_classes = true;
      continue;
    }
    if (tag == "scenario") {
      if (saw_scenario || tokens.size() < 2)
        return LineError(line_no, "bad 'scenario' header");
      // The scenario spec is the rest of the line (specs contain no
      // spaces today, but keep the field future-proof).
      size_t pos = line.find("scenario");
      std::string rest = line.substr(pos + 8);
      size_t start = rest.find_first_not_of(" \t");
      trace.scenario = start == std::string::npos ? "" : rest.substr(start);
      if (trace.scenario == "-") trace.scenario.clear();
      saw_scenario = true;
      continue;
    }
    if (tag == "seed") {
      if (saw_seed || tokens.size() != 2 ||
          !ParseUint64(tokens[1], &trace.seed))
        return LineError(line_no, "bad 'seed' header");
      saw_seed = true;
      continue;
    }
    if (tag == "records") {
      if (declared_records >= 0 || tokens.size() != 2 ||
          !ParseInt64(tokens[1], &declared_records) || declared_records < 0)
        return LineError(line_no, "bad 'records' header");
      continue;
    }

    if (tag != "q")
      return LineError(line_no, "unknown directive '" + tag + "'");
    if (!saw_classes || !saw_scenario || !saw_seed || declared_records < 0)
      return LineError(line_no, "record before complete header");
    if (tokens.size() != 8)
      return LineError(line_no,
                       "truncated record (want 8 tokens, got " +
                           std::to_string(tokens.size()) + ")");

    TraceRecord r;
    if (!ParseFiniteDouble(tokens[1], &r.time) || r.time < 0.0)
      return LineError(line_no, "bad arrival time '" + tokens[1] + "'");
    if (!trace.records.empty() && r.time < last_time)
      return LineError(line_no, "out-of-order arrival time");
    last_time = r.time;

    int64_t cls = 0;
    if (!ParseInt64(tokens[2], &cls) || cls < 0 || cls >= trace.num_classes)
      return LineError(line_no, "unknown class '" + tokens[2] + "'");
    r.query_class = static_cast<int32_t>(cls);

    if (tokens[3] == "join") {
      r.type = exec::QueryType::kHashJoin;
    } else if (tokens[3] == "sort") {
      r.type = exec::QueryType::kExternalSort;
    } else {
      return LineError(line_no, "unknown query type '" + tokens[3] + "'");
    }

    if (!ParseInt64(tokens[4], &r.r) || r.r < 0)
      return LineError(line_no, "bad relation id '" + tokens[4] + "'");
    if (tokens[5] == "-") {
      if (r.type == exec::QueryType::kHashJoin)
        return LineError(line_no, "join record missing outer relation");
      r.s = -1;
    } else {
      if (!ParseInt64(tokens[5], &r.s) || r.s < 0)
        return LineError(line_no, "bad relation id '" + tokens[5] + "'");
      if (r.type == exec::QueryType::kExternalSort)
        return LineError(line_no, "sort record with outer relation");
    }

    if (!ParseFiniteDouble(tokens[6], &r.slack) || r.slack <= 0.0)
      return LineError(line_no, "bad slack ratio '" + tokens[6] + "'");
    if (tokens[7] != "-") {
      if (!ParseFiniteDouble(tokens[7], &r.standalone) || r.standalone <= 0.0)
        return LineError(line_no,
                         "bad stand-alone time '" + tokens[7] + "'");
    }
    trace.records.push_back(r);
  }

  if (!saw_version)
    return Status::InvalidArgument("trace: missing 'rtqt 1' version header");
  if (!saw_classes || !saw_scenario || !saw_seed || declared_records < 0)
    return Status::InvalidArgument("trace: incomplete header");
  if (static_cast<int64_t>(trace.records.size()) != declared_records)
    return Status::InvalidArgument(
        "trace: truncated — header declares " +
        std::to_string(declared_records) + " records, found " +
        std::to_string(trace.records.size()));
  return trace;
}

Status WriteTraceFile(const Trace& trace, const std::string& path) {
  std::error_code ec;
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) return Status::Internal("mkdir failed: " + ec.message());
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  std::string data = SerializeTrace(trace);
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size()) return Status::Internal("short write to " + path);
  return Status::Ok();
}

StatusOr<Trace> ReadTraceFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return Status::NotFound("cannot open " + path);
  std::string data;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) data.append(buf, n);
  std::fclose(f);
  return ParseTrace(data);
}

}  // namespace rtq::workload
