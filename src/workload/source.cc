#include "workload/source.h"

#include <utility>

#include "common/check.h"
#include "exec/external_sort.h"
#include "exec/hash_join.h"
#include "exec/standalone.h"

namespace rtq::workload {

Source::Source(sim::Simulator* sim, const storage::Database* db,
               const WorkloadSpec& spec,
               const exec::ExecParams& exec_params,
               const model::DiskParams& disk_params, double mips, Rng rng,
               Sink sink)
    : sim_(sim),
      db_(db),
      spec_(spec),
      exec_params_(exec_params),
      disk_params_(disk_params),
      mips_(mips),
      sink_(std::move(sink)) {
  RTQ_CHECK(sim != nullptr && db != nullptr);
  RTQ_CHECK_MSG(spec_.Validate(*db).ok(), "invalid workload spec");
  RTQ_CHECK(sink_ != nullptr);
  class_state_.reserve(spec_.classes.size());
  for (const QueryClassSpec& cls : spec_.classes) {
    // Braced init evaluates the two Fork() calls left to right.
    class_state_.push_back(
        ClassState{cls.initially_active, 0, rng.Fork(), rng.Fork()});
  }
}

void Source::Start() {
  RTQ_CHECK_MSG(!started_, "Source started twice");
  started_ = true;
  for (size_t i = 0; i < class_state_.size(); ++i) {
    if (class_state_[i].active)
      ScheduleNextArrival(static_cast<int32_t>(i));
  }
}

void Source::Activate(int32_t query_class) {
  RTQ_CHECK(query_class >= 0 &&
            query_class < static_cast<int32_t>(class_state_.size()));
  ClassState& state = class_state_[query_class];
  if (state.active) return;
  state.active = true;
  ++state.epoch;
  if (started_) ScheduleNextArrival(query_class);
}

void Source::Deactivate(int32_t query_class) {
  RTQ_CHECK(query_class >= 0 &&
            query_class < static_cast<int32_t>(class_state_.size()));
  ClassState& state = class_state_[query_class];
  if (!state.active) return;
  state.active = false;
  ++state.epoch;  // orphans the pending arrival event
}

bool Source::active(int32_t query_class) const {
  RTQ_CHECK(query_class >= 0 &&
            query_class < static_cast<int32_t>(class_state_.size()));
  return class_state_[query_class].active;
}

void Source::ScheduleNextArrival(int32_t query_class) {
  ClassState& state = class_state_[query_class];
  double delay =
      state.arrivals.Exponential(spec_.classes[query_class].arrival_rate);
  uint64_t epoch = state.epoch;
  sim_->ScheduleAfter(delay, [this, query_class, epoch] {
    ClassState& s = class_state_[query_class];
    if (!s.active || s.epoch != epoch) return;  // deactivated meanwhile
    EmitQuery(query_class);
    ScheduleNextArrival(query_class);
  });
}

const storage::Relation& Source::PickRelation(int32_t group, Rng* rng) {
  const std::vector<storage::RelationId>& ids = db_->RelationsInGroup(group);
  int64_t idx = rng->UniformInt(0, static_cast<int64_t>(ids.size()) - 1);
  return db_->relation(ids[static_cast<size_t>(idx)]);
}

void Source::EmitQuery(int32_t query_class) {
  const QueryClassSpec& cls = spec_.classes[query_class];
  ClassState& state = class_state_[query_class];

  exec::QueryDescriptor desc;
  desc.id = next_id_++;
  desc.query_class = query_class;
  desc.type = cls.type;
  desc.arrival = sim_->Now();
  desc.slack_ratio =
      state.selection.Uniform(cls.slack_min, cls.slack_max);

  std::unique_ptr<exec::Operator> op;
  exec::StandaloneEstimate est;

  if (cls.type == exec::QueryType::kHashJoin) {
    const storage::Relation& a =
        PickRelation(cls.rel_groups[0], &state.selection);
    const storage::Relation& b =
        PickRelation(cls.rel_groups[1], &state.selection);
    // The smaller relation is the inner (building) relation R.
    const storage::Relation& r = a.pages <= b.pages ? a : b;
    const storage::Relation& s = a.pages <= b.pages ? b : a;
    desc.r_relation = r.id;
    desc.s_relation = s.id;
    desc.operand_pages = r.pages + s.pages;

    exec::HashJoin::Inputs inputs;
    inputs.r_disk = r.disk;
    inputs.r_start = r.start_page;
    inputs.r_pages = r.pages;
    inputs.s_disk = s.disk;
    inputs.s_start = s.start_page;
    inputs.s_pages = s.pages;
    op = std::make_unique<exec::HashJoin>(exec_params_, inputs);
    est = exec::EstimateHashJoin(exec_params_, disk_params_, mips_, r.pages,
                                 s.pages);
  } else {
    const storage::Relation& r =
        PickRelation(cls.rel_groups[0], &state.selection);
    desc.r_relation = r.id;
    desc.operand_pages = r.pages;

    exec::ExternalSort::Inputs inputs;
    inputs.disk = r.disk;
    inputs.start = r.start_page;
    inputs.pages = r.pages;
    op = std::make_unique<exec::ExternalSort>(exec_params_, inputs);
    est = exec::EstimateExternalSort(exec_params_, disk_params_, mips_,
                                     r.pages);
  }

  desc.standalone_time = est.total();
  desc.operand_io_requests = est.io_requests;
  desc.deadline = desc.arrival + desc.standalone_time * desc.slack_ratio;
  desc.max_memory = op->max_memory();
  desc.min_memory = op->min_memory();

  sink_(desc, std::move(op));
}

}  // namespace rtq::workload
