#include "workload/source.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "common/fnv.h"
#include "workload/query_builder.h"

namespace rtq::workload {

Source::Source(sim::Simulator* sim, const storage::Database* db,
               const WorkloadSpec& spec,
               const exec::ExecParams& exec_params,
               const model::DiskParams& disk_params, double mips, Rng rng,
               Sink sink)
    : sim_(sim),
      db_(db),
      spec_(spec),
      exec_params_(exec_params),
      disk_params_(disk_params),
      mips_(mips),
      sink_(std::move(sink)) {
  RTQ_CHECK(sim != nullptr && db != nullptr);
  RTQ_CHECK_MSG(spec_.Validate(*db).ok(), "invalid workload spec");
  RTQ_CHECK(sink_ != nullptr);
  class_state_.reserve(spec_.classes.size());
  for (const QueryClassSpec& cls : spec_.classes) {
    // Braced init evaluates the two Fork() calls left to right.
    class_state_.push_back(
        ClassState{cls.initially_active, 0, rng.Fork(), rng.Fork()});
  }
}

void Source::Start() {
  RTQ_CHECK_MSG(!started_, "Source started twice");
  started_ = true;
  for (size_t i = 0; i < class_state_.size(); ++i) {
    if (class_state_[i].active)
      ScheduleNextArrival(static_cast<int32_t>(i));
  }
}

void Source::Stop() {
  for (size_t i = 0; i < class_state_.size(); ++i) {
    Deactivate(static_cast<int32_t>(i));
  }
}

void Source::AppendStateDigest(std::vector<std::string>* out) const {
  out->push_back("source poisson " + std::to_string(next_id_));
  for (size_t i = 0; i < class_state_.size(); ++i) {
    const ClassState& s = class_state_[i];
    out->push_back("source.class " + std::to_string(i) + " " +
                   std::to_string(s.active ? 1 : 0) + " " +
                   std::to_string(s.epoch) + " " +
                   std::to_string(Fnv1a64Hash(s.arrivals.StateString())) +
                   " " +
                   std::to_string(Fnv1a64Hash(s.selection.StateString())));
  }
}

void Source::Activate(int32_t query_class) {
  RTQ_CHECK(query_class >= 0 &&
            query_class < static_cast<int32_t>(class_state_.size()));
  ClassState& state = class_state_[query_class];
  if (state.active) return;
  state.active = true;
  ++state.epoch;
  if (started_) ScheduleNextArrival(query_class);
}

void Source::Deactivate(int32_t query_class) {
  RTQ_CHECK(query_class >= 0 &&
            query_class < static_cast<int32_t>(class_state_.size()));
  ClassState& state = class_state_[query_class];
  if (!state.active) return;
  state.active = false;
  ++state.epoch;  // orphans the pending arrival event
}

bool Source::active(int32_t query_class) const {
  RTQ_CHECK(query_class >= 0 &&
            query_class < static_cast<int32_t>(class_state_.size()));
  return class_state_[query_class].active;
}

void Source::ScheduleNextArrival(int32_t query_class) {
  ClassState& state = class_state_[query_class];
  double delay =
      state.arrivals.Exponential(spec_.classes[query_class].arrival_rate);
  uint64_t epoch = state.epoch;
  sim_->ScheduleAfter(delay, [this, query_class, epoch] {
    ClassState& s = class_state_[query_class];
    if (!s.active || s.epoch != epoch) return;  // deactivated meanwhile
    EmitQuery(query_class);
    ScheduleNextArrival(query_class);
  });
}

void Source::EmitQuery(int32_t query_class) {
  ClassState& state = class_state_[query_class];
  QueryBlueprint bp =
      DrawBlueprint(spec_.classes[query_class], query_class, sim_->Now(),
                    *db_, &state.selection);
  sink_(bp, next_id_++);
}

}  // namespace rtq::workload
