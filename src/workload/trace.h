// The `.rtqt` deterministic workload trace format (version 1).
//
// A trace is the randomness-free record of one generated arrival stream:
// replaying it through TraceSource reproduces the exact query sequence —
// and therefore the exact engine trajectory — of the run that generated
// it, which makes traces both a portable workload format and a byte-exact
// replay-testing oracle.
//
// Grammar (line-oriented text; '#' starts a comment, blank lines are
// ignored; tokens are space-separated):
//
//   trace    := header record*
//   header   := "rtqt 1" NL
//               "classes" INT NL          (number of workload classes)
//               "scenario" TEXT NL        ("-" when not generator-made)
//               "seed" UINT NL
//               "records" INT NL          (record count; truncation check)
//   record   := "q" TIME CLASS TYPE R S SLACK STANDALONE NL
//   TYPE     := "join" | "sort"
//   S        := relation id | "-"         ("-" for sorts)
//   STANDALONE := seconds | "-"           ("-" = recompute at replay)
//
// Doubles are serialized with the shortest representation that parses
// back to the identical bit pattern, so Parse(Serialize(t)) == t is a
// fixed point. Record times must be non-decreasing; all structural and
// range violations surface as Status errors, never crashes.

#ifndef RTQ_WORKLOAD_TRACE_H_
#define RTQ_WORKLOAD_TRACE_H_

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "exec/query.h"
#include "storage/relation.h"

namespace rtq::workload {

/// One arrival: the serialized form of a QueryBlueprint (minus the
/// fields derivable from the database layout).
struct TraceRecord {
  SimTime time = 0.0;
  int32_t query_class = 0;
  exec::QueryType type = exec::QueryType::kHashJoin;
  storage::RelationId r = -1;
  /// -1 for sorts (serialized as "-").
  storage::RelationId s = -1;
  double slack = 1.0;
  /// NaN = "recompute from the relations at replay" (serialized as "-").
  double standalone = std::numeric_limits<double>::quiet_NaN();
};

struct Trace {
  /// Format version; only 1 exists.
  int32_t version = 1;
  /// Number of workload classes the trace addresses; every record's
  /// query_class is in [0, num_classes).
  int32_t num_classes = 0;
  /// Canonical scenario spec that generated the trace ("" for ad-hoc /
  /// hand-written traces; serialized as "-").
  std::string scenario;
  /// Master seed of the generating run (informational).
  uint64_t seed = 0;
  std::vector<TraceRecord> records;
};

/// Exact equality; NaN standalone compares equal to NaN.
bool operator==(const TraceRecord& a, const TraceRecord& b);
bool operator!=(const TraceRecord& a, const TraceRecord& b);
bool operator==(const Trace& a, const Trace& b);
bool operator!=(const Trace& a, const Trace& b);

/// Shortest decimal rendering of `v` that strtod parses back to the
/// identical double — the serializer's number format, also used for
/// canonical scenario spec strings.
std::string FormatDouble(double v);

std::string SerializeTrace(const Trace& trace);

/// Parses `.rtqt` text. Malformed input — bad or missing version header,
/// truncated lines, non-numeric fields, out-of-order times, classes out
/// of range, record-count mismatch — returns an InvalidArgument Status
/// naming the offending line.
StatusOr<Trace> ParseTrace(const std::string& text);

Status WriteTraceFile(const Trace& trace, const std::string& path);
StatusOr<Trace> ReadTraceFile(const std::string& path);

}  // namespace rtq::workload

#endif  // RTQ_WORKLOAD_TRACE_H_
