#include "buffer/lru_cache.h"

#include "common/check.h"

namespace rtq::buffer {

LruCache::LruCache(PageCount capacity) : capacity_(capacity) {
  RTQ_CHECK_MSG(capacity >= 0, "LRU capacity must be >= 0");
}

void LruCache::SetCapacity(PageCount capacity) {
  RTQ_CHECK_MSG(capacity >= 0, "LRU capacity must be >= 0");
  capacity_ = capacity;
  EvictToCapacity();
}

void LruCache::LinkFront(uint32_t slot) {
  Node& n = nodes_[slot];
  n.prev = kNullHandle;
  n.next = head_;
  if (head_ != kNullHandle) nodes_[head_].prev = slot;
  head_ = slot;
  if (tail_ == kNullHandle) tail_ = slot;
}

void LruCache::Unlink(uint32_t slot) {
  Node& n = nodes_[slot];
  if (n.prev != kNullHandle) {
    nodes_[n.prev].next = n.next;
  } else {
    head_ = n.next;
  }
  if (n.next != kNullHandle) {
    nodes_[n.next].prev = n.prev;
  } else {
    tail_ = n.prev;
  }
}

void LruCache::EvictToCapacity() {
  while (static_cast<PageCount>(index_.size()) > capacity_) {
    uint32_t victim = tail_;
    RTQ_DCHECK(victim != kNullHandle);
    Unlink(victim);
    index_.erase(nodes_[victim].key);
    free_slots_.push_back(victim);
  }
}

LruCache::Handle LruCache::Find(uint64_t key) const {
  auto it = index_.find(key);
  return it == index_.end() ? kNullHandle : it->second;
}

void LruCache::Touch(Handle h) {
  RTQ_DCHECK(h < nodes_.size());
  ++hits_;
  if (head_ == h) return;
  Unlink(h);
  LinkFront(h);
}

bool LruCache::Lookup(uint64_t key) {
  Handle h = Find(key);
  if (h == kNullHandle) {
    ++misses_;
    return false;
  }
  Touch(h);
  return true;
}

void LruCache::Insert(uint64_t key) {
  if (capacity_ == 0) return;
  // One hash probe covers both the residency check and the insert.
  auto [it, inserted] = index_.try_emplace(key, 0);
  if (!inserted) {
    // Resident: promote only, no hit counted (matches the historical
    // std::list splice semantics the state digests pin).
    Handle h = it->second;
    if (head_ != h) {
      Unlink(h);
      LinkFront(h);
    }
    return;
  }
  uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<uint32_t>(nodes_.size());
    nodes_.push_back(Node{0, kNullHandle, kNullHandle});
  }
  nodes_[slot].key = key;
  LinkFront(slot);
  it->second = slot;
  EvictToCapacity();
}

void LruCache::Erase(uint64_t key) {
  auto it = index_.find(key);
  if (it == index_.end()) return;
  uint32_t slot = it->second;
  Unlink(slot);
  index_.erase(it);
  free_slots_.push_back(slot);
}

void LruCache::Clear() {
  for (uint32_t s = head_; s != kNullHandle; s = nodes_[s].next) {
    free_slots_.push_back(s);
  }
  index_.clear();
  head_ = tail_ = kNullHandle;
}

std::vector<uint64_t> LruCache::Keys() const {
  std::vector<uint64_t> keys;
  keys.reserve(index_.size());
  for (uint32_t s = head_; s != kNullHandle; s = nodes_[s].next) {
    keys.push_back(nodes_[s].key);
  }
  return keys;
}

}  // namespace rtq::buffer
