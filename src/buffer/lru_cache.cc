#include "buffer/lru_cache.h"

#include "common/check.h"

namespace rtq::buffer {

LruCache::LruCache(PageCount capacity) : capacity_(capacity) {
  RTQ_CHECK_MSG(capacity >= 0, "LRU capacity must be >= 0");
}

void LruCache::SetCapacity(PageCount capacity) {
  RTQ_CHECK_MSG(capacity >= 0, "LRU capacity must be >= 0");
  capacity_ = capacity;
  EvictToCapacity();
}

void LruCache::EvictToCapacity() {
  while (static_cast<PageCount>(map_.size()) > capacity_) {
    map_.erase(order_.back());
    order_.pop_back();
  }
}

bool LruCache::Lookup(uint64_t key) {
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  order_.splice(order_.begin(), order_, it->second);
  ++hits_;
  return true;
}

bool LruCache::Contains(uint64_t key) const {
  return map_.find(key) != map_.end();
}

void LruCache::Insert(uint64_t key) {
  if (capacity_ == 0) return;
  auto it = map_.find(key);
  if (it != map_.end()) {
    order_.splice(order_.begin(), order_, it->second);
    return;
  }
  order_.push_front(key);
  map_.emplace(key, order_.begin());
  EvictToCapacity();
}

void LruCache::Erase(uint64_t key) {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  order_.erase(it->second);
  map_.erase(it);
}

void LruCache::Clear() {
  order_.clear();
  map_.clear();
}

}  // namespace rtq::buffer
