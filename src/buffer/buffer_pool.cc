#include "buffer/buffer_pool.h"

#include <string>

#include "common/check.h"

namespace rtq::buffer {

BufferPool::BufferPool(PageCount total_pages)
    : total_(total_pages), cache_(total_pages) {
  RTQ_CHECK_MSG(total_pages > 0, "buffer pool must have > 0 pages");
}

Status BufferPool::SetReservation(QueryId query, PageCount pages) {
  if (pages < 0)
    return Status::InvalidArgument("reservation must be >= 0 pages");
  PageCount current = reservation_of(query);
  PageCount delta = pages - current;
  if (reserved_ + delta > total_) {
    return Status::OutOfRange(
        "reservation of " + std::to_string(pages) + " pages exceeds pool (" +
        std::to_string(total_ - reserved_ + current) + " available)");
  }
  if (pages == 0) {
    reservations_.erase(query);
  } else {
    reservations_[query] = pages;
  }
  reserved_ += delta;
  RTQ_DCHECK(reserved_ >= 0 && reserved_ <= total_);
  cache_.SetCapacity(unreserved());
  return Status::Ok();
}

void BufferPool::ReleaseAll(QueryId query) {
  auto it = reservations_.find(query);
  if (it == reservations_.end()) return;
  reserved_ -= it->second;
  reservations_.erase(it);
  RTQ_DCHECK(reserved_ >= 0);
  cache_.SetCapacity(unreserved());
}

PageCount BufferPool::reservation_of(QueryId query) const {
  auto it = reservations_.find(query);
  return it == reservations_.end() ? 0 : it->second;
}

}  // namespace rtq::buffer
