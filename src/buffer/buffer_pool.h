// The buffer pool: reservations + LRU for the remainder.
//
// Paper Section 4.2: "A reservation mechanism allows query operators,
// including sorts and joins, to reserve buffers for use as workspaces.
// These reserved buffers are managed by the operators themselves, while
// page replacement for non-reserved buffers is handled according to the
// LRU policy."
//
// The memory-management policies (src/core) decide each query's
// reservation; the pool enforces that reservations never exceed the pool
// and resizes the LRU area to whatever is left.

#ifndef RTQ_BUFFER_BUFFER_POOL_H_
#define RTQ_BUFFER_BUFFER_POOL_H_

#include <unordered_map>
#include <utility>

#include "buffer/lru_cache.h"
#include "common/pool.h"
#include "common/status.h"
#include "common/types.h"

namespace rtq::buffer {

class BufferPool {
 public:
  explicit BufferPool(PageCount total_pages);

  /// Sets query's reservation to `pages` (absolute, not a delta). Fails
  /// with OutOfRange if the pool cannot cover the increase. Setting 0
  /// removes the reservation.
  Status SetReservation(QueryId query, PageCount pages);

  /// Drops a query's reservation entirely (abort/completion path).
  void ReleaseAll(QueryId query);

  PageCount reservation_of(QueryId query) const;

  PageCount total() const { return total_; }
  PageCount reserved() const { return reserved_; }
  /// Pages not reserved by anyone (the LRU area size).
  PageCount unreserved() const { return total_ - reserved_; }
  /// Number of queries holding a non-zero reservation.
  int64_t reservation_count() const {
    return static_cast<int64_t>(reservations_.size());
  }

  /// Page cache over the unreserved area. The pool keeps the cache's
  /// capacity in sync with unreserved().
  LruCache& page_cache() { return cache_; }
  const LruCache& page_cache() const { return cache_; }

  /// Packs (disk, page) into the LRU key space.
  static uint64_t PageKey(DiskId disk, PageCount page) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(disk)) << 40) |
           static_cast<uint64_t>(page);
  }

 private:
  PageCount total_;
  PageCount reserved_ = 0;
  // Reservation nodes recycle through a pool (declared before the map it
  // feeds): reservation churn allocates nothing in steady state.
  NodePool pool_;
  using ReservationMap =
      std::unordered_map<QueryId, PageCount, std::hash<QueryId>,
                         std::equal_to<QueryId>,
                         PoolAllocator<std::pair<const QueryId, PageCount>>>;
  ReservationMap reservations_{
      8, std::hash<QueryId>(), std::equal_to<QueryId>(),
      PoolAllocator<std::pair<const QueryId, PageCount>>(&pool_)};
  LruCache cache_;
};

}  // namespace rtq::buffer

#endif  // RTQ_BUFFER_BUFFER_POOL_H_
