// Page-granular LRU cache.
//
// Backs the unreserved portion of the buffer pool: "page replacement for
// non-reserved buffers is handled according to the LRU policy" (paper
// Section 4.2). Keys are global page ids (disk, page) packed into 64 bits
// by the buffer pool.
//
// Storage is one intrusive slab: recency links live inside the node
// vector (indices, not list pointers), the key->slot index recycles its
// nodes through a NodePool, and freed slots are reused — so the cache
// performs zero heap allocation in steady state. The Find/Touch handle
// pair lets the engine's multi-page coverage probe hash each page ONCE
// (Find) and promote on the hit path (Touch) without re-hashing.

#ifndef RTQ_BUFFER_LRU_CACHE_H_
#define RTQ_BUFFER_LRU_CACHE_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/pool.h"
#include "common/types.h"

namespace rtq::buffer {

class LruCache {
 public:
  /// Stable slot index of a resident page, valid until the next mutation
  /// (Insert/Erase/SetCapacity/Clear) — NOT across them.
  using Handle = uint32_t;
  static constexpr Handle kNullHandle = UINT32_MAX;

  explicit LruCache(PageCount capacity);

  /// Changes capacity; evicts LRU entries if shrinking below current size.
  void SetCapacity(PageCount capacity);

  /// Resident slot of `key`, or kNullHandle. No counters, no promotion —
  /// for probing several pages before deciding (pair with Touch).
  Handle Find(uint64_t key) const;

  /// Counts a hit and promotes the (resident) slot to MRU.
  void Touch(Handle h);

  /// True (and counts a hit + promotes to MRU) when `key` is resident;
  /// counts a miss otherwise.
  bool Lookup(uint64_t key);

  /// True without promoting or counting.
  bool Contains(uint64_t key) const { return Find(key) != kNullHandle; }

  /// Inserts `key` as MRU, evicting the LRU page if full. No-op for a
  /// resident key beyond promotion (no hit is counted), and for zero
  /// capacity.
  void Insert(uint64_t key);

  /// Removes a specific page if present (e.g. invalidation on write).
  void Erase(uint64_t key);

  void Clear();

  /// Resident keys in recency order (MRU first) — the snapshot digest's
  /// view of cache contents, where order matters as much as membership.
  std::vector<uint64_t> Keys() const;

  PageCount size() const { return static_cast<PageCount>(index_.size()); }
  PageCount capacity() const { return capacity_; }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 private:
  struct Node {
    uint64_t key;
    uint32_t prev;
    uint32_t next;
  };

  void LinkFront(uint32_t slot);
  void Unlink(uint32_t slot);
  void EvictToCapacity();

  PageCount capacity_;
  // Pool before the index map so the map is destroyed first.
  NodePool pool_;
  using Index =
      std::unordered_map<uint64_t, uint32_t, std::hash<uint64_t>,
                         std::equal_to<uint64_t>,
                         PoolAllocator<std::pair<const uint64_t, uint32_t>>>;
  Index index_{8, std::hash<uint64_t>(), std::equal_to<uint64_t>(),
               PoolAllocator<std::pair<const uint64_t, uint32_t>>(&pool_)};
  std::vector<Node> nodes_;
  std::vector<uint32_t> free_slots_;
  uint32_t head_ = kNullHandle;  // MRU
  uint32_t tail_ = kNullHandle;  // LRU
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace rtq::buffer

#endif  // RTQ_BUFFER_LRU_CACHE_H_
