// Page-granular LRU cache.
//
// Backs the unreserved portion of the buffer pool: "page replacement for
// non-reserved buffers is handled according to the LRU policy" (paper
// Section 4.2). Keys are global page ids (disk, page) packed into 64 bits
// by the buffer pool.

#ifndef RTQ_BUFFER_LRU_CACHE_H_
#define RTQ_BUFFER_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace rtq::buffer {

class LruCache {
 public:
  explicit LruCache(PageCount capacity);

  /// Changes capacity; evicts LRU entries if shrinking below current size.
  void SetCapacity(PageCount capacity);

  /// True (and promotes to MRU) when `key` is resident.
  bool Lookup(uint64_t key);

  /// True without promoting — for probing several pages before deciding.
  bool Contains(uint64_t key) const;

  /// Inserts `key` as MRU, evicting the LRU page if full. No-op for a
  /// resident key beyond promotion, and for zero capacity.
  void Insert(uint64_t key);

  /// Removes a specific page if present (e.g. invalidation on write).
  void Erase(uint64_t key);

  void Clear();

  /// Resident keys in recency order (MRU first) — the snapshot digest's
  /// view of cache contents, where order matters as much as membership.
  std::vector<uint64_t> Keys() const {
    return std::vector<uint64_t>(order_.begin(), order_.end());
  }

  PageCount size() const { return static_cast<PageCount>(map_.size()); }
  PageCount capacity() const { return capacity_; }
  int64_t hits() const { return hits_; }
  int64_t misses() const { return misses_; }

 private:
  void EvictToCapacity();

  PageCount capacity_;
  std::list<uint64_t> order_;  // front = MRU
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> map_;
  int64_t hits_ = 0;
  int64_t misses_ = 0;
};

}  // namespace rtq::buffer

#endif  // RTQ_BUFFER_LRU_CACHE_H_
