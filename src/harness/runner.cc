#include "harness/runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <thread>

#include "common/check.h"
#include "engine/rtdbs.h"
#include "harness/args.h"
#include "harness/paper_experiments.h"

namespace rtq::harness {

namespace {

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The default job body: build the system, run it for the spec's
/// duration (or ExperimentDuration()), summarize, keep the PMM trace.
RunResult RunJob(const RunSpec& spec) {
  RunResult result;
  result.label = spec.label;
  result.config = spec.config;
  auto start = std::chrono::steady_clock::now();
  auto sys = engine::Rtdbs::Create(spec.config);
  RTQ_CHECK_MSG(sys.ok(), sys.status().ToString().c_str());
  SimTime until = spec.duration > 0.0 ? spec.duration : ExperimentDuration();
  sys.value()->RunUntil(until);
  result.summary = sys.value()->Summarize();
  if (sys.value()->pmm() != nullptr) {
    result.pmm_trace = sys.value()->pmm()->trace();
  }
  result.wall_seconds = SecondsSince(start);
  return result;
}

std::vector<RunResult> RunPoolImpl(const std::vector<RunSpec>& specs,
                                   int jobs, const RunJobFn& fn,
                                   bool progress) {
  const size_t n = specs.size();
  std::vector<RunResult> results(n);
  if (n == 0) return results;

  std::vector<std::exception_ptr> errors(n);
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};

  auto worker = [&]() {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        results[i] = fn(specs[i], i);
      } catch (...) {
        errors[i] = std::current_exception();
      }
      size_t finished = done.fetch_add(1, std::memory_order_relaxed) + 1;
      if (progress) {
        // stderr so the stdout tables stay clean; one line per job, in
        // completion (not submission) order.
        std::fprintf(stderr, "[%zu/%zu] %s (%.1fs)\n", finished, n,
                     results[i].label.c_str(), results[i].wall_seconds);
      }
    }
  };

  int workers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(std::max(jobs, 1)), n));
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(static_cast<size_t>(workers));
    for (int w = 0; w < workers; ++w) threads.emplace_back(worker);
    for (auto& t : threads) t.join();
  }

  // Forward the first failure by submission order, after every worker
  // has drained (so no thread outlives the rethrow).
  for (auto& error : errors) {
    if (error) std::rethrow_exception(error);
  }
  return results;
}

}  // namespace

int BenchJobs() {
  unsigned hc = std::thread::hardware_concurrency();
  return EnvPositiveInt("RTQ_BENCH_JOBS", hc > 0 ? static_cast<int>(hc) : 1);
}

std::vector<RunResult> RunPool(const std::vector<RunSpec>& specs, int jobs) {
  return RunPoolImpl(
      specs, jobs,
      [](const RunSpec& spec, size_t) { return RunJob(spec); },
      /*progress=*/true);
}

std::vector<RunResult> RunPool(const std::vector<RunSpec>& specs) {
  return RunPool(specs, BenchJobs());
}

std::vector<RunResult> RunPool(const std::vector<RunSpec>& specs, int jobs,
                               const RunJobFn& fn) {
  return RunPoolImpl(specs, jobs, fn, /*progress=*/false);
}

}  // namespace rtq::harness
