// Periodic JSON-lines metrics for long-running (serve-mode) engines.
//
// BenchJsonEmitter writes one document per finished sweep; a server that
// never finishes needs the dual: one self-contained JSON object per
// emission, appended to a stream, parseable with nothing smarter than
// line-splitting (`jq`, `grep`, a dashboard tailer). Each line carries
// cumulative counters plus deltas over the window since the previous
// line, computed incrementally — emission cost does not grow with run
// length, so a soak test can stream for hours.
//
// Line schema (field order fixed; schema bumps on any change):
//   {"schema":"rtq-serve-metrics-3",["shard":<i>,]"t":<sim seconds>,
//    "events":<n>,"pending":<n>,"live":<n>,"retired":<n>,"recycled":<n>,
//    "admitted":<n>,"waiting":<n>,
//    "generated":<n>,"completed":<n>,"missed":<n>,"miss_ratio":<r>,
//    "d_completed":<n>,"d_missed":<n>,["routed_elsewhere":<n>,]
//    "allocated_pages":<n>,
//    "policy":"<spec>","wall_seconds":<s>,"events_per_sec":<r>}
//
// "events_per_sec" is the wall-clock dispatch rate over the delta
// window (null on the first line and in windows with no wall time).
// v2 added "retired"/"recycled": the query-runtime recycling gauges
// (parked runtimes awaiting reuse, lifetime arena-reset reuses) that
// back the allocation-free steady state. v3 added the optional
// sharding fields: a sharded serve session streams one line per shard
// per emission, tagged with "shard" and the shard's filtered-arrival
// drop count "routed_elsewhere"; unsharded sessions omit both.

#ifndef RTQ_HARNESS_METRICS_STREAMER_H_
#define RTQ_HARNESS_METRICS_STREAMER_H_

#include <cstdint>
#include <cstdio>

#include "engine/rtdbs.h"

namespace rtq::harness {

class MetricsStreamer {
 public:
  /// Streams to `out` (not owned; typically stdout or a log file).
  /// `shard` >= 0 tags every line with that shard index (one streamer
  /// per shard keeps the incremental cursors independent); -1 omits the
  /// sharding fields.
  explicit MetricsStreamer(std::FILE* out, int32_t shard = -1)
      : out_(out), shard_(shard) {}

  /// Appends one metrics line for the system's current state and
  /// flushes, so a tailing consumer sees it immediately.
  void Emit(engine::Rtdbs& sys, double wall_seconds);

  int64_t lines_emitted() const { return lines_; }

 private:
  std::FILE* out_;
  int32_t shard_ = -1;
  /// Incremental cursor into MetricsCollector::records().
  size_t record_cursor_ = 0;
  int64_t cum_missed_ = 0;
  uint64_t last_events_ = 0;
  double last_wall_ = 0.0;
  int64_t lines_ = 0;
};

}  // namespace rtq::harness

#endif  // RTQ_HARNESS_METRICS_STREAMER_H_
