#include "harness/args.h"

#include <cerrno>
#include <cstdlib>

namespace rtq::harness {

std::string EnvString(const char* name, const std::string& fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  return env;
}

double EnvPositiveDouble(const char* name, double fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  double parsed = std::atof(env);
  return parsed > 0.0 ? parsed : fallback;
}

int EnvPositiveInt(const char* name, int fallback) {
  const char* env = std::getenv(name);
  if (env == nullptr || env[0] == '\0') return fallback;
  int parsed = std::atoi(env);
  return parsed > 0 ? parsed : fallback;
}

ArgParser::ArgParser(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    size_t eq = body.find('=');
    Entry entry;
    std::string name;
    if (eq == std::string::npos) {
      name = body;
    } else {
      name = body.substr(0, eq);
      entry.value = body.substr(eq + 1);
      entry.has_value = true;
    }
    if (name.empty()) {
      errors_.push_back("malformed flag '" + arg + "'");
      continue;
    }
    if (!flags_.emplace(name, std::move(entry)).second) {
      errors_.push_back("flag --" + name + " given twice");
    }
  }
}

ArgParser::Entry* ArgParser::Find(const std::string& flag) {
  auto it = flags_.find(flag);
  if (it == flags_.end()) return nullptr;
  it->second.consumed = true;
  return &it->second;
}

std::string ArgParser::String(const std::string& flag,
                              const std::string& fallback) {
  Entry* e = Find(flag);
  if (e == nullptr) return fallback;
  if (!e->has_value) {
    errors_.push_back("--" + flag + " requires a value (--" + flag + "=...)");
    return fallback;
  }
  return e->value;
}

double ArgParser::Double(const std::string& flag, double fallback) {
  Entry* e = Find(flag);
  if (e == nullptr) return fallback;
  if (!e->has_value) {
    errors_.push_back("--" + flag + " requires a numeric value");
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  double parsed = std::strtod(e->value.c_str(), &end);
  if (errno != 0 || end == e->value.c_str() || *end != '\0') {
    errors_.push_back("--" + flag + "=" + e->value + ": not a number");
    return fallback;
  }
  return parsed;
}

int64_t ArgParser::Int(const std::string& flag, int64_t fallback) {
  Entry* e = Find(flag);
  if (e == nullptr) return fallback;
  if (!e->has_value) {
    errors_.push_back("--" + flag + " requires an integer value");
    return fallback;
  }
  errno = 0;
  char* end = nullptr;
  long long parsed = std::strtoll(e->value.c_str(), &end, 10);
  if (errno != 0 || end == e->value.c_str() || *end != '\0') {
    errors_.push_back("--" + flag + "=" + e->value + ": not an integer");
    return fallback;
  }
  return static_cast<int64_t>(parsed);
}

bool ArgParser::Bool(const std::string& flag) {
  Entry* e = Find(flag);
  if (e == nullptr) return false;
  if (!e->has_value) return true;
  if (e->value == "true" || e->value == "1") return true;
  if (e->value == "false" || e->value == "0") return false;
  errors_.push_back("--" + flag + "=" + e->value +
                    ": expected true/false/1/0");
  return false;
}

Status ArgParser::Finish() const {
  std::vector<std::string> problems = errors_;
  for (const auto& [name, entry] : flags_) {
    if (!entry.consumed) problems.push_back("unknown flag --" + name);
  }
  if (problems.empty()) return Status::Ok();
  std::string joined;
  for (const std::string& p : problems) {
    if (!joined.empty()) joined += "; ";
    joined += p;
  }
  return Status::InvalidArgument(joined);
}

}  // namespace rtq::harness
