// Ready-made SystemConfigs for every experiment in the paper's Section 5,
// plus run helpers shared by the bench binaries.
//
// Each Section 5 experiment is a factory here: the baseline
// memory-bottlenecked setup (5.1), moderate disk contention (5.2),
// workload alternation (5.3), external sorts (5.5), multiclass (5.6),
// and the scaled-resources variant (5.7). A factory returns a complete
// engine::SystemConfig — hardware, database layout, workload classes,
// and the policy under test — so a bench binary just builds one
// RunSpec{label, Config(point, policy)} per point and hands the batch
// to harness::RunPool (runner.h), which runs them in parallel.
//
// The configs pin the paper's Tables 2-4 parameters; callers vary only
// the arrival rate, the policy, and the RNG seed. Simulated duration
// comes from ExperimentDuration() below so every driver honours the
// RTQ_SIM_HOURS override uniformly.

#ifndef RTQ_HARNESS_PAPER_EXPERIMENTS_H_
#define RTQ_HARNESS_PAPER_EXPERIMENTS_H_

#include <string>
#include <vector>

#include "engine/rtdbs.h"
#include "engine/system_config.h"

namespace rtq::harness {

/// Simulated duration for the experiments. The paper runs 10 simulated
/// hours per point; the default here is 3 hours so the full bench suite
/// finishes in minutes. Override with environment variable RTQ_SIM_HOURS
/// (e.g. RTQ_SIM_HOURS=10 for paper-scale runs).
SimTime ExperimentDuration();

/// Policies compared in the baseline experiment (Figure 3):
/// "max", "minmax", "prop", "pmm".
std::vector<engine::PolicyConfig> BaselinePolicies();

/// The RTQ_POLICIES override: when the environment variable is set, it
/// replaces `defaults` with its comma-separated policy specs (e.g.
/// RTQ_POLICIES="pmm,none" sweeps just those two; a bare numeric
/// segment continues the previous spec, so "pmm-fair:w=1,2,max" is two
/// specs). Every spec is validated against the PolicyRegistry up front;
/// a malformed or unknown spec aborts with a usage message listing the
/// registered policies. Unset/empty returns `defaults` unchanged.
std::vector<engine::PolicyConfig> PoliciesOrDefault(
    std::vector<engine::PolicyConfig> defaults);

/// Section 5.1: memory-bottlenecked baseline. One hash-join class,
/// ||R|| in [600,1800], ||S|| in [3000,9000], 40 MIPS, 10 disks,
/// M = 2560 pages, slack in [2.5, 7.5].
engine::SystemConfig BaselineConfig(double arrival_rate,
                                    const engine::PolicyConfig& policy,
                                    uint64_t seed = 42);

/// Section 5.2: same but 6 disks (moderate disk contention).
engine::SystemConfig DiskContentionConfig(double arrival_rate,
                                          const engine::PolicyConfig& policy,
                                          uint64_t seed = 42);

/// Section 5.3 (Table 8): Small + Medium join classes on 6 disks. Both
/// classes exist; `medium_active` / `small_active` choose the initial
/// activation (the bench alternates them at run time).
engine::SystemConfig WorkloadChangeConfig(const engine::PolicyConfig& policy,
                                          bool medium_active,
                                          bool small_active,
                                          uint64_t seed = 42);

/// Scenario-engine runs: the Section 5.3 two-class system (Table 8's
/// Medium + Small joins on 6 disks) with the Poisson processes replaced
/// by `scenario_spec`'s per-class arrival shapes, resolved through the
/// workload::ScenarioRegistry ("diurnal", "flash:mult=12", ...).
/// CHECK-fails on a malformed or unknown spec — bench drivers validate
/// their specs up front.
engine::SystemConfig ScenarioConfig(const std::string& scenario_spec,
                                    const engine::PolicyConfig& policy,
                                    uint64_t seed = 42);

/// Section 5.5: external-sort workload, ||R|| in [600,1800], baseline
/// resources (10 disks).
engine::SystemConfig ExternalSortConfig(double arrival_rate,
                                        const engine::PolicyConfig& policy,
                                        uint64_t seed = 42);

/// Section 5.6: multiclass — Medium at 0.065 q/s plus Small at
/// `small_rate`, 12 disks.
engine::SystemConfig MulticlassConfig(double small_rate,
                                      const engine::PolicyConfig& policy,
                                      uint64_t seed = 42);

/// Section 5.7: the disk-contention experiment with memory and relation
/// sizes scaled up by `scale` and the arrival rate scaled down by the
/// same factor (disk cylinder count grows to hold the larger relations).
engine::SystemConfig ScaledConfig(double arrival_rate,
                                  const engine::PolicyConfig& policy,
                                  double scale, uint64_t seed = 42);

/// Convenience: short policy label for tables ("Max", "MinMax-10", ...) —
/// the policy's MemoryPolicy::DisplayName(), resolved via the registry.
std::string PolicyLabel(const engine::PolicyConfig& policy);

/// Table header row for a policy sweep: `first` followed by one
/// PolicyLabel column per policy.
std::vector<std::string> PolicyColumns(
    const std::string& first, const std::vector<engine::PolicyConfig>& policies);

}  // namespace rtq::harness

#endif  // RTQ_HARNESS_PAPER_EXPERIMENTS_H_
