// Tiny CSV writer: bench binaries drop their series into results/ so the
// paper's figures can be re-plotted.

#ifndef RTQ_HARNESS_CSV_H_
#define RTQ_HARNESS_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace rtq::harness {

class CsvWriter {
 public:
  explicit CsvWriter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);

  /// Writes header + rows to `path`, creating parent directory
  /// "results/" relative paths as needed.
  Status WriteFile(const std::string& path) const;

  std::string ToString() const;

 private:
  static std::string Escape(const std::string& cell);

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rtq::harness

#endif  // RTQ_HARNESS_CSV_H_
