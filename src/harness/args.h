// Shared environment-knob and command-line parsing for the driver
// binaries.
//
// Every bench driver reads the same environment knobs (RTQ_SIM_HOURS,
// RTQ_BENCH_JOBS, RTQ_POLICIES, RTQ_GIT_DESCRIBE) and until this header
// each call site hand-rolled its own getenv/atof/atoi fallback dance.
// The Env* helpers centralize that discipline: a knob that is unset,
// empty, or fails the validity predicate falls back — never crashes, so
// a typo'd environment degrades to defaults instead of taking down a
// multi-hour sweep.
//
// ArgParser covers the long-running binaries (rtq_serve) that take
// --flag=value style options: flags are consumed by typed accessors and
// Finish() returns InvalidArgument for anything unknown or malformed,
// the same Status-not-crash contract as the registry spec parsers.

#ifndef RTQ_HARNESS_ARGS_H_
#define RTQ_HARNESS_ARGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace rtq::harness {

/// The named environment variable when set and non-empty, else
/// `fallback`.
std::string EnvString(const char* name, const std::string& fallback);

/// The named environment variable parsed as a double when set and
/// strictly positive, else `fallback` (matches the historical
/// RTQ_SIM_HOURS behavior: zero, negative and garbage all fall back).
double EnvPositiveDouble(const char* name, double fallback);

/// The named environment variable parsed as an int when set and
/// strictly positive, else `fallback` (RTQ_BENCH_JOBS behavior).
int EnvPositiveInt(const char* name, int fallback);

/// `--flag=value` command-line parser.
///
///   ArgParser args(argc, argv);
///   std::string workload = args.String("workload", "baseline:rate=0.06");
///   int64_t max_events = args.Int("max-events", 0);
///   bool paced = args.Bool("pace");
///   RTQ_RETURN_IF_ERROR(args.Finish());
///
/// Accessors consume their flag; Finish() rejects any flag that was
/// never consumed (catching typos like --max-event) and any value that
/// failed to parse, with one error message naming them all.
class ArgParser {
 public:
  /// Parses argv[1..argc). Arguments not starting with "--" are
  /// collected as positionals (see positional()).
  ArgParser(int argc, const char* const* argv);

  /// Value of --<flag>=... , else `fallback`.
  std::string String(const std::string& flag, const std::string& fallback);

  /// Value of --<flag>=... parsed as a double, else `fallback`.
  double Double(const std::string& flag, double fallback);

  /// Value of --<flag>=... parsed as an integer, else `fallback`.
  int64_t Int(const std::string& flag, int64_t fallback);

  /// True when --<flag> was given, bare or as --<flag>=true/false.
  bool Bool(const std::string& flag);

  const std::vector<std::string>& positional() const { return positional_; }

  /// Ok when every given flag was consumed and every value parsed;
  /// InvalidArgument naming the offenders otherwise.
  Status Finish() const;

 private:
  struct Entry {
    std::string value;
    bool has_value = false;  ///< false for a bare --flag
    bool consumed = false;
  };

  Entry* Find(const std::string& flag);

  std::map<std::string, Entry> flags_;
  std::vector<std::string> positional_;
  std::vector<std::string> errors_;
};

}  // namespace rtq::harness

#endif  // RTQ_HARNESS_ARGS_H_
