// BENCH_*.json emitter: machine-readable perf trajectories per driver.
//
// Every bench driver serializes its completed sweep to
// results/BENCH_<driver>.json so performance can be tracked PR-over-PR:
// which commit, which knobs, one record per (policy, lambda) point, and
// wall-clock totals (the denominator every future hot-path optimization
// is measured against). The writer is hand-rolled — a streaming emitter
// with string escaping and NaN/Inf -> null — so no dependency is added.
//
// Schema (schema_version 1):
//   {
//     "driver": "baseline",
//     "schema_version": 1,
//     "git": "<git describe --always --dirty, or RTQ_GIT_DESCRIBE env>",
//     "config": { "sim_hours": 3.0, "jobs": 4,
//                 "hardware_concurrency": 8, ...driver extras },
//     "points": [ { "label": "...", "policy": "PMM", "lambda": 0.04,
//                   "miss_ratio": 0.012, "disk_util": 0.55,
//                   "avg_mpl": 9.1, "avg_wait_s": 12.0, "avg_exec_s": 31.0,
//                   "avg_response_s": 43.0, "completions": 431, "misses": 5,
//                   "events": 123456, "wall_seconds": 1.9 }, ... ],
//     "totals": { "wall_seconds": 12.3, "events": 2469120,
//                 "events_per_second": 200741.5 }
//   }
//
// "lambda" is the sweep coordinate (arrival rate for most drivers; the
// fixed rate for sweeps over N / UtilLow, whose varied knob lives in
// "label" and "config").

#ifndef RTQ_HARNESS_BENCH_JSON_H_
#define RTQ_HARNESS_BENCH_JSON_H_

#include <cstdint>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "harness/runner.h"

namespace rtq::harness {

/// Minimal streaming JSON writer. The caller is responsible for calling
/// Key exactly once before each value inside an object; commas and
/// indentation are handled here. Non-finite doubles serialize as null.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& name);
  JsonWriter& String(const std::string& value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Bool(bool value);

  const std::string& str() const { return out_; }

  static std::string Escape(const std::string& raw);

 private:
  void Comma();

  std::string out_;
  /// Whether a value has already been written at each nesting depth.
  std::vector<bool> has_value_{false};
  bool pending_key_ = false;
};

/// Compile/run-time source stamp: the RTQ_GIT_DESCRIBE environment
/// variable when set (CI stamps exact SHAs this way), else the value
/// baked in at configure time, else "unknown".
std::string GitDescribe();

/// Collects one sweep and writes results/BENCH_<driver>.json.
class BenchJsonEmitter {
 public:
  explicit BenchJsonEmitter(std::string driver);

  /// Adds a per-point record from a pool result. `policy` is the short
  /// policy label; `lambda` the sweep coordinate (see schema note).
  void AddResult(const RunResult& result, const std::string& policy,
                 double lambda);

  /// AddResult plus an optional "gap_to_oracle" field: this point's miss
  /// ratio minus the clairvoyant oracle-ed bound's at the same workload
  /// point (bench_headroom's headroom metric). Pass NaN to omit the
  /// field; other drivers' documents are unchanged.
  void AddResult(const RunResult& result, const std::string& policy,
                 double lambda, double gap_to_oracle);

  /// Adds a driver-specific key under "config" (e.g. "scale": "10").
  void AddConfig(const std::string& key, const std::string& value);

  /// Serializes the whole document. `total_wall_seconds` is the
  /// end-to-end sweep wall time (less than the per-point sum when the
  /// pool ran in parallel).
  std::string ToJson(double total_wall_seconds) const;

  /// Writes results/BENCH_<driver>.json (creating results/ if needed).
  Status WriteFile(double total_wall_seconds) const;

  /// The destination path, "results/BENCH_<driver>.json".
  std::string path() const;

 private:
  struct Point {
    std::string label;
    std::string policy;
    double lambda = 0.0;
    double miss_ratio = 0.0;
    double disk_util = 0.0;
    double avg_mpl = 0.0;
    double avg_wait_s = 0.0;
    double avg_exec_s = 0.0;
    double avg_response_s = 0.0;
    int64_t completions = 0;
    int64_t misses = 0;
    int64_t events = 0;
    double wall_seconds = 0.0;
    /// Emitted only when finite (see the AddResult overload).
    double gap_to_oracle = std::numeric_limits<double>::quiet_NaN();
  };

  std::string driver_;
  std::vector<std::pair<std::string, std::string>> extra_config_;
  std::vector<Point> points_;
};

}  // namespace rtq::harness

#endif  // RTQ_HARNESS_BENCH_JSON_H_
