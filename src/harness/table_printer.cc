#include "harness/table_printer.h"

#include <algorithm>
#include <cstdio>

namespace rtq::harness {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::Fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string TablePrinter::Percent(double fraction, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
  return buf;
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size(), 0);
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto pad = [&](const std::string& cell, size_t width) {
    std::string out(width - cell.size(), ' ');
    return out + cell;
  };
  std::string out;
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += pad(headers_[c], widths[c]);
    out += c + 1 < headers_.size() ? "  " : "";
  }
  out += '\n';
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += std::string(widths[c], '-');
    out += c + 1 < headers_.size() ? "  " : "";
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < headers_.size(); ++c) {
      out += pad(row[c], widths[c]);
      out += c + 1 < headers_.size() ? "  " : "";
    }
    out += '\n';
  }
  return out;
}

void TablePrinter::Print(FILE* out) const {
  std::fputs(ToString().c_str(), out);
}

}  // namespace rtq::harness
