// Aligned plain-text tables for the bench binaries' stdout reports.

#ifndef RTQ_HARNESS_TABLE_PRINTER_H_
#define RTQ_HARNESS_TABLE_PRINTER_H_

#include <cstdio>
#include <string>
#include <vector>

namespace rtq::harness {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Adds one row; cells beyond the header count are dropped, missing
  /// cells render empty.
  void AddRow(std::vector<std::string> cells);

  /// Renders with column alignment. Numeric-looking cells right-align.
  std::string ToString() const;
  void Print(FILE* out = stdout) const;

  /// Formatting helpers.
  static std::string Fixed(double value, int precision);
  static std::string Percent(double fraction, int precision = 1);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace rtq::harness

#endif  // RTQ_HARNESS_TABLE_PRINTER_H_
