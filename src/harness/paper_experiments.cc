#include "harness/paper_experiments.h"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "common/check.h"
#include "core/policy_registry.h"
#include "harness/args.h"
#include "workload/scenario_registry.h"

namespace rtq::harness {

namespace {

/// Table 3 resource defaults are SystemConfig's own defaults; this helper
/// stamps the experiment-invariant parts.
engine::SystemConfig CommonConfig(const engine::PolicyConfig& policy,
                                  uint64_t seed) {
  engine::SystemConfig config;
  config.policy = policy;
  config.seed = seed;
  return config;
}

/// Baseline database (Table 6): group 0 = inner relations [600, 1800],
/// group 1 = outer relations [3000, 9000], three of each per disk.
void AddBaselineGroups(engine::SystemConfig* config) {
  storage::RelationGroupSpec inner;
  inner.rel_per_disk = 3;
  inner.min_pages = 600;
  inner.max_pages = 1800;
  storage::RelationGroupSpec outer;
  outer.rel_per_disk = 3;
  outer.min_pages = 3000;
  outer.max_pages = 9000;
  config->database.groups = {inner, outer};
}

/// Small-class relation groups (Table 8): [50, 150] and [250, 750].
void AddSmallGroups(engine::SystemConfig* config) {
  storage::RelationGroupSpec inner;
  inner.rel_per_disk = 3;
  inner.min_pages = 50;
  inner.max_pages = 150;
  storage::RelationGroupSpec outer;
  outer.rel_per_disk = 3;
  outer.min_pages = 250;
  outer.max_pages = 750;
  config->database.groups.push_back(inner);
  config->database.groups.push_back(outer);
}

workload::QueryClassSpec JoinClass(int32_t inner_group, int32_t outer_group,
                                   double rate) {
  workload::QueryClassSpec cls;
  cls.type = exec::QueryType::kHashJoin;
  cls.rel_groups = {inner_group, outer_group};
  cls.arrival_rate = rate;
  cls.slack_min = 2.5;
  cls.slack_max = 7.5;
  return cls;
}

}  // namespace

SimTime ExperimentDuration() {
  // The paper runs each point for 10 simulated hours (>= 2000 query
  // completions). The default here is 3 hours so the full bench suite
  // finishes in minutes; set RTQ_SIM_HOURS=10 for paper-scale runs.
  return EnvPositiveDouble("RTQ_SIM_HOURS", 3.0) * 3600.0;
}

std::vector<engine::PolicyConfig> BaselinePolicies() {
  return {{"max"}, {"minmax"}, {"prop"}, {"pmm"}};
}

std::vector<engine::PolicyConfig> PoliciesOrDefault(
    std::vector<engine::PolicyConfig> defaults) {
  std::string env = EnvString("RTQ_POLICIES", "");
  if (env.empty()) return defaults;

  auto specs = core::ParsePolicyList(env);
  if (!specs.ok()) {
    std::fprintf(stderr, "RTQ_POLICIES=\"%s\": %s\n", env.c_str(),
                 specs.status().ToString().c_str());
    std::exit(2);
  }
  std::vector<engine::PolicyConfig> policies;
  for (const std::string& spec : specs.value()) {
    // Fail fast (before a multi-hour sweep) on unknown names or bad args.
    auto policy = core::PolicyRegistry::Global().Create(spec);
    if (!policy.ok()) {
      std::fprintf(stderr, "RTQ_POLICIES=\"%s\": %s\n", env.c_str(),
                   policy.status().ToString().c_str());
      std::exit(2);
    }
    policies.push_back({spec});
  }
  return policies;
}

engine::SystemConfig BaselineConfig(double arrival_rate,
                                    const engine::PolicyConfig& policy,
                                    uint64_t seed) {
  engine::SystemConfig config = CommonConfig(policy, seed);
  config.num_disks = 10;
  AddBaselineGroups(&config);
  config.workload.classes = {JoinClass(0, 1, arrival_rate)};
  return config;
}

engine::SystemConfig DiskContentionConfig(
    double arrival_rate, const engine::PolicyConfig& policy, uint64_t seed) {
  engine::SystemConfig config = BaselineConfig(arrival_rate, policy, seed);
  config.num_disks = 6;
  return config;
}

engine::SystemConfig WorkloadChangeConfig(const engine::PolicyConfig& policy,
                                          bool medium_active,
                                          bool small_active, uint64_t seed) {
  engine::SystemConfig config = CommonConfig(policy, seed);
  config.num_disks = 6;
  AddBaselineGroups(&config);  // groups 0, 1 (Medium)
  AddSmallGroups(&config);     // groups 2, 3 (Small)

  workload::QueryClassSpec medium = JoinClass(0, 1, 0.07);
  medium.initially_active = medium_active;
  workload::QueryClassSpec small = JoinClass(2, 3, 2.8);
  small.initially_active = small_active;
  config.workload.classes = {medium, small};
  return config;
}

engine::SystemConfig ScenarioConfig(const std::string& scenario_spec,
                                    const engine::PolicyConfig& policy,
                                    uint64_t seed) {
  engine::SystemConfig config =
      WorkloadChangeConfig(policy, /*medium_active=*/true,
                           /*small_active=*/true, seed);
  auto scenario = workload::ScenarioRegistry::Global().Create(scenario_spec);
  RTQ_CHECK_MSG(scenario.ok(), scenario.status().ToString().c_str());
  config.scenario = std::move(scenario).value();
  return config;
}

engine::SystemConfig ExternalSortConfig(double arrival_rate,
                                        const engine::PolicyConfig& policy,
                                        uint64_t seed) {
  engine::SystemConfig config = CommonConfig(policy, seed);
  config.num_disks = 10;
  AddBaselineGroups(&config);

  workload::QueryClassSpec sort;
  sort.type = exec::QueryType::kExternalSort;
  sort.rel_groups = {0};  // ||R|| in [600, 1800]
  sort.arrival_rate = arrival_rate;
  sort.slack_min = 2.5;
  sort.slack_max = 7.5;
  config.workload.classes = {sort};
  return config;
}

engine::SystemConfig MulticlassConfig(double small_rate,
                                      const engine::PolicyConfig& policy,
                                      uint64_t seed) {
  engine::SystemConfig config = CommonConfig(policy, seed);
  config.num_disks = 12;
  AddBaselineGroups(&config);
  AddSmallGroups(&config);
  workload::QueryClassSpec medium = JoinClass(0, 1, 0.065);
  config.workload.classes = {medium};
  if (small_rate > 0.0) {
    config.workload.classes.push_back(JoinClass(2, 3, small_rate));
  }
  return config;
}

engine::SystemConfig ScaledConfig(double arrival_rate,
                                  const engine::PolicyConfig& policy,
                                  double scale, uint64_t seed) {
  RTQ_CHECK_MSG(scale >= 1.0, "scale must be >= 1");
  engine::SystemConfig config = CommonConfig(policy, seed);
  config.num_disks = 6;

  // Memory and relation sizes scale up; arrival rate scales down so the
  // offered utilizations stay comparable (Section 5.7).
  config.memory_pages =
      static_cast<PageCount>(2560 * scale);

  storage::RelationGroupSpec inner;
  inner.rel_per_disk = 2;
  inner.min_pages = static_cast<PageCount>(600 * scale);
  inner.max_pages = static_cast<PageCount>(1800 * scale);
  storage::RelationGroupSpec outer;
  outer.rel_per_disk = 2;
  outer.min_pages = static_cast<PageCount>(3000 * scale);
  outer.max_pages = static_cast<PageCount>(9000 * scale);
  config.database.groups = {inner, outer};

  // Grow the disks to hold the larger database plus spill space.
  PageCount per_disk = 2 * inner.max_pages + 2 * outer.max_pages;
  PageCount needed = per_disk * 4;  // 4x headroom for temp arenas
  while (config.disk.capacity() < needed) config.disk.num_cylinders *= 2;

  config.workload.classes = {JoinClass(0, 1, arrival_rate / scale)};
  return config;
}

std::string PolicyLabel(const engine::PolicyConfig& policy) {
  std::string spec = policy.ResolvedSpec();
  auto p = core::PolicyRegistry::Global().Create(spec);
  // Unresolvable specs echo back verbatim; config validation is the
  // place that rejects them with a real Status.
  return p.ok() ? p.value()->DisplayName() : spec;
}

std::vector<std::string> PolicyColumns(
    const std::string& first,
    const std::vector<engine::PolicyConfig>& policies) {
  std::vector<std::string> columns{first};
  for (const auto& policy : policies) {
    columns.push_back(PolicyLabel(policy));
  }
  return columns;
}

}  // namespace rtq::harness
