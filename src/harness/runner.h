// Parallel experiment runner: a std::thread pool over independent
// (config, duration) simulation points.
//
// Every Section 5 sweep is embarrassingly parallel — each (policy,
// arrival-rate) point builds its own Rtdbs with its own RNG and event
// calendar, so the only ordering the bench drivers need is in the
// *aggregation* step. RunPool exploits that: it runs RunOnce-equivalent
// jobs on min(jobs, specs) worker threads and returns the results in
// submission order, so a driver becomes
//
//   build specs -> RunPool -> print tables -> emit CSV + BENCH_*.json
//
// and the suite's wall time drops by roughly the core count. With the
// same seeds, a parallel run produces bit-identical summaries to a
// sequential one (each simulation is single-threaded; only the schedule
// of whole jobs changes).
//
// Worker count: RTQ_BENCH_JOBS when set (>0), else
// std::thread::hardware_concurrency(). The first failing job (lowest
// submission index) is rethrown from RunPool after all workers join.

#ifndef RTQ_HARNESS_RUNNER_H_
#define RTQ_HARNESS_RUNNER_H_

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/pmm.h"
#include "engine/metrics.h"
#include "engine/system_config.h"

namespace rtq::harness {

/// One simulation point submitted to the pool.
struct RunSpec {
  /// Free-form label echoed into the result (and the BENCH_*.json point).
  std::string label;
  engine::SystemConfig config;
  /// Simulated duration in seconds; <= 0 means ExperimentDuration().
  SimTime duration = 0.0;
};

/// One completed simulation point, in submission order.
struct RunResult {
  std::string label;
  engine::SystemConfig config;  ///< echo of the spec's config
  engine::SystemSummary summary;
  /// The PMM adaptation trace, copied out before the system is torn
  /// down; empty for non-PMM policies.
  std::vector<core::PmmController::TracePoint> pmm_trace;
  /// Real (not simulated) seconds this job took.
  double wall_seconds = 0.0;
};

/// Worker count: RTQ_BENCH_JOBS override (> 0), else
/// hardware_concurrency(), else 1.
int BenchJobs();

/// A custom job body for sweeps that need more than "run until T and
/// summarize" (e.g. mid-run workload alternation). Receives the spec and
/// its submission index; whatever it returns lands at that index.
using RunJobFn = std::function<RunResult(const RunSpec& spec, size_t index)>;

/// Runs the default job (build Rtdbs, RunUntil, Summarize, capture the
/// PMM trace) for every spec on min(jobs, specs.size()) workers.
/// Results preserve submission order. Progress lines go to stderr.
std::vector<RunResult> RunPool(const std::vector<RunSpec>& specs, int jobs);

/// RunPool with jobs = BenchJobs().
std::vector<RunResult> RunPool(const std::vector<RunSpec>& specs);

/// RunPool with a custom job body (no progress lines). Exceptions thrown
/// by `fn` are captured per job; after all workers join, the failure with
/// the lowest submission index is rethrown.
std::vector<RunResult> RunPool(const std::vector<RunSpec>& specs, int jobs,
                               const RunJobFn& fn);

}  // namespace rtq::harness

#endif  // RTQ_HARNESS_RUNNER_H_
