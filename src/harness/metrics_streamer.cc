#include "harness/metrics_streamer.h"

#include <limits>

#include "harness/bench_json.h"

namespace rtq::harness {

void MetricsStreamer::Emit(engine::Rtdbs& sys, double wall_seconds) {
  const auto& records = sys.metrics().records();
  int64_t d_completed = 0;
  int64_t d_missed = 0;
  for (; record_cursor_ < records.size(); ++record_cursor_) {
    ++d_completed;
    if (records[record_cursor_].info.missed) ++d_missed;
  }
  cum_missed_ += d_missed;
  auto completed = static_cast<int64_t>(records.size());

  uint64_t events = sys.simulator().events_dispatched();
  double d_wall = wall_seconds - last_wall_;
  double rate = (lines_ > 0 && d_wall > 0.0)
                    ? static_cast<double>(events - last_events_) / d_wall
                    : std::numeric_limits<double>::quiet_NaN();
  last_events_ = events;
  last_wall_ = wall_seconds;

  core::MemoryManager& mm = sys.memory_manager();
  JsonWriter w;
  w.BeginObject();
  w.Key("schema").String("rtq-serve-metrics-3");
  if (shard_ >= 0) w.Key("shard").Int(shard_);
  w.Key("t").Number(sys.simulator().Now());
  w.Key("events").Int(static_cast<int64_t>(events));
  w.Key("pending").Int(static_cast<int64_t>(sys.simulator().pending_events()));
  w.Key("live").Int(sys.live_queries());
  // Runtime-recycling health (schema v2): `retired` is the instantaneous
  // parked-awaiting-reuse count (bounded; a growing value would signal a
  // purge bug), `recycled` the lifetime number of arena-reset reuses.
  w.Key("retired").Int(sys.retired_runtimes());
  w.Key("recycled").Int(sys.runtimes_recycled());
  w.Key("admitted").Int(mm.admitted_count());
  w.Key("waiting").Int(mm.waiting_count());
  w.Key("generated").Int(sys.arrivals().generated());
  w.Key("completed").Int(completed);
  w.Key("missed").Int(cum_missed_);
  w.Key("miss_ratio")
      .Number(completed > 0
                  ? static_cast<double>(cum_missed_) / completed
                  : 0.0);
  w.Key("d_completed").Int(d_completed);
  w.Key("d_missed").Int(d_missed);
  if (shard_ >= 0) w.Key("routed_elsewhere").Int(sys.routed_elsewhere());
  w.Key("allocated_pages").Int(mm.allocated_pages());
  w.Key("policy").String(sys.policy().Describe());
  w.Key("wall_seconds").Number(wall_seconds);
  w.Key("events_per_sec").Number(rate);
  w.EndObject();

  std::fprintf(out_, "%s\n", w.str().c_str());
  std::fflush(out_);
  ++lines_;
}

}  // namespace rtq::harness
