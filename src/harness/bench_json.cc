#include "harness/bench_json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "common/check.h"
#include "harness/args.h"
#include "harness/paper_experiments.h"

#ifndef RTQ_GIT_DESCRIBE
#define RTQ_GIT_DESCRIBE "unknown"
#endif

namespace rtq::harness {

// --- JsonWriter ------------------------------------------------------------

std::string JsonWriter::Escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (unsigned char ch : raw) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (ch < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", ch);
          out += buf;
        } else {
          out += static_cast<char>(ch);
        }
    }
  }
  return out;
}

void JsonWriter::Comma() {
  if (pending_key_) {
    // A value following its key: the comma (if any) was written with the
    // key itself.
    pending_key_ = false;
    return;
  }
  if (has_value_.back()) out_ += ',';
  has_value_.back() = true;
}

JsonWriter& JsonWriter::BeginObject() {
  Comma();
  out_ += '{';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  RTQ_CHECK(has_value_.size() > 1 && !pending_key_);
  has_value_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  Comma();
  out_ += '[';
  has_value_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  RTQ_CHECK(has_value_.size() > 1 && !pending_key_);
  has_value_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  RTQ_CHECK(!pending_key_);
  if (has_value_.back()) out_ += ',';
  has_value_.back() = true;
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  Comma();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  Comma();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  Comma();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  Comma();
  out_ += value ? "true" : "false";
  return *this;
}

// --- BenchJsonEmitter ------------------------------------------------------

std::string GitDescribe() {
  return EnvString("RTQ_GIT_DESCRIBE", RTQ_GIT_DESCRIBE);
}

BenchJsonEmitter::BenchJsonEmitter(std::string driver)
    : driver_(std::move(driver)) {}

void BenchJsonEmitter::AddResult(const RunResult& result,
                                 const std::string& policy, double lambda) {
  Point point;
  point.label = result.label;
  point.policy = policy;
  point.lambda = lambda;
  point.miss_ratio = result.summary.overall.miss_ratio;
  point.disk_util = result.summary.avg_disk_utilization;
  point.avg_mpl = result.summary.avg_mpl;
  point.avg_wait_s = result.summary.overall.avg_wait;
  point.avg_exec_s = result.summary.overall.avg_exec;
  point.avg_response_s = result.summary.overall.avg_response;
  point.completions = result.summary.overall.completions;
  point.misses = result.summary.overall.misses;
  point.events = static_cast<int64_t>(result.summary.events_dispatched);
  point.wall_seconds = result.wall_seconds;
  points_.push_back(std::move(point));
}

void BenchJsonEmitter::AddResult(const RunResult& result,
                                 const std::string& policy, double lambda,
                                 double gap_to_oracle) {
  AddResult(result, policy, lambda);
  points_.back().gap_to_oracle = gap_to_oracle;
}

void BenchJsonEmitter::AddConfig(const std::string& key,
                                 const std::string& value) {
  extra_config_.emplace_back(key, value);
}

std::string BenchJsonEmitter::ToJson(double total_wall_seconds) const {
  int64_t total_events = 0;
  for (const Point& p : points_) total_events += p.events;

  JsonWriter w;
  w.BeginObject();
  w.Key("driver").String(driver_);
  w.Key("schema_version").Int(1);
  w.Key("git").String(GitDescribe());

  w.Key("config").BeginObject();
  w.Key("sim_hours").Number(ExperimentDuration() / 3600.0);
  w.Key("jobs").Int(BenchJobs());
  w.Key("hardware_concurrency")
      .Int(static_cast<int64_t>(std::thread::hardware_concurrency()));
  for (const auto& [key, value] : extra_config_) w.Key(key).String(value);
  w.EndObject();

  w.Key("points").BeginArray();
  for (const Point& p : points_) {
    w.BeginObject();
    w.Key("label").String(p.label);
    w.Key("policy").String(p.policy);
    w.Key("lambda").Number(p.lambda);
    w.Key("miss_ratio").Number(p.miss_ratio);
    w.Key("disk_util").Number(p.disk_util);
    w.Key("avg_mpl").Number(p.avg_mpl);
    w.Key("avg_wait_s").Number(p.avg_wait_s);
    w.Key("avg_exec_s").Number(p.avg_exec_s);
    w.Key("avg_response_s").Number(p.avg_response_s);
    w.Key("completions").Int(p.completions);
    w.Key("misses").Int(p.misses);
    w.Key("events").Int(p.events);
    w.Key("wall_seconds").Number(p.wall_seconds);
    if (std::isfinite(p.gap_to_oracle)) {
      w.Key("gap_to_oracle").Number(p.gap_to_oracle);
    }
    w.EndObject();
  }
  w.EndArray();

  w.Key("totals").BeginObject();
  w.Key("wall_seconds").Number(total_wall_seconds);
  w.Key("events").Int(total_events);
  w.Key("events_per_second")
      .Number(total_wall_seconds > 0.0
                  ? static_cast<double>(total_events) / total_wall_seconds
                  : 0.0);
  w.EndObject();

  w.EndObject();
  return w.str() + "\n";
}

std::string BenchJsonEmitter::path() const {
  return "results/BENCH_" + driver_ + ".json";
}

Status BenchJsonEmitter::WriteFile(double total_wall_seconds) const {
  std::string file = path();
  std::error_code ec;
  std::filesystem::path p(file);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) return Status::Internal("mkdir failed: " + ec.message());
  }
  FILE* f = std::fopen(file.c_str(), "w");
  if (f == nullptr) return Status::Internal("cannot open " + file);
  std::string data = ToJson(total_wall_seconds);
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size()) return Status::Internal("short write to " + file);
  return Status::Ok();
}

}  // namespace rtq::harness
