#include "harness/csv.h"

#include <cstdio>
#include <filesystem>

namespace rtq::harness {

CsvWriter::CsvWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void CsvWriter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string CsvWriter::Escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

std::string CsvWriter::ToString() const {
  std::string out;
  for (size_t c = 0; c < headers_.size(); ++c) {
    out += Escape(headers_[c]);
    if (c + 1 < headers_.size()) out += ',';
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      out += Escape(row[c]);
      if (c + 1 < row.size()) out += ',';
    }
    out += '\n';
  }
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  std::error_code ec;
  std::filesystem::path p(path);
  if (p.has_parent_path()) {
    std::filesystem::create_directories(p.parent_path(), ec);
    if (ec) return Status::Internal("mkdir failed: " + ec.message());
  }
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::Internal("cannot open " + path);
  std::string data = ToString();
  size_t written = std::fwrite(data.data(), 1, data.size(), f);
  std::fclose(f);
  if (written != data.size())
    return Status::Internal("short write to " + path);
  return Status::Ok();
}

}  // namespace rtq::harness
