#ifndef RTQ_COMMON_ARENA_H_
#define RTQ_COMMON_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

namespace rtq {

// Phase-scoped bump allocator. Objects placed in an Arena do not have
// individual lifetimes: the whole phase is reclaimed at once by Reset(),
// which runs registered finalizers (newest first) and rewinds the bump
// cursor while KEEPING every chunk for reuse. After the first few phases
// the chunk list stabilises at its high-water mark and subsequent phases
// perform zero heap allocations — this is the property the steady-state
// malloc gate (tests/alloc_gate_test.cc) asserts for query runtimes.
//
// Not thread-safe; one arena per owner.
class Arena {
 public:
  explicit Arena(std::size_t initial_chunk_bytes = kDefaultChunkBytes);
  ~Arena();

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Raw bytes; align must be a power of two <= alignof(std::max_align_t).
  void* Allocate(std::size_t bytes, std::size_t align);

  // Placement-constructs a T. Non-trivially-destructible types get a
  // finalizer record (also arena-allocated) so Reset() can destroy them.
  template <typename T, typename... Args>
  T* New(Args&&... args) {
    void* p = Allocate(sizeof(T), alignof(T));
    T* obj = ::new (p) T(std::forward<Args>(args)...);
    if constexpr (!std::is_trivially_destructible_v<T>) {
      RegisterFinalizer(obj, [](void* q) { static_cast<T*>(q)->~T(); });
    }
    return obj;
  }

  // Uninitialised array of a trivially-destructible T.
  template <typename T>
  T* NewArray(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "NewArray does not register finalizers");
    return static_cast<T*>(Allocate(n * sizeof(T), alignof(T)));
  }

  // Runs finalizers newest-first, then rewinds to the first chunk.
  // Chunks are retained, so a phase that fits in the existing chunks
  // allocates nothing from the heap.
  void Reset();

  // Bytes handed out since the last Reset (includes alignment padding
  // and finalizer records).
  std::size_t bytes_used() const { return bytes_used_; }
  // Total heap bytes owned by the arena's chunks (survives Reset).
  std::size_t bytes_reserved() const { return bytes_reserved_; }
  // Max bytes_used() observed over any phase so far.
  std::size_t high_water() const { return high_water_; }
  std::size_t chunk_count() const { return chunk_count_; }

  static constexpr std::size_t kDefaultChunkBytes = 8192;

 private:
  struct Chunk {
    Chunk* next;
    std::size_t size;  // usable payload bytes following this header
    unsigned char* data() { return reinterpret_cast<unsigned char*>(this + 1); }
  };
  struct Finalizer {
    void (*fn)(void*);
    void* obj;
    Finalizer* next;
  };

  void RegisterFinalizer(void* obj, void (*fn)(void*));
  void* AllocateSlow(std::size_t bytes, std::size_t align);
  Chunk* NewChunk(std::size_t min_payload);

  Chunk* head_ = nullptr;     // first chunk, in allocation order
  Chunk* current_ = nullptr;  // chunk the cursor lives in
  unsigned char* ptr_ = nullptr;
  unsigned char* end_ = nullptr;
  Finalizer* finalizers_ = nullptr;  // newest first
  std::size_t initial_chunk_bytes_;
  std::size_t bytes_used_ = 0;
  std::size_t bytes_reserved_ = 0;
  std::size_t high_water_ = 0;
  std::size_t chunk_count_ = 0;
};

// Minimal std-compatible allocator over an Arena. A default-constructed
// (nullptr-arena) instance falls back to the global heap so containers
// remain usable in contexts without an arena (tests, cold paths).
// Arena-backed deallocate is a no-op: memory returns at Reset().
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  ArenaAllocator() noexcept : arena_(nullptr) {}
  explicit ArenaAllocator(Arena* arena) noexcept : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept
      : arena_(other.arena()) {}

  T* allocate(std::size_t n) {
    if (arena_ != nullptr) {
      return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t) noexcept {
    if (arena_ == nullptr) ::operator delete(p);
  }

  Arena* arena() const { return arena_; }

  friend bool operator==(const ArenaAllocator& a, const ArenaAllocator& b) {
    return a.arena_ == b.arena_;
  }
  friend bool operator!=(const ArenaAllocator& a, const ArenaAllocator& b) {
    return !(a == b);
  }

 private:
  Arena* arena_;
};

}  // namespace rtq

#endif  // RTQ_COMMON_ARENA_H_
