// Core typed units shared across the rtq library.
//
// The simulator measures time in seconds (double), memory in 8 KB pages,
// and CPU work in instructions. Using dedicated aliases (instead of bare
// int64_t/double everywhere) keeps signatures self-documenting and makes
// unit mistakes greppable.

#ifndef RTQ_COMMON_TYPES_H_
#define RTQ_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace rtq {

/// Simulated wall-clock time, in seconds.
using SimTime = double;

/// A count of 8 KB buffer/disk pages.
using PageCount = int64_t;

/// A count of CPU instructions (cost-model currency, Table 4 of the paper).
using Instructions = int64_t;

/// Unique id assigned to each query by the workload source, in arrival order.
/// Also used to break Earliest-Deadline ties deterministically.
using QueryId = uint64_t;

/// Index of a disk in the disk array.
using DiskId = int32_t;

/// Cylinder number on a disk (0-based, < DiskGeometry::num_cylinders).
using Cylinder = int64_t;

/// Sentinel for "no deadline" / "background priority".
inline constexpr SimTime kNoDeadline = std::numeric_limits<SimTime>::infinity();

/// Sentinel for invalid ids.
inline constexpr QueryId kInvalidQueryId = std::numeric_limits<QueryId>::max();

inline constexpr SimTime kMillisecond = 1e-3;

}  // namespace rtq

#endif  // RTQ_COMMON_TYPES_H_
