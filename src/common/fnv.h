// FNV-1a 64-bit streaming hash.
//
// Snapshot digests compress unbounded state (pending event calendars,
// LRU recency orders, rng engine states, completion-record histories)
// into fixed-width fingerprint lines. FNV-1a is not cryptographic; it is
// chosen because it is a dozen lines, byte-order independent in the way
// we feed it (explicit little-endian word splitting), and collisions are
// irrelevant for the digest's job of catching honest divergence between
// a restored and an uninterrupted run.

#ifndef RTQ_COMMON_FNV_H_
#define RTQ_COMMON_FNV_H_

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace rtq {

class Fnv1a64 {
 public:
  /// Absorbs `n` raw bytes.
  void Update(const void* data, size_t n) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < n; ++i) {
      state_ ^= p[i];
      state_ *= kPrime;
    }
  }

  /// Absorbs a 64-bit word in a fixed (little-endian) byte order, so the
  /// digest does not depend on host endianness.
  void Update64(uint64_t v) {
    unsigned char bytes[8];
    for (int i = 0; i < 8; ++i) bytes[i] = static_cast<unsigned char>(v >> (8 * i));
    Update(bytes, 8);
  }

  /// Absorbs a double by bit pattern (exact, not by rounded rendering).
  void UpdateDouble(double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    Update64(bits);
  }

  void UpdateString(const std::string& s) { Update(s.data(), s.size()); }

  uint64_t digest() const { return state_; }

 private:
  static constexpr uint64_t kOffsetBasis = 14695981039346656037ULL;
  static constexpr uint64_t kPrime = 1099511628211ULL;
  uint64_t state_ = kOffsetBasis;
};

/// One-shot convenience over a string (e.g. a serialized rng state).
inline uint64_t Fnv1a64Hash(const std::string& s) {
  Fnv1a64 h;
  h.UpdateString(s);
  return h.digest();
}

}  // namespace rtq

#endif  // RTQ_COMMON_FNV_H_
