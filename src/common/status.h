// Minimal Status / StatusOr for public-API validation errors.
//
// Internal invariants use RTQ_CHECK (check.h); Status is reserved for
// errors a caller can plausibly cause (bad configuration, out-of-range
// parameters) and is returned from constructors' factory functions.

#ifndef RTQ_COMMON_STATUS_H_
#define RTQ_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

#include "common/check.h"

namespace rtq {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kFailedPrecondition,
  kNotFound,
  kInternal,
  kUnimplemented,
};

/// Value-semantic error carrier. Cheap to copy when OK.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: num_disks must be > 0".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value or an error. Accessing value() on an error aborts.
/// T need not be default-constructible.
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {      // NOLINT
    RTQ_CHECK_MSG(!status_.ok(), "StatusOr constructed from OK status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    RTQ_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T& value() & {
    RTQ_CHECK_MSG(ok(), status_.ToString().c_str());
    return *value_;
  }
  T&& value() && {
    RTQ_CHECK_MSG(ok(), status_.ToString().c_str());
    return std::move(*value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

#define RTQ_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::rtq::Status _rtq_status = (expr);      \
    if (!_rtq_status.ok()) return _rtq_status; \
  } while (0)

}  // namespace rtq

#endif  // RTQ_COMMON_STATUS_H_
