#include "common/rng.h"

#include <sstream>

namespace rtq {

double Rng::Exponential(double rate) {
  RTQ_CHECK_MSG(rate > 0.0, "exponential rate must be positive");
  return std::exponential_distribution<double>(rate)(engine_);
}

Rng Rng::Fork() {
  // Mix the child seed through splitmix64 so that sequentially forked
  // streams do not overlap in the parent's output sequence.
  uint64_t z = engine_() + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return Rng(z ^ (z >> 31));
}

std::string Rng::StateString() const {
  std::ostringstream out;
  out << engine_;
  return out.str();
}

Status Rng::SetStateString(const std::string& state) {
  std::mt19937_64 candidate;
  std::istringstream in(state);
  in >> candidate;
  if (in.fail()) {
    return Status::InvalidArgument("malformed mt19937_64 state string");
  }
  engine_ = candidate;
  return Status::Ok();
}

}  // namespace rtq
