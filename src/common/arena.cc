#include "common/arena.h"

#include <algorithm>
#include <cstdlib>

#include "common/check.h"

namespace rtq {

Arena::Arena(std::size_t initial_chunk_bytes)
    : initial_chunk_bytes_(std::max<std::size_t>(initial_chunk_bytes, 64)) {}

Arena::~Arena() {
  Reset();
  Chunk* c = head_;
  while (c != nullptr) {
    Chunk* next = c->next;
    ::operator delete(c);
    c = next;
  }
}

Arena::Chunk* Arena::NewChunk(std::size_t min_payload) {
  // Geometric growth from the initial size so the chunk count stays
  // logarithmic in the phase footprint.
  std::size_t payload = initial_chunk_bytes_
                        << std::min<std::size_t>(chunk_count_, 10);
  payload = std::max(payload, min_payload);
  void* raw = ::operator new(sizeof(Chunk) + payload);
  Chunk* c = static_cast<Chunk*>(raw);
  c->next = nullptr;
  c->size = payload;
  bytes_reserved_ += sizeof(Chunk) + payload;
  ++chunk_count_;
  return c;
}

void* Arena::Allocate(std::size_t bytes, std::size_t align) {
  RTQ_CHECK(align != 0 && (align & (align - 1)) == 0);
  auto addr = reinterpret_cast<std::uintptr_t>(ptr_);
  std::size_t pad = (~addr + 1) & (align - 1);
  if (ptr_ != nullptr && pad + bytes <= static_cast<std::size_t>(end_ - ptr_)) {
    void* p = ptr_ + pad;
    ptr_ += pad + bytes;
    bytes_used_ += pad + bytes;
    high_water_ = std::max(high_water_, bytes_used_);
    return p;
  }
  return AllocateSlow(bytes, align);
}

void* Arena::AllocateSlow(std::size_t bytes, std::size_t align) {
  // Advance through retained chunks first; only grow the heap once the
  // phase outruns every chunk it has ever owned. Chunk payloads start
  // max_align-aligned, so a fresh chunk needs no padding for any align
  // this arena accepts.
  RTQ_CHECK(align <= alignof(std::max_align_t));
  Chunk* next = (current_ != nullptr) ? current_->next : head_;
  while (next != nullptr && next->size < bytes) {
    // Too small for this request; skip it this phase (still retained —
    // a later Reset starts over from head_).
    current_ = next;
    next = next->next;
  }
  if (next == nullptr) {
    next = NewChunk(bytes);
    if (current_ != nullptr) {
      current_->next = next;
    } else {
      head_ = next;
    }
  }
  current_ = next;
  ptr_ = current_->data();
  end_ = ptr_ + current_->size;
  void* p = ptr_;
  ptr_ += bytes;
  bytes_used_ += bytes;
  high_water_ = std::max(high_water_, bytes_used_);
  return p;
}

void Arena::RegisterFinalizer(void* obj, void (*fn)(void*)) {
  auto* rec =
      static_cast<Finalizer*>(Allocate(sizeof(Finalizer), alignof(Finalizer)));
  rec->fn = fn;
  rec->obj = obj;
  rec->next = finalizers_;
  finalizers_ = rec;
}

void Arena::Reset() {
  for (Finalizer* f = finalizers_; f != nullptr; f = f->next) {
    f->fn(f->obj);
  }
  finalizers_ = nullptr;
  bytes_used_ = 0;
  current_ = head_;
  if (head_ != nullptr) {
    ptr_ = head_->data();
    end_ = ptr_ + head_->size;
  } else {
    ptr_ = end_ = nullptr;
  }
}

}  // namespace rtq
