#ifndef RTQ_COMMON_INLINE_CALLBACK_H_
#define RTQ_COMMON_INLINE_CALLBACK_H_

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace rtq {

namespace internal {

// One ops table per callable type, shared by every InlineCallback
// capacity (which is what makes the widening converting move legal).
// `move_construct` is null for trivially-copyable captures and `destroy`
// for trivially-destructible ones: the holder then relocates with a
// fixed-size inline copy / skips destruction, avoiding an indirect call
// per event on the simulator's hottest path.
struct CallbackOps {
  void (*invoke)(void* buf);
  void (*move_construct)(void* dst, void* src) noexcept;
  void (*destroy)(void* buf) noexcept;
};

template <typename D>
struct CallbackOpsFor {
  static void Invoke(void* buf) { (*static_cast<D*>(buf))(); }
  static void MoveConstruct(void* dst, void* src) noexcept {
    ::new (dst) D(std::move(*static_cast<D*>(src)));
    static_cast<D*>(src)->~D();
  }
  static void Destroy(void* buf) noexcept { static_cast<D*>(buf)->~D(); }
  static constexpr CallbackOps table = {
      &Invoke,
      std::is_trivially_copyable_v<D> ? nullptr : &MoveConstruct,
      std::is_trivially_destructible_v<D> ? nullptr : &Destroy};
};

template <typename D>
constexpr CallbackOps CallbackOpsFor<D>::table;

}  // namespace internal

// Fixed-capacity move-only callable holder for void() continuations.
// Unlike std::function there is NO heap fallback: a capture larger than
// Capacity is a compile error (static_assert), so hot submit paths stay
// allocation-free by construction. Widening moves (smaller capacity into
// larger) are allowed; narrowing is not. See docs/ARCHITECTURE.md
// ("Performance") for the capture-size budget per call site.
template <std::size_t Capacity>
class InlineCallback {
 public:
  static constexpr std::size_t kCapacity = Capacity;
  // 8-byte alignment covers every hot-path capture (pointers, int64,
  // double) while keeping nested callbacks compact enough to stack:
  // sizeof(InlineCallback<C>) is exactly C + 8.
  static constexpr std::size_t kAlign = 8;

  InlineCallback() noexcept : ops_(nullptr) {}
  InlineCallback(std::nullptr_t) noexcept : ops_(nullptr) {}  // NOLINT

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT: implicit like std::function
    Construct(std::forward<F>(f));
  }

  /// Assigning a callable constructs it directly in the buffer — no
  /// temporary holder, no relocation. This is what lets the event queue
  /// build a callback straight into its slab slot.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineCallback> &&
                !std::is_same_v<std::decay_t<F>, std::nullptr_t> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineCallback& operator=(F&& f) {
    Clear();
    Construct(std::forward<F>(f));
    return *this;
  }

  InlineCallback(InlineCallback&& other) noexcept { AdoptFrom(other); }

  // Widening move from a smaller capacity.
  template <std::size_t C2, typename = std::enable_if_t<(C2 < Capacity)>>
  InlineCallback(InlineCallback<C2>&& other) noexcept {  // NOLINT
    AdoptFrom(other);
  }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Clear();
      AdoptFrom(other);
    }
    return *this;
  }

  InlineCallback& operator=(std::nullptr_t) noexcept {
    Clear();
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Clear(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  template <std::size_t>
  friend class InlineCallback;

  template <typename F>
  void Construct(F&& f) {
    using D = std::decay_t<F>;
    static_assert(sizeof(D) <= Capacity,
                  "capture too large for this InlineCallback capacity; "
                  "shrink the capture or widen the call site's alias");
    static_assert(alignof(D) <= kAlign, "over-aligned capture");
    static_assert(std::is_nothrow_move_constructible_v<D>,
                  "captures must be nothrow-move-constructible");
    ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
    // Trivially-copyable captures relocate with a full-capacity
    // fixed-size copy (see AdoptFrom); zero the tail once here so that
    // copy never reads indeterminate bytes. An empty callable writes no
    // bytes at all, so its tail is the whole buffer.
    constexpr std::size_t used = std::is_empty_v<D> ? 0 : sizeof(D);
    if constexpr (std::is_trivially_copyable_v<D> && used < Capacity) {
      std::memset(buf_ + used, 0, Capacity - used);
    }
    ops_ = &internal::CallbackOpsFor<D>::table;
  }

  /// Takes over `other`'s callable (ops_ must be empty). Trivially
  /// copyable captures relocate with a compile-time-sized copy of the
  /// source's whole buffer (its tail is zeroed at construction), which
  /// the compiler turns into a few vector moves; only non-trivial
  /// captures pay the indirect call.
  template <std::size_t C2>
  void AdoptFrom(InlineCallback<C2>& other) noexcept {
    static_assert(C2 <= Capacity, "narrowing callback move");
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      if (ops_->move_construct != nullptr) {
        ops_->move_construct(buf_, other.buf_);
      } else {
        std::memcpy(buf_, other.buf_, C2);
        // Keep a widened holder fully initialized so its own future
        // relocations can again copy the full buffer.
        if constexpr (C2 < Capacity) {
          std::memset(buf_ + C2, 0, Capacity - C2);
        }
      }
      other.ops_ = nullptr;
    }
  }

  void Clear() noexcept {
    if (ops_ != nullptr) {
      if (ops_->destroy != nullptr) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  const internal::CallbackOps* ops_;
  alignas(kAlign) unsigned char buf_[Capacity];
};

}  // namespace rtq

#endif  // RTQ_COMMON_INLINE_CALLBACK_H_
