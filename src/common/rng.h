// Deterministic random-number streams.
//
// Every stochastic component of the simulation (arrival process, relation
// selection, slack ratios, ...) owns its own Rng so that changing one
// component's consumption pattern does not perturb the others — the
// standard technique for variance reduction and reproducibility in
// discrete-event simulation studies such as the paper's.

#ifndef RTQ_COMMON_RNG_H_
#define RTQ_COMMON_RNG_H_

#include <cstdint>
#include <random>
#include <string>

#include "common/check.h"
#include "common/status.h"

namespace rtq {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform real in [lo, hi).
  double Uniform(double lo, double hi) {
    RTQ_DCHECK(lo <= hi);
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  /// Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    RTQ_DCHECK(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Exponential inter-arrival time with the given rate (events/second).
  double Exponential(double rate);

  /// Uniform real in [0, 1).
  double NextDouble() { return Uniform(0.0, 1.0); }

  /// Derives an independent child stream; used to hand sub-streams to
  /// components from one master seed.
  Rng Fork();

  /// Serialized engine state: the standard-library textual form of
  /// std::mt19937_64 (312 state words plus the stream position,
  /// space-separated). Two Rngs with equal StateString() produce
  /// identical draw sequences forever — snapshot digests compare these
  /// strings to prove arrival streams were restored exactly.
  std::string StateString() const;

  /// Restores the engine from a StateString(). Malformed input returns
  /// InvalidArgument and leaves the engine untouched.
  Status SetStateString(const std::string& state);

 private:
  std::mt19937_64 engine_;
};

}  // namespace rtq

#endif  // RTQ_COMMON_RNG_H_
