#ifndef RTQ_COMMON_POOL_H_
#define RTQ_COMMON_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace rtq {

// Size-classed free-list pool for container nodes. Allocations up to
// kMaxBytes are served from 64KB slabs and recycled through per-class
// free lists, so a container that churns nodes (map/unordered_map on a
// hot path) stops touching the heap once its working set has been seen.
// Larger requests (e.g. unordered_map bucket arrays) fall through to
// ::operator new — those grow monotonically and stabilise after warmup.
//
// Declare the pool BEFORE any container using it so the containers are
// destroyed first.
class NodePool {
 public:
  static constexpr std::size_t kGranularity = 16;
  static constexpr std::size_t kMaxBytes = 256;
  static constexpr std::size_t kSlabBytes = 64 * 1024;

  NodePool() = default;
  NodePool(const NodePool&) = delete;
  NodePool& operator=(const NodePool&) = delete;

  void* Allocate(std::size_t bytes) {
    if (bytes == 0) bytes = 1;
    if (bytes > kMaxBytes) return ::operator new(bytes);
    const std::size_t cls = (bytes - 1) / kGranularity;
    if (FreeNode* n = free_[cls]) {
      free_[cls] = n->next;
      return n;
    }
    const std::size_t size = (cls + 1) * kGranularity;
    if (slab_remaining_ < size) {
      slabs_.push_back(std::make_unique<unsigned char[]>(kSlabBytes));
      slab_ptr_ = slabs_.back().get();
      slab_remaining_ = kSlabBytes;
    }
    void* p = slab_ptr_;
    slab_ptr_ += size;
    slab_remaining_ -= size;
    return p;
  }

  void Deallocate(void* p, std::size_t bytes) noexcept {
    if (bytes == 0) bytes = 1;
    if (bytes > kMaxBytes) {
      ::operator delete(p);
      return;
    }
    const std::size_t cls = (bytes - 1) / kGranularity;
    auto* n = static_cast<FreeNode*>(p);
    n->next = free_[cls];
    free_[cls] = n;
  }

  std::size_t slab_count() const { return slabs_.size(); }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  FreeNode* free_[kMaxBytes / kGranularity] = {};
  std::vector<std::unique_ptr<unsigned char[]>> slabs_;
  unsigned char* slab_ptr_ = nullptr;
  std::size_t slab_remaining_ = 0;
};

// Std-compatible allocator over a NodePool. Default-constructed
// (nullptr-pool) instances go straight to the heap, keeping the type
// usable where no pool is wired up. Allocators compare equal only when
// they share a pool, so containers with different pools move
// element-wise instead of stealing nodes across pools.
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "over-aligned types not supported");

  PoolAllocator() noexcept : pool_(nullptr) {}
  explicit PoolAllocator(NodePool* pool) noexcept : pool_(pool) {}
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) noexcept  // NOLINT
      : pool_(other.pool()) {}

  T* allocate(std::size_t n) {
    if (pool_ != nullptr) {
      return static_cast<T*>(pool_->Allocate(n * sizeof(T)));
    }
    return static_cast<T*>(::operator new(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (pool_ != nullptr) {
      pool_->Deallocate(p, n * sizeof(T));
    } else {
      ::operator delete(p);
    }
  }

  NodePool* pool() const { return pool_; }

  friend bool operator==(const PoolAllocator& a, const PoolAllocator& b) {
    return a.pool_ == b.pool_;
  }
  friend bool operator!=(const PoolAllocator& a, const PoolAllocator& b) {
    return !(a == b);
  }

 private:
  NodePool* pool_;
};

}  // namespace rtq

#endif  // RTQ_COMMON_POOL_H_
