// Invariant-checking macros.
//
// RTQ_CHECK is always on (simulation correctness depends on invariants and
// the cost of a compare is negligible next to event dispatch). RTQ_DCHECK
// compiles out in NDEBUG builds and is used on hot paths.

#ifndef RTQ_COMMON_CHECK_H_
#define RTQ_COMMON_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define RTQ_CHECK(cond)                                                     \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "RTQ_CHECK failed at %s:%d: %s\n", __FILE__,     \
                   __LINE__, #cond);                                        \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#define RTQ_CHECK_MSG(cond, msg)                                            \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "RTQ_CHECK failed at %s:%d: %s (%s)\n", __FILE__, \
                   __LINE__, #cond, msg);                                   \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#ifdef NDEBUG
#define RTQ_DCHECK(cond) \
  do {                   \
  } while (0)
#else
#define RTQ_DCHECK(cond) RTQ_CHECK(cond)
#endif

#endif  // RTQ_COMMON_CHECK_H_
