// "select" — online policy selection: a UCB bandit over registered
// policy specs, hot-swapping the whole strategy stack from OnTick.
//
// No admission policy wins every workload (the scenario sweeps show pmm,
// pmm-predict, and edf-shed trading places by shape), and a production
// system cannot rerun the sweep before choosing. select treats the
// registered policy specs as bandit arms: it runs one candidate at a
// time, scores each evaluation window by its realized miss ratio
// (reward = 1 - window miss ratio, counted from OnQueryEvent — the
// shared SystemProbe is never touched), and picks the next arm by the
// UCB1 rule: untried arms first in spec order, then
//
//   argmax  mean_reward(arm) + sqrt(2 ln(epochs) / pulls(arm))
//
// with ties broken toward the earlier spec — fully deterministic, no
// RNG. Switching arms builds a *fresh* policy from the registry and
// re-Attaches it (each policy sees Attach exactly once, per the
// MemoryPolicy contract), installing its strategy mid-run; the PR 5
// tick-probe test pins that strategy swaps from OnTick are safe.
//
//   spec: "select"                               (candidates=pmm)
//         "select:candidates=pmm,pmm-predict"    (commas fold per the
//                                                 policy-list grammar)
//         "select:candidates=pmm+pmm-predict,window=10"
//
// The canonical form joins candidates with '+' so the whole spec
// survives inside a comma-separated RTQ_POLICIES list. `window` is the
// evaluation epoch in ticks (default 5). With a single candidate the
// bandit never runs and the trajectory is bit-identical to the
// candidate bare — the degenerate case the zero-drift gate pins.
// Registers from its own translation unit: no edits under src/engine/.

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/memory_policy.h"
#include "core/policy_registry.h"

namespace rtq::core {
namespace {

constexpr int64_t kDefaultWindow = 5;

class SelectPolicy : public MemoryPolicy {
 public:
  SelectPolicy(std::vector<std::string> candidates,
               std::vector<std::string> display_names, int64_t window)
      : candidates_(std::move(candidates)),
        display_names_(std::move(display_names)),
        window_(window),
        pulls_(candidates_.size(), 0),
        reward_sum_(candidates_.size(), 0.0) {}

  Status Attach(const PolicyHost& host) override {
    if (candidates_.size() > 1 && host.tick_interval <= 0.0) {
      // The bandit only advances on ticks; without them the first arm
      // would run forever and the "selection" would be a lie.
      return Status::FailedPrecondition(
          "select with multiple candidates needs a host that ticks "
          "(mpl_sample_interval > 0)");
    }
    host_ = host;
    return SwapTo(0);
  }

  void OnQueryEvent(const QueryEvent& event) override {
    if (event.kind == QueryEvent::Kind::kCompletion) {
      ++completions_;
      if (event.info.missed) ++misses_;
    }
    active_->OnQueryEvent(event);
  }

  void OnTick(SimTime now) override {
    active_->OnTick(now);
    if (candidates_.size() < 2) return;  // degenerate: nothing to select
    if (++ticks_in_epoch_ < window_) return;

    // Close the epoch: credit the active arm with 1 - miss ratio. An
    // epoch with no completions is unscored evidence-free time; count
    // the pull (so the rotation advances) but score it neutrally high,
    // matching "no misses observed".
    double reward =
        completions_ > 0
            ? 1.0 - static_cast<double>(misses_) /
                        static_cast<double>(completions_)
            : 1.0;
    ++pulls_[active_index_];
    reward_sum_[active_index_] += reward;
    ++epochs_;
    ticks_in_epoch_ = 0;
    completions_ = misses_ = 0;

    size_t next = PickArm();
    if (next != active_index_) {
      Status st = SwapTo(next);
      // Every candidate already attached once (untried arms are visited
      // first), so a later re-attach cannot newly fail.
      RTQ_CHECK_MSG(st.ok(), st.ToString().c_str());
    }
  }

  std::string Describe() const override {
    std::string joined;
    for (size_t i = 0; i < candidates_.size(); ++i) {
      if (i > 0) joined += "+";
      joined += candidates_[i];
    }
    return "select:candidates=" + joined +
           ",window=" + std::to_string(window_);
  }

  std::string DisplayName() const override {
    std::string joined;
    for (size_t i = 0; i < display_names_.size(); ++i) {
      if (i > 0) joined += "+";
      joined += display_names_[i];
    }
    return "Select(" + joined + ")";
  }

  const PmmController* pmm_controller() const override {
    return active_ ? active_->pmm_controller() : nullptr;
  }

 private:
  /// UCB1 with untried-arms-first in spec order; deterministic
  /// lowest-index tie-break.
  size_t PickArm() const {
    for (size_t i = 0; i < pulls_.size(); ++i) {
      if (pulls_[i] == 0) return i;
    }
    size_t best = 0;
    double best_score = -1.0;
    for (size_t i = 0; i < pulls_.size(); ++i) {
      double mean = reward_sum_[i] / static_cast<double>(pulls_[i]);
      double bonus = std::sqrt(2.0 * std::log(static_cast<double>(epochs_)) /
                               static_cast<double>(pulls_[i]));
      double score = mean + bonus;
      if (score > best_score) {
        best_score = score;
        best = i;
      }
    }
    return best;
  }

  Status SwapTo(size_t index) {
    auto policy = PolicyRegistry::Global().Create(candidates_[index]);
    if (!policy.ok()) return policy.status();
    RTQ_RETURN_IF_ERROR(policy.value()->Attach(host_));
    active_ = std::move(policy).value();
    active_index_ = index;
    return Status::Ok();
  }

  std::vector<std::string> candidates_;  // canonical specs
  std::vector<std::string> display_names_;
  int64_t window_;

  PolicyHost host_;
  std::unique_ptr<MemoryPolicy> active_;
  size_t active_index_ = 0;

  std::vector<int64_t> pulls_;
  std::vector<double> reward_sum_;
  int64_t epochs_ = 0;
  int64_t ticks_in_epoch_ = 0;
  int64_t completions_ = 0;
  int64_t misses_ = 0;
};

StatusOr<std::unique_ptr<MemoryPolicy>> MakeSelectPolicy(
    const PolicySpec& spec) {
  std::string candidates_arg = "pmm";
  int64_t window = kDefaultWindow;
  if (!spec.args.empty()) {
    // Key segments are "candidates=..." / "window=..."; any other
    // segment is part of the current value (candidate specs themselves
    // contain commas: "pmm-class:targets=6,10").
    std::string* current = nullptr;
    bool have_candidates = false;
    std::string window_arg;
    size_t pos = 0;
    while (pos <= spec.args.size()) {
      size_t comma = spec.args.find(',', pos);
      std::string piece = spec.args.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      if (piece.rfind("candidates=", 0) == 0) {
        candidates_arg = piece.substr(11);
        have_candidates = true;
        current = &candidates_arg;
      } else if (piece.rfind("window=", 0) == 0) {
        window_arg = piece.substr(7);
        current = &window_arg;
      } else if (current != nullptr) {
        *current += "," + piece;
      } else {
        return Status::InvalidArgument(
            "select: expected candidates=... or window=..., got '" + piece +
            "'");
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (have_candidates && candidates_arg.empty()) {
      return Status::InvalidArgument("select: candidates list is empty");
    }
    if (!window_arg.empty()) {
      auto parsed = ParseSpecInt(window_arg);
      if (!parsed.ok()) return parsed.status();
      if (parsed.value() < 1) {
        return Status::InvalidArgument("select: window must be >= 1 tick");
      }
      window = parsed.value();
    }
  }

  // Candidates: '+'-separated groups, each group itself a policy list
  // (so both the canonical '+' form and the comma form parse).
  std::vector<std::string> raw_specs;
  size_t pos = 0;
  while (pos <= candidates_arg.size()) {
    size_t plus = candidates_arg.find('+', pos);
    std::string group = candidates_arg.substr(
        pos, plus == std::string::npos ? std::string::npos : plus - pos);
    auto specs = ParsePolicyList(group);
    if (!specs.ok()) return specs.status();
    for (auto& s : specs.value()) raw_specs.push_back(std::move(s));
    if (plus == std::string::npos) break;
    pos = plus + 1;
  }

  // Canonicalize and validate each candidate by building it once.
  std::vector<std::string> canonical;
  std::vector<std::string> display_names;
  for (const std::string& raw : raw_specs) {
    auto parsed = PolicySpec::Parse(raw);
    if (!parsed.ok()) return parsed.status();
    if (parsed.value().name == "select") {
      return Status::InvalidArgument("select: candidates cannot nest select");
    }
    auto candidate = PolicyRegistry::Global().Create(raw);
    if (!candidate.ok()) return candidate.status();
    canonical.push_back(candidate.value()->Describe());
    display_names.push_back(candidate.value()->DisplayName());
  }
  return std::unique_ptr<MemoryPolicy>(new SelectPolicy(
      std::move(canonical), std::move(display_names), window));
}

RTQ_REGISTER_POLICY("select",
                    "select[:candidates=s1+s2+...,window=N] — UCB bandit "
                    "over policy specs, re-selected every N ticks",
                    MakeSelectPolicy);

}  // namespace
}  // namespace rtq::core
