// "edf-shed" — Earliest-Deadline-First allocation with feasibility
// shedding.
//
// A firm real-time system gains nothing from queries that finish late,
// so spending memory on a query that can no longer make its deadline is
// pure waste (the paper's Section 3.1 motivates admission control with
// exactly this observation). edf-shed acts on it with the information
// the system already has: the cost model's stand-alone execution-time
// estimate (MemRequest::standalone_estimate, the same estimate deadline
// assignment uses in Section 4.1), credited for progress — the estimate
// is scaled by the fraction of operand pages not yet read
// (core::RemainingEstimate), so a query that is 90% done only needs 10%
// of its estimate to remain feasible and is never robbed of memory on
// the strength of work it already finished. Any query whose remaining
// time to deadline is below `margin * remaining estimate` — infeasible
// even at its maximum allocation on an idle machine — is shed: it gets
// no memory and ages out at its deadline. The survivors share memory in
// plain EDF order under the MinMax discipline (minimums first, then
// top-ups to the maximum in deadline order), with no MPL cap.
//
//   spec: "edf-shed"           (margin = 1)
//         "edf-shed:m=1.5"     (require 1.5x the estimate to remain)
//
// Feasibility is re-evaluated at reallocation points. When a round shed
// nobody, the inner MinMax-infinity stable-tail proof is exposed, so
// denied-tail churn takes PR 4's incremental path without a recompute;
// membership changes absorbed that way defer the next feasibility check
// to the next true reallocation — deliberate policy semantics (shedding
// is lazy in the dead zone), not drift: a deferred-shed query holds no
// memory either way, and the determinism pins cover the trajectory.
//
// Contrast with "oracle-ed" (policy_oracle_ed.cc): the oracle pairs the
// same feasibility filter with all-or-nothing maximum grants, making it
// an optimistic upper bound; edf-shed is the practical sibling — same
// signal, but admitted queries degrade gracefully through the min/max
// range instead of being skipped when the pool cannot cover their
// maximum. Registers from its own translation unit: no edits under
// src/engine/.

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/memory_policy.h"
#include "core/policy_registry.h"
#include "core/strategy.h"

namespace rtq::core {
namespace {

class EdfShedStrategy : public AllocationStrategy {
 public:
  EdfShedStrategy(std::function<SimTime()> now, double margin)
      : now_(std::move(now)),
        margin_(margin),
        inner_(/*mpl_limit=*/-1) {}

  AllocationVector Allocate(const std::vector<MemRequest>& ed_sorted,
                            PageCount total) const override {
    StableTailHint ignored;
    return AllocateWithHint(ed_sorted, total, &ignored);
  }

  // When nothing was shed this round the wrapper was a no-op, so the
  // inner MinMax-infinity stable-tail proof holds for this input and is
  // exposed (AllocateThroughFilter invalidates it whenever anything was
  // filtered). A request absorbed by that proof receives nothing — the
  // same outcome whether the next true reallocation finds it feasible
  // (denied tail) or sheds it — so the fast path only defers *when* the
  // clock-dependent filter is next consulted, never what anyone holds.
  // See the header comment for why that laziness is the policy's
  // defined semantics.
  AllocationVector AllocateWithHint(const std::vector<MemRequest>& ed_sorted,
                                    PageCount total,
                                    StableTailHint* hint) const override {
    SimTime now = now_();
    return AllocateThroughFilter(
        inner_, ed_sorted, total,
        [this, now](const MemRequest& q) {
          // Shed queries infeasible even at max allocation, crediting
          // the work they already completed.
          return q.deadline - now >= margin_ * RemainingEstimate(q);
        },
        hint);
  }

  std::string name() const override { return "EdfShed"; }

 private:
  std::function<SimTime()> now_;
  double margin_;
  MinMaxStrategy inner_;
};

class EdfShedPolicy : public MemoryPolicy {
 public:
  explicit EdfShedPolicy(double margin) : margin_(margin) {}

  Status Attach(const PolicyHost& host) override {
    if (!host.now) {
      return Status::FailedPrecondition(
          "edf-shed needs a simulation clock from the host");
    }
    host.mm->SetStrategy(
        std::make_unique<EdfShedStrategy>(host.now, margin_));
    return Status::Ok();
  }

  std::string Describe() const override {
    return margin_ == 1.0 ? "edf-shed"
                          : "edf-shed:m=" + FormatSpecDoubleList({margin_});
  }
  std::string DisplayName() const override { return "EDF-Shed"; }

 private:
  double margin_;
};

StatusOr<std::unique_ptr<MemoryPolicy>> MakeEdfShedPolicy(
    const PolicySpec& spec) {
  double margin = 1.0;
  if (!spec.args.empty()) {
    auto kv = ParseSpecKeyValue(spec.args);
    if (!kv.ok()) return kv.status();
    if (kv.value().first != "m") {
      return Status::InvalidArgument("edf-shed: unknown argument '" +
                                     kv.value().first + "' (expected m=...)");
    }
    auto parsed = ParseSpecDoubleList(kv.value().second);
    if (!parsed.ok()) return parsed.status();
    if (parsed.value().size() != 1 || !std::isfinite(parsed.value()[0]) ||
        parsed.value()[0] <= 0.0) {
      return Status::InvalidArgument(
          "edf-shed: m must be a single finite positive number");
    }
    margin = parsed.value()[0];
  }
  return std::unique_ptr<MemoryPolicy>(new EdfShedPolicy(margin));
}

RTQ_REGISTER_POLICY("edf-shed",
                    "edf-shed[:m=F] — EDF MinMax sharing, infeasible "
                    "queries shed",
                    MakeEdfShedPolicy);

}  // namespace
}  // namespace rtq::core
