// "pmm-class" — PMM with per-class admission targets (quotas).
//
// The multiclass experiment (Section 5.6, Figures 17-18) shows plain
// PMM optimizing the *system* miss ratio: when a light class floods the
// system, PMM happily fills the MPL with its small queries and the
// heavyweight minority class starves. PMM-Fair (Section 5.6's closing
// sketch) fixes this by bending deadlines; pmm-class is the blunter,
// administrator-friendly alternative: a hard per-class admission quota.
//
//   spec: "pmm-class"                    (no quotas: degenerates to pmm)
//         "pmm-class:targets=6,10"       (one cap per workload class)
//
// `targets=n1,n2,...` caps how many queries of each class may compete
// for memory at once: in every reallocation only the n_c
// earliest-deadline queries of class c are presented to the underlying
// strategy; the rest wait regardless of how urgent the class's backlog
// is. PMM keeps adapting its mode and target MPL across the *eligible*
// population exactly as in Section 3, so the quota composes with — not
// replaces — the paper's admission control.
//
// Like the other files in src/policies/, this registers from its own
// translation unit: no edits under src/engine/.

#include <cmath>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/memory_policy.h"
#include "core/pmm.h"
#include "core/policy_registry.h"
#include "core/strategy.h"

namespace rtq::core {
namespace {

/// Presents at most caps[c] earliest-deadline queries of class c to the
/// inner strategy; everyone else gets nothing this round. Classes
/// outside the caps vector (unknown / negative ids) are uncapped.
class ClassQuotaStrategy : public AllocationStrategy {
 public:
  ClassQuotaStrategy(std::unique_ptr<AllocationStrategy> inner,
                     std::vector<int64_t> caps)
      : inner_(std::move(inner)), caps_(std::move(caps)) {}

  AllocationVector Allocate(const std::vector<MemRequest>& ed_sorted,
                            PageCount total) const override {
    StableTailHint ignored;
    return AllocateWithHint(ed_sorted, total, &ignored);
  }

  AllocationVector AllocateWithHint(const std::vector<MemRequest>& ed_sorted,
                                    PageCount total,
                                    StableTailHint* hint) const override {
    std::vector<int64_t> used(caps_.size(), 0);
    // Exposing the forwarded hint when no quota binds is sound — it
    // keeps PR 4's incremental reallocation path alive for the
    // quota-idle steady state: a later tail insert either stays
    // eligible (covered by the inner proof) or is cap-filtered
    // (receives nothing and leaves the inner input unchanged), and
    // removing an eligible zero-allocation tail query cannot unfilter
    // anyone because nobody is filtered.
    return AllocateThroughFilter(
        *inner_, ed_sorted, total,
        [this, &used](const MemRequest& q) {
          int32_t c = q.query_class;
          if (c < 0 || c >= static_cast<int32_t>(caps_.size())) return true;
          if (used[c] >= caps_[c]) return false;
          ++used[c];
          return true;
        },
        hint);
  }

  std::string name() const override {
    return "ClassQuota(" + inner_->name() + ")";
  }

 private:
  std::unique_ptr<AllocationStrategy> inner_;
  std::vector<int64_t> caps_;
};

/// PMM whose Max/MinMax strategies are wrapped in the class quota.
class PmmClassController : public PmmController {
 public:
  PmmClassController(const PmmParams& params, MemoryManager* mm,
                     SystemProbe* probe, std::vector<int64_t> caps)
      : PmmController(params, mm, probe), caps_(std::move(caps)) {
    // The base constructor installed an unwrapped Max strategy (the
    // quota vector did not exist yet); reinstall with the quota on.
    memory_manager()->SetStrategy(MakeMaxStrategy());
  }

 protected:
  std::unique_ptr<AllocationStrategy> MakeMaxStrategy() override {
    return Wrap(std::make_unique<MaxStrategy>());
  }
  std::unique_ptr<AllocationStrategy> MakeMinMaxStrategy(
      int64_t target_mpl) override {
    return Wrap(std::make_unique<MinMaxStrategy>(target_mpl));
  }

 private:
  std::unique_ptr<AllocationStrategy> Wrap(
      std::unique_ptr<AllocationStrategy> inner) {
    if (caps_.empty()) return inner;  // base-constructor window / no quotas
    return std::make_unique<ClassQuotaStrategy>(std::move(inner), caps_);
  }

  std::vector<int64_t> caps_;
};

class PmmClassPolicy : public MemoryPolicy {
 public:
  explicit PmmClassPolicy(std::vector<int64_t> targets)
      : targets_(std::move(targets)) {}

  Status Attach(const PolicyHost& host) override {
    RTQ_RETURN_IF_ERROR(host.pmm.Validate());
    if (!targets_.empty() &&
        static_cast<int32_t>(targets_.size()) != host.num_classes) {
      return Status::InvalidArgument(
          "pmm-class needs one target per workload class (" +
          std::to_string(targets_.size()) + " targets, " +
          std::to_string(host.num_classes) + " classes)");
    }
    controller_ = std::make_unique<PmmClassController>(host.pmm, host.mm,
                                                       host.probe, targets_);
    return Status::Ok();
  }

  void OnQueryEvent(const QueryEvent& event) override {
    if (event.kind == QueryEvent::Kind::kCompletion) {
      controller_->OnQueryFinished(event.info);
    }
  }

  std::string Describe() const override {
    // Joined with std::to_string, not FormatSpecDoubleList: %g keeps
    // only 6 significant digits, which would corrupt large quotas.
    return targets_.empty() ? "pmm-class"
                            : "pmm-class:targets=" + JoinedTargets();
  }

  std::string DisplayName() const override {
    return targets_.empty() ? "PMM-Class"
                            : "PMM-Class(" + JoinedTargets() + ")";
  }

  const PmmController* pmm_controller() const override {
    return controller_.get();
  }

 private:
  std::string JoinedTargets() const {
    std::string joined;
    for (size_t i = 0; i < targets_.size(); ++i) {
      if (i > 0) joined += ",";
      joined += std::to_string(targets_[i]);
    }
    return joined;
  }

  std::vector<int64_t> targets_;
  std::unique_ptr<PmmClassController> controller_;
};

StatusOr<std::unique_ptr<MemoryPolicy>> MakePmmClassPolicy(
    const PolicySpec& spec) {
  std::vector<int64_t> targets;
  if (!spec.args.empty()) {
    auto kv = ParseSpecKeyValue(spec.args);
    if (!kv.ok()) return kv.status();
    if (kv.value().first != "targets") {
      return Status::InvalidArgument("pmm-class: unknown argument '" +
                                     kv.value().first +
                                     "' (expected targets=...)");
    }
    auto parsed = ParseSpecDoubleList(kv.value().second);
    if (!parsed.ok()) return parsed.status();
    for (double v : parsed.value()) {
      // Range-check before casting: converting an out-of-int64-range
      // double (inf, 1e19, ...) is undefined behavior.
      if (!std::isfinite(v) || v < 1.0 || v >= 9.2e18 ||
          static_cast<double>(static_cast<int64_t>(v)) != v) {
        return Status::InvalidArgument(
            "pmm-class: targets must be integers >= 1");
      }
      targets.push_back(static_cast<int64_t>(v));
    }
    if (targets.empty()) {
      return Status::InvalidArgument("pmm-class: targets list is empty");
    }
  }
  return std::unique_ptr<MemoryPolicy>(
      new PmmClassPolicy(std::move(targets)));
}

RTQ_REGISTER_POLICY("pmm-class",
                    "pmm-class[:targets=n1,n2,...] — PMM + per-class "
                    "admission quotas",
                    MakePmmClassPolicy);

}  // namespace
}  // namespace rtq::core
