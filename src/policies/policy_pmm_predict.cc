// "pmm-predict" — PMM that moves the MPL *before* the forecast crosses
// the overload threshold.
//
// Every controller in this repo — PMM included, straight from the
// paper's Section 3 design — reacts after overload is observed: a batch
// of completions must miss deadlines before the target MPL moves. Under
// the scenario engine's non-stationary shapes (a flash crowd, a diurnal
// ramp) the arrival process telegraphs its next move, so reacting late
// costs a burst of misses the trend already predicted.
//
// pmm-predict is an unmodified PmmController plus a forecasting layer
// driven from OnTick. Each tick it samples three signals without ever
// touching the shared SystemProbe (whose windowed readings belong to
// the controller's batch machinery):
//
//   * arrival rate     — arrivals counted in OnQueryEvent / tick length;
//   * per-tick miss ratio — completions and misses counted likewise;
//   * memory pressure  — the manager's waiting-query count.
//
// The samples feed stats::TrendTracker windows (linear + quadratic fits
// with an R^2 confidence score). The forecast changes the *timing* of
// PMM's mode decisions, never their level: the paper's Section 5 result
// — confirmed by this repo's scenario sweeps, where Max dominates every
// fixed MinMax-N on the non-stationary shapes — is that the right MPL
// is set by memory contention, not by the arrival rate, so a rate
// forecast alone must not pick a clamp level. Three timing moves:
//
//   * Wave approaching, already clamped (MinMax mode): re-assert the
//     standing target and suppress the Section 3.2 revert-to-Max test
//     until the forecast horizon passes (AllowRevertToMax), so a batch
//     adaptation cannot release admission control just as the wave
//     lands.
//   * Wave approaching, Max mode: do nothing. Entering MinMax needs
//     memory-overload evidence (misses + underutilization + waiting,
//     Section 3.2) that a rate trend cannot supply; clamping on rate
//     alone lost to Max on every scenario shape.
//   * Load confidently draining, clamped, and the waiting-queue backlog
//     not rising: revert to Max NOW (ForceMax). The reactive revert
//     waits for the fitted target to sink below Max mode's realized
//     average — a lagging signal that keeps admission control on for
//     batches after a burst has passed.
//
// When the trend is flat, noisy, or the window has not filled, no gate
// fires and the policy is plain PMM — bit-for-bit, since the
// forecasting layer perturbs nothing until it acts.
//
//   spec: "pmm-predict"             (window=12, lead=2, band=0.25,
//                                    conf=0.5)
//         "pmm-predict:window=8,lead=3,band=0.2,conf=0.6"
//
// Ticks arrive at the engine's MPL-sampler cadence
// (SystemConfig::mpl_sample_interval); a host that never ticks is
// rejected at Attach, like pmm-tick. Registers from its own translation
// unit: no edits under src/engine/.

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "core/memory_policy.h"
#include "core/pmm.h"
#include "core/policy_registry.h"
#include "stats/trend_tracker.h"

namespace rtq::core {
namespace {

constexpr int64_t kDefaultWindow = 12;
constexpr int64_t kDefaultLead = 2;
constexpr double kDefaultBand = 0.25;
constexpr double kDefaultConf = 0.5;

/// PmmController with an out-of-band clamp: ApplyForecastTarget forces
/// a MinMax target immediately and holds off the revert-to-Max test
/// until `hold_until` so batch adaptations cannot undo a proactive
/// clamp before the forecast horizon arrives.
class PmmPredictController : public PmmController {
 public:
  PmmPredictController(const PmmParams& params, MemoryManager* mm,
                       SystemProbe* probe)
      : PmmController(params, mm, probe) {}

  void ApplyForecastTarget(SimTime now, int64_t target, SimTime hold_until) {
    hold_until_ = std::max(hold_until_, hold_until);
    ForceTarget(now, target);
  }

  /// Reverts to Max immediately and clears any standing hold (forecast
  /// says the wave has passed).
  void ForceMaxNow(SimTime now) {
    hold_until_ = 0.0;
    ForceMax(now);
  }

 protected:
  bool AllowRevertToMax(SimTime now) override { return now >= hold_until_; }

 private:
  SimTime hold_until_ = 0.0;
};

class PmmPredictPolicy : public MemoryPolicy {
 public:
  PmmPredictPolicy(int64_t window, int64_t lead, double band, double conf)
      : window_(window),
        lead_(lead),
        band_(band),
        conf_(conf),
        rate_trend_(window),
        miss_trend_(window),
        pressure_trend_(window) {}

  Status Attach(const PolicyHost& host) override {
    RTQ_RETURN_IF_ERROR(host.pmm.Validate());
    if (host.tick_interval <= 0.0) {
      // Without ticks the forecasting layer never samples and the policy
      // silently degenerates to plain PMM; fail loud instead.
      return Status::FailedPrecondition(
          "pmm-predict needs a host that ticks "
          "(mpl_sample_interval > 0)");
    }
    mm_ = host.mm;
    tick_ = host.tick_interval;
    controller_ = std::make_unique<PmmPredictController>(host.pmm, host.mm,
                                                         host.probe);
    return Status::Ok();
  }

  void OnQueryEvent(const QueryEvent& event) override {
    if (event.kind == QueryEvent::Kind::kArrival) {
      ++arrivals_;
      return;
    }
    ++completions_;
    if (event.info.missed) ++misses_;
    controller_->OnQueryFinished(event.info);
  }

  void OnTick(SimTime now) override {
    double dt = now - last_tick_;
    last_tick_ = now;
    if (dt <= 0.0) return;

    rate_trend_.Add(now, static_cast<double>(arrivals_) / dt);
    if (completions_ > 0) {
      miss_trend_.Add(now, static_cast<double>(misses_) /
                               static_cast<double>(completions_));
    }
    pressure_trend_.Add(now, static_cast<double>(mm_->waiting_count()));
    arrivals_ = completions_ = misses_ = 0;

    SimTime horizon = now + static_cast<double>(lead_) * tick_;
    stats::Forecast rate = rate_trend_.Predict(horizon);
    if (!rate.valid || rate.confidence < conf_) return;  // plain PMM

    double current = std::max(rate.current, 1e-9);
    double future = rate.value;
    // An upward-accelerating window means the line undershoots the
    // wave; trust the parabola's (higher) extrapolation then.
    if (rate.quad_valid && rate.curvature > 0.0) {
      future = std::max(future, rate.quad_value);
    }
    double ratio = future / current;

    // Corroborating signals. A confidently rising miss trend means the
    // wave is already doing damage — halve the band and act earlier. A
    // confidently rising waiting-queue backlog vetoes relaxation: more
    // admitted queries while the queue grows only thrashes memory.
    double band = band_;
    stats::Forecast miss = miss_trend_.Predict(horizon);
    if (miss.valid && miss.confidence >= conf_ && miss.slope > 0.0) {
      band = band_ * 0.5;
    }
    stats::Forecast pressure = pressure_trend_.Predict(horizon);
    bool backlog_rising = pressure.valid && pressure.confidence >= conf_ &&
                          pressure.slope > 0.0;

    if (ratio >= 1.0 + band) {
      if (controller_->mode() == PmmController::Mode::kMinMax) {
        // Wave approaching while admission control is on: hold the
        // standing clamp through the forecast horizon so a batch
        // adaptation cannot revert to Max just as the wave lands.
        controller_->ApplyForecastTarget(now, controller_->target_mpl(),
                                         horizon);
      }
      // In Max mode, do nothing: the clamp level is memory's call (the
      // reactive Section 3.2 test), not the arrival rate's — see the
      // header comment.
    } else if (ratio <= 1.0 - band && !backlog_rising &&
               controller_->mode() == PmmController::Mode::kMinMax) {
      // Load confidently draining and no backlog building: release
      // admission control now instead of waiting for the lagging
      // reactive revert test.
      controller_->ForceMaxNow(now);
    }
  }

  std::string Describe() const override {
    std::string args;
    auto append = [&args](const std::string& piece) {
      args += args.empty() ? piece : "," + piece;
    };
    if (window_ != kDefaultWindow)
      append("window=" + std::to_string(window_));
    if (lead_ != kDefaultLead) append("lead=" + std::to_string(lead_));
    if (band_ != kDefaultBand)
      append("band=" + FormatSpecDoubleList({band_}));
    if (conf_ != kDefaultConf)
      append("conf=" + FormatSpecDoubleList({conf_}));
    return args.empty() ? "pmm-predict" : "pmm-predict:" + args;
  }

  std::string DisplayName() const override {
    std::string spec = Describe();
    size_t colon = spec.find(':');
    return colon == std::string::npos
               ? "PMM-Predict"
               : "PMM-Predict(" + spec.substr(colon + 1) + ")";
  }

  const PmmController* pmm_controller() const override {
    return controller_.get();
  }

 private:
  int64_t window_;
  int64_t lead_;
  double band_;
  double conf_;

  MemoryManager* mm_ = nullptr;
  SimTime tick_ = 0.0;
  std::unique_ptr<PmmPredictController> controller_;

  stats::TrendTracker rate_trend_;
  stats::TrendTracker miss_trend_;
  stats::TrendTracker pressure_trend_;
  int64_t arrivals_ = 0;
  int64_t completions_ = 0;
  int64_t misses_ = 0;
  SimTime last_tick_ = 0.0;
};

StatusOr<std::unique_ptr<MemoryPolicy>> MakePmmPredictPolicy(
    const PolicySpec& spec) {
  int64_t window = kDefaultWindow;
  int64_t lead = kDefaultLead;
  double band = kDefaultBand;
  double conf = kDefaultConf;
  if (!spec.args.empty()) {
    size_t pos = 0;
    while (pos <= spec.args.size()) {
      size_t comma = spec.args.find(',', pos);
      std::string piece = spec.args.substr(
          pos, comma == std::string::npos ? std::string::npos : comma - pos);
      auto kv = ParseSpecKeyValue(piece);
      if (!kv.ok()) return kv.status();
      const std::string& key = kv.value().first;
      const std::string& value = kv.value().second;
      if (key == "window" || key == "lead") {
        auto parsed = ParseSpecInt(value);
        if (!parsed.ok()) return parsed.status();
        if (key == "window") {
          if (parsed.value() < 3) {
            return Status::InvalidArgument(
                "pmm-predict: window must be >= 3");
          }
          window = parsed.value();
        } else {
          if (parsed.value() < 1) {
            return Status::InvalidArgument("pmm-predict: lead must be >= 1");
          }
          lead = parsed.value();
        }
      } else if (key == "band" || key == "conf") {
        auto parsed = ParseSpecDoubleList(value);
        if (!parsed.ok()) return parsed.status();
        if (parsed.value().size() != 1 || !std::isfinite(parsed.value()[0]) ||
            parsed.value()[0] <= 0.0 || parsed.value()[0] >= 1.0) {
          return Status::InvalidArgument("pmm-predict: " + key +
                                         " must be a number in (0,1)");
        }
        (key == "band" ? band : conf) = parsed.value()[0];
      } else {
        return Status::InvalidArgument(
            "pmm-predict: unknown argument '" + key +
            "' (expected window=, lead=, band=, conf=)");
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  }
  return std::unique_ptr<MemoryPolicy>(
      new PmmPredictPolicy(window, lead, band, conf));
}

RTQ_REGISTER_POLICY("pmm-predict",
                    "pmm-predict[:window=N,lead=K,band=F,conf=F] — PMM "
                    "clamped ahead of confidently forecast load waves",
                    MakePmmPredictPolicy);

}  // namespace
}  // namespace rtq::core
