// "none" — the no-admission-control baseline (the paper's implicit
// strawman).
//
// Every query is granted memory immediately on arrival, in plain
// first-come-first-served order with no deadline awareness at all: each
// query receives its maximum demand while the pool lasts, then whatever
// remains above its operator minimum, then nothing (physics still
// applies — the pool cannot be oversubscribed). Nobody is ever held back
// to protect an urgent query, and nobody's grant is revised downward for
// a later, more urgent arrival, so under load the pool fills with
// whichever queries happened to arrive first while tight-deadline
// queries starve. This is the behaviour every Section 3 policy is
// implicitly measured against.
//
// The file is deliberately self-contained: policy + strategy + registry
// hook in one translation unit, zero edits anywhere else — the "how to
// add a policy in one file" recipe from docs/ARCHITECTURE.md.

#include <algorithm>
#include <memory>
#include <vector>

#include "core/memory_policy.h"
#include "core/policy_registry.h"
#include "core/strategy.h"

namespace rtq::core {
namespace {

class FcfsMaxStrategy : public AllocationStrategy {
 public:
  AllocationVector Allocate(const std::vector<MemRequest>& ed_sorted,
                            PageCount total) const override {
    // Re-derive arrival order: QueryIds are assigned in arrival order,
    // so sorting by id undoes the Earliest-Deadline presentation.
    std::vector<size_t> order(ed_sorted.size());
    for (size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      return ed_sorted[a].id < ed_sorted[b].id;
    });

    AllocationVector out(ed_sorted.size(), 0);
    PageCount remaining = total;
    for (size_t idx : order) {
      const MemRequest& q = ed_sorted[idx];
      PageCount grant = std::min(q.max_memory, remaining);
      if (grant < q.min_memory) continue;  // below the operator minimum
      out[idx] = grant;
      remaining -= grant;
    }
    return out;
  }

  std::string name() const override { return "None(FCFS)"; }
};

class NonePolicy : public MemoryPolicy {
 public:
  Status Attach(const PolicyHost& host) override {
    host.mm->SetStrategy(std::make_unique<FcfsMaxStrategy>());
    return Status::Ok();
  }
  std::string Describe() const override { return "none"; }
  std::string DisplayName() const override { return "None"; }
};

RTQ_REGISTER_POLICY("none",
                    "none — no admission control, FCFS maximum grants",
                    [](const PolicySpec& spec)
                        -> StatusOr<std::unique_ptr<MemoryPolicy>> {
                      if (!spec.args.empty()) {
                        return Status::InvalidArgument(
                            "none takes no arguments, got '" + spec.args +
                            "'");
                      }
                      return std::unique_ptr<MemoryPolicy>(new NonePolicy());
                    });

}  // namespace
}  // namespace rtq::core
