// "pmm-tick" — PMM re-batched on the wall clock instead of completion
// counts; the first real consumer of MemoryPolicy::OnTick.
//
// Table 1's PMM adapts every SampleSize query completions, so its
// reaction time stretches as load thins out (30 completions can be ten
// minutes at a low arrival rate) and jitters with the completion
// process itself. pmm-tick holds arriving completion records in a
// buffer and releases them to an unmodified PmmController only when a
// full batching period of *simulated time* has elapsed, at the engine's
// OnTick cadence. The controller then sees the same completion stream
// in the same order — but its adaptation points (and the SystemProbe
// utilization windows they read) land on the wall-clock grid, making a
// clean A/B between completion-count batching ("pmm") and time
// batching ("pmm-tick") with every other mechanism held fixed.
//
//   spec: "pmm-tick"            (period = 60000 ms, one default engine
//                                sampler interval)
//         "pmm-tick:ms=120000"  (flush every 2 simulated minutes)
//         "pmm-tick:ms=0"       (no buffering: bit-identical to "pmm")
//
// Ticks arrive at the engine's MPL-sampler cadence
// (SystemConfig::mpl_sample_interval), so the effective flush period is
// `ms` rounded up to the next tick. A period of 0 bypasses the buffer
// entirely, which pins the degenerate case to plain PMM by test.
// Registers from its own translation unit: no edits under src/engine/.

#include <deque>
#include <memory>
#include <string>
#include <utility>

#include "core/memory_policy.h"
#include "core/pmm.h"
#include "core/policy_registry.h"

namespace rtq::core {
namespace {

constexpr int64_t kDefaultPeriodMs = 60000;

class PmmTickPolicy : public MemoryPolicy {
 public:
  explicit PmmTickPolicy(int64_t period_ms) : period_ms_(period_ms) {}

  Status Attach(const PolicyHost& host) override {
    RTQ_RETURN_IF_ERROR(host.pmm.Validate());
    if (period_ms_ > 0 && host.tick_interval <= 0.0) {
      // With the sampler disabled OnTick never fires: completions would
      // buffer forever and the controller would never adapt. Fail loud
      // instead of silently running as never-adapting Max.
      return Status::FailedPrecondition(
          "pmm-tick:ms=" + std::to_string(period_ms_) +
          " needs a host that ticks (mpl_sample_interval > 0)");
    }
    controller_ =
        std::make_unique<PmmController>(host.pmm, host.mm, host.probe);
    return Status::Ok();
  }

  void OnQueryEvent(const QueryEvent& event) override {
    if (event.kind != QueryEvent::Kind::kCompletion) return;
    if (period_ms_ == 0) {
      controller_->OnQueryFinished(event.info);
    } else {
      pending_.push_back(event.info);
    }
  }

  void OnTick(SimTime now) override {
    if (period_ms_ == 0) return;
    if (now - last_flush_ < static_cast<double>(period_ms_) / 1000.0) return;
    last_flush_ = now;
    // Pop-front drain: if a flush-triggered reallocation synchronously
    // finishes more queries, OnQueryEvent appends them behind the
    // in-flight batch and this same pass delivers them too.
    while (!pending_.empty()) {
      CompletionInfo info = pending_.front();
      pending_.pop_front();
      controller_->OnQueryFinished(info);
    }
  }

  std::string Describe() const override {
    return "pmm-tick:ms=" + std::to_string(period_ms_);
  }

  std::string DisplayName() const override {
    if (period_ms_ % 1000 == 0) {
      return "PMM-Tick(" + std::to_string(period_ms_ / 1000) + "s)";
    }
    return "PMM-Tick(" + std::to_string(period_ms_) + "ms)";
  }

  const PmmController* pmm_controller() const override {
    return controller_.get();
  }

 private:
  int64_t period_ms_;
  std::unique_ptr<PmmController> controller_;
  std::deque<CompletionInfo> pending_;
  SimTime last_flush_ = 0.0;
};

StatusOr<std::unique_ptr<MemoryPolicy>> MakePmmTickPolicy(
    const PolicySpec& spec) {
  int64_t period_ms = kDefaultPeriodMs;
  if (!spec.args.empty()) {
    auto kv = ParseSpecKeyValue(spec.args);
    if (!kv.ok()) return kv.status();
    if (kv.value().first != "ms") {
      return Status::InvalidArgument("pmm-tick: unknown argument '" +
                                     kv.value().first + "' (expected ms=...)");
    }
    auto parsed = ParseSpecInt(kv.value().second);
    if (!parsed.ok()) return parsed.status();
    if (parsed.value() < 0) {
      return Status::InvalidArgument("pmm-tick: ms must be >= 0, got " +
                                     kv.value().second);
    }
    period_ms = parsed.value();
  }
  return std::unique_ptr<MemoryPolicy>(new PmmTickPolicy(period_ms));
}

RTQ_REGISTER_POLICY("pmm-tick",
                    "pmm-tick[:ms=N] — PMM batched by simulated time via "
                    "OnTick (0 = per-completion)",
                    MakePmmTickPolicy);

}  // namespace
}  // namespace rtq::core
