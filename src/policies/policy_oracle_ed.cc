// "oracle-ed" — a clairvoyant admission-control upper bound.
//
// Reads the cost model's stand-alone execution-time estimate (the same
// estimate deadline assignment uses, Section 4.1), credited for
// progress — scaled by the fraction of operand pages not yet read
// (core::RemainingEstimate) — and admits only queries that can still
// plausibly finish: a query whose remaining time to deadline is below
// `margin * remaining estimate` is never given memory, so its pages go
// to feasible queries instead and it simply ages out at its deadline.
// The progress credit keeps the denominator honest: a nearly-finished
// query needs only its residual work to remain feasible, so the oracle
// no longer revokes memory from queries about to complete (the blind
// spot the PR 5 headroom study documented). Feasible queries receive
// maximum allocations in Earliest-Deadline order (Max discipline).
// Because the estimate assumes the maximum allocation and an idle
// system, this is an optimistic oracle — real policies cannot beat the
// information it acts on, which is what makes it a useful upper-bound
// lane in sweeps.
//
//   spec: "oracle-ed"            (margin = 1)
//         "oracle-ed:m=1.5"      (require 1.5x the estimate to remain)
//
// Like policy_none.cc, this registers from its own translation unit —
// no edits under src/engine/ or src/core/.

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "core/memory_policy.h"
#include "core/policy_registry.h"
#include "core/strategy.h"

namespace rtq::core {
namespace {

class OracleEdStrategy : public AllocationStrategy {
 public:
  OracleEdStrategy(std::function<SimTime()> now, double margin)
      : now_(std::move(now)), margin_(margin) {}

  AllocationVector Allocate(const std::vector<MemRequest>& ed_sorted,
                            PageCount total) const override {
    SimTime now = now_();
    AllocationVector out(ed_sorted.size(), 0);
    PageCount remaining = total;
    for (size_t i = 0; i < ed_sorted.size(); ++i) {
      const MemRequest& q = ed_sorted[i];
      if (q.deadline - now < margin_ * RemainingEstimate(q)) {
        continue;  // cannot finish its residual work: spend nothing
      }
      if (q.max_memory <= remaining) {
        out[i] = q.max_memory;
        remaining -= q.max_memory;
      }
    }
    return out;
  }

  std::string name() const override { return "OracleED"; }

 private:
  std::function<SimTime()> now_;
  double margin_;
};

class OracleEdPolicy : public MemoryPolicy {
 public:
  explicit OracleEdPolicy(double margin) : margin_(margin) {}

  Status Attach(const PolicyHost& host) override {
    if (!host.now) {
      return Status::FailedPrecondition(
          "oracle-ed needs a simulation clock from the host");
    }
    host.mm->SetStrategy(
        std::make_unique<OracleEdStrategy>(host.now, margin_));
    return Status::Ok();
  }

  std::string Describe() const override {
    return margin_ == 1.0
               ? "oracle-ed"
               : "oracle-ed:m=" + FormatSpecDoubleList({margin_});
  }
  std::string DisplayName() const override { return "Oracle-ED"; }

 private:
  double margin_;
};

StatusOr<std::unique_ptr<MemoryPolicy>> MakeOracleEdPolicy(
    const PolicySpec& spec) {
  double margin = 1.0;
  if (!spec.args.empty()) {
    auto kv = ParseSpecKeyValue(spec.args);
    if (!kv.ok()) return kv.status();
    if (kv.value().first != "m") {
      return Status::InvalidArgument("oracle-ed: unknown argument '" +
                                     kv.value().first + "' (expected m=...)");
    }
    auto parsed = ParseSpecDoubleList(kv.value().second);
    if (!parsed.ok()) return parsed.status();
    if (parsed.value().size() != 1 || !std::isfinite(parsed.value()[0]) ||
        parsed.value()[0] <= 0.0) {
      return Status::InvalidArgument(
          "oracle-ed: m must be a single finite positive number");
    }
    margin = parsed.value()[0];
  }
  return std::unique_ptr<MemoryPolicy>(new OracleEdPolicy(margin));
}

RTQ_REGISTER_POLICY("oracle-ed",
                    "oracle-ed[:m=F] — clairvoyant feasibility admission",
                    MakeOracleEdPolicy);

}  // namespace
}  // namespace rtq::core
