// Disk timing and geometry model (paper Table 3 + Section 4.2).
//
// DiskAccess = Seek + RotateDelay + Transfer, with the [Bitt88] seek
// model Seek(n) = SeekFactor * sqrt(n) across n cylinders. The default
// parameters reproduce the paper's disk: 16.7 ms rotation, 1500 cylinders
// of 90 pages, 8 KB pages, SeekFactor 0.617 ms.

#ifndef RTQ_MODEL_DISK_GEOMETRY_H_
#define RTQ_MODEL_DISK_GEOMETRY_H_

#include "common/status.h"
#include "common/types.h"

namespace rtq::model {

struct DiskParams {
  /// Seek-time multiplier in seconds: seek(n) = seek_factor * sqrt(n).
  double seek_factor = 0.617e-3;
  /// Full-rotation time in seconds.
  double rotation_time = 16.7e-3;
  /// Cylinders per disk.
  int64_t num_cylinders = 1500;
  /// Pages per cylinder.
  PageCount cylinder_size = 90;
  /// Pages per track: one rotation streams one track past the head, so
  /// this fixes the media-transfer rate (72 KB @ 16.7 ms/rev = 4.3 MB/s).
  /// Table 3 gives only the 90-page cylinder; 9-page tracks (10 surfaces)
  /// were calibrated so Table 7's execution-time scale and the Figure 3
  /// policy ordering reproduce (see DESIGN.md section 8).
  PageCount track_size = 9;
  /// Pages the on-disk prefetch cache can hold (256 KB / 8 KB = 32).
  PageCount cache_pages = 32;

  /// Validates that every field is physically meaningful.
  Status Validate() const;

  /// Total pages addressable on the disk.
  PageCount capacity() const { return num_cylinders * cylinder_size; }
};

class DiskGeometry {
 public:
  explicit DiskGeometry(const DiskParams& params);

  const DiskParams& params() const { return params_; }

  /// Cylinder that holds absolute page address `page`.
  Cylinder CylinderOf(PageCount page) const;

  /// Seek time between cylinders; zero for a same-cylinder access.
  SimTime SeekTime(Cylinder from, Cylinder to) const;

  /// Expected rotational delay: half a rotation.
  SimTime RotationalDelay() const;

  /// Media-transfer time for `pages` consecutive pages.
  SimTime TransferTime(PageCount pages) const;

  /// Full access time for `pages` pages starting at absolute page address
  /// `start_page`, with the head currently at `head`.
  SimTime AccessTime(Cylinder head, PageCount start_page,
                     PageCount pages) const;

 private:
  DiskParams params_;
};

}  // namespace rtq::model

#endif  // RTQ_MODEL_DISK_GEOMETRY_H_
