#include "model/disk_geometry.h"

#include <cmath>
#include <cstdlib>

#include "common/check.h"

namespace rtq::model {

Status DiskParams::Validate() const {
  if (seek_factor < 0.0)
    return Status::InvalidArgument("seek_factor must be >= 0");
  if (rotation_time <= 0.0)
    return Status::InvalidArgument("rotation_time must be > 0");
  if (num_cylinders <= 0)
    return Status::InvalidArgument("num_cylinders must be > 0");
  if (cylinder_size <= 0)
    return Status::InvalidArgument("cylinder_size must be > 0");
  if (track_size <= 0 || track_size > cylinder_size ||
      cylinder_size % track_size != 0)
    return Status::InvalidArgument(
        "track_size must divide cylinder_size and be positive");
  if (cache_pages < 0)
    return Status::InvalidArgument("cache_pages must be >= 0");
  return Status::Ok();
}

DiskGeometry::DiskGeometry(const DiskParams& params) : params_(params) {
  RTQ_CHECK_MSG(params.Validate().ok(), "invalid disk parameters");
}

Cylinder DiskGeometry::CylinderOf(PageCount page) const {
  RTQ_DCHECK(page >= 0);
  Cylinder cyl = page / params_.cylinder_size;
  RTQ_DCHECK(cyl < params_.num_cylinders);
  return cyl;
}

SimTime DiskGeometry::SeekTime(Cylinder from, Cylinder to) const {
  int64_t dist = std::llabs(to - from);
  if (dist == 0) return 0.0;
  return params_.seek_factor * std::sqrt(static_cast<double>(dist));
}

SimTime DiskGeometry::RotationalDelay() const {
  return params_.rotation_time / 2.0;
}

SimTime DiskGeometry::TransferTime(PageCount pages) const {
  RTQ_DCHECK(pages >= 0);
  // One rotation streams one track past the head.
  return params_.rotation_time * static_cast<double>(pages) /
         static_cast<double>(params_.track_size);
}

SimTime DiskGeometry::AccessTime(Cylinder head, PageCount start_page,
                                 PageCount pages) const {
  return SeekTime(head, CylinderOf(start_page)) + RotationalDelay() +
         TransferTime(pages);
}

}  // namespace rtq::model
