// Per-disk prefetch cache (paper Section 4.2: "Each disk has a 256-KByte
// cache for use in prefetching pages").
//
// Sequential block reads load BlockSize pages into the cache; later reads
// that are fully covered by cached pages are served at cache-transfer
// speed instead of incurring a mechanical access. Replacement is LRU over
// whole prefetch ranges, which is how track buffers behave (the cache
// holds a handful of recently-read extents, not arbitrary page sets).

#ifndef RTQ_MODEL_DISK_CACHE_H_
#define RTQ_MODEL_DISK_CACHE_H_

#include <cstddef>
#include <vector>

#include "common/types.h"

namespace rtq::model {

class DiskCache {
 public:
  /// `capacity_pages` == 0 disables the cache entirely.
  explicit DiskCache(PageCount capacity_pages);

  /// True when every page of [start, start+pages) is cached.
  bool Contains(PageCount start, PageCount pages) const;

  /// Records that [start, start+pages) was read from the media. Evicts the
  /// oldest extents until the new range fits.
  void Insert(PageCount start, PageCount pages);

  /// Drops all cached extents (e.g. after a write to the disk, to keep the
  /// model conservative about write-through consistency).
  void Invalidate();

  PageCount capacity() const { return capacity_; }
  PageCount cached_pages() const { return cached_pages_; }

 private:
  struct Extent {
    PageCount start;
    PageCount pages;
  };

  PageCount capacity_;
  PageCount cached_pages_ = 0;
  // Extents live in a fixed ring: every extent holds at least one page,
  // so at most `capacity_` extents can be resident, and Contains() — the
  // hot path, probed once per media read — scans a flat array instead of
  // chasing deque segments.
  std::vector<Extent> ring_;  // size capacity_ + 1, slots [head_, head_+count_)
  size_t head_ = 0;
  size_t count_ = 0;
};

}  // namespace rtq::model

#endif  // RTQ_MODEL_DISK_CACHE_H_
