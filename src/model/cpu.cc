#include "model/cpu.h"

#include <utility>

#include "common/check.h"

namespace rtq::model {

Cpu::Cpu(sim::Simulator* sim, double mips) : sim_(sim), mips_(mips) {
  RTQ_CHECK(sim != nullptr);
  RTQ_CHECK_MSG(mips > 0.0, "CPU speed must be positive");
  busy_.Start(sim->Now(), 0.0);
}

SimTime Cpu::ExecutionTime(Instructions instructions) const {
  RTQ_DCHECK(instructions >= 0);
  return static_cast<double>(instructions) / (mips_ * 1e6);
}

void Cpu::Submit(CpuJob job) {
  RTQ_CHECK_MSG(job.instructions >= 0, "negative instruction count");
  JobKey key{job.deadline, job.query, next_seq_++};
  jobs_.emplace(key, JobState{static_cast<double>(job.instructions),
                              std::move(job.on_complete)});
  // Preemption only for strictly earlier deadlines: a deadline tie is not
  // worth a context switch, so ties run the incumbent to completion.
  if (running_ && job.deadline < running_it_->first.deadline)
    PreemptRunning();
  if (!running_) Dispatch();
}

int64_t Cpu::CancelQuery(QueryId query) {
  if (running_ && running_it_->first.query == query) PreemptRunning();
  int64_t removed = 0;
  for (auto it = jobs_.begin(); it != jobs_.end();) {
    if (it->first.query == query) {
      it = jobs_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  if (!running_) Dispatch();
  return removed;
}

void Cpu::PreemptRunning() {
  RTQ_DCHECK(running_);
  auto it = running_it_;
  double executed = (sim_->Now() - running_since_) * mips_ * 1e6;
  it->second.remaining_instructions -= executed;
  if (it->second.remaining_instructions < 0.0) {
    it->second.remaining_instructions = 0.0;
  }
  sim_->Cancel(completion_event_);
  completion_event_ = sim::kInvalidEventId;
  running_ = false;
  ++preemptions_;
  busy_.Update(sim_->Now(), 0.0);
}

void Cpu::Dispatch() {
  RTQ_DCHECK(!running_);
  if (jobs_.empty()) return;
  auto it = jobs_.begin();
  running_ = true;
  running_it_ = it;
  running_since_ = sim_->Now();
  busy_.Update(sim_->Now(), 1.0);
  SimTime duration = it->second.remaining_instructions / (mips_ * 1e6);
  completion_event_ =
      sim_->ScheduleAfter(duration, [this] { OnJobComplete(); });
}

void Cpu::OnJobComplete() {
  RTQ_DCHECK(running_);
  auto callback = std::move(running_it_->second.on_complete);
  jobs_.erase(running_it_);
  running_ = false;
  completion_event_ = sim::kInvalidEventId;
  ++completed_jobs_;
  busy_.Update(sim_->Now(), 0.0);
  // Dispatch the next job before delivering the callback so a callback
  // that submits fresh work observes a consistent CPU.
  Dispatch();
  if (callback) callback();
}

}  // namespace rtq::model
