// Preemptive Earliest-Deadline CPU server (paper Section 4.2).
//
// "The CPU, which has a MIPS rating of CPUSpeed, is scheduled by the
// Earliest Deadline discipline." Jobs are instruction counts; the job
// with the earliest deadline executes, and an arriving job with an
// earlier deadline preempts the running one (the preempted job keeps its
// remaining instruction count). Ties break by query id, then submission
// order, so runs are deterministic.

#ifndef RTQ_MODEL_CPU_H_
#define RTQ_MODEL_CPU_H_

#include <cstdint>
#include <map>

#include "common/inline_callback.h"
#include "common/pool.h"
#include "common/types.h"
#include "sim/simulator.h"
#include "stats/time_weighted.h"

namespace rtq::model {

/// Completion continuation. 80 bytes holds the engine's widest submit
/// capture (the read-miss chain in engine/rtdbs.cc) without touching the
/// heap; bigger captures fail to compile (common/inline_callback.h).
using CpuCallback = InlineCallback<80>;

struct CpuJob {
  QueryId query = kInvalidQueryId;
  /// ED priority: earlier deadline runs first.
  SimTime deadline = kNoDeadline;
  Instructions instructions = 0;
  /// Invoked when the job's instruction budget has been executed.
  CpuCallback on_complete;
};

class Cpu {
 public:
  Cpu(sim::Simulator* sim, double mips);

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Enqueues a job; may preempt the running job.
  void Submit(CpuJob job);

  /// Removes all jobs (queued or running) belonging to `query`. Unlike a
  /// disk access, CPU work stops instantly on abort. Returns the number
  /// of jobs removed.
  int64_t CancelQuery(QueryId query);

  /// Time to execute `instructions` at this CPU's speed.
  SimTime ExecutionTime(Instructions instructions) const;

  /// Fraction of time the CPU was busy since construction.
  double Utilization(SimTime now) const { return busy_.Average(now); }
  /// Total busy seconds since construction (windowed utilizations are
  /// computed by differencing snapshots of this integral).
  double busy_seconds(SimTime now) const { return busy_.Integral(now); }

  double mips() const { return mips_; }
  size_t pending_jobs() const { return jobs_.size(); }
  int64_t completed_jobs() const { return completed_jobs_; }
  int64_t preemptions() const { return preemptions_; }

 private:
  struct JobKey {
    SimTime deadline;
    QueryId query;
    uint64_t seq;
    bool operator<(const JobKey& other) const {
      if (deadline != other.deadline) return deadline < other.deadline;
      if (query != other.query) return query < other.query;
      return seq < other.seq;
    }
  };
  struct JobState {
    double remaining_instructions;
    CpuCallback on_complete;
  };

  /// Suspends the running job, crediting executed instructions.
  void PreemptRunning();
  /// Starts (or resumes) the highest-priority job, if any.
  void Dispatch();
  void OnJobComplete();

  sim::Simulator* sim_;
  double mips_;

  // Pool before containers: containers must be destroyed first.
  NodePool pool_;
  using JobMap =
      std::map<JobKey, JobState, std::less<JobKey>,
               PoolAllocator<std::pair<const JobKey, JobState>>>;
  JobMap jobs_{std::less<JobKey>(),
               PoolAllocator<std::pair<const JobKey, JobState>>(
                   &pool_)};  // ordered: begin() = highest priority
  bool running_ = false;
  /// Iterator to the running job. Map iterators stay valid across
  /// inserts and unrelated erases, so completion/preemption need no
  /// re-lookup by key.
  JobMap::iterator running_it_{};
  SimTime running_since_ = 0.0;
  sim::EventId completion_event_ = sim::kInvalidEventId;
  uint64_t next_seq_ = 0;

  stats::TimeWeightedAverage busy_;
  int64_t completed_jobs_ = 0;
  int64_t preemptions_ = 0;
};

}  // namespace rtq::model

#endif  // RTQ_MODEL_CPU_H_
