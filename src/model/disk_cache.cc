#include "model/disk_cache.h"

#include "common/check.h"

namespace rtq::model {

DiskCache::DiskCache(PageCount capacity_pages) : capacity_(capacity_pages) {
  RTQ_CHECK_MSG(capacity_pages >= 0, "cache capacity must be >= 0");
  if (capacity_ > 0) ring_.resize(static_cast<size_t>(capacity_) + 1);
}

bool DiskCache::Contains(PageCount start, PageCount pages) const {
  if (pages <= 0) return true;
  // A request is a cache hit only when one extent covers it entirely;
  // track buffers do not stitch ranges together.
  const size_t n = ring_.size();
  size_t i = head_;
  for (size_t seen = 0; seen < count_; ++seen) {
    const Extent& e = ring_[i];
    if (start >= e.start && start + pages <= e.start + e.pages) return true;
    if (++i == n) i = 0;
  }
  return false;
}

void DiskCache::Insert(PageCount start, PageCount pages) {
  if (capacity_ == 0 || pages <= 0) return;
  if (pages > capacity_) {
    // Keep only the tail of the range — the last pages to stream past the
    // head are the ones still buffered.
    start += pages - capacity_;
    pages = capacity_;
  }
  const size_t n = ring_.size();
  while (cached_pages_ + pages > capacity_ && count_ != 0) {
    cached_pages_ -= ring_[head_].pages;
    if (++head_ == n) head_ = 0;
    --count_;
  }
  size_t tail = head_ + count_;
  if (tail >= n) tail -= n;
  ring_[tail] = Extent{start, pages};
  ++count_;
  cached_pages_ += pages;
}

void DiskCache::Invalidate() {
  head_ = 0;
  count_ = 0;
  cached_pages_ = 0;
}

}  // namespace rtq::model
