#include "model/disk_cache.h"

#include "common/check.h"

namespace rtq::model {

DiskCache::DiskCache(PageCount capacity_pages) : capacity_(capacity_pages) {
  RTQ_CHECK_MSG(capacity_pages >= 0, "cache capacity must be >= 0");
}

bool DiskCache::Contains(PageCount start, PageCount pages) const {
  if (pages <= 0) return true;
  // A request is a cache hit only when one extent covers it entirely;
  // track buffers do not stitch ranges together.
  for (const Extent& e : extents_) {
    if (start >= e.start && start + pages <= e.start + e.pages) return true;
  }
  return false;
}

void DiskCache::Insert(PageCount start, PageCount pages) {
  if (capacity_ == 0 || pages <= 0) return;
  if (pages > capacity_) {
    // Keep only the tail of the range — the last pages to stream past the
    // head are the ones still buffered.
    start += pages - capacity_;
    pages = capacity_;
  }
  while (cached_pages_ + pages > capacity_ && !extents_.empty()) {
    cached_pages_ -= extents_.front().pages;
    extents_.pop_front();
  }
  extents_.push_back(Extent{start, pages});
  cached_pages_ += pages;
}

void DiskCache::Invalidate() {
  extents_.clear();
  cached_pages_ = 0;
}

}  // namespace rtq::model
