#include "model/disk.h"

#include <utility>

#include "common/check.h"

namespace rtq::model {

namespace {
/// Cache-hit service time: one bus transfer, no mechanical movement. The
/// paper does not give a figure; 0.5 ms per request is negligible against
/// a ~12 ms access, which is all that matters for the model.
constexpr SimTime kCacheHitTime = 0.5e-3;
}  // namespace

Disk::Disk(sim::Simulator* sim, const DiskParams& params, DiskId id)
    : sim_(sim),
      geometry_(params),
      cache_(params.cache_pages),
      id_(id) {
  RTQ_CHECK(sim != nullptr);
  busy_.Start(sim->Now(), 0.0);
}

void Disk::Submit(DiskRequest request) {
  RTQ_CHECK_MSG(request.pages > 0, "disk request must transfer >= 1 page");
  RTQ_CHECK_MSG(
      request.start_page >= 0 &&
          request.start_page + request.pages <= geometry_.params().capacity(),
      "disk request outside disk capacity");
  queue_.push_back(std::move(request));
  if (!in_service_) StartNext();
}

int64_t Disk::CancelQuery(QueryId query) {
  int64_t removed = 0;
  for (auto it = queue_.begin(); it != queue_.end();) {
    if (it->query == query) {
      it = queue_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  if (in_service_ && current_.query == query) current_cancelled_ = true;
  return removed;
}

std::list<DiskRequest>::iterator Disk::PickByElevator() {
  RTQ_DCHECK(!queue_.empty());
  // Step 1: earliest deadline wins.
  SimTime best_deadline = kNoDeadline;
  for (const DiskRequest& r : queue_) {
    if (r.deadline < best_deadline) best_deadline = r.deadline;
  }
  // Step 2: among requests tied at the earliest deadline, apply the
  // elevator: continue the current sweep direction from the head position,
  // reversing when no request lies ahead.
  auto better = [&](std::list<DiskRequest>::iterator cand,
                    std::list<DiskRequest>::iterator best, bool up) {
    Cylinder cc = geometry_.CylinderOf(cand->start_page);
    Cylinder bc = geometry_.CylinderOf(best->start_page);
    return up ? cc < bc : cc > bc;
  };
  auto pick_in_direction =
      [&](bool up) -> std::list<DiskRequest>::iterator {
    auto best = queue_.end();
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
      if (it->deadline != best_deadline) continue;
      Cylinder cyl = geometry_.CylinderOf(it->start_page);
      bool ahead = up ? cyl >= head_ : cyl <= head_;
      if (!ahead) continue;
      if (best == queue_.end() || better(it, best, up)) best = it;
    }
    return best;
  };
  auto it = pick_in_direction(sweep_up_);
  if (it == queue_.end()) {
    sweep_up_ = !sweep_up_;
    it = pick_in_direction(sweep_up_);
  }
  RTQ_DCHECK(it != queue_.end());
  return it;
}

void Disk::StartNext() {
  if (queue_.empty()) return;
  auto it = PickByElevator();
  current_ = std::move(*it);
  queue_.erase(it);
  current_cancelled_ = false;
  in_service_ = true;
  busy_.Update(sim_->Now(), 1.0);

  SimTime service;
  if (!current_.is_write && cache_.Contains(current_.start_page,
                                            current_.pages)) {
    service = kCacheHitTime;
    ++cache_hits_;
  } else {
    service = geometry_.AccessTime(head_, current_.start_page,
                                   current_.pages);
    head_ = geometry_.CylinderOf(current_.start_page + current_.pages - 1);
    if (current_.is_write) {
      // Conservative write-through model: a media write may overlap any
      // cached extent; drop the cache rather than track overlaps.
      cache_.Invalidate();
    } else {
      cache_.Insert(current_.start_page, current_.pages);
    }
  }
  sim_->ScheduleAfter(service, [this] { OnServiceComplete(); });
}

void Disk::OnServiceComplete() {
  RTQ_DCHECK(in_service_);
  ++completed_requests_;
  completed_pages_ += current_.pages;
  in_service_ = false;
  busy_.Update(sim_->Now(), 0.0);

  // Take the callback out before starting the next access so a callback
  // that submits new requests sees a consistent disk state.
  auto callback = std::move(current_.on_complete);
  bool deliver = !current_cancelled_ && callback != nullptr;
  StartNext();
  if (deliver) callback();
}

}  // namespace rtq::model
