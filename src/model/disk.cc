#include "model/disk.h"

#include <algorithm>
#include <cstring>
#include <limits>
#include <new>
#include <utility>

#include "common/check.h"

namespace rtq::model {

namespace {
/// Cache-hit service time: one bus transfer, no mechanical movement. The
/// paper does not give a figure; 0.5 ms per request is negligible against
/// a ~12 ms access, which is all that matters for the model.
constexpr SimTime kCacheHitTime = 0.5e-3;

/// Lowest set bit index >= `from`, or -1 when none.
int64_t FindSetAtOrAbove(const uint64_t* bits, size_t words, int64_t from) {
  size_t w = static_cast<size_t>(from) >> 6;
  if (w >= words) return -1;
  uint64_t word = bits[w] & (~uint64_t{0} << (from & 63));
  while (true) {
    if (word != 0)
      return static_cast<int64_t>((w << 6) + __builtin_ctzll(word));
    if (++w == words) return -1;
    word = bits[w];
  }
}

/// Highest set bit index <= `from`, or -1 when none.
int64_t FindSetAtOrBelow(const uint64_t* bits, int64_t from) {
  size_t w = static_cast<size_t>(from) >> 6;
  uint64_t word = bits[w] & (~uint64_t{0} >> (63 - (from & 63)));
  while (true) {
    if (word != 0)
      return static_cast<int64_t>((w << 6) + 63 - __builtin_clzll(word));
    if (w == 0) return -1;
    word = bits[--w];
  }
}
}  // namespace

Disk::Disk(sim::Simulator* sim, const DiskParams& params, DiskId id)
    : sim_(sim),
      geometry_(params),
      cache_(params.cache_pages),
      id_(id),
      bitmap_words_(
          (static_cast<size_t>(params.num_cylinders) + 63) / 64) {
  RTQ_CHECK(sim != nullptr);
  groups_.reserve(64);
  busy_.Start(sim->Now(), 0.0);
}

Disk::~Disk() {
  // Destroy every still-queued request (their callbacks may own
  // non-trivial captures), then release the group arrays.
  for (auto& [deadline, group] : groups_) {
    (void)deadline;
    for (size_t w = 0; w < bitmap_words_; ++w) {
      uint64_t word = group->bits[w];
      while (word != 0) {
        Cylinder cyl =
            static_cast<Cylinder>((w << 6) + __builtin_ctzll(word));
        word &= word - 1;
        RequestNode* head = group->heads[cyl];
        RequestNode* n = head;
        do {
          RequestNode* next = n->fifo_next;
          n->~RequestNode();
          pool_.Deallocate(n, sizeof(RequestNode));
          n = next;
        } while (n != head);
      }
    }
    group->next_free = free_groups_;
    free_groups_ = group;
  }
  groups_.clear();
  while (free_groups_ != nullptr) {
    DeadlineGroup* g = free_groups_;
    free_groups_ = g->next_free;
    delete[] g->bits;
    delete[] g->heads;
    delete g;
  }
}

Disk::DeadlineGroup* Disk::GroupFor(SimTime deadline) {
  auto it = std::lower_bound(
      groups_.begin(), groups_.end(), deadline,
      [](const std::pair<SimTime, DeadlineGroup*>& a, SimTime b) {
        return a.first < b;
      });
  if (it != groups_.end() && it->first == deadline) return it->second;
  DeadlineGroup* g = free_groups_;
  if (g != nullptr) {
    free_groups_ = g->next_free;
  } else {
    g = new DeadlineGroup;
    g->bits = new uint64_t[bitmap_words_];
    g->heads = new RequestNode*[static_cast<size_t>(
        geometry_.params().num_cylinders)];
  }
  std::memset(g->bits, 0, bitmap_words_ * sizeof(uint64_t));
  g->count = 0;
  g->next_free = nullptr;
  groups_.insert(it, {deadline, g});
  return g;
}

void Disk::Submit(DiskRequest request) {
  RTQ_CHECK_MSG(request.pages > 0, "disk request must transfer >= 1 page");
  RTQ_CHECK_MSG(
      request.start_page >= 0 &&
          request.start_page + request.pages <= geometry_.params().capacity(),
      "disk request outside disk capacity");
  const Cylinder cyl = geometry_.CylinderOf(request.start_page);
  const SimTime deadline = request.deadline;
  const QueryId query = request.query;

  auto* node =
      static_cast<RequestNode*>(pool_.Allocate(sizeof(RequestNode)));
  ::new (static_cast<void*>(node)) RequestNode{
      std::move(request), nullptr, nullptr, nullptr, nullptr, nullptr, cyl};

  DeadlineGroup* g = GroupFor(deadline);
  node->group = g;
  const size_t w = static_cast<size_t>(cyl) >> 6;
  const uint64_t bit = uint64_t{1} << (cyl & 63);
  if ((g->bits[w] & bit) == 0) {
    g->bits[w] |= bit;
    g->heads[cyl] = node;
    node->fifo_prev = node;
    node->fifo_next = node;
  } else {
    RequestNode* head = g->heads[cyl];
    RequestNode* tail = head->fifo_prev;
    tail->fifo_next = node;
    node->fifo_prev = tail;
    node->fifo_next = head;
    head->fifo_prev = node;
  }
  ++g->count;
  ++queued_count_;

  auto [it, inserted] = by_query_.try_emplace(query, nullptr);
  (void)inserted;
  node->query_next = it->second;
  if (node->query_next != nullptr) node->query_next->query_prev = node;
  it->second = node;

  if (!in_service_) StartNext();
}

void Disk::RemoveFromQueue(RequestNode* node) {
  DeadlineGroup* g = node->group;
  const Cylinder cyl = node->cyl;
  if (node->fifo_next == node) {
    g->bits[static_cast<size_t>(cyl) >> 6] &= ~(uint64_t{1} << (cyl & 63));
  } else {
    node->fifo_prev->fifo_next = node->fifo_next;
    node->fifo_next->fifo_prev = node->fifo_prev;
    if (g->heads[cyl] == node) g->heads[cyl] = node->fifo_next;
  }
  --queued_count_;
  if (--g->count == 0) {
    const SimTime deadline = node->req.deadline;
    auto it = std::lower_bound(
        groups_.begin(), groups_.end(), deadline,
        [](const std::pair<SimTime, DeadlineGroup*>& a, SimTime b) {
          return a.first < b;
        });
    RTQ_DCHECK(it != groups_.end() && it->second == g);
    groups_.erase(it);
    g->next_free = free_groups_;
    free_groups_ = g;
  }
}

void Disk::UnlinkQueryList(RequestNode* node) {
  if (node->query_next != nullptr)
    node->query_next->query_prev = node->query_prev;
  if (node->query_prev != nullptr) {
    node->query_prev->query_next = node->query_next;
  } else {
    // Head of the query's list: move the map entry to the successor, or
    // drop the entry when this was the query's last queued request.
    if (node->query_next != nullptr) {
      by_query_[node->req.query] = node->query_next;
    } else {
      by_query_.erase(node->req.query);
    }
  }
}

int64_t Disk::CancelQuery(QueryId query) {
  int64_t removed = 0;
  auto it = by_query_.find(query);
  if (it != by_query_.end()) {
    RequestNode* n = it->second;
    while (n != nullptr) {
      RequestNode* next = n->query_next;
      RemoveFromQueue(n);
      n->~RequestNode();
      pool_.Deallocate(n, sizeof(RequestNode));
      n = next;
      ++removed;
    }
    by_query_.erase(it);
  }
  if (in_service_ && current_.query == query) current_cancelled_ = true;
  return removed;
}

Disk::RequestNode* Disk::PickByElevator() {
  RTQ_DCHECK(!groups_.empty());
  // The earliest-deadline group sits at the front of the deadline order.
  DeadlineGroup* g = groups_.front().second;
  // Among requests tied at the earliest deadline, continue the current
  // sweep direction from the head position, reversing when no request
  // lies ahead: the nearest non-empty cylinder at-or-ahead of the head,
  // FIFO within a cylinder.
  Cylinder cyl = sweep_up_
                     ? FindSetAtOrAbove(g->bits, bitmap_words_, head_)
                     : FindSetAtOrBelow(g->bits, head_);
  if (cyl < 0) {
    sweep_up_ = !sweep_up_;
    cyl = sweep_up_ ? FindSetAtOrAbove(g->bits, bitmap_words_, head_)
                    : FindSetAtOrBelow(g->bits, head_);
  }
  RTQ_DCHECK(cyl >= 0);
  return g->heads[cyl];
}

void Disk::StartNext() {
  if (queued_count_ == 0) return;
  RequestNode* node = PickByElevator();
  current_ = std::move(node->req);
  RemoveFromQueue(node);
  UnlinkQueryList(node);
  node->~RequestNode();
  pool_.Deallocate(node, sizeof(RequestNode));
  current_cancelled_ = false;
  in_service_ = true;
  busy_.Update(sim_->Now(), 1.0);

  SimTime service;
  if (!current_.is_write && cache_.Contains(current_.start_page,
                                            current_.pages)) {
    service = kCacheHitTime;
    ++cache_hits_;
  } else {
    service = geometry_.AccessTime(head_, current_.start_page,
                                   current_.pages);
    head_ = geometry_.CylinderOf(current_.start_page + current_.pages - 1);
    if (current_.is_write) {
      // Conservative write-through model: a media write may overlap any
      // cached extent; drop the cache rather than track overlaps.
      cache_.Invalidate();
    } else {
      cache_.Insert(current_.start_page, current_.pages);
    }
  }
  sim_->ScheduleAfter(service, [this] { OnServiceComplete(); });
}

void Disk::OnServiceComplete() {
  RTQ_DCHECK(in_service_);
  ++completed_requests_;
  completed_pages_ += current_.pages;
  in_service_ = false;
  busy_.Update(sim_->Now(), 0.0);

  // Take the callback out before starting the next access so a callback
  // that submits new requests sees a consistent disk state.
  auto callback = std::move(current_.on_complete);
  bool deliver = !current_cancelled_ && static_cast<bool>(callback);
  StartNext();
  if (deliver) callback();
}

}  // namespace rtq::model
