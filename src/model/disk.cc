#include "model/disk.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/check.h"

namespace rtq::model {

namespace {
/// Cache-hit service time: one bus transfer, no mechanical movement. The
/// paper does not give a figure; 0.5 ms per request is negligible against
/// a ~12 ms access, which is all that matters for the model.
constexpr SimTime kCacheHitTime = 0.5e-3;
}  // namespace

Disk::Disk(sim::Simulator* sim, const DiskParams& params, DiskId id)
    : sim_(sim),
      geometry_(params),
      cache_(params.cache_pages),
      id_(id) {
  RTQ_CHECK(sim != nullptr);
  busy_.Start(sim->Now(), 0.0);
}

void Disk::Submit(DiskRequest request) {
  RTQ_CHECK_MSG(request.pages > 0, "disk request must transfer >= 1 page");
  RTQ_CHECK_MSG(
      request.start_page >= 0 &&
          request.start_page + request.pages <= geometry_.params().capacity(),
      "disk request outside disk capacity");
  QueueKey key{request.deadline, geometry_.CylinderOf(request.start_page),
               submit_seq_++};
  by_query_[request.query].push_back(key);
  queue_.emplace(key, std::move(request));
  if (!in_service_) StartNext();
}

int64_t Disk::CancelQuery(QueryId query) {
  int64_t removed = 0;
  auto it = by_query_.find(query);
  if (it != by_query_.end()) {
    for (const QueueKey& key : it->second) {
      queue_.erase(key);
      ++removed;
    }
    by_query_.erase(it);
  }
  if (in_service_ && current_.query == query) current_cancelled_ = true;
  return removed;
}

void Disk::UnindexRequest(QueryId query, const QueueKey& key) {
  auto it = by_query_.find(query);
  RTQ_DCHECK(it != by_query_.end());
  std::vector<QueueKey>& keys = it->second;
  for (size_t i = 0; i < keys.size(); ++i) {
    if (keys[i].seq == key.seq) {
      keys[i] = keys.back();
      keys.pop_back();
      break;
    }
  }
  if (keys.empty()) by_query_.erase(it);
}

Disk::Queue::iterator Disk::PickByElevator() {
  RTQ_DCHECK(!queue_.empty());
  // The earliest-deadline group sits at the front of the key order.
  const SimTime dl = queue_.begin()->first.deadline;
  // Among requests tied at the earliest deadline, continue the current
  // sweep direction from the head position, reversing when no request
  // lies ahead: the nearest cylinder at-or-ahead of the head, FIFO
  // (lowest sequence) within a cylinder.
  auto pick_in_direction = [&](bool up) -> Queue::iterator {
    if (up) {
      auto it = queue_.lower_bound(QueueKey{dl, head_, 0});
      if (it != queue_.end() && it->first.deadline == dl) return it;
      return queue_.end();
    }
    auto it = queue_.upper_bound(
        QueueKey{dl, head_, std::numeric_limits<uint64_t>::max()});
    if (it == queue_.begin()) return queue_.end();
    --it;
    if (it->first.deadline != dl) return queue_.end();
    // `it` is the highest (cylinder, seq) at or below the head; rewind to
    // the FIFO-first request on that cylinder.
    return queue_.lower_bound(QueueKey{dl, it->first.cyl, 0});
  };
  auto it = pick_in_direction(sweep_up_);
  if (it == queue_.end()) {
    sweep_up_ = !sweep_up_;
    it = pick_in_direction(sweep_up_);
  }
  RTQ_DCHECK(it != queue_.end());
  return it;
}

void Disk::StartNext() {
  if (queue_.empty()) return;
  auto it = PickByElevator();
  current_ = std::move(it->second);
  UnindexRequest(current_.query, it->first);
  queue_.erase(it);
  current_cancelled_ = false;
  in_service_ = true;
  busy_.Update(sim_->Now(), 1.0);

  SimTime service;
  if (!current_.is_write && cache_.Contains(current_.start_page,
                                            current_.pages)) {
    service = kCacheHitTime;
    ++cache_hits_;
  } else {
    service = geometry_.AccessTime(head_, current_.start_page,
                                   current_.pages);
    head_ = geometry_.CylinderOf(current_.start_page + current_.pages - 1);
    if (current_.is_write) {
      // Conservative write-through model: a media write may overlap any
      // cached extent; drop the cache rather than track overlaps.
      cache_.Invalidate();
    } else {
      cache_.Insert(current_.start_page, current_.pages);
    }
  }
  sim_->ScheduleAfter(service, [this] { OnServiceComplete(); });
}

void Disk::OnServiceComplete() {
  RTQ_DCHECK(in_service_);
  ++completed_requests_;
  completed_pages_ += current_.pages;
  in_service_ = false;
  busy_.Update(sim_->Now(), 0.0);

  // Take the callback out before starting the next access so a callback
  // that submits new requests sees a consistent disk state.
  auto callback = std::move(current_.on_complete);
  bool deliver = !current_cancelled_ && callback != nullptr;
  StartNext();
  if (deliver) callback();
}

}  // namespace rtq::model
