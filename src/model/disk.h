// One disk of the engine's N-disk farm, with Earliest-Deadline queueing
// (paper Section 4.2). The engine builds SystemConfig::num_disks of
// these (Table 3 default: 10), each running its own independent elevator
// over its own queue; the database layout stripes relations across them.
//
// "Every disk manages its own queue by the ED policy; any disk requests
// that ED assigns the same priority to are serviced according to the
// elevator algorithm." Service is non-preemptive: an access in progress
// completes even if a more urgent request arrives, and even if its issuing
// query is aborted (the callback is simply dropped in that case).
//
// Queue layout: requests are grouped by exact deadline (a small sorted
// vector of groups, earliest first); each group holds a cylinder bitmap
// plus per-cylinder intrusive FIFO lists. The scheduling decision —
// earliest deadline first, elevator sweep among deadline ties, FIFO among
// same-cylinder ties — is a front-group bitmap scan, and submit/removal
// are O(1) list splices, instead of red-black-tree descents over a queue
// that routinely holds hundreds of requests.
//
// Cancellation model: CancelQuery() removes only *queued* requests. A
// request already in service keeps the disk busy until its mechanical
// access finishes — service is non-preemptive — but its completion
// callback is dropped. The cancelled query therefore still occupies the
// head for the remainder of the access; a subsequent request (even one
// resubmitted by the same query id) waits behind it and is scheduled
// normally once the access completes. Only the in-service request being
// serviced *at the time of the call* is suppressed: a resubmission under
// the same query id is a new request and completes normally.

#ifndef RTQ_MODEL_DISK_H_
#define RTQ_MODEL_DISK_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/inline_callback.h"
#include "common/pool.h"
#include "common/types.h"
#include "model/disk_cache.h"
#include "model/disk_geometry.h"
#include "sim/simulator.h"
#include "stats/time_weighted.h"

namespace rtq::model {

/// Completion continuation. 64 bytes covers the engine's cache-insert
/// read chain (engine/rtdbs.cc) inline; larger captures are a compile
/// error (common/inline_callback.h).
using DiskCallback = InlineCallback<64>;

struct DiskRequest {
  QueryId query = kInvalidQueryId;
  /// ED priority: earlier deadline is served first.
  SimTime deadline = kNoDeadline;
  /// Absolute page address of the first page of the access.
  PageCount start_page = 0;
  /// Number of consecutive pages transferred.
  PageCount pages = 1;
  bool is_write = false;
  /// Invoked at completion time. Dropped if the query was cancelled.
  DiskCallback on_complete;
};

class Disk {
 public:
  Disk(sim::Simulator* sim, const DiskParams& params, DiskId id);
  ~Disk();

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Enqueues a request; service starts immediately if the disk is idle.
  void Submit(DiskRequest request);

  /// Removes all queued requests belonging to `query` and drops the
  /// completion callback of an in-service request of that query (the
  /// mechanical access itself still finishes; see the cancellation model
  /// above). Returns the number of queued requests removed.
  int64_t CancelQuery(QueryId query);

  /// Fraction of time the disk was busy since construction.
  double Utilization(SimTime now) const { return busy_.Average(now); }
  /// Total busy seconds since construction (windowed utilizations are
  /// computed by differencing snapshots of this integral).
  double busy_seconds(SimTime now) const { return busy_.Integral(now); }

  DiskId id() const { return id_; }
  const DiskGeometry& geometry() const { return geometry_; }
  Cylinder head() const { return head_; }
  bool busy() const { return in_service_; }
  size_t queue_length() const { return static_cast<size_t>(queued_count_); }

  /// Lifetime counters, for metrics and tests.
  int64_t completed_requests() const { return completed_requests_; }
  int64_t completed_pages() const { return completed_pages_; }
  int64_t cache_hits() const { return cache_hits_; }

 private:
  struct DeadlineGroup;

  /// One queued request. Doubly linked into two intrusive lists: the
  /// per-(group, cylinder) FIFO (circular; tail == head->fifo_prev) and
  /// its query's cancellation list. Nodes come from the pool, so the
  /// whole queue is allocation-free in steady state.
  struct RequestNode {
    DiskRequest req;
    RequestNode* fifo_prev;
    RequestNode* fifo_next;
    RequestNode* query_prev;
    RequestNode* query_next;
    DeadlineGroup* group;
    Cylinder cyl;
  };

  /// All queued requests sharing one exact deadline. `bits` marks the
  /// cylinders with a non-empty FIFO; `heads[cyl]` is only meaningful
  /// while the cylinder's bit is set, which is what lets a recycled
  /// group reset with a bitmap memset instead of clearing the 12 KB
  /// heads array.
  struct DeadlineGroup {
    int64_t count;
    DeadlineGroup* next_free;
    uint64_t* bits;       // bitmap_words_ words
    RequestNode** heads;  // num_cylinders entries
  };

  /// Picks the next request per ED + elevator and starts service.
  void StartNext();
  void OnServiceComplete();

  /// Chooses the next request: earliest-deadline group (front of
  /// groups_), nearest non-empty cylinder in the sweep direction
  /// (bitmap scan), FIFO head within that cylinder.
  RequestNode* PickByElevator();

  /// Finds (or creates, via the free list) the group for `deadline`.
  DeadlineGroup* GroupFor(SimTime deadline);

  /// Unlinks `node` from its group's FIFO, retiring the group when it
  /// drains, and from its query's cancellation list. Does not destroy
  /// the node.
  void RemoveFromQueue(RequestNode* node);
  void UnlinkQueryList(RequestNode* node);

  sim::Simulator* sim_;
  DiskGeometry geometry_;
  DiskCache cache_;
  DiskId id_;

  // Pool before containers: containers must be destroyed first.
  NodePool pool_;
  /// Deadline groups, sorted ascending by deadline (exact-equality
  /// grouping, same as the former (deadline, cylinder, seq) map key).
  /// Distinct live deadlines number in the tens, so the vector stays
  /// small and its front() is the ED pick.
  std::vector<std::pair<SimTime, DeadlineGroup*>> groups_;
  DeadlineGroup* free_groups_ = nullptr;
  size_t bitmap_words_;
  /// query -> head of its RequestNode cancellation list. One hash op per
  /// submit and (at most) per unlink.
  using ByQueryIndex = std::unordered_map<
      QueryId, RequestNode*, std::hash<QueryId>, std::equal_to<QueryId>,
      PoolAllocator<std::pair<const QueryId, RequestNode*>>>;
  ByQueryIndex by_query_{
      8, std::hash<QueryId>(), std::equal_to<QueryId>(),
      PoolAllocator<std::pair<const QueryId, RequestNode*>>(&pool_)};
  int64_t queued_count_ = 0;
  bool in_service_ = false;
  DiskRequest current_;
  bool current_cancelled_ = false;

  Cylinder head_ = 0;
  bool sweep_up_ = true;  // elevator direction

  stats::TimeWeightedAverage busy_;
  int64_t completed_requests_ = 0;
  int64_t completed_pages_ = 0;
  int64_t cache_hits_ = 0;
};

}  // namespace rtq::model

#endif  // RTQ_MODEL_DISK_H_
