// A single disk with Earliest-Deadline queueing (paper Section 4.2).
//
// "Every disk manages its own queue by the ED policy; any disk requests
// that ED assigns the same priority to are serviced according to the
// elevator algorithm." Service is non-preemptive: an access in progress
// completes even if a more urgent request arrives, and even if its issuing
// query is aborted (the callback is simply dropped in that case).
//
// The queue is indexed by (deadline, cylinder, submission sequence), so
// the scheduling decision — earliest deadline first, elevator sweep among
// deadline ties, FIFO among same-cylinder ties — and per-query
// cancellation are all O(log n) instead of full-queue scans.
//
// Cancellation model: CancelQuery() removes only *queued* requests. A
// request already in service keeps the disk busy until its mechanical
// access finishes — service is non-preemptive — but its completion
// callback is dropped. The cancelled query therefore still occupies the
// head for the remainder of the access; a subsequent request (even one
// resubmitted by the same query id) waits behind it and is scheduled
// normally once the access completes. Only the in-service request being
// serviced *at the time of the call* is suppressed: a resubmission under
// the same query id is a new request and completes normally.

#ifndef RTQ_MODEL_DISK_H_
#define RTQ_MODEL_DISK_H_

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "model/disk_cache.h"
#include "model/disk_geometry.h"
#include "sim/simulator.h"
#include "stats/time_weighted.h"

namespace rtq::model {

struct DiskRequest {
  QueryId query = kInvalidQueryId;
  /// ED priority: earlier deadline is served first.
  SimTime deadline = kNoDeadline;
  /// Absolute page address of the first page of the access.
  PageCount start_page = 0;
  /// Number of consecutive pages transferred.
  PageCount pages = 1;
  bool is_write = false;
  /// Invoked at completion time. Dropped if the query was cancelled.
  std::function<void()> on_complete;
};

class Disk {
 public:
  Disk(sim::Simulator* sim, const DiskParams& params, DiskId id);

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Enqueues a request; service starts immediately if the disk is idle.
  void Submit(DiskRequest request);

  /// Removes all queued requests belonging to `query` and drops the
  /// completion callback of an in-service request of that query (the
  /// mechanical access itself still finishes; see the cancellation model
  /// above). Returns the number of queued requests removed.
  int64_t CancelQuery(QueryId query);

  /// Fraction of time the disk was busy since construction.
  double Utilization(SimTime now) const { return busy_.Average(now); }
  /// Total busy seconds since construction (windowed utilizations are
  /// computed by differencing snapshots of this integral).
  double busy_seconds(SimTime now) const { return busy_.Integral(now); }

  DiskId id() const { return id_; }
  const DiskGeometry& geometry() const { return geometry_; }
  Cylinder head() const { return head_; }
  bool busy() const { return in_service_; }
  size_t queue_length() const { return queue_.size(); }

  /// Lifetime counters, for metrics and tests.
  int64_t completed_requests() const { return completed_requests_; }
  int64_t completed_pages() const { return completed_pages_; }
  int64_t cache_hits() const { return cache_hits_; }

 private:
  /// Scheduling key: ED order first, then cylinder for the elevator
  /// sweep, then submission sequence so equal-cylinder ties stay FIFO.
  struct QueueKey {
    SimTime deadline;
    Cylinder cyl;
    uint64_t seq;
    bool operator<(const QueueKey& o) const {
      if (deadline != o.deadline) return deadline < o.deadline;
      if (cyl != o.cyl) return cyl < o.cyl;
      return seq < o.seq;
    }
  };
  using Queue = std::map<QueueKey, DiskRequest>;

  /// Picks the next request per ED + elevator and starts service.
  void StartNext();
  void OnServiceComplete();

  /// Chooses the next request by earliest deadline, breaking ties with
  /// the elevator sweep, via index lookups: O(log n).
  Queue::iterator PickByElevator();

  /// Drops `key` from the per-query index.
  void UnindexRequest(QueryId query, const QueueKey& key);

  sim::Simulator* sim_;
  DiskGeometry geometry_;
  DiskCache cache_;
  DiskId id_;

  Queue queue_;
  /// Keys of each query's queued requests, for O(log n) CancelQuery.
  std::unordered_map<QueryId, std::vector<QueueKey>> by_query_;
  uint64_t submit_seq_ = 0;
  bool in_service_ = false;
  DiskRequest current_;
  bool current_cancelled_ = false;

  Cylinder head_ = 0;
  bool sweep_up_ = true;  // elevator direction

  stats::TimeWeightedAverage busy_;
  int64_t completed_requests_ = 0;
  int64_t completed_pages_ = 0;
  int64_t cache_hits_ = 0;
};

}  // namespace rtq::model

#endif  // RTQ_MODEL_DISK_H_
