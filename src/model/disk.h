// A single disk with Earliest-Deadline queueing (paper Section 4.2).
//
// "Every disk manages its own queue by the ED policy; any disk requests
// that ED assigns the same priority to are serviced according to the
// elevator algorithm." Service is non-preemptive: an access in progress
// completes even if a more urgent request arrives, and even if its issuing
// query is aborted (the callback is simply dropped in that case).

#ifndef RTQ_MODEL_DISK_H_
#define RTQ_MODEL_DISK_H_

#include <cstdint>
#include <functional>
#include <list>

#include "common/types.h"
#include "model/disk_cache.h"
#include "model/disk_geometry.h"
#include "sim/simulator.h"
#include "stats/time_weighted.h"

namespace rtq::model {

struct DiskRequest {
  QueryId query = kInvalidQueryId;
  /// ED priority: earlier deadline is served first.
  SimTime deadline = kNoDeadline;
  /// Absolute page address of the first page of the access.
  PageCount start_page = 0;
  /// Number of consecutive pages transferred.
  PageCount pages = 1;
  bool is_write = false;
  /// Invoked at completion time. Dropped if the query was cancelled.
  std::function<void()> on_complete;
};

class Disk {
 public:
  Disk(sim::Simulator* sim, const DiskParams& params, DiskId id);

  Disk(const Disk&) = delete;
  Disk& operator=(const Disk&) = delete;

  /// Enqueues a request; service starts immediately if the disk is idle.
  void Submit(DiskRequest request);

  /// Removes all queued requests belonging to `query` and drops the
  /// completion callback of an in-service request of that query (the
  /// mechanical access itself still finishes). Returns the number of
  /// queued requests removed.
  int64_t CancelQuery(QueryId query);

  /// Fraction of time the disk was busy since construction.
  double Utilization(SimTime now) const { return busy_.Average(now); }
  /// Total busy seconds since construction (windowed utilizations are
  /// computed by differencing snapshots of this integral).
  double busy_seconds(SimTime now) const { return busy_.Integral(now); }

  DiskId id() const { return id_; }
  const DiskGeometry& geometry() const { return geometry_; }
  Cylinder head() const { return head_; }
  bool busy() const { return in_service_; }
  size_t queue_length() const { return queue_.size(); }

  /// Lifetime counters, for metrics and tests.
  int64_t completed_requests() const { return completed_requests_; }
  int64_t completed_pages() const { return completed_pages_; }
  int64_t cache_hits() const { return cache_hits_; }

 private:
  /// Picks the next request per ED + elevator and starts service.
  void StartNext();
  void OnServiceComplete();

  /// Chooses among `candidates` (iterators into queue_) by elevator order.
  std::list<DiskRequest>::iterator PickByElevator();

  sim::Simulator* sim_;
  DiskGeometry geometry_;
  DiskCache cache_;
  DiskId id_;

  std::list<DiskRequest> queue_;
  bool in_service_ = false;
  DiskRequest current_;
  bool current_cancelled_ = false;

  Cylinder head_ = 0;
  bool sweep_up_ = true;  // elevator direction

  stats::TimeWeightedAverage busy_;
  int64_t completed_requests_ = 0;
  int64_t completed_pages_ = 0;
  int64_t cache_hits_ = 0;
};

}  // namespace rtq::model

#endif  // RTQ_MODEL_DISK_H_
