#include "stats/linear_fit.h"

#include <cmath>

namespace rtq::stats {

void LinearFit::Add(double x, double y) {
  ++k_;
  sx_ += x;
  sxx_ += x * x;
  sy_ += y;
  sxy_ += x * y;
}

void LinearFit::Reset() {
  k_ = 0;
  sx_ = sxx_ = sy_ = sxy_ = 0.0;
}

bool LinearFit::CanFit() const {
  if (k_ < 2) return false;
  double n = static_cast<double>(k_);
  double denom = n * sxx_ - sx_ * sx_;
  // Relative tolerance: all-equal x values give denom == 0 up to rounding.
  return std::fabs(denom) > 1e-12 * (1.0 + std::fabs(n * sxx_));
}

double LinearFit::slope() const {
  if (!CanFit()) return 0.0;
  double n = static_cast<double>(k_);
  return (n * sxy_ - sx_ * sy_) / (n * sxx_ - sx_ * sx_);
}

double LinearFit::intercept() const {
  if (k_ == 0) return 0.0;
  double n = static_cast<double>(k_);
  if (!CanFit()) return sy_ / n;
  return (sy_ - slope() * sx_) / n;
}

double LinearFit::ValueAt(double x) const {
  if (k_ == 0) return 0.0;
  if (!CanFit()) return sy_ / static_cast<double>(k_);
  return slope() * x + intercept();
}

}  // namespace rtq::stats
