#include "stats/trend_tracker.h"

#include <algorithm>

#include "common/check.h"
#include "stats/linear_fit.h"
#include "stats/quadratic_fit.h"

namespace rtq::stats {

TrendTracker::TrendTracker(int64_t window) : window_(window) {
  RTQ_CHECK_MSG(window >= 3, "TrendTracker window must be >= 3");
}

void TrendTracker::Add(double t, double value) {
  samples_.emplace_back(t, value);
  while (static_cast<int64_t>(samples_.size()) > window_) {
    samples_.pop_front();
  }
}

void TrendTracker::Reset() { samples_.clear(); }

Forecast TrendTracker::Predict(double t) const {
  Forecast f;
  if (samples_.size() < 3) return f;

  double t0 = 0.0;
  for (const auto& [st, sv] : samples_) t0 += st;
  t0 /= static_cast<double>(samples_.size());

  LinearFit line;
  for (const auto& [st, sv] : samples_) line.Add(st - t0, sv);
  if (!line.CanFit()) return f;  // all samples share one timestamp

  f.valid = true;
  f.slope = line.slope();
  f.value = line.ValueAt(t - t0);
  f.current = line.ValueAt(samples_.back().first - t0);

  double mean = 0.0;
  for (const auto& [st, sv] : samples_) mean += sv;
  mean /= static_cast<double>(samples_.size());
  double sse = 0.0, sst = 0.0;
  for (const auto& [st, sv] : samples_) {
    double residual = sv - line.ValueAt(st - t0);
    sse += residual * residual;
    sst += (sv - mean) * (sv - mean);
  }
  // Zero variance = a flat series the line explains exactly; its slope
  // is ~0 so a confident forecast of "no change" is the honest answer.
  f.confidence = sst <= 1e-12 ? 1.0 : std::clamp(1.0 - sse / sst, 0.0, 1.0);

  QuadraticFit quad;
  for (const auto& [st, sv] : samples_) quad.Add(st - t0, sv);
  if (quad.Fit()) {
    f.quad_valid = true;
    f.quad_value = quad.ValueAt(t - t0);
    f.curvature = quad.a();
  }
  return f;
}

}  // namespace rtq::stats
