// Time-weighted average of a piecewise-constant signal.
//
// The paper's "observed MPL" (Figures 5, 10) and the resource utilizations
// are time averages: the signal holds a value for an interval of simulated
// time and the metric is the integral divided by elapsed time.

#ifndef RTQ_STATS_TIME_WEIGHTED_H_
#define RTQ_STATS_TIME_WEIGHTED_H_

#include "common/types.h"

namespace rtq::stats {

class TimeWeightedAverage {
 public:
  /// Starts tracking at time `start` with initial value `value`.
  void Start(SimTime start, double value);

  /// Records that the signal changed to `value` at time `now`.
  void Update(SimTime now, double value);

  /// Time-weighted mean over [start, now]. Requires Start() was called.
  double Average(SimTime now) const;

  /// Integral of the signal over [window_start, now], assuming the caller
  /// reset at window_start; used for per-batch utilization readings.
  double Integral(SimTime now) const;

  /// Restarts the accumulation window at `now`, keeping the current value.
  void ResetWindow(SimTime now);

  double current_value() const { return value_; }

 private:
  SimTime window_start_ = 0.0;
  SimTime last_update_ = 0.0;
  double value_ = 0.0;
  double integral_ = 0.0;
  bool started_ = false;
};

}  // namespace rtq::stats

#endif  // RTQ_STATS_TIME_WEIGHTED_H_
