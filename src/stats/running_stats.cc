#include "stats/running_stats.h"

#include <cmath>

namespace rtq::stats {

void RunningStats::Add(double x) {
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  int64_t n = count_ + other.count_;
  double delta = other.mean_ - mean_;
  double na = static_cast<double>(count_);
  double nb = static_cast<double>(other.count_);
  mean_ += delta * nb / static_cast<double>(n);
  m2_ += other.m2_ + delta * delta * na * nb / static_cast<double>(n);
  count_ = n;
}

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace rtq::stats
