// Welford-style running mean/variance accumulator.
//
// Used throughout the simulator for per-batch observation streams (waiting
// times, execution times, workload characteristics) that feed PMM's
// large-sample tests and the reported averages.

#ifndef RTQ_STATS_RUNNING_STATS_H_
#define RTQ_STATS_RUNNING_STATS_H_

#include <cstdint>

namespace rtq::stats {

class RunningStats {
 public:
  /// Adds one observation.
  void Add(double x);

  /// Removes all state.
  void Reset();

  /// Merges another accumulator into this one (parallel-batch merge).
  void Merge(const RunningStats& other);

  int64_t count() const { return count_; }
  /// Mean of the observations; 0 when empty.
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 for fewer than two observations.
  double variance() const;
  /// Square root of variance().
  double stddev() const;
  /// Sum of all observations.
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace rtq::stats

#endif  // RTQ_STATS_RUNNING_STATS_H_
