#include "stats/large_sample_test.h"

#include <cmath>
#include <limits>

#include "common/check.h"
#include "stats/normal.h"

namespace rtq::stats {

double ZStatistic(const RunningStats& sample, double mu0) {
  if (sample.count() < 2) return 0.0;
  double s = sample.stddev();
  double diff = sample.mean() - mu0;
  if (s == 0.0) {
    // Degenerate sample: every observation equals the mean. Treat any
    // nonzero difference as infinitely significant.
    if (diff == 0.0) return 0.0;
    return diff > 0.0 ? std::numeric_limits<double>::infinity()
                      : -std::numeric_limits<double>::infinity();
  }
  return diff / (s / std::sqrt(static_cast<double>(sample.count())));
}

bool MeanExceeds(const RunningStats& sample, double mu0, double confidence) {
  RTQ_CHECK_MSG(confidence > 0.0 && confidence < 1.0,
                "confidence must be in (0,1)");
  if (sample.count() < 2) return false;
  double z_crit = NormalQuantile(confidence);
  return ZStatistic(sample, mu0) > z_crit;
}

bool TwoSampleMeansDiffer(const RunningStats& a, const RunningStats& b,
                          double confidence) {
  RTQ_CHECK_MSG(confidence > 0.0 && confidence < 1.0,
                "confidence must be in (0,1)");
  if (a.count() < 2 || b.count() < 2) return false;
  double se2 = a.variance() / static_cast<double>(a.count()) +
               b.variance() / static_cast<double>(b.count());
  double diff = a.mean() - b.mean();
  if (se2 <= 0.0) return diff != 0.0;
  double z = diff / std::sqrt(se2);
  double z_crit = NormalQuantile(0.5 + confidence / 2.0);
  return std::fabs(z) > z_crit;
}

bool MeanDiffersFrom(const RunningStats& sample, double mu0,
                     double confidence) {
  RTQ_CHECK_MSG(confidence > 0.0 && confidence < 1.0,
                "confidence must be in (0,1)");
  if (sample.count() < 2) return false;
  double z_crit = NormalQuantile(0.5 + confidence / 2.0);
  return std::fabs(ZStatistic(sample, mu0)) > z_crit;
}

}  // namespace rtq::stats
