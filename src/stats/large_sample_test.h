// Large-sample z-tests [Devo91, pp. 283-301], as used by PMM.
//
// PMM runs two kinds of tests (paper Sections 3.2 and 3.3):
//  * adaptation tests at AdaptConfLevel (default 95%): "is the mean
//    admission waiting time significantly positive?", "is the mean slack
//    (time constraint - execution time) significantly positive?"
//  * workload-change tests at ChangeConfLevel (default 99%): "does the
//    current batch mean of a workload characteristic differ from the last
//    observed value?"

#ifndef RTQ_STATS_LARGE_SAMPLE_TEST_H_
#define RTQ_STATS_LARGE_SAMPLE_TEST_H_

#include "stats/running_stats.h"

namespace rtq::stats {

/// One-sided test of H0: mean <= mu0 against H1: mean > mu0.
/// Returns true when H0 is rejected at `confidence` (e.g. 0.95).
/// With fewer than 2 observations the test cannot reject.
bool MeanExceeds(const RunningStats& sample, double mu0, double confidence);

/// Two-sided test of H0: mean == mu0 against H1: mean != mu0.
/// Returns true when H0 is rejected at `confidence` (e.g. 0.99).
bool MeanDiffersFrom(const RunningStats& sample, double mu0,
                     double confidence);

/// The underlying z statistic, (mean - mu0) / (s / sqrt(n)); 0 when the
/// sample is degenerate (n < 2 or zero variance with mean == mu0).
double ZStatistic(const RunningStats& sample, double mu0);

/// Two-sample two-sided test of H0: mean_a == mean_b at `confidence`.
/// Both samples contribute their standard errors; this is the correct
/// form for PMM's workload-change detector, which compares the current
/// batch of observations against the previous batch (treating the old
/// batch mean as exact would grossly inflate the false-alarm rate).
bool TwoSampleMeansDiffer(const RunningStats& a, const RunningStats& b,
                          double confidence);

}  // namespace rtq::stats

#endif  // RTQ_STATS_LARGE_SAMPLE_TEST_H_
