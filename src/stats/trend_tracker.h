// Windowed trend fitting with confidence gating.
//
// The incremental fits (linear_fit.h, quadratic_fit.h) accumulate over
// their whole lifetime — the right shape for PMM's batch projections,
// the wrong one for forecasting a non-stationary signal, where only the
// recent past predicts the near future. TrendTracker keeps the last
// `window` samples of a time series, refits both a line and a parabola
// over that window on demand, and reports an extrapolation together
// with a confidence score (the linear fit's R^2) so callers can gate
// actions on trend quality: a clean ramp forecasts confidently, pure
// noise does not, and a flat series forecasts "no change" — never a
// spurious move.
//
// Predict() centers time on the window mean before fitting, so absolute
// simulation timestamps (10^4 s and beyond) cost no precision.

#ifndef RTQ_STATS_TREND_TRACKER_H_
#define RTQ_STATS_TREND_TRACKER_H_

#include <cstdint>
#include <deque>
#include <utility>

namespace rtq::stats {

/// The result of extrapolating a windowed trend to a future time.
struct Forecast {
  /// False until the window holds >= 3 samples spanning distinct times.
  bool valid = false;
  /// Linear extrapolation at the requested time.
  double value = 0.0;
  /// The fitted line evaluated at the newest sample's time — the
  /// denoised "current" level, the natural denominator for a
  /// forecast/current ratio.
  double current = 0.0;
  /// Slope of the fitted line (signal units per time unit).
  double slope = 0.0;
  /// R^2 of the linear fit over the window, clamped to [0, 1]. A flat
  /// series (zero variance) counts as perfectly explained: 1.
  double confidence = 0.0;
  /// Quadratic refinement over the same window, when the parabola's
  /// normal equations are solvable (>= 3 distinct times).
  bool quad_valid = false;
  double quad_value = 0.0;
  /// Leading coefficient of the parabola; > 0 means the signal is
  /// accelerating upward within the window.
  double curvature = 0.0;
};

class TrendTracker {
 public:
  /// `window` = maximum samples retained (>= 3 to ever forecast).
  explicit TrendTracker(int64_t window);

  /// Appends (t, value); evicts the oldest sample beyond the window.
  /// Times must be non-decreasing (simulation clocks are).
  void Add(double t, double value);

  /// Discards all samples.
  void Reset();

  int64_t count() const { return static_cast<int64_t>(samples_.size()); }
  int64_t window() const { return window_; }

  /// Fits the window and extrapolates to time `t` (see Forecast).
  Forecast Predict(double t) const;

 private:
  int64_t window_;
  std::deque<std::pair<double, double>> samples_;
};

}  // namespace rtq::stats

#endif  // RTQ_STATS_TREND_TRACKER_H_
