// Batch-means confidence intervals [Sarg76].
//
// The paper reports that "the size of the 90% confidence intervals for
// miss ratios (computed using the batch means approach) was within a few
// percent of the mean". This class reproduces that machinery: the
// observation stream is cut into fixed-size batches, each batch mean is
// one (approximately independent) sample, and a normal-theory interval is
// built over the batch means.

#ifndef RTQ_STATS_BATCH_MEANS_H_
#define RTQ_STATS_BATCH_MEANS_H_

#include <vector>

#include "stats/running_stats.h"

namespace rtq::stats {

struct ConfidenceInterval {
  double mean = 0.0;
  double half_width = 0.0;
  int64_t num_batches = 0;
  double lower() const { return mean - half_width; }
  double upper() const { return mean + half_width; }
};

class BatchMeans {
 public:
  /// `batch_size` observations are averaged into each batch sample.
  explicit BatchMeans(int64_t batch_size);

  void Add(double x);
  void Reset();

  /// Interval at `confidence` (e.g. 0.90) over the completed batches.
  /// With fewer than 2 completed batches the half-width is reported as 0
  /// and num_batches reflects how many batches completed.
  ConfidenceInterval Interval(double confidence) const;

  int64_t completed_batches() const { return batch_stats_.count(); }
  int64_t observations() const { return observations_; }

 private:
  int64_t batch_size_;
  int64_t observations_ = 0;
  int64_t in_batch_ = 0;
  double batch_sum_ = 0.0;
  RunningStats batch_stats_;
};

}  // namespace rtq::stats

#endif  // RTQ_STATS_BATCH_MEANS_H_
