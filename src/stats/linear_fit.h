// Incremental straight-line least squares [Drap81].
//
// PMM's resource-utilization heuristic fits utilization = f(MPL) as a
// straight line over all observed <util_i, mpl_i> pairs and reads the
// "average utilization at the current MPL" off the fitted line (paper
// Section 3.1.2). The fit keeps only the five moment sums the paper lists:
// k, sum(x), sum(x^2), sum(y), sum(x*y).

#ifndef RTQ_STATS_LINEAR_FIT_H_
#define RTQ_STATS_LINEAR_FIT_H_

#include <cstdint>

namespace rtq::stats {

class LinearFit {
 public:
  /// Adds the observation (x, y).
  void Add(double x, double y);

  /// Discards all observations (PMM does this on workload change).
  void Reset();

  int64_t count() const { return k_; }

  /// True when slope/intercept are well-defined: at least two points with
  /// distinct x values.
  bool CanFit() const;

  double slope() const;
  double intercept() const;

  /// Fitted value at x. Falls back to the mean of y when the line is
  /// degenerate (all x equal), and to 0 with no data.
  double ValueAt(double x) const;

 private:
  int64_t k_ = 0;
  double sx_ = 0.0, sxx_ = 0.0, sy_ = 0.0, sxy_ = 0.0;
};

}  // namespace rtq::stats

#endif  // RTQ_STATS_LINEAR_FIT_H_
