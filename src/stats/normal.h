// Standard-normal distribution helpers.
//
// PMM's statistical machinery [Devo91] needs z quantiles for its
// large-sample tests (95% adaptation tests, 99% workload-change tests) and
// for batch-means confidence intervals. We implement Phi and its inverse
// (Acklam's rational approximation, |error| < 1.15e-9) rather than
// hard-coding the two table values, so any confidence level is usable.

#ifndef RTQ_STATS_NORMAL_H_
#define RTQ_STATS_NORMAL_H_

namespace rtq::stats {

/// Standard normal CDF Phi(x).
double NormalCdf(double x);

/// Inverse standard normal CDF; p must lie in (0, 1).
double NormalQuantile(double p);

}  // namespace rtq::stats

#endif  // RTQ_STATS_NORMAL_H_
