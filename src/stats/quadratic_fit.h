// Incremental quadratic least squares with curve-shape classification.
//
// This is the heart of PMM's miss ratio projection (paper Section 3.1.1):
// miss_ratio = a*mpl^2 + b*mpl + c fitted over all observed <miss, mpl>
// pairs, keeping only the eight moment sums the paper enumerates
// (k, sum mpl, sum mpl^2, sum mpl^3, sum mpl^4, sum miss, sum mpl*miss,
// sum mpl^2*miss). After each fit the curve is classified over the range
// of MPLs tried so far:
//
//   Type 1 "bowl"      — interior minimum; target the vertex.
//   Type 2 decreasing  — optimum above the tried range.
//   Type 3 increasing  — optimum below the tried range.
//   Type 4 "hill"      — fit is noise; fall back to the RU heuristic.

#ifndef RTQ_STATS_QUADRATIC_FIT_H_
#define RTQ_STATS_QUADRATIC_FIT_H_

#include <cstdint>

namespace rtq::stats {

enum class CurveType {
  kBowl = 1,       ///< Type 1: concave-up with interior minimum.
  kDecreasing = 2, ///< Type 2: monotonically decreasing over tried range.
  kIncreasing = 3, ///< Type 3: monotonically increasing over tried range.
  kHill = 4,       ///< Type 4: concave-down with interior maximum (noise).
  kUndetermined = 0, ///< Too few / collinear observations to fit.
};

const char* CurveTypeName(CurveType type);

class QuadraticFit {
 public:
  /// Adds the observation (x, y) = (mpl, miss ratio).
  void Add(double x, double y);

  /// Discards all observations.
  void Reset();

  int64_t count() const { return k_; }

  /// Smallest / largest x observed so far (0 when empty).
  double min_x() const { return k_ > 0 ? min_x_ : 0.0; }
  double max_x() const { return k_ > 0 ? max_x_ : 0.0; }

  /// Attempts the least-squares solve. Requires >= 3 observations spanning
  /// >= 3 distinct x values; returns false (leaving outputs untouched)
  /// when the normal equations are singular.
  bool Fit();

  /// Coefficients of y = a x^2 + b x + c from the last successful Fit().
  double a() const { return a_; }
  double b() const { return b_; }
  double c() const { return c_; }

  /// Fitted value at x (last successful Fit()).
  double ValueAt(double x) const { return a_ * x * x + b_ * x + c_; }

  /// x-coordinate of the extremum -b/(2a); only meaningful when |a| is not
  /// tiny (callers should consult Classify()).
  double Vertex() const;

  /// Classifies the most recently fitted curve over [min_x, max_x].
  /// Returns kUndetermined when Fit() has not succeeded.
  CurveType Classify() const;

 private:
  bool fitted_ = false;
  int64_t k_ = 0;
  double min_x_ = 0.0, max_x_ = 0.0;
  // Moment sums (the only state the paper requires PMM to keep).
  double sx_ = 0.0, sx2_ = 0.0, sx3_ = 0.0, sx4_ = 0.0;
  double sy_ = 0.0, sxy_ = 0.0, sx2y_ = 0.0;
  // Last solved coefficients.
  double a_ = 0.0, b_ = 0.0, c_ = 0.0;
};

}  // namespace rtq::stats

#endif  // RTQ_STATS_QUADRATIC_FIT_H_
