#include "stats/quadratic_fit.h"

#include <algorithm>
#include <cmath>

namespace rtq::stats {

const char* CurveTypeName(CurveType type) {
  switch (type) {
    case CurveType::kBowl:
      return "bowl";
    case CurveType::kDecreasing:
      return "decreasing";
    case CurveType::kIncreasing:
      return "increasing";
    case CurveType::kHill:
      return "hill";
    case CurveType::kUndetermined:
      return "undetermined";
  }
  return "?";
}

void QuadraticFit::Add(double x, double y) {
  if (k_ == 0) {
    min_x_ = max_x_ = x;
  } else {
    min_x_ = std::min(min_x_, x);
    max_x_ = std::max(max_x_, x);
  }
  ++k_;
  double x2 = x * x;
  sx_ += x;
  sx2_ += x2;
  sx3_ += x2 * x;
  sx4_ += x2 * x2;
  sy_ += y;
  sxy_ += x * y;
  sx2y_ += x2 * y;
}

void QuadraticFit::Reset() {
  fitted_ = false;
  k_ = 0;
  min_x_ = max_x_ = 0.0;
  sx_ = sx2_ = sx3_ = sx4_ = 0.0;
  sy_ = sxy_ = sx2y_ = 0.0;
  a_ = b_ = c_ = 0.0;
}

bool QuadraticFit::Fit() {
  if (k_ < 3) return false;

  // Normal equations, ordered [x^2, x, 1] so m[0][0] carries the largest
  // moments for pivoting:
  //   | sx4 sx3 sx2 | |a|   | sx2y |
  //   | sx3 sx2 sx  | |b| = | sxy  |
  //   | sx2 sx  k   | |c|   | sy   |
  double m[3][4] = {
      {sx4_, sx3_, sx2_, sx2y_},
      {sx3_, sx2_, sx_, sxy_},
      {sx2_, sx_, static_cast<double>(k_), sy_},
  };

  // Gaussian elimination with partial pivoting.
  for (int col = 0; col < 3; ++col) {
    int pivot = col;
    for (int row = col + 1; row < 3; ++row) {
      if (std::fabs(m[row][col]) > std::fabs(m[pivot][col])) pivot = row;
    }
    if (std::fabs(m[pivot][col]) < 1e-12) return false;  // singular
    if (pivot != col) std::swap(m[pivot], m[col]);
    for (int row = col + 1; row < 3; ++row) {
      double f = m[row][col] / m[col][col];
      for (int j = col; j < 4; ++j) m[row][j] -= f * m[col][j];
    }
  }
  double sol[3];
  for (int row = 2; row >= 0; --row) {
    double acc = m[row][3];
    for (int j = row + 1; j < 3; ++j) acc -= m[row][j] * sol[j];
    sol[row] = acc / m[row][row];
  }
  a_ = sol[0];
  b_ = sol[1];
  c_ = sol[2];
  if (!std::isfinite(a_) || !std::isfinite(b_) || !std::isfinite(c_)) {
    return false;
  }
  fitted_ = true;
  return true;
}

double QuadraticFit::Vertex() const {
  if (a_ == 0.0) return 0.0;
  return -b_ / (2.0 * a_);
}

CurveType QuadraticFit::Classify() const {
  if (!fitted_) return CurveType::kUndetermined;

  // Treat near-zero curvature as a straight line. The threshold is scaled
  // by the magnitude of the linear term over the tried range so the
  // classification is invariant to the units of y.
  double span = std::max(1.0, max_x_ - min_x_);
  double curvature_scale = std::fabs(a_) * span * span;
  double slope_scale = std::fabs(b_) * span;
  bool effectively_linear =
      curvature_scale < 1e-9 * std::max(1.0, slope_scale + std::fabs(c_));

  if (effectively_linear) {
    if (b_ < 0.0) return CurveType::kDecreasing;
    if (b_ > 0.0) return CurveType::kIncreasing;
    return CurveType::kHill;  // flat: no information, treat as failure
  }

  double vertex = Vertex();
  if (a_ > 0.0) {
    if (vertex <= min_x_) return CurveType::kIncreasing;
    if (vertex >= max_x_) return CurveType::kDecreasing;
    return CurveType::kBowl;
  }
  // a < 0: concave down.
  if (vertex <= min_x_) return CurveType::kDecreasing;
  if (vertex >= max_x_) return CurveType::kIncreasing;
  return CurveType::kHill;
}

}  // namespace rtq::stats
