#include "stats/time_weighted.h"

#include "common/check.h"

namespace rtq::stats {

void TimeWeightedAverage::Start(SimTime start, double value) {
  window_start_ = start;
  last_update_ = start;
  value_ = value;
  integral_ = 0.0;
  started_ = true;
}

void TimeWeightedAverage::Update(SimTime now, double value) {
  RTQ_CHECK_MSG(started_, "Update before Start");
  RTQ_CHECK_MSG(now >= last_update_, "time went backwards");
  integral_ += value_ * (now - last_update_);
  last_update_ = now;
  value_ = value;
}

double TimeWeightedAverage::Integral(SimTime now) const {
  RTQ_CHECK_MSG(started_, "Integral before Start");
  return integral_ + value_ * (now - last_update_);
}

double TimeWeightedAverage::Average(SimTime now) const {
  RTQ_CHECK_MSG(started_, "Average before Start");
  SimTime elapsed = now - window_start_;
  if (elapsed <= 0.0) return value_;
  return Integral(now) / elapsed;
}

void TimeWeightedAverage::ResetWindow(SimTime now) {
  RTQ_CHECK_MSG(started_, "ResetWindow before Start");
  Update(now, value_);
  window_start_ = now;
  integral_ = 0.0;
}

}  // namespace rtq::stats
