#include "stats/batch_means.h"

#include <cmath>

#include "common/check.h"
#include "stats/normal.h"

namespace rtq::stats {

BatchMeans::BatchMeans(int64_t batch_size) : batch_size_(batch_size) {
  RTQ_CHECK_MSG(batch_size > 0, "batch size must be positive");
}

void BatchMeans::Add(double x) {
  ++observations_;
  batch_sum_ += x;
  if (++in_batch_ == batch_size_) {
    batch_stats_.Add(batch_sum_ / static_cast<double>(batch_size_));
    batch_sum_ = 0.0;
    in_batch_ = 0;
  }
}

void BatchMeans::Reset() {
  observations_ = 0;
  in_batch_ = 0;
  batch_sum_ = 0.0;
  batch_stats_.Reset();
}

ConfidenceInterval BatchMeans::Interval(double confidence) const {
  RTQ_CHECK_MSG(confidence > 0.0 && confidence < 1.0,
                "confidence must be in (0,1)");
  ConfidenceInterval ci;
  ci.num_batches = batch_stats_.count();
  if (ci.num_batches == 0) return ci;
  ci.mean = batch_stats_.mean();
  if (ci.num_batches < 2) return ci;
  double z = NormalQuantile(0.5 + confidence / 2.0);
  ci.half_width = z * batch_stats_.stddev() /
                  std::sqrt(static_cast<double>(ci.num_batches));
  return ci;
}

}  // namespace rtq::stats
