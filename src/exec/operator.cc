#include "exec/operator.h"

#include "common/check.h"

namespace rtq::exec {

void OperatorBase::SetAllocation(PageCount pages) {
  RTQ_CHECK_MSG(pages >= 0, "allocation must be >= 0");
  allocation_ = pages;
  // If the operator is idle (not mid-chain), apply the change now; a
  // suspended operator may wake up. Mid-chain changes are picked up by
  // Continue() at the next step boundary.
  if (started_ && !finished_ && !aborted_ && !in_flight_) Continue();
}

void OperatorBase::Start(ExecContext* ctx) {
  RTQ_CHECK(ctx != nullptr);
  RTQ_CHECK_MSG(!started_, "operator started twice");
  RTQ_CHECK_MSG(allocation_ >= min_memory(),
                "Start requires a runnable allocation");
  ctx_ = ctx;
  started_ = true;
  Continue();
}

void OperatorBase::Abort() {
  if (aborted_ || finished_) return;
  aborted_ = true;
  ReleaseTempSpace();
}

void OperatorBase::Continue() {
  if (!CanRun()) return;
  if (allocation_ != applied_allocation_) {
    applied_allocation_ = allocation_;
    OnAllocationApplied();
    if (!CanRun()) return;  // OnAllocationApplied may complete/abort
  }
  if (allocation_ == 0) {
    // Suspended: the subclass has queued its spool I/O via state changes;
    // let Step() drain any pending spool writes, then idle. Subclasses
    // check for suspension and refrain from starting fresh work.
    // We still call Step() so queued spool writes proceed.
  }
  in_flight_ = true;
  Step();
  // Step() either issued async work (callbacks re-enter Continue()) or
  // decided to idle by calling neither helper; detect the latter via the
  // flag it clears.
}

void OperatorBase::StepCpu(Instructions instructions) {
  RTQ_DCHECK(in_flight_);
  counters_.cpu_instructions += instructions;
  ctx_->RunCpu(instructions, [this] {
    if (aborted_ || finished_) return;
    in_flight_ = false;
    Continue();
  });
}

void OperatorBase::StepRead(DiskId disk, PageCount start, PageCount pages) {
  RTQ_DCHECK(in_flight_);
  ++counters_.read_requests;
  counters_.pages_read += pages;
  ctx_->Read(disk, start, pages, [this] {
    if (aborted_ || finished_) return;
    in_flight_ = false;
    Continue();
  });
}

void OperatorBase::StepWrite(DiskId disk, PageCount start, PageCount pages) {
  RTQ_DCHECK(in_flight_);
  ++counters_.write_requests;
  counters_.pages_written += pages;
  ctx_->Write(
      disk, start, pages,
      [this] {
        if (aborted_ || finished_) return;
        in_flight_ = false;
        Continue();
      },
      /*background=*/false);
}

void OperatorBase::FireWrite(DiskId disk, PageCount start, PageCount pages) {
  ++counters_.write_requests;
  counters_.pages_written += pages;
  ctx_->Write(disk, start, pages, [] {}, /*background=*/true);
}

void OperatorBase::Complete() {
  RTQ_CHECK(!finished_);
  finished_ = true;
  in_flight_ = false;
  ReleaseTempSpace();
  if (on_finished) on_finished();
}

}  // namespace rtq::exec
