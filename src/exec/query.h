// Descriptor of a real-time query.
//
// Queries in the paper are single-operator plans — a hash join or an
// external sort — each with a firm deadline assigned at arrival time:
//
//   Deadline = Arrival + StandAlone * SlackRatio       (Section 4.1)
//
// where StandAlone is the query's execution time when run alone with its
// maximum memory allocation. A query that has not completed by its
// deadline is worthless and is aborted (firm RTDBS semantics).

#ifndef RTQ_EXEC_QUERY_H_
#define RTQ_EXEC_QUERY_H_

#include "common/types.h"
#include "storage/relation.h"

namespace rtq::exec {

enum class QueryType {
  kHashJoin,
  kExternalSort,
};

inline const char* QueryTypeName(QueryType type) {
  switch (type) {
    case QueryType::kHashJoin:
      return "hash_join";
    case QueryType::kExternalSort:
      return "external_sort";
  }
  return "?";
}

struct QueryDescriptor {
  QueryId id = kInvalidQueryId;
  /// Workload class this query was generated from (index into the
  /// workload spec); -1 for ad-hoc queries.
  int32_t query_class = -1;
  QueryType type = QueryType::kHashJoin;

  SimTime arrival = 0.0;
  SimTime deadline = kNoDeadline;
  double slack_ratio = 1.0;
  /// Estimated stand-alone execution time used for deadline assignment.
  SimTime standalone_time = 0.0;

  /// Operand relations: r is the inner/build (or sort) relation; s is the
  /// outer/probe relation (unused for sorts).
  storage::RelationId r_relation = -1;
  storage::RelationId s_relation = -1;

  /// Workload-characteristic inputs PMM monitors (Section 3.3).
  PageCount max_memory = 0;
  PageCount min_memory = 0;
  int64_t operand_io_requests = 0;
  PageCount operand_pages = 0;
};

}  // namespace rtq::exec

#endif  // RTQ_EXEC_QUERY_H_
