// The services an executing operator may request from the system.
//
// The engine implements this per query, binding the query's id and
// deadline into every CPU job and disk request so that ED scheduling and
// per-query cancellation work transparently. Tests implement it with a
// synchronous mock, which makes the operator state machines unit-testable
// without the full system.

#ifndef RTQ_EXEC_EXEC_CONTEXT_H_
#define RTQ_EXEC_EXEC_CONTEXT_H_

#include "common/inline_callback.h"
#include "common/status.h"
#include "common/types.h"
#include "storage/temp_space.h"

namespace rtq::exec {

/// Continuation passed to the asynchronous ExecContext services. Inline
/// small-buffer (no heap): operator continuations capture only `this`,
/// and 24 bytes leaves room for a small extra word in mocks. Oversized
/// captures fail to compile (common/inline_callback.h).
using DoneCallback = InlineCallback<24>;

class ExecContext {
 public:
  virtual ~ExecContext() = default;

  virtual SimTime Now() const = 0;

  /// Executes `instructions` on the CPU (ED-scheduled, preemptible), then
  /// invokes `done`. Implementations add the per-request start-I/O CPU
  /// charge to Read/Write themselves; callers only pass algorithmic work.
  virtual void RunCpu(Instructions instructions, DoneCallback done) = 0;

  /// Reads `pages` consecutive pages starting at `start_page` on `disk`,
  /// then invokes `done`.
  virtual void Read(DiskId disk, PageCount start_page, PageCount pages,
                    DoneCallback done) = 0;

  /// Writes `pages` consecutive pages starting at `start_page` on `disk`,
  /// then invokes `done`. `background` writes carry the lowest scheduling
  /// priority (spool traffic must never delay deadline-critical reads —
  /// PPHJ's "priority spooling").
  virtual void Write(DiskId disk, PageCount start_page, PageCount pages,
                     DoneCallback done, bool background) = 0;

  /// Allocates / frees temp-file extents (inner/outer cylinders).
  virtual StatusOr<storage::TempFile> AllocateTemp(PageCount pages,
                                                   DiskId preferred) = 0;
  virtual void FreeTemp(const storage::TempFile& file) = 0;
};

}  // namespace rtq::exec

#endif  // RTQ_EXEC_EXEC_CONTEXT_H_
