#include "exec/standalone.h"

#include <cmath>

#include "common/check.h"

namespace rtq::exec {

namespace {

int64_t CeilDiv(int64_t a, int64_t b) { return (a + b - 1) / b; }

int64_t Log2Ceil(int64_t n) {
  int64_t bits = 0;
  int64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return bits < 1 ? 1 : bits;
}

/// Expected disk time for a sequential scan of `pages` pages read in
/// blocks of `block` pages: every request pays half a rotation, the media
/// transfer, and a single-cylinder seek amortized over the requests that
/// cross a cylinder boundary.
SimTime SequentialScanTime(const model::DiskParams& disk, PageCount pages,
                           PageCount block) {
  model::DiskGeometry geom(disk);
  int64_t requests = CeilDiv(pages, block);
  double boundary_fraction =
      static_cast<double>(block) / static_cast<double>(disk.cylinder_size);
  SimTime positioning =
      geom.RotationalDelay() + geom.SeekTime(0, 1) * boundary_fraction;
  return static_cast<double>(requests) * positioning +
         geom.TransferTime(pages);
}

}  // namespace

StandaloneEstimate EstimateHashJoin(const ExecParams& exec,
                                    const model::DiskParams& disk,
                                    double mips, PageCount r_pages,
                                    PageCount s_pages) {
  RTQ_CHECK_MSG(mips > 0.0, "mips must be positive");
  RTQ_CHECK_MSG(r_pages > 0 && s_pages > 0, "empty join operand");
  const CpuCosts& c = exec.costs;
  const int64_t tpp = exec.tuples.tuples_per_page();

  StandaloneEstimate est;
  est.io_requests = CeilDiv(r_pages, exec.block_size) +
                    CeilDiv(s_pages, exec.block_size);
  est.io_time = SequentialScanTime(disk, r_pages, exec.block_size) +
                SequentialScanTime(disk, s_pages, exec.block_size);

  Instructions instr =
      c.initiate_op + c.terminate_op + c.start_io * est.io_requests +
      r_pages * tpp * c.hash_insert +
      s_pages * tpp * (c.hash_probe + c.hash_copy);
  est.cpu_time = static_cast<double>(instr) / (mips * 1e6);
  return est;
}

StandaloneEstimate EstimateExternalSort(const ExecParams& exec,
                                        const model::DiskParams& disk,
                                        double mips, PageCount pages) {
  RTQ_CHECK_MSG(mips > 0.0, "mips must be positive");
  RTQ_CHECK_MSG(pages > 0, "empty sort operand");
  const CpuCosts& c = exec.costs;
  const int64_t tpp = exec.tuples.tuples_per_page();

  StandaloneEstimate est;
  est.io_requests = CeilDiv(pages, exec.block_size);
  est.io_time = SequentialScanTime(disk, pages, exec.block_size);

  int64_t tuples = pages * tpp;
  Instructions per_tuple =
      Log2Ceil(tuples < 2 ? 2 : tuples) * c.key_compare + c.sort_copy;
  Instructions instr = c.initiate_op + c.terminate_op +
                       c.start_io * est.io_requests + tuples * per_tuple;
  est.cpu_time = static_cast<double>(instr) / (mips * 1e6);
  return est;
}

}  // namespace rtq::exec
