// Memory-adaptive external sort, modelling [Pang93b].
//
// Phase 1 (run formation) uses replacement selection: with a workspace of
// m pages (two reserved for I/O buffers), runs average 2*(m-2) pages, so a
// relation that fits in memory sorts in one run with no temp I/O — the
// paper's "maximum memory requirement of an external sort is the size of
// its operand relation". The minimum is 3 pages (1-page heap + 2 buffers).
//
// Phase 2 repeatedly merges runs with fan-in = m - 1. Adaptivity follows
// [Pang93b]: if memory shrinks mid-step, the step is *split* — the output
// produced so far becomes a run of its own and the remaining input
// continues as smaller runs; if memory grows, subsequent steps *combine*
// more runs at once. Merge-phase reads are single-page (the paper
// excludes the merge phase from block prefetching); writes are spooled in
// blocks when buffers allow. The final merge pipelines its output to the
// client without writing it.

#ifndef RTQ_EXEC_EXTERNAL_SORT_H_
#define RTQ_EXEC_EXTERNAL_SORT_H_

#include <deque>
#include <optional>

#include "common/arena.h"
#include "common/types.h"
#include "exec/cost_model.h"
#include "exec/operator.h"

namespace rtq::exec {

class ExternalSort : public OperatorBase {
 public:
  struct Inputs {
    DiskId disk = 0;
    PageCount start = 0;
    PageCount pages = 0;
  };

  /// `arena`, when non-null, backs the run-length deque so a query built
  /// into an arena performs no heap allocation; nullptr uses the heap.
  ExternalSort(const ExecParams& params, const Inputs& inputs,
               Arena* arena = nullptr);

  PageCount min_memory() const override { return 3; }
  PageCount max_memory() const override { return in_.pages; }

  // --- introspection (tests, metrics) -----------------------------------
  int64_t runs_formed() const { return runs_formed_; }
  int64_t merge_steps() const { return merge_steps_; }
  size_t pending_runs() const { return runs_.size(); }

 protected:
  void Step() override;
  void OnAllocationApplied() override;
  void ReleaseTempSpace() override;

 private:
  enum class Phase {
    kInit,        // charge the initiate-sort CPU cost
    kFormRead,    // read next block of the operand relation
    kFormCpu,     // replacement-selection CPU for the block's tuples
    kMergePlan,   // select the runs for the next merge step
    kMergeRead,   // read one page of merge input
    kMergeCpu,    // merge CPU for that page's tuples
    kFinalScan,    // single spilled run: stream it back to the client
    kFinalScanCpu, // delivery copy cost for the scanned block
    kTerminate,    // charge the terminate-sort CPU cost
    kDone,
  };

  /// Heap pages available for run formation at the current allocation.
  PageCount HeapPages() const;
  /// Merge fan-in at the current allocation.
  int64_t FanIn() const;

  void EnsureTemp();
  /// Closes the run being formed (if any) and appends it to runs_.
  void CloseCurrentRun();
  /// Spools all pending output blocks as fire-and-forget writes;
  /// `final_flush` also spools a sub-block tail.
  void FlushOutput(bool final_flush);
  /// Ends the in-progress merge step, emitting the output produced so far
  /// as a run and re-queueing unconsumed input (step splitting).
  void SplitCurrentStep();

  ExecParams params_;
  Inputs in_;

  Phase phase_ = Phase::kInit;

  // Run formation.
  PageCount read_ = 0;          // operand pages consumed
  PageCount cur_block_ = 0;     // pages in the block being processed
  PageCount cur_run_pages_ = 0; // pages accumulated into the forming run
  int64_t runs_formed_ = 0;
  bool spilling_ = false;       // false while the input still fits in memory

  // Pending spooled writes (run formation and merge output).
  double pend_write_ = 0.0;

  // Merge state.
  /// Lengths of runs awaiting merging (arena-backed when available).
  std::deque<PageCount, ArenaAllocator<PageCount>> runs_;
  bool merging_active_ = false;
  int64_t step_fan_ = 0;          // fan-in of the in-progress step
  PageCount step_total_ = 0;      // input pages of the in-progress step
  PageCount step_consumed_ = 0;   // input pages already merged
  bool step_is_final_ = false;    // output goes to client, not disk
  int64_t merge_steps_ = 0;

  // Temp extents: ping-pong between two regions sized ||R||.
  std::optional<storage::TempFile> temp_a_;
  std::optional<storage::TempFile> temp_b_;
  bool reading_from_a_ = true;
  PageCount read_cursor_ = 0;   // within the source extent
  PageCount write_cursor_ = 0;  // within the destination extent

  PageCount final_scan_left_ = 0;
  Instructions pend_scan_cpu_ = 0;
};

}  // namespace rtq::exec

#endif  // RTQ_EXEC_EXTERNAL_SORT_H_
