// The memory-adaptive operator protocol.
//
// Queries in the paper are single-operator plans (a hash join or an
// external sort) built on the memory-adaptive primitives of [Pang93a] and
// [Pang93b]. The protocol between the memory manager and an operator is:
//
//   * min_memory() / max_memory() — the operator's workspace demands.
//   * SetAllocation(p) — the memory manager granted / revised the
//     workspace to p pages. p == 0 suspends the operator (it spools its
//     in-memory state and goes quiet); p >= min_memory() lets it run.
//     Takes effect at the next step boundary (a block of work, ~6 pages),
//     spooling or reloading state as needed.
//   * Start(ctx) — begin execution. The allocation must already be set to
//     a runnable value.
//   * Abort() — the query missed its deadline; release temp space and
//     stop. The engine has already cancelled outstanding CPU/disk work.
//
// Operators drive themselves: each step issues asynchronous CPU/disk
// demands through the ExecContext and re-enters the state machine from
// the completion callback. Exactly one asynchronous chain is outstanding
// per operator at any time.

#ifndef RTQ_EXEC_OPERATOR_H_
#define RTQ_EXEC_OPERATOR_H_

#include <functional>

#include "common/types.h"
#include "exec/cost_model.h"
#include "exec/exec_context.h"

namespace rtq::exec {

/// Aggregate I/O and CPU counters an operator maintains; used by metrics,
/// tests, and the workload monitor.
struct OperatorCounters {
  int64_t read_requests = 0;
  int64_t write_requests = 0;
  PageCount pages_read = 0;
  PageCount pages_written = 0;
  Instructions cpu_instructions = 0;
};

class Operator {
 public:
  virtual ~Operator() = default;

  /// Smallest workspace the operator can make progress with.
  virtual PageCount min_memory() const = 0;
  /// Workspace that lets the operator run without any temp-file I/O.
  virtual PageCount max_memory() const = 0;

  /// Memory manager grants/revises the workspace. 0 suspends.
  virtual void SetAllocation(PageCount pages) = 0;

  /// Begins execution; requires a prior SetAllocation(>= min_memory()).
  virtual void Start(ExecContext* ctx) = 0;

  /// Deadline miss: free temp space, stop issuing work.
  virtual void Abort() = 0;

  virtual bool started() const = 0;
  virtual bool finished() const = 0;

  virtual PageCount allocation() const = 0;
  virtual const OperatorCounters& counters() const = 0;

  /// Invoked exactly once when the operator completes all its work.
  std::function<void()> on_finished;
};

/// Shared bookkeeping for the two concrete operators.
class OperatorBase : public Operator {
 public:
  void SetAllocation(PageCount pages) final;
  void Start(ExecContext* ctx) final;
  void Abort() final;

  bool started() const final { return started_; }
  bool finished() const final { return finished_; }
  PageCount allocation() const final { return allocation_; }
  const OperatorCounters& counters() const final { return counters_; }

 protected:
  /// Issues the next unit of asynchronous work. Implementations must call
  /// FinishStep() from their completion callbacks (via the helpers below)
  /// and must not leave more than one chain outstanding.
  virtual void Step() = 0;

  /// Reconfigure internal plans for allocation() pages; called at step
  /// boundaries when the granted allocation changed. Implementations may
  /// enqueue spool/reload I/O by adjusting their state before the next
  /// Step() runs.
  virtual void OnAllocationApplied() = 0;

  /// Frees operator-held temp extents; called from Abort().
  virtual void ReleaseTempSpace() = 0;

  // --- helpers for subclasses -------------------------------------------

  /// True when the operator should run the next step now.
  bool CanRun() const { return started_ && !finished_ && !aborted_; }

  /// Runs `instructions` of CPU then re-enters the state machine.
  void StepCpu(Instructions instructions);
  /// Reads then re-enters.
  void StepRead(DiskId disk, PageCount start, PageCount pages);
  /// Writes then re-enters.
  void StepWrite(DiskId disk, PageCount start, PageCount pages);

  /// Fire-and-forget spool write: the write is queued on the disk (at the
  /// query's ED priority) but the operator does NOT wait for it — this is
  /// PPHJ's "priority spooling" and the sort's block-spooled output.
  /// Does not consume the current step.
  void FireWrite(DiskId disk, PageCount start, PageCount pages);

  /// Marks completion and fires on_finished.
  void Complete();

  /// Declares that this step issues no work (suspended or waiting for a
  /// larger allocation). Step() must call exactly one of StepCpu,
  /// StepRead, StepWrite, Complete, or Idle.
  void Idle() { in_flight_ = false; }

  /// Re-enters the state machine: applies any pending allocation change,
  /// then either idles (suspended / below min) or calls Step().
  void Continue();

  ExecContext* ctx_ = nullptr;
  OperatorCounters counters_;

 private:
  PageCount allocation_ = 0;
  PageCount applied_allocation_ = -1;  // force first application
  bool started_ = false;
  bool finished_ = false;
  bool aborted_ = false;
  bool in_flight_ = false;  // an async chain is outstanding
};

}  // namespace rtq::exec

#endif  // RTQ_EXEC_OPERATOR_H_
