// CPU cost model (paper Table 4) and tuple geometry.
//
// All CPU work in the simulation is expressed as instruction counts drawn
// from this table and divided by the CPU's MIPS rating. The figures are
// the paper's defaults, verbatim.

#ifndef RTQ_EXEC_COST_MODEL_H_
#define RTQ_EXEC_COST_MODEL_H_

#include "common/status.h"
#include "common/types.h"

namespace rtq::exec {

struct CpuCosts {
  // Common operations.
  Instructions start_io = 1000;        ///< Start an I/O operation.
  Instructions initiate_op = 40000;    ///< Initiate a sort or join.
  Instructions terminate_op = 10000;   ///< Terminate a sort or join.
  // Hash joins.
  Instructions hash_insert = 100;      ///< Hash tuple and insert into table.
  Instructions hash_probe = 200;       ///< Hash tuple and probe table.
  Instructions hash_copy = 100;        ///< Hash tuple and copy to output buf.
  // External sorts.
  Instructions sort_copy = 64;         ///< Copy a tuple to output buffer.
  Instructions key_compare = 50;       ///< Compare two keys.

  Status Validate() const {
    if (start_io < 0 || initiate_op < 0 || terminate_op < 0 ||
        hash_insert < 0 || hash_probe < 0 || hash_copy < 0 ||
        sort_copy < 0 || key_compare < 0) {
      return Status::InvalidArgument("CPU costs must be non-negative");
    }
    return Status::Ok();
  }
};

struct TupleParams {
  int64_t tuple_bytes = 128;   ///< Table 2 TupleSize (see DESIGN.md note).
  int64_t page_bytes = 8192;   ///< Table 3 PageSize.

  int64_t tuples_per_page() const { return page_bytes / tuple_bytes; }

  Status Validate() const {
    if (tuple_bytes <= 0 || page_bytes <= 0 || tuple_bytes > page_bytes) {
      return Status::InvalidArgument("invalid tuple/page sizes");
    }
    return Status::Ok();
  }
};

/// Everything an operator needs to translate logical work into simulated
/// CPU instructions and I/O requests.
struct ExecParams {
  CpuCosts costs;
  TupleParams tuples;
  /// Pages fetched per sequential I/O (Table 3 BlockSize).
  PageCount block_size = 6;
  /// Hash-table space overhead F [Shap86]; 1.1 reproduces the paper's
  /// "average of 1321 buffers" for a 1200-page inner relation.
  double fudge_factor = 1.1;

  Status Validate() const {
    RTQ_RETURN_IF_ERROR(costs.Validate());
    RTQ_RETURN_IF_ERROR(tuples.Validate());
    if (block_size <= 0)
      return Status::InvalidArgument("block_size must be > 0");
    if (fudge_factor < 1.0)
      return Status::InvalidArgument("fudge_factor must be >= 1");
    return Status::Ok();
  }
};

}  // namespace rtq::exec

#endif  // RTQ_EXEC_COST_MODEL_H_
