#include "exec/external_sort.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rtq::exec {

namespace {
int64_t Log2Ceil(int64_t n) {
  int64_t bits = 0;
  int64_t v = 1;
  while (v < n) {
    v <<= 1;
    ++bits;
  }
  return std::max<int64_t>(bits, 1);
}
}  // namespace

ExternalSort::ExternalSort(const ExecParams& params, const Inputs& inputs,
                           Arena* arena)
    : params_(params), in_(inputs), runs_(ArenaAllocator<PageCount>(arena)) {
  RTQ_CHECK_MSG(params.Validate().ok(), "invalid exec params");
  RTQ_CHECK_MSG(inputs.pages > 0, "sort operand must be non-empty");
}

PageCount ExternalSort::HeapPages() const {
  if (!spilling_) return std::max<PageCount>(allocation(), 1);
  return std::max<PageCount>(allocation() - 2, 1);
}

int64_t ExternalSort::FanIn() const {
  return std::max<int64_t>(allocation() - 1, 2);
}

void ExternalSort::EnsureTemp() {
  if (!temp_a_) {
    auto file = ctx_->AllocateTemp(in_.pages, in_.disk);
    RTQ_CHECK_MSG(file.ok(), "temp space exhausted (sort runs)");
    temp_a_ = std::move(file).value();
  }
}

void ExternalSort::ReleaseTempSpace() {
  if (temp_a_) {
    ctx_->FreeTemp(*temp_a_);
    temp_a_.reset();
  }
  if (temp_b_) {
    ctx_->FreeTemp(*temp_b_);
    temp_b_.reset();
  }
}

void ExternalSort::CloseCurrentRun() {
  if (cur_run_pages_ > 0) {
    runs_.push_back(cur_run_pages_);
    ++runs_formed_;
    cur_run_pages_ = 0;
  }
}

void ExternalSort::FlushOutput(bool final_flush) {
  while (true) {
    PageCount whole = static_cast<PageCount>(pend_write_);
    PageCount to_write = 0;
    if (whole >= params_.block_size) {
      to_write = params_.block_size;
    } else if (final_flush && pend_write_ > 1e-9) {
      to_write = std::max<PageCount>(1, whole);
    }
    if (to_write == 0) return;
    EnsureTemp();
    // Run-formation output and merge output share the ping-pong extents;
    // merge output goes to the second extent.
    storage::TempFile* dest = &*temp_a_;
    if (merging_active_ || phase_ == Phase::kMergePlan ||
        phase_ == Phase::kMergeRead || phase_ == Phase::kMergeCpu) {
      if (!temp_b_) {
        auto file = ctx_->AllocateTemp(in_.pages, in_.disk);
        RTQ_CHECK_MSG(file.ok(), "temp space exhausted (merge output)");
        temp_b_ = std::move(file).value();
      }
      dest = &*temp_b_;
    }
    pend_write_ = std::max(0.0, pend_write_ - to_write);
    if (write_cursor_ + to_write > dest->pages) write_cursor_ = 0;
    PageCount at = dest->start_page + write_cursor_;
    write_cursor_ += to_write;
    // Spooled output is written asynchronously in blocks; the sort does
    // not stall on it (double-buffered output in [Pang93b]).
    FireWrite(dest->disk, at, to_write);
  }
}

void ExternalSort::SplitCurrentStep() {
  if (!merging_active_) return;
  // Output produced so far becomes a run of its own; unconsumed input
  // pages continue as (up to) step_fan_ smaller runs. For a final step
  // the emitted output cannot be taken back, so it is written out as a
  // run and the final merge restarts later over the leftovers.
  if (step_consumed_ > 0) {
    if (step_is_final_) pend_write_ += static_cast<double>(step_consumed_);
    runs_.push_front(step_consumed_);
  }
  PageCount remaining = step_total_ - step_consumed_;
  if (remaining > 0) {
    int64_t pieces =
        std::min<int64_t>(step_fan_, static_cast<int64_t>(remaining));
    PageCount base = remaining / pieces;
    PageCount extra = remaining % pieces;
    for (int64_t i = 0; i < pieces; ++i) {
      runs_.push_back(base + (i < extra ? 1 : 0));
    }
  }
  merging_active_ = false;
  step_fan_ = 0;
  step_total_ = 0;
  step_consumed_ = 0;
  step_is_final_ = false;
}

void ExternalSort::OnAllocationApplied() {
  switch (phase_) {
    case Phase::kInit:
    case Phase::kTerminate:
    case Phase::kDone:
      return;
    case Phase::kFormRead:
    case Phase::kFormCpu: {
      PageCount held = cur_run_pages_;
      if (!spilling_ && held > 0 &&
          allocation() < held) {
        // The workspace no longer holds what replacement selection has
        // accumulated: spool it and switch to spilling mode.
        spilling_ = true;
        pend_write_ += static_cast<double>(held);
      }
      if (allocation() == 0 && spilling_ == false && held > 0) {
        spilling_ = true;
        pend_write_ += static_cast<double>(held);
      }
      if (allocation() == 0 && cur_run_pages_ > 0) {
        // Suspension closes the forming run.
        CloseCurrentRun();
      }
      return;
    }
    case Phase::kMergePlan:
      return;
    case Phase::kMergeRead:
    case Phase::kMergeCpu:
      // Step splitting on shrink is handled at the next page boundary in
      // kMergeRead (FanIn() < step_fan_); suspension splits immediately
      // so all state is on disk.
      if (allocation() == 0) SplitCurrentStep();
      return;
    case Phase::kFinalScan:
    case Phase::kFinalScanCpu:
      return;
  }
}

void ExternalSort::Step() {
  const int64_t tpp = params_.tuples.tuples_per_page();
  const CpuCosts& c = params_.costs;

  switch (phase_) {
    case Phase::kInit:
      phase_ = Phase::kFormRead;
      StepCpu(c.initiate_op);
      return;

    case Phase::kFormRead: {
      FlushOutput(/*final_flush=*/allocation() == 0);
      if (allocation() == 0) {
        Idle();
        return;
      }
      if (read_ >= in_.pages) {
        // Formation complete.
        if (!spilling_) {
          // Whole relation sorted in memory; output pipelines to the
          // client with no temp I/O.
          cur_run_pages_ = 0;
          phase_ = Phase::kTerminate;
          Continue();
          return;
        }
        // Close the last (partial) run and drain the spool, then merge.
        CloseCurrentRun();
        FlushOutput(/*final_flush=*/true);
        phase_ = Phase::kMergePlan;
        Continue();
        return;
      }
      cur_block_ =
          std::min<PageCount>(params_.block_size, in_.pages - read_);
      phase_ = Phase::kFormCpu;
      StepRead(in_.disk, in_.start + read_, cur_block_);
      return;
    }

    case Phase::kFormCpu: {
      read_ += cur_block_;
      int64_t heap_tuples = HeapPages() * tpp;
      Instructions per_tuple =
          Log2Ceil(std::max<int64_t>(heap_tuples, 2)) * c.key_compare +
          c.sort_copy;
      Instructions instr = cur_block_ * tpp * per_tuple;

      if (!spilling_ && cur_run_pages_ + cur_block_ > allocation()) {
        // Heap can no longer absorb the input: start spilling. Everything
        // accumulated so far is (conceptually) streamed through the heap
        // onto disk as the first run.
        spilling_ = true;
        pend_write_ += static_cast<double>(cur_run_pages_);
      }
      cur_run_pages_ += cur_block_;
      if (spilling_) {
        pend_write_ += static_cast<double>(cur_block_);
        // Replacement selection: runs average twice the heap size.
        PageCount run_target = 2 * HeapPages();
        if (cur_run_pages_ >= run_target) CloseCurrentRun();
      }
      phase_ = Phase::kFormRead;
      StepCpu(instr);
      return;
    }

    case Phase::kMergePlan: {
      FlushOutput(/*final_flush=*/true);
      if (allocation() < min_memory()) {
        Idle();
        return;
      }
      if (runs_.empty()) {
        phase_ = Phase::kTerminate;
        Continue();
        return;
      }
      if (runs_.size() == 1) {
        // A single spilled run: stream it back to the client.
        final_scan_left_ = runs_.front();
        runs_.pop_front();
        read_cursor_ = 0;
        phase_ = Phase::kFinalScan;
        Continue();
        return;
      }
      int64_t fan = std::min<int64_t>(
          FanIn(), static_cast<int64_t>(runs_.size()));
      step_fan_ = fan;
      step_total_ = 0;
      for (int64_t i = 0; i < fan; ++i) {
        step_total_ += runs_.front();
        runs_.pop_front();
      }
      step_consumed_ = 0;
      step_is_final_ = runs_.empty();
      merging_active_ = true;
      ++merge_steps_;
      phase_ = Phase::kMergeRead;
      Continue();
      return;
    }

    case Phase::kMergeRead: {
      FlushOutput(/*final_flush=*/false);
      if (allocation() == 0) {
        // OnAllocationApplied already split the step.
        FlushOutput(/*final_flush=*/true);
        Idle();
        return;
      }
      if (merging_active_ && FanIn() < step_fan_) {
        // Memory shrank below the step's fan-in: split the step.
        SplitCurrentStep();
        phase_ = Phase::kMergePlan;
        Continue();
        return;
      }
      if (!merging_active_) {
        phase_ = Phase::kMergePlan;
        Continue();
        return;
      }
      if (step_consumed_ >= step_total_) {
        // Step done: its output (already spooled unless final) becomes a
        // run for the next level.
        merging_active_ = false;
        if (!step_is_final_) {
          runs_.push_back(step_total_);
          phase_ = Phase::kMergePlan;
        } else {
          phase_ = Phase::kMergePlan;  // runs_ empty -> terminate
        }
        Continue();
        return;
      }
      // Merge-phase reads are single-page: inputs are scattered across
      // runs, so the prefetch block would be wasted (paper Section 4.2).
      EnsureTemp();
      if (read_cursor_ >= temp_a_->pages) read_cursor_ = 0;
      PageCount at = temp_a_->start_page + read_cursor_;
      ++read_cursor_;
      phase_ = Phase::kMergeCpu;
      StepRead(temp_a_->disk, at, 1);
      return;
    }

    case Phase::kMergeCpu: {
      ++step_consumed_;
      if (!step_is_final_) pend_write_ += 1.0;
      Instructions per_tuple =
          Log2Ceil(std::max<int64_t>(step_fan_, 2)) * c.key_compare +
          c.sort_copy;
      phase_ = Phase::kMergeRead;
      StepCpu(tpp * per_tuple);
      return;
    }

    case Phase::kFinalScan: {
      if (allocation() == 0) {
        Idle();
        return;
      }
      if (final_scan_left_ <= 0) {
        phase_ = Phase::kTerminate;
        Continue();
        return;
      }
      EnsureTemp();
      cur_block_ =
          std::min<PageCount>(params_.block_size, final_scan_left_);
      final_scan_left_ -= cur_block_;
      if (read_cursor_ + cur_block_ > temp_a_->pages) read_cursor_ = 0;
      PageCount at = temp_a_->start_page + read_cursor_;
      read_cursor_ += cur_block_;
      // Delivery copy cost is charged with the block that follows; the
      // scan alternates read / copy like the other phases.
      pend_scan_cpu_ = cur_block_ * tpp * c.sort_copy;
      phase_ = Phase::kFinalScanCpu;
      StepRead(temp_a_->disk, at, cur_block_);
      return;
    }

    case Phase::kFinalScanCpu: {
      Instructions instr = pend_scan_cpu_;
      pend_scan_cpu_ = 0;
      phase_ = Phase::kFinalScan;
      StepCpu(instr);
      return;
    }

    case Phase::kTerminate:
      phase_ = Phase::kDone;
      StepCpu(c.terminate_op);
      return;

    case Phase::kDone:
      Complete();
      return;
  }
}

}  // namespace rtq::exec
