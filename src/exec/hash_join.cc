#include "exec/hash_join.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace rtq::exec {

namespace {
PageCount CeilDiv(PageCount a, PageCount b) { return (a + b - 1) / b; }
}  // namespace

HashJoin::HashJoin(const ExecParams& params, const Inputs& inputs)
    : params_(params), in_(inputs) {
  RTQ_CHECK_MSG(params.Validate().ok(), "invalid exec params");
  RTQ_CHECK_MSG(inputs.r_pages > 0 && inputs.s_pages > 0,
                "join operands must be non-empty");
  double fr = params_.fudge_factor * static_cast<double>(in_.r_pages);
  P_ = std::max<int64_t>(1, static_cast<int64_t>(std::ceil(std::sqrt(fr))));
  part_r_ = CeilDiv(in_.r_pages, P_);
  // Maximum: every partition expanded plus one I/O buffer page — the
  // paper's F*||R|| + 1 (an average of 1321 pages for ||R|| = 1200).
  // Sequential reads are block-amortized for every query regardless of
  // its allocation because the per-disk 256 KB cache prefetches
  // BlockSize pages ("all queries capitalize on this facility").
  max_memory_ = static_cast<PageCount>(std::ceil(fr)) + 1;
  // Min must also let the cleanup pass hold one partition's hash table.
  PageCount part_table = static_cast<PageCount>(
      std::ceil(params_.fudge_factor * static_cast<double>(part_r_)));
  min_memory_ = std::max<PageCount>(P_, part_table) + 1;
  if (min_memory_ > max_memory_) min_memory_ = max_memory_;
}

int64_t HashJoin::ExpandedFor(PageCount m) const {
  if (m >= max_memory_) return P_;
  if (m <= 0) return 0;
  double per_expansion =
      params_.fudge_factor * static_cast<double>(part_r_) - 1.0;
  if (per_expansion <= 0.0) return P_;
  double spare = static_cast<double>(m - 1 - P_);
  if (spare <= 0.0) return 0;
  int64_t e = static_cast<int64_t>(spare / per_expansion);
  return std::clamp<int64_t>(e, 0, P_);
}

void HashJoin::OnAllocationApplied() {
  // After the probe phase the expanded hash tables have already produced
  // all their matches; memory changes only affect cleanup chunk sizing,
  // which is recomputed per chunk.
  if (!InBuild() && !InProbe() && phase_ != Phase::kInit) return;

  int64_t target_e = ExpandedFor(allocation());
  if (target_e < e_) {
    // Contract: spool the hash-table contents of the de-expanded
    // partitions. In the aggregate model each expanded partition holds an
    // equal share of exp_built_.
    if (e_ > 0 && exp_built_ > 0.0) {
      double move = exp_built_ * static_cast<double>(e_ - target_e) /
                    static_cast<double>(e_);
      exp_built_ -= move;
      pend_r_spill_ += move;
    }
    e_ = target_e;
  } else if (target_e > e_) {
    if (InProbe() && r_live_spilled_ > 0 && P_ > e_) {
      // PPHJ expansion: read spilled build pages back so subsequent outer
      // tuples that hash to these partitions join directly. Expansion is
      // "late": it only pays when enough of the probe remains, so near
      // the end of the outer scan the reload is skipped (the cleanup pass
      // handles those partitions more cheaply).
      double s_remaining =
          1.0 - static_cast<double>(s_read_) /
                    static_cast<double>(in_.s_pages);
      if (s_remaining > 0.25) {
        double share = static_cast<double>(r_live_spilled_) *
                       static_cast<double>(target_e - e_) /
                       static_cast<double>(P_ - e_);
        reload_pending_ +=
            std::min(static_cast<double>(r_live_spilled_), share);
      }
    }
    // During the build phase expansion costs nothing now: future tuples
    // go to in-memory hash tables; already-spilled pages stay on disk for
    // the cleanup pass ("late" adaptation).
    e_ = target_e;
  }
}

void HashJoin::EnsureRTemp() {
  if (r_temp_) return;
  auto file = ctx_->AllocateTemp(in_.r_pages, in_.r_disk);
  RTQ_CHECK_MSG(file.ok(), "temp space exhausted (R spill)");
  r_temp_ = std::move(file).value();
}

void HashJoin::EnsureSTemp() {
  if (s_temp_) return;
  auto file = ctx_->AllocateTemp(in_.s_pages, in_.s_disk);
  RTQ_CHECK_MSG(file.ok(), "temp space exhausted (S spill)");
  s_temp_ = std::move(file).value();
}

void HashJoin::ReleaseTempSpace() {
  if (r_temp_) {
    ctx_->FreeTemp(*r_temp_);
    r_temp_.reset();
  }
  if (s_temp_) {
    ctx_->FreeTemp(*s_temp_);
    s_temp_.reset();
  }
}

void HashJoin::FlushR(bool final_flush) {
  while (true) {
    PageCount whole = static_cast<PageCount>(pend_r_spill_);
    PageCount to_write = 0;
    if (whole >= params_.block_size) {
      to_write = params_.block_size;
    } else if (final_flush && pend_r_spill_ > 1e-9) {
      to_write = std::max<PageCount>(1, whole);
    }
    if (to_write == 0) return;
    EnsureRTemp();
    pend_r_spill_ = std::max(0.0, pend_r_spill_ - to_write);
    // The extent is sized ||R||; under adaptation R pages can cycle out
    // and back, so wrap the cursor if the (rare) total exceeds the extent.
    if (r_temp_cursor_ + to_write > r_temp_->pages) r_temp_cursor_ = 0;
    PageCount at = r_temp_->start_page + r_temp_cursor_;
    r_temp_cursor_ += to_write;
    r_live_spilled_ = std::min(r_live_spilled_ + to_write, r_temp_->pages);
    FireWrite(r_temp_->disk, at, to_write);
  }
}

void HashJoin::FlushS(bool final_flush) {
  while (true) {
    PageCount whole = static_cast<PageCount>(pend_s_spill_);
    PageCount to_write = 0;
    if (whole >= params_.block_size) {
      to_write = params_.block_size;
    } else if (final_flush && pend_s_spill_ > 1e-9) {
      to_write = std::max<PageCount>(1, whole);
    }
    if (to_write == 0) return;
    EnsureSTemp();
    pend_s_spill_ = std::max(0.0, pend_s_spill_ - to_write);
    if (s_temp_cursor_ + to_write > s_temp_->pages) s_temp_cursor_ = 0;
    PageCount at = s_temp_->start_page + s_temp_cursor_;
    s_temp_cursor_ += to_write;
    s_live_spilled_ = std::min(s_live_spilled_ + to_write, s_temp_->pages);
    FireWrite(s_temp_->disk, at, to_write);
  }
}

void HashJoin::Step() {
  const int64_t tpp = params_.tuples.tuples_per_page();
  const CpuCosts& c = params_.costs;

  switch (phase_) {
    case Phase::kInit:
      phase_ = Phase::kBuildRead;
      StepCpu(c.initiate_op);
      return;

    case Phase::kBuildRead: {
      // Spool contracted-partition output as blocks fill (asynchronous
      // priority spooling: the writes do not block the build).
      FlushR(/*final_flush=*/false);
      if (allocation() == 0) {
        // Suspended: OnAllocationApplied contracted everything; flush the
        // tail and go quiet.
        FlushR(/*final_flush=*/true);
        Idle();
        return;
      }
      if (r_read_ >= in_.r_pages) {
        FlushR(/*final_flush=*/true);
        phase_ = Phase::kProbeRead;
        Continue();
        return;
      }
      cur_block_ =
          std::min<PageCount>(params_.block_size, in_.r_pages - r_read_);
      phase_ = Phase::kBuildCpu;
      StepRead(in_.r_disk, in_.r_start + r_read_, cur_block_);
      return;
    }

    case Phase::kBuildCpu: {
      r_read_ += cur_block_;
      double frac = expanded_fraction();
      double tuples = static_cast<double>(cur_block_ * tpp);
      Instructions instr = static_cast<Instructions>(
          tuples * (frac * static_cast<double>(c.hash_insert) +
                    (1.0 - frac) * static_cast<double>(c.hash_copy)));
      exp_built_ += static_cast<double>(cur_block_) * frac;
      pend_r_spill_ += static_cast<double>(cur_block_) * (1.0 - frac);
      phase_ = Phase::kBuildRead;
      StepCpu(instr);
      return;
    }

    case Phase::kProbeReload: {
      PageCount chunk = std::min<PageCount>(
          params_.block_size, static_cast<PageCount>(reload_pending_));
      chunk = std::min(chunk, r_live_spilled_);
      if (chunk <= 0) {
        reload_pending_ = 0.0;
        phase_ = Phase::kProbeRead;
        Continue();
        return;
      }
      reload_pending_ -= static_cast<double>(chunk);
      r_live_spilled_ -= chunk;
      exp_built_ += static_cast<double>(chunk);
      // Read back the most recently spooled pages (tail of the live
      // region): late contraction spools them last, so they are reloaded
      // first.
      StepRead(r_temp_->disk, r_temp_->start_page + r_live_spilled_, chunk);
      return;
    }

    case Phase::kProbeRead: {
      // Contraction during probe spools R hash pages; S spool as blocks.
      FlushR(/*final_flush=*/true);
      FlushS(/*final_flush=*/false);
      if (allocation() == 0) {
        FlushS(/*final_flush=*/true);
        Idle();
        return;
      }
      if (reload_pending_ >= 1.0) {
        phase_ = Phase::kProbeReload;
        Continue();
        return;
      }
      if (s_read_ >= in_.s_pages) {
        FlushS(/*final_flush=*/true);
        cleanup_r_remaining_ = cleanup_r_total_ = r_live_spilled_;
        cleanup_s_remaining_ = cleanup_s_total_ = s_live_spilled_;
        // The expanded hash tables have served their purpose; their
        // memory is recycled for cleanup chunks without further I/O.
        exp_built_ = 0.0;
        cleanup_r_cursor_ = 0;
        cleanup_s_cursor_ = 0;
        phase_ = Phase::kCleanupStart;
        Continue();
        return;
      }
      cur_block_ =
          std::min<PageCount>(params_.block_size, in_.s_pages - s_read_);
      phase_ = Phase::kProbeCpu;
      StepRead(in_.s_disk, in_.s_start + s_read_, cur_block_);
      return;
    }

    case Phase::kProbeCpu: {
      s_read_ += cur_block_;
      double frac = expanded_fraction();
      double tuples = static_cast<double>(cur_block_ * tpp);
      // Expanded fraction: probe plus copying one result per probing
      // tuple. Contracted fraction: hash and copy into the spool buffer.
      Instructions instr = static_cast<Instructions>(
          tuples * (frac * static_cast<double>(c.hash_probe + c.hash_copy) +
                    (1.0 - frac) * static_cast<double>(c.hash_copy)));
      pend_s_spill_ += static_cast<double>(cur_block_) * (1.0 - frac);
      phase_ = Phase::kProbeRead;
      StepCpu(instr);
      return;
    }

    case Phase::kCleanupStart: {
      if (allocation() == 0) {
        Idle();
        return;
      }
      if (cleanup_r_remaining_ <= 0 && cleanup_s_remaining_ <= 0) {
        phase_ = Phase::kTerminate;
        Continue();
        return;
      }
      if (cleanup_r_remaining_ <= 0) {
        // Rounding left some S behind: scan it against the last chunk.
        chunk_r_left_ = 0;
        chunk_s_left_ = cleanup_s_remaining_;
        phase_ = Phase::kCleanupReadS;
        Continue();
        return;
      }
      // As much spilled R as the workspace holds at once.
      PageCount fit = static_cast<PageCount>(
          static_cast<double>(std::max<PageCount>(allocation() - 1, 1)) /
          params_.fudge_factor);
      fit = std::max<PageCount>(fit, 1);
      chunk_r_left_ = std::min(cleanup_r_remaining_, fit);
      double share = cleanup_r_total_ > 0
                         ? static_cast<double>(chunk_r_left_) /
                               static_cast<double>(cleanup_r_total_)
                         : 1.0;
      chunk_s_left_ = std::min<PageCount>(
          cleanup_s_remaining_,
          static_cast<PageCount>(std::ceil(
              static_cast<double>(cleanup_s_total_) * share)));
      phase_ = Phase::kCleanupReadR;
      Continue();
      return;
    }

    case Phase::kCleanupReadR: {
      if (allocation() == 0) {
        Idle();
        return;
      }
      if (chunk_r_left_ <= 0) {
        phase_ = Phase::kCleanupReadS;
        Continue();
        return;
      }
      cur_block_ = std::min<PageCount>(params_.block_size, chunk_r_left_);
      chunk_r_left_ -= cur_block_;
      cleanup_r_remaining_ -= cur_block_;
      PageCount at = r_temp_->start_page +
                     (cleanup_r_cursor_ % r_temp_->pages);
      cleanup_r_cursor_ += cur_block_;
      phase_ = Phase::kCleanupCpuR;
      StepRead(r_temp_->disk, at, std::min(cur_block_, r_temp_->pages - (at - r_temp_->start_page)));
      return;
    }

    case Phase::kCleanupCpuR:
      phase_ = Phase::kCleanupReadR;
      StepCpu(cur_block_ * tpp * c.hash_insert);
      return;

    case Phase::kCleanupReadS: {
      if (allocation() == 0) {
        Idle();
        return;
      }
      if (chunk_s_left_ <= 0) {
        phase_ = Phase::kCleanupStart;
        Continue();
        return;
      }
      cur_block_ = std::min<PageCount>(params_.block_size, chunk_s_left_);
      chunk_s_left_ -= cur_block_;
      cleanup_s_remaining_ -= cur_block_;
      PageCount at = s_temp_->start_page +
                     (cleanup_s_cursor_ % s_temp_->pages);
      cleanup_s_cursor_ += cur_block_;
      phase_ = Phase::kCleanupCpuS;
      StepRead(s_temp_->disk, at, std::min(cur_block_, s_temp_->pages - (at - s_temp_->start_page)));
      return;
    }

    case Phase::kCleanupCpuS:
      phase_ = Phase::kCleanupReadS;
      StepCpu(cur_block_ * tpp * (c.hash_probe + c.hash_copy));
      return;

    case Phase::kTerminate:
      phase_ = Phase::kDone;
      StepCpu(c.terminate_op);
      return;

    case Phase::kDone:
      Complete();
      return;
  }
}

}  // namespace rtq::exec
