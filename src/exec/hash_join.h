// Memory-adaptive partitioned hash join, modelling PPHJ [Pang93a].
//
// The join splits the inner relation R into P = ceil(sqrt(F*||R||))
// partitions. At any moment e of the P partitions are *expanded* (their
// hash tables live in memory, F * partition-size pages each) and P - e are
// *contracted* (streamed to a temp file through one output buffer page
// each). The allocation determines e:
//
//   memory(e) = 1 input buffer + (P - e) output buffers + e * F * ||R||/P
//
// so min = P + 1 (all contracted) and max = F*||R|| + 1 (all expanded),
// matching the paper's Section 3.2. When the memory manager shrinks the
// workspace, expanded partitions are contracted and their hash-table
// contents spooled; when it grows during the probe phase, contracted
// partitions are re-expanded by reading their spilled build pages back so
// that subsequent probe tuples join directly (PPHJ's expansion). Spilled
// partition pairs are joined in a cleanup pass at the end.
//
// The simulation models partitions in aggregate (fractions of pages and
// tuples) rather than tracking individual tuples; see DESIGN.md.

#ifndef RTQ_EXEC_HASH_JOIN_H_
#define RTQ_EXEC_HASH_JOIN_H_

#include <optional>

#include "common/types.h"
#include "exec/cost_model.h"
#include "exec/operator.h"

namespace rtq::exec {

class HashJoin : public OperatorBase {
 public:
  struct Inputs {
    DiskId r_disk = 0;
    PageCount r_start = 0;
    PageCount r_pages = 0;  ///< inner (building) relation size
    DiskId s_disk = 0;
    PageCount s_start = 0;
    PageCount s_pages = 0;  ///< outer (probing) relation size
  };

  HashJoin(const ExecParams& params, const Inputs& inputs);

  PageCount min_memory() const override { return min_memory_; }
  PageCount max_memory() const override { return max_memory_; }

  // --- introspection (tests, metrics) -----------------------------------
  int64_t num_partitions() const { return P_; }
  int64_t expanded_partitions() const { return e_; }
  PageCount spilled_r_pages() const { return r_live_spilled_; }
  PageCount spilled_s_pages() const { return s_live_spilled_; }

 protected:
  void Step() override;
  void OnAllocationApplied() override;
  void ReleaseTempSpace() override;

 private:
  enum class Phase {
    kInit,          // charge the initiate-join CPU cost
    kBuildRead,     // read next block of R
    kBuildCpu,      // hash/insert or hash/copy the block's tuples
    kProbeReload,   // re-expand partitions: read spilled R pages back
    kProbeRead,     // read next block of S
    kProbeCpu,      // probe or spool the block's tuples
    kCleanupStart,  // plan the next cleanup chunk
    kCleanupReadR,  // read a block of a spilled R chunk
    kCleanupCpuR,   // build cost for that block
    kCleanupReadS,  // read a block of the matching S share
    kCleanupCpuS,   // probe cost for that block
    kTerminate,     // charge the terminate-join CPU cost
    kDone,
  };

  bool InBuild() const {
    return phase_ == Phase::kBuildRead || phase_ == Phase::kBuildCpu;
  }
  bool InProbe() const {
    return phase_ == Phase::kProbeRead || phase_ == Phase::kProbeCpu ||
           phase_ == Phase::kProbeReload;
  }

  /// Expanded-partition count supportable with `m` pages.
  int64_t ExpandedFor(PageCount m) const;
  double expanded_fraction() const {
    return static_cast<double>(e_) / static_cast<double>(P_);
  }

  void EnsureRTemp();
  void EnsureSTemp();

  /// Spools all pending full blocks of R / S spill as fire-and-forget
  /// writes; `final_flush` also spools a sub-block tail.
  void FlushR(bool final_flush);
  void FlushS(bool final_flush);

  ExecParams params_;
  Inputs in_;

  int64_t P_ = 1;           // number of partitions
  PageCount part_r_ = 1;    // pages of R per partition
  PageCount min_memory_ = 0;
  PageCount max_memory_ = 0;

  Phase phase_ = Phase::kInit;
  int64_t e_ = 0;  // currently expanded partitions

  // Build/probe cursors over the operand relations.
  PageCount r_read_ = 0;
  PageCount s_read_ = 0;
  PageCount cur_block_ = 0;  // pages in the block being processed

  // In-memory / spilled state, in tuple-pages (aggregate model).
  double exp_built_ = 0.0;       // R pages resident in hash tables
  double pend_r_spill_ = 0.0;    // R pages awaiting spool
  double pend_s_spill_ = 0.0;    // S pages awaiting spool
  PageCount r_live_spilled_ = 0;  // R pages currently on temp
  PageCount s_live_spilled_ = 0;  // S pages currently on temp
  PageCount r_temp_cursor_ = 0;   // monotone write position in R temp
  PageCount s_temp_cursor_ = 0;   // monotone write position in S temp
  double reload_pending_ = 0.0;   // pages to read back for expansion

  // Cleanup state.
  PageCount cleanup_r_remaining_ = 0;
  PageCount cleanup_s_remaining_ = 0;
  PageCount cleanup_s_total_ = 0;
  PageCount cleanup_r_total_ = 0;
  PageCount chunk_r_left_ = 0;
  PageCount chunk_s_left_ = 0;
  PageCount cleanup_r_cursor_ = 0;  // read position in R temp
  PageCount cleanup_s_cursor_ = 0;  // read position in S temp

  std::optional<storage::TempFile> r_temp_;
  std::optional<storage::TempFile> s_temp_;
};

}  // namespace rtq::exec

#endif  // RTQ_EXEC_HASH_JOIN_H_
