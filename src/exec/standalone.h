// Closed-form stand-alone execution time estimates.
//
// The workload source needs each query's stand-alone time — "the time it
// would take to execute alone in the system with its maximum memory
// allocation" (Section 4.1) — to assign deadlines:
//
//   Deadline = Arrival + StandAlone * SlackRatio
//
// With maximum memory neither operator does any temp I/O, and a lone
// query alternates CPU and disk with no queueing, so the time decomposes
// into a deterministic CPU component (Table 4 costs / MIPS) plus a disk
// component (per-request positioning + media transfer on sequential
// block reads of the operand relations). The estimates must match what
// the simulator would actually do for a solitary query — an integration
// test (tests/test_standalone.cc) checks exactly that — because any bias
// here systematically loosens or tightens every deadline in a run.

#ifndef RTQ_EXEC_STANDALONE_H_
#define RTQ_EXEC_STANDALONE_H_

#include "common/types.h"
#include "exec/cost_model.h"
#include "model/disk_geometry.h"

namespace rtq::exec {

struct StandaloneEstimate {
  SimTime cpu_time = 0.0;
  SimTime io_time = 0.0;
  /// Sequential block requests needed to read the operand relation(s).
  int64_t io_requests = 0;
  SimTime total() const { return cpu_time + io_time; }
};

/// Hash join of ||R|| = r_pages with ||S|| = s_pages at maximum memory.
StandaloneEstimate EstimateHashJoin(const ExecParams& exec,
                                    const model::DiskParams& disk,
                                    double mips, PageCount r_pages,
                                    PageCount s_pages);

/// External sort of ||R|| = pages at maximum memory (in-memory sort).
StandaloneEstimate EstimateExternalSort(const ExecParams& exec,
                                        const model::DiskParams& disk,
                                        double mips, PageCount pages);

}  // namespace rtq::exec

#endif  // RTQ_EXEC_STANDALONE_H_
