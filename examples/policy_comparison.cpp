// Compares memory-management policies on the baseline workload at one
// arrival rate, printing a compact scoreboard.
//
//   $ ./build/examples/policy_comparison [arrival_rate] [hours]
//
// Defaults: 0.075 queries/second, 3 simulated hours, the paper's four
// policies. Any registered policies can be compared instead via the
// RTQ_POLICIES override, e.g.:
//
//   $ RTQ_POLICIES="pmm,none,oracle-ed" ./build/examples/policy_comparison

#include <cstdio>
#include <cstdlib>

#include "engine/rtdbs.h"
#include "harness/paper_experiments.h"
#include "harness/table_printer.h"

int main(int argc, char** argv) {
  using namespace rtq;

  double rate = argc > 1 ? std::atof(argv[1]) : 0.075;
  double hours = argc > 2 ? std::atof(argv[2]) : 3.0;
  if (rate <= 0.0 || hours <= 0.0) {
    std::fprintf(stderr, "usage: %s [arrival_rate] [hours]\n", argv[0]);
    return 1;
  }

  std::printf(
      "Baseline workload (hash joins, 10 disks, M=2560 pages), "
      "lambda=%.3f q/s, %.1f simulated hours\n\n",
      rate, hours);

  harness::TablePrinter table({"policy", "queries", "miss ratio", "avg MPL",
                               "wait(s)", "exec(s)", "disk util"});

  for (const engine::PolicyConfig& policy :
       harness::PoliciesOrDefault(harness::BaselinePolicies())) {
    engine::SystemConfig config = harness::BaselineConfig(rate, policy);
    auto sys = engine::Rtdbs::Create(config);
    if (!sys.ok()) {
      std::fprintf(stderr, "%s\n", sys.status().ToString().c_str());
      return 1;
    }
    sys.value()->RunUntil(hours * 3600.0);
    engine::SystemSummary s = sys.value()->Summarize();
    table.AddRow({harness::PolicyLabel(policy),
                  std::to_string(s.overall.completions),
                  harness::TablePrinter::Percent(s.overall.miss_ratio),
                  harness::TablePrinter::Fixed(s.avg_mpl, 2),
                  harness::TablePrinter::Fixed(s.overall.avg_wait, 1),
                  harness::TablePrinter::Fixed(s.overall.avg_exec, 1),
                  harness::TablePrinter::Percent(s.avg_disk_utilization)});
  }
  table.Print();
  return 0;
}
