// Tours the serve-mode API (docs/SERVE.md) in-process: boot a session,
// reconfigure it live, snapshot, restore, and prove the restored session
// continues bit-identically — the same machinery the rtq_serve binary
// drives from its control channel.
//
//   $ ./build/examples/serve_session
//
// The walk: start the two-class multiclass workload under plain PMM,
// hot-swap to the bandit selector (select:candidates=pmm+pmm-predict),
// inject a flash-crowd scenario, snapshot to a `.rtqs` file, keep
// running, then restore the snapshot into a fresh session and replay the
// same continuation — finishing with the digest comparison that the
// serve-mode tests and CI gate enforce for every policy.

#include <cstdio>
#include <string>
#include <utility>
#include <vector>

#include "harness/metrics_streamer.h"
#include "serve/serve_session.h"

using rtq::serve::ServeSession;
using rtq::serve::SessionSpec;
using rtq::serve::Snapshot;

namespace {

void Banner(const char* text) { std::printf("\n=== %s ===\n", text); }

void PrintState(ServeSession& session) {
  rtq::engine::Rtdbs& sys = session.system();
  std::printf("  t=%8.1fs  events=%-7llu  live=%-3lld  policy=%s\n",
              sys.simulator().Now(),
              static_cast<unsigned long long>(session.events()),
              static_cast<long long>(sys.live_queries()),
              sys.policy().Describe().c_str());
}

}  // namespace

int main() {
  Banner("boot: multiclass workload, plain PMM");
  SessionSpec spec;
  spec.workload = "multiclass:rate=0.1";
  spec.policy = "pmm";
  spec.seed = 42;
  auto created = ServeSession::Create(spec);
  if (!created.ok()) {
    std::fprintf(stderr, "%s\n", created.status().ToString().c_str());
    return 1;
  }
  std::unique_ptr<ServeSession> session = std::move(created).value();
  session->RunEvents(20000);
  PrintState(*session);

  Banner("live reconfig: swap to the bandit policy selector");
  auto swap = session->ApplyPolicy("select:candidates=pmm+pmm-predict");
  if (!swap.status.ok()) {
    std::fprintf(stderr, "%s\n", swap.status.ToString().c_str());
    return 1;
  }
  std::printf("  active: %s\n", swap.active_spec.c_str());
  session->RunEvents(20000);
  PrintState(*session);

  Banner("live reconfig: inject a flash crowd");
  auto scenario = session->ApplyScenario("flash:mult=6");
  if (!scenario.ok()) {
    std::fprintf(stderr, "%s\n", scenario.status().ToString().c_str());
    return 1;
  }
  std::printf("  active: %s\n", scenario.value().c_str());
  session->RunEvents(10000);
  PrintState(*session);

  Banner("snapshot mid-flight");
  auto taken = session->TakeSnapshot();
  if (!taken.ok()) {
    std::fprintf(stderr, "%s\n", taken.status().ToString().c_str());
    return 1;
  }
  Snapshot snapshot = std::move(taken).value();
  const std::string path = "results/serve_session_example.rtqs";
  rtq::Status wrote = rtq::serve::WriteSnapshotFile(snapshot, path);
  if (!wrote.ok()) {
    std::fprintf(stderr, "%s\n", wrote.ToString().c_str());
    return 1;
  }
  std::printf("  wrote %s (position %llu, %zu journal entries)\n",
              path.c_str(),
              static_cast<unsigned long long>(snapshot.position_events),
              snapshot.journal.size());

  Banner("continue the original for 15000 more events");
  session->RunEvents(15000);
  PrintState(*session);

  Banner("restore the snapshot into a fresh session");
  auto read = rtq::serve::ReadSnapshotFile(path);
  if (!read.ok()) {
    std::fprintf(stderr, "%s\n", read.status().ToString().c_str());
    return 1;
  }
  auto restored = ServeSession::Restore(read.value());
  if (!restored.ok()) {
    std::fprintf(stderr, "%s\n", restored.status().ToString().c_str());
    return 1;
  }
  std::printf("  digest verified at event %llu; continuing 15000 events\n",
              static_cast<unsigned long long>(restored.value()->events()));
  restored.value()->RunEvents(15000);
  PrintState(*restored.value());

  Banner("proof: both trajectories are bit-identical");
  std::vector<std::string> a;
  std::vector<std::string> b;
  session->system().AppendStateDigest(&a);
  restored.value()->system().AppendStateDigest(&b);
  if (a != b) {
    std::printf("  DIVERGED (%zu vs %zu digest lines)\n", a.size(), b.size());
    return 1;
  }
  std::printf("  %zu digest lines, all equal\n", a.size());

  Banner("one metrics line (the rtq_serve stream format)");
  rtq::harness::MetricsStreamer streamer(stdout);
  streamer.Emit(restored.value()->system(), 0.0);
  return 0;
}
