// Shows the memory-adaptive operators reacting to allocation changes,
// without the full system: a single hash join driven by a hand-rolled
// ExecContext, with the workspace shrunk mid-build and re-grown mid-probe
// (PPHJ contraction and expansion, paper Section 2.2).
//
//   $ ./build/examples/adaptive_operators

#include <cstdio>
#include <queue>

#include "exec/hash_join.h"
#include "storage/temp_space.h"

namespace {

// A minimal synchronous ExecContext: every demand completes instantly,
// time advances by a fixed cost per operation, and temp space is handed
// out from a bump allocator. Useful for studying operator behaviour in
// isolation (the unit tests use a richer version of the same idea).
class ToyContext : public rtq::exec::ExecContext {
 public:
  rtq::SimTime Now() const override { return now_; }

  void RunCpu(rtq::Instructions instructions,
              rtq::exec::DoneCallback done) override {
    now_ += static_cast<double>(instructions) / 40e6;
    pending_.push(std::move(done));
  }
  void Read(rtq::DiskId, rtq::PageCount, rtq::PageCount pages,
            rtq::exec::DoneCallback done) override {
    now_ += 0.012 + 0.0002 * static_cast<double>(pages);
    ++reads_;
    pages_read_ += pages;
    pending_.push(std::move(done));
  }
  void Write(rtq::DiskId, rtq::PageCount, rtq::PageCount pages,
             rtq::exec::DoneCallback done, bool /*background*/) override {
    now_ += 0.012 + 0.0002 * static_cast<double>(pages);
    ++writes_;
    pages_written_ += pages;
    pending_.push(std::move(done));
  }
  rtq::StatusOr<rtq::storage::TempFile> AllocateTemp(
      rtq::PageCount pages, rtq::DiskId) override {
    rtq::storage::TempFile f;
    f.disk = 0;
    f.start_page = next_temp_;
    f.pages = pages;
    next_temp_ += pages;
    return f;
  }
  void FreeTemp(const rtq::storage::TempFile&) override {}

  /// Drains one completion callback; returns false when idle.
  bool Pump() {
    if (pending_.empty()) return false;
    auto cb = std::move(pending_.front());
    pending_.pop();
    cb();
    return true;
  }

  int64_t reads_ = 0, writes_ = 0;
  rtq::PageCount pages_read_ = 0, pages_written_ = 0;

 private:
  rtq::SimTime now_ = 0.0;
  rtq::PageCount next_temp_ = 0;
  std::queue<rtq::exec::DoneCallback> pending_;
};

}  // namespace

int main() {
  using namespace rtq;

  exec::ExecParams params;  // paper defaults: F=1.1, 6-page blocks
  exec::HashJoin::Inputs inputs;
  inputs.r_pages = 1200;  // inner relation
  inputs.s_pages = 6000;  // outer relation
  inputs.s_start = 2000;

  exec::HashJoin join(params, inputs);
  std::printf("hash join ||R||=%lld ||S||=%lld: partitions=%lld "
              "min=%lld max=%lld pages\n",
              static_cast<long long>(inputs.r_pages),
              static_cast<long long>(inputs.s_pages),
              static_cast<long long>(join.num_partitions()),
              static_cast<long long>(join.min_memory()),
              static_cast<long long>(join.max_memory()));

  ToyContext ctx;
  bool finished = false;
  join.on_finished = [&] { finished = true; };

  // Start with the full workspace...
  join.SetAllocation(join.max_memory());
  join.Start(&ctx);

  int64_t step = 0;
  while (!finished && ctx.Pump()) {
    ++step;
    if (step == 50) {
      // ...shrink to the minimum mid-build (contraction + spooling)...
      std::printf("step %lld: shrink to min -> expanded partitions ",
                  static_cast<long long>(step));
      join.SetAllocation(join.min_memory());
      std::printf("%lld, spilled R pages so far %lld\n",
                  static_cast<long long>(join.expanded_partitions()),
                  static_cast<long long>(join.spilled_r_pages()));
    } else if (step == 600) {
      // ...and grow back mid-probe (expansion reloads build pages).
      std::printf("step %lld: grow to max -> expanded partitions ",
                  static_cast<long long>(step));
      join.SetAllocation(join.max_memory());
      std::printf("%lld (reload in progress)\n",
                  static_cast<long long>(join.expanded_partitions()));
    }
  }

  std::printf("finished at t=%.2f s: %lld reads (%lld pages), "
              "%lld writes (%lld pages)\n",
              ctx.Now(), static_cast<long long>(ctx.reads_),
              static_cast<long long>(ctx.pages_read_),
              static_cast<long long>(ctx.writes_),
              static_cast<long long>(ctx.pages_written_));
  std::printf("a full-memory run would read exactly %lld pages and write "
              "none;\nthe adaptation above costs the difference.\n",
              static_cast<long long>(inputs.r_pages + inputs.s_pages));
  return finished ? 0 : 1;
}
