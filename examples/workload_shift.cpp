// Demonstrates PMM's workload-change detection (paper Section 5.3).
//
// The workload alternates between the Medium join class (memory-
// constrained: MinMax territory) and the Small join class (disk-bound:
// Max territory) every simulated hour. The example prints PMM's mode and
// target MPL after every interval, showing the controller re-adapting.
//
//   $ ./build/examples/workload_shift [intervals]

#include <cstdio>
#include <cstdlib>

#include "engine/rtdbs.h"
#include "harness/paper_experiments.h"

int main(int argc, char** argv) {
  using namespace rtq;

  int intervals = argc > 1 ? std::atoi(argv[1]) : 6;
  if (intervals <= 0) {
    std::fprintf(stderr, "usage: %s [intervals]\n", argv[0]);
    return 1;
  }
  const double interval_s = 3600.0;

  engine::SystemConfig config = harness::WorkloadChangeConfig(
      {"pmm"}, /*medium_active=*/true, /*small_active=*/false);

  auto sys = engine::Rtdbs::Create(config);
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.status().ToString().c_str());
    return 1;
  }
  engine::Rtdbs& rtdbs = *sys.value();

  std::printf("interval  class   completions  miss%%   PMM mode  target MPL"
              "  changes detected\n");
  int64_t prev_records = 0;
  for (int i = 0; i < intervals; ++i) {
    bool medium = i % 2 == 0;  // alternate Medium / Small
    if (i > 0) {
      if (medium) {
        rtdbs.source().Deactivate(1);
        rtdbs.source().Activate(0);
      } else {
        rtdbs.source().Deactivate(0);
        rtdbs.source().Activate(1);
      }
    }
    rtdbs.RunUntil((i + 1) * interval_s);

    const auto& records = rtdbs.metrics().records();
    int64_t n = static_cast<int64_t>(records.size()) - prev_records;
    int64_t missed = 0;
    for (size_t k = prev_records; k < records.size(); ++k) {
      missed += records[k].info.missed;
    }
    prev_records = static_cast<int64_t>(records.size());

    const auto* pmm = rtdbs.pmm();
    std::printf("%8d  %-6s  %11lld  %5.1f  %8s  %10lld  %16lld\n", i + 1,
                medium ? "Medium" : "Small", static_cast<long long>(n),
                n > 0 ? 100.0 * static_cast<double>(missed) /
                            static_cast<double>(n)
                      : 0.0,
                pmm->mode() == core::PmmController::Mode::kMax ? "Max"
                                                               : "MinMax",
                static_cast<long long>(pmm->target_mpl()),
                static_cast<long long>(pmm->workload_changes_detected()));
  }
  return 0;
}
