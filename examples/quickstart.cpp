// Quickstart: build a firm RTDBS, run the paper's baseline workload under
// PMM for one simulated hour, and print the headline metrics.
//
//   $ ./build/examples/quickstart
//
// This is the five-minute tour of the public API: SystemConfig ->
// Rtdbs::Create -> RunUntil -> Summarize.

#include <cstdio>

#include "engine/rtdbs.h"
#include "harness/paper_experiments.h"

int main() {
  using namespace rtq;

  // The paper's baseline: one class of hash joins, memory-bottlenecked
  // (10 disks, 40 MIPS, 20 MB of buffers), PMM managing memory. The
  // policy is a registry spec string — try "max", "minmax:5", "none",
  // or "oracle-ed" (see core/policy_registry.h for the grammar).
  engine::SystemConfig config =
      harness::BaselineConfig(/*arrival_rate=*/0.06, {"pmm"});

  auto sys = engine::Rtdbs::Create(config);
  if (!sys.ok()) {
    std::fprintf(stderr, "config error: %s\n",
                 sys.status().ToString().c_str());
    return 1;
  }
  engine::Rtdbs& rtdbs = *sys.value();

  rtdbs.RunUntil(3600.0);  // one simulated hour

  engine::SystemSummary s = rtdbs.Summarize();
  std::printf("simulated %.0f s, %llu events\n", s.simulated_time,
              static_cast<unsigned long long>(s.events_dispatched));
  std::printf("queries finished : %lld\n",
              static_cast<long long>(s.overall.completions));
  std::printf("missed deadlines : %lld (%.1f%%)\n",
              static_cast<long long>(s.overall.misses),
              s.overall.miss_ratio * 100.0);
  std::printf("avg response     : %.1f s (wait %.1f + exec %.1f)\n",
              s.overall.avg_response, s.overall.avg_wait,
              s.overall.avg_exec);
  std::printf("avg MPL          : %.2f\n", s.avg_mpl);
  std::printf("cpu util         : %.1f%%\n", s.cpu_utilization * 100.0);
  std::printf("avg disk util    : %.1f%%\n",
              s.avg_disk_utilization * 100.0);

  if (const auto* pmm = rtdbs.pmm()) {
    std::printf("PMM mode         : %s (target MPL %lld, %lld adaptations)\n",
                pmm->mode() == core::PmmController::Mode::kMax ? "Max"
                                                               : "MinMax",
                static_cast<long long>(pmm->target_mpl()),
                static_cast<long long>(pmm->adaptations()));
  }
  return 0;
}
