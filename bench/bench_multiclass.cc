// Multiclass workload (paper Section 5.6): Medium joins at a fixed 0.065
// q/s plus Small joins whose rate sweeps from 0 to 1.2 q/s, on 12 disks.
//
// Regenerates Figure 17 (system miss ratio: Max, MinMax, PMM) and
// Figure 18 (PMM's per-class miss ratios — the bias the paper observes:
// as the Small class dominates, PMM drifts toward Max mode and the
// Medium class suffers disproportionately).

#include "bench_util.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E15-E16: multiclass workload (12 disks)",
         "Figures 17, 18 (Section 5.6)");

  const std::vector<double> small_rates = {0.0, 0.2, 0.4, 0.6, 0.8,
                                           1.0, 1.2};
  auto policies =
      harness::PoliciesOrDefault({{"max"}, {"minmax"}, {"pmm"}});
  bool have_pmm = false;
  for (const auto& policy : policies) {
    have_pmm = have_pmm || policy.ResolvedSpec() == "pmm";
  }

  std::vector<harness::RunSpec> specs;
  for (double rate : small_rates) {
    for (const auto& policy : policies) {
      specs.push_back({harness::PolicyLabel(policy) + " @ small " +
                           F(rate, 2),
                       harness::MulticlassConfig(rate, policy)});
    }
  }

  auto start = Now();
  std::vector<harness::RunResult> results = harness::RunPool(specs);
  double wall = SecondsSince(start);

  harness::TablePrinter fig17(
      harness::PolicyColumns("small rate", policies));
  harness::TablePrinter fig18({"small rate", "PMM Medium", "PMM Small",
                               "PMM system"});
  harness::CsvWriter csv({"small_rate", "policy", "system_miss",
                          "medium_miss", "small_miss"});
  harness::BenchJsonEmitter json("multiclass");
  json.AddConfig("medium_rate_fixed", F(0.065, 3));

  size_t i = 0;
  for (double rate : small_rates) {
    std::vector<std::string> r17{F(rate, 2)};
    std::vector<std::string> r18{F(rate, 2)};
    for (size_t p = 0; p < policies.size(); ++p) {
      const engine::SystemSummary& s = results[i].summary;
      r17.push_back(Pct(s.overall.miss_ratio));
      double medium = s.per_class.empty() ? 0.0
                                          : s.per_class[0].miss_ratio;
      double small =
          s.per_class.size() > 1 ? s.per_class[1].miss_ratio : 0.0;
      csv.AddRow({F(rate, 2), harness::PolicyLabel(policies[p]),
                  F(s.overall.miss_ratio, 4), F(medium, 4), F(small, 4)});
      json.AddResult(results[i], harness::PolicyLabel(policies[p]), rate);
      if (policies[p].ResolvedSpec() == "pmm") {
        r18.push_back(Pct(medium));
        r18.push_back(rate > 0.0 ? Pct(small) : std::string("-"));
        r18.push_back(Pct(s.overall.miss_ratio));
      }
      ++i;
    }
    fig17.AddRow(r17);
    fig18.AddRow(r18);
  }
  std::printf("Figure 17: system miss ratio\n");
  fig17.Print();
  if (have_pmm) {
    std::printf("\nFigure 18: PMM per-class miss ratios\n");
    fig18.Print();
  }
  WriteCsv(csv, "results/multiclass.csv");
  WriteBenchJson(json, wall);
  return 0;
}
