// Baseline experiment (paper Section 5.1): one class of hash joins on a
// memory-bottlenecked configuration (10 disks, 40 MIPS, M = 2560 pages).
//
// Regenerates:
//   Figure 3 — miss ratio vs arrival rate (Max, MinMax, Proportional, PMM)
//   Figure 4 — average disk utilization vs arrival rate
//   Figure 5 — observed average MPL vs arrival rate
//   Figure 7 — memory fluctuations per query vs arrival rate
//   Table 7  — average waiting / execution / response times
//
// CSV series land in results/baseline.csv; the machine-readable
// trajectory in results/BENCH_baseline.json.

#include "bench_util.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E1-E4, E6: baseline experiment",
         "Figures 3, 4, 5, 7 and Table 7 (Section 5.1)");

  const std::vector<double> rates = {0.04, 0.05, 0.06, 0.07, 0.08};
  auto policies = harness::PoliciesOrDefault(harness::BaselinePolicies());

  std::vector<harness::RunSpec> specs;
  for (double rate : rates) {
    for (const auto& policy : policies) {
      specs.push_back({harness::PolicyLabel(policy) + " @ " + F(rate, 3),
                       harness::BaselineConfig(rate, policy)});
    }
  }

  auto start = Now();
  std::vector<harness::RunResult> results = harness::RunPool(specs);
  double wall = SecondsSince(start);

  harness::TablePrinter fig3(harness::PolicyColumns("lambda", policies));
  harness::TablePrinter fig4 = fig3;
  harness::TablePrinter fig5 = fig3;
  harness::TablePrinter fig7 = fig3;
  harness::TablePrinter table7({"lambda", "policy", "wait(s)", "exec(s)",
                                "total(s)", "miss", "ci90 +/-"});
  harness::CsvWriter csv({"arrival_rate", "policy", "miss_ratio",
                          "avg_disk_util", "avg_mpl", "avg_wait",
                          "avg_exec", "avg_response", "fluctuations",
                          "miss_ci_halfwidth"});
  harness::BenchJsonEmitter json("baseline");

  size_t i = 0;
  for (double rate : rates) {
    std::vector<std::string> r3{F(rate, 3)}, r4{F(rate, 3)},
        r5{F(rate, 3)}, r7{F(rate, 3)};
    for (const auto& policy : policies) {
      const engine::SystemSummary& s = results[i].summary;
      r3.push_back(Pct(s.overall.miss_ratio));
      r4.push_back(Pct(s.avg_disk_utilization));
      r5.push_back(F(s.avg_mpl, 2));
      r7.push_back(F(s.overall.avg_fluctuations, 2));
      table7.AddRow({F(rate, 3), harness::PolicyLabel(policy),
                     F(s.overall.avg_wait, 1), F(s.overall.avg_exec, 1),
                     F(s.overall.avg_response, 1),
                     Pct(s.overall.miss_ratio),
                     Pct(s.miss_ratio_ci.half_width)});
      csv.AddRow({F(rate, 3), harness::PolicyLabel(policy),
                  F(s.overall.miss_ratio, 4), F(s.avg_disk_utilization, 4),
                  F(s.avg_mpl, 3), F(s.overall.avg_wait, 2),
                  F(s.overall.avg_exec, 2), F(s.overall.avg_response, 2),
                  F(s.overall.avg_fluctuations, 3),
                  F(s.miss_ratio_ci.half_width, 4)});
      json.AddResult(results[i], harness::PolicyLabel(policy), rate);
      ++i;
    }
    fig3.AddRow(r3);
    fig4.AddRow(r4);
    fig5.AddRow(r5);
    fig7.AddRow(r7);
  }

  std::printf("Figure 3: miss ratio vs arrival rate\n");
  fig3.Print();
  std::printf("\nFigure 4: average disk utilization\n");
  fig4.Print();
  std::printf("\nFigure 5: observed average MPL\n");
  fig5.Print();
  std::printf("\nFigure 7: memory fluctuations per query\n");
  fig7.Print();
  std::printf("\nTable 7: average timings\n");
  table7.Print();

  WriteCsv(csv, "results/baseline.csv");
  WriteBenchJson(json, wall);
  return 0;
}
