// Scalability check (paper Section 5.7): the disk-contention experiment
// with memory and relation sizes scaled up 10x and arrival rates scaled
// down 10x. The paper argues (and verified with small/medium pairs) that
// the qualitative algorithm behaviour is unchanged; we compare the policy
// ordering at scale 1 vs scale 10.

#include <algorithm>

#include "bench_util.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E17: scale-up check (sizes x10, rate /10)",
         "Section 5.7 (prose experiment)");

  std::vector<engine::PolicyConfig> policies(3);
  policies[0].kind = engine::PolicyKind::kMax;
  policies[1].kind = engine::PolicyKind::kMinMax;
  policies[2].kind = engine::PolicyKind::kPmm;

  harness::TablePrinter table({"scale", "policy", "miss ratio", "avg MPL",
                               "disk util", "queries"});
  harness::CsvWriter csv({"scale", "policy", "miss_ratio", "avg_mpl",
                          "avg_disk_util", "completions"});

  const double rate = 0.07;
  for (double scale : {1.0, 10.0}) {
    for (const auto& policy : policies) {
      engine::SystemConfig config =
          harness::ScaledConfig(rate, policy, scale);
      // The scaled system completes 10x fewer queries per hour; run it
      // longer so the row has a usable sample, but cap the multiplier —
      // each scaled query also costs ~10x the simulation events, so a
      // full 10x duration would take a couple of orders of magnitude
      // more wall time than every other experiment combined.
      double multiplier = std::min(scale, 3.0);
      auto sys = engine::Rtdbs::Create(config);
      RTQ_CHECK_MSG(sys.ok(), sys.status().ToString().c_str());
      sys.value()->RunUntil(harness::ExperimentDuration() * multiplier);
      engine::SystemSummary s = sys.value()->Summarize();
      table.AddRow({F(scale, 0), harness::PolicyLabel(policy),
                    Pct(s.overall.miss_ratio), F(s.avg_mpl, 2),
                    Pct(s.avg_disk_utilization),
                    std::to_string(s.overall.completions)});
      csv.AddRow({F(scale, 0), harness::PolicyLabel(policy),
                  F(s.overall.miss_ratio, 4), F(s.avg_mpl, 3),
                  F(s.avg_disk_utilization, 4),
                  std::to_string(s.overall.completions)});
      std::fflush(stdout);
    }
  }
  table.Print();
  csv.WriteFile("results/scalability.csv");
  std::printf("\nseries written to results/scalability.csv\n");
  return 0;
}
