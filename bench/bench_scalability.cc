// Scalability check (paper Section 5.7): the disk-contention experiment
// with memory and relation sizes scaled up 10x and arrival rates scaled
// down 10x. The paper argues (and verified with small/medium pairs) that
// the qualitative algorithm behaviour is unchanged; we compare the policy
// ordering at scale 1 vs scale 10.

#include <algorithm>

#include "bench_util.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E17: scale-up check (sizes x10, rate /10)",
         "Section 5.7 (prose experiment)");

  auto policies =
      harness::PoliciesOrDefault({{"max"}, {"minmax"}, {"pmm"}});

  const double rate = 0.07;
  const std::vector<double> scales = {1.0, 10.0};

  std::vector<harness::RunSpec> specs;
  for (double scale : scales) {
    for (const auto& policy : policies) {
      harness::RunSpec spec;
      spec.label =
          harness::PolicyLabel(policy) + " @ scale " + F(scale, 0);
      spec.config = harness::ScaledConfig(rate, policy, scale);
      // The scaled system completes 10x fewer queries per hour; run it
      // longer so the row has a usable sample, but cap the multiplier —
      // each scaled query also costs ~10x the simulation events, so a
      // full 10x duration would take a couple of orders of magnitude
      // more wall time than every other experiment combined.
      spec.duration =
          harness::ExperimentDuration() * std::min(scale, 3.0);
      specs.push_back(std::move(spec));
    }
  }

  auto start = Now();
  std::vector<harness::RunResult> results = harness::RunPool(specs);
  double wall = SecondsSince(start);

  harness::TablePrinter table({"scale", "policy", "miss ratio", "avg MPL",
                               "disk util", "queries"});
  harness::CsvWriter csv({"scale", "policy", "miss_ratio", "avg_mpl",
                          "avg_disk_util", "completions"});
  harness::BenchJsonEmitter json("scalability");
  json.AddConfig("base_rate", F(rate, 3));

  size_t i = 0;
  for (double scale : scales) {
    for (const auto& policy : policies) {
      const engine::SystemSummary& s = results[i].summary;
      table.AddRow({F(scale, 0), harness::PolicyLabel(policy),
                    Pct(s.overall.miss_ratio), F(s.avg_mpl, 2),
                    Pct(s.avg_disk_utilization),
                    std::to_string(s.overall.completions)});
      csv.AddRow({F(scale, 0), harness::PolicyLabel(policy),
                  F(s.overall.miss_ratio, 4), F(s.avg_mpl, 3),
                  F(s.avg_disk_utilization, 4),
                  std::to_string(s.overall.completions)});
      // lambda records the effective (scaled-down) arrival rate.
      json.AddResult(results[i], harness::PolicyLabel(policy),
                     rate / scale);
      ++i;
    }
  }
  table.Print();
  WriteCsv(csv, "results/scalability.csv");
  WriteBenchJson(json, wall);
  return 0;
}
