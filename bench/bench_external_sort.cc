// External-sort workload (paper Section 5.5): the baseline resources with
// a single class of external sorts (||R|| in [600, 1800] pages). Memory
// is even more critical than in the join baseline — each sort demands its
// whole relation but puts a light load on CPU and disks — so Max degrades
// harder and the liberal policies shine.
//
// Regenerates Figure 16.

#include "bench_util.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E14: external-sort workload", "Figure 16 (Section 5.5)");

  const std::vector<double> rates = {0.04, 0.06, 0.08, 0.10, 0.12};
  auto policies = harness::BaselinePolicies();

  harness::TablePrinter fig16({"lambda", "Max", "MinMax", "Proportional",
                               "PMM"});
  harness::CsvWriter csv({"arrival_rate", "policy", "miss_ratio",
                          "avg_mpl", "avg_disk_util"});

  for (double rate : rates) {
    std::vector<std::string> row{F(rate, 3)};
    for (const auto& policy : policies) {
      engine::SystemSummary s =
          harness::RunOnce(harness::ExternalSortConfig(rate, policy));
      row.push_back(Pct(s.overall.miss_ratio));
      csv.AddRow({F(rate, 3), harness::PolicyLabel(policy),
                  F(s.overall.miss_ratio, 4), F(s.avg_mpl, 3),
                  F(s.avg_disk_utilization, 4)});
      std::fflush(stdout);
    }
    fig16.AddRow(row);
  }
  std::printf("Figure 16: miss ratio, external sorts\n");
  fig16.Print();
  csv.WriteFile("results/external_sort.csv");
  std::printf("\nseries written to results/external_sort.csv\n");
  return 0;
}
