// External-sort workload (paper Section 5.5): the baseline resources with
// a single class of external sorts (||R|| in [600, 1800] pages). Memory
// is even more critical than in the join baseline — each sort demands its
// whole relation but puts a light load on CPU and disks — so Max degrades
// harder and the liberal policies shine.
//
// Regenerates Figure 16.

#include "bench_util.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E14: external-sort workload", "Figure 16 (Section 5.5)");

  const std::vector<double> rates = {0.04, 0.06, 0.08, 0.10, 0.12};
  auto policies = harness::PoliciesOrDefault(harness::BaselinePolicies());

  std::vector<harness::RunSpec> specs;
  for (double rate : rates) {
    for (const auto& policy : policies) {
      specs.push_back({harness::PolicyLabel(policy) + " @ " + F(rate, 3),
                       harness::ExternalSortConfig(rate, policy)});
    }
  }

  auto start = Now();
  std::vector<harness::RunResult> results = harness::RunPool(specs);
  double wall = SecondsSince(start);

  harness::TablePrinter fig16(harness::PolicyColumns("lambda", policies));
  harness::CsvWriter csv({"arrival_rate", "policy", "miss_ratio",
                          "avg_mpl", "avg_disk_util"});
  harness::BenchJsonEmitter json("external_sort");

  size_t i = 0;
  for (double rate : rates) {
    std::vector<std::string> row{F(rate, 3)};
    for (const auto& policy : policies) {
      const engine::SystemSummary& s = results[i].summary;
      row.push_back(Pct(s.overall.miss_ratio));
      csv.AddRow({F(rate, 3), harness::PolicyLabel(policy),
                  F(s.overall.miss_ratio, 4), F(s.avg_mpl, 3),
                  F(s.avg_disk_utilization, 4)});
      json.AddResult(results[i], harness::PolicyLabel(policy), rate);
      ++i;
    }
    fig16.AddRow(row);
  }
  std::printf("Figure 16: miss ratio, external sorts\n");
  fig16.Print();
  WriteCsv(csv, "results/external_sort.csv");
  WriteBenchJson(json, wall);
  return 0;
}
