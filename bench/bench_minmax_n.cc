// MinMax-N sweep (paper Figure 11): miss ratio as a function of the MPL
// limit N at a fixed arrival rate on the 6-disk configuration. The paper
// reports a concave curve whose interior optimum motivates PMM's dynamic
// MPL selection; Max-like behaviour at small N, MinMax at large N.

#include "bench_util.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E10: MinMax-N sweep at lambda = 0.07 (6 disks)",
         "Figure 11 (Section 5.2)");

  const double rate = 0.07;
  const std::vector<int64_t> ns = {1, 2, 3, 4, 6, 8, 10, 14, 20};

  std::vector<harness::RunSpec> specs;
  std::vector<engine::PolicyConfig> policies;
  for (int64_t n : ns) {
    engine::PolicyConfig policy;
    policy.kind = engine::PolicyKind::kMinMaxN;
    policy.mpl_limit = n;
    policies.push_back(policy);
    specs.push_back({harness::PolicyLabel(policy),
                     harness::DiskContentionConfig(rate, policy)});
  }
  // Unlimited MinMax as the right edge of the spectrum.
  engine::PolicyConfig unlimited;
  unlimited.kind = engine::PolicyKind::kMinMax;
  policies.push_back(unlimited);
  specs.push_back({harness::PolicyLabel(unlimited),
                   harness::DiskContentionConfig(rate, unlimited)});

  auto start = Now();
  std::vector<harness::RunResult> results = harness::RunPool(specs);
  double wall = SecondsSince(start);

  harness::TablePrinter table({"N", "miss ratio", "avg MPL", "wait(s)",
                               "exec(s)", "disk util"});
  harness::CsvWriter csv({"N", "miss_ratio", "avg_mpl", "avg_wait",
                          "avg_exec", "avg_disk_util"});
  harness::BenchJsonEmitter json("minmax_n");
  json.AddConfig("lambda_fixed", F(rate, 3));

  for (size_t i = 0; i < results.size(); ++i) {
    const engine::SystemSummary& s = results[i].summary;
    bool is_unlimited = i + 1 == results.size();
    std::string n_label =
        is_unlimited ? "inf" : std::to_string(ns[i]);
    std::string n_csv = is_unlimited ? "-1" : std::to_string(ns[i]);
    table.AddRow({n_label, Pct(s.overall.miss_ratio), F(s.avg_mpl, 2),
                  F(s.overall.avg_wait, 1), F(s.overall.avg_exec, 1),
                  Pct(s.avg_disk_utilization)});
    csv.AddRow({n_csv, F(s.overall.miss_ratio, 4), F(s.avg_mpl, 3),
                F(s.overall.avg_wait, 2), F(s.overall.avg_exec, 2),
                F(s.avg_disk_utilization, 4)});
    json.AddResult(results[i], harness::PolicyLabel(policies[i]), rate);
  }

  table.Print();
  WriteCsv(csv, "results/minmax_n.csv");
  WriteBenchJson(json, wall);
  return 0;
}
