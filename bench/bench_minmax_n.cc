// MinMax-N sweep (paper Figure 11): miss ratio as a function of the MPL
// limit N at a fixed arrival rate on the 6-disk configuration. The paper
// reports a concave curve whose interior optimum motivates PMM's dynamic
// MPL selection; Max-like behaviour at small N, MinMax at large N.

#include "bench_util.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E10: MinMax-N sweep at lambda = 0.07 (6 disks)",
         "Figure 11 (Section 5.2)");

  const double rate = 0.07;

  // The default sweep: MinMax-N for the paper's N values, with
  // unlimited MinMax as the right edge of the spectrum.
  std::vector<engine::PolicyConfig> defaults;
  for (int64_t n : {1, 2, 3, 4, 6, 8, 10, 14, 20}) {
    defaults.push_back({"minmax:" + std::to_string(n)});
  }
  defaults.push_back({"minmax"});
  auto policies = harness::PoliciesOrDefault(defaults);

  std::vector<harness::RunSpec> specs;
  for (const auto& policy : policies) {
    specs.push_back({harness::PolicyLabel(policy),
                     harness::DiskContentionConfig(rate, policy)});
  }

  auto start = Now();
  std::vector<harness::RunResult> results = harness::RunPool(specs);
  double wall = SecondsSince(start);

  harness::TablePrinter table({"N", "miss ratio", "avg MPL", "wait(s)",
                               "exec(s)", "disk util"});
  harness::CsvWriter csv({"N", "miss_ratio", "avg_mpl", "avg_wait",
                          "avg_exec", "avg_disk_util"});
  harness::BenchJsonEmitter json("minmax_n");
  json.AddConfig("lambda_fixed", F(rate, 3));

  for (size_t i = 0; i < results.size(); ++i) {
    const engine::SystemSummary& s = results[i].summary;
    // Derive the N column from the spec: "minmax:5" -> 5, bare
    // "minmax" -> inf; anything else (RTQ_POLICIES override) is shown
    // by its label.
    std::string spec = policies[i].ResolvedSpec();
    std::string n_label, n_csv;
    if (spec == "minmax") {
      n_label = "inf";
      n_csv = "-1";
    } else if (spec.rfind("minmax:", 0) == 0) {
      n_label = n_csv = spec.substr(7);
    } else {
      n_label = n_csv = harness::PolicyLabel(policies[i]);
    }
    table.AddRow({n_label, Pct(s.overall.miss_ratio), F(s.avg_mpl, 2),
                  F(s.overall.avg_wait, 1), F(s.overall.avg_exec, 1),
                  Pct(s.avg_disk_utilization)});
    csv.AddRow({n_csv, F(s.overall.miss_ratio, 4), F(s.avg_mpl, 3),
                F(s.overall.avg_wait, 2), F(s.overall.avg_exec, 2),
                F(s.avg_disk_utilization, 4)});
    json.AddResult(results[i], harness::PolicyLabel(policies[i]), rate);
  }

  table.Print();
  WriteCsv(csv, "results/minmax_n.csv");
  WriteBenchJson(json, wall);
  return 0;
}
