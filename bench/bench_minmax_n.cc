// MinMax-N sweep (paper Figure 11): miss ratio as a function of the MPL
// limit N at a fixed arrival rate on the 6-disk configuration. The paper
// reports a concave curve whose interior optimum motivates PMM's dynamic
// MPL selection; Max-like behaviour at small N, MinMax at large N.

#include "bench_util.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E10: MinMax-N sweep at lambda = 0.07 (6 disks)",
         "Figure 11 (Section 5.2)");

  const std::vector<int64_t> ns = {1, 2, 3, 4, 6, 8, 10, 14, 20};

  harness::TablePrinter table({"N", "miss ratio", "avg MPL", "wait(s)",
                               "exec(s)", "disk util"});
  harness::CsvWriter csv({"N", "miss_ratio", "avg_mpl", "avg_wait",
                          "avg_exec", "avg_disk_util"});

  for (int64_t n : ns) {
    engine::PolicyConfig policy;
    policy.kind = engine::PolicyKind::kMinMaxN;
    policy.mpl_limit = n;
    engine::SystemSummary s =
        harness::RunOnce(harness::DiskContentionConfig(0.07, policy));
    table.AddRow({std::to_string(n), Pct(s.overall.miss_ratio),
                  F(s.avg_mpl, 2), F(s.overall.avg_wait, 1),
                  F(s.overall.avg_exec, 1), Pct(s.avg_disk_utilization)});
    csv.AddRow({std::to_string(n), F(s.overall.miss_ratio, 4),
                F(s.avg_mpl, 3), F(s.overall.avg_wait, 2),
                F(s.overall.avg_exec, 2), F(s.avg_disk_utilization, 4)});
    std::fflush(stdout);
  }
  // Unlimited MinMax as the right edge of the spectrum.
  engine::PolicyConfig unlimited;
  unlimited.kind = engine::PolicyKind::kMinMax;
  engine::SystemSummary s =
      harness::RunOnce(harness::DiskContentionConfig(0.07, unlimited));
  table.AddRow({"inf", Pct(s.overall.miss_ratio), F(s.avg_mpl, 2),
                F(s.overall.avg_wait, 1), F(s.overall.avg_exec, 1),
                Pct(s.avg_disk_utilization)});
  csv.AddRow({"-1", F(s.overall.miss_ratio, 4), F(s.avg_mpl, 3),
              F(s.overall.avg_wait, 2), F(s.overall.avg_exec, 2),
              F(s.avg_disk_utilization, 4)});

  table.Print();
  csv.WriteFile("results/minmax_n.csv");
  std::printf("\nseries written to results/minmax_n.csv\n");
  return 0;
}
