#!/usr/bin/env python3
"""Compare BENCH_*.json trajectories against baseline trajectories.

Closes the perf-tracking loop from ROADMAP.md: given baseline
trajectories checked in under results/ and freshly produced ones, this
diffs the headline events/sec figure and the per-point miss ratios, and
exits non-zero when either regresses beyond its threshold.

    bench/compare_bench_json.py CURRENT BASELINE \
        [--max-events-regression 0.10] [--max-miss-drift 0.02] \
        [--require-same-points] [--report]

CURRENT and BASELINE are either two BENCH_*.json files or two
directories; with directories, files are paired by name and every pair
is compared (a driver present on only one side is reported, and fails
only with --require-same-points).

* events/sec: fails when current totals.events_per_second falls more
  than --max-events-regression (fraction, default 0.10 = the ROADMAP's
  10%) below the baseline's. Improvements never fail.
* per-point miss ratio: points are matched by label; a matched point
  fails when |current - baseline| miss ratio exceeds --max-miss-drift
  (absolute, default 0.02). With identical simulated duration and seeds
  the simulator is deterministic, so any drift at --max-miss-drift 0
  means behaviour changed.
* unmatched points are reported; they fail only with
  --require-same-points (sweeps grown on purpose stay comparable).
* --report prints one old-vs-new wall-seconds / events-per-sec row per
  driver instead of the per-point OK lines (failures always print).

Notes for CI: trajectories (events, completions, misses, miss ratios)
are deterministic and machine-independent, so bench-smoke compares the
smoke sweep (RTQ_SIM_HOURS=0.1) against the checked-in references under
results/smoke/ at --max-miss-drift 0 — any drift fails the PR. Wall
seconds and events/sec DO vary across machines, so that job relaxes
--max-events-regression; the tight 10% events/sec gate is the
same-machine full-length run against results/BENCH_baseline.json
documented in README.md.
"""

import argparse
import json
import os
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    for key in ("driver", "points", "totals"):
        if key not in doc:
            sys.exit(f"error: {path}: not a BENCH_*.json document "
                     f"(missing '{key}')")
    return doc


def compare_pair(current, baseline, args, failures):
    """Compares one (current, baseline) document pair.

    Appends failure strings to `failures` and returns the report-table
    row for the pair.
    """
    if current["driver"] != baseline["driver"]:
        failures.append(f"driver mismatch: {current['driver']} vs "
                        f"{baseline['driver']}")

    # --- headline throughput ----------------------------------------------
    cur_eps = current["totals"].get("events_per_second", 0.0)
    base_eps = baseline["totals"].get("events_per_second", 0.0)
    eps_delta = None
    if base_eps > 0:
        eps_delta = (cur_eps - base_eps) / base_eps
        marker = "OK"
        if eps_delta < -args.max_events_regression:
            marker = "FAIL"
            failures.append(
                f"[{current['driver']}] events/sec regressed "
                f"{-eps_delta:.1%} "
                f"(limit {args.max_events_regression:.0%}): "
                f"{cur_eps:,.0f} vs baseline {base_eps:,.0f}")
        if not args.report:
            print(f"[{marker:4}] events/sec: {cur_eps:,.0f} vs "
                  f"{base_eps:,.0f} ({eps_delta:+.1%})")

    # --- per-point miss ratios --------------------------------------------
    base_points = {p["label"]: p for p in baseline["points"]}
    cur_points = {p["label"]: p for p in current["points"]}
    matched = 0
    drifted = 0
    for label, point in cur_points.items():
        base = base_points.get(label)
        if base is None:
            continue
        matched += 1
        drift = point["miss_ratio"] - base["miss_ratio"]
        marker = "OK"
        if abs(drift) > args.max_miss_drift:
            marker = "FAIL"
            drifted += 1
            failures.append(
                f"[{current['driver']}] miss ratio drifted at '{label}': "
                f"{point['miss_ratio']:.4f} vs {base['miss_ratio']:.4f} "
                f"(|{drift:+.4f}| > {args.max_miss_drift})")
        if not args.report or marker == "FAIL":
            print(f"[{marker:4}] {label}: miss {point['miss_ratio']:.4f} vs "
                  f"{base['miss_ratio']:.4f} ({drift:+.4f})")

    only_current = sorted(set(cur_points) - set(base_points))
    only_baseline = sorted(set(base_points) - set(cur_points))
    for label in only_current:
        print(f"[note] point only in current: '{label}'")
    for label in only_baseline:
        print(f"[note] point only in baseline: '{label}'")
    if args.require_same_points and (only_current or only_baseline):
        failures.append(
            f"[{current['driver']}] point sets differ: "
            f"{len(only_current)} new, {len(only_baseline)} missing")
    if matched == 0:
        failures.append(f"[{current['driver']}] no points matched "
                        "between the two files")

    return {
        "driver": current["driver"],
        "cur_wall": current["totals"].get("wall_seconds", 0.0),
        "base_wall": baseline["totals"].get("wall_seconds", 0.0),
        "cur_eps": cur_eps,
        "base_eps": base_eps,
        "eps_delta": eps_delta,
        "matched": matched,
        "drifted": drifted,
    }


def print_report(rows):
    """The old-vs-new wall-seconds / events-per-sec table per driver."""
    headers = ("driver", "wall_s", "wall_s(base)", "events/s",
               "events/s(base)", "delta", "points", "drifted")
    table = [headers]
    for r in rows:
        delta = "n/a" if r["eps_delta"] is None else f"{r['eps_delta']:+.1%}"
        table.append((r["driver"], f"{r['cur_wall']:.1f}",
                      f"{r['base_wall']:.1f}", f"{r['cur_eps']:,.0f}",
                      f"{r['base_eps']:,.0f}", delta, str(r["matched"]),
                      str(r["drifted"])))
    widths = [max(len(row[c]) for row in table) for c in range(len(headers))]
    print()
    for i, row in enumerate(table):
        print("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        if i == 0:
            print("  ".join("-" * w for w in widths))


def collect_pairs(current, baseline, args, failures):
    """Returns (current_doc, baseline_doc) pairs from files or directories."""
    if os.path.isdir(current) != os.path.isdir(baseline):
        sys.exit("error: CURRENT and BASELINE must both be files or both "
                 "be directories")
    if not os.path.isdir(current):
        return [(load(current), load(baseline))]
    def bench_files(d):
        return {name for name in os.listdir(d)
                if name.startswith("BENCH_") and name.endswith(".json")}
    cur_files = bench_files(current)
    base_files = bench_files(baseline)
    for name in sorted(cur_files - base_files):
        print(f"[note] driver only in current: {name}")
    for name in sorted(base_files - cur_files):
        print(f"[note] driver only in baseline: {name}")
    common = sorted(cur_files & base_files)
    if not common:
        sys.exit(f"error: no BENCH_*.json names in common between "
                 f"{current} and {baseline}")
    if args.require_same_points and cur_files != base_files:
        failures.append(f"driver sets differ: "
                        f"{len(cur_files - base_files)} new, "
                        f"{len(base_files - cur_files)} missing")
    return [(load(os.path.join(current, name)),
             load(os.path.join(baseline, name))) for name in common]


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("current", help="fresh BENCH_*.json file or directory")
    parser.add_argument("baseline",
                        help="reference BENCH_*.json file or directory")
    parser.add_argument("--max-events-regression", type=float, default=0.10,
                        metavar="FRAC",
                        help="max tolerated drop in events/sec (default 0.10)")
    parser.add_argument("--max-miss-drift", type=float, default=0.02,
                        metavar="ABS",
                        help="max tolerated |miss ratio delta| per point "
                             "(default 0.02)")
    parser.add_argument("--require-same-points", action="store_true",
                        help="fail when the two sides' point labels (or "
                             "driver files, in directory mode) differ")
    parser.add_argument("--report", action="store_true",
                        help="print a per-driver old-vs-new summary table "
                             "instead of per-point OK lines")
    args = parser.parse_args()

    failures = []
    rows = [compare_pair(cur, base, args, failures)
            for cur, base in collect_pairs(args.current, args.baseline,
                                           args, failures)]
    if args.report:
        print_report(rows)

    matched = sum(r["matched"] for r in rows)
    print(f"\n{len(rows)} driver(s), {matched} matched point(s), "
          f"{len(failures)} failure(s)")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
