#!/usr/bin/env python3
"""Compare a BENCH_*.json trajectory against a baseline trajectory.

Closes the perf-tracking loop from ROADMAP.md: given the baseline
trajectory checked in under results/ and a freshly produced one, this
diffs the headline events/sec figure and the per-point miss ratios, and
exits non-zero when either regresses beyond its threshold.

    bench/compare_bench_json.py CURRENT BASELINE \
        [--max-events-regression 0.10] [--max-miss-drift 0.02] \
        [--require-same-points]

* events/sec: fails when current totals.events_per_second falls more
  than --max-events-regression (fraction, default 0.10 = the ROADMAP's
  10%) below the baseline's. Improvements never fail.
* per-point miss ratio: points are matched by label; a matched point
  fails when |current - baseline| miss ratio exceeds --max-miss-drift
  (absolute, default 0.02). With identical simulated duration and seeds
  the simulator is deterministic, so any drift at --max-miss-drift 0
  means behaviour changed.
* unmatched points are reported; they fail only with
  --require-same-points (sweeps grown on purpose stay comparable).

Notes for CI: the checked-in baseline was recorded at RTQ_SIM_HOURS=3 on
a known machine. A smoke run (RTQ_SIM_HOURS=0.1, shared runner) is
neither the same simulation length nor the same hardware, so CI passes
--max-miss-drift tuned for smoke noise and relies on the nightly/local
full runs for the tight comparison.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        sys.exit(f"error: cannot read {path}: {e}")
    for key in ("driver", "points", "totals"):
        if key not in doc:
            sys.exit(f"error: {path}: not a BENCH_*.json document "
                     f"(missing '{key}')")
    return doc


def main():
    parser = argparse.ArgumentParser(
        description=__doc__, formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("current", help="fresh BENCH_*.json")
    parser.add_argument("baseline", help="reference BENCH_*.json")
    parser.add_argument("--max-events-regression", type=float, default=0.10,
                        metavar="FRAC",
                        help="max tolerated drop in events/sec (default 0.10)")
    parser.add_argument("--max-miss-drift", type=float, default=0.02,
                        metavar="ABS",
                        help="max tolerated |miss ratio delta| per point "
                             "(default 0.02)")
    parser.add_argument("--require-same-points", action="store_true",
                        help="fail when the two files' point labels differ")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)
    failures = []

    if current["driver"] != baseline["driver"]:
        failures.append(f"driver mismatch: {current['driver']} vs "
                        f"{baseline['driver']}")

    # --- headline throughput ----------------------------------------------
    cur_eps = current["totals"].get("events_per_second", 0.0)
    base_eps = baseline["totals"].get("events_per_second", 0.0)
    if base_eps > 0:
        delta = (cur_eps - base_eps) / base_eps
        marker = "OK"
        if delta < -args.max_events_regression:
            marker = "FAIL"
            failures.append(
                f"events/sec regressed {-delta:.1%} "
                f"(limit {args.max_events_regression:.0%}): "
                f"{cur_eps:,.0f} vs baseline {base_eps:,.0f}")
        print(f"[{marker:4}] events/sec: {cur_eps:,.0f} vs {base_eps:,.0f} "
              f"({delta:+.1%})")

    # --- per-point miss ratios --------------------------------------------
    base_points = {p["label"]: p for p in baseline["points"]}
    cur_points = {p["label"]: p for p in current["points"]}
    matched = 0
    for label, point in cur_points.items():
        base = base_points.get(label)
        if base is None:
            continue
        matched += 1
        drift = point["miss_ratio"] - base["miss_ratio"]
        marker = "OK"
        if abs(drift) > args.max_miss_drift:
            marker = "FAIL"
            failures.append(
                f"miss ratio drifted at '{label}': "
                f"{point['miss_ratio']:.4f} vs {base['miss_ratio']:.4f} "
                f"(|{drift:+.4f}| > {args.max_miss_drift})")
        print(f"[{marker:4}] {label}: miss {point['miss_ratio']:.4f} vs "
              f"{base['miss_ratio']:.4f} ({drift:+.4f})")

    only_current = sorted(set(cur_points) - set(base_points))
    only_baseline = sorted(set(base_points) - set(cur_points))
    for label in only_current:
        print(f"[note] point only in current: '{label}'")
    for label in only_baseline:
        print(f"[note] point only in baseline: '{label}'")
    if args.require_same_points and (only_current or only_baseline):
        failures.append(
            f"point sets differ: {len(only_current)} new, "
            f"{len(only_baseline)} missing")
    if matched == 0:
        failures.append("no points matched between the two files")

    print(f"\n{matched} matched point(s), {len(failures)} failure(s)")
    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
