// Ablation A1: Max admission with and without bypass.
//
// The paper's Max "admits as many queries at their maximum allocations as
// memory permits" — i.e., a blocked large query does not stop smaller,
// later-deadline queries from being admitted around it (bypass). The
// strict-ED alternative cannot starve an urgent large query but realizes
// a lower MPL. This bench quantifies the difference on the baseline.

#include "bench_util.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("A1 ablation: Max admission bypass vs strict ED",
         "design-choice ablation (DESIGN.md)");

  const std::vector<double> rates = {0.05, 0.07};

  std::vector<harness::RunSpec> specs;
  std::vector<std::string> labels;
  for (double rate : rates) {
    for (bool bypass : {true, false}) {
      engine::PolicyConfig policy{bypass ? "max" : "max:strict"};
      labels.push_back(bypass ? "Max (bypass)" : "Max (strict ED)");
      specs.push_back({labels.back() + " @ " + F(rate, 3),
                       harness::BaselineConfig(rate, policy)});
    }
  }

  auto start = Now();
  std::vector<harness::RunResult> results = harness::RunPool(specs);
  double wall = SecondsSince(start);

  harness::TablePrinter table({"lambda", "variant", "miss ratio",
                               "avg MPL", "wait(s)"});
  harness::CsvWriter csv({"arrival_rate", "variant", "miss_ratio",
                          "avg_mpl", "avg_wait"});
  harness::BenchJsonEmitter json("ablation_admission");

  size_t i = 0;
  for (double rate : rates) {
    for (int variant = 0; variant < 2; ++variant) {
      const engine::SystemSummary& s = results[i].summary;
      table.AddRow({F(rate, 3), labels[i], Pct(s.overall.miss_ratio),
                    F(s.avg_mpl, 2), F(s.overall.avg_wait, 1)});
      csv.AddRow({F(rate, 3), labels[i], F(s.overall.miss_ratio, 4),
                  F(s.avg_mpl, 3), F(s.overall.avg_wait, 2)});
      json.AddResult(results[i], labels[i], rate);
      ++i;
    }
  }
  table.Print();
  WriteCsv(csv, "results/ablation_admission.csv");
  WriteBenchJson(json, wall);
  return 0;
}
