// Ablation A1: Max admission with and without bypass.
//
// The paper's Max "admits as many queries at their maximum allocations as
// memory permits" — i.e., a blocked large query does not stop smaller,
// later-deadline queries from being admitted around it (bypass). The
// strict-ED alternative cannot starve an urgent large query but realizes
// a lower MPL. This bench quantifies the difference on the baseline.

#include "bench_util.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("A1 ablation: Max admission bypass vs strict ED",
         "design-choice ablation (DESIGN.md)");

  harness::TablePrinter table({"lambda", "variant", "miss ratio",
                               "avg MPL", "wait(s)"});
  harness::CsvWriter csv({"arrival_rate", "variant", "miss_ratio",
                          "avg_mpl", "avg_wait"});

  for (double rate : {0.05, 0.07}) {
    for (bool bypass : {true, false}) {
      engine::PolicyConfig policy;
      policy.kind = engine::PolicyKind::kMax;
      policy.max_bypass = bypass;
      engine::SystemSummary s =
          harness::RunOnce(harness::BaselineConfig(rate, policy));
      const char* label = bypass ? "Max (bypass)" : "Max (strict ED)";
      table.AddRow({F(rate, 3), label, Pct(s.overall.miss_ratio),
                    F(s.avg_mpl, 2), F(s.overall.avg_wait, 1)});
      csv.AddRow({F(rate, 3), label, F(s.overall.miss_ratio, 4),
                  F(s.avg_mpl, 3), F(s.overall.avg_wait, 2)});
      std::fflush(stdout);
    }
  }
  table.Print();
  csv.WriteFile("results/ablation_admission.csv");
  std::printf("\nseries written to results/ablation_admission.csv\n");
  return 0;
}
