// Scenario sweep: the policy registry against the adversarial arrival
// shapes the scenario engine generates (none of which the paper's
// stationary Poisson grids cover): diurnal load, a flash crowd,
// Pareto-tailed operand sizes, Markov-modulated bursts, and the
// Section 5.3 class alternation as a scripted mix shift.
//
// Every shape's time parameters scale with ExperimentDuration() so its
// features (burst, rate peak, alternation) land inside the horizon at
// any RTQ_SIM_HOURS; the tick cadence scales the same way so the
// time-driven policies (pmm-predict, select) get a full forecasting
// window even at smoke durations. Per point the JSON trajectory also
// records gap_to_oracle — miss ratio minus the clairvoyant oracle-ed
// lane's on the same shape (omitted when RTQ_POLICIES drops the
// oracle). Also renders the diurnal scenario to
// results/sample_diurnal.rtqt — the replayable `.rtqt` form of the
// exact arrival stream the diurnal runs saw.

#include <algorithm>
#include <cmath>

#include "bench_util.h"
#include "core/policy_registry.h"
#include "workload/trace.h"

namespace {

/// Index of the oracle-ed lane in `policies`, or -1 when absent.
int OracleIndex(const std::vector<rtq::engine::PolicyConfig>& policies) {
  for (size_t p = 0; p < policies.size(); ++p) {
    auto spec = rtq::core::PolicySpec::Parse(policies[p].ResolvedSpec());
    if (spec.ok() && spec.value().name == "oracle-ed") {
      return static_cast<int>(p);
    }
  }
  return -1;
}

}  // namespace

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E16: policy registry vs adversarial arrival scenarios",
         "scenario engine (beyond the paper's stationary grids)");

  const double d = harness::ExperimentDuration();
  using workload::FormatDouble;

  // (short key for labels, registry spec, dominant arrival rate).
  struct ScenarioPoint {
    std::string key;
    std::string spec;
    double lambda;
  };
  const std::vector<ScenarioPoint> scenarios = {
      {"diurnal", "diurnal:period=" + FormatDouble(d / 1.5), 0.07},
      {"flash",
       "flash:at=" + FormatDouble(d / 3.0) + ",dur=" +
           FormatDouble(d / 12.0) + ",decay=" + FormatDouble(d / 24.0),
       0.5},
      {"pareto", "pareto", 0.07},
      {"burst",
       "burst:tlo=" + FormatDouble(d / 12.0) + ",thi=" +
           FormatDouble(d / 36.0),
       0.1},
      {"mixshift", "mixshift:interval=" + FormatDouble(d / 6.0), 0.07},
  };

  auto policies =
      harness::PoliciesOrDefault({{"pmm"},
                                  {"pmm-predict"},
                                  {"select:candidates=pmm+pmm-predict"},
                                  {"max"},
                                  {"pmm-tick"},
                                  {"pmm-class"},
                                  {"edf-shed"},
                                  {"oracle-ed"}});
  std::vector<std::string> names;
  for (const auto& policy : policies)
    names.push_back(harness::PolicyLabel(policy));

  // Compress the tick grid with the horizon (60 s at the 1 h+ defaults,
  // d/60 at smoke) so forecasting windows span the same fraction of the
  // run at any RTQ_SIM_HOURS.
  const double tick = std::min(60.0, d / 60.0);

  std::vector<harness::RunSpec> specs;
  for (const auto& sc : scenarios) {
    for (size_t p = 0; p < policies.size(); ++p) {
      engine::SystemConfig config =
          harness::ScenarioConfig(sc.spec, policies[p]);
      config.mpl_sample_interval = tick;
      specs.push_back({sc.key + "|" + names[p], config});
    }
  }

  auto start = Now();
  std::vector<harness::RunResult> results = harness::RunPool(specs);
  double wall = SecondsSince(start);

  harness::TablePrinter table(harness::PolicyColumns("scenario", policies));
  harness::CsvWriter csv({"scenario", "policy", "miss_ratio", "completions",
                          "avg_mpl", "disk_util", "gap_to_oracle"});
  harness::BenchJsonEmitter json("scenarios");
  json.AddConfig("scenarios", std::to_string(scenarios.size()));

  const int oracle = OracleIndex(policies);
  size_t at = 0;
  for (const auto& sc : scenarios) {
    double oracle_miss =
        oracle >= 0 ? results[at + static_cast<size_t>(oracle)]
                          .summary.overall.miss_ratio
                    : std::nan("");
    std::vector<std::string> row{sc.key};
    for (size_t p = 0; p < policies.size(); ++p, ++at) {
      const harness::RunResult& r = results[at];
      double gap = r.summary.overall.miss_ratio - oracle_miss;
      row.push_back(Pct(r.summary.overall.miss_ratio));
      csv.AddRow({sc.key, names[p], F(r.summary.overall.miss_ratio, 4),
                  std::to_string(r.summary.overall.completions),
                  F(r.summary.avg_mpl, 2),
                  F(r.summary.avg_disk_utilization, 3),
                  std::isfinite(gap) ? F(gap, 4) : std::string("")});
      json.AddResult(r, names[p], sc.lambda, gap);
    }
    table.AddRow(row);
  }
  std::printf("Miss ratio by scenario shape\n");
  table.Print();

  // A replayable sample: the diurnal arrival stream as a `.rtqt` trace.
  // Replaying it (config.trace) reproduces the diurnal rows above
  // bit-identically — the determinism gate tests/test_scenario.cc pins.
  {
    engine::SystemConfig config =
        harness::ScenarioConfig(scenarios[0].spec, policies[0]);
    auto trace = engine::RenderScenarioTrace(config, d);
    RTQ_CHECK_MSG(trace.ok(), trace.status().ToString().c_str());
    const std::string path = "results/sample_diurnal.rtqt";
    Status st = workload::WriteTraceFile(trace.value(), path);
    if (st.ok()) {
      std::printf("\nsample trace written to %s (%zu arrivals)\n",
                  path.c_str(), trace.value().records.size());
    } else {
      std::fprintf(stderr, "%s\n", st.ToString().c_str());
    }
  }

  WriteCsv(csv, "results/scenarios.csv");
  WriteBenchJson(json, wall);
  return 0;
}
