// Extension A3: PMM-Fair (the paper's Section 5.6 future work).
//
// On the multiclass workload plain PMM minimizes the system miss ratio by
// letting the dominant Small class pull it into Max mode, starving the
// Medium class (Figure 18's bias). PMM-Fair accepts administrator weights
// for the desired relative class miss ratios; with equal weights it
// should trade a little system-level performance for a much smaller gap
// between the two classes' miss ratios.

#include <cmath>

#include "bench_util.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("A3 extension: PMM-Fair class-fairness",
         "Section 5.6 future work, realized");

  const std::vector<double> small_rates = {0.4, 0.8, 1.2};

  // "pmm-fair:w=1,1" asks for equal miss ratios across the two classes.
  auto variants = harness::PoliciesOrDefault({{"pmm"}, {"pmm-fair:w=1,1"}});

  std::vector<harness::RunSpec> specs;
  std::vector<engine::PolicyConfig> policies;
  for (double rate : small_rates) {
    for (const auto& policy : variants) {
      policies.push_back(policy);
      specs.push_back({harness::PolicyLabel(policy) + " @ small " +
                           F(rate, 2),
                       harness::MulticlassConfig(rate, policy)});
    }
  }

  auto start = Now();
  std::vector<harness::RunResult> results = harness::RunPool(specs);
  double wall = SecondsSince(start);

  harness::TablePrinter table({"small rate", "policy", "system",
                               "Medium", "Small", "|gap|"});
  harness::CsvWriter csv({"small_rate", "policy", "system_miss",
                          "medium_miss", "small_miss", "gap"});
  harness::BenchJsonEmitter json("pmm_fair");

  size_t i = 0;
  for (double rate : small_rates) {
    for (size_t variant = 0; variant < variants.size(); ++variant) {
      const engine::SystemSummary& s = results[i].summary;
      double medium = s.per_class.empty() ? 0.0
                                          : s.per_class[0].miss_ratio;
      double small =
          s.per_class.size() > 1 ? s.per_class[1].miss_ratio : 0.0;
      double gap = std::fabs(medium - small);
      table.AddRow({F(rate, 2), harness::PolicyLabel(policies[i]),
                    Pct(s.overall.miss_ratio), Pct(medium), Pct(small),
                    Pct(gap)});
      csv.AddRow({F(rate, 2), harness::PolicyLabel(policies[i]),
                  F(s.overall.miss_ratio, 4), F(medium, 4), F(small, 4),
                  F(gap, 4)});
      json.AddResult(results[i], harness::PolicyLabel(policies[i]), rate);
      ++i;
    }
  }
  table.Print();
  WriteCsv(csv, "results/pmm_fair.csv");
  WriteBenchJson(json, wall);
  return 0;
}
