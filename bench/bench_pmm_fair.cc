// Extension A3: PMM-Fair (the paper's Section 5.6 future work).
//
// On the multiclass workload plain PMM minimizes the system miss ratio by
// letting the dominant Small class pull it into Max mode, starving the
// Medium class (Figure 18's bias). PMM-Fair accepts administrator weights
// for the desired relative class miss ratios; with equal weights it
// should trade a little system-level performance for a much smaller gap
// between the two classes' miss ratios.

#include <cmath>

#include "bench_util.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("A3 extension: PMM-Fair class-fairness",
         "Section 5.6 future work, realized");

  harness::TablePrinter table({"small rate", "policy", "system",
                               "Medium", "Small", "|gap|"});
  harness::CsvWriter csv({"small_rate", "policy", "system_miss",
                          "medium_miss", "small_miss", "gap"});

  for (double rate : {0.4, 0.8, 1.2}) {
    for (int variant = 0; variant < 2; ++variant) {
      engine::PolicyConfig policy;
      if (variant == 0) {
        policy.kind = engine::PolicyKind::kPmm;
      } else {
        policy.kind = engine::PolicyKind::kPmmFair;
        policy.fair_weights = {1.0, 1.0};  // ask for equal miss ratios
      }
      engine::SystemSummary s =
          harness::RunOnce(harness::MulticlassConfig(rate, policy));
      double medium = s.per_class.empty() ? 0.0
                                          : s.per_class[0].miss_ratio;
      double small =
          s.per_class.size() > 1 ? s.per_class[1].miss_ratio : 0.0;
      double gap = std::fabs(medium - small);
      table.AddRow({F(rate, 2), harness::PolicyLabel(policy),
                    Pct(s.overall.miss_ratio), Pct(medium), Pct(small),
                    Pct(gap)});
      csv.AddRow({F(rate, 2), harness::PolicyLabel(policy),
                  F(s.overall.miss_ratio, 4), F(medium, 4), F(small, 4),
                  F(gap, 4)});
      std::fflush(stdout);
    }
  }
  table.Print();
  csv.WriteFile("results/pmm_fair.csv");
  std::printf("\nseries written to results/pmm_fair.csv\n");
  return 0;
}
