// Scale-out study (Section 5 extended): the baseline workload declustered
// across a sharded cluster. Sweeps shard count x arrival rate x placement
// skew x policy, plus a global-admission lane, and reports aggregate and
// per-shard miss ratios — the question being how much an overloaded
// single system gains from declustering, and how placement skew erodes
// that gain (the hot shard stays overloaded while cold shards idle).

#include <vector>

#include "bench_util.h"
#include "common/check.h"
#include "engine/sharded_rtdbs.h"

namespace {

/// One cluster point of the sweep.
struct Lane {
  int32_t shards;
  const char* placement;
  const char* admission;
  rtq::engine::PolicyConfig policy;
  double rate;
};

}  // namespace

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E18: scale-out across shards (declustered baseline)",
         "Section 5 extension (sharded cluster)");

  auto policies = harness::PoliciesOrDefault({{"max"}, {"minmax"}, {"pmm"}});

  const std::vector<int32_t> shard_counts = {1, 2, 4, 8};
  // hash is the no-skew reference; the skew lanes pin 60% / 80% of the
  // arrival stream to shard 0.
  const std::vector<const char*> placements = {"hash", "skew:hot=0.60",
                                               "skew:hot=0.80"};
  const std::vector<double> rates = {0.12, 0.24};

  std::vector<Lane> lanes;
  for (double rate : rates) {
    for (const char* placement : placements) {
      for (int32_t shards : shard_counts) {
        for (const auto& policy : policies) {
          lanes.push_back({shards, placement, "local", policy, rate});
        }
      }
    }
  }
  // Global-admission lane: Max admits greedily per shard; a cluster-wide
  // MPL cap is the only cross-shard brake. Compare against the hash/local
  // rows above at the same rate.
  for (int32_t shards : {2, 4, 8}) {
    lanes.push_back({shards, "hash", "global:mpl=12", {"max"}, 0.24});
  }

  std::vector<harness::RunSpec> specs;
  specs.reserve(lanes.size());
  for (const Lane& lane : lanes) {
    harness::RunSpec spec;
    spec.label = "s" + std::to_string(lane.shards) + " " + lane.placement +
                 " " + lane.admission + " " +
                 harness::PolicyLabel(lane.policy) + " @ " + F(lane.rate, 2);
    spec.config = harness::BaselineConfig(lane.rate, lane.policy);
    spec.duration = harness::ExperimentDuration();
    specs.push_back(std::move(spec));
  }

  // Custom job body: build a ShardedRtdbs instead of a plain Rtdbs, and
  // capture the per-shard summaries + coordinator counters alongside the
  // aggregate. Each worker writes only its own index — no locking needed.
  std::vector<std::vector<engine::SystemSummary>> per_shard(specs.size());
  std::vector<int64_t> refusals(specs.size(), 0);
  std::vector<int64_t> high_water(specs.size(), 0);
  auto job = [&](const harness::RunSpec& spec, size_t index) {
    const Lane& lane = lanes[index];
    engine::ShardConfig sc;
    sc.num_shards = lane.shards;
    sc.placement = lane.placement;
    sc.admission = lane.admission;
    auto t0 = Now();
    auto sys = engine::ShardedRtdbs::Create(spec.config, sc);
    RTQ_CHECK_MSG(sys.ok(), sys.status().ToString().c_str());
    sys.value()->RunUntil(spec.duration);
    harness::RunResult out;
    out.label = spec.label;
    out.config = spec.config;
    out.summary = sys.value()->Summarize();
    for (int32_t s = 0; s < lane.shards; ++s) {
      per_shard[index].push_back(sys.value()->SummarizeShard(s));
    }
    if (const core::ShardCoordinator* coord = sys.value()->coordinator()) {
      refusals[index] = coord->refusals();
      high_water[index] = coord->high_water();
    }
    out.wall_seconds = SecondsSince(t0);
    return out;
  };

  auto start = Now();
  std::vector<harness::RunResult> results =
      harness::RunPool(specs, harness::BenchJobs(), job);
  double wall = SecondsSince(start);

  harness::TablePrinter table({"rate", "placement", "admission", "shards",
                               "policy", "miss ratio", "shard0 miss",
                               "worst shard", "MPL", "queries"});
  harness::CsvWriter csv({"rate", "placement", "admission", "shards",
                          "policy", "miss_ratio", "shard0_miss_ratio",
                          "worst_shard_miss_ratio", "avg_mpl",
                          "completions"});
  harness::BenchJsonEmitter json("shards");
  json.AddConfig("rates", F(rates.front(), 2) + "-" + F(rates.back(), 2));
  json.AddConfig("global_mpl", "12");

  for (size_t i = 0; i < results.size(); ++i) {
    const Lane& lane = lanes[i];
    const engine::SystemSummary& s = results[i].summary;
    double worst = 0.0;
    for (const engine::SystemSummary& ss : per_shard[i]) {
      worst = std::max(worst, ss.overall.miss_ratio);
    }
    const double shard0 = per_shard[i].front().overall.miss_ratio;
    table.AddRow({F(lane.rate, 2), lane.placement, lane.admission,
                  std::to_string(lane.shards),
                  harness::PolicyLabel(lane.policy),
                  Pct(s.overall.miss_ratio), Pct(shard0), Pct(worst),
                  F(s.avg_mpl, 2), std::to_string(s.overall.completions)});
    csv.AddRow({F(lane.rate, 2), lane.placement, lane.admission,
                std::to_string(lane.shards),
                harness::PolicyLabel(lane.policy),
                F(s.overall.miss_ratio, 4), F(shard0, 4), F(worst, 4),
                F(s.avg_mpl, 3), std::to_string(s.overall.completions)});
    // Aggregate point, then one point per shard ("<label>#<s>") so the
    // drift gate also pins the placement split itself.
    json.AddResult(results[i], harness::PolicyLabel(lane.policy), lane.rate);
    for (size_t sh = 0; sh < per_shard[i].size(); ++sh) {
      harness::RunResult shard_point;
      shard_point.label = results[i].label + " #" + std::to_string(sh);
      shard_point.config = results[i].config;
      shard_point.summary = per_shard[i][sh];
      shard_point.wall_seconds = 0.0;
      json.AddResult(shard_point, harness::PolicyLabel(lane.policy),
                     lane.rate);
    }
    if (refusals[i] > 0 || high_water[i] > 0) {
      std::printf("%s: coordinator high-water %lld, refusals %lld\n",
                  results[i].label.c_str(),
                  static_cast<long long>(high_water[i]),
                  static_cast<long long>(refusals[i]));
    }
  }
  table.Print();
  WriteCsv(csv, "results/shards.csv");
  WriteBenchJson(json, wall);
  return 0;
}
