// Micro-benchmarks (google-benchmark) of the hot substrates: the event
// calendar, the least-squares fits PMM recomputes every batch, the
// allocation strategies, the LRU page cache, the disk geometry model,
// the MemoryManager reallocation path, and policy-registry dispatch.

#include <benchmark/benchmark.h>

#include <deque>

#include "buffer/lru_cache.h"
#include "common/arena.h"
#include "common/inline_callback.h"
#include "common/rng.h"
#include "core/memory_manager.h"
#include "core/policy_registry.h"
#include "core/strategy.h"
#include "model/disk.h"
#include "model/disk_geometry.h"
#include "sim/event_queue.h"
#include "sim/simulator.h"
#include "stats/quadratic_fit.h"

namespace {

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  rtq::Rng rng(1);
  for (auto _ : state) {
    rtq::sim::EventQueue q;
    for (int i = 0; i < state.range(0); ++i) {
      q.Schedule(rng.NextDouble(), [] {});
    }
    while (!q.Empty()) benchmark::DoNotOptimize(q.Pop().first);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(16384);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  rtq::Rng rng(2);
  for (auto _ : state) {
    rtq::sim::EventQueue q;
    std::vector<rtq::sim::EventId> ids;
    for (int i = 0; i < state.range(0); ++i) {
      ids.push_back(q.Schedule(rng.NextDouble(), [] {}));
    }
    for (size_t i = 0; i < ids.size(); i += 2) q.Cancel(ids[i]);
    while (!q.Empty()) benchmark::DoNotOptimize(q.Pop().first);
  }
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(4096);

// Steady-state calendar churn, the simulator's per-event signature: one
// schedule + one pop per iteration against a standing population, with a
// tunable fraction of cancellations (arg 1, percent). Sparse (5%)
// resembles the baseline workload — deadline events are cancelled when
// queries finish in time; dense (50%) stresses slab recycling and the
// lazy skim the way an overloaded firm-deadline run does.
void BM_EventQueueChurn(benchmark::State& state) {
  const size_t population = static_cast<size_t>(state.range(0));
  const int64_t cancel_pct = state.range(1);
  rtq::Rng rng(11);
  rtq::sim::EventQueue q;
  std::vector<rtq::sim::EventId> ids(population, rtq::sim::kInvalidEventId);
  double now = 0.0;
  for (size_t i = 0; i < population; ++i) {
    ids[i] = q.Schedule(rng.Uniform(0.0, 100.0), [] {});
  }
  size_t slot = 0;
  for (auto _ : state) {
    ids[slot] = q.Schedule(now + rng.Uniform(0.0, 100.0), [] {});
    slot = (slot + 1) % population;
    if (rng.UniformInt(0, 99) < cancel_pct) {
      // May hit an already-popped id; that O(1) rejection is part of the
      // realistic mix.
      q.Cancel(ids[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(population) - 1))]);
    }
    if (!q.Empty()) now = q.Pop().first;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EventQueueChurn)
    ->Args({1024, 5})
    ->Args({1024, 50})
    ->Args({16384, 5});

void BM_QuadraticFit(benchmark::State& state) {
  rtq::Rng rng(3);
  std::vector<std::pair<double, double>> points;
  for (int i = 0; i < 200; ++i) {
    double x = rng.Uniform(1.0, 30.0);
    points.emplace_back(x, 0.01 * x * x - 0.2 * x + 2.0);
  }
  for (auto _ : state) {
    rtq::stats::QuadraticFit fit;
    for (auto [x, y] : points) fit.Add(x, y);
    benchmark::DoNotOptimize(fit.Fit());
    benchmark::DoNotOptimize(fit.Classify());
  }
}
BENCHMARK(BM_QuadraticFit);

void BM_MinMaxAllocate(benchmark::State& state) {
  rtq::Rng rng(4);
  std::vector<rtq::core::MemRequest> queries;
  for (int i = 0; i < state.range(0); ++i) {
    rtq::core::MemRequest q;
    q.id = static_cast<rtq::QueryId>(i);
    q.deadline = rng.Uniform(0.0, 1000.0);
    q.min_memory = 38;
    q.max_memory = rng.UniformInt(600, 2000);
    queries.push_back(q);
  }
  std::sort(queries.begin(), queries.end(),
            [](const auto& a, const auto& b) {
              return a.deadline < b.deadline;
            });
  rtq::core::MinMaxStrategy strategy(-1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy.Allocate(queries, 2560));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MinMaxAllocate)->Arg(16)->Arg(128);

void BM_ProportionalAllocate(benchmark::State& state) {
  rtq::Rng rng(5);
  std::vector<rtq::core::MemRequest> queries;
  for (int i = 0; i < 64; ++i) {
    rtq::core::MemRequest q;
    q.id = static_cast<rtq::QueryId>(i);
    q.deadline = rng.Uniform(0.0, 1000.0);
    q.min_memory = 38;
    q.max_memory = rng.UniformInt(600, 2000);
    queries.push_back(q);
  }
  rtq::core::ProportionalStrategy strategy(-1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy.Allocate(queries, 2560));
  }
}
BENCHMARK(BM_ProportionalAllocate);

void BM_LruCacheChurn(benchmark::State& state) {
  rtq::Rng rng(6);
  rtq::buffer::LruCache cache(1024);
  for (auto _ : state) {
    uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 4095));
    if (!cache.Lookup(key)) cache.Insert(key);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruCacheChurn);

// Pure promote path: every probe hits a resident key, so the cost is one
// hash find plus the intrusive head-splice — the buffer-manager fast
// path a query pays per page reference once its working set is warm.
void BM_LruTouch(benchmark::State& state) {
  rtq::Rng rng(12);
  rtq::buffer::LruCache cache(1024);
  for (uint64_t key = 0; key < 1024; ++key) cache.Insert(key);
  for (auto _ : state) {
    uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 1023));
    benchmark::DoNotOptimize(cache.Lookup(key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruTouch);

// The per-request disk timing model: every simulated I/O pays one
// AccessTime evaluation, so this sits squarely on the event hot path.
void BM_DiskGeometryAccessTime(benchmark::State& state) {
  rtq::Rng rng(7);
  rtq::model::DiskGeometry geometry{rtq::model::DiskParams{}};
  const rtq::PageCount capacity = geometry.params().capacity();
  std::vector<std::pair<rtq::Cylinder, rtq::PageCount>> accesses;
  for (int i = 0; i < 1024; ++i) {
    accesses.emplace_back(
        static_cast<rtq::Cylinder>(
            rng.UniformInt(0, geometry.params().num_cylinders - 1)),
        rng.UniformInt(0, capacity - 64));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto [head, start] = accesses[i++ & 1023];
    benchmark::DoNotOptimize(geometry.AccessTime(head, start, 6));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiskGeometryAccessTime);

// The elevator pick at a fixed queue depth (arg 0): submit `depth`
// requests in a handful of deadline buckets (so the cylinder-sweep
// tie-break, not just ED, decides) and drain the disk. Each service
// completion pays one PickByElevator over the remaining queue, which is
// what the (deadline, cylinder, seq) index made O(log n).
void BM_DiskElevatorDrain(benchmark::State& state) {
  const int depth = static_cast<int>(state.range(0));
  rtq::Rng rng(12);
  rtq::model::DiskParams params;
  struct Req {
    double deadline;
    rtq::PageCount start;
  };
  std::vector<Req> reqs;
  for (int i = 0; i < depth; ++i) {
    reqs.push_back(Req{100.0 * static_cast<double>(rng.UniformInt(1, 4)),
                       rng.UniformInt(0, params.capacity() - 7)});
  }
  for (auto _ : state) {
    rtq::sim::Simulator sim;
    rtq::model::Disk disk(&sim, params, 0);
    for (const Req& r : reqs) {
      rtq::model::DiskRequest req;
      req.query = 1;
      req.deadline = r.deadline;
      req.start_page = r.start;
      req.pages = 6;
      disk.Submit(std::move(req));
    }
    sim.RunToCompletion();
  }
  state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_DiskElevatorDrain)->Arg(4)->Arg(32)->Arg(256);

// MemoryManager::Reallocate with N live queries: the full recompute the
// engine triggers on every arrival, completion, and policy revision.
void BM_MemoryManagerReallocate(benchmark::State& state) {
  rtq::Rng rng(8);
  rtq::core::MemoryManager mm(
      2560, std::make_unique<rtq::core::MinMaxStrategy>(-1),
      [](rtq::QueryId, rtq::PageCount) {});
  for (int i = 0; i < state.range(0); ++i) {
    rtq::core::MemRequest q;
    q.id = static_cast<rtq::QueryId>(i);
    q.deadline = rng.Uniform(0.0, 1000.0);
    q.min_memory = 38;
    q.max_memory = rng.UniformInt(600, 2000);
    mm.AddQuery(q);
  }
  for (auto _ : state) {
    mm.Reallocate();
    benchmark::DoNotOptimize(mm.allocated_pages());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MemoryManagerReallocate)->Arg(16)->Arg(128);

// Arrival/completion churn at a standing population of `live` queries
// under an MPL cap — the overloaded steady state where most of the
// population waits behind the admission frontier. Each iteration is one
// completion (earliest deadline leaves: full recompute) plus one arrival
// (latest deadline: eligible for the stable-tail fast path), the exact
// membership churn the engine generates per finished query.
void BM_MemoryManagerChurn(benchmark::State& state) {
  const int64_t live = state.range(0);
  rtq::Rng rng(13);
  rtq::core::MemoryManager mm(
      2560, std::make_unique<rtq::core::MinMaxStrategy>(8),
      [](rtq::QueryId, rtq::PageCount) {});
  double now = 0.0;
  rtq::QueryId next_id = 0;
  std::deque<rtq::QueryId> fifo;
  auto arrive = [&] {
    rtq::core::MemRequest q;
    q.id = next_id++;
    q.deadline = now + rng.Uniform(50.0, 500.0);
    q.min_memory = 38;
    q.max_memory = rng.UniformInt(600, 2000);
    fifo.push_back(q.id);
    mm.AddQuery(q);
  };
  for (int64_t i = 0; i < live; ++i) arrive();
  for (auto _ : state) {
    now += 1.0;
    arrive();
    mm.RemoveQuery(fifo.front());
    fifo.pop_front();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemoryManagerChurn)->Arg(32)->Arg(256);

// Spec string -> policy instance through the registry: the dispatch
// cost the PolicyRegistry redesign added to system construction (it
// runs once per Rtdbs::Create, so it only needs to stay trivially
// cheap, not free).
void BM_PolicyRegistryCreate(benchmark::State& state) {
  const std::string specs[] = {"max", "minmax:10", "pmm",
                               "pmm-fair:w=1,2"};
  size_t i = 0;
  for (auto _ : state) {
    auto policy =
        rtq::core::PolicyRegistry::Global().Create(specs[i++ & 3]);
    benchmark::DoNotOptimize(policy.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyRegistryCreate);

// The allocation pattern of one query phase: a burst of small
// mixed-size node allocations, then everything freed at once. Arg 0
// plays it against the global heap (malloc per node, free per node);
// arg 1 against a phase-scoped Arena (bump pointer, one Reset). The gap
// is what the per-query runtime arenas buy on admission.
void BM_ArenaVsMalloc(benchmark::State& state) {
  const bool use_arena = state.range(0) != 0;
  constexpr int kNodes = 256;
  constexpr size_t kSizes[] = {16, 24, 40, 64, 96};
  rtq::Arena arena;
  std::vector<void*> ptrs;
  ptrs.reserve(kNodes);
  for (auto _ : state) {
    if (use_arena) {
      for (int i = 0; i < kNodes; ++i) {
        benchmark::DoNotOptimize(arena.Allocate(kSizes[i % 5], 8));
      }
      arena.Reset();
    } else {
      ptrs.clear();
      for (int i = 0; i < kNodes; ++i) {
        ptrs.push_back(::operator new(kSizes[i % 5]));
      }
      for (void* p : ptrs) ::operator delete(p);
    }
  }
  state.SetItemsProcessed(state.iterations() * kNodes);
  state.SetLabel(use_arena ? "arena" : "malloc");
}
BENCHMARK(BM_ArenaVsMalloc)->Arg(0)->Arg(1);

// One simulated event's callback life-cycle: construct in a slot,
// relocate once (slab slot -> simulator-loop holder, as PopInto does),
// dispatch through the ops table. The capture is two pointers and a
// payload — the shape of the engine's completion continuations.
void BM_InlineCallbackDispatch(benchmark::State& state) {
  uint64_t sink = 0;
  uint64_t* sink_ptr = &sink;
  int64_t payload = 0;
  rtq::InlineCallback<48> slot;
  for (auto _ : state) {
    ++payload;
    slot = [sink_ptr, payload] { *sink_ptr += static_cast<uint64_t>(payload); };
    rtq::InlineCallback<48> holder(std::move(slot));
    holder();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_InlineCallbackDispatch);

}  // namespace
