// Micro-benchmarks (google-benchmark) of the hot substrates: the event
// calendar, the least-squares fits PMM recomputes every batch, the
// allocation strategies, the LRU page cache, the disk geometry model,
// the MemoryManager reallocation path, and policy-registry dispatch.

#include <benchmark/benchmark.h>

#include "buffer/lru_cache.h"
#include "common/rng.h"
#include "core/memory_manager.h"
#include "core/policy_registry.h"
#include "core/strategy.h"
#include "model/disk_geometry.h"
#include "sim/event_queue.h"
#include "stats/quadratic_fit.h"

namespace {

void BM_EventQueueScheduleAndPop(benchmark::State& state) {
  rtq::Rng rng(1);
  for (auto _ : state) {
    rtq::sim::EventQueue q;
    for (int i = 0; i < state.range(0); ++i) {
      q.Schedule(rng.NextDouble(), [] {});
    }
    while (!q.Empty()) benchmark::DoNotOptimize(q.Pop().first);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_EventQueueScheduleAndPop)->Arg(1024)->Arg(16384);

void BM_EventQueueCancelHeavy(benchmark::State& state) {
  rtq::Rng rng(2);
  for (auto _ : state) {
    rtq::sim::EventQueue q;
    std::vector<rtq::sim::EventId> ids;
    for (int i = 0; i < state.range(0); ++i) {
      ids.push_back(q.Schedule(rng.NextDouble(), [] {}));
    }
    for (size_t i = 0; i < ids.size(); i += 2) q.Cancel(ids[i]);
    while (!q.Empty()) benchmark::DoNotOptimize(q.Pop().first);
  }
}
BENCHMARK(BM_EventQueueCancelHeavy)->Arg(4096);

void BM_QuadraticFit(benchmark::State& state) {
  rtq::Rng rng(3);
  std::vector<std::pair<double, double>> points;
  for (int i = 0; i < 200; ++i) {
    double x = rng.Uniform(1.0, 30.0);
    points.emplace_back(x, 0.01 * x * x - 0.2 * x + 2.0);
  }
  for (auto _ : state) {
    rtq::stats::QuadraticFit fit;
    for (auto [x, y] : points) fit.Add(x, y);
    benchmark::DoNotOptimize(fit.Fit());
    benchmark::DoNotOptimize(fit.Classify());
  }
}
BENCHMARK(BM_QuadraticFit);

void BM_MinMaxAllocate(benchmark::State& state) {
  rtq::Rng rng(4);
  std::vector<rtq::core::MemRequest> queries;
  for (int i = 0; i < state.range(0); ++i) {
    rtq::core::MemRequest q;
    q.id = static_cast<rtq::QueryId>(i);
    q.deadline = rng.Uniform(0.0, 1000.0);
    q.min_memory = 38;
    q.max_memory = rng.UniformInt(600, 2000);
    queries.push_back(q);
  }
  std::sort(queries.begin(), queries.end(),
            [](const auto& a, const auto& b) {
              return a.deadline < b.deadline;
            });
  rtq::core::MinMaxStrategy strategy(-1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy.Allocate(queries, 2560));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MinMaxAllocate)->Arg(16)->Arg(128);

void BM_ProportionalAllocate(benchmark::State& state) {
  rtq::Rng rng(5);
  std::vector<rtq::core::MemRequest> queries;
  for (int i = 0; i < 64; ++i) {
    rtq::core::MemRequest q;
    q.id = static_cast<rtq::QueryId>(i);
    q.deadline = rng.Uniform(0.0, 1000.0);
    q.min_memory = 38;
    q.max_memory = rng.UniformInt(600, 2000);
    queries.push_back(q);
  }
  rtq::core::ProportionalStrategy strategy(-1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(strategy.Allocate(queries, 2560));
  }
}
BENCHMARK(BM_ProportionalAllocate);

void BM_LruCacheChurn(benchmark::State& state) {
  rtq::Rng rng(6);
  rtq::buffer::LruCache cache(1024);
  for (auto _ : state) {
    uint64_t key = static_cast<uint64_t>(rng.UniformInt(0, 4095));
    if (!cache.Lookup(key)) cache.Insert(key);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_LruCacheChurn);

// The per-request disk timing model: every simulated I/O pays one
// AccessTime evaluation, so this sits squarely on the event hot path.
void BM_DiskGeometryAccessTime(benchmark::State& state) {
  rtq::Rng rng(7);
  rtq::model::DiskGeometry geometry{rtq::model::DiskParams{}};
  const rtq::PageCount capacity = geometry.params().capacity();
  std::vector<std::pair<rtq::Cylinder, rtq::PageCount>> accesses;
  for (int i = 0; i < 1024; ++i) {
    accesses.emplace_back(
        static_cast<rtq::Cylinder>(
            rng.UniformInt(0, geometry.params().num_cylinders - 1)),
        rng.UniformInt(0, capacity - 64));
  }
  size_t i = 0;
  for (auto _ : state) {
    auto [head, start] = accesses[i++ & 1023];
    benchmark::DoNotOptimize(geometry.AccessTime(head, start, 6));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DiskGeometryAccessTime);

// MemoryManager::Reallocate with N live queries: the full recompute the
// engine triggers on every arrival, completion, and policy revision.
void BM_MemoryManagerReallocate(benchmark::State& state) {
  rtq::Rng rng(8);
  rtq::core::MemoryManager mm(
      2560, std::make_unique<rtq::core::MinMaxStrategy>(-1),
      [](rtq::QueryId, rtq::PageCount) {});
  for (int i = 0; i < state.range(0); ++i) {
    rtq::core::MemRequest q;
    q.id = static_cast<rtq::QueryId>(i);
    q.deadline = rng.Uniform(0.0, 1000.0);
    q.min_memory = 38;
    q.max_memory = rng.UniformInt(600, 2000);
    mm.AddQuery(q);
  }
  for (auto _ : state) {
    mm.Reallocate();
    benchmark::DoNotOptimize(mm.allocated_pages());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_MemoryManagerReallocate)->Arg(16)->Arg(128);

// Spec string -> policy instance through the registry: the dispatch
// cost the PolicyRegistry redesign added to system construction (it
// runs once per Rtdbs::Create, so it only needs to stay trivially
// cheap, not free).
void BM_PolicyRegistryCreate(benchmark::State& state) {
  const std::string specs[] = {"max", "minmax:10", "pmm",
                               "pmm-fair:w=1,2"};
  size_t i = 0;
  for (auto _ : state) {
    auto policy =
        rtq::core::PolicyRegistry::Global().Create(specs[i++ & 3]);
    benchmark::DoNotOptimize(policy.ok());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PolicyRegistryCreate);

}  // namespace
