// UtilLow sensitivity (paper Section 5.4): PMM run with UtilLow varied
// from 0.50 to 0.80 on the baseline workload. The paper reports
// "approximately the same performance for the different UtilLow values"
// because the desirable-utilization band only matters during startup.

#include "bench_util.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E13: PMM sensitivity to UtilLow",
         "Section 5.4 (prose experiment)");

  harness::TablePrinter table({"UtilLow", "miss ratio", "avg MPL",
                               "disk util"});
  harness::CsvWriter csv({"util_low", "miss_ratio", "avg_mpl",
                          "avg_disk_util"});

  for (double util_low : {0.50, 0.60, 0.70, 0.80}) {
    engine::PolicyConfig policy;
    policy.kind = engine::PolicyKind::kPmm;
    engine::SystemConfig config = harness::BaselineConfig(0.065, policy);
    config.pmm.util_low = util_low;
    if (config.pmm.util_high <= util_low) {
      config.pmm.util_high = util_low + 0.05;
    }
    engine::SystemSummary s = harness::RunOnce(config);
    table.AddRow({F(util_low, 2), Pct(s.overall.miss_ratio),
                  F(s.avg_mpl, 2), Pct(s.avg_disk_utilization)});
    csv.AddRow({F(util_low, 2), F(s.overall.miss_ratio, 4),
                F(s.avg_mpl, 3), F(s.avg_disk_utilization, 4)});
    std::fflush(stdout);
  }
  table.Print();
  csv.WriteFile("results/util_sensitivity.csv");
  std::printf("\nseries written to results/util_sensitivity.csv\n");
  return 0;
}
