// UtilLow sensitivity (paper Section 5.4): PMM run with UtilLow varied
// from 0.50 to 0.80 on the baseline workload. The paper reports
// "approximately the same performance for the different UtilLow values"
// because the desirable-utilization band only matters during startup.

#include "bench_util.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E13: PMM sensitivity to UtilLow",
         "Section 5.4 (prose experiment)");

  const double rate = 0.065;
  const std::vector<double> util_lows = {0.50, 0.60, 0.70, 0.80};

  std::vector<harness::RunSpec> specs;
  for (double util_low : util_lows) {
    engine::SystemConfig config =
        harness::BaselineConfig(rate, {"pmm"});
    config.pmm.util_low = util_low;
    if (config.pmm.util_high <= util_low) {
      config.pmm.util_high = util_low + 0.05;
    }
    specs.push_back({"UtilLow=" + F(util_low, 2), config});
  }

  auto start = Now();
  std::vector<harness::RunResult> results = harness::RunPool(specs);
  double wall = SecondsSince(start);

  harness::TablePrinter table({"UtilLow", "miss ratio", "avg MPL",
                               "disk util"});
  harness::CsvWriter csv({"util_low", "miss_ratio", "avg_mpl",
                          "avg_disk_util"});
  harness::BenchJsonEmitter json("util_sensitivity");
  json.AddConfig("lambda_fixed", F(rate, 3));

  for (size_t i = 0; i < results.size(); ++i) {
    const engine::SystemSummary& s = results[i].summary;
    table.AddRow({F(util_lows[i], 2), Pct(s.overall.miss_ratio),
                  F(s.avg_mpl, 2), Pct(s.avg_disk_utilization)});
    csv.AddRow({F(util_lows[i], 2), F(s.overall.miss_ratio, 4),
                F(s.avg_mpl, 3), F(s.avg_disk_utilization, 4)});
    json.AddResult(results[i], "PMM", rate);
  }
  table.Print();
  WriteCsv(csv, "results/util_sensitivity.csv");
  WriteBenchJson(json, wall);
  return 0;
}
