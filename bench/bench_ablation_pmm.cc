// Ablation A2: PMM with pieces disabled.
//
//   full        — miss-ratio projection + RU heuristic (the paper's PMM)
//   no-proj     — RU heuristic only (Section 3.1.2 alone)
//   no-ru       — projection only; keeps the current MPL when the
//                 projection fails
//   realized-x  — the projection fits against the batch's realized MPL
//                 instead of the target setting
//
// Quantifies how much each mechanism contributes on the baseline at a
// heavy load.

#include "bench_util.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("A2 ablation: PMM internal mechanisms",
         "design-choice ablation (DESIGN.md)");

  struct Variant {
    const char* name;
    bool disable_projection;
    bool disable_ru;
    bool fit_realized;
  };
  const Variant variants[] = {
      {"full", false, false, false},
      {"no-proj", true, false, false},
      {"no-ru", false, true, false},
      {"realized-x", false, false, true},
  };

  const std::vector<double> rates = {0.06, 0.075};

  std::vector<harness::RunSpec> specs;
  for (double rate : rates) {
    for (const Variant& v : variants) {
      engine::SystemConfig config =
          harness::BaselineConfig(rate, {"pmm"});
      config.pmm.disable_projection = v.disable_projection;
      config.pmm.disable_ru_heuristic = v.disable_ru;
      config.pmm.fit_realized_mpl = v.fit_realized;
      specs.push_back(
          {std::string(v.name) + " @ " + F(rate, 3), config});
    }
  }

  auto start = Now();
  std::vector<harness::RunResult> results = harness::RunPool(specs);
  double wall = SecondsSince(start);

  harness::TablePrinter table({"lambda", "variant", "miss ratio",
                               "avg MPL", "adaptations"});
  harness::CsvWriter csv({"arrival_rate", "variant", "miss_ratio",
                          "avg_mpl", "adaptations"});
  harness::BenchJsonEmitter json("ablation_pmm");

  size_t i = 0;
  for (double rate : rates) {
    for (const Variant& v : variants) {
      const engine::SystemSummary& s = results[i].summary;
      int64_t adaptations =
          static_cast<int64_t>(results[i].pmm_trace.size());
      table.AddRow({F(rate, 3), v.name, Pct(s.overall.miss_ratio),
                    F(s.avg_mpl, 2), std::to_string(adaptations)});
      csv.AddRow({F(rate, 3), v.name, F(s.overall.miss_ratio, 4),
                  F(s.avg_mpl, 3), std::to_string(adaptations)});
      json.AddResult(results[i], v.name, rate);
      ++i;
    }
  }
  table.Print();
  WriteCsv(csv, "results/ablation_pmm.csv");
  WriteBenchJson(json, wall);
  return 0;
}
