// Headroom study: how much missed-deadline ratio is left on the table
// between the adaptive policies and the clairvoyant "oracle-ed" bound?
//
// Sweeps the admission suite — PMM, the forecasting variant
// (pmm-predict), the per-class quota variant (pmm-class),
// feasibility-shedding EDF (edf-shed), wall-clock-batched PMM
// (pmm-tick) — plus the oracle across two Section 5 workload grids:
//
//   base — the Section 5.1 memory-bottlenecked baseline, arrival rate
//          0.04..0.08 q/s (Figure 3's x-axis);
//   mc   — the Section 5.6 multiclass workload, Medium fixed at
//          0.065 q/s, Small swept over 0.2..1.2 q/s (Figure 17's
//          x-axis; rates > 0 so both classes exist and the per-class
//          policies have two classes to arbitrate).
//
// Per point, the trajectory (results/BENCH_headroom.json) records each
// policy's miss ratio and its "gap_to_oracle" — miss ratio minus
// oracle-ed's at the same workload point. The gap is SIGNED: oracle-ed
// is clairvoyant about information (it reads the exact cost-model
// estimate deadline assignment used, progress-credited via
// core::RemainingEstimate so finished work is never re-charged) but
// crude in discipline (all-or-nothing Max grants in deadline order —
// no graceful degradation through the min/max range), so a positive
// gap is headroom an
// adaptive policy could still close while a negative gap means the
// policy already beats the clairvoyant filter. RTQ_POLICIES overrides the
// policy list of BOTH grids (pick specs valid for one and two classes,
// e.g. "pmm,edf-shed"); the gap column needs "oracle-ed" in the sweep
// and is omitted without it.

#include <cmath>

#include "bench_util.h"
#include "core/policy_registry.h"

namespace {

/// Index of the oracle-ed lane in `policies`, or -1 when absent.
int OracleIndex(const std::vector<rtq::engine::PolicyConfig>& policies) {
  for (size_t p = 0; p < policies.size(); ++p) {
    auto spec = rtq::core::PolicySpec::Parse(policies[p].ResolvedSpec());
    if (spec.ok() && spec.value().name == "oracle-ed") {
      return static_cast<int>(p);
    }
  }
  return -1;
}

}  // namespace

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E17: headroom vs the clairvoyant oracle",
         "Sections 5.1 + 5.6 grids; extends Figures 3 and 17");

  struct Grid {
    const char* key;  ///< label prefix + JSON config key
    std::vector<double> rates;
    std::vector<engine::PolicyConfig> policies;
  };
  std::vector<Grid> grids = {
      {"base",
       {0.04, 0.05, 0.06, 0.07, 0.08},
       harness::PoliciesOrDefault({{"pmm"},
                                   {"pmm-predict"},
                                   {"edf-shed"},
                                   {"pmm-tick:ms=60000"},
                                   {"oracle-ed"}})},
      {"mc",
       {0.2, 0.6, 1.0, 1.2},
       harness::PoliciesOrDefault({{"pmm"},
                                   {"pmm-predict"},
                                   {"pmm-class:targets=6,10"},
                                   {"edf-shed"},
                                   {"pmm-tick:ms=60000"},
                                   {"oracle-ed"}})},
  };

  std::vector<harness::RunSpec> specs;
  for (const Grid& grid : grids) {
    for (double rate : grid.rates) {
      for (const auto& policy : grid.policies) {
        std::string label = harness::PolicyLabel(policy) + " @ " +
                            grid.key + " " + F(rate, 3);
        specs.push_back({label, grid.key == std::string("base")
                                    ? harness::BaselineConfig(rate, policy)
                                    : harness::MulticlassConfig(rate,
                                                                policy)});
      }
    }
  }

  auto start = Now();
  std::vector<harness::RunResult> results = harness::RunPool(specs);
  double wall = SecondsSince(start);

  harness::CsvWriter csv({"grid", "rate", "policy", "miss_ratio",
                          "oracle_miss_ratio", "gap_to_oracle"});
  harness::BenchJsonEmitter json("headroom");
  json.AddConfig("grid_base", "Section 5.1 baseline, lambda sweep");
  json.AddConfig("grid_mc",
                 "Section 5.6 multiclass, Small-class rate sweep");

  size_t i = 0;
  for (const Grid& grid : grids) {
    int oracle = OracleIndex(grid.policies);
    harness::TablePrinter miss_table(
        harness::PolicyColumns(std::string(grid.key) + " rate",
                               grid.policies));
    harness::TablePrinter gap_table(
        harness::PolicyColumns(std::string(grid.key) + " rate (gap, pp)",
                               grid.policies));
    for (double rate : grid.rates) {
      double oracle_miss =
          oracle >= 0
              ? results[i + static_cast<size_t>(oracle)].summary.overall
                    .miss_ratio
              : std::nan("");
      std::vector<std::string> miss_row{F(rate, 3)};
      std::vector<std::string> gap_row{F(rate, 3)};
      for (const auto& policy : grid.policies) {
        const engine::SystemSummary& s = results[i].summary;
        double gap = s.overall.miss_ratio - oracle_miss;  // NaN sans oracle
        miss_row.push_back(Pct(s.overall.miss_ratio));
        gap_row.push_back(std::isfinite(gap) ? F(gap * 100.0, 1)
                                             : std::string("-"));
        csv.AddRow({grid.key, F(rate, 3), harness::PolicyLabel(policy),
                    F(s.overall.miss_ratio, 4),
                    std::isfinite(oracle_miss) ? F(oracle_miss, 4)
                                               : std::string(""),
                    std::isfinite(gap) ? F(gap, 4) : std::string("")});
        json.AddResult(results[i], harness::PolicyLabel(policy), rate, gap);
        ++i;
      }
      miss_table.AddRow(miss_row);
      gap_table.AddRow(gap_row);
    }
    std::printf("%s grid: miss ratio per policy\n", grid.key);
    miss_table.Print();
    std::printf("\n%s grid: signed headroom vs oracle-ed (percentage "
                "points; negative = beats the clairvoyant filter)\n",
                grid.key);
    gap_table.Print();
    std::printf("\n");
  }

  WriteCsv(csv, "results/headroom.csv");
  WriteBenchJson(json, wall);
  return 0;
}
