// Moderate disk contention (paper Section 5.2): the baseline workload on
// 6 disks instead of 10, comparing Max, MinMax, MinMax-10 and PMM.
//
// Regenerates Figures 8 (miss ratio), 9 (disk utilization), 10 (MPL).
// Note (EXPERIMENTS.md): our simulator has somewhat more effective disk
// capacity per query than the authors', so MinMax's thrashing crossover
// is shifted toward higher arrival rates than in the paper.

#include "bench_util.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E7-E9: moderate disk contention (6 disks)",
         "Figures 8, 9, 10 (Section 5.2)");

  auto policies = harness::PoliciesOrDefault(
      {{"max"}, {"minmax"}, {"minmax:10"}, {"pmm"}});

  const std::vector<double> rates = {0.04, 0.05, 0.06, 0.07, 0.08};

  std::vector<harness::RunSpec> specs;
  for (double rate : rates) {
    for (const auto& policy : policies) {
      specs.push_back({harness::PolicyLabel(policy) + " @ " + F(rate, 3),
                       harness::DiskContentionConfig(rate, policy)});
    }
  }

  auto start = Now();
  std::vector<harness::RunResult> results = harness::RunPool(specs);
  double wall = SecondsSince(start);

  harness::TablePrinter fig8(harness::PolicyColumns("lambda", policies));
  harness::TablePrinter fig9 = fig8;
  harness::TablePrinter fig10 = fig8;
  harness::CsvWriter csv({"arrival_rate", "policy", "miss_ratio",
                          "avg_disk_util", "avg_mpl", "avg_exec"});
  harness::BenchJsonEmitter json("disk_contention");

  size_t i = 0;
  for (double rate : rates) {
    std::vector<std::string> r8{F(rate, 3)}, r9{F(rate, 3)},
        r10{F(rate, 3)};
    for (const auto& policy : policies) {
      const engine::SystemSummary& s = results[i].summary;
      r8.push_back(Pct(s.overall.miss_ratio));
      r9.push_back(Pct(s.avg_disk_utilization));
      r10.push_back(F(s.avg_mpl, 2));
      csv.AddRow({F(rate, 3), harness::PolicyLabel(policy),
                  F(s.overall.miss_ratio, 4), F(s.avg_disk_utilization, 4),
                  F(s.avg_mpl, 3), F(s.overall.avg_exec, 2)});
      json.AddResult(results[i], harness::PolicyLabel(policy), rate);
      ++i;
    }
    fig8.AddRow(r8);
    fig9.AddRow(r9);
    fig10.AddRow(r10);
  }

  std::printf("Figure 8: miss ratio (disk contention)\n");
  fig8.Print();
  std::printf("\nFigure 9: average disk utilization\n");
  fig9.Print();
  std::printf("\nFigure 10: observed average MPL\n");
  fig10.Print();
  WriteCsv(csv, "results/disk_contention.csv");
  WriteBenchJson(json, wall);
  return 0;
}
