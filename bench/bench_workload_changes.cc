// Workload changes (paper Section 5.3): the offered class alternates
// between Medium joins (memory-constrained: MinMax territory) and Small
// joins (disk-bound: Max territory) every 2-5 simulated hours on 6 disks.
//
// Regenerates Figures 12-14 (per-interval miss ratios under Max, MinMax,
// PMM) and Figure 15 (PMM's MPL trace across the alternation), and
// reports how many workload changes PMM's detector flagged.

#include "bench_util.h"

namespace {

struct IntervalResult {
  bool medium;
  rtq::engine::ClassSummary summary;
};

std::vector<IntervalResult> RunAlternating(
    const rtq::engine::PolicyConfig& policy, int intervals,
    double interval_hours, const rtq::engine::Rtdbs** out_sys,
    std::unique_ptr<rtq::engine::Rtdbs>* holder) {
  using namespace rtq;
  engine::SystemConfig config = harness::WorkloadChangeConfig(
      policy, /*medium_active=*/true, /*small_active=*/false);
  auto sys = engine::Rtdbs::Create(config);
  RTQ_CHECK_MSG(sys.ok(), sys.status().ToString().c_str());
  *holder = std::move(sys).value();
  engine::Rtdbs& rtdbs = **holder;
  *out_sys = &rtdbs;

  std::vector<IntervalResult> results;
  double interval_s = interval_hours * 3600.0;
  for (int i = 0; i < intervals; ++i) {
    bool medium = i % 2 == 0;
    if (i > 0) {
      if (medium) {
        rtdbs.source().Deactivate(1);
        rtdbs.source().Activate(0);
      } else {
        rtdbs.source().Deactivate(0);
        rtdbs.source().Activate(1);
      }
    }
    double from = i * interval_s;
    double to = (i + 1) * interval_s;
    rtdbs.RunUntil(to);
    IntervalResult r;
    r.medium = medium;
    r.summary = engine::MetricsCollector::WindowSummary(
        rtdbs.metrics().records(), from, to, /*query_class=*/-1);
    results.push_back(r);
  }
  return results;
}

}  // namespace

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E11-E12: alternating Small/Medium workload (6 disks)",
         "Figures 12, 13, 14, 15 (Section 5.3)");

  const int intervals = 6;
  const double interval_hours =
      harness::ExperimentDuration() / 3600.0 / 2.5;

  std::vector<engine::PolicyConfig> policies(3);
  policies[0].kind = engine::PolicyKind::kMax;
  policies[1].kind = engine::PolicyKind::kMinMax;
  policies[2].kind = engine::PolicyKind::kPmm;
  const char* names[] = {"Max", "MinMax", "PMM"};

  harness::TablePrinter table({"interval", "class", "Max", "MinMax",
                               "PMM"});
  harness::CsvWriter csv({"interval", "class", "policy", "miss_ratio",
                          "completions"});

  std::vector<std::vector<IntervalResult>> all;
  const engine::Rtdbs* pmm_sys = nullptr;
  std::unique_ptr<engine::Rtdbs> holders[3];
  for (int p = 0; p < 3; ++p) {
    const engine::Rtdbs* sys = nullptr;
    all.push_back(RunAlternating(policies[p], intervals, interval_hours,
                                 &sys, &holders[p]));
    if (p == 2) pmm_sys = sys;
    for (int i = 0; i < intervals; ++i) {
      csv.AddRow({std::to_string(i), all[p][i].medium ? "Medium" : "Small",
                  names[p], F(all[p][i].summary.miss_ratio, 4),
                  std::to_string(all[p][i].summary.completions)});
    }
  }

  for (int i = 0; i < intervals; ++i) {
    table.AddRow({std::to_string(i + 1),
                  all[0][i].medium ? "Medium" : "Small",
                  Pct(all[0][i].summary.miss_ratio),
                  Pct(all[1][i].summary.miss_ratio),
                  Pct(all[2][i].summary.miss_ratio)});
  }
  std::printf("Figures 12-14: per-interval miss ratios\n");
  table.Print();

  // Figure 15: PMM MPL / mode trace.
  std::printf("\nFigure 15: PMM adaptation across workload changes\n");
  harness::TablePrinter trace({"t(s)", "mode", "target MPL",
                               "workload change?"});
  int64_t changes = 0;
  for (const auto& pt : pmm_sys->pmm()->trace()) {
    changes += pt.workload_change;
    trace.AddRow({F(pt.time, 0),
                  pt.mode == core::PmmController::Mode::kMax ? "Max"
                                                             : "MinMax",
                  std::to_string(pt.target_mpl),
                  pt.workload_change ? "YES" : ""});
  }
  trace.Print();
  std::printf("\nPMM detected %lld workload changes over %d alternations\n",
              static_cast<long long>(changes), intervals - 1);
  csv.WriteFile("results/workload_changes.csv");
  std::printf("series written to results/workload_changes.csv\n");
  return 0;
}
