// Workload changes (paper Section 5.3): the offered class alternates
// between Medium joins (memory-constrained: MinMax territory) and Small
// joins (disk-bound: Max territory) every 2-5 simulated hours on 6 disks.
//
// Regenerates Figures 12-14 (per-interval miss ratios under Max, MinMax,
// PMM) and Figure 15 (PMM's MPL trace across the alternation), and
// reports how many workload changes PMM's detector flagged.
//
// The alternation itself is the scenario engine's "mixshift" generator —
// a scripted per-class rate schedule that reproduces the old hand-rolled
// Activate/Deactivate flips draw-for-draw (pinned by
// tests/test_scenario_equivalence.cc) — so the job body is one plain run
// plus per-interval window summaries.

#include <chrono>

#include "bench_util.h"
#include "workload/trace.h"

namespace {

struct IntervalResult {
  bool medium;
  rtq::engine::ClassSummary summary;
};

}  // namespace

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E11-E12: alternating Small/Medium workload (6 disks)",
         "Figures 12, 13, 14, 15 (Section 5.3)");

  const int intervals = 6;
  const double interval_s = harness::ExperimentDuration() / 2.5;
  const std::string scenario =
      "mixshift:interval=" + workload::FormatDouble(interval_s) +
      ",intervals=" + std::to_string(intervals);

  auto policies =
      harness::PoliciesOrDefault({{"max"}, {"minmax"}, {"pmm"}});
  std::vector<std::string> names;
  int pmm_index = -1;
  for (size_t p = 0; p < policies.size(); ++p) {
    names.push_back(harness::PolicyLabel(policies[p]));
    if (policies[p].ResolvedSpec() == "pmm") {
      pmm_index = static_cast<int>(p);
    }
  }

  std::vector<harness::RunSpec> specs;
  for (size_t p = 0; p < policies.size(); ++p) {
    specs.push_back({names[p], harness::ScenarioConfig(scenario, policies[p]),
                     intervals * interval_s});
  }

  // Each job writes only its own slot, so no synchronization is needed.
  std::vector<std::vector<IntervalResult>> all(specs.size());

  auto run_scenario = [&](const harness::RunSpec& spec, size_t index) {
    harness::RunResult result;
    result.label = spec.label;
    result.config = spec.config;
    auto t0 = std::chrono::steady_clock::now();
    auto sys = engine::Rtdbs::Create(spec.config);
    RTQ_CHECK_MSG(sys.ok(), sys.status().ToString().c_str());
    engine::Rtdbs& rtdbs = *sys.value();

    rtdbs.RunUntil(spec.duration);
    for (int i = 0; i < intervals; ++i) {
      IntervalResult r;
      r.medium = i % 2 == 0;
      r.summary = engine::MetricsCollector::WindowSummary(
          rtdbs.metrics().records(), i * interval_s, (i + 1) * interval_s,
          /*query_class=*/-1);
      all[index].push_back(r);
    }

    result.summary = rtdbs.Summarize();
    if (rtdbs.pmm() != nullptr) result.pmm_trace = rtdbs.pmm()->trace();
    result.wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    return result;
  };

  auto start = Now();
  std::vector<harness::RunResult> results =
      harness::RunPool(specs, harness::BenchJobs(), run_scenario);
  double wall = SecondsSince(start);

  std::vector<std::string> interval_columns{"interval", "class"};
  for (const std::string& name : names) interval_columns.push_back(name);
  harness::TablePrinter table(interval_columns);
  harness::CsvWriter csv({"interval", "class", "policy", "miss_ratio",
                          "completions"});
  harness::BenchJsonEmitter json("workload_changes");
  json.AddConfig("intervals", std::to_string(intervals));
  json.AddConfig("interval_hours", F(interval_s / 3600.0, 2));
  json.AddConfig("scenario", scenario);

  for (size_t p = 0; p < specs.size(); ++p) {
    for (int i = 0; i < intervals; ++i) {
      csv.AddRow({std::to_string(i), all[p][i].medium ? "Medium" : "Small",
                  names[p], F(all[p][i].summary.miss_ratio, 4),
                  std::to_string(all[p][i].summary.completions)});
    }
    // lambda records the Medium-class rate; the alternation schedule
    // lives under "config".
    json.AddResult(results[p], names[p], 0.07);
  }

  for (int i = 0; i < intervals; ++i) {
    std::vector<std::string> row{std::to_string(i + 1),
                                 all[0][i].medium ? "Medium" : "Small"};
    for (size_t p = 0; p < specs.size(); ++p) {
      row.push_back(Pct(all[p][i].summary.miss_ratio));
    }
    table.AddRow(row);
  }
  std::printf("Figures 12-14: per-interval miss ratios\n");
  table.Print();

  if (pmm_index >= 0) {
    // Figure 15: PMM MPL / mode trace.
    std::printf("\nFigure 15: PMM adaptation across workload changes\n");
    harness::TablePrinter trace({"t(s)", "mode", "target MPL",
                                 "workload change?"});
    int64_t changes = 0;
    for (const auto& pt : results[static_cast<size_t>(pmm_index)].pmm_trace) {
      changes += pt.workload_change;
      trace.AddRow({F(pt.time, 0),
                    pt.mode == core::PmmController::Mode::kMax ? "Max"
                                                               : "MinMax",
                    std::to_string(pt.target_mpl),
                    pt.workload_change ? "YES" : ""});
    }
    trace.Print();
    std::printf(
        "\nPMM detected %lld workload changes over %d alternations\n",
        static_cast<long long>(changes), intervals - 1);
  }
  WriteCsv(csv, "results/workload_changes.csv");
  WriteBenchJson(json, wall);
  return 0;
}
