// Shared plumbing for the experiment binaries: build RunSpecs, run them
// through the parallel pool, format rows, and emit CSV + BENCH_*.json
// under results/.

#ifndef RTQ_BENCH_BENCH_UTIL_H_
#define RTQ_BENCH_BENCH_UTIL_H_

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "engine/rtdbs.h"
#include "harness/bench_json.h"
#include "harness/csv.h"
#include "harness/paper_experiments.h"
#include "harness/runner.h"
#include "harness/table_printer.h"

namespace rtq::bench {

inline std::string F(double v, int p) {
  return harness::TablePrinter::Fixed(v, p);
}
inline std::string Pct(double v) {
  return harness::TablePrinter::Percent(v, 1);
}

/// Prints the standard experiment banner.
inline void Banner(const char* title, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("simulated duration per point: %.1f hours "
              "(override with RTQ_SIM_HOURS)\n",
              harness::ExperimentDuration() / 3600.0);
  std::printf("parallel jobs: %d (override with RTQ_BENCH_JOBS)\n",
              harness::BenchJobs());
  std::printf("================================================================\n\n");
}

/// Wall-clock stopwatch around a sweep.
inline std::chrono::steady_clock::time_point Now() {
  return std::chrono::steady_clock::now();
}
inline double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(Now() - start).count();
}

/// Writes a CSV, reporting failures to stderr.
inline void WriteCsv(const harness::CsvWriter& csv, const std::string& path) {
  Status st = csv.WriteFile(path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return;
  }
  std::printf("\nseries written to %s\n", path.c_str());
}

/// Writes the BENCH_<driver>.json trajectory, reporting failures.
inline void WriteBenchJson(const harness::BenchJsonEmitter& json,
                           double total_wall_seconds) {
  Status st = json.WriteFile(total_wall_seconds);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return;
  }
  std::printf("trajectory written to %s (%.1fs total)\n", json.path().c_str(),
              total_wall_seconds);
}

}  // namespace rtq::bench

#endif  // RTQ_BENCH_BENCH_UTIL_H_
