// Shared plumbing for the experiment binaries: run a configuration for
// the standard duration, format rows, and emit CSVs under results/.

#ifndef RTQ_BENCH_BENCH_UTIL_H_
#define RTQ_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <string>
#include <vector>

#include "engine/rtdbs.h"
#include "harness/csv.h"
#include "harness/paper_experiments.h"
#include "harness/table_printer.h"

namespace rtq::bench {

inline std::string F(double v, int p) {
  return harness::TablePrinter::Fixed(v, p);
}
inline std::string Pct(double v) {
  return harness::TablePrinter::Percent(v, 1);
}

/// Prints the standard experiment banner.
inline void Banner(const char* title, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf("simulated duration per point: %.1f hours "
              "(override with RTQ_SIM_HOURS)\n",
              harness::ExperimentDuration() / 3600.0);
  std::printf("================================================================\n\n");
}

}  // namespace rtq::bench

#endif  // RTQ_BENCH_BENCH_UTIL_H_
