// PMM adaptation trace (paper Figure 6): the target-MPL trajectory over
// the first 10 simulated hours of the baseline workload at 0.075 q/s.
// Shows the Max -> MinMax switch, the RU-heuristic opening bid, and the
// miss-ratio projection homing in on a stable MPL.

#include "bench_util.h"

#include "stats/quadratic_fit.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E5: PMM target-MPL trace at lambda = 0.075",
         "Figure 6 (Section 5.1)");

  engine::PolicyConfig policy;
  policy.kind = engine::PolicyKind::kPmm;
  engine::SystemConfig config = harness::BaselineConfig(0.075, policy);
  auto sys = engine::Rtdbs::Create(config);
  if (!sys.ok()) {
    std::fprintf(stderr, "%s\n", sys.status().ToString().c_str());
    return 1;
  }
  sys.value()->RunUntil(harness::ExperimentDuration());

  harness::TablePrinter table({"t(s)", "mode", "target MPL",
                               "realized MPL", "batch miss", "util",
                               "curve"});
  harness::CsvWriter csv({"time_s", "mode", "target_mpl", "realized_mpl",
                          "batch_miss_ratio", "bottleneck_util", "curve"});
  for (const auto& p : sys.value()->pmm()->trace()) {
    const char* mode =
        p.mode == core::PmmController::Mode::kMax ? "Max" : "MinMax";
    table.AddRow({F(p.time, 0), mode, std::to_string(p.target_mpl),
                  F(p.realized_mpl, 1), Pct(p.batch_miss_ratio),
                  Pct(p.bottleneck_utilization),
                  stats::CurveTypeName(p.curve)});
    csv.AddRow({F(p.time, 1), mode, std::to_string(p.target_mpl),
                F(p.realized_mpl, 2), F(p.batch_miss_ratio, 4),
                F(p.bottleneck_utilization, 4),
                stats::CurveTypeName(p.curve)});
  }
  table.Print();

  engine::SystemSummary s = sys.value()->Summarize();
  std::printf("\noverall: %lld queries, miss %.1f%%, avg MPL %.2f\n",
              static_cast<long long>(s.overall.completions),
              s.overall.miss_ratio * 100.0, s.avg_mpl);
  csv.WriteFile("results/pmm_trace.csv");
  std::printf("series written to results/pmm_trace.csv\n");
  return 0;
}
