// PMM adaptation trace (paper Figure 6): the target-MPL trajectory over
// the first 10 simulated hours of the baseline workload at 0.075 q/s.
// Shows the Max -> MinMax switch, the RU-heuristic opening bid, and the
// miss-ratio projection homing in on a stable MPL.

#include "bench_util.h"

#include "stats/quadratic_fit.h"

int main() {
  using namespace rtq;
  using namespace rtq::bench;

  Banner("E5: PMM target-MPL trace at lambda = 0.075",
         "Figure 6 (Section 5.1)");

  const double rate = 0.075;
  engine::PolicyConfig policy{"pmm"};
  std::vector<harness::RunSpec> specs = {
      {"PMM @ " + F(rate, 3), harness::BaselineConfig(rate, policy)}};

  auto start = Now();
  std::vector<harness::RunResult> results = harness::RunPool(specs);
  double wall = SecondsSince(start);
  const harness::RunResult& run = results[0];

  harness::TablePrinter table({"t(s)", "mode", "target MPL",
                               "realized MPL", "batch miss", "util",
                               "curve"});
  harness::CsvWriter csv({"time_s", "mode", "target_mpl", "realized_mpl",
                          "batch_miss_ratio", "bottleneck_util", "curve"});
  for (const auto& p : run.pmm_trace) {
    const char* mode =
        p.mode == core::PmmController::Mode::kMax ? "Max" : "MinMax";
    table.AddRow({F(p.time, 0), mode, std::to_string(p.target_mpl),
                  F(p.realized_mpl, 1), Pct(p.batch_miss_ratio),
                  Pct(p.bottleneck_utilization),
                  stats::CurveTypeName(p.curve)});
    csv.AddRow({F(p.time, 1), mode, std::to_string(p.target_mpl),
                F(p.realized_mpl, 2), F(p.batch_miss_ratio, 4),
                F(p.bottleneck_utilization, 4),
                stats::CurveTypeName(p.curve)});
  }
  table.Print();

  const engine::SystemSummary& s = run.summary;
  std::printf("\noverall: %lld queries, miss %.1f%%, avg MPL %.2f\n",
              static_cast<long long>(s.overall.completions),
              s.overall.miss_ratio * 100.0, s.avg_mpl);

  harness::BenchJsonEmitter json("pmm_trace");
  json.AddConfig("adaptations",
                 std::to_string(run.pmm_trace.size()));
  json.AddResult(run, harness::PolicyLabel(policy), rate);
  WriteCsv(csv, "results/pmm_trace.csv");
  WriteBenchJson(json, wall);
  return 0;
}
