#include "workload/source.h"

#include <gtest/gtest.h>

#include <vector>

#include "workload/query_builder.h"
#include "workload/workload_spec.h"

namespace rtq::workload {
namespace {

storage::Database MakeDb(Rng* rng) {
  storage::DatabaseSpec spec;
  spec.num_disks = 4;
  storage::RelationGroupSpec inner;
  inner.rel_per_disk = 3;
  inner.min_pages = 600;
  inner.max_pages = 1800;
  storage::RelationGroupSpec outer;
  outer.rel_per_disk = 3;
  outer.min_pages = 3000;
  outer.max_pages = 9000;
  spec.groups = {inner, outer};
  return std::move(storage::Database::Create(spec, model::DiskParams(), rng))
      .value();
}

WorkloadSpec JoinWorkload(double rate) {
  WorkloadSpec spec;
  QueryClassSpec cls;
  cls.type = exec::QueryType::kHashJoin;
  cls.rel_groups = {0, 1};
  cls.arrival_rate = rate;
  spec.classes = {cls};
  return spec;
}

// The sink now receives (blueprint, id); tests materialize the
// (descriptor, operator) pair exactly the way the engine does.
struct Collected {
  std::vector<exec::QueryDescriptor> descs;
  std::vector<std::unique_ptr<exec::Operator>> ops;

  Source::Sink SinkFor(const storage::Database& db) {
    return [this, &db](const QueryBlueprint& bp, QueryId id) {
      BuiltQuery built = BuildQuery(bp, id, db, exec::ExecParams(),
                                    model::DiskParams(), 40.0);
      descs.push_back(built.desc);
      ops.push_back(std::move(built.op));
    };
  }
};

TEST(WorkloadSpec, Validation) {
  Rng rng(1);
  storage::Database db = MakeDb(&rng);

  EXPECT_TRUE(JoinWorkload(0.05).Validate(db).ok());

  WorkloadSpec empty;
  EXPECT_FALSE(empty.Validate(db).ok());

  WorkloadSpec wrong_groups = JoinWorkload(0.05);
  wrong_groups.classes[0].rel_groups = {0};  // joins need two
  EXPECT_FALSE(wrong_groups.Validate(db).ok());

  WorkloadSpec bad_group = JoinWorkload(0.05);
  bad_group.classes[0].rel_groups = {0, 9};
  EXPECT_FALSE(bad_group.Validate(db).ok());

  WorkloadSpec bad_rate = JoinWorkload(0.0);
  EXPECT_FALSE(bad_rate.Validate(db).ok());

  WorkloadSpec bad_slack = JoinWorkload(0.05);
  bad_slack.classes[0].slack_min = -1.0;
  EXPECT_FALSE(bad_slack.Validate(db).ok());

  WorkloadSpec sort_ok = JoinWorkload(0.05);
  sort_ok.classes[0].type = exec::QueryType::kExternalSort;
  sort_ok.classes[0].rel_groups = {0};
  EXPECT_TRUE(sort_ok.Validate(db).ok());
}

TEST(Source, PoissonArrivalCountIsPlausible) {
  Rng rng(2);
  sim::Simulator sim;
  storage::Database db = MakeDb(&rng);
  Collected got;
  Source source(&sim, &db, JoinWorkload(0.05), exec::ExecParams(),
                model::DiskParams(), 40.0, Rng(3), got.SinkFor(db));
  source.Start();
  sim.RunUntil(20000.0);
  // Expect ~1000 arrivals; allow +-15%.
  EXPECT_NEAR(static_cast<double>(got.descs.size()), 1000.0, 150.0);
}

TEST(Source, DeadlineFollowsPaperFormula) {
  Rng rng(4);
  sim::Simulator sim;
  storage::Database db = MakeDb(&rng);
  Collected got;
  Source source(&sim, &db, JoinWorkload(0.05), exec::ExecParams(),
                model::DiskParams(), 40.0, Rng(5), got.SinkFor(db));
  source.Start();
  sim.RunUntil(5000.0);
  ASSERT_GT(got.descs.size(), 20u);
  for (const auto& d : got.descs) {
    EXPECT_NEAR(d.deadline,
                d.arrival + d.standalone_time * d.slack_ratio, 1e-9);
    EXPECT_GE(d.slack_ratio, 2.5);
    EXPECT_LE(d.slack_ratio, 7.5);
    EXPECT_GT(d.standalone_time, 0.0);
    EXPECT_GT(d.max_memory, d.min_memory);
  }
}

TEST(Source, InnerRelationIsTheSmaller) {
  Rng rng(6);
  sim::Simulator sim;
  storage::Database db = MakeDb(&rng);
  Collected got;
  Source source(&sim, &db, JoinWorkload(0.1), exec::ExecParams(),
                model::DiskParams(), 40.0, Rng(7), got.SinkFor(db));
  source.Start();
  sim.RunUntil(3000.0);
  ASSERT_GT(got.descs.size(), 10u);
  for (const auto& d : got.descs) {
    EXPECT_LE(db.relation(d.r_relation).pages,
              db.relation(d.s_relation).pages);
    EXPECT_EQ(db.relation(d.r_relation).group, 0);
    EXPECT_EQ(db.relation(d.s_relation).group, 1);
  }
}

TEST(Source, IdsAreSequential) {
  Rng rng(8);
  sim::Simulator sim;
  storage::Database db = MakeDb(&rng);
  std::vector<QueryId> ids;
  Source source(&sim, &db, JoinWorkload(0.1), exec::ExecParams(),
                model::DiskParams(), 40.0, Rng(9),
                [&](const QueryBlueprint&, QueryId id) {
                  ids.push_back(id);
                });
  source.Start();
  sim.RunUntil(2000.0);
  for (size_t i = 0; i < ids.size(); ++i) EXPECT_EQ(ids[i], i);
}

TEST(Source, DeactivationStopsArrivals) {
  Rng rng(10);
  sim::Simulator sim;
  storage::Database db = MakeDb(&rng);
  int count = 0;
  Source source(&sim, &db, JoinWorkload(0.1), exec::ExecParams(),
                model::DiskParams(), 40.0, Rng(11),
                [&](const QueryBlueprint&, QueryId) { ++count; });
  source.Start();
  sim.RunUntil(2000.0);
  int before = count;
  EXPECT_GT(before, 0);
  source.Deactivate(0);
  EXPECT_FALSE(source.active(0));
  sim.RunUntil(6000.0);
  EXPECT_EQ(count, before);
  source.Activate(0);
  sim.RunUntil(10000.0);
  EXPECT_GT(count, before);
}

TEST(Source, SortClassesBuildSortOperators) {
  Rng rng(12);
  sim::Simulator sim;
  storage::Database db = MakeDb(&rng);
  WorkloadSpec spec = JoinWorkload(0.1);
  spec.classes[0].type = exec::QueryType::kExternalSort;
  spec.classes[0].rel_groups = {0};
  Collected got;
  Source source(&sim, &db, spec, exec::ExecParams(), model::DiskParams(),
                40.0, Rng(13), got.SinkFor(db));
  source.Start();
  sim.RunUntil(2000.0);
  ASSERT_GT(got.descs.size(), 5u);
  for (size_t i = 0; i < got.descs.size(); ++i) {
    EXPECT_EQ(got.descs[i].type, exec::QueryType::kExternalSort);
    // Sort: min memory 3, max = relation size.
    EXPECT_EQ(got.ops[i]->min_memory(), 3);
    EXPECT_EQ(got.ops[i]->max_memory(),
              db.relation(got.descs[i].r_relation).pages);
  }
}

TEST(Source, DeterministicAcrossRuns) {
  auto run = [](uint64_t seed) {
    Rng rng(20);
    sim::Simulator sim;
    storage::Database db = MakeDb(&rng);
    std::vector<double> deadlines;
    Source source(&sim, &db, JoinWorkload(0.1), exec::ExecParams(),
                  model::DiskParams(), 40.0, Rng(seed),
                  [&](const QueryBlueprint& bp, QueryId id) {
                    BuiltQuery built =
                        BuildQuery(bp, id, db, exec::ExecParams(),
                                   model::DiskParams(), 40.0);
                    deadlines.push_back(built.desc.deadline);
                  });
    source.Start();
    sim.RunUntil(2000.0);
    return deadlines;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

}  // namespace
}  // namespace rtq::workload
