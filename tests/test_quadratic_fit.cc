#include "stats/quadratic_fit.h"

#include <gtest/gtest.h>

#include <tuple>

#include "common/rng.h"

namespace rtq::stats {
namespace {

TEST(QuadraticFit, NeedsThreePoints) {
  QuadraticFit fit;
  fit.Add(1.0, 1.0);
  fit.Add(2.0, 2.0);
  EXPECT_FALSE(fit.Fit());
  EXPECT_EQ(fit.Classify(), CurveType::kUndetermined);
}

TEST(QuadraticFit, RecoverExactParabola) {
  QuadraticFit fit;
  // y = 0.5 x^2 - 4x + 10, vertex at x = 4.
  for (double x : {1.0, 3.0, 5.0, 8.0}) {
    fit.Add(x, 0.5 * x * x - 4.0 * x + 10.0);
  }
  ASSERT_TRUE(fit.Fit());
  EXPECT_NEAR(fit.a(), 0.5, 1e-9);
  EXPECT_NEAR(fit.b(), -4.0, 1e-9);
  EXPECT_NEAR(fit.c(), 10.0, 1e-9);
  EXPECT_NEAR(fit.Vertex(), 4.0, 1e-9);
}

TEST(QuadraticFit, CollinearPointsAreSingular) {
  QuadraticFit fit;
  fit.Add(1.0, 1.0);
  fit.Add(1.0, 1.0);
  fit.Add(1.0, 1.0);
  EXPECT_FALSE(fit.Fit());
}

TEST(QuadraticFit, Type1BowlWithInteriorMinimum) {
  QuadraticFit fit;
  // Vertex at x = 5, tried range [2, 8] covers it.
  for (double x : {2.0, 4.0, 6.0, 8.0}) {
    fit.Add(x, (x - 5.0) * (x - 5.0) + 1.0);
  }
  ASSERT_TRUE(fit.Fit());
  EXPECT_EQ(fit.Classify(), CurveType::kBowl);
  EXPECT_NEAR(fit.Vertex(), 5.0, 1e-9);
}

TEST(QuadraticFit, Type2DecreasingWhenVertexBeyondRange) {
  QuadraticFit fit;
  // Concave up with vertex at 20; over [1, 8] strictly decreasing.
  for (double x : {1.0, 3.0, 5.0, 8.0}) {
    fit.Add(x, 0.1 * (x - 20.0) * (x - 20.0));
  }
  ASSERT_TRUE(fit.Fit());
  EXPECT_EQ(fit.Classify(), CurveType::kDecreasing);
}

TEST(QuadraticFit, Type3IncreasingWhenVertexBelowRange) {
  QuadraticFit fit;
  for (double x : {5.0, 8.0, 12.0, 15.0}) {
    fit.Add(x, 0.1 * (x - 2.0) * (x - 2.0));
  }
  ASSERT_TRUE(fit.Fit());
  EXPECT_EQ(fit.Classify(), CurveType::kIncreasing);
}

TEST(QuadraticFit, Type4HillWithInteriorMaximum) {
  QuadraticFit fit;
  for (double x : {2.0, 4.0, 6.0, 8.0}) {
    fit.Add(x, -(x - 5.0) * (x - 5.0) + 10.0);
  }
  ASSERT_TRUE(fit.Fit());
  EXPECT_EQ(fit.Classify(), CurveType::kHill);
}

TEST(QuadraticFit, NearlyLinearDecreasingClassifiesType2) {
  QuadraticFit fit;
  for (double x : {1.0, 2.0, 3.0, 4.0}) fit.Add(x, 10.0 - 2.0 * x);
  ASSERT_TRUE(fit.Fit());
  EXPECT_EQ(fit.Classify(), CurveType::kDecreasing);
}

TEST(QuadraticFit, NearlyLinearIncreasingClassifiesType3) {
  QuadraticFit fit;
  for (double x : {1.0, 2.0, 3.0, 4.0}) fit.Add(x, 2.0 * x);
  ASSERT_TRUE(fit.Fit());
  EXPECT_EQ(fit.Classify(), CurveType::kIncreasing);
}

TEST(QuadraticFit, TracksMinAndMaxX) {
  QuadraticFit fit;
  fit.Add(5.0, 0.0);
  fit.Add(-3.0, 0.0);
  fit.Add(12.0, 0.0);
  EXPECT_DOUBLE_EQ(fit.min_x(), -3.0);
  EXPECT_DOUBLE_EQ(fit.max_x(), 12.0);
}

TEST(QuadraticFit, ResetClearsEverything) {
  QuadraticFit fit;
  for (double x : {1.0, 2.0, 3.0}) fit.Add(x, x);
  fit.Fit();
  fit.Reset();
  EXPECT_EQ(fit.count(), 0);
  EXPECT_FALSE(fit.Fit());
  EXPECT_EQ(fit.Classify(), CurveType::kUndetermined);
}

TEST(QuadraticFit, CurveTypeNames) {
  EXPECT_STREQ(CurveTypeName(CurveType::kBowl), "bowl");
  EXPECT_STREQ(CurveTypeName(CurveType::kDecreasing), "decreasing");
  EXPECT_STREQ(CurveTypeName(CurveType::kIncreasing), "increasing");
  EXPECT_STREQ(CurveTypeName(CurveType::kHill), "hill");
  EXPECT_STREQ(CurveTypeName(CurveType::kUndetermined), "undetermined");
}

/// Property: exact recovery of random parabolas from random samples.
class QuadraticRecovery
    : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(QuadraticRecovery, CoefficientsRecovered) {
  auto [seed, concave_up] = GetParam();
  Rng rng(static_cast<uint64_t>(seed) + 500);
  double a = rng.Uniform(0.01, 2.0) * (concave_up ? 1.0 : -1.0);
  double b = rng.Uniform(-10.0, 10.0);
  double c = rng.Uniform(-20.0, 20.0);
  QuadraticFit fit;
  for (int i = 0; i < 15; ++i) {
    double x = rng.Uniform(-30.0, 30.0);
    fit.Add(x, a * x * x + b * x + c);
  }
  ASSERT_TRUE(fit.Fit());
  EXPECT_NEAR(fit.a(), a, 1e-6);
  EXPECT_NEAR(fit.b(), b, 1e-5);
  EXPECT_NEAR(fit.c(), c, 1e-4);
}

INSTANTIATE_TEST_SUITE_P(Sweep, QuadraticRecovery,
                         ::testing::Combine(::testing::Range(0, 8),
                                            ::testing::Bool()));

}  // namespace
}  // namespace rtq::stats
