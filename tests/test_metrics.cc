#include "engine/metrics.h"

#include <gtest/gtest.h>

namespace rtq::engine {
namespace {

CompletionRecord Rec(QueryId id, int32_t cls, bool missed, SimTime finish,
                     double wait, double exec, int64_t fluct = 0) {
  CompletionRecord r;
  r.info.id = id;
  r.info.query_class = cls;
  r.info.missed = missed;
  r.info.finish = finish;
  r.info.admission_wait = wait;
  r.info.execution_time = exec;
  r.mem_fluctuations = fluct;
  return r;
}

TEST(Metrics, SummarizeAggregates) {
  MetricsCollector m(10);
  m.Record(Rec(1, 0, false, 10.0, 2.0, 8.0, 1));
  m.Record(Rec(2, 0, true, 20.0, 4.0, 10.0, 3));
  m.Record(Rec(3, 1, false, 30.0, 6.0, 12.0, 5));

  ClassSummary overall;
  std::vector<ClassSummary> per_class;
  m.Summarize(2, &overall, &per_class);

  EXPECT_EQ(overall.completions, 3);
  EXPECT_EQ(overall.misses, 1);
  EXPECT_NEAR(overall.miss_ratio, 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(overall.avg_wait, 4.0, 1e-12);
  EXPECT_NEAR(overall.avg_exec, 10.0, 1e-12);
  EXPECT_NEAR(overall.avg_response, 14.0, 1e-12);
  EXPECT_NEAR(overall.avg_fluctuations, 3.0, 1e-12);

  ASSERT_EQ(per_class.size(), 2u);
  EXPECT_EQ(per_class[0].completions, 2);
  EXPECT_EQ(per_class[0].misses, 1);
  EXPECT_EQ(per_class[1].completions, 1);
  EXPECT_EQ(per_class[1].misses, 0);
}

TEST(Metrics, EmptySummarize) {
  MetricsCollector m(10);
  ClassSummary overall;
  std::vector<ClassSummary> per_class;
  m.Summarize(1, &overall, &per_class);
  EXPECT_EQ(overall.completions, 0);
  EXPECT_DOUBLE_EQ(overall.miss_ratio, 0.0);
}

TEST(Metrics, WindowSummaryFiltersByTimeAndClass) {
  MetricsCollector m(10);
  m.Record(Rec(1, 0, true, 5.0, 0, 1));
  m.Record(Rec(2, 0, false, 15.0, 0, 1));
  m.Record(Rec(3, 1, true, 16.0, 0, 1));
  m.Record(Rec(4, 0, false, 25.0, 0, 1));

  ClassSummary w = MetricsCollector::WindowSummary(m.records(), 10.0, 20.0,
                                                   /*query_class=*/-1);
  EXPECT_EQ(w.completions, 2);
  EXPECT_EQ(w.misses, 1);

  ClassSummary c0 = MetricsCollector::WindowSummary(m.records(), 0.0, 30.0,
                                                    /*query_class=*/0);
  EXPECT_EQ(c0.completions, 3);
  EXPECT_EQ(c0.misses, 1);
}

TEST(Metrics, MplTimeAverage) {
  MetricsCollector m(10);
  m.UpdateMpl(0.0, 0);
  m.UpdateMpl(10.0, 4);   // 0 for [0,10)
  m.UpdateMpl(30.0, 2);   // 4 for [10,30)
  // 2 for [30,40): average = (0*10 + 4*20 + 2*10) / 40 = 2.5.
  EXPECT_NEAR(m.AverageMpl(40.0), 2.5, 1e-12);
}

TEST(Metrics, MissCiReflectsStream) {
  MetricsCollector m(5);
  for (int i = 0; i < 100; ++i) {
    m.Record(Rec(static_cast<QueryId>(i), 0, i % 4 == 0, i, 0, 1));
  }
  auto ci = m.MissRatioCi();
  EXPECT_EQ(ci.num_batches, 20);
  EXPECT_NEAR(ci.mean, 0.25, 0.05);
  EXPECT_GT(ci.half_width, 0.0);
}

TEST(Metrics, MplSamplesAccumulate) {
  MetricsCollector m(10);
  m.SampleMpl(60.0, 3);
  m.SampleMpl(120.0, 5);
  ASSERT_EQ(m.mpl_samples().size(), 2u);
  EXPECT_DOUBLE_EQ(m.mpl_samples()[1].time, 120.0);
  EXPECT_DOUBLE_EQ(m.mpl_samples()[1].value, 5.0);
}

TEST(Metrics, RecordsOutsideClassRangeFoldIntoOverallOnly) {
  MetricsCollector m(10);
  m.Record(Rec(1, 5, false, 1.0, 0, 1));  // class 5 but only 2 tracked
  ClassSummary overall;
  std::vector<ClassSummary> per_class;
  m.Summarize(2, &overall, &per_class);
  EXPECT_EQ(overall.completions, 1);
  EXPECT_EQ(per_class[0].completions, 0);
  EXPECT_EQ(per_class[1].completions, 0);
}

}  // namespace
}  // namespace rtq::engine
