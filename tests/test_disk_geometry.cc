#include "model/disk_geometry.h"

#include <gtest/gtest.h>

#include <cmath>

namespace rtq::model {
namespace {

TEST(DiskParams, DefaultsAreValid) {
  DiskParams params;
  EXPECT_TRUE(params.Validate().ok());
  EXPECT_EQ(params.capacity(), 1500 * 90);
}

TEST(DiskParams, RejectsBadValues) {
  DiskParams p;
  p.rotation_time = 0.0;
  EXPECT_FALSE(p.Validate().ok());
  p = DiskParams{};
  p.num_cylinders = -1;
  EXPECT_FALSE(p.Validate().ok());
  p = DiskParams{};
  p.track_size = 7;  // must divide cylinder_size (90)
  EXPECT_FALSE(p.Validate().ok());
  p = DiskParams{};
  p.track_size = 0;
  EXPECT_FALSE(p.Validate().ok());
  p = DiskParams{};
  p.seek_factor = -1.0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(DiskGeometry, CylinderOf) {
  DiskGeometry geom((DiskParams()));
  EXPECT_EQ(geom.CylinderOf(0), 0);
  EXPECT_EQ(geom.CylinderOf(89), 0);
  EXPECT_EQ(geom.CylinderOf(90), 1);
  EXPECT_EQ(geom.CylinderOf(90 * 1499), 1499);
}

TEST(DiskGeometry, SeekFollowsSquareRoot) {
  DiskParams params;
  DiskGeometry geom(params);
  EXPECT_DOUBLE_EQ(geom.SeekTime(10, 10), 0.0);
  EXPECT_NEAR(geom.SeekTime(0, 1), params.seek_factor, 1e-12);
  EXPECT_NEAR(geom.SeekTime(0, 100), params.seek_factor * 10.0, 1e-12);
  // Symmetric in direction.
  EXPECT_DOUBLE_EQ(geom.SeekTime(5, 55), geom.SeekTime(55, 5));
}

TEST(DiskGeometry, RotationalDelayIsHalfRotation) {
  DiskParams params;
  DiskGeometry geom(params);
  EXPECT_DOUBLE_EQ(geom.RotationalDelay(), params.rotation_time / 2.0);
}

TEST(DiskGeometry, TransferUsesTrackRate) {
  DiskParams params;
  DiskGeometry geom(params);
  // One track takes one full rotation.
  EXPECT_NEAR(geom.TransferTime(params.track_size), params.rotation_time,
              1e-12);
  EXPECT_NEAR(geom.TransferTime(2 * params.track_size),
              2.0 * params.rotation_time, 1e-12);
  EXPECT_DOUBLE_EQ(geom.TransferTime(0), 0.0);
}

TEST(DiskGeometry, AccessTimeComposes) {
  DiskParams params;
  DiskGeometry geom(params);
  PageCount start = 90 * 100;  // cylinder 100
  SimTime expected = geom.SeekTime(0, 100) + geom.RotationalDelay() +
                     geom.TransferTime(6);
  EXPECT_NEAR(geom.AccessTime(0, start, 6), expected, 1e-12);
}

TEST(DiskGeometry, SameCylinderAccessSkipsSeek) {
  DiskParams params;
  DiskGeometry geom(params);
  SimTime t = geom.AccessTime(3, 3 * 90 + 10, 6);
  EXPECT_NEAR(t, geom.RotationalDelay() + geom.TransferTime(6), 1e-12);
}

}  // namespace
}  // namespace rtq::model
