#include "exec/hash_join.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "mock_exec_context.h"

namespace rtq::exec {
namespace {

using rtq::testing::MockExecContext;

ExecParams Params() { return ExecParams{}; }

HashJoin::Inputs Inputs(PageCount r, PageCount s) {
  HashJoin::Inputs in;
  in.r_disk = 0;
  in.r_start = 0;
  in.r_pages = r;
  in.s_disk = 1;
  in.s_start = 50000;
  in.s_pages = s;
  return in;
}

TEST(HashJoin, MemoryDemandsMatchPaper) {
  // The paper's example: ||R|| = 1200 with F = 1.1 gives a maximum of
  // 1321 pages (F*||R|| + one I/O buffer) and a minimum near sqrt(F*||R||).
  HashJoin join(Params(), Inputs(1200, 6000));
  EXPECT_EQ(join.max_memory(), 1321);
  EXPECT_EQ(join.num_partitions(), 37);
  EXPECT_NEAR(static_cast<double>(join.min_memory()),
              std::sqrt(1.1 * 1200.0), 3.0);
  EXPECT_GE(join.min_memory(), join.num_partitions() + 1);
  EXPECT_LT(join.min_memory(), join.max_memory());
}

TEST(HashJoin, MaxMemoryRunReadsOperandsOnceNoSpill) {
  MockExecContext ctx;
  HashJoin join(Params(), Inputs(600, 3000));
  bool finished = false;
  join.on_finished = [&] { finished = true; };
  join.SetAllocation(join.max_memory());
  join.Start(&ctx);
  ctx.PumpAll();
  ASSERT_TRUE(finished);
  EXPECT_EQ(ctx.pages_read, 600 + 3000);
  EXPECT_EQ(ctx.pages_written, 0);
  EXPECT_EQ(ctx.temp_allocations, 0);
  EXPECT_EQ(join.spilled_r_pages(), 0);
}

TEST(HashJoin, MinMemoryRunIsTwoPass) {
  MockExecContext ctx;
  HashJoin join(Params(), Inputs(600, 3000));
  bool finished = false;
  join.on_finished = [&] { finished = true; };
  join.SetAllocation(join.min_memory());
  join.Start(&ctx);
  ctx.PumpAll();
  ASSERT_TRUE(finished);
  // Two-pass: everything written out once and read back once.
  EXPECT_NEAR(static_cast<double>(ctx.pages_written), 3600.0, 40.0);
  EXPECT_NEAR(static_cast<double>(ctx.pages_read), 2.0 * 3600.0, 80.0);
  // Spool writes are fire-and-forget (priority spooling).
  EXPECT_EQ(ctx.background_writes, ctx.writes);
  // Temp extents were released at completion.
  EXPECT_EQ(ctx.live_temp_extents(), 0);
}

TEST(HashJoin, IntermediateMemorySpillsProportionally) {
  MockExecContext ctx;
  HashJoin join(Params(), Inputs(600, 3000));
  PageCount mid = (join.min_memory() + join.max_memory()) / 2;
  bool finished = false;
  join.on_finished = [&] { finished = true; };
  join.SetAllocation(mid);
  join.Start(&ctx);
  ctx.PumpAll();
  ASSERT_TRUE(finished);
  // Roughly half the partitions expanded: spill well below the full 3600
  // but clearly nonzero.
  EXPECT_GT(ctx.pages_written, 1000);
  EXPECT_LT(ctx.pages_written, 2600);
}

TEST(HashJoin, ContractionMidBuildSpools) {
  MockExecContext ctx;
  HashJoin join(Params(), Inputs(600, 3000));
  bool finished = false;
  join.on_finished = [&] { finished = true; };
  join.SetAllocation(join.max_memory());
  join.Start(&ctx);
  // Let part of the build run at max, then shrink to min.
  for (int i = 0; i < 40; ++i) ctx.Pump();
  join.SetAllocation(join.min_memory());
  ctx.PumpAll();
  ASSERT_TRUE(finished);
  // The hash tables built so far were spooled: writes exceed what a
  // min-memory run would have written for the remaining input alone.
  EXPECT_GT(ctx.pages_written, 0);
  EXPECT_EQ(join.expanded_partitions(), 0);
}

TEST(HashJoin, ExpansionMidProbeReloadsBuildPages) {
  MockExecContext ctx;
  ExecParams params = Params();
  HashJoin join(params, Inputs(600, 3000));
  bool finished = false;
  join.on_finished = [&] { finished = true; };
  join.SetAllocation(join.min_memory());
  join.Start(&ctx);
  // Run until early probe: build is 100 block-ish steps.
  for (int i = 0; i < 260; ++i) ctx.Pump();
  int64_t reads_before = ctx.reads;
  join.SetAllocation(join.max_memory());
  ctx.PumpAll();
  ASSERT_TRUE(finished);
  EXPECT_GT(ctx.reads, reads_before);
  // After expansion the join ends with every partition expanded.
  EXPECT_EQ(join.expanded_partitions(), join.num_partitions());
}

TEST(HashJoin, SuspensionStopsProgressAndResumeFinishes) {
  MockExecContext ctx;
  HashJoin join(Params(), Inputs(600, 3000));
  bool finished = false;
  join.on_finished = [&] { finished = true; };
  join.SetAllocation(join.max_memory());
  join.Start(&ctx);
  for (int i = 0; i < 30; ++i) ctx.Pump();
  join.SetAllocation(0);  // suspend
  ctx.PumpAll();
  EXPECT_FALSE(finished);  // idle, not done
  EXPECT_EQ(join.expanded_partitions(), 0);
  join.SetAllocation(join.min_memory());  // resume small
  ctx.PumpAll();
  EXPECT_TRUE(finished);
}

TEST(HashJoin, AbortReleasesTempSpace) {
  MockExecContext ctx;
  HashJoin join(Params(), Inputs(600, 3000));
  join.on_finished = [] {};
  join.SetAllocation(join.min_memory());
  join.Start(&ctx);
  for (int i = 0; i < 100; ++i) ctx.Pump();
  EXPECT_GT(ctx.live_temp_extents(), 0);
  join.Abort();
  EXPECT_EQ(ctx.live_temp_extents(), 0);
  EXPECT_FALSE(join.finished());
}

TEST(HashJoin, TinyRelationsWork) {
  MockExecContext ctx;
  HashJoin join(Params(), Inputs(1, 1));
  bool finished = false;
  join.on_finished = [&] { finished = true; };
  join.SetAllocation(join.max_memory());
  join.Start(&ctx);
  ctx.PumpAll();
  EXPECT_TRUE(finished);
  EXPECT_EQ(ctx.pages_read, 2);
}

TEST(HashJoin, CpuCostsScaleWithExpandedFraction) {
  // At max memory every R tuple is hash-inserted (100) and every S tuple
  // probed+copied (300); at min they are hash-copied (100 both sides)
  // plus reprocessed in cleanup. Totals must reflect Table 4.
  ExecParams params = Params();
  int64_t tpp = params.tuples.tuples_per_page();

  MockExecContext at_max;
  HashJoin jmax(params, Inputs(600, 3000));
  jmax.on_finished = [] {};
  jmax.SetAllocation(jmax.max_memory());
  jmax.Start(&at_max);
  at_max.PumpAll();
  Instructions expect_max = params.costs.initiate_op +
                            params.costs.terminate_op +
                            600 * tpp * params.costs.hash_insert +
                            3000 * tpp *
                                (params.costs.hash_probe +
                                 params.costs.hash_copy);
  EXPECT_NEAR(static_cast<double>(at_max.total_instructions),
              static_cast<double>(expect_max),
              static_cast<double>(expect_max) * 0.02);
}

/// Property: total pages read never falls below the operand size, writes
/// never exceed what was read, and temp is always released — across a
/// grid of relation sizes and allocations.
class HashJoinConservation
    : public ::testing::TestWithParam<std::tuple<PageCount, PageCount, int>> {
};

TEST_P(HashJoinConservation, IoInvariants) {
  auto [r, s, alloc_sel] = GetParam();
  MockExecContext ctx;
  HashJoin join(Params(), Inputs(r, s));
  PageCount alloc = alloc_sel == 0   ? join.min_memory()
                    : alloc_sel == 1 ? (join.min_memory() +
                                        join.max_memory()) /
                                           2
                                     : join.max_memory();
  bool finished = false;
  join.on_finished = [&] { finished = true; };
  join.SetAllocation(alloc);
  join.Start(&ctx);
  ctx.PumpAll();
  ASSERT_TRUE(finished);
  EXPECT_GE(ctx.pages_read, r + s);
  EXPECT_LE(ctx.pages_read, 3 * (r + s));
  EXPECT_LE(ctx.pages_written, r + s + 12);
  EXPECT_EQ(ctx.live_temp_extents(), 0);
  EXPECT_EQ(join.counters().pages_read, ctx.pages_read);
  EXPECT_EQ(join.counters().pages_written, ctx.pages_written);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, HashJoinConservation,
    ::testing::Combine(::testing::Values<PageCount>(50, 600, 1800),
                       ::testing::Values<PageCount>(250, 3000),
                       ::testing::Values(0, 1, 2)));

}  // namespace
}  // namespace rtq::exec
