#include "model/cpu.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace rtq::model {
namespace {

TEST(Cpu, SingleJobTiming) {
  sim::Simulator sim;
  Cpu cpu(&sim, 40.0);
  SimTime done = -1.0;
  cpu.Submit(CpuJob{1, 10.0, 40'000'000, [&] { done = sim.Now(); }});
  sim.RunToCompletion();
  EXPECT_NEAR(done, 1.0, 1e-9);  // 40M instructions at 40 MIPS
  EXPECT_EQ(cpu.completed_jobs(), 1);
}

TEST(Cpu, ExecutionTimeHelper) {
  sim::Simulator sim;
  Cpu cpu(&sim, 40.0);
  EXPECT_NEAR(cpu.ExecutionTime(40'000'000), 1.0, 1e-12);
  EXPECT_NEAR(cpu.ExecutionTime(1000), 1000.0 / 40e6, 1e-15);
}

TEST(Cpu, EarliestDeadlineRunsFirst) {
  sim::Simulator sim;
  Cpu cpu(&sim, 1.0);  // 1 MIPS for easy numbers
  std::vector<int> order;
  cpu.Submit(CpuJob{1, 300.0, 1'000'000, [&] { order.push_back(1); }});
  cpu.Submit(CpuJob{2, 100.0, 1'000'000, [&] { order.push_back(2); }});
  cpu.Submit(CpuJob{3, 200.0, 1'000'000, [&] { order.push_back(3); }});
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{2, 3, 1}));
}

TEST(Cpu, PreemptionPausesRunningJob) {
  sim::Simulator sim;
  Cpu cpu(&sim, 1.0);
  std::vector<std::pair<int, SimTime>> done;
  // Long low-priority job starts alone.
  cpu.Submit(CpuJob{1, 900.0, 10'000'000, [&] {
    done.emplace_back(1, sim.Now());
  }});
  // At t=2, an urgent 3s job arrives and preempts.
  sim.ScheduleAfter(2.0, [&] {
    cpu.Submit(CpuJob{2, 10.0, 3'000'000, [&] {
      done.emplace_back(2, sim.Now());
    }});
  });
  sim.RunToCompletion();
  ASSERT_EQ(done.size(), 2u);
  EXPECT_EQ(done[0].first, 2);
  EXPECT_NEAR(done[0].second, 5.0, 1e-9);   // 2 + 3
  EXPECT_EQ(done[1].first, 1);
  EXPECT_NEAR(done[1].second, 13.0, 1e-9);  // 10 total work + 3 preempted
  EXPECT_EQ(cpu.preemptions(), 1);
}

TEST(Cpu, LaterDeadlineDoesNotPreempt) {
  sim::Simulator sim;
  Cpu cpu(&sim, 1.0);
  std::vector<int> order;
  cpu.Submit(CpuJob{1, 10.0, 5'000'000, [&] { order.push_back(1); }});
  sim.ScheduleAfter(1.0, [&] {
    cpu.Submit(CpuJob{2, 20.0, 1'000'000, [&] { order.push_back(2); }});
  });
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
  EXPECT_EQ(cpu.preemptions(), 0);
}

TEST(Cpu, CancelQueryRemovesJobs) {
  sim::Simulator sim;
  Cpu cpu(&sim, 1.0);
  int fired = 0;
  cpu.Submit(CpuJob{1, 10.0, 1'000'000, [&] { ++fired; }});
  cpu.Submit(CpuJob{2, 20.0, 1'000'000, [&] { ++fired; }});
  cpu.Submit(CpuJob{2, 30.0, 1'000'000, [&] { ++fired; }});
  EXPECT_EQ(cpu.CancelQuery(2), 2);
  sim.RunToCompletion();
  EXPECT_EQ(fired, 1);
}

TEST(Cpu, CancelRunningJobStartsNext) {
  sim::Simulator sim;
  Cpu cpu(&sim, 1.0);
  std::vector<std::pair<int, SimTime>> done;
  cpu.Submit(CpuJob{1, 10.0, 10'000'000, [&] {
    done.emplace_back(1, sim.Now());
  }});
  cpu.Submit(CpuJob{2, 20.0, 2'000'000, [&] {
    done.emplace_back(2, sim.Now());
  }});
  sim.ScheduleAfter(3.0, [&] { cpu.CancelQuery(1); });
  sim.RunToCompletion();
  ASSERT_EQ(done.size(), 1u);
  EXPECT_EQ(done[0].first, 2);
  EXPECT_NEAR(done[0].second, 5.0, 1e-9);  // starts at 3, runs 2s
}

TEST(Cpu, DeadlineTieBreaksByQueryId) {
  sim::Simulator sim;
  Cpu cpu(&sim, 1.0);
  std::vector<int> order;
  cpu.Submit(CpuJob{7, 50.0, 1'000'000, [&] { order.push_back(7); }});
  cpu.Submit(CpuJob{3, 50.0, 1'000'000, [&] { order.push_back(3); }});
  sim.RunToCompletion();
  // Query 7 was already running (non-preemptive among equals), then 3.
  EXPECT_EQ(order, (std::vector<int>{7, 3}));
}

TEST(Cpu, UtilizationAccounting) {
  sim::Simulator sim;
  Cpu cpu(&sim, 1.0);
  cpu.Submit(CpuJob{1, 10.0, 4'000'000, [] {}});
  sim.RunToCompletion();
  EXPECT_NEAR(cpu.busy_seconds(sim.Now()), 4.0, 1e-9);
  sim.RunUntil(8.0);
  EXPECT_NEAR(cpu.Utilization(sim.Now()), 0.5, 1e-9);
}

TEST(Cpu, ZeroInstructionJobCompletesImmediately) {
  sim::Simulator sim;
  Cpu cpu(&sim, 40.0);
  bool fired = false;
  cpu.Submit(CpuJob{1, 10.0, 0, [&] { fired = true; }});
  sim.RunToCompletion();
  EXPECT_TRUE(fired);
  EXPECT_DOUBLE_EQ(sim.Now(), 0.0);
}

TEST(Cpu, ManyPreemptionsConserveWork) {
  sim::Simulator sim;
  Cpu cpu(&sim, 1.0);
  SimTime low_done = -1.0;
  cpu.Submit(CpuJob{100, 1e9, 10'000'000, [&] { low_done = sim.Now(); }});
  // Five urgent 1s jobs arrive at 1s intervals, each preempting.
  for (int i = 1; i <= 5; ++i) {
    sim.ScheduleAfter(2.0 * i, [&cpu, i] {
      cpu.Submit(CpuJob{static_cast<QueryId>(i), 10.0 * i, 1'000'000, [] {}});
    });
  }
  sim.RunToCompletion();
  // Total work 10 + 5 = 15 seconds.
  EXPECT_NEAR(low_done, 15.0, 1e-9);
}

}  // namespace
}  // namespace rtq::model
