#include "stats/linear_fit.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rtq::stats {
namespace {

TEST(LinearFit, RecoverExactLine) {
  LinearFit fit;
  for (double x : {1.0, 2.0, 5.0, 9.0}) fit.Add(x, 3.0 * x - 2.0);
  ASSERT_TRUE(fit.CanFit());
  EXPECT_NEAR(fit.slope(), 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept(), -2.0, 1e-9);
  EXPECT_NEAR(fit.ValueAt(10.0), 28.0, 1e-9);
}

TEST(LinearFit, TooFewPoints) {
  LinearFit fit;
  EXPECT_FALSE(fit.CanFit());
  fit.Add(1.0, 1.0);
  EXPECT_FALSE(fit.CanFit());
  EXPECT_DOUBLE_EQ(fit.ValueAt(5.0), 1.0);  // mean fallback
}

TEST(LinearFit, AllSameXFallsBackToMean) {
  LinearFit fit;
  fit.Add(2.0, 10.0);
  fit.Add(2.0, 20.0);
  fit.Add(2.0, 30.0);
  EXPECT_FALSE(fit.CanFit());
  EXPECT_DOUBLE_EQ(fit.ValueAt(100.0), 20.0);
}

TEST(LinearFit, LeastSquaresOfNoisyData) {
  LinearFit fit;
  // Symmetric residuals around y = 2x + 1.
  fit.Add(0.0, 1.5);
  fit.Add(0.0, 0.5);
  fit.Add(10.0, 21.5);
  fit.Add(10.0, 20.5);
  EXPECT_NEAR(fit.slope(), 2.0, 1e-9);
  EXPECT_NEAR(fit.intercept(), 1.0, 1e-9);
}

TEST(LinearFit, ResetClears) {
  LinearFit fit;
  fit.Add(1.0, 1.0);
  fit.Add(2.0, 2.0);
  fit.Reset();
  EXPECT_EQ(fit.count(), 0);
  EXPECT_FALSE(fit.CanFit());
  EXPECT_DOUBLE_EQ(fit.ValueAt(1.0), 0.0);
}

TEST(LinearFit, EmptyValueAtIsZero) {
  LinearFit fit;
  EXPECT_DOUBLE_EQ(fit.ValueAt(3.0), 0.0);
}

/// Property: recovered slope/intercept match the generating line for
/// random point sets.
class LinearFitRecovery : public ::testing::TestWithParam<int> {};

TEST_P(LinearFitRecovery, ExactRecovery) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 100);
  double slope = rng.Uniform(-5.0, 5.0);
  double intercept = rng.Uniform(-100.0, 100.0);
  LinearFit fit;
  for (int i = 0; i < 20; ++i) {
    double x = rng.Uniform(-50.0, 50.0);
    fit.Add(x, slope * x + intercept);
  }
  ASSERT_TRUE(fit.CanFit());
  EXPECT_NEAR(fit.slope(), slope, 1e-6);
  EXPECT_NEAR(fit.intercept(), intercept, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinearFitRecovery, ::testing::Range(0, 12));

}  // namespace
}  // namespace rtq::stats
