#include "core/strategy.h"

#include <gtest/gtest.h>

#include <numeric>

#include "common/rng.h"

namespace rtq::core {
namespace {

MemRequest Q(QueryId id, SimTime deadline, PageCount min, PageCount max) {
  MemRequest r;
  r.id = id;
  r.deadline = deadline;
  r.min_memory = min;
  r.max_memory = max;
  return r;
}

PageCount Sum(const AllocationVector& v) {
  return std::accumulate(v.begin(), v.end(), PageCount{0});
}

// --- Max -------------------------------------------------------------------

TEST(MaxStrategy, AllOrNothing) {
  MaxStrategy strat;
  auto out = strat.Allocate({Q(1, 10, 40, 1300), Q(2, 20, 40, 1300),
                             Q(3, 30, 40, 1300)},
                            2560);
  EXPECT_EQ(out, (AllocationVector{1300, 1260 >= 1300 ? 1300 : 0, 0}));
  EXPECT_EQ(out[0], 1300);
  EXPECT_EQ(out[1], 0);  // 1260 left < 1300
  EXPECT_EQ(out[2], 0);
}

TEST(MaxStrategy, BypassAdmitsAroundBlockedQuery) {
  MaxStrategy bypass(/*bypass_blocked=*/true);
  auto out = bypass.Allocate(
      {Q(1, 10, 40, 2000), Q(2, 20, 40, 1000), Q(3, 30, 40, 500)}, 2560);
  EXPECT_EQ(out[0], 2000);
  EXPECT_EQ(out[1], 0);    // 560 left < 1000
  EXPECT_EQ(out[2], 500);  // bypasses query 2
}

TEST(MaxStrategy, StrictStopsAtBlockedQuery) {
  MaxStrategy strict(/*bypass_blocked=*/false);
  auto out = strict.Allocate(
      {Q(1, 10, 40, 2000), Q(2, 20, 40, 1000), Q(3, 30, 40, 500)}, 2560);
  EXPECT_EQ(out[0], 2000);
  EXPECT_EQ(out[1], 0);
  EXPECT_EQ(out[2], 0);  // not allowed to jump over query 2
}

TEST(MaxStrategy, Names) {
  EXPECT_EQ(MaxStrategy(true).name(), "Max");
  EXPECT_EQ(MaxStrategy(false).name(), "Max(strict)");
}

// --- MinMax ----------------------------------------------------------------

TEST(MinMaxStrategy, UrgentGetsMaxRestGetMin) {
  MinMaxStrategy strat(-1);
  auto out = strat.Allocate(
      {Q(1, 10, 40, 1300), Q(2, 20, 40, 1300), Q(3, 30, 40, 1300)}, 2560);
  // Pass 1: 40 each (120). Pass 2 in ED order: q1 to 1300, q2 gets the
  // remaining 2560-1300-80 = 1180, q3 stays at min.
  EXPECT_EQ(out[0], 1300);
  EXPECT_EQ(out[1], 1220);
  EXPECT_EQ(out[2], 40);
  EXPECT_EQ(Sum(out), 2560);
}

TEST(MinMaxStrategy, MplLimitCapsAdmission) {
  MinMaxStrategy strat(2);
  auto out = strat.Allocate(
      {Q(1, 10, 40, 100), Q(2, 20, 40, 100), Q(3, 30, 40, 100)}, 2560);
  EXPECT_GT(out[0], 0);
  EXPECT_GT(out[1], 0);
  EXPECT_EQ(out[2], 0);  // beyond N=2
}

TEST(MinMaxStrategy, StopsWhenMinDoesNotFit) {
  MinMaxStrategy strat(-1);
  auto out = strat.Allocate(
      {Q(1, 10, 60, 80), Q(2, 20, 60, 80), Q(3, 30, 60, 80)}, 130);
  // Pass 1 admits q1 and q2 (120 <= 130); q3's min does not fit.
  EXPECT_EQ(out[2], 0);
  // Pass 2 tops q1 up with the leftover 10.
  EXPECT_EQ(out[0], 70);
  EXPECT_EQ(out[1], 60);
}

TEST(MinMaxStrategy, EveryoneAtMaxWhenMemoryAbounds) {
  MinMaxStrategy strat(-1);
  auto out = strat.Allocate({Q(1, 10, 40, 100), Q(2, 20, 40, 100)}, 10000);
  EXPECT_EQ(out, (AllocationVector{100, 100}));
}

TEST(MinMaxStrategy, Names) {
  EXPECT_EQ(MinMaxStrategy(-1).name(), "MinMax");
  EXPECT_EQ(MinMaxStrategy(10).name(), "MinMax-10");
}

// --- Proportional ------------------------------------------------------------

TEST(ProportionalStrategy, EqualFractionOfMax) {
  ProportionalStrategy strat(-1);
  auto out = strat.Allocate({Q(1, 10, 10, 1000), Q(2, 20, 10, 3000)}, 2000);
  // f = 0.5: allocations 500 and 1500.
  EXPECT_NEAR(static_cast<double>(out[0]), 500.0, 2.0);
  EXPECT_NEAR(static_cast<double>(out[1]), 1500.0, 2.0);
  EXPECT_LE(Sum(out), 2000);
}

TEST(ProportionalStrategy, FractionFlooredAtMinimum) {
  ProportionalStrategy strat(-1);
  auto out = strat.Allocate(
      {Q(1, 10, 300, 400), Q(2, 20, 10, 4000)}, 2000);
  // A plain fraction would give q1 less than its minimum; it is floored.
  EXPECT_GE(out[0], 300);
  EXPECT_LE(Sum(out), 2000);
  EXPECT_GT(out[1], out[0]);
}

TEST(ProportionalStrategy, FullFractionWhenMemoryAbounds) {
  ProportionalStrategy strat(-1);
  auto out = strat.Allocate({Q(1, 10, 10, 700), Q(2, 20, 10, 800)}, 10000);
  EXPECT_EQ(out, (AllocationVector{700, 800}));
}

TEST(ProportionalStrategy, AdmitsOnlyWhatMinimumsAllow) {
  ProportionalStrategy strat(-1);
  auto out = strat.Allocate(
      {Q(1, 10, 60, 80), Q(2, 20, 60, 80), Q(3, 30, 60, 80)}, 130);
  EXPECT_GT(out[0], 0);
  EXPECT_GT(out[1], 0);
  EXPECT_EQ(out[2], 0);
}

TEST(ProportionalStrategy, Names) {
  EXPECT_EQ(ProportionalStrategy(-1).name(), "Proportional");
  EXPECT_EQ(ProportionalStrategy(5).name(), "Proportional-5");
}

// --- shared invariants (property sweep) --------------------------------------

struct StrategyCase {
  const char* label;
  std::shared_ptr<AllocationStrategy> strategy;
};

class StrategyInvariants
    : public ::testing::TestWithParam<std::tuple<int, int>> {
 public:
  static std::shared_ptr<AllocationStrategy> Make(int which) {
    switch (which) {
      case 0: return std::make_shared<MaxStrategy>(false);
      case 1: return std::make_shared<MaxStrategy>(true);
      case 2: return std::make_shared<MinMaxStrategy>(-1);
      case 3: return std::make_shared<MinMaxStrategy>(4);
      case 4: return std::make_shared<ProportionalStrategy>(-1);
      default: return std::make_shared<ProportionalStrategy>(4);
    }
  }
};

TEST_P(StrategyInvariants, NeverOversubscribesAndRespectsBounds) {
  auto [which, seed] = GetParam();
  auto strategy = Make(which);
  Rng rng(static_cast<uint64_t>(seed) * 97 + 13);

  int n = static_cast<int>(rng.UniformInt(1, 25));
  std::vector<MemRequest> queries;
  for (int i = 0; i < n; ++i) {
    PageCount min = rng.UniformInt(1, 80);
    PageCount max = min + rng.UniformInt(0, 1900);
    queries.push_back(
        Q(static_cast<QueryId>(i), rng.Uniform(0.0, 1000.0), min, max));
  }
  std::sort(queries.begin(), queries.end(),
            [](const MemRequest& a, const MemRequest& b) {
              return a.deadline < b.deadline;
            });
  PageCount total = rng.UniformInt(100, 4000);

  AllocationVector out = strategy->Allocate(queries, total);
  ASSERT_EQ(out.size(), queries.size());
  PageCount sum = 0;
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_GE(out[i], 0);
    EXPECT_LE(out[i], queries[i].max_memory);
    // Admitted queries always receive at least their minimum.
    if (out[i] > 0) {
      EXPECT_GE(out[i], queries[i].min_memory);
    }
    sum += out[i];
  }
  EXPECT_LE(sum, total);
}

TEST_P(StrategyInvariants, EdPriorityIsRespected) {
  auto [which, seed] = GetParam();
  auto strategy = Make(which);
  Rng rng(static_cast<uint64_t>(seed) * 31 + 7);
  // Identical queries: an admitted query may never sit after a rejected
  // one with an earlier deadline (no starvation of seniors by juniors
  // with the same shape).
  std::vector<MemRequest> queries;
  for (int i = 0; i < 12; ++i) {
    queries.push_back(Q(static_cast<QueryId>(i), 10.0 * (i + 1), 40, 700));
  }
  PageCount total = rng.UniformInt(40, 3000);
  AllocationVector out = strategy->Allocate(queries, total);
  bool seen_zero = false;
  for (PageCount a : out) {
    if (a == 0) seen_zero = true;
    if (seen_zero) {
      EXPECT_EQ(a, 0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, StrategyInvariants,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Range(0, 8)));

}  // namespace
}  // namespace rtq::core
