#include "stats/time_weighted.h"

#include <gtest/gtest.h>

namespace rtq::stats {
namespace {

TEST(TimeWeightedAverage, ConstantSignal) {
  TimeWeightedAverage twa;
  twa.Start(0.0, 3.0);
  EXPECT_DOUBLE_EQ(twa.Average(10.0), 3.0);
  EXPECT_DOUBLE_EQ(twa.Integral(10.0), 30.0);
}

TEST(TimeWeightedAverage, PiecewiseSignal) {
  TimeWeightedAverage twa;
  twa.Start(0.0, 0.0);
  twa.Update(2.0, 4.0);   // 0 for [0,2)
  twa.Update(6.0, 1.0);   // 4 for [2,6)
  // 1 for [6,10): integral = 0*2 + 4*4 + 1*4 = 20.
  EXPECT_DOUBLE_EQ(twa.Integral(10.0), 20.0);
  EXPECT_DOUBLE_EQ(twa.Average(10.0), 2.0);
}

TEST(TimeWeightedAverage, ZeroDurationUpdatesAreHarmless) {
  TimeWeightedAverage twa;
  twa.Start(0.0, 1.0);
  twa.Update(5.0, 2.0);
  twa.Update(5.0, 3.0);
  twa.Update(5.0, 4.0);
  // 1 for [0,5), then 4 for [5,10): integral 5 + 20.
  EXPECT_DOUBLE_EQ(twa.Integral(10.0), 25.0);
}

TEST(TimeWeightedAverage, AverageAtWindowStartIsCurrentValue) {
  TimeWeightedAverage twa;
  twa.Start(3.0, 9.0);
  EXPECT_DOUBLE_EQ(twa.Average(3.0), 9.0);
}

TEST(TimeWeightedAverage, ResetWindowKeepsValue) {
  TimeWeightedAverage twa;
  twa.Start(0.0, 2.0);
  twa.Update(4.0, 6.0);
  twa.ResetWindow(5.0);
  EXPECT_DOUBLE_EQ(twa.current_value(), 6.0);
  // New window sees only the post-reset signal.
  EXPECT_DOUBLE_EQ(twa.Average(7.0), 6.0);
  EXPECT_DOUBLE_EQ(twa.Integral(7.0), 12.0);
}

TEST(TimeWeightedAverage, NonZeroStartTime) {
  TimeWeightedAverage twa;
  twa.Start(100.0, 5.0);
  twa.Update(110.0, 10.0);
  EXPECT_DOUBLE_EQ(twa.Average(120.0), 7.5);
}

}  // namespace
}  // namespace rtq::stats
