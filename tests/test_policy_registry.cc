#include "core/policy_registry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "engine/rtdbs.h"
#include "harness/paper_experiments.h"

namespace rtq::core {
namespace {

TEST(PolicySpec, ParsesNameAndArgs) {
  auto plain = PolicySpec::Parse("pmm");
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value().name, "pmm");
  EXPECT_EQ(plain.value().args, "");

  auto with_args = PolicySpec::Parse("pmm-fair:w=1,2");
  ASSERT_TRUE(with_args.ok());
  EXPECT_EQ(with_args.value().name, "pmm-fair");
  EXPECT_EQ(with_args.value().args, "w=1,2");
  EXPECT_EQ(with_args.value().ToString(), "pmm-fair:w=1,2");
}

TEST(PolicySpec, RejectsMalformedNames) {
  for (const char* bad : {"", ":5", "Max", "min max", "5minmax", "-x"}) {
    auto spec = PolicySpec::Parse(bad);
    EXPECT_FALSE(spec.ok()) << bad;
    EXPECT_EQ(spec.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(PolicyRegistry, BuiltinsAreRegistered) {
  auto& registry = PolicyRegistry::Global();
  for (const char* name :
       {"max", "minmax", "prop", "pmm", "pmm-fair", "none", "oracle-ed",
        "pmm-class", "edf-shed", "pmm-tick", "pmm-predict", "select"}) {
    EXPECT_TRUE(registry.Contains(name)) << name;
  }
}

TEST(PolicyRegistry, IterationIsDeterministic) {
  auto names = PolicyRegistry::Global().Names();
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
  EXPECT_EQ(names, PolicyRegistry::Global().Names());
  // Self-registered plugins from src/policies/ participate.
  EXPECT_NE(std::find(names.begin(), names.end(), "none"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "oracle-ed"), names.end());
}

TEST(PolicyRegistry, UnknownPolicyIsAStatusNotACheck) {
  auto policy = PolicyRegistry::Global().Create("definitely-not-registered");
  ASSERT_FALSE(policy.ok());
  EXPECT_EQ(policy.status().code(), StatusCode::kNotFound);
}

TEST(PolicyRegistry, MalformedArgsAreStatusErrors) {
  for (const char* bad :
       {"minmax:abc", "minmax:0", "minmax:-3", "prop:0", "max:bogus",
        "pmm:5", "pmm-fair:x=1", "pmm-fair:w=", "pmm-fair:w=1,zero",
        "pmm-fair:w=0,1", "pmm-fair:w=nan,1", "pmm-fair:w=inf", "none:1",
        "oracle-ed:m=0", "oracle-ed:m=1,2", "oracle-ed:m=nan",
        "oracle-ed:w=2", "pmm-class:targets=", "pmm-class:targets=0",
        "pmm-class:targets=1.5", "pmm-class:targets=6,zero",
        "pmm-class:targets=inf", "pmm-class:targets=1e19",
        "pmm-class:w=1", "edf-shed:m=0", "edf-shed:m=1,2", "edf-shed:m=nan",
        "edf-shed:x=2", "pmm-tick:ms=", "pmm-tick:ms=-1", "pmm-tick:ms=abc",
        "pmm-tick:s=5", "pmm-predict:window=2", "pmm-predict:lead=0",
        "pmm-predict:band=1.5", "pmm-predict:band=0", "pmm-predict:conf=2",
        "pmm-predict:x=1", "select:window=0", "select:bogus",
        "select:candidates=", "select:candidates=pmm+select"}) {
    auto policy = PolicyRegistry::Global().Create(bad);
    EXPECT_FALSE(policy.ok()) << bad;
    EXPECT_EQ(policy.status().code(), StatusCode::kInvalidArgument) << bad;
  }
}

TEST(PolicyRegistry, DuplicateRegistrationFails) {
  Status status = PolicyRegistry::Global().Register(
      "max", "again", [](const PolicySpec&) {
        return StatusOr<std::unique_ptr<MemoryPolicy>>(
            Status::Internal("unreachable"));
      });
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(PolicyRegistry, DescribeRoundTrips) {
  // Canonical specs reproduce themselves through Create -> Describe.
  for (const char* spec :
       {"max", "max:strict", "minmax", "minmax:5", "prop", "prop:10", "pmm",
        "pmm-fair:w=1,2", "pmm-fair:w=0.5,2.5", "none", "oracle-ed",
        "oracle-ed:m=1.5", "pmm-class", "pmm-class:targets=6,10",
        "edf-shed", "edf-shed:m=1.5", "pmm-tick:ms=0",
        "pmm-tick:ms=60000", "pmm-predict",
        "pmm-predict:window=8,lead=3,band=0.2,conf=0.6",
        "select:candidates=pmm+pmm-predict,window=4"}) {
    auto policy = PolicyRegistry::Global().Create(spec);
    ASSERT_TRUE(policy.ok()) << spec;
    EXPECT_EQ(policy.value()->Describe(), spec) << spec;
    // And the description is itself creatable (fixed point).
    auto again = PolicyRegistry::Global().Create(policy.value()->Describe());
    ASSERT_TRUE(again.ok()) << spec;
    EXPECT_EQ(again.value()->Describe(), policy.value()->Describe()) << spec;
  }
}

TEST(PolicyRegistry, NonCanonicalSpecsNormalize) {
  auto policy = PolicyRegistry::Global().Create("pmm-fair:w=1.0,2.00");
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy.value()->Describe(), "pmm-fair:w=1,2");
}

TEST(ParsePolicyList, SplitsSpecsAndKeepsWeightLists) {
  auto simple = ParsePolicyList("pmm,none");
  ASSERT_TRUE(simple.ok());
  EXPECT_EQ(simple.value(),
            (std::vector<std::string>{"pmm", "none"}));

  auto weights = ParsePolicyList("minmax:5,pmm-fair:w=1,2,max");
  ASSERT_TRUE(weights.ok());
  EXPECT_EQ(weights.value(), (std::vector<std::string>{
                                 "minmax:5", "pmm-fair:w=1,2", "max"}));

  auto spaced = ParsePolicyList(" pmm , oracle-ed:m=1.5 ");
  ASSERT_TRUE(spaced.ok());
  EXPECT_EQ(spaced.value(),
            (std::vector<std::string>{"pmm", "oracle-ed:m=1.5"}));
}

TEST(ParsePolicyList, KeyValueSegmentsFoldIntoThePreviousSpec) {
  // A segment that is a bare key=value pair ('=' before any ':')
  // continues the previous spec — this is what lets a canonical select
  // spec survive inside a comma-separated RTQ_POLICIES list.
  auto select = ParsePolicyList(
      "pmm,select:candidates=pmm+pmm-predict,window=4,none");
  ASSERT_TRUE(select.ok());
  EXPECT_EQ(select.value(),
            (std::vector<std::string>{
                "pmm", "select:candidates=pmm+pmm-predict,window=4",
                "none"}));

  auto predict = ParsePolicyList(
      "pmm-predict:window=8,lead=3,band=0.2,edf-shed:m=1.5");
  ASSERT_TRUE(predict.ok());
  EXPECT_EQ(predict.value(),
            (std::vector<std::string>{"pmm-predict:window=8,lead=3,band=0.2",
                                      "edf-shed:m=1.5"}));

  // A segment with ':' before '=' is a new spec, not a continuation.
  auto boundary = ParsePolicyList("pmm,pmm-class:targets=6,10");
  ASSERT_TRUE(boundary.ok());
  EXPECT_EQ(boundary.value(),
            (std::vector<std::string>{"pmm", "pmm-class:targets=6,10"}));
}

TEST(ParsePolicyList, RejectsGarbage) {
  EXPECT_FALSE(ParsePolicyList("").ok());
  EXPECT_FALSE(ParsePolicyList(",,").ok());
  EXPECT_FALSE(ParsePolicyList("pmm,,none").ok());
  EXPECT_FALSE(ParsePolicyList("5,pmm").ok());  // leading continuation
}

// ---------------------------------------------------------------------------
// Compat shim: deprecated PolicyKind configs must behave identically to
// their spec-string equivalents.
// ---------------------------------------------------------------------------

engine::SystemConfig ShimConfig(engine::PolicyConfig policy) {
  return harness::BaselineConfig(0.06, policy, /*seed=*/42);
}

/// Runs a short baseline simulation and fingerprints its trajectory.
std::tuple<uint64_t, int64_t, int64_t, double> Fingerprint(
    const engine::SystemConfig& config) {
  auto sys = engine::Rtdbs::Create(config);
  RTQ_CHECK(sys.ok());
  sys.value()->RunUntil(1200.0);
  engine::SystemSummary s = sys.value()->Summarize();
  return {s.events_dispatched, s.overall.completions, s.overall.misses,
          s.overall.avg_exec};
}

TEST(PolicyKindShim, EnumAndSpecConfigsProduceIdenticalRuns) {
  struct Case {
    engine::PolicyKind kind;
    int64_t mpl_limit;
    bool max_bypass;
    std::vector<double> fair_weights;
    const char* spec;
  };
  const Case cases[] = {
      {engine::PolicyKind::kMax, -1, true, {}, "max"},
      {engine::PolicyKind::kMax, -1, false, {}, "max:strict"},
      {engine::PolicyKind::kMinMax, -1, true, {}, "minmax"},
      {engine::PolicyKind::kMinMaxN, 4, true, {}, "minmax:4"},
      {engine::PolicyKind::kProportional, -1, true, {}, "prop"},
      {engine::PolicyKind::kProportionalN, 4, true, {}, "prop:4"},
      {engine::PolicyKind::kPmm, -1, true, {}, "pmm"},
      {engine::PolicyKind::kPmmFair, -1, true, {1.0}, "pmm-fair:w=1"},
  };
  for (const Case& c : cases) {
    engine::PolicyConfig legacy;
    legacy.kind = c.kind;
    legacy.mpl_limit = c.mpl_limit;
    legacy.max_bypass = c.max_bypass;
    legacy.fair_weights = c.fair_weights;
    EXPECT_EQ(legacy.ResolvedSpec(), c.spec);
    EXPECT_EQ(Fingerprint(ShimConfig(legacy)),
              Fingerprint(ShimConfig({c.spec})))
        << c.spec;
  }
}

TEST(PolicyKindShim, ExplicitSpecWinsOverEnumFields) {
  engine::PolicyConfig config{"minmax"};
  config.kind = engine::PolicyKind::kMax;  // deprecated field: ignored
  EXPECT_EQ(config.ResolvedSpec(), "minmax");
}

// ---------------------------------------------------------------------------
// The two plugin policies (registered from src/policies/, zero engine
// edits): behavioural sanity.
// ---------------------------------------------------------------------------

TEST(PluginPolicies, NoneAdmitsImmediatelyFcfs) {
  // Light load: the pool never fills, so with admission control absent
  // every query is granted its maximum the moment it arrives.
  auto sys =
      engine::Rtdbs::Create(harness::BaselineConfig(0.01, {"none"}));
  ASSERT_TRUE(sys.ok());
  sys.value()->RunUntil(3600.0);
  engine::SystemSummary s = sys.value()->Summarize();
  EXPECT_GT(s.overall.completions, 20);
  // A rare overlap of two large queries can still queue briefly, but
  // the mean wait stays far below any admission-controlled policy's.
  EXPECT_LT(s.overall.avg_wait, 1.0);
}

TEST(PluginPolicies, OracleNeverSpendsOnInfeasibleQueries) {
  // A margin so large that no query ever looks feasible: the oracle
  // admits nothing and every query ages out at its deadline.
  auto sys = engine::Rtdbs::Create(ShimConfig({"oracle-ed:m=1000"}));
  ASSERT_TRUE(sys.ok());
  sys.value()->RunUntil(1800.0);
  engine::SystemSummary s = sys.value()->Summarize();
  EXPECT_GT(s.overall.misses, 0);
  EXPECT_EQ(s.overall.completions, s.overall.misses);
  EXPECT_DOUBLE_EQ(s.avg_mpl, 0.0);
}

TEST(PluginPolicies, PmmClassWithoutTargetsDegeneratesToPmm) {
  // No quotas installed: the wrapper strategy is bypassed entirely, so
  // the trajectory is bit-identical to plain PMM.
  auto config_pmm = harness::MulticlassConfig(0.8, {"pmm"}, 42);
  auto config_class = harness::MulticlassConfig(0.8, {"pmm-class"}, 42);
  EXPECT_EQ(Fingerprint(config_pmm), Fingerprint(config_class));
}

TEST(PluginPolicies, PmmClassQuotaBoundsTheRealizedMpl) {
  // targets=1,1 admits at most one query per class at a time, so the
  // time-averaged MPL can never exceed 2 no matter how hard PMM pushes.
  auto sys = engine::Rtdbs::Create(
      harness::MulticlassConfig(1.0, {"pmm-class:targets=1,1"}, 42));
  ASSERT_TRUE(sys.ok());
  sys.value()->RunUntil(3600.0);
  engine::SystemSummary s = sys.value()->Summarize();
  EXPECT_GT(s.overall.completions, 100);
  EXPECT_LE(s.avg_mpl, 2.0 + 1e-9);
}

TEST(PluginPolicies, PmmClassRejectsTargetCountMismatch) {
  // Baseline has one class; two targets must fail at system build time.
  auto sys = engine::Rtdbs::Create(
      harness::BaselineConfig(0.06, {"pmm-class:targets=6,10"}));
  ASSERT_FALSE(sys.ok());
  EXPECT_EQ(sys.status().code(), StatusCode::kInvalidArgument);
}

TEST(PluginPolicies, EdfShedNeverSpendsOnInfeasibleQueries) {
  // A margin so large that nothing ever looks feasible: every query is
  // shed and ages out at its deadline, exactly like the oracle bound.
  auto sys = engine::Rtdbs::Create(ShimConfig({"edf-shed:m=1000"}));
  ASSERT_TRUE(sys.ok());
  sys.value()->RunUntil(1800.0);
  engine::SystemSummary s = sys.value()->Summarize();
  EXPECT_GT(s.overall.misses, 0);
  EXPECT_EQ(s.overall.completions, s.overall.misses);
  EXPECT_DOUBLE_EQ(s.avg_mpl, 0.0);
}

TEST(PluginPolicies, OracleBeatsMaxUnderOverload) {
  // Under heavy overload the clairvoyant filter should waste no memory
  // on doomed queries, so it cannot do worse than plain Max.
  auto oracle = Fingerprint(harness::BaselineConfig(0.12, {"oracle-ed"}));
  auto max = Fingerprint(harness::BaselineConfig(0.12, {"max"}));
  EXPECT_LE(std::get<2>(oracle), std::get<2>(max));
}

}  // namespace
}  // namespace rtq::core
