// The mixshift scenario is a drop-in replacement for the hand-rolled
// Activate/Deactivate alternation bench_workload_changes used to carry:
// the scripted rate-0 segments consume one orphaned inter-arrival draw
// at each segment end — exactly what Source::Deactivate leaves behind as
// an epoch-orphaned event — so both modes draw the same randomness at
// the same points and emit the identical query stream.
//
// Pinned here by running both modes and demanding exact equality of
// every query-level metric, overall and per alternation interval.
//
// events_dispatched is deliberately NOT compared: the hand-rolled mode's
// orphaned arrival events still fire as no-ops (epoch mismatch), so its
// event count is slightly higher; the scenario engine never schedules
// them. All query-visible behaviour is identical.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "engine/rtdbs.h"
#include "harness/paper_experiments.h"
#include "workload/trace.h"

namespace rtq::engine {
namespace {

constexpr int kIntervals = 6;
constexpr SimTime kIntervalS = 600.0;

struct Observed {
  SystemSummary summary;
  std::vector<ClassSummary> windows;
};

/// The old bench_workload_changes job body: flip class activations at
/// every interval boundary, Medium (class 0) first.
Observed RunHandRolled(const PolicyConfig& policy) {
  SystemConfig config = harness::WorkloadChangeConfig(
      policy, /*medium_active=*/true, /*small_active=*/false, /*seed=*/42);
  auto sys = Rtdbs::Create(config);
  RTQ_CHECK_MSG(sys.ok(), sys.status().ToString().c_str());
  Rtdbs& rtdbs = *sys.value();
  Observed out;
  for (int i = 0; i < kIntervals; ++i) {
    bool medium = i % 2 == 0;
    if (i > 0) {
      if (medium) {
        rtdbs.source().Deactivate(1);
        rtdbs.source().Activate(0);
      } else {
        rtdbs.source().Deactivate(0);
        rtdbs.source().Activate(1);
      }
    }
    rtdbs.RunUntil((i + 1) * kIntervalS);
    out.windows.push_back(MetricsCollector::WindowSummary(
        rtdbs.metrics().records(), i * kIntervalS, (i + 1) * kIntervalS,
        /*query_class=*/-1));
  }
  out.summary = rtdbs.Summarize();
  return out;
}

Observed RunScenario(const PolicyConfig& policy) {
  std::string spec = "mixshift:interval=" + workload::FormatDouble(kIntervalS) +
                     ",intervals=" + std::to_string(kIntervals);
  SystemConfig config = harness::ScenarioConfig(spec, policy, /*seed=*/42);
  auto sys = Rtdbs::Create(config);
  RTQ_CHECK_MSG(sys.ok(), sys.status().ToString().c_str());
  Rtdbs& rtdbs = *sys.value();
  rtdbs.RunUntil(kIntervals * kIntervalS);
  Observed out;
  for (int i = 0; i < kIntervals; ++i) {
    out.windows.push_back(MetricsCollector::WindowSummary(
        rtdbs.metrics().records(), i * kIntervalS, (i + 1) * kIntervalS,
        /*query_class=*/-1));
  }
  out.summary = rtdbs.Summarize();
  return out;
}

void ExpectIdentical(const ClassSummary& a, const ClassSummary& b) {
  EXPECT_EQ(a.completions, b.completions);
  EXPECT_EQ(a.misses, b.misses);
  EXPECT_DOUBLE_EQ(a.miss_ratio, b.miss_ratio);
  EXPECT_DOUBLE_EQ(a.avg_wait, b.avg_wait);
  EXPECT_DOUBLE_EQ(a.avg_exec, b.avg_exec);
  EXPECT_DOUBLE_EQ(a.avg_response, b.avg_response);
  EXPECT_DOUBLE_EQ(a.avg_fluctuations, b.avg_fluctuations);
}

TEST(ScenarioEquivalence, MixshiftMatchesHandRolledAlternation) {
  for (const char* policy : {"pmm", "max"}) {
    SCOPED_TRACE(policy);
    Observed hand = RunHandRolled({policy});
    Observed scripted = RunScenario({policy});

    ASSERT_GT(hand.summary.overall.completions, 0);
    ExpectIdentical(hand.summary.overall, scripted.summary.overall);
    ASSERT_EQ(hand.summary.per_class.size(),
              scripted.summary.per_class.size());
    for (size_t c = 0; c < hand.summary.per_class.size(); ++c) {
      ExpectIdentical(hand.summary.per_class[c],
                      scripted.summary.per_class[c]);
    }
    for (int i = 0; i < kIntervals; ++i) {
      SCOPED_TRACE("interval " + std::to_string(i));
      ExpectIdentical(hand.windows[static_cast<size_t>(i)],
                      scripted.windows[static_cast<size_t>(i)]);
    }
    EXPECT_DOUBLE_EQ(hand.summary.avg_mpl, scripted.summary.avg_mpl);
    EXPECT_DOUBLE_EQ(hand.summary.cpu_utilization,
                     scripted.summary.cpu_utilization);
  }
}

}  // namespace
}  // namespace rtq::engine
