// Registry-wide scenario-generator properties, mirroring
// test_policy_property.cc: these iterate ScenarioRegistry::Global()
// .Names(), so every future generator is covered the moment it
// registers:
//
//  1. every registered name is creatable bare (factories choose
//     sensible defaults);
//  2. the canonical name is a Create fixed point, so spec strings are
//     safe to persist in trace headers and BENCH_*.json;
//  3. generation is deterministic: same (spec, seed) renders a
//     byte-identical serialized trace;
//  4. the determinism gate: a live ScenarioSource run and a replay of
//     the RenderScenarioTrace trace produce bit-identical engine
//     trajectories — completions, misses, response times, and the exact
//     event count;
//  5. RunPool scheduling is irrelevant: jobs=1 and jobs=4 sweeps return
//     identical summaries.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "engine/rtdbs.h"
#include "harness/paper_experiments.h"
#include "harness/runner.h"
#include "workload/scenario_registry.h"
#include "workload/trace.h"

namespace rtq::workload {
namespace {

constexpr SimTime kHorizon = 900.0;

/// Scenario parameterizations whose features fire inside the short test
/// horizon (bare defaults put e.g. the flash crowd at t=3600).
std::string ShortSpec(const std::string& name) {
  if (name == "diurnal") return "diurnal:period=600";
  if (name == "flash") return "flash:at=300,dur=120,decay=60";
  if (name == "burst") return "burst:tlo=300,thi=100";
  if (name == "mixshift") return "mixshift:interval=300,intervals=3";
  return name;
}

using EngineFingerprint = std::tuple<uint64_t, int64_t, int64_t, double,
                                     double>;

EngineFingerprint Fingerprint(const engine::SystemConfig& config) {
  auto sys = engine::Rtdbs::Create(config);
  RTQ_CHECK_MSG(sys.ok(), sys.status().ToString().c_str());
  sys.value()->RunUntil(kHorizon);
  engine::SystemSummary s = sys.value()->Summarize();
  return {s.events_dispatched, s.overall.completions, s.overall.misses,
          s.overall.avg_exec, s.overall.avg_wait};
}

TEST(ScenarioRegistry, EveryRegisteredScenarioIsCreatableBare) {
  auto names = ScenarioRegistry::Global().Names();
  ASSERT_GE(names.size(), 5u);  // the built-in catalog
  for (const std::string& name : names) {
    auto scenario = ScenarioRegistry::Global().Create(name);
    EXPECT_TRUE(scenario.ok())
        << name << ": " << scenario.status().ToString();
  }
}

TEST(ScenarioRegistry, CanonicalNameIsACreateFixedPoint) {
  for (const std::string& name : ScenarioRegistry::Global().Names()) {
    auto scenario = ScenarioRegistry::Global().Create(name);
    ASSERT_TRUE(scenario.ok()) << name;
    std::string canonical = scenario.value().name;
    auto again = ScenarioRegistry::Global().Create(canonical);
    ASSERT_TRUE(again.ok()) << name << " -> " << canonical << ": "
                            << again.status().ToString();
    EXPECT_EQ(again.value().name, canonical) << name;
    ASSERT_EQ(again.value().classes.size(), scenario.value().classes.size());
  }
}

TEST(ScenarioRegistry, MalformedSpecsReturnStatusErrors) {
  const char* bad[] = {
      "",                      // empty name
      "Diurnal",               // names are lowercase
      "no-such-scenario",      // unknown
      "diurnal:bogus=1",       // unknown key
      "diurnal:rate",          // not k=v
      "diurnal:rate=abc",      // non-numeric value
      "diurnal:rate=1,rate=2", // duplicate key
      "diurnal:amp=3",         // amplitude out of [0,1]... caught below
  };
  for (const char* spec : bad) {
    auto scenario = ScenarioRegistry::Global().Create(spec);
    if (scenario.ok()) {
      // Parameter-range violations surface at Validate time instead.
      engine::SystemConfig config =
          harness::WorkloadChangeConfig({"pmm"}, true, true, 42);
      config.scenario = scenario.value();
      EXPECT_FALSE(config.Validate().ok()) << spec;
    }
  }
  // The two must agree 1:1 with the workload's class list.
  auto scenario = ScenarioRegistry::Global().Create("diurnal");
  ASSERT_TRUE(scenario.ok());
  WorkloadSpec one_class;
  one_class.classes.emplace_back();
  EXPECT_FALSE(scenario.value().Validate(one_class).ok());
}

TEST(ScenarioProperty, SameSpecAndSeedRenderByteIdenticalTraces) {
  for (const std::string& name : ScenarioRegistry::Global().Names()) {
    SCOPED_TRACE(name);
    engine::SystemConfig config =
        harness::ScenarioConfig(ShortSpec(name), {"pmm"}, /*seed=*/42);
    auto a = engine::RenderScenarioTrace(config, kHorizon);
    auto b = engine::RenderScenarioTrace(config, kHorizon);
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(SerializeTrace(a.value()), SerializeTrace(b.value()));
    EXPECT_GT(a.value().records.size(), 0u);
    // A different seed must produce a different arrival stream (the
    // generators are genuinely stochastic, not constant).
    engine::SystemConfig reseeded =
        harness::ScenarioConfig(ShortSpec(name), {"pmm"}, /*seed=*/43);
    auto c = engine::RenderScenarioTrace(reseeded, kHorizon);
    ASSERT_TRUE(c.ok());
    EXPECT_NE(SerializeTrace(a.value()), SerializeTrace(c.value()));
  }
}

TEST(ScenarioProperty, TraceReplayReproducesLiveGenerationBitIdentically) {
  for (const std::string& name : ScenarioRegistry::Global().Names()) {
    SCOPED_TRACE(name);
    engine::SystemConfig live =
        harness::ScenarioConfig(ShortSpec(name), {"pmm"}, /*seed=*/42);
    auto trace = engine::RenderScenarioTrace(live, kHorizon);
    ASSERT_TRUE(trace.ok()) << trace.status().ToString();

    engine::SystemConfig replay = live;
    replay.scenario = ScenarioSpec{};
    replay.trace = std::make_shared<const Trace>(std::move(trace).value());

    // Bit-identical trajectory, including the exact event count: the
    // replay schedules the same arrivals at the same instants.
    EXPECT_EQ(Fingerprint(live), Fingerprint(replay));
  }
}

TEST(ScenarioProperty, PoolParallelismDoesNotChangeResults) {
  std::vector<harness::RunSpec> specs;
  for (const std::string& name : ScenarioRegistry::Global().Names()) {
    specs.push_back({name, harness::ScenarioConfig(ShortSpec(name), {"pmm"}),
                     kHorizon});
  }
  auto serial = harness::RunPool(specs, /*jobs=*/1);
  auto parallel = harness::RunPool(specs, /*jobs=*/4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    SCOPED_TRACE(specs[i].label);
    EXPECT_EQ(serial[i].summary.events_dispatched,
              parallel[i].summary.events_dispatched);
    EXPECT_EQ(serial[i].summary.overall.completions,
              parallel[i].summary.overall.completions);
    EXPECT_EQ(serial[i].summary.overall.misses,
              parallel[i].summary.overall.misses);
    EXPECT_DOUBLE_EQ(serial[i].summary.overall.avg_response,
                     parallel[i].summary.overall.avg_response);
  }
}

TEST(ScenarioProperty, TraceSourceRejectsInconsistentTraces) {
  engine::SystemConfig config =
      harness::ScenarioConfig(ShortSpec("diurnal"), {"pmm"}, /*seed=*/42);
  auto trace = engine::RenderScenarioTrace(config, kHorizon);
  ASSERT_TRUE(trace.ok());
  ASSERT_GT(trace.value().records.size(), 0u);
  config.scenario = ScenarioSpec{};

  // Class count mismatch.
  {
    Trace t = trace.value();
    t.num_classes = 5;
    for (auto& r : t.records) r.query_class = 0;
    engine::SystemConfig c = config;
    c.trace = std::make_shared<const Trace>(std::move(t));
    EXPECT_FALSE(engine::Rtdbs::Create(c).ok());
  }
  // Unknown relation id.
  {
    Trace t = trace.value();
    t.records[0].r = 1 << 20;
    engine::SystemConfig c = config;
    c.trace = std::make_shared<const Trace>(std::move(t));
    EXPECT_FALSE(engine::Rtdbs::Create(c).ok());
  }
  // Stand-alone time disagreeing with the cost model.
  {
    Trace t = trace.value();
    t.records[0].standalone *= 2.0;
    engine::SystemConfig c = config;
    c.trace = std::make_shared<const Trace>(std::move(t));
    EXPECT_FALSE(engine::Rtdbs::Create(c).ok());
  }
  // The unmodified trace is accepted.
  {
    engine::SystemConfig c = config;
    c.trace = std::make_shared<const Trace>(trace.value());
    EXPECT_TRUE(engine::Rtdbs::Create(c).ok());
  }
}

}  // namespace
}  // namespace rtq::workload
