#include "exec/external_sort.h"

#include <gtest/gtest.h>

#include <tuple>

#include "mock_exec_context.h"

namespace rtq::exec {
namespace {

using rtq::testing::MockExecContext;

ExternalSort::Inputs Inputs(PageCount pages) {
  ExternalSort::Inputs in;
  in.disk = 0;
  in.start = 1000;
  in.pages = pages;
  return in;
}

TEST(ExternalSort, MemoryDemandsMatchPaper) {
  // "The maximum memory requirement of an external sort is the size of
  //  its operand relation ... it can run with as few as three pages."
  ExternalSort sort(ExecParams(), Inputs(1200));
  EXPECT_EQ(sort.max_memory(), 1200);
  EXPECT_EQ(sort.min_memory(), 3);
}

TEST(ExternalSort, InMemorySortHasNoTempIo) {
  MockExecContext ctx;
  ExternalSort sort(ExecParams(), Inputs(600));
  bool finished = false;
  sort.on_finished = [&] { finished = true; };
  sort.SetAllocation(600);
  sort.Start(&ctx);
  ctx.PumpAll();
  ASSERT_TRUE(finished);
  EXPECT_EQ(ctx.pages_read, 600);
  EXPECT_EQ(ctx.pages_written, 0);
  EXPECT_EQ(ctx.temp_allocations, 0);
  EXPECT_EQ(sort.runs_formed(), 0);  // never spilled
}

TEST(ExternalSort, SpillingSortWritesRunsAndMerges) {
  MockExecContext ctx;
  ExternalSort sort(ExecParams(), Inputs(600));
  bool finished = false;
  sort.on_finished = [&] { finished = true; };
  sort.SetAllocation(50);  // runs of ~96 pages -> ~7 runs, fan-in 49
  sort.Start(&ctx);
  ctx.PumpAll();
  ASSERT_TRUE(finished);
  EXPECT_GE(sort.runs_formed(), 5);
  EXPECT_EQ(sort.merge_steps(), 1);  // single final merge, fan-in >= runs
  // Run formation writes ~600; final merge reads them back, no writes.
  EXPECT_NEAR(static_cast<double>(ctx.pages_written), 600.0, 10.0);
  EXPECT_NEAR(static_cast<double>(ctx.pages_read), 1200.0, 10.0);
  EXPECT_EQ(ctx.live_temp_extents(), 0);
}

TEST(ExternalSort, MinMemoryDoesMultipleMergePasses) {
  MockExecContext ctx;
  ExternalSort sort(ExecParams(), Inputs(120));
  bool finished = false;
  sort.on_finished = [&] { finished = true; };
  sort.SetAllocation(3);  // 1-page heap; runs floor at one 6-page block
  sort.Start(&ctx);
  ctx.PumpAll();
  ASSERT_TRUE(finished);
  EXPECT_GE(sort.runs_formed(), 15);
  EXPECT_GT(sort.merge_steps(), 10);
  // Multi-pass merging re-reads pages many times.
  EXPECT_GT(ctx.pages_read, 3 * 120);
}

TEST(ExternalSort, RunLengthTracksAllocation) {
  MockExecContext ctx;
  ExternalSort sort(ExecParams(), Inputs(1000));
  sort.on_finished = [] {};
  sort.SetAllocation(52);  // heap 50 pages -> ~100-page runs
  sort.Start(&ctx);
  ctx.PumpAll();
  EXPECT_NEAR(static_cast<double>(sort.runs_formed()), 10.0, 2.0);
}

TEST(ExternalSort, ShrinkDuringFormationForcesSpill) {
  MockExecContext ctx;
  ExternalSort sort(ExecParams(), Inputs(600));
  bool finished = false;
  sort.on_finished = [&] { finished = true; };
  sort.SetAllocation(600);  // starts in-memory
  sort.Start(&ctx);
  for (int i = 0; i < 60; ++i) ctx.Pump();
  sort.SetAllocation(20);  // no longer fits: must spill
  ctx.PumpAll();
  ASSERT_TRUE(finished);
  EXPECT_GT(ctx.pages_written, 0);
  EXPECT_GE(sort.runs_formed(), 1);
}

TEST(ExternalSort, SuspensionAndResume) {
  MockExecContext ctx;
  ExternalSort sort(ExecParams(), Inputs(400));
  bool finished = false;
  sort.on_finished = [&] { finished = true; };
  sort.SetAllocation(30);
  sort.Start(&ctx);
  for (int i = 0; i < 50; ++i) ctx.Pump();
  sort.SetAllocation(0);
  ctx.PumpAll();
  EXPECT_FALSE(finished);
  sort.SetAllocation(30);
  ctx.PumpAll();
  EXPECT_TRUE(finished);
}

TEST(ExternalSort, GrowthDuringMergeIncreasesFanIn) {
  MockExecContext small_ctx, big_ctx;
  // Same relation, same formation memory; one sort gets a big boost for
  // the merge phase and must finish with fewer merge steps.
  ExternalSort slow(ExecParams(), Inputs(400));
  slow.on_finished = [] {};
  slow.SetAllocation(5);
  slow.Start(&small_ctx);
  small_ctx.PumpAll();

  ExternalSort fast(ExecParams(), Inputs(400));
  fast.on_finished = [] {};
  fast.SetAllocation(5);
  fast.Start(&big_ctx);
  for (int i = 0; i < 150; ++i) big_ctx.Pump();  // finish formation
  fast.SetAllocation(300);                        // merge with huge fan-in
  big_ctx.PumpAll();

  EXPECT_LT(fast.merge_steps(), slow.merge_steps());
  EXPECT_LT(big_ctx.pages_read, small_ctx.pages_read);
}

TEST(ExternalSort, AbortReleasesTempSpace) {
  MockExecContext ctx;
  ExternalSort sort(ExecParams(), Inputs(400));
  sort.on_finished = [] {};
  sort.SetAllocation(10);
  sort.Start(&ctx);
  for (int i = 0; i < 80; ++i) ctx.Pump();
  EXPECT_GT(ctx.live_temp_extents(), 0);
  sort.Abort();
  EXPECT_EQ(ctx.live_temp_extents(), 0);
}

TEST(ExternalSort, MergeReadsAreSinglePage) {
  MockExecContext ctx;
  ExternalSort sort(ExecParams(), Inputs(200));
  sort.on_finished = [] {};
  sort.SetAllocation(10);
  sort.Start(&ctx);
  // Drain formation (~34 reads + spools), then check merge read sizes.
  for (int i = 0; i < 120; ++i) ctx.Pump();
  // In the merge phase now: pump a few steps and observe page-sized reads.
  bool saw_merge_read = false;
  for (int i = 0; i < 40 && ctx.Pump(); ++i) {
    if (ctx.last_read_pages == 1) saw_merge_read = true;
  }
  EXPECT_TRUE(saw_merge_read);
}

/// Property grid: I/O conservation across sizes and allocations.
class SortConservation
    : public ::testing::TestWithParam<std::tuple<PageCount, PageCount>> {};

TEST_P(SortConservation, IoInvariants) {
  auto [pages, alloc] = GetParam();
  MockExecContext ctx;
  ExternalSort sort(ExecParams(), Inputs(pages));
  bool finished = false;
  sort.on_finished = [&] { finished = true; };
  sort.SetAllocation(std::min<PageCount>(alloc, pages));
  sort.Start(&ctx);
  ctx.PumpAll(5'000'000);
  ASSERT_TRUE(finished);
  EXPECT_GE(ctx.pages_read, pages);        // operand read at least once
  EXPECT_EQ(ctx.live_temp_extents(), 0);   // everything released
  if (alloc >= pages) {
    EXPECT_EQ(ctx.pages_written, 0);
  } else {
    EXPECT_GE(ctx.pages_written, pages - 12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SortConservation,
    ::testing::Combine(::testing::Values<PageCount>(60, 150, 600, 1800),
                       ::testing::Values<PageCount>(3, 10, 64, 2000)));

}  // namespace
}  // namespace rtq::exec
