// ShardedRtdbs: placement determinism, config cross-validation, the
// shards=1 ≡ unsharded bit-identity pin, cluster conservation laws,
// global-MPL coordination, and a registry-wide property that every
// policy runs under shards=4 untouched.

#include <gtest/gtest.h>

#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "core/policy_registry.h"
#include "core/shard_coordinator.h"
#include "engine/metrics.h"
#include "engine/rtdbs.h"
#include "engine/sharded_rtdbs.h"
#include "engine/system_config.h"
#include "harness/paper_experiments.h"
#include "workload/placement.h"

namespace rtq::engine {
namespace {

// ---------------------------------------------------------------------------
// Config cross-validation (the num_disks bugfix)
// ---------------------------------------------------------------------------

TEST(SystemConfigValidate, RejectsDiskCountMismatchNamingBothValues) {
  SystemConfig config = harness::BaselineConfig(0.06, {"max"}, 42);
  config.num_disks = 10;
  config.database.num_disks = 6;
  Status s = config.Validate();
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(s.ToString().find("database.num_disks (6)"), std::string::npos)
      << s.ToString();
  EXPECT_NE(s.ToString().find("num_disks (10)"), std::string::npos)
      << s.ToString();
}

TEST(SystemConfigValidate, AcceptsExplicitMatch) {
  SystemConfig config = harness::BaselineConfig(0.06, {"max"}, 42);
  config.num_disks = 10;
  config.database.num_disks = 10;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(SystemConfigValidate, ZeroSentinelDerivesLayoutFromEngine) {
  SystemConfig config = harness::BaselineConfig(0.06, {"max"}, 42);
  ASSERT_EQ(config.database.num_disks, 0)
      << "harness configs should rely on derivation, not hand-sync";
  config.num_disks = 7;
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_EQ(config.EffectiveDatabase().num_disks, 7);
  // The original spec is untouched (EffectiveDatabase returns a copy).
  EXPECT_EQ(config.database.num_disks, 0);
}

TEST(ShardConfigValidate, AcceptsGoodSpecsRejectsBadOnes) {
  ShardConfig good;
  good.num_shards = 4;
  good.placement = "skew:hot=0.7";
  good.admission = "global:mpl=12";
  EXPECT_TRUE(good.Validate().ok());

  ShardConfig bad = good;
  bad.num_shards = 0;
  EXPECT_FALSE(bad.Validate().ok());
  bad = good;
  bad.placement = "roundrobin";
  EXPECT_FALSE(bad.Validate().ok());
  bad = good;
  bad.admission = "global";
  EXPECT_FALSE(bad.Validate().ok());
  bad = good;
  bad.admission = "global:mpl=0";
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(ShardConfigValidate, AdmissionSpecParses) {
  auto local = core::ParseAdmissionSpec("local");
  ASSERT_TRUE(local.ok());
  EXPECT_EQ(local.value(), 0);
  auto global = core::ParseAdmissionSpec("global:mpl=24");
  ASSERT_TRUE(global.ok());
  EXPECT_EQ(global.value(), 24);
  EXPECT_FALSE(core::ParseAdmissionSpec("global:mpl=x").ok());
  EXPECT_FALSE(core::ParseAdmissionSpec("galactic").ok());
}

// ---------------------------------------------------------------------------
// Placement functions
// ---------------------------------------------------------------------------

TEST(ShardPlacement, HashIsDeterministicAndRoughlyUniform) {
  auto p = workload::ShardPlacement::Make("hash", 4);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().spec(), "hash");
  std::vector<int64_t> counts(4, 0);
  for (QueryId id = 0; id < 4000; ++id) {
    int32_t s = p.value().ShardOf(id, 0, 60);
    ASSERT_GE(s, 0);
    ASSERT_LT(s, 4);
    EXPECT_EQ(s, p.value().ShardOf(id, 0, 60)) << "non-deterministic";
    ++counts[static_cast<size_t>(s)];
  }
  for (int64_t c : counts) {
    EXPECT_GT(c, 4000 / 4 * 0.8) << "hash placement badly unbalanced";
  }
}

TEST(ShardPlacement, RangeDeclustersByRelationRanges) {
  auto p = workload::ShardPlacement::Make("range", 4);
  ASSERT_TRUE(p.ok());
  // Contiguous, monotone ranges over the relation id space; the query id
  // is irrelevant.
  int32_t prev = 0;
  for (int64_t rel = 0; rel < 60; ++rel) {
    int32_t s = p.value().ShardOf(/*id=*/123, rel, 60);
    EXPECT_EQ(s, p.value().ShardOf(/*id=*/999, rel, 60));
    EXPECT_GE(s, prev) << "ranges must be monotone in relation id";
    prev = s;
  }
  EXPECT_EQ(p.value().ShardOf(0, 0, 60), 0);
  EXPECT_EQ(p.value().ShardOf(0, 59, 60), 3);
}

TEST(ShardPlacement, SkewPinsTheHotFractionToShardZero) {
  auto p = workload::ShardPlacement::Make("skew:hot=0.8", 4);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().spec(), "skew:hot=0.80");
  EXPECT_DOUBLE_EQ(p.value().hot_fraction(), 0.8);
  int64_t hot = 0;
  std::set<int32_t> seen;
  const int64_t kIds = 10000;
  for (QueryId id = 0; id < kIds; ++id) {
    int32_t s = p.value().ShardOf(id, 0, 60);
    seen.insert(s);
    if (s == 0) ++hot;
  }
  EXPECT_EQ(seen.size(), 4u) << "cold shards must still receive traffic";
  EXPECT_GT(hot, kIds * 0.75);
  EXPECT_LT(hot, kIds * 0.85);
}

TEST(ShardPlacement, SingleShardAlwaysRoutesToZero) {
  for (const char* spec : {"hash", "range", "skew:hot=0.9"}) {
    auto p = workload::ShardPlacement::Make(spec, 1);
    ASSERT_TRUE(p.ok()) << spec;
    for (QueryId id = 0; id < 100; ++id) {
      EXPECT_EQ(p.value().ShardOf(id, static_cast<int64_t>(id % 7), 7), 0);
    }
  }
}

TEST(ShardPlacement, RejectsMalformedSpecs) {
  EXPECT_FALSE(workload::ShardPlacement::Make("modulo", 2).ok());
  EXPECT_FALSE(workload::ShardPlacement::Make("hash:x=1", 2).ok());
  EXPECT_FALSE(workload::ShardPlacement::Make("skew:hot=0", 2).ok());
  EXPECT_FALSE(workload::ShardPlacement::Make("skew:hot=1.5", 2).ok());
  EXPECT_FALSE(workload::ShardPlacement::Make("skew:cold=0.5", 2).ok());
  EXPECT_FALSE(workload::ShardPlacement::Make("hash", 0).ok());
}

// ---------------------------------------------------------------------------
// shards=1 ≡ unsharded (the bit-identity pin)
// ---------------------------------------------------------------------------

TEST(ShardedRtdbs, OneShardIsBitIdenticalToPlainRtdbs) {
  SystemConfig config = harness::BaselineConfig(0.06, {"pmm"}, 42);

  auto plain = Rtdbs::Create(config);
  ASSERT_TRUE(plain.ok());
  plain.value()->RunUntil(1800.0);

  ShardConfig shards;
  shards.num_shards = 1;
  shards.placement = "hash";
  auto cluster = ShardedRtdbs::Create(config, shards);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  cluster.value()->RunUntil(1800.0);

  std::vector<std::string> a, b;
  plain.value()->AppendStateDigest(&a);
  cluster.value()->shard(0).AppendStateDigest(&b);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "digest line " << i;
  }

  SystemSummary sp = plain.value()->Summarize();
  SystemSummary sc = cluster.value()->Summarize();
  EXPECT_EQ(sp.overall.completions, sc.overall.completions);
  EXPECT_EQ(sp.overall.misses, sc.overall.misses);
  EXPECT_EQ(sp.events_dispatched, sc.events_dispatched);
  EXPECT_DOUBLE_EQ(sp.avg_mpl, sc.avg_mpl);
  EXPECT_DOUBLE_EQ(sp.cpu_utilization, sc.cpu_utilization);
  EXPECT_EQ(cluster.value()->shard(0).routed_elsewhere(), 0);
}

// ---------------------------------------------------------------------------
// Cluster conservation + determinism
// ---------------------------------------------------------------------------

TEST(ShardedRtdbs, EveryArrivalIsOwnedByExactlyOneShard) {
  SystemConfig config = harness::BaselineConfig(0.12, {"max"}, 42);
  ShardConfig shards;
  shards.num_shards = 4;
  auto cluster = ShardedRtdbs::Create(config, shards);
  ASSERT_TRUE(cluster.ok());
  cluster.value()->RunUntil(1800.0);

  // Filtered replication: every shard generates the same stream...
  int64_t generated = cluster.value()->shard(0).arrivals().generated();
  EXPECT_GT(generated, 0);
  int64_t accepted_total = 0;
  for (int32_t s = 0; s < 4; ++s) {
    Rtdbs& shard = cluster.value()->shard(s);
    EXPECT_EQ(shard.arrivals().generated(), generated) << "shard " << s;
    accepted_total += generated - shard.routed_elsewhere();
  }
  // ...and the placement partitions it: accepted counts sum back to one
  // copy of the stream.
  EXPECT_EQ(accepted_total, generated);

  // The aggregate summary is the sum of the shard summaries.
  SystemSummary agg = cluster.value()->Summarize();
  int64_t completions = 0, misses = 0;
  for (int32_t s = 0; s < 4; ++s) {
    SystemSummary ss = cluster.value()->SummarizeShard(s);
    completions += ss.overall.completions;
    misses += ss.overall.misses;
  }
  EXPECT_EQ(agg.overall.completions, completions);
  EXPECT_EQ(agg.overall.misses, misses);
}

TEST(ShardedRtdbs, ReplaysBitIdentically) {
  SystemConfig config = harness::MulticlassConfig(0.4, {"pmm"}, 7);
  ShardConfig shards;
  shards.num_shards = 4;
  shards.placement = "skew:hot=0.6";

  std::vector<std::string> first, second;
  for (std::vector<std::string>* out : {&first, &second}) {
    auto cluster = ShardedRtdbs::Create(config, shards);
    ASSERT_TRUE(cluster.ok());
    cluster.value()->RunUntil(1200.0);
    cluster.value()->AppendStateDigest(out);
  }
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i], second[i]) << "digest line " << i;
  }
}

TEST(ShardedRtdbs, StepEventMatchesRunUntil) {
  SystemConfig config = harness::BaselineConfig(0.06, {"minmax:10"}, 42);
  ShardConfig shards;
  shards.num_shards = 2;

  auto stepped = ShardedRtdbs::Create(config, shards);
  auto ran = ShardedRtdbs::Create(config, shards);
  ASSERT_TRUE(stepped.ok() && ran.ok());
  ran.value()->RunUntil(600.0);
  // Stepping the same number of events from a fresh cluster must replay
  // the identical merged dispatch order.
  const uint64_t target = ran.value()->events_dispatched();
  ASSERT_GT(target, 0u);
  while (stepped.value()->events_dispatched() < target) {
    ASSERT_TRUE(stepped.value()->StepEvent());
  }
  SystemSummary a = stepped.value()->Summarize();
  SystemSummary b = ran.value()->Summarize();
  EXPECT_EQ(a.overall.completions, b.overall.completions);
  EXPECT_EQ(a.overall.misses, b.overall.misses);
}

// ---------------------------------------------------------------------------
// Global-MPL coordination
// ---------------------------------------------------------------------------

TEST(ShardedRtdbs, GlobalAdmissionNeverExceedsTheCap) {
  SystemConfig config = harness::BaselineConfig(0.12, {"max"}, 42);
  ShardConfig shards;
  shards.num_shards = 4;
  shards.admission = "global:mpl=3";
  auto cluster = ShardedRtdbs::Create(config, shards);
  ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
  cluster.value()->RunUntil(3600.0);

  const core::ShardCoordinator* coord = cluster.value()->coordinator();
  ASSERT_NE(coord, nullptr);
  EXPECT_EQ(coord->global_mpl(), 3);
  EXPECT_LE(coord->high_water(), 3);
  EXPECT_GT(coord->high_water(), 0);
  // Max admits everything locally, so a cluster cap this tight must have
  // refused admissions.
  EXPECT_GT(coord->refusals(), 0);
  // Slot accounting is conserved: slots still held equal the queries
  // still admitted.
  int64_t admitted = 0, held = 0;
  for (int32_t s = 0; s < 4; ++s) {
    admitted += cluster.value()->shard(s).memory_manager().admitted_count();
    held += coord->held_by(s);
  }
  EXPECT_EQ(admitted, coord->in_use());
  EXPECT_EQ(held, coord->in_use());
}

TEST(ShardedRtdbs, LocalAdmissionHasNoCoordinator) {
  SystemConfig config = harness::BaselineConfig(0.06, {"max"}, 42);
  ShardConfig shards;
  shards.num_shards = 2;
  auto cluster = ShardedRtdbs::Create(config, shards);
  ASSERT_TRUE(cluster.ok());
  EXPECT_EQ(cluster.value()->coordinator(), nullptr);
  EXPECT_EQ(cluster.value()->shard(0).policy().DisplayName(),
            cluster.value()->shard(1).policy().DisplayName());
}

// ---------------------------------------------------------------------------
// Registry-wide: every policy runs under shards=4 (no src/policies edits)
// ---------------------------------------------------------------------------

TEST(ShardedRtdbs, EveryRegisteredPolicyRunsUnderFourShards) {
  for (const std::string& name : core::PolicyRegistry::Global().Names()) {
    SCOPED_TRACE(name);
    SystemConfig config = harness::MulticlassConfig(0.4, {name}, 42);
    ShardConfig shards;
    shards.num_shards = 4;
    shards.placement = "skew:hot=0.6";
    auto cluster = ShardedRtdbs::Create(config, shards);
    ASSERT_TRUE(cluster.ok()) << cluster.status().ToString();
    cluster.value()->RunUntil(600.0);
    SystemSummary s = cluster.value()->Summarize();
    EXPECT_GT(s.events_dispatched, 0u);
    int64_t per_shard = 0;
    for (int32_t i = 0; i < 4; ++i) {
      per_shard += cluster.value()->SummarizeShard(i).overall.completions;
    }
    EXPECT_EQ(s.overall.completions, per_shard);
  }
}

// ---------------------------------------------------------------------------
// DiskUtilWindows (the probe re-init bugfix)
// ---------------------------------------------------------------------------

TEST(DiskUtilWindows, BootWindowMeasuresFromZeroBaselines) {
  DiskUtilWindows w;
  EXPECT_TRUE(w.Rebind(2, [](size_t) { return 0.0; }));
  // First window [0, 10): disk 0 busy 5s, disk 1 busy 10s.
  EXPECT_DOUBLE_EQ(w.Advance(0, 5.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(w.Advance(1, 10.0, 10.0), 1.0);
  // Second window: integrals advance, utilizations are in-window only.
  EXPECT_DOUBLE_EQ(w.Advance(0, 6.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(w.Advance(1, 10.0, 10.0), 0.0);
}

TEST(DiskUtilWindows, SameSizeRebindKeepsBaselines) {
  DiskUtilWindows w;
  w.Rebind(1, [](size_t) { return 0.0; });
  w.Advance(0, 4.0, 10.0);
  // A no-op rebind (same stream count) must not touch the baseline.
  EXPECT_FALSE(w.Rebind(1, [](size_t) { return 0.0; }));
  EXPECT_DOUBLE_EQ(w.Advance(0, 5.0, 10.0), 0.1);
}

TEST(DiskUtilWindows, ResizeReseedsFromLiveIntegralsWithoutSpiking) {
  DiskUtilWindows w;
  w.Rebind(1, [](size_t) { return 0.0; });
  w.Advance(0, 100.0, 10.0);
  // The farm grows mid-run to disks with large lifetime integrals. The
  // old incidental re-init to 0.0 would report util 100000/10 = 10000x;
  // re-seeding from the live integrals reports only in-window busy time.
  EXPECT_TRUE(w.Rebind(3, [](size_t d) { return 1.0e5 + 10.0 * d; }));
  EXPECT_DOUBLE_EQ(w.Advance(0, 1.0e5 + 5.0, 10.0), 0.5);
  EXPECT_DOUBLE_EQ(w.Advance(1, 1.0e5 + 10.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(w.Advance(2, 1.0e5 + 28.0, 10.0), 0.8);
}

}  // namespace
}  // namespace rtq::engine
