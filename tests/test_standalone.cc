#include "exec/standalone.h"

#include <gtest/gtest.h>

#include "engine/rtdbs.h"
#include "harness/paper_experiments.h"

namespace rtq::exec {
namespace {

TEST(Standalone, JoinRequestCounts) {
  StandaloneEstimate est = EstimateHashJoin(
      ExecParams(), model::DiskParams(), 40.0, 1200, 6000);
  EXPECT_EQ(est.io_requests, 1200 / 6 + 6000 / 6);
  EXPECT_GT(est.io_time, 0.0);
  EXPECT_GT(est.cpu_time, 0.0);
  EXPECT_GT(est.io_time, est.cpu_time);  // I/O-bound workload
}

TEST(Standalone, SortRequestCounts) {
  StandaloneEstimate est = EstimateExternalSort(
      ExecParams(), model::DiskParams(), 40.0, 1200);
  EXPECT_EQ(est.io_requests, 200);
}

TEST(Standalone, MonotoneInRelationSizes) {
  ExecParams exec;
  model::DiskParams disk;
  double prev = 0.0;
  for (PageCount r : {300, 600, 1200, 1800}) {
    double t = EstimateHashJoin(exec, disk, 40.0, r, 5 * r).total();
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(Standalone, FasterCpuShrinksCpuTimeOnly) {
  ExecParams exec;
  model::DiskParams disk;
  auto slow = EstimateHashJoin(exec, disk, 10.0, 1200, 6000);
  auto fast = EstimateHashJoin(exec, disk, 80.0, 1200, 6000);
  EXPECT_GT(slow.cpu_time, fast.cpu_time);
  EXPECT_DOUBLE_EQ(slow.io_time, fast.io_time);
}

TEST(Standalone, SortCheaperThanJoinOnSameInner) {
  // A sort touches only R; the join also scans S.
  ExecParams exec;
  model::DiskParams disk;
  EXPECT_LT(EstimateExternalSort(exec, disk, 40.0, 1200).total(),
            EstimateHashJoin(exec, disk, 40.0, 1200, 6000).total());
}

/// Integration: the estimator must match an actual solitary query run in
/// the full engine within a modest tolerance (the estimator ignores
/// cylinder-boundary effects and head movement between the two operand
/// disks; a lone query suffers no queueing).
TEST(Standalone, MatchesSimulatedSolitaryJoin) {
  engine::PolicyConfig policy{"max"};
  // Very low arrival rate: the first query runs completely alone.
  engine::SystemConfig config =
      harness::BaselineConfig(0.0005, policy, /*seed=*/7);
  auto sys = engine::Rtdbs::Create(config);
  ASSERT_TRUE(sys.ok());
  sys.value()->RunUntil(3600.0 * 8);
  const auto& records = sys.value()->metrics().records();
  ASSERT_GE(records.size(), 3u);
  int checked = 0;
  for (const auto& rec : records) {
    if (rec.info.missed) continue;
    // Reconstruct the estimate from the recorded descriptor pieces:
    // execution time of a lone max-memory query ~ standalone estimate =
    // (deadline - arrival) / slack. Compare against measured execution.
    double standalone =
        rec.info.time_constraint /
        ((rec.info.deadline - rec.info.arrival) /
         rec.info.time_constraint);  // = time_constraint, see below
    (void)standalone;
    // time_constraint = standalone * slack; slack unknown here, so bound
    // execution by the constraint instead: a lone query must finish well
    // inside its window (slack >= 2.5).
    EXPECT_LT(rec.info.execution_time, rec.info.time_constraint / 2.0);
    EXPECT_LT(rec.info.admission_wait, 1e-6);
    ++checked;
  }
  EXPECT_GE(checked, 3);
}

/// Tighter integration check through the workload source: the recorded
/// standalone estimate times slack equals the constraint, and a solitary
/// run's execution time is within 25% of the estimate.
TEST(Standalone, SolitaryExecutionWithinTolerance) {
  engine::PolicyConfig policy{"max"};
  engine::SystemConfig config =
      harness::BaselineConfig(0.0005, policy, /*seed=*/11);
  // Pin the slack so standalone is recoverable from the constraint.
  config.workload.classes[0].slack_min = 4.0;
  config.workload.classes[0].slack_max = 4.0;
  auto sys = engine::Rtdbs::Create(config);
  ASSERT_TRUE(sys.ok());
  sys.value()->RunUntil(3600.0 * 8);
  int checked = 0;
  for (const auto& rec : sys.value()->metrics().records()) {
    if (rec.info.missed) continue;
    double standalone = rec.info.time_constraint / 4.0;
    EXPECT_NEAR(rec.info.execution_time, standalone, standalone * 0.25);
    ++checked;
  }
  EXPECT_GE(checked, 3);
}

}  // namespace
}  // namespace rtq::exec
