#include "stats/large_sample_test.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace rtq::stats {
namespace {

RunningStats Sample(Rng* rng, int n, double lo, double hi) {
  RunningStats s;
  for (int i = 0; i < n; ++i) s.Add(rng->Uniform(lo, hi));
  return s;
}

TEST(LargeSample, DetectsClearlyPositiveMean) {
  Rng rng(1);
  RunningStats s = Sample(&rng, 30, 5.0, 15.0);
  EXPECT_TRUE(MeanExceeds(s, 0.0, 0.95));
}

TEST(LargeSample, DoesNotRejectZeroCenteredSample) {
  Rng rng(2);
  RunningStats s = Sample(&rng, 30, -10.0, 10.0);
  EXPECT_FALSE(MeanExceeds(s, 5.0, 0.95));
}

TEST(LargeSample, TooFewObservationsNeverReject) {
  RunningStats s;
  s.Add(100.0);
  EXPECT_FALSE(MeanExceeds(s, 0.0, 0.95));
  EXPECT_FALSE(MeanDiffersFrom(s, 0.0, 0.99));
}

TEST(LargeSample, DegenerateConstantSample) {
  RunningStats s;
  for (int i = 0; i < 10; ++i) s.Add(4.0);
  // Zero variance, positive difference: infinitely significant.
  EXPECT_TRUE(MeanExceeds(s, 0.0, 0.95));
  EXPECT_FALSE(MeanExceeds(s, 4.0, 0.95));
  EXPECT_TRUE(MeanDiffersFrom(s, 3.0, 0.99));
  EXPECT_FALSE(MeanDiffersFrom(s, 4.0, 0.99));
}

TEST(LargeSample, ZStatisticMatchesFormula) {
  RunningStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.Add(x);
  // mean 3, sd sqrt(2.5), n 5 -> z = 3 / (sqrt(2.5)/sqrt(5)).
  EXPECT_NEAR(ZStatistic(s, 0.0), 3.0 / (std::sqrt(2.5) / std::sqrt(5.0)),
              1e-12);
}

TEST(LargeSample, TwoSidedDetectsShift) {
  Rng rng(3);
  RunningStats s = Sample(&rng, 50, 99.0, 101.0);
  EXPECT_TRUE(MeanDiffersFrom(s, 90.0, 0.99));
  EXPECT_FALSE(MeanDiffersFrom(s, 100.0, 0.99));
}

TEST(TwoSampleMeansDiffer, IdenticalDistributionsRarelyDiffer) {
  // False-positive rate at 99% should be ~1% per test; over 50 repeated
  // pairs expect very few flags. The one-sample (wrong) formulation flags
  // ~30-50% of these — this test pins the regression.
  Rng rng(4);
  int flags = 0;
  for (int trial = 0; trial < 50; ++trial) {
    RunningStats a = Sample(&rng, 30, 0.0, 100.0);
    RunningStats b = Sample(&rng, 30, 0.0, 100.0);
    if (TwoSampleMeansDiffer(a, b, 0.99)) ++flags;
  }
  EXPECT_LE(flags, 4);
}

TEST(TwoSampleMeansDiffer, DetectsRealShift) {
  Rng rng(5);
  RunningStats a = Sample(&rng, 30, 0.0, 10.0);
  RunningStats b = Sample(&rng, 30, 20.0, 30.0);
  EXPECT_TRUE(TwoSampleMeansDiffer(a, b, 0.99));
}

TEST(TwoSampleMeansDiffer, SmallSamplesNeverFlag) {
  RunningStats a, b;
  a.Add(0.0);
  b.Add(100.0);
  EXPECT_FALSE(TwoSampleMeansDiffer(a, b, 0.99));
}

TEST(TwoSampleMeansDiffer, SymmetricInArguments) {
  Rng rng(6);
  RunningStats a = Sample(&rng, 40, 0.0, 10.0);
  RunningStats b = Sample(&rng, 40, 5.0, 15.0);
  EXPECT_EQ(TwoSampleMeansDiffer(a, b, 0.95),
            TwoSampleMeansDiffer(b, a, 0.95));
}

/// Property sweep: power grows with the shift size.
class TwoSamplePower : public ::testing::TestWithParam<double> {};

TEST_P(TwoSamplePower, LargeShiftsAlwaysDetected) {
  double shift = GetParam();
  Rng rng(static_cast<uint64_t>(shift * 100) + 7);
  RunningStats a = Sample(&rng, 30, 0.0, 10.0);
  RunningStats b = Sample(&rng, 30, shift, shift + 10.0);
  EXPECT_TRUE(TwoSampleMeansDiffer(a, b, 0.99));
}

INSTANTIATE_TEST_SUITE_P(Shifts, TwoSamplePower,
                         ::testing::Values(15.0, 25.0, 50.0, 100.0));

}  // namespace
}  // namespace rtq::stats
