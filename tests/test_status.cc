#include "common/status.h"

#include <gtest/gtest.h>

namespace rtq {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::InvalidArgument("bad arg").message(), "bad arg");
}

TEST(Status, ToStringIncludesCodeName) {
  Status s = Status::InvalidArgument("num_disks must be > 0");
  EXPECT_EQ(s.ToString(), "InvalidArgument: num_disks must be > 0");
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(Status::NotFound("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, WorksWithMoveOnlyTypes) {
  StatusOr<std::unique_ptr<int>> v(std::make_unique<int>(5));
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> taken = std::move(v).value();
  EXPECT_EQ(*taken, 5);
}

TEST(StatusOr, WorksWithNonDefaultConstructibleTypes) {
  struct NoDefault {
    explicit NoDefault(int v) : value(v) {}
    int value;
  };
  StatusOr<NoDefault> ok(NoDefault(3));
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value().value, 3);
  StatusOr<NoDefault> err(Status::Internal("x"));
  EXPECT_FALSE(err.ok());
}

Status Helper(bool fail) {
  RTQ_RETURN_IF_ERROR(fail ? Status::Internal("inner") : Status::Ok());
  return Status::Ok();
}

TEST(Status, ReturnIfErrorMacro) {
  EXPECT_TRUE(Helper(false).ok());
  Status s = Helper(true);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "inner");
}

}  // namespace
}  // namespace rtq
