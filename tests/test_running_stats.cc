#include "stats/running_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "common/rng.h"

namespace rtq::stats {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_EQ(s.count(), 8);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance of this classic set is 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(s.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleObservationHasZeroVariance) {
  RunningStats s;
  s.Add(3.25);
  EXPECT_DOUBLE_EQ(s.mean(), 3.25);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.Add(1.0);
  s.Add(2.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

/// Property: merging partitions of a stream equals bulk accumulation.
class RunningStatsMergeProperty : public ::testing::TestWithParam<int> {};

TEST_P(RunningStatsMergeProperty, MergeEqualsBulk) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  int n = 200 + GetParam() * 13;
  std::vector<double> xs;
  for (int i = 0; i < n; ++i) xs.push_back(rng.Uniform(-50.0, 150.0));

  RunningStats bulk;
  for (double x : xs) bulk.Add(x);

  size_t cut = xs.size() / 3 + static_cast<size_t>(GetParam());
  RunningStats left, right;
  for (size_t i = 0; i < xs.size(); ++i) {
    (i < cut ? left : right).Add(xs[i]);
  }
  left.Merge(right);

  EXPECT_EQ(left.count(), bulk.count());
  EXPECT_NEAR(left.mean(), bulk.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), bulk.variance(), 1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RunningStatsMergeProperty,
                         ::testing::Range(0, 10));

TEST(RunningStats, MeanOfConstantStream) {
  RunningStats s;
  for (int i = 0; i < 1000; ++i) s.Add(7.5);
  EXPECT_DOUBLE_EQ(s.mean(), 7.5);
  EXPECT_NEAR(s.variance(), 0.0, 1e-12);
}

}  // namespace
}  // namespace rtq::stats
