#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"

namespace rtq::sim {
namespace {

TEST(EventQueue, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Size(), 0u);
  EXPECT_EQ(q.total_scheduled(), 0u);
}

TEST(EventQueue, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.Schedule(3.0, [&] { fired.push_back(3); });
  q.Schedule(1.0, [&] { fired.push_back(1); });
  q.Schedule(2.0, [&] { fired.push_back(2); });
  while (!q.Empty()) q.Pop().second();
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, EqualTimesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.Schedule(5.0, [&fired, i] { fired.push_back(i); });
  }
  while (!q.Empty()) q.Pop().second();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueue, PeekTimeReportsEarliestLive) {
  EventQueue q;
  q.Schedule(7.0, [] {});
  EventId early = q.Schedule(2.0, [] {});
  EXPECT_DOUBLE_EQ(q.PeekTime(), 2.0);
  EXPECT_TRUE(q.Cancel(early));
  EXPECT_DOUBLE_EQ(q.PeekTime(), 7.0);
}

TEST(EventQueue, CancelPreventsDelivery) {
  EventQueue q;
  bool fired = false;
  EventId id = q.Schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_TRUE(q.Empty());
  EXPECT_FALSE(fired);
}

TEST(EventQueue, CancelTwiceFails) {
  EventQueue q;
  EventId id = q.Schedule(1.0, [] {});
  EXPECT_TRUE(q.Cancel(id));
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueue, CancelUnknownIdFails) {
  EventQueue q;
  EXPECT_FALSE(q.Cancel(12345));
  EXPECT_FALSE(q.Cancel(kInvalidEventId));
}

TEST(EventQueue, CancelAfterPopFails) {
  EventQueue q;
  EventId id = q.Schedule(1.0, [] {});
  q.Pop().second();
  EXPECT_FALSE(q.Cancel(id));
}

TEST(EventQueue, SizeCountsLiveOnly) {
  EventQueue q;
  EventId a = q.Schedule(1.0, [] {});
  q.Schedule(2.0, [] {});
  EXPECT_EQ(q.Size(), 2u);
  q.Cancel(a);
  EXPECT_EQ(q.Size(), 1u);
}

TEST(EventQueue, PopReturnsTimeAndCallback) {
  EventQueue q;
  int hits = 0;
  q.Schedule(4.5, [&] { ++hits; });
  auto [when, cb] = q.Pop();
  EXPECT_DOUBLE_EQ(when, 4.5);
  cb();
  EXPECT_EQ(hits, 1);
}

TEST(EventQueue, TotalScheduledCountsEverything) {
  EventQueue q;
  EventId a = q.Schedule(1.0, [] {});
  q.Schedule(2.0, [] {});
  q.Cancel(a);
  EXPECT_EQ(q.total_scheduled(), 2u);
}

// Randomized interleavings of Schedule/Cancel/Pop checked against a
// naive reference model (a flat vector scanned for the (time, sequence)
// minimum). Fixed seeds so failures reproduce. This exercises slab
// recycling, generation churn after cancels, and the lazy skim — the
// machinery the indexed-heap rewrite added.
TEST(EventQueue, FuzzMatchesNaiveReferenceModel) {
  struct RefEvent {
    double time;
    uint64_t seq;  // global schedule order, the deterministic tie-break
    EventId id;
    int payload;
  };
  for (uint64_t seed : {1u, 7u, 99u, 1234u}) {
    Rng rng(seed);
    EventQueue q;
    std::vector<RefEvent> live;    // reference: still-pending events
    std::vector<EventId> retired;  // popped or cancelled ids
    uint64_t seq = 0;
    int next_payload = 0;
    int fired = -1;
    auto ref_min = [&] {
      return std::min_element(live.begin(), live.end(),
                              [](const RefEvent& a, const RefEvent& b) {
                                return a.time != b.time ? a.time < b.time
                                                        : a.seq < b.seq;
                              });
    };
    for (int step = 0; step < 4000; ++step) {
      int64_t op = rng.UniformInt(0, 9);
      if (op < 5 || live.empty()) {
        // Coarse times force plenty of exact ties.
        double t = static_cast<double>(rng.UniformInt(0, 49));
        int payload = next_payload++;
        EventId id = q.Schedule(t, [&fired, payload] { fired = payload; });
        live.push_back(RefEvent{t, ++seq, id, payload});
      } else if (op < 7) {
        size_t victim =
            static_cast<size_t>(rng.UniformInt(0, live.size() - 1));
        EXPECT_TRUE(q.Cancel(live[victim].id));
        retired.push_back(live[victim].id);
        live.erase(live.begin() + victim);
      } else if (op < 8 && !retired.empty()) {
        // Cancelling a dead id (popped, cancelled, or recycled) fails.
        size_t idx =
            static_cast<size_t>(rng.UniformInt(0, retired.size() - 1));
        EXPECT_FALSE(q.Cancel(retired[idx]));
      } else {
        auto expect = ref_min();
        ASSERT_DOUBLE_EQ(q.PeekTime(), expect->time);
        auto [when, cb] = q.Pop();
        ASSERT_DOUBLE_EQ(when, expect->time);
        cb();
        ASSERT_EQ(fired, expect->payload);
        retired.push_back(expect->id);
        live.erase(expect);
      }
      ASSERT_EQ(q.Size(), live.size());
      ASSERT_EQ(q.Empty(), live.empty());
    }
    // Drain: the remaining events must come out in exact reference order.
    while (!live.empty()) {
      auto expect = ref_min();
      auto [when, cb] = q.Pop();
      ASSERT_DOUBLE_EQ(when, expect->time);
      cb();
      ASSERT_EQ(fired, expect->payload);
      live.erase(expect);
    }
    EXPECT_TRUE(q.Empty());
  }
}

TEST(EventQueue, ManyInterleavedOpsKeepOrder) {
  EventQueue q;
  std::vector<double> fired;
  std::vector<EventId> ids;
  for (int i = 0; i < 100; ++i) {
    double t = static_cast<double>((i * 37) % 100);
    ids.push_back(q.Schedule(t, [&fired, t] { fired.push_back(t); }));
  }
  // Cancel every third.
  for (size_t i = 0; i < ids.size(); i += 3) q.Cancel(ids[i]);
  double last = -1.0;
  while (!q.Empty()) {
    auto [when, cb] = q.Pop();
    EXPECT_GE(when, last);
    last = when;
    cb();
  }
  EXPECT_EQ(fired.size(), 100u - 34u);
}

}  // namespace
}  // namespace rtq::sim
