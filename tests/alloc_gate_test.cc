// Zero-steady-state-malloc gate (NOT part of the rtq_tests glob: it
// overrides the global allocator, which must not leak into the gtest
// binary). Builds the paper's baseline system, warms it up past every
// pool/arena/slab high-water mark, then steps a large number of events
// and requires that NOT ONE byte was requested from the global heap.
//
// The gate runs the allocation-free policies ("max", "minmax:N"). PMM
// policies are excluded by design: PmmController recomputes
// least-squares fits over growing sample windows, which is documented
// cold-path allocation (docs/ARCHITECTURE.md, "Performance").

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>

#include "engine/rtdbs.h"
#include "engine/sharded_rtdbs.h"
#include "harness/paper_experiments.h"

namespace {

// Counters live outside any instrumentation so the overridden operators
// stay reentrancy-free. Volatile-free: the simulator is single-threaded.
uint64_t g_alloc_calls = 0;
uint64_t g_alloc_bytes = 0;

}  // namespace

// Global allocator overrides: count every path into the heap. All forms
// forward to malloc/free so ASan's interceptors still see the traffic.
void* operator new(std::size_t size) {
  ++g_alloc_calls;
  g_alloc_bytes += size;
  void* p = std::malloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++g_alloc_calls;
  g_alloc_bytes += size;
  return std::malloc(size);
}
void* operator new[](std::size_t size, const std::nothrow_t& t) noexcept {
  return ::operator new(size, t);
}
void* operator new(std::size_t size, std::align_val_t align) {
  ++g_alloc_calls;
  g_alloc_bytes += size;
  void* p = std::aligned_alloc(static_cast<std::size_t>(align), size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}

namespace {

// Baseline arrival rate (queries/sec): busy enough that admission,
// suspension, aborts and recycling all churn during the window.
constexpr double kArrivalRate = 1.0;
constexpr double kWarmupSimSeconds = 2000.0;
// Warmup must walk past every high-water mark (runtime pool, disk
// deadline-group free list, event slab, hash-map buckets). The run is
// deterministic, so an event-count warmup that covers the high water
// for the pinned seed covers it on every future run too.
constexpr int64_t kWarmupEvents = 400000;
constexpr int64_t kMeasuredEvents = 200000;

bool RunGate(const std::string& spec) {
  auto config = rtq::harness::BaselineConfig(kArrivalRate, {spec});
  auto sys_or = rtq::engine::Rtdbs::Create(config);
  if (!sys_or.ok()) {
    std::fprintf(stderr, "FAIL %s: Create: %s\n", spec.c_str(),
                 sys_or.status().message().c_str());
    return false;
  }
  auto& sys = *sys_or.value();

  // The metrics buffers grow with completions for the whole run; they
  // are the one unbounded recorder, so the host pre-sizes them (exactly
  // what a production harness with a known horizon does).
  double total_horizon =
      kWarmupSimSeconds + static_cast<double>(kMeasuredEvents);  // generous
  size_t completions =
      static_cast<size_t>(kArrivalRate * total_horizon * 2.0) + 1024;
  sys.mutable_metrics().Reserve(completions, completions);

  sys.RunUntil(kWarmupSimSeconds);
  for (int64_t i = 0; i < kWarmupEvents; ++i) {
    if (!sys.StepEvent()) {
      std::fprintf(stderr, "FAIL %s: calendar drained during warmup\n",
                   spec.c_str());
      return false;
    }
  }

  uint64_t calls_before = g_alloc_calls;
  for (int64_t i = 0; i < kMeasuredEvents; ++i) {
    if (!sys.StepEvent()) {
      std::fprintf(stderr, "FAIL %s: calendar drained at event %lld\n",
                   spec.c_str(), static_cast<long long>(i));
      return false;
    }
  }
  uint64_t delta_calls = g_alloc_calls - calls_before;

  if (delta_calls != 0) {
    std::fprintf(stderr,
                 "FAIL %s: %llu heap allocation(s) during %lld "
                 "steady-state events (expected 0)\n",
                 spec.c_str(), static_cast<unsigned long long>(delta_calls),
                 static_cast<long long>(kMeasuredEvents));
    return false;
  }
  std::printf("OK   %s: 0 allocations across %lld events "
              "(%llu total calls to reach steady state)\n",
              spec.c_str(), static_cast<long long>(kMeasuredEvents),
              static_cast<unsigned long long>(calls_before));
  return true;
}

// The sharded twin: a 4-shard cluster (skewed placement, global-MPL
// coordinator) must also be allocation-free once warm — the merged
// event loop is a scan, the placement is pure hashing, and the
// coordinator's gate is counter arithmetic.
bool RunShardedGate(const std::string& spec) {
  const std::string label = spec + " (4 shards)";
  auto config = rtq::harness::BaselineConfig(kArrivalRate, {spec});
  rtq::engine::ShardConfig shards;
  shards.num_shards = 4;
  shards.placement = "skew:hot=0.6";
  shards.admission = "global:mpl=24";
  auto sys_or = rtq::engine::ShardedRtdbs::Create(config, shards);
  if (!sys_or.ok()) {
    std::fprintf(stderr, "FAIL %s: Create: %s\n", label.c_str(),
                 sys_or.status().message().c_str());
    return false;
  }
  auto& sys = *sys_or.value();

  double total_horizon =
      kWarmupSimSeconds + static_cast<double>(kMeasuredEvents);  // generous
  size_t completions =
      static_cast<size_t>(kArrivalRate * total_horizon * 2.0) + 1024;
  for (int32_t s = 0; s < shards.num_shards; ++s) {
    sys.shard(s).mutable_metrics().Reserve(completions, completions);
  }

  // Cluster events split across shards, so each shard needs the same
  // per-engine warmup the unsharded gate uses: scale by shard count. The
  // skewed cluster's backlog high-water also converges more slowly than
  // the uniform single engine's (the hot shard sees rare deep backlogs),
  // hence the longer simulated warmup horizon.
  const int64_t warmup = kWarmupEvents * shards.num_shards;
  sys.RunUntil(4.0 * kWarmupSimSeconds);
  for (int64_t i = 0; i < warmup; ++i) {
    if (!sys.StepEvent()) {
      std::fprintf(stderr, "FAIL %s: calendar drained during warmup\n",
                   label.c_str());
      return false;
    }
  }

  uint64_t calls_before = g_alloc_calls;
  for (int64_t i = 0; i < kMeasuredEvents; ++i) {
    if (!sys.StepEvent()) {
      std::fprintf(stderr, "FAIL %s: calendar drained at event %lld\n",
                   label.c_str(), static_cast<long long>(i));
      return false;
    }
  }
  uint64_t delta_calls = g_alloc_calls - calls_before;

  if (delta_calls != 0) {
    std::fprintf(stderr,
                 "FAIL %s: %llu heap allocation(s) during %lld "
                 "steady-state events (expected 0)\n",
                 label.c_str(), static_cast<unsigned long long>(delta_calls),
                 static_cast<long long>(kMeasuredEvents));
    return false;
  }
  std::printf("OK   %s: 0 allocations across %lld events "
              "(%llu total calls to reach steady state)\n",
              label.c_str(), static_cast<long long>(kMeasuredEvents),
              static_cast<unsigned long long>(calls_before));
  return true;
}

}  // namespace

int main() {
  bool ok = true;
  ok &= RunGate("max");
  ok &= RunGate("minmax:10");
  ok &= RunShardedGate("max");
  if (!ok) return 1;
  std::printf("alloc gate: all policies allocation-free in steady state\n");
  return 0;
}
