#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "harness/csv.h"
#include "harness/paper_experiments.h"
#include "harness/table_printer.h"

namespace rtq::harness {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("  name  value"), std::string::npos);
  EXPECT_NE(out.find("longer     22"), std::string::npos);
}

TEST(TablePrinter, MissingCellsRenderEmpty) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"x"});
  EXPECT_NO_THROW(t.ToString());
}

TEST(TablePrinter, Formatters) {
  EXPECT_EQ(TablePrinter::Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Percent(0.256, 1), "25.6%");
  EXPECT_EQ(TablePrinter::Percent(0.0, 1), "0.0%");
}

TEST(Csv, EscapesSpecials) {
  CsvWriter csv({"a", "b"});
  csv.AddRow({"plain", "with,comma"});
  csv.AddRow({"with\"quote", "with\nnewline"});
  std::string out = csv.ToString();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Csv, WritesFile) {
  CsvWriter csv({"x", "y"});
  csv.AddRow({"1", "2"});
  std::string path = "results/test_csv_writer.csv";
  ASSERT_TRUE(csv.WriteFile(path).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove(path);
}

TEST(PaperExperiments, ConfigsValidate) {
  engine::PolicyConfig pmm{"pmm"};
  EXPECT_TRUE(BaselineConfig(0.06, pmm).Validate().ok());
  EXPECT_TRUE(DiskContentionConfig(0.07, pmm).Validate().ok());
  EXPECT_TRUE(WorkloadChangeConfig(pmm, true, false).Validate().ok());
  EXPECT_TRUE(ExternalSortConfig(0.08, pmm).Validate().ok());
  EXPECT_TRUE(MulticlassConfig(0.4, pmm).Validate().ok());
  EXPECT_TRUE(MulticlassConfig(0.0, pmm).Validate().ok());
  EXPECT_TRUE(ScaledConfig(0.07, pmm, 10.0).Validate().ok());
}

TEST(PaperExperiments, ConfigShapesMatchPaper) {
  engine::PolicyConfig pmm{"pmm"};

  auto baseline = BaselineConfig(0.06, pmm);
  EXPECT_EQ(baseline.num_disks, 10);
  EXPECT_EQ(baseline.memory_pages, 2560);
  EXPECT_EQ(baseline.workload.classes.size(), 1u);

  auto contention = DiskContentionConfig(0.07, pmm);
  EXPECT_EQ(contention.num_disks, 6);

  auto multiclass = MulticlassConfig(0.4, pmm);
  EXPECT_EQ(multiclass.num_disks, 12);
  EXPECT_EQ(multiclass.workload.classes.size(), 2u);
  EXPECT_DOUBLE_EQ(multiclass.workload.classes[0].arrival_rate, 0.065);

  auto scaled = ScaledConfig(0.07, pmm, 10.0);
  EXPECT_EQ(scaled.memory_pages, 25600);
  EXPECT_DOUBLE_EQ(scaled.workload.classes[0].arrival_rate, 0.007);
  EXPECT_GE(scaled.disk.capacity(),
            2 * (scaled.database.groups[0].max_pages +
                 scaled.database.groups[1].max_pages));
}

TEST(PaperExperiments, PolicyLabels) {
  EXPECT_EQ(PolicyLabel({"minmax:10"}), "MinMax-10");
  EXPECT_EQ(PolicyLabel({"max"}), "Max");
  EXPECT_EQ(PolicyLabel({"max:strict"}), "Max(strict)");
  EXPECT_EQ(PolicyLabel({"prop"}), "Proportional");
  EXPECT_EQ(PolicyLabel({"pmm"}), "PMM");
  EXPECT_EQ(PolicyLabel({"pmm-fair:w=1,2"}), "PMM-Fair");
  EXPECT_EQ(PolicyLabel({"none"}), "None");
  EXPECT_EQ(PolicyLabel({"oracle-ed"}), "Oracle-ED");

  // Deprecated enum configs resolve to the same labels.
  engine::PolicyConfig p;
  p.kind = engine::PolicyKind::kMinMaxN;
  p.mpl_limit = 10;
  EXPECT_EQ(PolicyLabel(p), "MinMax-10");
  p.kind = engine::PolicyKind::kMax;
  EXPECT_EQ(PolicyLabel(p), "Max");
  p.max_bypass = false;
  EXPECT_EQ(PolicyLabel(p), "Max(strict)");
}

TEST(PaperExperiments, BaselinePoliciesCoverThePaper) {
  auto policies = BaselinePolicies();
  ASSERT_EQ(policies.size(), 4u);
  EXPECT_EQ(policies[0].ResolvedSpec(), "max");
  EXPECT_EQ(policies[1].ResolvedSpec(), "minmax");
  EXPECT_EQ(policies[2].ResolvedSpec(), "prop");
  EXPECT_EQ(policies[3].ResolvedSpec(), "pmm");
}

TEST(PaperExperiments, PoliciesOrDefaultHonoursEnvironment) {
  const char* old = std::getenv("RTQ_POLICIES");

  unsetenv("RTQ_POLICIES");
  auto defaults = PoliciesOrDefault(BaselinePolicies());
  ASSERT_EQ(defaults.size(), 4u);
  EXPECT_EQ(defaults[0].ResolvedSpec(), "max");

  setenv("RTQ_POLICIES", "pmm,none", 1);
  auto overridden = PoliciesOrDefault(BaselinePolicies());
  ASSERT_EQ(overridden.size(), 2u);
  EXPECT_EQ(overridden[0].ResolvedSpec(), "pmm");
  EXPECT_EQ(overridden[1].ResolvedSpec(), "none");

  // A weight list's commas stay inside the previous spec.
  setenv("RTQ_POLICIES", "pmm-fair:w=1,2,max", 1);
  auto with_weights = PoliciesOrDefault(BaselinePolicies());
  ASSERT_EQ(with_weights.size(), 2u);
  EXPECT_EQ(with_weights[0].ResolvedSpec(), "pmm-fair:w=1,2");
  EXPECT_EQ(with_weights[1].ResolvedSpec(), "max");

  if (old != nullptr) {
    setenv("RTQ_POLICIES", old, 1);
  } else {
    unsetenv("RTQ_POLICIES");
  }
}

TEST(PaperExperiments, DurationHonoursEnvironment) {
  // Do not disturb a possibly-set variable beyond this test.
  const char* old = std::getenv("RTQ_SIM_HOURS");
  setenv("RTQ_SIM_HOURS", "2.5", 1);
  EXPECT_DOUBLE_EQ(ExperimentDuration(), 2.5 * 3600.0);
  if (old != nullptr) {
    setenv("RTQ_SIM_HOURS", old, 1);
  } else {
    unsetenv("RTQ_SIM_HOURS");
  }
}

}  // namespace
}  // namespace rtq::harness
