#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "harness/csv.h"
#include "harness/paper_experiments.h"
#include "harness/table_printer.h"

namespace rtq::harness {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"a", "1"});
  t.AddRow({"longer", "22"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("  name  value"), std::string::npos);
  EXPECT_NE(out.find("longer     22"), std::string::npos);
}

TEST(TablePrinter, MissingCellsRenderEmpty) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"x"});
  EXPECT_NO_THROW(t.ToString());
}

TEST(TablePrinter, Formatters) {
  EXPECT_EQ(TablePrinter::Fixed(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Percent(0.256, 1), "25.6%");
  EXPECT_EQ(TablePrinter::Percent(0.0, 1), "0.0%");
}

TEST(Csv, EscapesSpecials) {
  CsvWriter csv({"a", "b"});
  csv.AddRow({"plain", "with,comma"});
  csv.AddRow({"with\"quote", "with\nnewline"});
  std::string out = csv.ToString();
  EXPECT_NE(out.find("\"with,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"with\"\"quote\""), std::string::npos);
}

TEST(Csv, WritesFile) {
  CsvWriter csv({"x", "y"});
  csv.AddRow({"1", "2"});
  std::string path = "results/test_csv_writer.csv";
  ASSERT_TRUE(csv.WriteFile(path).ok());
  EXPECT_TRUE(std::filesystem::exists(path));
  std::filesystem::remove(path);
}

TEST(PaperExperiments, ConfigsValidate) {
  engine::PolicyConfig pmm;
  pmm.kind = engine::PolicyKind::kPmm;
  EXPECT_TRUE(BaselineConfig(0.06, pmm).Validate().ok());
  EXPECT_TRUE(DiskContentionConfig(0.07, pmm).Validate().ok());
  EXPECT_TRUE(WorkloadChangeConfig(pmm, true, false).Validate().ok());
  EXPECT_TRUE(ExternalSortConfig(0.08, pmm).Validate().ok());
  EXPECT_TRUE(MulticlassConfig(0.4, pmm).Validate().ok());
  EXPECT_TRUE(MulticlassConfig(0.0, pmm).Validate().ok());
  EXPECT_TRUE(ScaledConfig(0.07, pmm, 10.0).Validate().ok());
}

TEST(PaperExperiments, ConfigShapesMatchPaper) {
  engine::PolicyConfig pmm;
  pmm.kind = engine::PolicyKind::kPmm;

  auto baseline = BaselineConfig(0.06, pmm);
  EXPECT_EQ(baseline.num_disks, 10);
  EXPECT_EQ(baseline.memory_pages, 2560);
  EXPECT_EQ(baseline.workload.classes.size(), 1u);

  auto contention = DiskContentionConfig(0.07, pmm);
  EXPECT_EQ(contention.num_disks, 6);

  auto multiclass = MulticlassConfig(0.4, pmm);
  EXPECT_EQ(multiclass.num_disks, 12);
  EXPECT_EQ(multiclass.workload.classes.size(), 2u);
  EXPECT_DOUBLE_EQ(multiclass.workload.classes[0].arrival_rate, 0.065);

  auto scaled = ScaledConfig(0.07, pmm, 10.0);
  EXPECT_EQ(scaled.memory_pages, 25600);
  EXPECT_DOUBLE_EQ(scaled.workload.classes[0].arrival_rate, 0.007);
  EXPECT_GE(scaled.disk.capacity(),
            2 * (scaled.database.groups[0].max_pages +
                 scaled.database.groups[1].max_pages));
}

TEST(PaperExperiments, PolicyLabels) {
  engine::PolicyConfig p;
  p.kind = engine::PolicyKind::kMinMaxN;
  p.mpl_limit = 10;
  EXPECT_EQ(PolicyLabel(p), "MinMax-10");
  p.kind = engine::PolicyKind::kMax;
  EXPECT_EQ(PolicyLabel(p), "Max");
  p.max_bypass = false;
  EXPECT_EQ(PolicyLabel(p), "Max(strict)");
}

TEST(PaperExperiments, BaselinePoliciesCoverThePaper) {
  auto policies = BaselinePolicies();
  ASSERT_EQ(policies.size(), 4u);
  EXPECT_EQ(policies[0].kind, engine::PolicyKind::kMax);
  EXPECT_EQ(policies[1].kind, engine::PolicyKind::kMinMax);
  EXPECT_EQ(policies[2].kind, engine::PolicyKind::kProportional);
  EXPECT_EQ(policies[3].kind, engine::PolicyKind::kPmm);
}

TEST(PaperExperiments, DurationHonoursEnvironment) {
  // Do not disturb a possibly-set variable beyond this test.
  const char* old = std::getenv("RTQ_SIM_HOURS");
  setenv("RTQ_SIM_HOURS", "2.5", 1);
  EXPECT_DOUBLE_EQ(ExperimentDuration(), 2.5 * 3600.0);
  if (old != nullptr) {
    setenv("RTQ_SIM_HOURS", old, 1);
  } else {
    unsetenv("RTQ_SIM_HOURS");
  }
}

}  // namespace
}  // namespace rtq::harness
