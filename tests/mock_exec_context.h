// A deterministic synchronous ExecContext for operator unit tests.
//
// Demands complete when the test pumps the queue; time advances by simple
// fixed costs. Temp space is a bump allocator with free tracking so tests
// can assert that operators release what they take.

#ifndef RTQ_TESTS_MOCK_EXEC_CONTEXT_H_
#define RTQ_TESTS_MOCK_EXEC_CONTEXT_H_

#include <queue>
#include <set>

#include "exec/exec_context.h"

namespace rtq::testing {

class MockExecContext : public exec::ExecContext {
 public:
  SimTime Now() const override { return now_; }

  void RunCpu(Instructions instructions, exec::DoneCallback done) override {
    now_ += static_cast<double>(instructions) / 40e6;
    total_instructions += instructions;
    pending_.push(std::move(done));
  }

  void Read(DiskId disk, PageCount start, PageCount pages,
            exec::DoneCallback done) override {
    (void)disk;
    last_read_start = start;
    last_read_pages = pages;
    now_ += 0.0195 + 0.00185 * static_cast<double>(pages);
    ++reads;
    pages_read += pages;
    pending_.push(std::move(done));
  }

  void Write(DiskId disk, PageCount start, PageCount pages,
             exec::DoneCallback done, bool background) override {
    (void)disk;
    (void)start;
    now_ += 0.0195 + 0.00185 * static_cast<double>(pages);
    ++writes;
    pages_written += pages;
    if (background) ++background_writes;
    pending_.push(std::move(done));
  }

  StatusOr<storage::TempFile> AllocateTemp(PageCount pages,
                                           DiskId preferred) override {
    if (fail_temp) return Status::OutOfRange("mock: temp exhausted");
    storage::TempFile f;
    f.disk = preferred >= 0 ? preferred : 0;
    f.start_page = next_temp_;
    f.pages = pages;
    f.handle = static_cast<uint64_t>(next_temp_) + 1;
    next_temp_ += pages;
    live_temp_.insert(f.handle);
    temp_allocations++;
    return f;
  }

  void FreeTemp(const storage::TempFile& file) override {
    live_temp_.erase(file.handle);
  }

  /// Runs one pending completion callback; false when idle.
  bool Pump() {
    if (pending_.empty()) return false;
    auto cb = std::move(pending_.front());
    pending_.pop();
    cb();
    return true;
  }

  /// Runs callbacks until idle or `limit` steps.
  int64_t PumpAll(int64_t limit = 1'000'000) {
    int64_t n = 0;
    while (n < limit && Pump()) ++n;
    return n;
  }

  size_t pending() const { return pending_.size(); }
  int64_t live_temp_extents() const {
    return static_cast<int64_t>(live_temp_.size());
  }

  // Counters the tests assert on.
  int64_t reads = 0;
  int64_t writes = 0;
  int64_t background_writes = 0;
  PageCount pages_read = 0;
  PageCount pages_written = 0;
  Instructions total_instructions = 0;
  int64_t temp_allocations = 0;
  PageCount last_read_start = -1;
  PageCount last_read_pages = -1;
  bool fail_temp = false;

 private:
  SimTime now_ = 0.0;
  PageCount next_temp_ = 1'000'000;
  std::queue<exec::DoneCallback> pending_;
  std::set<uint64_t> live_temp_;
};

}  // namespace rtq::testing

#endif  // RTQ_TESTS_MOCK_EXEC_CONTEXT_H_
