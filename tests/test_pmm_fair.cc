#include "core/pmm_fair.h"

#include <gtest/gtest.h>

namespace rtq::core {
namespace {

class FakeProbe : public SystemProbe {
 public:
  Readings TakeReadings() override {
    Readings r;
    r.now = now_;
    now_ += 100.0;
    r.realized_mpl = 2.0;
    r.cpu_utilization = 0.1;
    r.avg_disk_utilization = 0.15;
    r.max_disk_utilization = 0.2;
    return r;
  }

 private:
  SimTime now_ = 0.0;
};

MemRequest Q(QueryId id, SimTime arrival, SimTime deadline, int32_t cls,
             PageCount min, PageCount max) {
  MemRequest r;
  r.id = id;
  r.arrival = arrival;
  r.deadline = deadline;
  r.query_class = cls;
  r.min_memory = min;
  r.max_memory = max;
  return r;
}

TEST(FairOrderingStrategy, IdentityWhenUrgenciesEqual) {
  FairOrderingStrategy fair(std::make_unique<MinMaxStrategy>(-1),
                            {1.0, 1.0});
  std::vector<MemRequest> qs = {Q(1, 0, 100, 0, 40, 900),
                                Q(2, 0, 200, 1, 40, 900)};
  auto out = fair.Allocate(qs, 1000);
  EXPECT_EQ(out[0], 900);
  EXPECT_EQ(out[1], 100);
}

TEST(FairOrderingStrategy, UrgencyBoostReordersClasses) {
  // Class 1 is heavily boosted: its query sorts first despite the later
  // real deadline.
  FairOrderingStrategy fair(std::make_unique<MinMaxStrategy>(-1),
                            {1.0, 4.0});
  std::vector<MemRequest> qs = {Q(1, 0, 100, 0, 40, 900),
                                Q(2, 0, 200, 1, 40, 900)};
  auto out = fair.Allocate(qs, 1000);
  // vdeadline: q1 = 100, q2 = 50 -> q2 first.
  EXPECT_EQ(out[0], 100);
  EXPECT_EQ(out[1], 900);
}

TEST(FairOrderingStrategy, UnknownClassGetsNeutralUrgency) {
  FairOrderingStrategy fair(std::make_unique<MaxStrategy>(), {2.0});
  std::vector<MemRequest> qs = {Q(1, 0, 100, /*cls=*/7, 40, 400)};
  auto out = fair.Allocate(qs, 1000);
  EXPECT_EQ(out[0], 400);
}

TEST(FairOrderingStrategy, Name) {
  FairOrderingStrategy fair(std::make_unique<MinMaxStrategy>(3), {1.0});
  EXPECT_EQ(fair.name(), "Fair(MinMax-3)");
}

struct FairFixture {
  FairFixture()
      : mm(2560, std::make_unique<MaxStrategy>(), [](QueryId, PageCount) {}),
        controller(PmmParams(), &mm, &probe, {1.0, 1.0}) {}

  void FeedBatch(int64_t n, int64_t misses_class0, int64_t misses_class1) {
    for (int64_t i = 0; i < n; ++i) {
      CompletionInfo info;
      info.id = next_id++;
      info.query_class = static_cast<int32_t>(i % 2);
      int64_t idx = i / 2;
      info.missed = info.query_class == 0 ? idx < misses_class0
                                          : idx < misses_class1;
      info.admission_wait = 5.0 + 0.01 * static_cast<double>(i % 5);
      info.execution_time = 40.0 + 0.01 * static_cast<double>(i % 5);
      info.time_constraint = 150.0 + 0.01 * static_cast<double>(i % 5);
      info.max_memory = 1000 + (i % 3);
      info.operand_io_requests = 1000 + (i % 7);
      controller.OnQueryFinished(info);
    }
  }

  FakeProbe probe;
  MemoryManager mm;
  PmmFairController controller;
  QueryId next_id = 0;
};

TEST(PmmFair, StartsWithNeutralUrgencies) {
  FairFixture f;
  for (double u : f.controller.class_urgency()) EXPECT_DOUBLE_EQ(u, 1.0);
}

TEST(PmmFair, BoostsTheUnderservedClass) {
  FairFixture f;
  // Class 1 misses far more than class 0 across several batches.
  for (int b = 0; b < 5; ++b) f.FeedBatch(30, 0, 10);
  EXPECT_GT(f.controller.class_urgency()[1],
            f.controller.class_urgency()[0]);
  EXPECT_DOUBLE_EQ(f.controller.class_urgency()[0], 1.0);
}

TEST(PmmFair, UrgencyDecaysWhenBalanceReturns) {
  FairFixture f;
  for (int b = 0; b < 4; ++b) f.FeedBatch(30, 0, 10);
  double boosted = f.controller.class_urgency()[1];
  ASSERT_GT(boosted, 1.0);
  // Now class 1 recovers; class 0 suffers instead.
  for (int b = 0; b < 8; ++b) f.FeedBatch(30, 10, 0);
  EXPECT_LT(f.controller.class_urgency()[1], boosted);
}

TEST(PmmFair, UrgencyIsClamped) {
  FairFixture f;
  for (int b = 0; b < 50; ++b) f.FeedBatch(30, 0, 15);
  EXPECT_LE(f.controller.class_urgency()[1], 8.0 + 1e-12);
  EXPECT_GE(f.controller.class_urgency()[0], 1.0 - 1e-12);
}

TEST(PmmFair, InstallsFairStrategies) {
  FairFixture f;
  EXPECT_EQ(f.mm.strategy().name(), "Fair(Max)");
}

}  // namespace
}  // namespace rtq::core
