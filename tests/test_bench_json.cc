#include "harness/bench_json.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

namespace rtq::harness {
namespace {

/// Minimal recursive-descent JSON syntax checker: enough to assert that
/// the hand-rolled emitter's output round-trips through a real parser.
class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    pos_ = 0;
    if (!Value()) return false;
    Ws();
    return pos_ == text_.size();
  }

 private:
  void Ws() {
    while (pos_ < text_.size() && std::isspace(
                                      static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }
  bool Consume(char ch) {
    Ws();
    if (pos_ < text_.size() && text_[pos_] == ch) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool Literal(const char* word) {
    size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) return false;
    pos_ += len;
    return true;
  }
  bool String() {
    if (!Consume('"')) return false;
    while (pos_ < text_.size()) {
      char ch = text_[pos_];
      if (ch == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(ch) < 0x20) return false;  // raw control
      if (ch == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return false;
        char esc = text_[pos_];
        if (esc == 'u') {
          for (int i = 1; i <= 4; ++i) {
            if (pos_ + static_cast<size_t>(i) >= text_.size() ||
                !std::isxdigit(static_cast<unsigned char>(
                    text_[pos_ + static_cast<size_t>(i)])))
              return false;
          }
          pos_ += 4;
        } else if (std::strchr("\"\\/bfnrt", esc) == nullptr) {
          return false;
        }
      }
      ++pos_;
    }
    return false;
  }
  bool Number() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }
  bool Value() {
    Ws();
    if (pos_ >= text_.size()) return false;
    char ch = text_[pos_];
    if (ch == '{') return Object();
    if (ch == '[') return Array();
    if (ch == '"') return String();
    if (ch == 't') return Literal("true");
    if (ch == 'f') return Literal("false");
    if (ch == 'n') return Literal("null");
    return Number();
  }
  bool Object() {
    if (!Consume('{')) return false;
    if (Consume('}')) return true;
    do {
      Ws();
      if (!String()) return false;
      if (!Consume(':')) return false;
      if (!Value()) return false;
    } while (Consume(','));
    return Consume('}');
  }
  bool Array() {
    if (!Consume('[')) return false;
    if (Consume(']')) return true;
    do {
      if (!Value()) return false;
    } while (Consume(','));
    return Consume(']');
  }

  const std::string& text_;
  size_t pos_ = 0;
};

RunResult MakeResult(const std::string& label, int64_t completions) {
  RunResult result;
  result.label = label;
  result.summary.overall.completions = completions;
  result.summary.overall.misses = completions / 10;
  result.summary.overall.miss_ratio = 0.1;
  result.summary.overall.avg_wait = 12.5;
  result.summary.overall.avg_exec = 30.25;
  result.summary.overall.avg_response = 42.75;
  result.summary.avg_mpl = 9.5;
  result.summary.avg_disk_utilization = 0.55;
  result.summary.events_dispatched = 123456;
  result.wall_seconds = 1.5;
  return result;
}

TEST(JsonWriter, EscapesSpecials) {
  EXPECT_EQ(JsonWriter::Escape("plain"), "plain");
  EXPECT_EQ(JsonWriter::Escape("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(JsonWriter::Escape("back\\slash"), "back\\\\slash");
  EXPECT_EQ(JsonWriter::Escape("line\nbreak\ttab"),
            "line\\nbreak\\ttab");
  EXPECT_EQ(JsonWriter::Escape(std::string("ctl\x01") + "x"),
            "ctl\\u0001x");
}

TEST(JsonWriter, BuildsNestedDocuments) {
  JsonWriter w;
  w.BeginObject();
  w.Key("name").String("a,b");
  w.Key("n").Int(-3);
  w.Key("x").Number(0.25);
  w.Key("flag").Bool(true);
  w.Key("items").BeginArray();
  w.Number(1.0).Number(2.0);
  w.BeginObject().Key("k").String("v").EndObject();
  w.EndArray();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"name\":\"a,b\",\"n\":-3,\"x\":0.25,\"flag\":true,"
            "\"items\":[1,2,{\"k\":\"v\"}]}");
  EXPECT_TRUE(JsonChecker(w.str()).Valid());
}

TEST(JsonWriter, NonFiniteNumbersBecomeNull) {
  JsonWriter w;
  w.BeginObject();
  w.Key("nan").Number(std::nan(""));
  w.Key("inf").Number(INFINITY);
  w.EndObject();
  EXPECT_EQ(w.str(), "{\"nan\":null,\"inf\":null}");
}

TEST(BenchJsonEmitter, EmitsWellFormedJson) {
  BenchJsonEmitter emitter("test_driver");
  emitter.AddConfig("note", "quote \" and, comma");
  emitter.AddResult(MakeResult("PMM @ 0.04\nnewline", 400), "PMM", 0.04);
  emitter.AddResult(MakeResult("Max @ 0.05", 500), "Max", 0.05);
  std::string json = emitter.ToJson(3.25);
  EXPECT_TRUE(JsonChecker(json).Valid()) << json;
}

TEST(BenchJsonEmitter, EmitsTheStableFieldSet) {
  BenchJsonEmitter emitter("test_driver");
  emitter.AddResult(MakeResult("p", 400), "PMM", 0.04);
  std::string json = emitter.ToJson(1.0);

  for (const char* key :
       {"\"driver\":", "\"schema_version\":1", "\"git\":", "\"config\":",
        "\"sim_hours\":", "\"jobs\":", "\"hardware_concurrency\":",
        "\"points\":", "\"label\":", "\"policy\":", "\"lambda\":",
        "\"miss_ratio\":", "\"disk_util\":", "\"avg_mpl\":",
        "\"avg_wait_s\":", "\"avg_exec_s\":", "\"avg_response_s\":",
        "\"completions\":", "\"misses\":", "\"events\":",
        "\"wall_seconds\":", "\"totals\":", "\"events_per_second\":"}) {
    EXPECT_NE(json.find(key), std::string::npos) << key << " in " << json;
  }
  EXPECT_NE(json.find("\"completions\":400"), std::string::npos);
  EXPECT_NE(json.find("\"events\":123456"), std::string::npos);
  EXPECT_NE(json.find("\"lambda\":0.04"), std::string::npos);
}

TEST(BenchJsonEmitter, GitDescribeEnvOverrideWins) {
  const char* old = std::getenv("RTQ_GIT_DESCRIBE");
  setenv("RTQ_GIT_DESCRIBE", "deadbeef-test", 1);
  EXPECT_EQ(GitDescribe(), "deadbeef-test");
  if (old != nullptr) {
    setenv("RTQ_GIT_DESCRIBE", old, 1);
  } else {
    unsetenv("RTQ_GIT_DESCRIBE");
  }
  EXPECT_NE(GitDescribe(), "");
}

TEST(BenchJsonEmitter, WritesBenchFileUnderResults) {
  BenchJsonEmitter emitter("test_emitter");
  emitter.AddResult(MakeResult("point", 10), "PMM", 0.07);
  EXPECT_EQ(emitter.path(), "results/BENCH_test_emitter.json");
  ASSERT_TRUE(emitter.WriteFile(0.5).ok());
  ASSERT_TRUE(std::filesystem::exists(emitter.path()));

  std::ifstream in(emitter.path());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_TRUE(JsonChecker(buffer.str()).Valid());
  EXPECT_GT(std::filesystem::file_size(emitter.path()), 0u);
  std::filesystem::remove(emitter.path());
}

}  // namespace
}  // namespace rtq::harness
