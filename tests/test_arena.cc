// Unit tests for the phase-scoped bump allocator (common/arena.h): the
// steady-state reuse property the malloc gate relies on, finalizer
// ordering, alignment, and the std-allocator adapter.

#include "common/arena.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include "gtest/gtest.h"

namespace rtq {
namespace {

TEST(ArenaTest, AllocateReturnsAlignedDistinctMemory) {
  Arena arena;
  void* a = arena.Allocate(24, 8);
  void* b = arena.Allocate(16, 8);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_NE(a, b);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b) % 8, 0u);
  EXPECT_GE(arena.bytes_used(), 40u);
}

TEST(ArenaTest, AlignmentRequestsAreHonored) {
  Arena arena;
  arena.Allocate(1, 1);  // misalign the cursor
  void* p = arena.Allocate(8, 8);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
  arena.Allocate(3, 1);
  void* q = arena.Allocate(16, 16);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(q) % 16, 0u);
}

TEST(ArenaTest, ResetRewindsWithoutReleasingChunks) {
  Arena arena(128);
  for (int i = 0; i < 100; ++i) arena.Allocate(64, 8);
  size_t reserved = arena.bytes_reserved();
  size_t chunks = arena.chunk_count();
  EXPECT_GT(chunks, 1u);

  arena.Reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  // Chunks are retained for the next phase.
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.chunk_count(), chunks);

  // A phase that fits in the high-water footprint reserves nothing new.
  for (int i = 0; i < 100; ++i) arena.Allocate(64, 8);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  EXPECT_EQ(arena.chunk_count(), chunks);
}

TEST(ArenaTest, HighWaterTracksLargestPhase) {
  Arena arena;
  arena.Allocate(100, 8);
  arena.Reset();
  arena.Allocate(300, 8);
  size_t high = arena.high_water();
  EXPECT_GE(high, 300u);
  arena.Reset();
  arena.Allocate(50, 8);
  arena.Reset();
  EXPECT_EQ(arena.high_water(), high);
}

TEST(ArenaTest, OversizedRequestGetsDedicatedChunk) {
  Arena arena(64);
  void* big = arena.Allocate(4096, 8);
  ASSERT_NE(big, nullptr);
  // The oversized block is usable end to end.
  std::memset(big, 0xAB, 4096);
  EXPECT_GE(arena.bytes_reserved(), 4096u);
}

struct Tracked {
  explicit Tracked(std::vector<int>* log, int id) : log_(log), id_(id) {}
  ~Tracked() { log_->push_back(id_); }
  std::vector<int>* log_;
  int id_;
};

TEST(ArenaTest, ResetRunsFinalizersNewestFirst) {
  std::vector<int> log;
  Arena arena;
  arena.New<Tracked>(&log, 1);
  arena.New<Tracked>(&log, 2);
  arena.New<Tracked>(&log, 3);
  EXPECT_TRUE(log.empty());
  arena.Reset();
  EXPECT_EQ(log, (std::vector<int>{3, 2, 1}));
  // Finalizer list is consumed: a second Reset must not double-destroy.
  arena.Reset();
  EXPECT_EQ(log.size(), 3u);
}

TEST(ArenaTest, DestructorRunsPendingFinalizers) {
  std::vector<int> log;
  {
    Arena arena;
    arena.New<Tracked>(&log, 7);
  }
  EXPECT_EQ(log, std::vector<int>{7});
}

TEST(ArenaTest, TriviallyDestructibleNewSkipsFinalizers) {
  Arena arena;
  int64_t* v = arena.New<int64_t>(42);
  EXPECT_EQ(*v, 42);
  int64_t* arr = arena.NewArray<int64_t>(16);
  for (int i = 0; i < 16; ++i) arr[i] = i;
  arena.Reset();  // must not touch v or arr as objects
  EXPECT_EQ(arena.bytes_used(), 0u);
}

TEST(ArenaAllocatorTest, ArenaBackedVectorAllocatesFromArena) {
  Arena arena;
  std::vector<int, ArenaAllocator<int>> v{ArenaAllocator<int>(&arena)};
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_GT(arena.bytes_used(), 0u);
  EXPECT_EQ(v[99], 99);
}

TEST(ArenaAllocatorTest, NullArenaFallsBackToHeap) {
  std::vector<int, ArenaAllocator<int>> v;  // default: no arena
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
}

TEST(ArenaAllocatorTest, EqualityFollowsArenaIdentity) {
  Arena a, b;
  ArenaAllocator<int> aa(&a), ab(&b), aa2(&a);
  EXPECT_TRUE(aa == aa2);
  EXPECT_TRUE(aa != ab);
  // Rebinding preserves the arena.
  ArenaAllocator<double> rebound(aa);
  EXPECT_EQ(rebound.arena(), &a);
}

}  // namespace
}  // namespace rtq
