#include "engine/rtdbs.h"

#include <gtest/gtest.h>

#include <string>

#include "harness/paper_experiments.h"

namespace rtq::engine {
namespace {

SystemConfig SmallConfig(const std::string& spec, double rate = 0.05,
                         uint64_t seed = 42) {
  return harness::BaselineConfig(rate, {spec}, seed);
}

TEST(Engine, RejectsInvalidConfig) {
  SystemConfig config = SmallConfig("max");
  config.num_disks = 0;
  EXPECT_FALSE(Rtdbs::Create(config).ok());

  config = SmallConfig("minmax:0");  // -N policies need N >= 1
  EXPECT_FALSE(Rtdbs::Create(config).ok());

  config = SmallConfig("pmm-fair:w=1,2");  // one class only
  EXPECT_FALSE(Rtdbs::Create(config).ok());

  config = SmallConfig("no-such-policy");
  auto sys = Rtdbs::Create(config);
  ASSERT_FALSE(sys.ok());
  EXPECT_EQ(sys.status().code(), StatusCode::kNotFound);
}

TEST(Engine, RunsAndRecordsCompletions) {
  auto sys = Rtdbs::Create(SmallConfig("pmm"));
  ASSERT_TRUE(sys.ok());
  sys.value()->RunUntil(3600.0);
  SystemSummary s = sys.value()->Summarize();
  EXPECT_GT(s.overall.completions, 100);
  EXPECT_GE(s.overall.misses, 0);
  EXPECT_GT(s.avg_mpl, 0.0);
  EXPECT_GT(s.cpu_utilization, 0.0);
  EXPECT_LT(s.cpu_utilization, 1.0);
  EXPECT_GT(s.avg_disk_utilization, 0.0);
  EXPECT_GE(s.max_disk_utilization, s.avg_disk_utilization);
  EXPECT_DOUBLE_EQ(s.simulated_time, 3600.0);
}

TEST(Engine, DeterministicForSameSeed) {
  auto run = [](uint64_t seed) {
    auto sys = Rtdbs::Create(SmallConfig("minmax", 0.06, seed));
    sys.value()->RunUntil(1800.0);
    SystemSummary s = sys.value()->Summarize();
    return std::make_tuple(s.overall.completions, s.overall.misses,
                           s.overall.avg_exec, s.events_dispatched);
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(99));
}

TEST(Engine, QueryConservation) {
  auto sys = Rtdbs::Create(SmallConfig("minmax"));
  ASSERT_TRUE(sys.ok());
  sys.value()->RunUntil(3600.0);
  int64_t generated = sys.value()->source().generated();
  int64_t finished =
      static_cast<int64_t>(sys.value()->metrics().records().size());
  int64_t live = sys.value()->live_queries();
  EXPECT_EQ(generated, finished + live);
}

TEST(Engine, PoolNeverOversubscribedAtEnd) {
  auto sys = Rtdbs::Create(SmallConfig("minmax", 0.08));
  ASSERT_TRUE(sys.ok());
  sys.value()->RunUntil(1800.0);
  // BufferPool enforces the invariant on every reservation; reaching this
  // point without an abort means it held throughout. Check the final
  // state is consistent too.
  EXPECT_LE(sys.value()->buffer_pool().reserved(),
            sys.value()->buffer_pool().total());
  EXPECT_EQ(sys.value()->buffer_pool().reserved(),
            sys.value()->memory_manager().allocated_pages());
}

TEST(Engine, FirmDeadlinesAbortLateQueries) {
  // Overload the system so misses must occur; every missed record's
  // finish time equals its deadline (firm semantics: aborted exactly at
  // expiry, not after).
  auto sys = Rtdbs::Create(SmallConfig("max", 0.15));
  ASSERT_TRUE(sys.ok());
  sys.value()->RunUntil(3600.0);
  int64_t misses = 0;
  for (const auto& rec : sys.value()->metrics().records()) {
    if (!rec.info.missed) {
      EXPECT_LE(rec.info.finish, rec.info.deadline + 1e-6);
      continue;
    }
    ++misses;
    EXPECT_NEAR(rec.info.finish, rec.info.deadline, 1e-6);
  }
  EXPECT_GT(misses, 10);
}

TEST(Engine, CompletedQueriesMeetDeadlines) {
  auto sys = Rtdbs::Create(SmallConfig("pmm", 0.06));
  ASSERT_TRUE(sys.ok());
  sys.value()->RunUntil(3600.0);
  for (const auto& rec : sys.value()->metrics().records()) {
    if (rec.info.missed) continue;
    EXPECT_LE(rec.info.arrival + rec.info.admission_wait +
                  rec.info.execution_time,
              rec.info.deadline + 1e-6);
  }
}

TEST(Engine, EveryRegisteredPolicyRuns) {
  for (const std::string spec :
       {"max", "max:strict", "minmax", "minmax:4", "prop", "prop:4", "pmm",
        "pmm-fair:w=1", "none", "oracle-ed"}) {
    auto sys = Rtdbs::Create(SmallConfig(spec, 0.05));
    ASSERT_TRUE(sys.ok()) << spec;
    sys.value()->RunUntil(900.0);
    EXPECT_GT(sys.value()->metrics().records().size(), 10u) << spec;
    EXPECT_EQ(sys.value()->policy().Describe(), spec) << spec;
  }
}

TEST(Engine, PmmControllerIsExposedOnlyForPmmPolicies) {
  auto max_sys = Rtdbs::Create(SmallConfig("max"));
  EXPECT_EQ(max_sys.value()->pmm(), nullptr);
  auto pmm_sys = Rtdbs::Create(SmallConfig("pmm"));
  EXPECT_NE(pmm_sys.value()->pmm(), nullptr);
}

TEST(Engine, PmmAdaptsDuringRun) {
  auto sys = Rtdbs::Create(SmallConfig("pmm", 0.07));
  ASSERT_TRUE(sys.ok());
  sys.value()->RunUntil(3600.0 * 2);
  const core::PmmController* pmm = sys.value()->pmm();
  ASSERT_NE(pmm, nullptr);
  EXPECT_GT(pmm->adaptations(), 5);
  // Under this memory-bottlenecked overload PMM must have left Max mode.
  EXPECT_EQ(pmm->mode(), core::PmmController::Mode::kMinMax);
}

TEST(Engine, MplSamplerCollectsTrace) {
  SystemConfig config = SmallConfig("minmax");
  config.mpl_sample_interval = 30.0;
  auto sys = Rtdbs::Create(config);
  ASSERT_TRUE(sys.ok());
  sys.value()->RunUntil(1500.0);
  EXPECT_NEAR(static_cast<double>(sys.value()->metrics().mpl_samples().size()),
              50.0, 2.0);
}

TEST(Engine, MaxFluctuatesFarLessThanMinMax) {
  // Under Max a started query only ever toggles between its maximum and
  // zero (suspension by a more urgent arrival), so fluctuation counts
  // stay near zero; MinMax continually revises allocations (Figure 7).
  auto max_sys = Rtdbs::Create(SmallConfig("max", 0.06));
  ASSERT_TRUE(max_sys.ok());
  max_sys.value()->RunUntil(3600.0);
  auto mm_sys = Rtdbs::Create(SmallConfig("minmax", 0.06));
  ASSERT_TRUE(mm_sys.ok());
  mm_sys.value()->RunUntil(3600.0);
  double max_fluct = max_sys.value()->Summarize().overall.avg_fluctuations;
  double mm_fluct = mm_sys.value()->Summarize().overall.avg_fluctuations;
  EXPECT_LT(max_fluct, mm_fluct);
  EXPECT_LT(max_fluct, 1.0);
}

TEST(Engine, MinMaxProducesFluctuations) {
  auto sys = Rtdbs::Create(SmallConfig("minmax", 0.07));
  ASSERT_TRUE(sys.ok());
  sys.value()->RunUntil(3600.0);
  SystemSummary s = sys.value()->Summarize();
  EXPECT_GT(s.overall.avg_fluctuations, 0.5);
}

TEST(Engine, RepeatedRunUntilComposes) {
  auto sys = Rtdbs::Create(SmallConfig("pmm"));
  ASSERT_TRUE(sys.ok());
  sys.value()->RunUntil(600.0);
  size_t first = sys.value()->metrics().records().size();
  sys.value()->RunUntil(1800.0);
  EXPECT_GT(sys.value()->metrics().records().size(), first);
}

TEST(Engine, SourceActivationDrivesWorkloadChanges) {
  PolicyConfig policy{"pmm"};
  SystemConfig config = harness::WorkloadChangeConfig(
      policy, /*medium_active=*/true, /*small_active=*/false);
  auto sys = Rtdbs::Create(config);
  ASSERT_TRUE(sys.ok());
  sys.value()->RunUntil(3600.0);
  int64_t medium_only =
      static_cast<int64_t>(sys.value()->metrics().records().size());
  sys.value()->source().Deactivate(0);
  sys.value()->source().Activate(1);
  sys.value()->RunUntil(7200.0);
  // The Small class at 2.8 q/s floods the record stream.
  int64_t after =
      static_cast<int64_t>(sys.value()->metrics().records().size());
  EXPECT_GT(after - medium_only, 2000);
  ClassSummary small_window = MetricsCollector::WindowSummary(
      sys.value()->metrics().records(), 3600.0, 7200.0, /*class=*/1);
  EXPECT_GT(small_window.completions, 2000);
}

}  // namespace
}  // namespace rtq::engine
