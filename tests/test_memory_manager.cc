#include "core/memory_manager.h"

#include <gtest/gtest.h>

#include <map>

namespace rtq::core {
namespace {

MemRequest Q(QueryId id, SimTime deadline, PageCount min, PageCount max) {
  MemRequest r;
  r.id = id;
  r.deadline = deadline;
  r.min_memory = min;
  r.max_memory = max;
  return r;
}

struct Recorder {
  std::map<QueryId, PageCount> allocations;
  int calls = 0;
  MemoryManager::ApplyFn fn() {
    return [this](QueryId id, PageCount pages) {
      allocations[id] = pages;
      ++calls;
    };
  }
};

TEST(MemoryManager, AdmitsOnAdd) {
  Recorder rec;
  MemoryManager mm(1000, std::make_unique<MaxStrategy>(), rec.fn());
  mm.AddQuery(Q(1, 10.0, 40, 600));
  EXPECT_EQ(rec.allocations[1], 600);
  EXPECT_EQ(mm.admitted_count(), 1);
  EXPECT_EQ(mm.allocated_pages(), 600);
}

TEST(MemoryManager, WaitingQueryGetsZero) {
  Recorder rec;
  MemoryManager mm(1000, std::make_unique<MaxStrategy>(false), rec.fn());
  mm.AddQuery(Q(1, 10.0, 40, 800));
  mm.AddQuery(Q(2, 20.0, 40, 800));
  EXPECT_EQ(mm.admitted_count(), 1);
  EXPECT_EQ(mm.waiting_count(), 1);
  EXPECT_EQ(mm.allocation_of(2), 0);
}

TEST(MemoryManager, RemovePromotesWaiters) {
  Recorder rec;
  MemoryManager mm(1000, std::make_unique<MaxStrategy>(false), rec.fn());
  mm.AddQuery(Q(1, 10.0, 40, 800));
  mm.AddQuery(Q(2, 20.0, 40, 800));
  mm.RemoveQuery(1);
  EXPECT_EQ(rec.allocations[2], 800);
  EXPECT_EQ(mm.admitted_count(), 1);
  EXPECT_EQ(mm.live_count(), 1);
}

TEST(MemoryManager, EarlierDeadlinePreemptsMemory) {
  Recorder rec;
  MemoryManager mm(1000, std::make_unique<MinMaxStrategy>(-1), rec.fn());
  mm.AddQuery(Q(1, 100.0, 40, 900));
  EXPECT_EQ(rec.allocations[1], 900);
  // A more urgent query arrives: it takes the max; the old one drops to min.
  mm.AddQuery(Q(2, 50.0, 40, 900));
  EXPECT_EQ(rec.allocations[2], 900);
  EXPECT_EQ(rec.allocations[1], 100);  // 1000 - 900
}

TEST(MemoryManager, ApplyCalledOnlyOnChanges) {
  Recorder rec;
  MemoryManager mm(1000, std::make_unique<MaxStrategy>(), rec.fn());
  mm.AddQuery(Q(1, 10.0, 40, 300));
  int calls_after_add = rec.calls;
  mm.Reallocate();  // nothing changed
  EXPECT_EQ(rec.calls, calls_after_add);
}

TEST(MemoryManager, SetStrategyReallocates) {
  Recorder rec;
  MemoryManager mm(1000, std::make_unique<MaxStrategy>(false), rec.fn());
  mm.AddQuery(Q(1, 10.0, 40, 700));
  mm.AddQuery(Q(2, 20.0, 40, 700));
  EXPECT_EQ(mm.admitted_count(), 1);  // Max admits only one
  mm.SetStrategy(std::make_unique<MinMaxStrategy>(-1));
  EXPECT_EQ(mm.admitted_count(), 2);  // MinMax admits both
  EXPECT_EQ(rec.allocations[1], 700);
  EXPECT_EQ(rec.allocations[2], 300);
  EXPECT_EQ(mm.strategy().name(), "MinMax");
}

TEST(MemoryManager, ShrinksAppliedBeforeGrows) {
  // If grows were applied first the pool would transiently oversubscribe;
  // the recorder checks the running total never exceeds the pool.
  PageCount running = 0;
  PageCount peak = 0;
  std::map<QueryId, PageCount> current;
  MemoryManager mm(
      1000, std::make_unique<MinMaxStrategy>(-1),
      [&](QueryId id, PageCount pages) {
        running += pages - current[id];
        current[id] = pages;
        peak = std::max(peak, running);
      });
  mm.AddQuery(Q(1, 100.0, 40, 900));
  mm.AddQuery(Q(2, 50.0, 40, 900));   // forces 1 to shrink, 2 to grow
  mm.AddQuery(Q(3, 25.0, 40, 900));   // forces more reshuffling
  mm.RemoveQuery(3);
  EXPECT_LE(peak, 1000);
}

TEST(MemoryManager, RejectsDuplicateIds) {
  Recorder rec;
  MemoryManager mm(1000, std::make_unique<MaxStrategy>(), rec.fn());
  mm.AddQuery(Q(1, 10.0, 40, 100));
  EXPECT_DEATH(mm.AddQuery(Q(1, 20.0, 40, 100)), "duplicate");
}

TEST(MemoryManager, RejectsUnknownRemoval) {
  Recorder rec;
  MemoryManager mm(1000, std::make_unique<MaxStrategy>(), rec.fn());
  EXPECT_DEATH(mm.RemoveQuery(42), "unknown");
}

TEST(MemoryManager, RejectsImpossibleDemands) {
  Recorder rec;
  MemoryManager mm(1000, std::make_unique<MaxStrategy>(), rec.fn());
  EXPECT_DEATH(mm.AddQuery(Q(1, 10.0, 40, 2000)), "more memory");
}

TEST(MemoryManager, DeadlineTiesBreakByQueryId) {
  Recorder rec;
  MemoryManager mm(1000, std::make_unique<MinMaxStrategy>(-1), rec.fn());
  mm.AddQuery(Q(7, 50.0, 40, 900));
  mm.AddQuery(Q(3, 50.0, 40, 900));
  // Same deadline: the earlier-arriving (lower id) query wins the top-up.
  EXPECT_EQ(rec.allocations[3], 900);
  EXPECT_EQ(rec.allocations[7], 100);
}

/// Counting admission gate with a fixed slot capacity (the unit-test
/// stand-in for one shard's view of a core::ShardCoordinator).
struct SlotGate final : AdmissionGate {
  explicit SlotGate(int64_t cap) : capacity(cap) {}
  bool TryAcquire() override {
    if (in_use >= capacity) {
      ++refused;
      return false;
    }
    ++in_use;
    return true;
  }
  void Release() override {
    ASSERT_GT(in_use, 0);
    --in_use;
  }
  int64_t capacity;
  int64_t in_use = 0;
  int64_t refused = 0;
};

TEST(MemoryManager, GateRefusalVetoesAdmission) {
  Recorder rec;
  SlotGate gate(0);  // the cluster is full: nobody may be admitted
  MemoryManager mm(1000, std::make_unique<MaxStrategy>(), rec.fn());
  mm.SetAdmissionGate(&gate);
  mm.AddQuery(Q(1, 10.0, 40, 600));
  EXPECT_EQ(mm.admitted_count(), 0);
  EXPECT_EQ(mm.waiting_count(), 1);
  EXPECT_EQ(mm.allocation_of(1), 0);
  EXPECT_GT(gate.refused, 0);
}

TEST(MemoryManager, GateSlotIsHeldUntilRemovalThenReclaimed) {
  Recorder rec;
  SlotGate gate(1);
  MemoryManager mm(1000, std::make_unique<MaxStrategy>(false), rec.fn());
  mm.SetAdmissionGate(&gate);
  // Memory could hold both (min 40 each), but the gate caps MPL at 1.
  mm.AddQuery(Q(1, 10.0, 40, 400));
  mm.AddQuery(Q(2, 20.0, 40, 400));
  EXPECT_EQ(mm.admitted_count(), 1);
  EXPECT_EQ(mm.allocation_of(1), 400);
  EXPECT_EQ(mm.allocation_of(2), 0);
  EXPECT_EQ(gate.in_use, 1);
  // Removing the holder releases the slot; the waiter claims it on the
  // removal's reallocation pass.
  mm.RemoveQuery(1);
  EXPECT_EQ(mm.admitted_count(), 1);
  EXPECT_EQ(mm.allocation_of(2), 400);
  EXPECT_EQ(gate.in_use, 1);
  mm.RemoveQuery(2);
  EXPECT_EQ(gate.in_use, 0);
}

TEST(MemoryManager, GateAcquiresInDeadlineOrder) {
  Recorder rec;
  SlotGate gate(1);
  MemoryManager mm(1000, std::make_unique<MinMaxStrategy>(-1), rec.fn());
  mm.SetAdmissionGate(&gate);
  // Two queries wait behind a full gate; when the slot frees, the one
  // with the earlier deadline must claim it — even though it arrived
  // later.
  mm.AddQuery(Q(1, 10.0, 40, 400));
  mm.AddQuery(Q(2, 90.0, 40, 400));
  mm.AddQuery(Q(3, 50.0, 40, 400));
  EXPECT_EQ(mm.admitted_count(), 1);
  EXPECT_EQ(mm.allocation_of(2), 0);
  EXPECT_EQ(mm.allocation_of(3), 0);
  mm.RemoveQuery(1);
  EXPECT_EQ(mm.admitted_count(), 1);
  EXPECT_EQ(mm.allocation_of(3), 400) << "earliest deadline takes the slot";
  EXPECT_EQ(mm.allocation_of(2), 0);
}

TEST(MemoryManager, GateMustBeInstalledBeforeFirstQuery) {
  Recorder rec;
  SlotGate gate(1);
  MemoryManager mm(1000, std::make_unique<MaxStrategy>(), rec.fn());
  mm.AddQuery(Q(1, 10.0, 40, 100));
  EXPECT_DEATH(mm.SetAdmissionGate(&gate), "empty manager");
}

}  // namespace
}  // namespace rtq::core
