#include "storage/temp_space.h"

#include <gtest/gtest.h>

#include "storage/database.h"

namespace rtq::storage {
namespace {

Database MakeDb(int32_t disks, Rng* rng) {
  DatabaseSpec spec;
  spec.num_disks = disks;
  RelationGroupSpec g;
  g.rel_per_disk = 2;
  g.min_pages = 1000;
  g.max_pages = 2000;
  spec.groups = {g};
  auto db = Database::Create(spec, model::DiskParams(), rng);
  return std::move(db).value();
}

TEST(TempSpace, ArenasExcludeRelationBand) {
  Rng rng(1);
  model::DiskParams disk;
  Database db = MakeDb(1, &rng);
  TempSpace temp(db, disk);
  PageCount band = db.relation_area_end(0) - db.relation_area_begin(0);
  EXPECT_EQ(temp.free_pages(0), disk.capacity() - band);
}

TEST(TempSpace, AllocationsPreferDiskAndAvoidBand) {
  Rng rng(2);
  model::DiskParams disk;
  Database db = MakeDb(2, &rng);
  TempSpace temp(db, disk);
  auto file = temp.Allocate(500, /*preferred=*/1);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file.value().disk, 1);
  // The extent must not overlap the relation band.
  PageCount begin = db.relation_area_begin(1);
  PageCount end = db.relation_area_end(1);
  bool before = file.value().start_page + file.value().pages <= begin;
  bool after = file.value().start_page >= end;
  EXPECT_TRUE(before || after);
}

TEST(TempSpace, PlacementHugsTheRelationBand) {
  Rng rng(3);
  model::DiskParams disk;
  Database db = MakeDb(1, &rng);
  TempSpace temp(db, disk);
  auto file = temp.Allocate(100, 0);
  ASSERT_TRUE(file.ok());
  // The extent should touch one edge of the relation band, not sit at the
  // far end of the disk (seek-locality optimisation).
  PageCount begin = db.relation_area_begin(0);
  PageCount end = db.relation_area_end(0);
  bool hugs_outer = file.value().start_page + file.value().pages == begin;
  bool hugs_inner = file.value().start_page == end;
  EXPECT_TRUE(hugs_outer || hugs_inner);
}

TEST(TempSpace, FreeReturnsPagesAndCoalesces) {
  Rng rng(4);
  model::DiskParams disk;
  Database db = MakeDb(1, &rng);
  TempSpace temp(db, disk);
  PageCount before = temp.free_pages(0);
  auto a = temp.Allocate(300, 0);
  auto b = temp.Allocate(300, 0);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(temp.free_pages(0), before - 600);
  EXPECT_EQ(temp.live_allocations(), 2);
  temp.Free(a.value());
  temp.Free(b.value());
  EXPECT_EQ(temp.free_pages(0), before);
  EXPECT_EQ(temp.live_allocations(), 0);
  // After coalescing, a large allocation using the whole arena side works.
  auto big = temp.Allocate(before / 2, 0);
  EXPECT_TRUE(big.ok());
}

TEST(TempSpace, FallsBackToOtherDisks) {
  Rng rng(5);
  model::DiskParams disk;
  Database db = MakeDb(3, &rng);
  TempSpace temp(db, disk);
  // Exhaust disk 0's two arenas (each allocation must fit in one hole).
  while (temp.free_pages(0) >= 600) {
    ASSERT_TRUE(temp.Allocate(500, 0).ok());
  }
  auto spill = temp.Allocate(600, 0);
  ASSERT_TRUE(spill.ok());
  EXPECT_NE(spill.value().disk, 0);
}

TEST(TempSpace, FailsWhenEverythingIsFull) {
  Rng rng(6);
  model::DiskParams disk;
  Database db = MakeDb(1, &rng);
  TempSpace temp(db, disk);
  while (temp.free_pages(0) >= 600) {
    ASSERT_TRUE(temp.Allocate(500, 0).ok());
  }
  auto fail = temp.Allocate(600, 0);
  EXPECT_FALSE(fail.ok());
  EXPECT_EQ(fail.status().code(), StatusCode::kOutOfRange);
}

TEST(TempSpace, ManyAllocationsStayDisjoint) {
  Rng rng(7);
  model::DiskParams disk;
  Database db = MakeDb(2, &rng);
  TempSpace temp(db, disk);
  std::vector<TempFile> files;
  for (int i = 0; i < 50; ++i) {
    auto f = temp.Allocate(100 + i, i % 2);
    ASSERT_TRUE(f.ok());
    files.push_back(f.value());
  }
  for (size_t i = 0; i < files.size(); ++i) {
    for (size_t j = i + 1; j < files.size(); ++j) {
      if (files[i].disk != files[j].disk) continue;
      bool disjoint =
          files[i].start_page + files[i].pages <= files[j].start_page ||
          files[j].start_page + files[j].pages <= files[i].start_page;
      EXPECT_TRUE(disjoint) << "extents " << i << " and " << j << " overlap";
    }
  }
  for (const TempFile& f : files) temp.Free(f);
  EXPECT_EQ(temp.live_allocations(), 0);
}

TEST(TempSpace, TotalFreeAcrossDisks) {
  Rng rng(8);
  model::DiskParams disk;
  Database db = MakeDb(2, &rng);
  TempSpace temp(db, disk);
  PageCount total = temp.total_free_pages();
  EXPECT_EQ(total, temp.free_pages(0) + temp.free_pages(1));
  auto f = temp.Allocate(1000, 0);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(temp.total_free_pages(), total - 1000);
}

}  // namespace
}  // namespace rtq::storage
