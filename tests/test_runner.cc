#include "harness/runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "harness/paper_experiments.h"

namespace rtq::harness {
namespace {

/// Restores (or clears) an environment variable on scope exit.
class ScopedEnv {
 public:
  ScopedEnv(const char* name, const char* value) : name_(name) {
    if (const char* old = std::getenv(name)) old_ = old;
    if (value != nullptr) {
      setenv(name, value, 1);
    } else {
      unsetenv(name);
    }
  }
  ~ScopedEnv() {
    if (old_.has_value()) {
      setenv(name_, old_->c_str(), 1);
    } else {
      unsetenv(name_);
    }
  }

 private:
  const char* name_;
  std::optional<std::string> old_;
};

std::vector<RunSpec> BaselineSpecs(int count) {
  engine::PolicyConfig pmm{"pmm"};
  std::vector<RunSpec> specs;
  for (int i = 0; i < count; ++i) {
    RunSpec spec;
    spec.label = "spec-" + std::to_string(i);
    spec.config = BaselineConfig(0.05 + 0.01 * i, pmm,
                                 /*seed=*/100 + static_cast<uint64_t>(i));
    spec.duration = 120.0;  // short: determinism, not steady state
    specs.push_back(std::move(spec));
  }
  return specs;
}

TEST(BenchJobs, EnvOverrideWins) {
  ScopedEnv env("RTQ_BENCH_JOBS", "3");
  EXPECT_EQ(BenchJobs(), 3);
}

TEST(BenchJobs, InvalidOrUnsetFallsBackToHardware) {
  {
    ScopedEnv env("RTQ_BENCH_JOBS", "0");
    EXPECT_GE(BenchJobs(), 1);
  }
  {
    ScopedEnv env("RTQ_BENCH_JOBS", "bogus");
    EXPECT_GE(BenchJobs(), 1);
  }
  {
    ScopedEnv env("RTQ_BENCH_JOBS", nullptr);
    EXPECT_GE(BenchJobs(), 1);
  }
}

TEST(RunPool, EmptySpecs) {
  EXPECT_TRUE(RunPool({}, 4).empty());
}

TEST(RunPool, PreservesSubmissionOrder) {
  // Jobs finish in roughly reverse submission order (earlier jobs sleep
  // longer); the result vector must still follow submission order.
  const size_t n = 8;
  std::vector<RunSpec> specs(n);
  for (size_t i = 0; i < n; ++i) specs[i].label = "job-" + std::to_string(i);

  auto fn = [&](const RunSpec& spec, size_t index) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(5 * (n - index)));
    RunResult result;
    result.label = spec.label;
    result.summary.overall.completions = static_cast<int64_t>(index);
    return result;
  };

  std::vector<RunResult> results = RunPool(specs, 4, fn);
  ASSERT_EQ(results.size(), n);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(results[i].label, specs[i].label);
    EXPECT_EQ(results[i].summary.overall.completions,
              static_cast<int64_t>(i));
  }
}

TEST(RunPool, ForwardsFirstFailureBySubmissionIndex) {
  std::vector<RunSpec> specs(6);
  for (size_t i = 0; i < specs.size(); ++i) {
    specs[i].label = std::to_string(i);
  }
  std::atomic<int> ran{0};
  auto fn = [&](const RunSpec&, size_t index) -> RunResult {
    ran.fetch_add(1);
    if (index == 2 || index == 4) {
      throw std::runtime_error("boom " + std::to_string(index));
    }
    return RunResult{};
  };

  try {
    RunPool(specs, 3, fn);
    FAIL() << "expected RunPool to rethrow";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom 2");
  }
  // A failure does not cancel the remaining jobs; the pool drains fully
  // before rethrowing, so no worker outlives the call.
  EXPECT_EQ(ran.load(), 6);
}

TEST(RunPool, SequentialAndParallelRunsAreIdentical) {
  // Fixed seeds + independent single-threaded simulations: the worker
  // count must not change any per-point summary bit.
  std::vector<RunSpec> specs = BaselineSpecs(3);
  std::vector<RunResult> seq = RunPool(specs, 1);
  std::vector<RunResult> par = RunPool(specs, 4);
  ASSERT_EQ(seq.size(), par.size());
  for (size_t i = 0; i < seq.size(); ++i) {
    EXPECT_EQ(seq[i].label, par[i].label);
    const engine::SystemSummary& a = seq[i].summary;
    const engine::SystemSummary& b = par[i].summary;
    EXPECT_EQ(a.overall.completions, b.overall.completions);
    EXPECT_EQ(a.overall.misses, b.overall.misses);
    EXPECT_EQ(a.events_dispatched, b.events_dispatched);
    EXPECT_DOUBLE_EQ(a.overall.miss_ratio, b.overall.miss_ratio);
    EXPECT_DOUBLE_EQ(a.overall.avg_wait, b.overall.avg_wait);
    EXPECT_DOUBLE_EQ(a.overall.avg_exec, b.overall.avg_exec);
    EXPECT_DOUBLE_EQ(a.overall.avg_response, b.overall.avg_response);
    EXPECT_DOUBLE_EQ(a.avg_mpl, b.avg_mpl);
    EXPECT_DOUBLE_EQ(a.avg_disk_utilization, b.avg_disk_utilization);
    EXPECT_EQ(seq[i].pmm_trace.size(), par[i].pmm_trace.size());
  }
}

TEST(RunPool, DefaultJobFillsResultFields) {
  std::vector<RunSpec> specs = BaselineSpecs(1);
  std::vector<RunResult> results = RunPool(specs, 2);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results[0].label, "spec-0");
  // The config echo survives the pool round-trip.
  EXPECT_EQ(results[0].config.policy.ResolvedSpec(), "pmm");
  EXPECT_EQ(results[0].config.seed, 100u);
  EXPECT_GT(results[0].summary.simulated_time, 0.0);
  EXPECT_GT(results[0].summary.events_dispatched, 0u);
  EXPECT_GT(results[0].wall_seconds, 0.0);
}

TEST(RunPool, SpecDurationOverridesExperimentDuration) {
  // Guard the satellite requirement: fractional RTQ_SIM_HOURS works and
  // a per-spec duration wins over the environment.
  ScopedEnv env("RTQ_SIM_HOURS", "0.1");
  EXPECT_DOUBLE_EQ(ExperimentDuration(), 360.0);

  std::vector<RunSpec> specs = BaselineSpecs(1);
  specs[0].duration = 60.0;
  std::vector<RunResult> results = RunPool(specs, 1);
  EXPECT_DOUBLE_EQ(results[0].summary.simulated_time, 60.0);

  specs[0].duration = 0.0;  // fall back to RTQ_SIM_HOURS
  results = RunPool(specs, 1);
  EXPECT_DOUBLE_EQ(results[0].summary.simulated_time, 360.0);
}

}  // namespace
}  // namespace rtq::harness
