// serve/snapshot + serve/serve_session: the `.rtqs` format and the
// headline serve-mode invariant — restore-then-continue is bit-identical
// to an uninterrupted run, for every registered policy, with and without
// mid-run policy/scenario swaps in the journal.

#include "serve/snapshot.h"

#include <string>
#include <vector>

#include "common/rng.h"
#include "core/policy_registry.h"
#include "gtest/gtest.h"
#include "serve/serve_session.h"
#include "workload/scenario_registry.h"

namespace rtq::serve {
namespace {

Snapshot SampleSnapshot() {
  Snapshot snap;
  snap.session.workload = "multiclass:rate=0.1";
  snap.session.policy = "pmm-fair:w=1,2";
  snap.session.seed = 7;
  snap.journal.push_back(JournalEntry{1000, "policy", "minmax:10"});
  snap.journal.push_back(
      JournalEntry{2500, "scenario", "flash:rate=0.5,mult=6"});
  snap.position_events = 4000;
  snap.position_time = 1234.5678901234567;
  snap.digest = {"clock 1234.5678901234567", "dispatched 4000",
                 "pending 12 9876543210"};
  return snap;
}

TEST(SnapshotFormat, SerializeParseIsAFixedPoint) {
  Snapshot snap = SampleSnapshot();
  auto parsed = ParseSnapshot(SerializeSnapshot(snap));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), snap);
}

TEST(SnapshotFormat, ParsesCommentsAndBlankLines) {
  auto parsed = ParseSnapshot(
      "# a serve snapshot\n"
      "rtqs 1\n"
      "\n"
      "workload baseline:rate=0.06\n"
      "policy pmm\n"
      "seed 42\n"
      "journal 0\n"
      "position 0 0\n"
      "# no digest yet\n"
      "digest 0\n"
      "end\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().session.workload, "baseline:rate=0.06");
  EXPECT_EQ(parsed.value(), Snapshot{});
}

TEST(SnapshotFormat, StructuralViolationsAreStatusErrors) {
  const char* header =
      "rtqs 1\nworkload w\npolicy p\nseed 42\n";
  struct Case {
    const char* label;
    std::string text;
  };
  const Case cases[] = {
      {"empty", ""},
      {"wrong magic", "rtqt 1\n"},
      {"future version", "rtqs 2\n"},
      {"missing workload", "rtqs 1\npolicy p\n"},
      {"bad seed", "rtqs 1\nworkload w\npolicy p\nseed -1\n"},
      {"bad journal count", std::string(header) + "journal many\n"},
      {"truncated journal", std::string(header) + "journal 2\n"
                            "j 10 policy pmm\nposition 10 1\n"},
      {"unknown journal command", std::string(header) + "journal 1\n"
                                  "j 10 restart pmm\n"},
      {"journal going backwards", std::string(header) + "journal 2\n"
                                  "j 20 policy pmm\nj 10 policy max\n"},
      {"journal past position", std::string(header) + "journal 1\n"
                                "j 50 policy pmm\nposition 10 1\n"
                                "digest 0\nend\n"},
      {"negative position time", std::string(header) + "journal 0\n"
                                 "position 10 -1\n"},
      {"truncated digest", std::string(header) + "journal 0\n"
                           "position 0 0\ndigest 2\ns clock 0\n"},
      {"missing end", std::string(header) + "journal 0\n"
                      "position 0 0\ndigest 0\n"},
      {"trailing content", std::string(header) + "journal 0\n"
                           "position 0 0\ndigest 0\nend\nrtqs 1\n"},
  };
  for (const Case& c : cases) {
    auto parsed = ParseSnapshot(c.text);
    EXPECT_FALSE(parsed.ok()) << c.label;
    EXPECT_NE(parsed.status().message().find("line"), std::string::npos)
        << c.label << ": " << parsed.status().message();
  }
}

TEST(SnapshotFormat, FileRoundTripAndMissingFile) {
  Snapshot snap = SampleSnapshot();
  std::string path =
      testing::TempDir() + "/rtq_serve_snapshot_test/roundtrip.rtqs";
  ASSERT_TRUE(WriteSnapshotFile(snap, path).ok());
  auto read = ReadSnapshotFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value(), snap);

  auto missing = ReadSnapshotFile(path + ".does-not-exist");
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

// Mirrors TraceFuzz.CorruptedInputNeverCrashes: random mutations and
// truncations of a valid snapshot must parse to a Status or to a value
// that itself round-trips — never crash (the corrupt-snapshot half of
// the Status-not-crash satellite).
TEST(SnapshotFuzz, CorruptedInputNeverCrashes) {
  Rng rng(4242);
  const std::string base = SerializeSnapshot(SampleSnapshot());
  for (int iter = 0; iter < 400; ++iter) {
    std::string text = base;
    if (rng.NextDouble() < 0.5) {
      text.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(text.size()) - 1)));
    }
    int mutations = static_cast<int>(rng.UniformInt(0, 5));
    for (int m = 0; m < mutations && !text.empty(); ++m) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(text.size()) - 1));
      text[pos] = static_cast<char>(rng.UniformInt(9, 126));
    }
    auto parsed = ParseSnapshot(text);
    if (parsed.ok()) {
      auto again = ParseSnapshot(SerializeSnapshot(parsed.value()));
      ASSERT_TRUE(again.ok()) << iter;
      EXPECT_EQ(again.value(), parsed.value()) << iter;
    } else {
      EXPECT_FALSE(parsed.status().message().empty()) << iter;
    }
  }
}

// --- the headline invariant --------------------------------------------

/// Runs `spec` for `before` events, snapshots (through the text format,
/// so serialization is part of the proof), continues `after` events and
/// digests; then restores the snapshot into a fresh session, continues
/// `after` events and digests. Both digests must be identical.
void ExpectZeroDriftRestore(const SessionSpec& spec, uint64_t before,
                            uint64_t after) {
  SCOPED_TRACE(spec.workload + " / " + spec.policy);
  auto original = ServeSession::Create(spec);
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  ASSERT_EQ(original.value()->RunEvents(before), before);

  auto taken = original.value()->TakeSnapshot();
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  auto snapshot = ParseSnapshot(SerializeSnapshot(taken.value()));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  ASSERT_EQ(original.value()->RunEvents(after), after);
  std::vector<std::string> uninterrupted;
  original.value()->system().AppendStateDigest(&uninterrupted);

  auto restored = ServeSession::Restore(snapshot.value());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored.value()->RunEvents(after), after);
  std::vector<std::string> resumed;
  restored.value()->system().AppendStateDigest(&resumed);

  EXPECT_EQ(uninterrupted, resumed);
}

// Every registered policy, on the baseline workload and on a scenario
// workload: restore-then-continue must be bit-identical to an
// uninterrupted run. New policies join this gate automatically.
TEST(SnapshotProperty, EveryPolicyRestoresWithZeroDrift) {
  std::vector<std::string> policies = core::PolicyRegistry::Global().Names();
  ASSERT_FALSE(policies.empty());
  for (const std::string& policy : policies) {
    SessionSpec baseline;
    baseline.workload = "baseline:rate=0.08";
    baseline.policy = policy;
    ExpectZeroDriftRestore(baseline, 3000, 2000);

    SessionSpec scenario;
    scenario.workload = "scenario:diurnal";
    scenario.policy = policy;
    ExpectZeroDriftRestore(scenario, 3000, 2000);
  }
}

// A sample of every registered scenario (as the boot workload) under the
// paper's PMM policy.
TEST(SnapshotProperty, EveryScenarioRestoresWithZeroDrift) {
  std::vector<std::string> scenarios =
      workload::ScenarioRegistry::Global().Names();
  ASSERT_FALSE(scenarios.empty());
  for (const std::string& scenario : scenarios) {
    SessionSpec spec;
    spec.workload = "scenario:" + scenario;
    spec.policy = "pmm";
    ExpectZeroDriftRestore(spec, 3000, 2000);
  }
}

// The journal replay path: a session with live policy and scenario swaps
// mid-run must restore with zero drift too — the snapshot records the
// swaps at their exact event positions.
TEST(SnapshotProperty, JournaledSwapsRestoreWithZeroDrift) {
  SessionSpec spec;
  spec.workload = "multiclass:rate=0.1";
  spec.policy = "pmm";
  auto original = ServeSession::Create(spec);
  ASSERT_TRUE(original.ok()) << original.status().ToString();
  ServeSession& s = *original.value();

  ASSERT_EQ(s.RunEvents(1500), 1500u);
  auto swap1 = s.ApplyPolicy("select:candidates=pmm+pmm-predict");
  ASSERT_TRUE(swap1.status.ok()) << swap1.status.ToString();
  ASSERT_EQ(s.RunEvents(1500), 1500u);
  auto swap2 = s.ApplyScenario("flash:mult=6");
  ASSERT_TRUE(swap2.ok()) << swap2.status().ToString();
  ASSERT_EQ(s.RunEvents(1000), 1000u);

  auto taken = s.TakeSnapshot();
  ASSERT_TRUE(taken.ok()) << taken.status().ToString();
  auto snapshot = ParseSnapshot(SerializeSnapshot(taken.value()));
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();
  ASSERT_EQ(snapshot.value().journal.size(), 2u);

  ASSERT_EQ(s.RunEvents(2000), 2000u);
  std::vector<std::string> uninterrupted;
  s.system().AppendStateDigest(&uninterrupted);

  auto restored = ServeSession::Restore(snapshot.value());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value()->journal(), snapshot.value().journal);
  ASSERT_EQ(restored.value()->RunEvents(2000), 2000u);
  std::vector<std::string> resumed;
  restored.value()->system().AppendStateDigest(&resumed);

  EXPECT_EQ(uninterrupted, resumed);
}

// A snapshot whose digest does not match the replayed state must fail
// restore with an error naming the first mismatching line — a corrupt
// or hand-edited snapshot cannot silently produce a diverged session.
TEST(SnapshotProperty, TamperedDigestFailsRestore) {
  auto session = ServeSession::Create(SessionSpec{});
  ASSERT_TRUE(session.ok());
  ASSERT_EQ(session.value()->RunEvents(2000), 2000u);
  Snapshot snap = session.value()->TakeSnapshot().value();
  ASSERT_FALSE(snap.digest.empty());
  snap.digest[0] = "clock 999999";

  auto restored = ServeSession::Restore(snap);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("digest mismatch"),
            std::string::npos)
      << restored.status().message();
}

// A journal entry whose spec no longer applies (here: a scenario whose
// class count cannot match the session's workload) must fail the replay
// with a Status, not crash.
TEST(SnapshotProperty, UnreplayableJournalFailsRestore) {
  auto session = ServeSession::Create(SessionSpec{});
  ASSERT_TRUE(session.ok());
  ASSERT_EQ(session.value()->RunEvents(2000), 2000u);
  Snapshot snap = session.value()->TakeSnapshot().value();
  snap.journal.push_back(JournalEntry{1000, "scenario", "flash:mult=6"});
  // Keep the grammar valid: entries must be non-decreasing and within
  // the position, which 1000 <= 2000 satisfies.
  auto restored = ServeSession::Restore(snap);
  ASSERT_FALSE(restored.ok());
  EXPECT_NE(restored.status().message().find("journal replay"),
            std::string::npos)
      << restored.status().message();
}

// --- sharded sessions --------------------------------------------------

TEST(ShardedServe, RunsAndAppliesPolicySwapsClusterWide) {
  SessionSpec spec;
  spec.workload = "baseline:rate=0.12";
  spec.policy = "pmm";
  spec.shards = 4;
  spec.placement = "skew:hot=0.6";
  auto session = ServeSession::Create(spec);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_TRUE(session.value()->sharded());
  EXPECT_EQ(session.value()->cluster().num_shards(), 4);

  ASSERT_EQ(session.value()->RunEvents(20000), 20000u);
  EXPECT_EQ(session.value()->events(), 20000u);

  auto swap = session.value()->ApplyPolicy("max");
  ASSERT_TRUE(swap.status.ok()) << swap.status.ToString();
  for (int32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(session.value()->cluster().shard(s).policy().Describe(), "max");
  }
  // A rejected spec leaves every shard on the incumbent policy.
  auto bad = session.value()->ApplyPolicy("no-such-policy");
  EXPECT_FALSE(bad.status.ok());
  for (int32_t s = 0; s < 4; ++s) {
    EXPECT_EQ(session.value()->cluster().shard(s).policy().Describe(), "max");
  }
}

TEST(ShardedServe, SnapshotIsUnimplemented) {
  SessionSpec spec;
  spec.shards = 2;
  auto session = ServeSession::Create(spec);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  ASSERT_EQ(session.value()->RunEvents(2000), 2000u);
  auto snap = session.value()->TakeSnapshot();
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), StatusCode::kUnimplemented);
  EXPECT_NE(snap.status().message().find("sharded"), std::string::npos)
      << snap.status().message();
}

TEST(ShardedServe, RejectsBadShardSpecs) {
  SessionSpec spec;
  spec.shards = 2;
  spec.placement = "roundrobin";
  EXPECT_FALSE(ServeSession::Create(spec).ok());
  spec.placement = "hash";
  spec.admission = "global";
  EXPECT_FALSE(ServeSession::Create(spec).ok());
}

}  // namespace
}  // namespace rtq::serve
