// harness/args: shared environment-knob helpers and the --flag=value
// parser used by the long-running driver binaries.

#include "harness/args.h"

#include <cstdlib>

#include "gtest/gtest.h"

namespace rtq::harness {
namespace {

class EnvGuard {
 public:
  explicit EnvGuard(const char* name) : name_(name) { unsetenv(name); }
  ~EnvGuard() { unsetenv(name_); }
  void Set(const char* value) { setenv(name_, value, /*overwrite=*/1); }

 private:
  const char* name_;
};

TEST(EnvKnobs, StringFallsBackWhenUnsetOrEmpty) {
  EnvGuard guard("RTQ_TEST_KNOB");
  EXPECT_EQ(EnvString("RTQ_TEST_KNOB", "dflt"), "dflt");
  guard.Set("");
  EXPECT_EQ(EnvString("RTQ_TEST_KNOB", "dflt"), "dflt");
  guard.Set("value");
  EXPECT_EQ(EnvString("RTQ_TEST_KNOB", "dflt"), "value");
}

TEST(EnvKnobs, PositiveDoubleRejectsZeroNegativeAndGarbage) {
  EnvGuard guard("RTQ_TEST_KNOB");
  EXPECT_DOUBLE_EQ(EnvPositiveDouble("RTQ_TEST_KNOB", 3.0), 3.0);
  guard.Set("10");
  EXPECT_DOUBLE_EQ(EnvPositiveDouble("RTQ_TEST_KNOB", 3.0), 10.0);
  guard.Set("0");
  EXPECT_DOUBLE_EQ(EnvPositiveDouble("RTQ_TEST_KNOB", 3.0), 3.0);
  guard.Set("-2");
  EXPECT_DOUBLE_EQ(EnvPositiveDouble("RTQ_TEST_KNOB", 3.0), 3.0);
  guard.Set("ten");
  EXPECT_DOUBLE_EQ(EnvPositiveDouble("RTQ_TEST_KNOB", 3.0), 3.0);
}

TEST(EnvKnobs, PositiveIntMirrorsDoubleDiscipline) {
  EnvGuard guard("RTQ_TEST_KNOB");
  EXPECT_EQ(EnvPositiveInt("RTQ_TEST_KNOB", 4), 4);
  guard.Set("8");
  EXPECT_EQ(EnvPositiveInt("RTQ_TEST_KNOB", 4), 8);
  guard.Set("0");
  EXPECT_EQ(EnvPositiveInt("RTQ_TEST_KNOB", 4), 4);
  guard.Set("-3");
  EXPECT_EQ(EnvPositiveInt("RTQ_TEST_KNOB", 4), 4);
  guard.Set("jobs");
  EXPECT_EQ(EnvPositiveInt("RTQ_TEST_KNOB", 4), 4);
}

std::vector<const char*> Argv(std::initializer_list<const char*> rest) {
  std::vector<const char*> argv = {"prog"};
  argv.insert(argv.end(), rest.begin(), rest.end());
  return argv;
}

TEST(ArgParser, TypedAccessorsAndFallbacks) {
  auto argv = Argv({"--workload=baseline:rate=0.1", "--seed=7",
                    "--pace=2.5", "--verbose"});
  ArgParser args(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args.String("workload", "x"), "baseline:rate=0.1");
  EXPECT_EQ(args.Int("seed", 42), 7);
  EXPECT_DOUBLE_EQ(args.Double("pace", 0.0), 2.5);
  EXPECT_TRUE(args.Bool("verbose"));
  EXPECT_EQ(args.String("missing", "dflt"), "dflt");
  EXPECT_EQ(args.Int("also-missing", 13), 13);
  EXPECT_FALSE(args.Bool("quiet"));
  EXPECT_TRUE(args.Finish().ok());
}

TEST(ArgParser, UnknownFlagFailsFinish) {
  auto argv = Argv({"--workload=x", "--max-event=5"});
  ArgParser args(static_cast<int>(argv.size()), argv.data());
  args.String("workload", "");
  Status st = args.Finish();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("max-event"), std::string::npos);
}

TEST(ArgParser, MalformedValueFailsFinish) {
  auto argv = Argv({"--seed=seven"});
  ArgParser args(static_cast<int>(argv.size()), argv.data());
  EXPECT_EQ(args.Int("seed", 42), 42);  // falls back, but records the error
  Status st = args.Finish();
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("seed"), std::string::npos);
}

TEST(ArgParser, CollectsPositionals) {
  auto argv = Argv({"input.rtqs", "--seed=1", "other"});
  ArgParser args(static_cast<int>(argv.size()), argv.data());
  args.Int("seed", 0);
  ASSERT_EQ(args.positional().size(), 2u);
  EXPECT_EQ(args.positional()[0], "input.rtqs");
  EXPECT_EQ(args.positional()[1], "other");
  EXPECT_TRUE(args.Finish().ok());
}

}  // namespace
}  // namespace rtq::harness
