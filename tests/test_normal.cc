#include "stats/normal.h"

#include <gtest/gtest.h>

namespace rtq::stats {
namespace {

TEST(Normal, CdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.96), 0.975, 1e-4);
  EXPECT_NEAR(NormalCdf(-1.96), 0.025, 1e-4);
  EXPECT_NEAR(NormalCdf(3.0), 0.99865, 1e-5);
}

TEST(Normal, QuantileKnownValues) {
  // The two critical values PMM uses (Table 1's confidence levels).
  EXPECT_NEAR(NormalQuantile(0.95), 1.6449, 1e-3);   // one-sided 95%
  EXPECT_NEAR(NormalQuantile(0.99), 2.3263, 1e-3);   // one-sided 99%
  EXPECT_NEAR(NormalQuantile(0.975), 1.9600, 1e-3);  // two-sided 95%
  EXPECT_NEAR(NormalQuantile(0.995), 2.5758, 1e-3);  // two-sided 99%
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
}

TEST(Normal, QuantileSymmetry) {
  for (double p : {0.01, 0.1, 0.25, 0.4}) {
    EXPECT_NEAR(NormalQuantile(p), -NormalQuantile(1.0 - p), 1e-9);
  }
}

TEST(Normal, RoundTrip) {
  for (double p = 0.001; p < 0.999; p += 0.037) {
    EXPECT_NEAR(NormalCdf(NormalQuantile(p)), p, 1e-8);
  }
}

TEST(Normal, TailsAreFiniteAndMonotone) {
  double q1 = NormalQuantile(1e-9);
  double q2 = NormalQuantile(1e-6);
  EXPECT_LT(q1, q2);
  EXPECT_GT(q1, -7.0);
  EXPECT_LT(NormalQuantile(1.0 - 1e-9), 7.0);
}

/// Parameterized monotonicity sweep.
class NormalMonotone : public ::testing::TestWithParam<int> {};

TEST_P(NormalMonotone, QuantileIncreasing) {
  double p1 = 0.001 + 0.0998 * GetParam();
  double p2 = p1 + 0.05;
  EXPECT_LT(NormalQuantile(p1), NormalQuantile(p2));
}

INSTANTIATE_TEST_SUITE_P(Grid, NormalMonotone, ::testing::Range(0, 9));

}  // namespace
}  // namespace rtq::stats
