#include "buffer/lru_cache.h"

#include <gtest/gtest.h>

namespace rtq::buffer {
namespace {

TEST(LruCache, MissThenHit) {
  LruCache cache(4);
  EXPECT_FALSE(cache.Lookup(1));
  cache.Insert(1);
  EXPECT_TRUE(cache.Lookup(1));
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_EQ(cache.misses(), 1);
}

TEST(LruCache, EvictsLeastRecentlyUsed) {
  LruCache cache(3);
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(3);
  cache.Lookup(1);   // 1 becomes MRU; 2 is LRU
  cache.Insert(4);   // evicts 2
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
  EXPECT_TRUE(cache.Contains(3));
  EXPECT_TRUE(cache.Contains(4));
}

TEST(LruCache, ContainsDoesNotPromote) {
  LruCache cache(2);
  cache.Insert(1);
  cache.Insert(2);
  cache.Contains(1);  // no promotion
  cache.Insert(3);    // evicts 1 (still LRU)
  EXPECT_FALSE(cache.Contains(1));
}

TEST(LruCache, ReinsertPromotes) {
  LruCache cache(2);
  cache.Insert(1);
  cache.Insert(2);
  cache.Insert(1);  // promote
  cache.Insert(3);  // evicts 2
  EXPECT_TRUE(cache.Contains(1));
  EXPECT_FALSE(cache.Contains(2));
}

TEST(LruCache, ShrinkingCapacityEvicts) {
  LruCache cache(4);
  for (uint64_t k = 1; k <= 4; ++k) cache.Insert(k);
  cache.SetCapacity(2);
  EXPECT_EQ(cache.size(), 2);
  EXPECT_TRUE(cache.Contains(4));
  EXPECT_TRUE(cache.Contains(3));
}

TEST(LruCache, ZeroCapacityInsertsNothing) {
  LruCache cache(0);
  cache.Insert(1);
  EXPECT_EQ(cache.size(), 0);
  EXPECT_FALSE(cache.Lookup(1));
}

TEST(LruCache, EraseRemovesEntry) {
  LruCache cache(4);
  cache.Insert(1);
  cache.Insert(2);
  cache.Erase(1);
  EXPECT_FALSE(cache.Contains(1));
  EXPECT_TRUE(cache.Contains(2));
  cache.Erase(99);  // no-op
  EXPECT_EQ(cache.size(), 1);
}

TEST(LruCache, ClearEmptiesEverything) {
  LruCache cache(4);
  for (uint64_t k = 0; k < 4; ++k) cache.Insert(k);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0);
  EXPECT_FALSE(cache.Contains(0));
}

}  // namespace
}  // namespace rtq::buffer
