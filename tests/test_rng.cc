#include "common/rng.h"

#include <gtest/gtest.h>

namespace rtq {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.NextDouble(), b.NextDouble());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextDouble() == b.NextDouble()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, UniformStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.Uniform(2.5, 7.5);
    EXPECT_GE(x, 2.5);
    EXPECT_LT(x, 7.5);
  }
}

TEST(Rng, UniformIntInclusiveRange) {
  Rng rng(7);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t x = rng.UniformInt(0, 4);
    EXPECT_GE(x, 0);
    EXPECT_LE(x, 4);
    saw_lo |= x == 0;
    saw_hi |= x == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(42);
  double rate = 0.05;
  double sum = 0.0;
  int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(rate);
  double mean = sum / n;
  EXPECT_NEAR(mean, 1.0 / rate, 0.05 / rate);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(9);
  Rng child = parent.Fork();
  // Child's stream must differ from the parent's continuing stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.NextDouble() == child.NextDouble()) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(Rng, ForkedStreamsAreDeterministic) {
  Rng p1(9), p2(9);
  Rng c1 = p1.Fork();
  Rng c2 = p2.Fork();
  for (int i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(c1.NextDouble(), c2.NextDouble());
  }
}

TEST(Rng, SequentialForksDiffer) {
  Rng parent(11);
  Rng a = parent.Fork();
  Rng b = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextDouble() == b.NextDouble()) ++same;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace rtq
