// Registry-wide policy properties. These iterate
// PolicyRegistry::Global().Names(), so every future policy — product or
// test-only — is covered automatically the moment it registers:
//
//  1. every registered name is creatable bare (factories must choose
//     sensible defaults when the spec has no arguments);
//  2. Describe() is a fixed point: Create(Describe()) succeeds and
//     describes itself identically (the round-trip contract documented
//     on MemoryPolicy::Describe);
//  3. the policy a canonical spec rebuilds is behaviourally identical
//     to the original instance: a short two-class simulation driven by
//     the bare name and one driven by Describe()'s canonical spec
//     produce the same trajectory fingerprint. This is what makes spec
//     strings safe to persist in BENCH_*.json and RTQ_POLICIES sweeps.

#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "core/policy_registry.h"
#include "engine/rtdbs.h"
#include "harness/paper_experiments.h"

namespace rtq::core {
namespace {

/// Two workload classes so the per-class policies (pmm-fair, pmm-class)
/// exercise their real code paths.
engine::SystemConfig PropertyConfig(const std::string& spec) {
  return harness::MulticlassConfig(0.4, {spec}, /*seed=*/42);
}

std::tuple<uint64_t, int64_t, int64_t, double> Fingerprint(
    const std::string& spec) {
  auto sys = engine::Rtdbs::Create(PropertyConfig(spec));
  RTQ_CHECK(sys.ok());
  sys.value()->RunUntil(900.0);
  engine::SystemSummary s = sys.value()->Summarize();
  return {s.events_dispatched, s.overall.completions, s.overall.misses,
          s.overall.avg_exec};
}

TEST(PolicyProperty, EveryRegisteredPolicyIsCreatableBare) {
  for (const std::string& name : PolicyRegistry::Global().Names()) {
    auto policy = PolicyRegistry::Global().Create(name);
    EXPECT_TRUE(policy.ok()) << name << ": " << policy.status().ToString();
  }
}

TEST(PolicyProperty, DescribeIsACreateFixedPoint) {
  for (const std::string& name : PolicyRegistry::Global().Names()) {
    auto policy = PolicyRegistry::Global().Create(name);
    ASSERT_TRUE(policy.ok()) << name;
    std::string canonical = policy.value()->Describe();
    auto again = PolicyRegistry::Global().Create(canonical);
    ASSERT_TRUE(again.ok()) << name << " -> " << canonical << ": "
                            << again.status().ToString();
    EXPECT_EQ(again.value()->Describe(), canonical) << name;
    EXPECT_EQ(again.value()->DisplayName(), policy.value()->DisplayName())
        << name;
  }
}

TEST(PolicyProperty, CanonicalSpecReproducesTheOriginalTrajectory) {
  for (const std::string& name : PolicyRegistry::Global().Names()) {
    SCOPED_TRACE(name);
    auto policy = PolicyRegistry::Global().Create(name);
    ASSERT_TRUE(policy.ok());
    std::string canonical = policy.value()->Describe();
    auto original = Fingerprint(name);
    if (canonical != name) {
      EXPECT_EQ(original, Fingerprint(canonical)) << name << " vs "
                                                  << canonical;
    }
    // Determinism backstop: the same spec reruns identically, so the
    // comparison above cannot pass by accident.
    EXPECT_EQ(original, Fingerprint(name));
  }
}

}  // namespace
}  // namespace rtq::core
