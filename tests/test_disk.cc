#include "model/disk.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulator.h"

namespace rtq::model {
namespace {

DiskRequest MakeRequest(QueryId q, SimTime deadline, PageCount start,
                        PageCount pages, std::function<void()> cb,
                        bool write = false) {
  DiskRequest r;
  r.query = q;
  r.deadline = deadline;
  r.start_page = start;
  r.pages = pages;
  r.is_write = write;
  r.on_complete = std::move(cb);
  return r;
}

TEST(Disk, SingleRequestTiming) {
  sim::Simulator sim;
  DiskParams params;
  Disk disk(&sim, params, 0);
  SimTime done_at = -1.0;
  PageCount start = 90 * 10;  // cylinder 10
  disk.Submit(MakeRequest(1, 100.0, start, 6,
                          [&] { done_at = sim.Now(); }));
  sim.RunToCompletion();
  DiskGeometry geom(params);
  EXPECT_NEAR(done_at, geom.AccessTime(0, start, 6), 1e-9);
  EXPECT_EQ(disk.completed_requests(), 1);
  EXPECT_EQ(disk.completed_pages(), 6);
}

TEST(Disk, EarliestDeadlineServedFirst) {
  sim::Simulator sim;
  Disk disk(&sim, DiskParams(), 0);
  std::vector<int> order;
  // Queue three while the first is in service.
  disk.Submit(MakeRequest(1, 50.0, 0, 6, [&] { order.push_back(1); }));
  disk.Submit(MakeRequest(2, 300.0, 900, 6, [&] { order.push_back(2); }));
  disk.Submit(MakeRequest(3, 100.0, 1800, 6, [&] { order.push_back(3); }));
  disk.Submit(MakeRequest(4, 200.0, 2700, 6, [&] { order.push_back(4); }));
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 4, 2}));
}

TEST(Disk, ElevatorBreaksDeadlineTies) {
  sim::Simulator sim;
  Disk disk(&sim, DiskParams(), 0);
  std::vector<int> order;
  // Same deadline: elevator order by cylinder from head position 0,
  // sweeping up.
  disk.Submit(MakeRequest(1, 50.0, 90 * 200, 6, [&] { order.push_back(1); }));
  disk.Submit(MakeRequest(2, 50.0, 90 * 400, 6, [&] { order.push_back(2); }));
  disk.Submit(MakeRequest(3, 50.0, 90 * 100, 6, [&] { order.push_back(3); }));
  disk.Submit(MakeRequest(4, 50.0, 90 * 300, 6, [&] { order.push_back(4); }));
  sim.RunToCompletion();
  // First request starts service immediately (head 0 -> cyl 200); the
  // rest are tie-broken by the sweep: from cyl 200 upward: 300, 400, then
  // reverse to 100.
  EXPECT_EQ(order, (std::vector<int>{1, 4, 2, 3}));
}

TEST(Disk, CancelQueryRemovesQueuedRequests) {
  sim::Simulator sim;
  Disk disk(&sim, DiskParams(), 0);
  int fired = 0;
  disk.Submit(MakeRequest(1, 10.0, 0, 6, [&] { ++fired; }));
  disk.Submit(MakeRequest(2, 20.0, 900, 6, [&] { ++fired; }));
  disk.Submit(MakeRequest(2, 30.0, 1800, 6, [&] { ++fired; }));
  EXPECT_EQ(disk.CancelQuery(2), 2);
  sim.RunToCompletion();
  EXPECT_EQ(fired, 1);
}

TEST(Disk, CancelInServiceDropsCallbackButFinishesAccess) {
  sim::Simulator sim;
  Disk disk(&sim, DiskParams(), 0);
  int fired = 0;
  disk.Submit(MakeRequest(1, 10.0, 0, 6, [&] { ++fired; }));
  EXPECT_EQ(disk.CancelQuery(1), 0);  // in service, not queued
  sim.RunToCompletion();
  EXPECT_EQ(fired, 0);
  EXPECT_EQ(disk.completed_requests(), 1);  // access still completed
}

// Regression test for the documented cancellation model: cancelling an
// in-service request leaves the access occupying the head (only its
// callback is dropped), and a resubmission under the same query id is a
// brand-new request that must complete normally behind it.
TEST(Disk, CancelInServiceThenResubmitCompletesNormally) {
  sim::Simulator sim;
  Disk disk(&sim, DiskParams(), 0);
  int old_fired = 0;
  int new_fired = 0;
  disk.Submit(MakeRequest(1, 10.0, 0, 6, [&] { ++old_fired; }));
  EXPECT_TRUE(disk.busy());  // started service immediately
  EXPECT_EQ(disk.CancelQuery(1), 0);  // in service: nothing queued removed
  // Resubmit while the cancelled access still holds the head.
  disk.Submit(MakeRequest(1, 10.0, 900, 6, [&] { ++new_fired; }));
  sim.RunToCompletion();
  EXPECT_EQ(old_fired, 0);  // suppressed by the cancel
  EXPECT_EQ(new_fired, 1);  // the resubmission is not suppressed
  EXPECT_EQ(disk.completed_requests(), 2);  // both accesses finished
  EXPECT_EQ(disk.queue_length(), 0u);
}

TEST(Disk, UtilizationTracksBusyTime) {
  sim::Simulator sim;
  DiskParams params;
  Disk disk(&sim, params, 0);
  disk.Submit(MakeRequest(1, 10.0, 0, 6, [] {}));
  sim.RunToCompletion();
  SimTime busy = DiskGeometry(params).AccessTime(0, 0, 6);
  EXPECT_NEAR(disk.busy_seconds(sim.Now()), busy, 1e-9);
  sim.RunUntil(sim.Now() + busy);  // idle for an equal period
  EXPECT_NEAR(disk.Utilization(sim.Now()), 0.5, 1e-6);
}

TEST(Disk, SequentialRereadHitsPrefetchCache) {
  sim::Simulator sim;
  Disk disk(&sim, DiskParams(), 0);
  disk.Submit(MakeRequest(1, 10.0, 0, 6, [] {}));
  sim.RunToCompletion();
  SimTime before = sim.Now();
  disk.Submit(MakeRequest(1, 10.0, 2, 3, [] {}));  // subset of cached range
  sim.RunToCompletion();
  EXPECT_EQ(disk.cache_hits(), 1);
  EXPECT_LT(sim.Now() - before, 1e-3);  // served at cache speed
}

TEST(Disk, WriteInvalidatesCache) {
  sim::Simulator sim;
  Disk disk(&sim, DiskParams(), 0);
  disk.Submit(MakeRequest(1, 10.0, 0, 6, [] {}));
  sim.RunToCompletion();
  disk.Submit(MakeRequest(1, 10.0, 100, 6, [] {}, /*write=*/true));
  sim.RunToCompletion();
  disk.Submit(MakeRequest(1, 10.0, 0, 6, [] {}));
  sim.RunToCompletion();
  EXPECT_EQ(disk.cache_hits(), 0);
}

TEST(Disk, HeadMovesToEndOfAccess) {
  sim::Simulator sim;
  Disk disk(&sim, DiskParams(), 0);
  disk.Submit(MakeRequest(1, 10.0, 90 * 7, 6, [] {}));
  sim.RunToCompletion();
  EXPECT_EQ(disk.head(), 7);
}

TEST(Disk, RejectsRequestsBeyondCapacity) {
  sim::Simulator sim;
  DiskParams params;
  Disk disk(&sim, params, 0);
  EXPECT_DEATH(
      disk.Submit(MakeRequest(1, 1.0, params.capacity() - 2, 6, [] {})),
      "capacity");
}

TEST(Disk, BackgroundDeadlineSortsLast) {
  sim::Simulator sim;
  Disk disk(&sim, DiskParams(), 0);
  std::vector<int> order;
  disk.Submit(MakeRequest(1, 10.0, 0, 6, [&] { order.push_back(1); }));
  // Background write (infinite deadline) queued before an urgent read.
  disk.Submit(MakeRequest(2, kNoDeadline, 900, 6,
                          [&] { order.push_back(2); }, true));
  disk.Submit(MakeRequest(3, 99.0, 1800, 6, [&] { order.push_back(3); }));
  sim.RunToCompletion();
  EXPECT_EQ(order, (std::vector<int>{1, 3, 2}));
}

}  // namespace
}  // namespace rtq::model
