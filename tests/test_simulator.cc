#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace rtq::sim {
namespace {

TEST(Simulator, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_DOUBLE_EQ(sim.Now(), 0.0);
}

TEST(Simulator, RunUntilAdvancesClockToHorizon) {
  Simulator sim;
  sim.RunUntil(10.0);
  EXPECT_DOUBLE_EQ(sim.Now(), 10.0);
}

TEST(Simulator, EventsAdvanceClock) {
  Simulator sim;
  SimTime seen = -1.0;
  sim.ScheduleAfter(3.5, [&] { seen = sim.Now(); });
  sim.RunUntil(10.0);
  EXPECT_DOUBLE_EQ(seen, 3.5);
  EXPECT_DOUBLE_EQ(sim.Now(), 10.0);
}

TEST(Simulator, EventsBeyondHorizonDoNotFire) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAfter(20.0, [&] { fired = true; });
  sim.RunUntil(10.0);
  EXPECT_FALSE(fired);
  // A later run picks it up.
  sim.RunUntil(30.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventAtExactHorizonFires) {
  Simulator sim;
  bool fired = false;
  sim.ScheduleAt(10.0, [&] { fired = true; });
  sim.RunUntil(10.0);
  EXPECT_TRUE(fired);
}

TEST(Simulator, EventsScheduleMoreEvents) {
  Simulator sim;
  std::vector<double> times;
  std::function<void()> chain = [&] {
    times.push_back(sim.Now());
    if (times.size() < 5) sim.ScheduleAfter(1.0, chain);
  };
  sim.ScheduleAfter(1.0, chain);
  sim.RunToCompletion();
  ASSERT_EQ(times.size(), 5u);
  EXPECT_DOUBLE_EQ(times.back(), 5.0);
}

TEST(Simulator, CancelledEventDoesNotFire) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.ScheduleAfter(1.0, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.RunToCompletion();
  EXPECT_FALSE(fired);
}

TEST(Simulator, StepDispatchesOneEvent) {
  Simulator sim;
  int count = 0;
  sim.ScheduleAfter(1.0, [&] { ++count; });
  sim.ScheduleAfter(2.0, [&] { ++count; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(count, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(Simulator, RequestStopEndsRunEarly) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAfter(1.0, [&] {
    ++fired;
    sim.RequestStop();
  });
  sim.ScheduleAfter(2.0, [&] { ++fired; });
  sim.RunUntil(10.0);
  EXPECT_EQ(fired, 1);
}

TEST(Simulator, DispatchCountAccumulates) {
  Simulator sim;
  for (int i = 0; i < 7; ++i) sim.ScheduleAfter(i, [] {});
  sim.RunToCompletion();
  EXPECT_EQ(sim.events_dispatched(), 7u);
}

TEST(Simulator, RepeatedBoundedRunsCompose) {
  Simulator sim;
  std::vector<double> times;
  for (int i = 1; i <= 9; ++i) {
    sim.ScheduleAt(static_cast<double>(i), [&times, &sim] {
      times.push_back(sim.Now());
    });
  }
  sim.RunUntil(3.0);
  EXPECT_EQ(times.size(), 3u);
  sim.RunUntil(6.0);
  EXPECT_EQ(times.size(), 6u);
  sim.RunUntil(100.0);
  EXPECT_EQ(times.size(), 9u);
}

TEST(Simulator, PendingEventsReported) {
  Simulator sim;
  sim.ScheduleAfter(1.0, [] {});
  sim.ScheduleAfter(2.0, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.RunToCompletion();
  EXPECT_EQ(sim.pending_events(), 0u);
}

}  // namespace
}  // namespace rtq::sim
