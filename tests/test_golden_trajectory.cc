// Determinism tripwire for the hot-path rewrites (indexed event
// calendar, elevator index, incremental reallocation): short runs of the
// full system must reproduce these exact constants, recorded from the
// pre-rewrite simulator. Any change here means simulation *behaviour*
// changed — which the optimization PRs promise never to do. If a future
// PR intends a behavioural change, re-record the constants and say so in
// the commit message.

#include <gtest/gtest.h>

#include "engine/rtdbs.h"
#include "harness/paper_experiments.h"

namespace rtq::engine {
namespace {

struct Golden {
  const char* policy;
  double rate;
  SimTime horizon;
  int64_t completions;
  int64_t misses;
  uint64_t events;
};

// Recorded at seed 42 on the baseline configuration (Section 5.1).
constexpr Golden kGolden[] = {
    {"pmm", 0.06, 1800.0, 91, 5, 522220},
    {"minmax", 0.07, 1800.0, 104, 10, 733801},
    {"max", 0.05, 1800.0, 72, 1, 266748},
};

TEST(GoldenTrajectory, ShortRunsMatchPreRewriteConstants) {
  for (const Golden& g : kGolden) {
    SCOPED_TRACE(g.policy);
    auto sys = Rtdbs::Create(harness::BaselineConfig(g.rate, {g.policy}, 42));
    ASSERT_TRUE(sys.ok());
    sys.value()->RunUntil(g.horizon);
    SystemSummary s = sys.value()->Summarize();
    EXPECT_EQ(s.overall.completions, g.completions);
    EXPECT_EQ(s.overall.misses, g.misses);
    EXPECT_EQ(s.events_dispatched, g.events);
    EXPECT_DOUBLE_EQ(
        s.overall.miss_ratio,
        static_cast<double>(g.misses) / static_cast<double>(g.completions));
  }
}

}  // namespace
}  // namespace rtq::engine
