// Determinism tripwire for the hot-path rewrites (indexed event
// calendar, elevator index, incremental reallocation): short runs of the
// full system must reproduce these exact constants, recorded from the
// pre-rewrite simulator. Any change here means simulation *behaviour*
// changed — which the optimization PRs promise never to do. If a future
// PR intends a behavioural change, re-record the constants and say so in
// the commit message.
//
// Two grids are pinned: the Section 5.1 baseline (single class, the
// original PR-4 constants) and the Section 5.6 multiclass workload
// (two classes — the dimension the per-class policies arbitrate). Every
// policy family has at least one row, so a perf round that breaks only
// one policy's decision path still trips a constant.

#include <gtest/gtest.h>

#include "engine/rtdbs.h"
#include "engine/sharded_rtdbs.h"
#include "harness/paper_experiments.h"

namespace rtq::engine {
namespace {

struct Golden {
  const char* policy;
  /// false: BaselineConfig(rate); true: MulticlassConfig(rate) where
  /// `rate` is the Small-class arrival rate (Medium fixed at 0.065).
  bool multiclass;
  double rate;
  SimTime horizon;
  int64_t completions;
  int64_t misses;
  uint64_t events;
};

// Recorded at seed 42. Baseline rows date from the PR-4 rewrite;
// multiclass and plugin-policy rows were recorded when the adaptive
// admission suite landed. The edf-shed and oracle-ed rows were
// re-recorded when feasibility became progress-credited
// (core::RemainingEstimate) — an intended behaviour change that roughly
// halved their shed-induced misses; the predictive-policy rows date
// from the same change.
constexpr Golden kGolden[] = {
    {"pmm", false, 0.06, 1800.0, 91, 5, 522220},
    {"minmax", false, 0.07, 1800.0, 104, 10, 733801},
    {"max", false, 0.05, 1800.0, 72, 1, 266748},
    {"edf-shed", false, 0.06, 1800.0, 91, 2, 554367},
    {"oracle-ed", false, 0.06, 1800.0, 89, 7, 302695},
    {"pmm-predict", false, 0.06, 1800.0, 91, 5, 522220},
    {"pmm-tick:ms=60000", false, 0.07, 1800.0, 104, 19, 658054},
    {"pmm", true, 0.8, 1800.0, 1431, 49, 1023319},
    {"max", true, 0.8, 1800.0, 1429, 55, 687061},
    {"pmm-class:targets=6,10", true, 0.8, 1800.0, 1429, 66, 1072430},
    {"pmm-tick:ms=60000", true, 0.8, 1800.0, 1431, 52, 1022989},
    {"edf-shed", true, 0.8, 1800.0, 1431, 49, 1240731},
    {"pmm-predict", true, 0.8, 1800.0, 1431, 49, 1023319},
    {"select:candidates=pmm+edf-shed,window=4", true, 0.8, 1800.0, 1431,
     61, 1003431},
};

// Scenario-engine rows: one per generator shape, under PMM and under
// the no-management baseline. The specs compress each shape's time
// parameters so its distinctive feature (rate peak, flash crowd, burst,
// alternation) fires inside the 1800 s horizon.
struct ScenarioGolden {
  const char* scenario;
  const char* policy;
  int64_t completions;
  int64_t misses;
  uint64_t events;
};

// Recorded at seed 42 when the scenario engine landed.
constexpr ScenarioGolden kScenarioGolden[] = {
    {"diurnal:period=1200", "pmm", 958, 107, 666854},
    {"diurnal:period=1200", "none", 958, 752, 406578},
    {"flash:at=600,dur=300,decay=150", "pmm", 2530, 1268, 820509},
    {"flash:at=600,dur=300,decay=150", "none", 2531, 2123, 467741},
    {"pareto", "pmm", 109, 0, 210262},
    {"pareto", "none", 109, 0, 208200},
    {"burst:tlo=300,thi=150", "pmm", 2150, 652, 784734},
    {"burst:tlo=300,thi=150", "none", 2151, 1639, 502166},
    {"mixshift:interval=600", "pmm", 1640, 586, 620493},
    {"mixshift:interval=600", "none", 1641, 793, 613926},
};

TEST(GoldenTrajectory, ScenarioRunsMatchRecordedConstants) {
  for (const ScenarioGolden& g : kScenarioGolden) {
    SCOPED_TRACE(std::string(g.scenario) + " | " + g.policy);
    SystemConfig config = harness::ScenarioConfig(g.scenario, {g.policy}, 42);
    auto sys = Rtdbs::Create(config);
    ASSERT_TRUE(sys.ok());
    sys.value()->RunUntil(1800.0);
    SystemSummary s = sys.value()->Summarize();
    EXPECT_EQ(s.overall.completions, g.completions);
    EXPECT_EQ(s.overall.misses, g.misses);
    EXPECT_EQ(s.events_dispatched, g.events);
  }
}

// Sharded-cluster rows (PR 10). shards=1/hash must reproduce the plain
// "pmm" baseline row above exactly — that pin is the bit-identity
// guarantee of filtered replication. The multi-shard rows pin the merged
// event loop, the placement functions, and the global-MPL coordinator.
struct ShardedGolden {
  const char* policy;
  int32_t shards;
  const char* placement;
  const char* admission;
  int64_t completions;
  int64_t misses;
  uint64_t events;
};

// Recorded at seed 42 when sharding landed (BaselineConfig(0.06),
// horizon 1800 s). Note the events of the 1-shard row equal the plain
// pmm baseline row's.
constexpr ShardedGolden kShardedGolden[] = {
    {"pmm", 1, "hash", "local", 91, 5, 522220},
    {"pmm", 2, "hash", "local", 94, 0, 345793},
    {"pmm", 4, "skew:hot=0.6", "local", 90, 0, 334250},
    {"max", 2, "range", "global:mpl=4", 93, 0, 340245},
};

TEST(GoldenTrajectory, ShardedRunsMatchRecordedConstants) {
  for (const ShardedGolden& g : kShardedGolden) {
    SCOPED_TRACE(std::string(g.policy) + " | shards=" +
                 std::to_string(g.shards) + " | " + g.placement + " | " +
                 g.admission);
    SystemConfig config = harness::BaselineConfig(0.06, {g.policy}, 42);
    ShardConfig shards;
    shards.num_shards = g.shards;
    shards.placement = g.placement;
    shards.admission = g.admission;
    auto sys = ShardedRtdbs::Create(config, shards);
    ASSERT_TRUE(sys.ok()) << sys.status().ToString();
    sys.value()->RunUntil(1800.0);
    SystemSummary s = sys.value()->Summarize();
    EXPECT_EQ(s.overall.completions, g.completions);
    EXPECT_EQ(s.overall.misses, g.misses);
    EXPECT_EQ(s.events_dispatched, g.events);
  }
}

TEST(GoldenTrajectory, ShortRunsMatchPreRewriteConstants) {
  for (const Golden& g : kGolden) {
    SCOPED_TRACE(std::string(g.policy) +
                 (g.multiclass ? " (multiclass)" : " (baseline)"));
    SystemConfig config =
        g.multiclass ? harness::MulticlassConfig(g.rate, {g.policy}, 42)
                     : harness::BaselineConfig(g.rate, {g.policy}, 42);
    auto sys = Rtdbs::Create(config);
    ASSERT_TRUE(sys.ok());
    sys.value()->RunUntil(g.horizon);
    SystemSummary s = sys.value()->Summarize();
    EXPECT_EQ(s.overall.completions, g.completions);
    EXPECT_EQ(s.overall.misses, g.misses);
    EXPECT_EQ(s.events_dispatched, g.events);
    EXPECT_DOUBLE_EQ(
        s.overall.miss_ratio,
        static_cast<double>(g.misses) / static_cast<double>(g.completions));
  }
}

}  // namespace
}  // namespace rtq::engine
