#include "core/pmm.h"

#include <gtest/gtest.h>

#include <deque>

#include "core/memory_manager.h"

namespace rtq::core {
namespace {

/// Scriptable probe: hands out pre-loaded readings.
class FakeProbe : public SystemProbe {
 public:
  Readings TakeReadings() override {
    Readings r = next_;
    r.now = now_;
    now_ += 100.0;
    return r;
  }
  void Set(double mpl, double cpu, double disk) {
    next_.realized_mpl = mpl;
    next_.cpu_utilization = cpu;
    next_.avg_disk_utilization = disk;
    next_.max_disk_utilization = disk;
  }

 private:
  Readings next_{};
  SimTime now_ = 0.0;
};

struct Fixture {
  explicit Fixture(PmmParams params = PmmParams())
      : mm(2560, std::make_unique<MaxStrategy>(), [](QueryId, PageCount) {}),
        controller(params, &mm, &probe) {}

  /// Feeds one batch of completions with the given shape.
  void FeedBatch(int64_t n, int64_t misses, double wait, double exec,
                 double tc, PageCount max_mem = 1300, int64_t ios = 1200) {
    for (int64_t i = 0; i < n; ++i) {
      CompletionInfo info;
      info.id = next_id++;
      info.query_class = 0;
      info.missed = i < misses;
      // Small jitter so large-sample tests have nonzero variance.
      double jitter = 0.01 * static_cast<double>(i % 7);
      info.admission_wait = wait + (wait > 0.0 ? jitter : 0.0);
      info.execution_time = exec + jitter;
      info.time_constraint = tc + jitter;
      info.max_memory = max_mem + (i % 5);
      info.operand_io_requests = ios + (i % 11);
      controller.OnQueryFinished(info);
    }
  }

  FakeProbe probe;
  MemoryManager mm;
  PmmController controller;
  QueryId next_id = 0;
};

TEST(PmmParams, Validation) {
  PmmParams p;
  EXPECT_TRUE(p.Validate().ok());
  p.sample_size = 1;
  EXPECT_FALSE(p.Validate().ok());
  p = PmmParams();
  p.util_low = 0.9;  // > util_high
  EXPECT_FALSE(p.Validate().ok());
  p = PmmParams();
  p.adapt_conf_level = 1.5;
  EXPECT_FALSE(p.Validate().ok());
  p = PmmParams();
  p.max_mpl = 0;
  EXPECT_FALSE(p.Validate().ok());
}

TEST(Pmm, StartsInMaxMode) {
  Fixture f;
  EXPECT_EQ(f.controller.mode(), PmmController::Mode::kMax);
  EXPECT_EQ(f.mm.strategy().name(), "Max");
}

TEST(Pmm, AdaptsOnlyAtBatchBoundaries) {
  Fixture f;
  f.probe.Set(1.5, 0.1, 0.1);
  f.FeedBatch(29, 5, 10.0, 40.0, 100.0);
  EXPECT_EQ(f.controller.adaptations(), 0);
  f.FeedBatch(1, 0, 10.0, 40.0, 100.0);
  EXPECT_EQ(f.controller.adaptations(), 1);
}

TEST(Pmm, SwitchesToMinMaxWhenAllConditionsHold) {
  Fixture f;
  // Misses, low utilizations, positive waits, feasible slack.
  f.probe.Set(1.5, 0.10, 0.15);
  f.FeedBatch(30, 5, /*wait=*/20.0, /*exec=*/40.0, /*tc=*/150.0);
  EXPECT_EQ(f.controller.mode(), PmmController::Mode::kMinMax);
  EXPECT_GE(f.controller.target_mpl(), 1);
  // The RU heuristic: (0.775 / 0.15) * 1.5 ~ 7-8.
  EXPECT_NEAR(static_cast<double>(f.controller.target_mpl()), 7.75, 1.5);
}

TEST(Pmm, NoSwitchWithoutMisses) {
  Fixture f;
  f.probe.Set(1.5, 0.10, 0.15);
  f.FeedBatch(30, 0, 20.0, 40.0, 150.0);
  EXPECT_EQ(f.controller.mode(), PmmController::Mode::kMax);
}

TEST(Pmm, NoSwitchWhenResourcesAreBusy) {
  Fixture f;
  f.probe.Set(1.5, 0.10, 0.80);  // disks above UtilLow
  f.FeedBatch(30, 5, 20.0, 40.0, 150.0);
  EXPECT_EQ(f.controller.mode(), PmmController::Mode::kMax);
}

TEST(Pmm, NoSwitchWithoutAdmissionWaits) {
  Fixture f;
  f.probe.Set(1.5, 0.10, 0.15);
  f.FeedBatch(30, 5, /*wait=*/0.0, 40.0, 150.0);
  EXPECT_EQ(f.controller.mode(), PmmController::Mode::kMax);
}

TEST(Pmm, NoSwitchWhenExecutionsExceedConstraints) {
  Fixture f;
  f.probe.Set(1.5, 0.10, 0.15);
  f.FeedBatch(30, 5, 20.0, /*exec=*/200.0, /*tc=*/150.0);
  EXPECT_EQ(f.controller.mode(), PmmController::Mode::kMax);
}

TEST(Pmm, ProjectionSteersTowardBowlMinimum) {
  PmmParams params;
  params.fit_realized_mpl = false;
  Fixture f(params);
  // Get into MinMax mode.
  f.probe.Set(2.0, 0.10, 0.10);
  f.FeedBatch(30, 5, 20.0, 40.0, 150.0);
  ASSERT_EQ(f.controller.mode(), PmmController::Mode::kMinMax);
  // Now feed batches whose miss ratios trace a bowl in the target MPL:
  // miss = 0.01 * (target - 12)^2 + 0.1. After enough samples the
  // projection should settle near 12.
  for (int i = 0; i < 40; ++i) {
    double t = static_cast<double>(f.controller.target_mpl());
    double miss = 0.01 * (t - 12.0) * (t - 12.0) + 0.1;
    int64_t misses = static_cast<int64_t>(miss * 30.0 + 0.5);
    f.probe.Set(t, 0.10, std::clamp(0.05 * t, 0.05, 0.9));
    f.FeedBatch(30, misses, 5.0, 40.0, 150.0);
  }
  EXPECT_NEAR(static_cast<double>(f.controller.target_mpl()), 12.0, 3.0);
  EXPECT_EQ(f.controller.mode(), PmmController::Mode::kMinMax);
}

TEST(Pmm, RevertsToMaxWhenTargetSinksToMaxModeMpl) {
  Fixture f;
  // Max mode realized MPL ~ 6.
  f.probe.Set(6.0, 0.10, 0.12);
  f.FeedBatch(30, 5, 20.0, 40.0, 150.0);
  ASSERT_EQ(f.controller.mode(), PmmController::Mode::kMinMax);
  // Feed steeply increasing miss-vs-MPL data so projection pushes the
  // target DOWN to (or below) the Max-mode MPL.
  // The descent is gradual (projection steps one MPL per batch when the
  // curve reads as increasing); allow plenty of batches.
  for (int i = 0; i < 150 && f.controller.mode() ==
                                 PmmController::Mode::kMinMax;
       ++i) {
    double t = static_cast<double>(f.controller.target_mpl());
    int64_t misses = std::clamp<int64_t>(static_cast<int64_t>(t), 1, 30);
    // Saturated disks: the RU heuristic's (0.775 / util) factor stays
    // below 1, pulling the target down each batch.
    f.probe.Set(t, 0.30, 0.95);
    f.FeedBatch(30, misses, 0.5, 40.0, 150.0);
  }
  EXPECT_EQ(f.controller.mode(), PmmController::Mode::kMax);
  EXPECT_EQ(f.mm.strategy().name(), "Max");
}

TEST(Pmm, WorkloadChangeTriggersRestart) {
  Fixture f;
  f.probe.Set(1.5, 0.10, 0.15);
  // Two stable batches establish the baseline characteristics.
  f.FeedBatch(30, 5, 20.0, 40.0, 150.0, /*max_mem=*/1300, /*ios=*/1200);
  f.FeedBatch(30, 5, 20.0, 40.0, 150.0, 1300, 1200);
  ASSERT_EQ(f.controller.mode(), PmmController::Mode::kMinMax);
  EXPECT_EQ(f.controller.workload_changes_detected(), 0);
  // Radically different class: small queries.
  f.FeedBatch(30, 5, 20.0, 5.0, 20.0, /*max_mem=*/110, /*ios=*/100);
  EXPECT_EQ(f.controller.workload_changes_detected(), 1);
  EXPECT_EQ(f.controller.mode(), PmmController::Mode::kMax);
}

TEST(Pmm, StableWorkloadDoesNotFalseAlarm) {
  Fixture f;
  f.probe.Set(1.5, 0.10, 0.15);
  for (int i = 0; i < 30; ++i) {
    f.FeedBatch(30, 2, 5.0, 40.0, 150.0);
  }
  EXPECT_EQ(f.controller.workload_changes_detected(), 0);
}

TEST(Pmm, TraceRecordsEveryAdaptation) {
  Fixture f;
  f.probe.Set(1.5, 0.1, 0.15);
  f.FeedBatch(90, 5, 20.0, 40.0, 150.0);
  ASSERT_EQ(f.controller.trace().size(), 3u);
  const auto& t0 = f.controller.trace()[0];
  EXPECT_NEAR(t0.batch_miss_ratio, 5.0 / 30.0, 1e-9);
  EXPECT_DOUBLE_EQ(t0.realized_mpl, 1.5);
  // Trace times come from the probe and increase.
  EXPECT_LT(f.controller.trace()[0].time, f.controller.trace()[2].time);
}

TEST(Pmm, DisabledHeuristicStillSwitches) {
  PmmParams params;
  params.disable_ru_heuristic = true;
  Fixture f(params);
  f.probe.Set(1.5, 0.10, 0.15);
  f.FeedBatch(30, 5, 20.0, 40.0, 150.0);
  EXPECT_EQ(f.controller.mode(), PmmController::Mode::kMinMax);
  EXPECT_GE(f.controller.target_mpl(), 2);
}

TEST(Pmm, TargetClampedToMaxMpl) {
  PmmParams params;
  params.max_mpl = 5;
  Fixture f(params);
  f.probe.Set(4.0, 0.02, 0.02);  // near-idle: RU would ask for ~150
  f.FeedBatch(30, 5, 20.0, 40.0, 150.0);
  ASSERT_EQ(f.controller.mode(), PmmController::Mode::kMinMax);
  EXPECT_LE(f.controller.target_mpl(), 5);
}

}  // namespace
}  // namespace rtq::core
