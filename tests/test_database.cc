#include "storage/database.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace rtq::storage {
namespace {

DatabaseSpec BaselineSpec(int32_t disks = 4) {
  DatabaseSpec spec;
  spec.num_disks = disks;
  RelationGroupSpec inner;
  inner.rel_per_disk = 3;
  inner.min_pages = 600;
  inner.max_pages = 1800;
  RelationGroupSpec outer;
  outer.rel_per_disk = 3;
  outer.min_pages = 3000;
  outer.max_pages = 9000;
  spec.groups = {inner, outer};
  return spec;
}

TEST(Database, SizesAtEqualIntervals) {
  Rng rng(1);
  auto db = Database::Create(BaselineSpec(1), model::DiskParams(), &rng);
  ASSERT_TRUE(db.ok());
  std::multiset<PageCount> group0, group1;
  for (RelationId id : db.value().RelationsInGroup(0)) {
    group0.insert(db.value().relation(id).pages);
  }
  for (RelationId id : db.value().RelationsInGroup(1)) {
    group1.insert(db.value().relation(id).pages);
  }
  EXPECT_EQ(group0, (std::multiset<PageCount>{600, 1200, 1800}));
  EXPECT_EQ(group1, (std::multiset<PageCount>{3000, 6000, 9000}));
}

TEST(Database, PaperExampleFiveRelations) {
  // "if RelPerDisk = 5 and SizeRange = [100, 200] pages, group i will
  //  have 5 relations with sizes equal to 100, 125, 150, 175, 200".
  DatabaseSpec spec;
  spec.num_disks = 1;
  RelationGroupSpec g;
  g.rel_per_disk = 5;
  g.min_pages = 100;
  g.max_pages = 200;
  spec.groups = {g};
  Rng rng(2);
  auto db = Database::Create(spec, model::DiskParams(), &rng);
  ASSERT_TRUE(db.ok());
  std::multiset<PageCount> sizes;
  for (const Relation& r : db.value().relations()) sizes.insert(r.pages);
  EXPECT_EQ(sizes, (std::multiset<PageCount>{100, 125, 150, 175, 200}));
}

TEST(Database, EveryDiskGetsItsShare) {
  Rng rng(3);
  auto db = Database::Create(BaselineSpec(4), model::DiskParams(), &rng);
  ASSERT_TRUE(db.ok());
  std::vector<int> per_disk(4, 0);
  for (const Relation& r : db.value().relations()) {
    ASSERT_GE(r.disk, 0);
    ASSERT_LT(r.disk, 4);
    ++per_disk[r.disk];
  }
  for (int count : per_disk) EXPECT_EQ(count, 6);  // 2 groups x 3
}

TEST(Database, RelationsAreContiguousAndNonOverlapping) {
  Rng rng(4);
  auto db = Database::Create(BaselineSpec(2), model::DiskParams(), &rng);
  ASSERT_TRUE(db.ok());
  for (DiskId d = 0; d < 2; ++d) {
    std::vector<std::pair<PageCount, PageCount>> extents;
    for (const Relation& r : db.value().relations()) {
      if (r.disk == d) extents.emplace_back(r.start_page, r.pages);
    }
    std::sort(extents.begin(), extents.end());
    for (size_t i = 1; i < extents.size(); ++i) {
      EXPECT_GE(extents[i].first,
                extents[i - 1].first + extents[i - 1].second);
    }
  }
}

TEST(Database, MiddleCylinderPlacement) {
  Rng rng(5);
  model::DiskParams disk;
  auto db = Database::Create(BaselineSpec(2), disk, &rng);
  ASSERT_TRUE(db.ok());
  for (DiskId d = 0; d < 2; ++d) {
    PageCount begin = db.value().relation_area_begin(d);
    PageCount end = db.value().relation_area_end(d);
    PageCount mid = disk.capacity() / 2;
    EXPECT_LT(begin, mid);
    EXPECT_GT(end, mid);
    // Centred within ~one relation's size.
    EXPECT_NEAR(static_cast<double>(mid - begin),
                static_cast<double>(end - mid), 9000.0);
  }
}

TEST(Database, PlacementOrderIsRandomized) {
  model::DiskParams disk;
  Rng rng1(6), rng2(7);
  auto db1 = Database::Create(BaselineSpec(1), disk, &rng1);
  auto db2 = Database::Create(BaselineSpec(1), disk, &rng2);
  ASSERT_TRUE(db1.ok() && db2.ok());
  bool any_difference = false;
  for (size_t i = 0; i < db1.value().relations().size(); ++i) {
    if (db1.value().relations()[i].pages !=
        db2.value().relations()[i].pages) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Database, RejectsOversizedDatabase) {
  DatabaseSpec spec;
  spec.num_disks = 1;
  RelationGroupSpec g;
  g.rel_per_disk = 100;
  g.min_pages = 2000;
  g.max_pages = 2000;
  spec.groups = {g};  // 200k pages > 135k capacity
  Rng rng(8);
  auto db = Database::Create(spec, model::DiskParams(), &rng);
  EXPECT_FALSE(db.ok());
  EXPECT_EQ(db.status().code(), StatusCode::kOutOfRange);
}

TEST(Database, RejectsBadSpecs) {
  Rng rng(9);
  DatabaseSpec empty;
  empty.num_disks = 1;
  EXPECT_FALSE(Database::Create(empty, model::DiskParams(), &rng).ok());

  DatabaseSpec bad_range = BaselineSpec(1);
  bad_range.groups[0].max_pages = 10;  // < min_pages
  EXPECT_FALSE(Database::Create(bad_range, model::DiskParams(), &rng).ok());

  DatabaseSpec no_disks = BaselineSpec(0);
  EXPECT_FALSE(Database::Create(no_disks, model::DiskParams(), &rng).ok());
}

TEST(Database, SingleRelationGroupUsesMidpoint) {
  DatabaseSpec spec;
  spec.num_disks = 1;
  RelationGroupSpec g;
  g.rel_per_disk = 1;
  g.min_pages = 100;
  g.max_pages = 200;
  spec.groups = {g};
  Rng rng(10);
  auto db = Database::Create(spec, model::DiskParams(), &rng);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db.value().relations()[0].pages, 150);
}

}  // namespace
}  // namespace rtq::storage
