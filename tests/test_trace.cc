// The `.rtqt` trace format contract (workload/trace.h):
//
//  1. Parse(Serialize(t)) == t is a fixed point — including NaN
//     stand-alone fields, extreme doubles, and empty traces — because
//     FormatDouble emits the shortest exact decimal rendering.
//  2. Malformed input returns a Status error naming the offending line;
//     it never crashes. Pinned for every grammar rule, then fuzzed: a
//     seeded corruption fuzzer mutates/truncates valid serializations
//     and feeds them back through ParseTrace.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>

#include "common/rng.h"
#include "workload/trace.h"

namespace rtq::workload {
namespace {

TraceRecord Join(SimTime time, int32_t cls, int64_t r, int64_t s,
                 double slack, double standalone) {
  TraceRecord rec;
  rec.time = time;
  rec.query_class = cls;
  rec.type = exec::QueryType::kHashJoin;
  rec.r = r;
  rec.s = s;
  rec.slack = slack;
  rec.standalone = standalone;
  return rec;
}

Trace SmallTrace() {
  Trace t;
  t.num_classes = 2;
  t.scenario = "diurnal:rate=0.07,amp=0.6,period=7200,small=0.5";
  t.seed = 42;
  t.records.push_back(Join(0.125, 0, 3, 17, 2.5, 31.25));
  TraceRecord sort;
  sort.time = 10.75;
  sort.query_class = 1;
  sort.type = exec::QueryType::kExternalSort;
  sort.r = 5;
  sort.s = -1;
  sort.slack = 7.5;
  sort.standalone = std::numeric_limits<double>::quiet_NaN();
  t.records.push_back(sort);
  return t;
}

TEST(Trace, SerializeParseIsAFixedPoint) {
  Trace t = SmallTrace();
  std::string text = SerializeTrace(t);
  auto parsed = ParseTrace(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), t);
  // And the serialized form itself is a fixed point.
  EXPECT_EQ(SerializeTrace(parsed.value()), text);
}

TEST(Trace, EmptyTraceRoundTrips) {
  Trace t;
  t.num_classes = 1;
  auto parsed = ParseTrace(SerializeTrace(t));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), t);
  EXPECT_TRUE(parsed.value().records.empty());
}

TEST(Trace, AwkwardDoublesRoundTripExactly) {
  // Values whose decimal renderings are classic round-trip hazards.
  const double awkward[] = {0.1,
                            1.0 / 3.0,
                            1e-300,
                            1.7976931348623157e308,
                            5e-324,
                            123456789.123456789,
                            std::nextafter(1.0, 2.0)};
  for (double v : awkward) {
    EXPECT_EQ(std::strtod(FormatDouble(v).c_str(), nullptr), v)
        << FormatDouble(v);
  }
  Trace t;
  t.num_classes = 1;
  SimTime time = 0.0;
  for (double v : awkward) {
    time += std::fabs(v) < 1e6 ? std::fabs(v) : 1.0;
    t.records.push_back(Join(time, 0, 0, 1, 1.0 / 3.0, 0.1 + time));
  }
  auto parsed = ParseTrace(SerializeTrace(t));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value(), t);
}

TEST(Trace, CommentsAndBlankLinesAreIgnored) {
  auto parsed = ParseTrace(
      "# hand-written trace\n"
      "rtqt 1\n"
      "\n"
      "classes 2\n"
      "scenario -\n"
      "seed 7\n"
      "records 1\n"
      "# the single arrival\n"
      "q 1.5 0 join 0 1 2.5 -\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed.value().num_classes, 2);
  EXPECT_EQ(parsed.value().seed, 7u);
  EXPECT_TRUE(parsed.value().scenario.empty());
  ASSERT_EQ(parsed.value().records.size(), 1u);
  EXPECT_TRUE(std::isnan(parsed.value().records[0].standalone));
}

TEST(Trace, MalformedInputsReturnStatusErrors) {
  const char* header =
      "rtqt 1\nclasses 2\nscenario -\nseed 42\nrecords 1\n";
  const struct {
    const char* name;
    std::string text;
  } cases[] = {
      {"empty", ""},
      {"missing version", "classes 2\n"},
      {"bad version", "rtqt 2\n"},
      {"non-numeric version", "rtqt one\n"},
      {"record before header", "rtqt 1\nq 0 0 join 0 1 2.5 -\n"},
      {"duplicate classes", "rtqt 1\nclasses 2\nclasses 2\n"},
      {"negative seed", "rtqt 1\nclasses 2\nscenario -\nseed -3\n"},
      {"unknown directive", std::string(header) + "frobnicate 3\n"},
      {"truncated record", std::string(header) + "q 0 0 join 0 1\n"},
      {"extra tokens", std::string(header) + "q 0 0 join 0 1 2.5 - extra\n"},
      {"negative time", std::string(header) + "q -1 0 join 0 1 2.5 -\n"},
      {"inf time", std::string(header) + "q inf 0 join 0 1 2.5 -\n"},
      {"class out of range", std::string(header) + "q 0 2 join 0 1 2.5 -\n"},
      {"unknown type", std::string(header) + "q 0 0 scan 0 1 2.5 -\n"},
      {"negative relation", std::string(header) + "q 0 0 join -1 1 2.5 -\n"},
      {"join missing outer", std::string(header) + "q 0 0 join 0 - 2.5 -\n"},
      {"sort with outer", std::string(header) + "q 0 0 sort 0 1 2.5 -\n"},
      {"zero slack", std::string(header) + "q 0 0 join 0 1 0 -\n"},
      {"bad standalone", std::string(header) + "q 0 0 join 0 1 2.5 zero\n"},
      {"record count mismatch", std::string(header)},
      {"out of order",
       "rtqt 1\nclasses 2\nscenario -\nseed 42\nrecords 2\n"
       "q 5 0 join 0 1 2.5 -\nq 4 0 join 0 1 2.5 -\n"},
  };
  for (const auto& c : cases) {
    auto parsed = ParseTrace(c.text);
    EXPECT_FALSE(parsed.ok()) << c.name;
  }
}

/// Deterministic random trace: sorted times, mixed joins/sorts, NaN or
/// finite stand-alone fields.
Trace RandomTrace(Rng* rng) {
  Trace t;
  t.num_classes = 1 + static_cast<int32_t>(rng->UniformInt(0, 3));
  if (rng->NextDouble() < 0.5) t.scenario = "fuzz:seed=1";
  t.seed = static_cast<uint64_t>(rng->UniformInt(0, 1 << 30));
  int n = static_cast<int>(rng->UniformInt(0, 20));
  SimTime time = 0.0;
  for (int i = 0; i < n; ++i) {
    time += rng->Exponential(1.0);
    bool join = rng->NextDouble() < 0.7;
    TraceRecord rec;
    rec.time = time;
    rec.query_class = static_cast<int32_t>(
        rng->UniformInt(0, t.num_classes - 1));
    rec.type = join ? exec::QueryType::kHashJoin
                    : exec::QueryType::kExternalSort;
    rec.r = rng->UniformInt(0, 99);
    rec.s = join ? rng->UniformInt(0, 99) : -1;
    rec.slack = rng->Uniform(0.1, 10.0);
    rec.standalone = rng->NextDouble() < 0.3
                         ? std::numeric_limits<double>::quiet_NaN()
                         : rng->Uniform(0.001, 1e4);
    t.records.push_back(rec);
  }
  return t;
}

TEST(TraceFuzz, RandomTracesRoundTripExactly) {
  Rng rng(20260807);
  for (int iter = 0; iter < 200; ++iter) {
    Trace t = RandomTrace(&rng);
    std::string text = SerializeTrace(t);
    auto parsed = ParseTrace(text);
    ASSERT_TRUE(parsed.ok()) << iter << ": " << parsed.status().ToString();
    ASSERT_EQ(parsed.value(), t) << iter;
    ASSERT_EQ(SerializeTrace(parsed.value()), text) << iter;
  }
}

TEST(TraceFuzz, CorruptedInputNeverCrashes) {
  Rng rng(4242);
  for (int iter = 0; iter < 400; ++iter) {
    std::string text = SerializeTrace(RandomTrace(&rng));
    // Mutate a few bytes, or truncate, or both.
    if (!text.empty() && rng.NextDouble() < 0.5) {
      text.resize(static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(text.size()) - 1)));
    }
    int mutations = static_cast<int>(rng.UniformInt(0, 5));
    for (int m = 0; m < mutations && !text.empty(); ++m) {
      size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(text.size()) - 1));
      text[pos] = static_cast<char>(rng.UniformInt(9, 126));
    }
    auto parsed = ParseTrace(text);  // must not crash; either outcome ok
    if (parsed.ok()) {
      // Whatever survived must itself round-trip.
      auto again = ParseTrace(SerializeTrace(parsed.value()));
      ASSERT_TRUE(again.ok()) << iter;
      EXPECT_EQ(again.value(), parsed.value()) << iter;
    } else {
      EXPECT_FALSE(parsed.status().message().empty()) << iter;
    }
  }
}

TEST(Trace, FileRoundTrip) {
  Trace t = SmallTrace();
  std::string path = ::testing::TempDir() + "/rtq_trace_test.rtqt";
  ASSERT_TRUE(WriteTraceFile(t, path).ok());
  auto read = ReadTraceFile(path);
  ASSERT_TRUE(read.ok()) << read.status().ToString();
  EXPECT_EQ(read.value(), t);
  EXPECT_FALSE(ReadTraceFile(path + ".missing").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace rtq::workload
