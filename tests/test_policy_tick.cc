// OnTick contract tests: the time-triggered half of the MemoryPolicy
// lifecycle, unexercised until pmm-tick.
//
//  * Ticks reach the policy at the engine's configured MPL-sampler
//    cadence (SystemConfig::mpl_sample_interval), on the exact grid.
//  * "pmm-tick:ms=0" bypasses the completion buffer and is bit-identical
//    to plain "pmm".
//  * A positive period aligns the controller's adaptation points to the
//    tick grid (the probe reads system state at flush time).
//  * A policy that reallocates memory from OnTick leaves the
//    MemoryManager's incremental counters (admitted_count,
//    allocated_pages) consistent with a from-scratch recompute.
//
// The "tick-probe" policy below registers through the normal registry
// path, so it doubles as a third-party-plugin example: it records every
// tick and flips the allocation strategy from tick context, the most
// invasive thing OnTick may legally do.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/memory_policy.h"
#include "core/policy_registry.h"
#include "core/strategy.h"
#include "engine/rtdbs.h"
#include "harness/paper_experiments.h"

namespace rtq::core {
namespace {

/// Tick times recorded by every TickProbePolicy in this process.
std::vector<SimTime>& TickTimes() {
  static std::vector<SimTime> times;
  return times;
}

/// Test-only plugin: logs OnTick times and alternates the installed
/// strategy on every tick, forcing a full reallocation from tick
/// context. Deterministic and argument-free so the registry-wide
/// property test can run it like any product policy.
class TickProbePolicy : public MemoryPolicy {
 public:
  Status Attach(const PolicyHost& host) override {
    mm_ = host.mm;
    mm_->SetStrategy(std::make_unique<MaxStrategy>());
    return Status::Ok();
  }

  void OnTick(SimTime now) override {
    TickTimes().push_back(now);
    use_minmax_ = !use_minmax_;
    if (use_minmax_) {
      mm_->SetStrategy(std::make_unique<MinMaxStrategy>(2));
    } else {
      mm_->SetStrategy(std::make_unique<MaxStrategy>());
    }
  }

  std::string Describe() const override { return "tick-probe"; }
  std::string DisplayName() const override { return "TickProbe"; }

 private:
  MemoryManager* mm_ = nullptr;
  bool use_minmax_ = false;
};

RTQ_REGISTER_POLICY("tick-probe",
                    "tick-probe — test-only OnTick recorder/reallocator",
                    [](const PolicySpec& spec)
                        -> StatusOr<std::unique_ptr<MemoryPolicy>> {
                      if (!spec.args.empty()) {
                        return Status::InvalidArgument(
                            "tick-probe takes no arguments");
                      }
                      return std::unique_ptr<MemoryPolicy>(
                          new TickProbePolicy());
                    });

TEST(OnTickContract, TicksArriveOnTheConfiguredCadence) {
  for (SimTime interval : {60.0, 25.0}) {
    TickTimes().clear();
    engine::SystemConfig config =
        harness::BaselineConfig(0.06, {"tick-probe"}, 42);
    config.mpl_sample_interval = interval;
    auto sys = engine::Rtdbs::Create(config);
    ASSERT_TRUE(sys.ok());
    sys.value()->RunUntil(1800.0);

    size_t expected = static_cast<size_t>(1800.0 / interval);
    ASSERT_EQ(TickTimes().size(), expected) << "interval " << interval;
    for (size_t i = 0; i < TickTimes().size(); ++i) {
      EXPECT_DOUBLE_EQ(TickTimes()[i],
                       static_cast<double>(i + 1) * interval);
    }
  }
}

TEST(OnTickContract, DisabledSamplerMeansNoTicks) {
  TickTimes().clear();
  engine::SystemConfig config =
      harness::BaselineConfig(0.06, {"tick-probe"}, 42);
  config.mpl_sample_interval = 0.0;
  auto sys = engine::Rtdbs::Create(config);
  ASSERT_TRUE(sys.ok());
  sys.value()->RunUntil(1800.0);
  EXPECT_TRUE(TickTimes().empty());
}

TEST(OnTickContract, PmmTickRejectsHostsThatNeverTick) {
  // A positive batching period on a host with the sampler disabled
  // would buffer completions forever; Attach must fail loud.
  engine::SystemConfig config =
      harness::BaselineConfig(0.06, {"pmm-tick:ms=60000"}, 42);
  config.mpl_sample_interval = 0.0;
  auto sys = engine::Rtdbs::Create(config);
  ASSERT_FALSE(sys.ok());
  EXPECT_EQ(sys.status().code(), StatusCode::kFailedPrecondition);

  // ms=0 never uses the buffer, so it works on a tickless host.
  config.policy = {"pmm-tick:ms=0"};
  EXPECT_TRUE(engine::Rtdbs::Create(config).ok());
}

/// Fingerprint of a short run, for trajectory-identity checks.
std::tuple<uint64_t, int64_t, int64_t, double> Fingerprint(
    const engine::SystemConfig& config, SimTime horizon) {
  auto sys = engine::Rtdbs::Create(config);
  RTQ_CHECK(sys.ok());
  sys.value()->RunUntil(horizon);
  engine::SystemSummary s = sys.value()->Summarize();
  return {s.events_dispatched, s.overall.completions, s.overall.misses,
          s.overall.avg_exec};
}

TEST(OnTickContract, ZeroPeriodPmmTickDegeneratesToPmm) {
  // ms=0 bypasses the completion buffer entirely: same events, same
  // completions, same misses, same timings as plain PMM.
  for (double rate : {0.06, 0.08}) {
    EXPECT_EQ(
        Fingerprint(harness::BaselineConfig(rate, {"pmm"}, 42), 3600.0),
        Fingerprint(harness::BaselineConfig(rate, {"pmm-tick:ms=0"}, 42),
                    3600.0))
        << "rate " << rate;
  }
  EXPECT_EQ(
      Fingerprint(harness::MulticlassConfig(0.8, {"pmm"}, 42), 3600.0),
      Fingerprint(harness::MulticlassConfig(0.8, {"pmm-tick:ms=0"}, 42),
                  3600.0));
}

TEST(OnTickContract, PositivePeriodAlignsAdaptationsToTheTickGrid) {
  // With a 120 s batching period every controller adaptation must
  // happen at a flush, i.e. at a multiple of 120 simulated seconds
  // (ticks fire every 60 s; flushes skip every other one).
  auto sys = engine::Rtdbs::Create(
      harness::MulticlassConfig(0.8, {"pmm-tick:ms=120000"}, 42));
  ASSERT_TRUE(sys.ok());
  sys.value()->RunUntil(3600.0);
  const PmmController* pmm = sys.value()->pmm();
  ASSERT_NE(pmm, nullptr);
  ASSERT_GT(pmm->adaptations(), 0);
  for (const auto& point : pmm->trace()) {
    EXPECT_DOUBLE_EQ(std::fmod(point.time, 120.0), 0.0)
        << "adaptation off the tick grid at t=" << point.time;
  }
}

TEST(OnTickContract, ReallocatingFromOnTickKeepsManagerInvariants) {
  // tick-probe swaps strategies (and thus reallocates everything) on
  // every tick. At several pause points the incremental counters must
  // match what an explicit from-scratch recompute produces, and stay
  // within physical bounds.
  auto sys =
      engine::Rtdbs::Create(harness::BaselineConfig(0.07, {"tick-probe"}, 7));
  ASSERT_TRUE(sys.ok());
  for (SimTime t = 300.0; t <= 3600.0; t += 300.0) {
    sys.value()->RunUntil(t);
    MemoryManager& mm = sys.value()->memory_manager();
    int64_t admitted = mm.admitted_count();
    PageCount allocated = mm.allocated_pages();
    EXPECT_LE(allocated, mm.total_pages());
    EXPECT_LE(admitted, mm.live_count());
    EXPECT_GE(mm.waiting_count(), 0);
    // Idempotent recompute: if the counters were drifting, the full
    // recompute would disagree with the incrementally-maintained state.
    mm.Reallocate();
    EXPECT_EQ(mm.admitted_count(), admitted) << "at t=" << t;
    EXPECT_EQ(mm.allocated_pages(), allocated) << "at t=" << t;
  }
}

}  // namespace
}  // namespace rtq::core
